// Experiment E8 — Section IV-C: the choice of system virtual time.
//
// "In H-FSC we use the SSF policy and the system virtual time function
//  v = (v_min + v_max)/2 ... It is interesting to note that setting v to
//  either v_min or v_max results in a discrepancy proportional to the
//  number of sibling classes."
//
// When a class becomes active, its virtual curve is re-anchored at the
// parent's system virtual time v; if v sits at the bottom (v_min) of the
// active siblings' spread the newcomer is favoured — it must be served
// until it catches up — and if v sits at the top (v_max) the newcomer is
// frozen out until the others catch up.  Since the spread itself is one
// service quantum per sibling, the *placement error* (distance between the
// newcomer's vt and the average of its active siblings') grows linearly
// in the fan-out for v_min / v_max, while the midpoint keeps the newcomer
// centred.
//
// n siblings with staggered on-off phases; at every activation we record
// |vt_newcomer - avg(vt_active_siblings)|.  Output: worst placement error
// per policy and fan-out.
#include <cstdio>
#include <vector>

#include "core/hfsc.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

using namespace hfsc;

namespace {

constexpr RateBps kLink = mbps(80);
constexpr TimeNs kDuration = sec(4);

double worst_placement_error_ms(int n, SystemVtPolicy policy) {
  Hfsc sched(kLink, EligibleSetKind::kDualHeap, policy);
  std::vector<ClassId> leaves;
  const RateBps share = kLink / static_cast<RateBps>(n);
  for (int i = 0; i < n; ++i) {
    leaves.push_back(sched.add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(share))));
  }
  Simulator sim(kLink, sched);
  for (int i = 0; i < n; ++i) {
    sim.add<OnOffSource>(leaves[i], share * 3, 1000, msec(40), msec(20),
                         msec(5) * static_cast<TimeNs>(i), kDuration,
                         1000 + static_cast<std::uint64_t>(i));
  }

  std::vector<ClassId> pending;  // classes that just became active
  TimeNs worst = 0;
  auto check_pending = [&]() {
    for (ClassId c : pending) {
      if (!sched.active(c)) continue;
      TimeNs sum = 0;
      TimeNs others = 0;
      for (ClassId s : leaves) {
        if (s == c || !sched.active(s)) continue;
        sum += sched.vtime(s);
        ++others;
      }
      if (others == 0) continue;
      const TimeNs avg = sum / others;
      const TimeNs vt = sched.vtime(c);
      worst = std::max(worst, vt > avg ? vt - avg : avg - vt);
    }
    pending.clear();
  };
  sim.link().add_arrival_hook([&](TimeNs, const Packet& p) {
    if (!sched.active(p.cls)) pending.push_back(p.cls);
  });
  sim.link().add_departure_hook([&](TimeNs, const Packet&) {
    check_pending();
  });
  sim.run(kDuration);
  return static_cast<double>(worst) / 1e6;
}

}  // namespace

int main() {
  std::printf("E8: worst virtual-time placement error of a newly-active "
              "sibling vs fan-out and system-vt policy (Section IV-C)\n\n");
  TablePrinter table(
      {"siblings", "v=vmin_ms", "v=vmax_ms", "v=midpoint_ms"});
  for (int n : {2, 4, 8, 16, 32}) {
    table.add_row(
        {std::to_string(n),
         TablePrinter::fmt(worst_placement_error_ms(n, SystemVtPolicy::kMin)),
         TablePrinter::fmt(worst_placement_error_ms(n, SystemVtPolicy::kMax)),
         TablePrinter::fmt(
             worst_placement_error_ms(n, SystemVtPolicy::kMidpoint))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected shape (paper): the spread among active siblings is "
              "inherently one service quantum per sibling (SSF round-robin "
              "granularity), so every policy's error grows with fan-out; "
              "v_min and v_max pin newcomers to an extreme of that spread "
              "(the two columns coincide because the error is symmetric), "
              "while the midpoint centres them, cutting the worst-case "
              "placement error by roughly a third at high fan-out and — "
              "unlike the extremes — never systematically favouring or "
              "penalizing reactivating classes.\n");
  return 0;
}
