// Experiment E6 — Section IV-A: "in H-PFQ the delay bound provided to a
// leaf class increases with the depth of the leaf in the hierarchy; in
// H-FSC the delay bound is determined by the real-time criterion alone and
// is independent of the class hierarchy".
//
// An audio leaf (64 kb/s, 160 B packets) is nested at depth 1..6.  At
// every level of the chain a greedy data sibling keeps that level's server
// busy, so each H-PFQ node contributes its per-node scheduling error.
// The audio class's allocation is identical in both schedulers (640 kb/s
// long-term; H-FSC adds the 5 ms concave burst term).
//
// Output: max and mean audio delay per depth for H-FSC and H-PFQ.
#include <cstdio>

#include "core/hfsc.hpp"
#include "sched/hpfq.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

using namespace hfsc;

namespace {

constexpr RateBps kLink = mbps(10);
constexpr TimeNs kDuration = sec(5);
constexpr Bytes kAudioPkt = 160;
constexpr Bytes kDataPkt = 1500;

struct Delays {
  double mean_ms, max_ms;
};

// Builds a chain: at each level i the interior class splits into a greedy
// data leaf and (except at the bottom) the next level down.  The audio
// leaf hangs off the bottom interior class.
Delays run_hpfq(int depth) {
  HPfq sched(kLink);
  std::vector<ClassId> data;
  ClassId parent = kRootClass;
  RateBps budget = kLink;
  for (int i = 0; i < depth; ++i) {
    const RateBps inner = budget * 3 / 4;  // keep room for the audio leaf
    data.push_back(sched.add_class(parent, budget - inner));  // greedy leaf
    if (i + 1 < depth) {
      parent = sched.add_class(parent, inner);
    } else {
      const ClassId audio = sched.add_class(parent, kbps(640));
      data.push_back(sched.add_class(parent, inner - kbps(640)));
      Simulator sim(kLink, sched);
      sim.add<CbrSource>(audio, kbps(64), kAudioPkt, 0, kDuration);
      for (ClassId c : data) sim.add<GreedySource>(c, kDataPkt, 6, 0, kDuration);
      sim.run(kDuration);
      return Delays{sim.tracker().mean_delay_ms(audio),
                    sim.tracker().max_delay_ms(audio)};
    }
    budget = inner;
  }
  return {};
}

Delays run_hfsc(int depth) {
  Hfsc sched(kLink);
  std::vector<ClassId> data;
  ClassId parent = kRootClass;
  RateBps budget = kLink;
  for (int i = 0; i < depth; ++i) {
    const RateBps inner = budget * 3 / 4;  // keep room for the audio leaf
    data.push_back(sched.add_class(
        parent,
        ClassConfig::link_share_only(ServiceCurve::linear(budget - inner))));
    if (i + 1 < depth) {
      parent = sched.add_class(
          parent, ClassConfig::link_share_only(ServiceCurve::linear(inner)));
    } else {
      const ClassId audio = sched.add_class(
          parent, ClassConfig::both(from_udr(kAudioPkt, msec(5), kbps(640))));
      data.push_back(sched.add_class(
          parent, ClassConfig::link_share_only(
                      ServiceCurve::linear(inner - kbps(640)))));
      Simulator sim(kLink, sched);
      sim.add<CbrSource>(audio, kbps(64), kAudioPkt, 0, kDuration);
      for (ClassId c : data) sim.add<GreedySource>(c, kDataPkt, 6, 0, kDuration);
      sim.run(kDuration);
      return Delays{sim.tracker().mean_delay_ms(audio),
                    sim.tracker().max_delay_ms(audio)};
    }
    budget = inner;
  }
  return {};
}

}  // namespace

int main() {
  std::printf("E6: audio delay vs leaf depth (10 Mb/s link; greedy data "
              "sibling at every level)\n\n");
  TablePrinter table({"depth", "hfsc_mean_ms", "hfsc_max_ms", "hpfq_mean_ms",
                      "hpfq_max_ms"});
  for (int depth = 1; depth <= 6; ++depth) {
    const Delays f = run_hfsc(depth);
    const Delays p = run_hpfq(depth);
    table.add_row({std::to_string(depth), TablePrinter::fmt(f.mean_ms),
                   TablePrinter::fmt(f.max_ms), TablePrinter::fmt(p.mean_ms),
                   TablePrinter::fmt(p.max_ms)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected shape (paper, Section IV-A): H-PFQ's max delay "
              "grows with depth (one WF2Q+ error term per level, and the "
              "audio class's share of each deeper node shrinks); H-FSC's "
              "stays flat — the real-time criterion sees only leaves.\n");
  return 0;
}
