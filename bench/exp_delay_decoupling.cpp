// Experiment E4 — the paper's first simulation experiment (Section VII):
// real-time + priority performance on the Fig. 1 link-sharing hierarchy.
//
// A 45 Mb/s link shared by two organizations (CMU 25 / U.Pitt 20).  CMU
// carries a 64 kb/s distinguished-lecture audio session (160 B packets,
// wants 5 ms), a 1 Mb/s distinguished-lecture video session (30 fps
// frames, wants 10 ms per frame) and greedy data; U.Pitt carries greedy
// data.  The same workload runs under H-FSC, H-PFQ (WF2Q+ at every node)
// and FIFO.
//
// Claim reproduced: with H-PFQ the only way to lower a session's delay is
// to raise its rate, so the low-bandwidth audio session sees delays an
// order of magnitude above its target; H-FSC meets both sessions' delay
// targets with the same long-term rates, at no cost to data throughput.
#include <cstdio>

#include "core/hfsc.hpp"
#include "sched/cbq.hpp"
#include "sched/fifo.hpp"
#include "sched/hpfq.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

using namespace hfsc;

namespace {

constexpr RateBps kLink = mbps(45);
constexpr TimeNs kDuration = sec(10);
constexpr RateBps kAudioRate = kbps(64);
constexpr Bytes kAudioPkt = 160;
constexpr RateBps kVideoRate = mbps(2);  // covers worst frame at 30 fps
constexpr Bytes kVideoFrameMean = 3400;  // ~0.86 Mb/s offered at 30 fps
constexpr Bytes kVideoFrameMax = 8000;

struct Row {
  const char* sched;
  double audio_mean, audio_p99, audio_max;
  double video_mean, video_p99, video_max;
  double cmu_data_mbps, pitt_data_mbps;
};

struct Ids {
  ClassId audio, video, cmu_data, pitt_data;
};

Row drive(const char* name, Scheduler& sched, Ids ids) {
  Simulator sim(kLink, sched);
  sim.add<CbrSource>(ids.audio, kAudioRate, kAudioPkt, 0, kDuration);
  sim.add<VideoSource>(ids.video, 30.0, kVideoFrameMean, kVideoFrameMax,
                       1500, 0, kDuration, 90210);
  sim.add<GreedySource>(ids.cmu_data, 1500, 10, 0, kDuration);
  sim.add<GreedySource>(ids.pitt_data, 1500, 10, 0, kDuration);
  sim.run(kDuration);
  const auto& t = sim.tracker();
  return Row{name,
             t.mean_delay_ms(ids.audio),
             t.delay_quantile_ms(ids.audio, 0.99),
             t.max_delay_ms(ids.audio),
             t.mean_delay_ms(ids.video),
             t.delay_quantile_ms(ids.video, 0.99),
             t.max_delay_ms(ids.video),
             t.rate_mbps(ids.cmu_data, sec(1), kDuration),
             t.rate_mbps(ids.pitt_data, sec(1), kDuration)};
}

}  // namespace

int main() {
  std::printf("E4: delay decoupling on the Fig. 1 hierarchy (45 Mb/s "
              "link)\n");
  std::printf("  audio: 64 kb/s CBR, 160 B packets, target 5 ms\n");
  std::printf("  video: ~0.9 Mb/s offered, 2 Mb/s reserved, 30 fps frames <= "
              "8 kB, target 10 ms per frame\n");
  std::printf("  CMU data / U.Pitt data: greedy FTP\n\n");

  std::vector<Row> rows;

  {
    Fifo fifo;
    rows.push_back(drive("FIFO", fifo, Ids{1, 2, 3, 4}));
  }
  {
    HPfq hpfq(kLink);
    const ClassId cmu = hpfq.add_class(kRootClass, mbps(25));
    const ClassId pitt = hpfq.add_class(kRootClass, mbps(20));
    Ids ids;
    ids.audio = hpfq.add_class(cmu, kAudioRate);
    ids.video = hpfq.add_class(cmu, kVideoRate);
    ids.cmu_data = hpfq.add_class(cmu, mbps(25) - kAudioRate - kVideoRate);
    ids.pitt_data = hpfq.add_class(pitt, mbps(20));
    rows.push_back(drive("H-PFQ", hpfq, ids));
  }
  {
    Cbq cbq(kLink);
    const ClassId cmu = cbq.add_class(kRootClass, mbps(25));
    const ClassId pitt = cbq.add_class(kRootClass, mbps(20));
    Ids ids;
    ids.audio = cbq.add_class(cmu, kAudioRate);
    ids.video = cbq.add_class(cmu, kVideoRate);
    ids.cmu_data = cbq.add_class(cmu, mbps(25) - kAudioRate - kVideoRate);
    ids.pitt_data = cbq.add_class(pitt, mbps(20));
    rows.push_back(drive("CBQ", cbq, ids));
  }
  {
    Hfsc hfsc(kLink);
    const ClassId cmu = hfsc.add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(25))));
    const ClassId pitt = hfsc.add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(20))));
    Ids ids;
    // Same long-term rates as H-PFQ, plus concave burst terms: that is
    // the entire difference.
    ids.audio = hfsc.add_class(
        cmu, ClassConfig::both(from_udr(kAudioPkt, msec(5), kAudioRate)));
    ids.video = hfsc.add_class(
        cmu,
        ClassConfig::both(from_udr(kVideoFrameMax, msec(10), kVideoRate)));
    ids.cmu_data = hfsc.add_class(
        cmu, ClassConfig::link_share_only(
                 ServiceCurve::linear(mbps(25) - kAudioRate - kVideoRate)));
    ids.pitt_data = hfsc.add_class(
        pitt, ClassConfig::link_share_only(ServiceCurve::linear(mbps(20))));
    rows.push_back(drive("H-FSC", hfsc, ids));
  }

  TablePrinter table({"sched", "audio_mean_ms", "audio_p99_ms",
                      "audio_max_ms", "video_mean_ms", "video_p99_ms",
                      "video_max_ms", "cmu_ftp_mbps", "pitt_ftp_mbps"});
  for (const Row& r : rows) {
    table.add_row({r.sched, TablePrinter::fmt(r.audio_mean),
                   TablePrinter::fmt(r.audio_p99),
                   TablePrinter::fmt(r.audio_max),
                   TablePrinter::fmt(r.video_mean),
                   TablePrinter::fmt(r.video_p99),
                   TablePrinter::fmt(r.video_max),
                   TablePrinter::fmt(r.cmu_data_mbps, 2),
                   TablePrinter::fmt(r.pitt_data_mbps, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected shape (paper): H-FSC audio max <= ~5 ms and video "
              "max <= ~10 ms; H-PFQ delays for the same rates are several "
              "times larger (delay coupled to bandwidth); FIFO offers no "
              "isolation at all (all classes see the shared-queue delay); "
              "FTP throughput identical across the hierarchical "
              "schedulers.  CBQ's WRR serves a sparse flow quickly at this "
              "scale but provides no guarantee — its delay is coupled to "
              "the round length, as the sweep below shows.\n\n");

  // --- CBQ vs H-FSC: audio delay as competing classes multiply ---------
  // CBQ's per-packet delay grows with the WRR round (one quantum per
  // active class); H-FSC's real-time criterion keeps the audio bound
  // independent of the fan-out.
  TablePrinter sweep({"ftp_classes", "cbq_audio_max_ms", "hfsc_audio_max_ms"});
  for (int n : {4, 16, 64}) {
    double cbq_max, hfsc_max;
    {
      Cbq cbq(kLink);
      const ClassId audio = cbq.add_class(kRootClass, kAudioRate);
      std::vector<ClassId> ftps;
      for (int i = 0; i < n; ++i) {
        ftps.push_back(cbq.add_class(
            kRootClass, (kLink - kAudioRate) / static_cast<RateBps>(n)));
      }
      Simulator sim(kLink, cbq);
      sim.add<CbrSource>(audio, kAudioRate, kAudioPkt, 0, sec(5));
      for (ClassId f : ftps) sim.add<GreedySource>(f, 1500, 4, 0, sec(5));
      sim.run(sec(5));
      cbq_max = sim.tracker().max_delay_ms(audio);
    }
    {
      Hfsc hfsc(kLink);
      const ClassId audio = hfsc.add_class(
          kRootClass, ClassConfig::both(from_udr(kAudioPkt, msec(5),
                                                 kAudioRate)));
      std::vector<ClassId> ftps;
      for (int i = 0; i < n; ++i) {
        ftps.push_back(hfsc.add_class(
            kRootClass,
            ClassConfig::link_share_only(ServiceCurve::linear(
                (kLink - kAudioRate) / static_cast<RateBps>(n)))));
      }
      Simulator sim(kLink, hfsc);
      sim.add<CbrSource>(audio, kAudioRate, kAudioPkt, 0, sec(5));
      for (ClassId f : ftps) sim.add<GreedySource>(f, 1500, 4, 0, sec(5));
      sim.run(sec(5));
      hfsc_max = sim.tracker().max_delay_ms(audio);
    }
    sweep.add_row({std::to_string(n), TablePrinter::fmt(cbq_max),
                   TablePrinter::fmt(hfsc_max)});
  }
  std::printf("%s\n", sweep.to_string().c_str());
  std::printf("expected shape: CBQ's audio delay grows with the number of "
              "competing classes (WRR round length); H-FSC's stays at the "
              "curve bound.\n");
  return 0;
}
