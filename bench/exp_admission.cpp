// Experiment E12 (extension) — Section II's utilization claim:
// "With nonlinear service curves, both delay and bandwidth allocation are
//  taken into account in an integrated fashion, yet the allocation
//  policies for these two resources are decoupled.  This increases the
//  resource management flexibility and the resource utilization inside
//  the network."
//
// Scenario: a 10 Mb/s link must carry N = 20 audio sessions (160 B
// packets, 64 kb/s sustained, 5 ms delay target) plus as many guaranteed
// 1 Mb/s bulk sessions as admission control allows (Σ curves <= link
// curve, the SCED/H-FSC feasibility condition).
//
//   * coupled (linear curves only): the only way to give audio 5 ms is a
//     256 kb/s linear reservation (u/d) per session — 4x its real rate;
//   * coupled, bandwidth-first: reserve the true 64 kb/s — the delay
//     bound balloons to u/r = 20 ms;
//   * decoupled (H-FSC curves): concave {256 kb/s for 5 ms, then
//     64 kb/s} per audio session, convex {0 until 5 ms, then 1 Mb/s}
//     bulk curves that dodge the audio burst window.
//
// The analytical delay bound for each audio session (token bucket
// (160 B, 64 kb/s) into its curve) and a simulation of the fully-admitted
// decoupled configuration validate the numbers.
#include <cstdio>

#include "core/hfsc.hpp"
#include "curve/piecewise.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

using namespace hfsc;

namespace {

constexpr RateBps kLink = mbps(10);
constexpr int kAudioN = 20;
constexpr Bytes kAudioPkt = 160;
constexpr TimeNs kAudioDelay = msec(5);
constexpr RateBps kAudioRate = kbps(64);
const ServiceCurve kBulkLinear = ServiceCurve::linear(mbps(1));
const ServiceCurve kBulkConvex{0, msec(5), mbps(1)};

struct WorldResult {
  int audio_admitted = 0;
  int bulk_admitted = 0;
  double audio_bound_ms = 0;
  double reserved_tail_mbps = 0;  // long-term rate actually committed
};

WorldResult fill(const ServiceCurve& audio_sc, const ServiceCurve& bulk_sc) {
  AdmissionControl ac(kLink);
  WorldResult r;
  for (int i = 0; i < kAudioN && ac.admit(audio_sc); ++i) ++r.audio_admitted;
  while (ac.admit(bulk_sc)) ++r.bulk_admitted;
  const auto bound =
      delay_bound(kAudioPkt, kAudioRate, audio_sc, 1500, kLink);
  r.audio_bound_ms =
      bound ? static_cast<double>(*bound) / 1e6 : -1.0;
  r.reserved_tail_mbps = ac.utilization() * 10.0;
  return r;
}

}  // namespace

int main() {
  std::printf("E12: admission with coupled vs decoupled curves "
              "(10 Mb/s link; %d audio sessions wanting %d B within 5 ms "
              "at 64 kb/s, then as many 1 Mb/s guaranteed bulk sessions "
              "as fit)\n\n",
              kAudioN, static_cast<int>(kAudioPkt));

  // u/d = 256 kb/s: the linear rate needed for the 5 ms bound.
  const RateBps coupled_rate = static_cast<RateBps>(
      muldiv_ceil(kAudioPkt, kNsPerSec, kAudioDelay));
  const ServiceCurve audio_concave = from_udr(kAudioPkt, kAudioDelay,
                                              kAudioRate);

  TablePrinter table({"world", "audio_curve", "audio_admitted",
                      "audio_bound_ms", "bulk_admitted",
                      "committed_mbps"});
  {
    const WorldResult r =
        fill(ServiceCurve::linear(coupled_rate), kBulkLinear);
    table.add_row({"coupled, delay-first", "linear 256kbps",
                   std::to_string(r.audio_admitted),
                   TablePrinter::fmt(r.audio_bound_ms),
                   std::to_string(r.bulk_admitted),
                   TablePrinter::fmt(r.reserved_tail_mbps, 2)});
  }
  {
    const WorldResult r =
        fill(ServiceCurve::linear(kAudioRate), kBulkLinear);
    table.add_row({"coupled, rate-first", "linear 64kbps",
                   std::to_string(r.audio_admitted),
                   TablePrinter::fmt(r.audio_bound_ms),
                   std::to_string(r.bulk_admitted),
                   TablePrinter::fmt(r.reserved_tail_mbps, 2)});
  }
  WorldResult decoupled;
  {
    decoupled = fill(audio_concave, kBulkConvex);
    table.add_row({"decoupled (H-FSC)", "concave 256k/5ms/64k",
                   std::to_string(decoupled.audio_admitted),
                   TablePrinter::fmt(decoupled.audio_bound_ms),
                   std::to_string(decoupled.bulk_admitted),
                   TablePrinter::fmt(decoupled.reserved_tail_mbps, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Validate the decoupled world by running it: every admitted session
  // greedy/CBR, audio delays must respect the analytical bound.
  Hfsc sched(kLink);
  std::vector<ClassId> audio, bulk;
  for (int i = 0; i < decoupled.audio_admitted; ++i) {
    audio.push_back(
        sched.add_class(kRootClass, ClassConfig::both(audio_concave)));
  }
  for (int i = 0; i < decoupled.bulk_admitted; ++i) {
    bulk.push_back(
        sched.add_class(kRootClass, ClassConfig::both(kBulkConvex)));
  }
  Simulator sim(kLink, sched);
  for (std::size_t i = 0; i < audio.size(); ++i) {
    sim.add<CbrSource>(audio[i], kAudioRate, kAudioPkt,
                       usec(137) * static_cast<TimeNs>(i), sec(5));
  }
  for (ClassId b : bulk) sim.add<GreedySource>(b, 1500, 4, 0, sec(5));
  sim.run(sec(5));
  double worst_audio = 0, bulk_total = 0;
  for (ClassId a : audio) {
    worst_audio = std::max(worst_audio, sim.tracker().max_delay_ms(a));
  }
  for (ClassId b : bulk) {
    bulk_total += sim.tracker().rate_mbps(b, sec(1), sec(5));
  }
  std::printf("simulation of the decoupled world: worst audio delay "
              "%.3f ms (analytical bound %.3f ms); bulk aggregate "
              "%.2f Mb/s; link busy %.1f%%\n\n",
              worst_audio, decoupled.audio_bound_ms, bulk_total,
              100.0 * static_cast<double>(sim.link().busy_time()) /
                  static_cast<double>(sec(5)));
  std::printf("expected shape (Section II): the coupled delay-first world "
              "wastes 4x the audio bandwidth and admits fewer bulk "
              "sessions; the rate-first world meets the bandwidth but "
              "blows the delay target 4x; only decoupled curves deliver "
              "the 5 ms bound AND fill the link with guaranteed bulk.\n");
  return 0;
}
