// Experiment E7 — Theorem 2: "the H-FSC algorithm guarantees that the
// deadline of any packet is not missed by more than tau_max", the time to
// transmit one maximum-length packet.
//
// We sweep randomized two-level hierarchies and adversarial traffic mixes
// and measure, via the definition-(1) GuaranteeChecker, the worst service
// deficit any leaf ever accumulates relative to its curve shifted by an
// allowance.  Sweeping the allowance from 0 up to 2*tau_max shows the
// bound is tight: violations vanish at (about) tau_max and not before.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/hfsc.hpp"
#include "sim/guarantee_checker.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace hfsc;

namespace {

constexpr RateBps kLink = mbps(100);
constexpr Bytes kMaxPkt = 1500;

struct SweepResult {
  std::size_t leaves_checked = 0;
  std::size_t leaves_violating = 0;
  Bytes worst_deficit = 0;
};

SweepResult run_seed(std::uint64_t seed, TimeNs allowance) {
  Rng rng(seed);
  const int num_orgs = 2 + static_cast<int>(rng.uniform(0, 2));
  const int per_org = 2 + static_cast<int>(rng.uniform(0, 3));
  const int n = num_orgs * per_org;
  const RateBps slice = kLink * 6 / 10 / static_cast<RateBps>(n);

  Hfsc sched(kLink);
  std::vector<ClassId> leaves;
  std::vector<ServiceCurve> curves;
  for (int o = 0; o < num_orgs; ++o) {
    const ClassId org = sched.add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(
                        slice * static_cast<RateBps>(per_org))));
    for (int l = 0; l < per_org; ++l) {
      ServiceCurve sc =
          rng.chance(0.5)
              ? ServiceCurve{slice + rng.uniform(1, slice),
                             msec(2) + rng.uniform(0, msec(8)),
                             1 + rng.uniform(0, slice - 1)}
              : ServiceCurve{0, msec(1) + rng.uniform(0, msec(9)),
                             1 + rng.uniform(0, slice - 1)};
      curves.push_back(sc);
      leaves.push_back(sched.add_class(org, ClassConfig::both(sc)));
    }
  }

  Simulator sim(kLink, sched);
  std::vector<std::unique_ptr<GuaranteeChecker>> checkers;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    checkers.push_back(
        std::make_unique<GuaranteeChecker>(curves[i], allowance));
    GuaranteeChecker* c = checkers.back().get();
    const ClassId cls = leaves[i];
    sim.link().add_arrival_hook([c, cls](TimeNs t, const Packet& p) {
      if (p.cls == cls) c->on_arrival(t, p.len);
    });
    sim.link().add_departure_hook([c, cls](TimeNs t, const Packet& p) {
      if (p.cls == cls) c->on_departure(t, p.len);
    });
  }
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    switch (rng.uniform(0, 2)) {
      case 0:
        sim.add<OnOffSource>(leaves[i], curves[i].m2 * 2,
                             600 + rng.uniform(0, 900), msec(20), msec(20),
                             0, sec(2), seed * 37 + i);
        break;
      case 1:
        sim.add<PoissonSource>(leaves[i], curves[i].m2,
                               400 + rng.uniform(0, 1100), 0, sec(2),
                               seed * 53 + i);
        break;
      case 2:
        sim.add<GreedySource>(leaves[i], kMaxPkt, 4,
                              rng.uniform(0, msec(50)), sec(2));
        break;
    }
  }
  sim.run_all();

  SweepResult r;
  for (const auto& c : checkers) {
    ++r.leaves_checked;
    if (!c->violations().empty()) {
      ++r.leaves_violating;
      r.worst_deficit = std::max(r.worst_deficit, c->max_deficit());
    }
  }
  return r;
}

// The deterministic worst case behind Theorem 2: a max-length packet of a
// bulk class starts transmitting an instant before an urgent small packet
// (steep concave curve) arrives.  Non-preemption makes the urgent packet
// finish up to tau_max late; the sweep shows at which allowance the
// deficit disappears.
Bytes nonpreemption_deficit(TimeNs allowance) {
  Hfsc sched(kLink);
  const ServiceCurve bulk_sc = ServiceCurve::linear(kLink / 2);
  const ServiceCurve urgent_sc{kLink / 2, msec(1), kbps(64)};
  const ClassId bulk = sched.add_class(kRootClass, ClassConfig::both(bulk_sc));
  const ClassId urgent =
      sched.add_class(kRootClass, ClassConfig::both(urgent_sc));
  Simulator sim(kLink, sched);
  GuaranteeChecker checker(urgent_sc, allowance);
  sim.link().add_arrival_hook([&](TimeNs t, const Packet& p) {
    if (p.cls == urgent) checker.on_arrival(t, p.len);
  });
  sim.link().add_departure_hook([&](TimeNs t, const Packet& p) {
    if (p.cls == urgent) checker.on_departure(t, p.len);
  });
  sim.add<GreedySource>(bulk, kMaxPkt, 4, 0, msec(100));
  // One urgent packet, 1 us after the first bulk packet started.
  sim.add<TraceSource>(urgent,
                       std::vector<TraceSource::Item>{{usec(1), 160}});
  sim.run_all();
  return checker.max_deficit();
}

}  // namespace

int main() {
  const TimeNs tau_max = tx_time(kMaxPkt, kLink);
  std::printf("E7: Theorem 2 bound — worst curve deficit vs allowance "
              "(100 Mb/s link, tau_max = %llu us for 1500 B)\n\n",
              static_cast<unsigned long long>(tau_max / 1000));
  TablePrinter table({"allowance", "leaves", "violating_leaves",
                      "worst_deficit_B"});
  const std::vector<std::pair<const char*, TimeNs>> allowances = {
      {"0", 0},
      {"tau/4", tau_max / 4},
      {"tau/2", tau_max / 2},
      {"tau+5us", tau_max + usec(5)},
      {"2tau", 2 * tau_max}};
  for (const auto& [label, allowance] : allowances) {
    SweepResult total;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      const SweepResult r = run_seed(seed, allowance);
      total.leaves_checked += r.leaves_checked;
      total.leaves_violating += r.leaves_violating;
      total.worst_deficit = std::max(total.worst_deficit, r.worst_deficit);
    }
    table.add_row({label, std::to_string(total.leaves_checked),
                   std::to_string(total.leaves_violating),
                   std::to_string(total.worst_deficit)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("randomized loads keep headroom, so deficits are already "
              "zero; the deterministic non-preemption adversary below "
              "exhibits the actual bound.\n\n");

  TablePrinter tight({"allowance", "urgent_class_deficit_B"});
  for (const auto& [label, allowance] : allowances) {
    tight.add_row({label, std::to_string(nonpreemption_deficit(allowance))});
  }
  std::printf("%s\n", tight.to_string().c_str());
  std::printf("expected shape (Theorem 2): the urgent packet finishes up "
              "to tau_max late because a 1500 B packet occupies the wire "
              "(deficit ~ m1 * tau_max at allowance 0), and the deficit "
              "vanishes once the allowance reaches tau_max (+eps for "
              "fixed-point rounding) — the bound is tight.\n");
  return 0;
}
