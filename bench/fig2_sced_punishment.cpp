// Experiment E1/E2 — Fig. 2 of the paper.
//
// Two sessions on a unit-capacity link (8 Mb/s here):
//   session 1: convex  S1 = {0 until 200 ms, then 6 Mb/s}
//   session 2: concave S2 = {8 Mb/s for 200 ms, then 4 Mb/s}
// Session 1 is alone during (0, t1 = 500 ms] and consumes the whole link;
// session 2 becomes active at t1 and stays backlogged.
//
// Under SCED (Fig. 2(b)(c)) session 1 is punished: it receives no service
// from t1 until the wall clock catches up with its deadline curve.  Under
// the fair service-curve scheduler (Fig. 2(d)) session 1 keeps receiving
// service right after session 2's burst phase; the price is a bounded
// violation of session 2's curve — the fairness/guarantee tradeoff of
// Section III-C(a).  H-FSC (third column pair) honours session 2's burst
// via the real-time criterion, then resumes sharing immediately.
//
// Output: cumulative service (kB) per 50 ms for each scheduler.
#include <cstdio>
#include <map>

#include "core/hfsc.hpp"
#include "sched/fsc_flat.hpp"
#include "sched/sced.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

using namespace hfsc;

namespace {

constexpr RateBps kLink = mbps(8);
constexpr TimeNs kT1 = msec(500);
constexpr TimeNs kEnd = msec(1400);
const ServiceCurve kS1{0, msec(200), mbps(6)};        // convex
const ServiceCurve kS2{mbps(8), msec(200), mbps(4)};  // concave

struct Series {
  std::map<std::size_t, Bytes> cum1, cum2;  // window -> cumulative bytes
};

Series run(Scheduler& sched, ClassId c1, ClassId c2) {
  Simulator sim(kLink, sched, msec(50));
  sim.add<GreedySource>(c1, 1000, 4, 0, kEnd);
  sim.add<GreedySource>(c2, 1000, 4, kT1, kEnd);
  Series out;
  Bytes w1 = 0, w2 = 0;
  sim.link().add_departure_hook([&](TimeNs t, const Packet& p) {
    (p.cls == c1 ? w1 : w2) += p.len;
    const std::size_t win = static_cast<std::size_t>(t / msec(50));
    out.cum1[win] = w1;
    out.cum2[win] = w2;
  });
  sim.run(kEnd);
  return out;
}

}  // namespace

int main() {
  std::printf("Fig. 2 reproduction: punishment under SCED vs fair FSC vs "
              "H-FSC\n");
  std::printf("  S1 (convex) : %s\n", to_string(kS1).c_str());
  std::printf("  S2 (concave): %s\n", to_string(kS2).c_str());
  std::printf("  session 1 active from 0; session 2 from t1 = 500 ms\n\n");

  Sced sced;
  const ClassId s1 = sced.add_session(kS1);
  const ClassId s2 = sced.add_session(kS2);
  const Series a = run(sced, s1, s2);

  FscFlat fsc;
  const ClassId f1 = fsc.add_session(kS1);
  const ClassId f2 = fsc.add_session(kS2);
  const Series b = run(fsc, f1, f2);

  Hfsc hf(kLink);
  const ClassId h1 = hf.add_class(kRootClass, ClassConfig::both(kS1));
  const ClassId h2 = hf.add_class(kRootClass, ClassConfig::both(kS2));
  const Series c = run(hf, h1, h2);

  TablePrinter table({"t_ms", "sced_w1_kB", "sced_w2_kB", "fsc_w1_kB",
                      "fsc_w2_kB", "hfsc_w1_kB", "hfsc_w2_kB"});
  auto at = [](const std::map<std::size_t, Bytes>& m, std::size_t w) {
    // Cumulative value at the end of window w (carry the last known).
    Bytes v = 0;
    for (const auto& [win, bytes] : m) {
      if (win > w) break;
      v = bytes;
    }
    return static_cast<double>(v) / 1000.0;
  };
  for (std::size_t w = 1; w < kEnd / msec(50); w += 2) {
    table.add_row({std::to_string((w + 1) * 50),
                   TablePrinter::fmt(at(a.cum1, w), 1),
                   TablePrinter::fmt(at(a.cum2, w), 1),
                   TablePrinter::fmt(at(b.cum1, w), 1),
                   TablePrinter::fmt(at(b.cum2, w), 1),
                   TablePrinter::fmt(at(c.cum1, w), 1),
                   TablePrinter::fmt(at(c.cum2, w), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Headline numbers: how long was session 1 completely starved after t1?
  auto starved_ms = [&](const Series& s) {
    const std::size_t w_t1 = kT1 / msec(50);
    Bytes at_t1 = 0;
    std::size_t until = w_t1;
    for (std::size_t w = w_t1; w < kEnd / msec(50); ++w) {
      const Bytes now = static_cast<Bytes>(at(s.cum1, w) * 1000.0);
      if (w == w_t1) {
        at_t1 = now;
      } else if (now > at_t1 + 2000) {  // >2 packets of progress
        until = w;
        break;
      }
    }
    return (until - w_t1) * 50;
  };
  std::printf("session-1 starvation after t1:  SCED ~%zu ms   "
              "FSC ~%zu ms   H-FSC ~%zu ms\n",
              starved_ms(a), starved_ms(b), starved_ms(c));
  std::printf("(paper: SCED punishes session 1 well past session 2's burst; "
              "fair variants resume service immediately / after the "
              "burst)\n");
  return 0;
}
