// bench_throughput — the canonical hot-path benchmark (machine-readable).
//
// Drives a steady-state backlogged workload through H-FSC and reports
// dequeue throughput plus per-dequeue latency percentiles for every
// EligibleSet kind on two hierarchy shapes:
//
//   * wide1000 — 1000 leaves directly under the root (the eligible-set
//     and active-children heaps dominate);
//   * deep8    — a complete binary tree 8 levels deep, 256 leaves (the
//     per-level virtual-time bookkeeping of charge_total dominates).
//
// Unlike the google-benchmark binaries (bench_overhead,
// bench_eligible_ablation) this tool emits one JSON document so the repo
// can keep a trajectory of numbers across PRs: run it from the repo root
// and commit the refreshed BENCH_throughput.json.
//
// Besides the H-FSC (workload, eligible-set) grid, each workload also runs
// once under H-PFQ and CBQ, compiled from the same HierarchySpec
// (config/hierarchy_spec.hpp), so the trajectory tracks the comparison
// families' hot paths too.  Those loops go through the virtual Scheduler
// interface and tolerate refused dequeues (CBQ shapes; it may idle while
// estimators recover), so their figure is served packets over wall time.
//
//   $ bench_throughput [--packets=N] [--smoke] [--out=FILE]
//                      [--workload=wide1000|deep8] [--kind=NAME]
//
// --smoke cuts the packet count so CI can gate on "the bench still runs
// and produces sane JSON" without paying for a full measurement.
//
// Methodology: two phases per (workload, kind) combination.  Phase A
// times the whole steady-state loop (one dequeue + one refill enqueue
// per packet) with two clock reads total, giving an undisturbed
// throughput figure.  Phase B re-runs a sample of the same loop with a
// clock read around each dequeue to collect the latency distribution;
// the two phases are reported separately because per-op timing itself
// costs tens of nanoseconds.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "config/hierarchy_spec.hpp"
#include "core/hfsc.hpp"
#include "curve/runtime_curve.hpp"
#include "runtime/host.hpp"
#include "runtime/supervisor.hpp"

namespace hfsc {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

constexpr RateBps kLink = gbps(10);
constexpr Bytes kPktLen = 1000;
constexpr int kBacklogPerLeaf = 4;

struct Workload {
  const char* name;
  std::vector<ClassId> (*build)(Hfsc&);
};

// 1000 leaves under the root, each with a concave rt+ls curve.
std::vector<ClassId> build_wide(Hfsc& s) {
  constexpr int kLeaves = 1000;
  const RateBps r = kLink / kLeaves;
  std::vector<ClassId> leaves;
  leaves.reserve(kLeaves);
  for (int i = 0; i < kLeaves; ++i) {
    leaves.push_back(s.add_class(
        kRootClass, ClassConfig::both(ServiceCurve{2 * r, msec(5), r})));
  }
  return leaves;
}

// Complete binary tree, 8 levels of classes below the root (256 leaves).
std::vector<ClassId> build_deep(Hfsc& s) {
  constexpr int kDepth = 8;
  std::vector<ClassId> level{kRootClass};
  for (int d = 1; d <= kDepth; ++d) {
    const std::size_t width = std::size_t{1} << d;
    const RateBps share = kLink / static_cast<RateBps>(width);
    std::vector<ClassId> next;
    next.reserve(width);
    for (const ClassId p : level) {
      for (int k = 0; k < 2; ++k) {
        next.push_back(s.add_class(
            p, d == kDepth
                   ? ClassConfig::both(ServiceCurve{2 * share, msec(5), share})
                   : ClassConfig::link_share_only(
                         ServiceCurve::linear(share))));
      }
    }
    level = std::move(next);
  }
  return level;
}

const char* kind_name(EligibleSetKind k) {
  switch (k) {
    case EligibleSetKind::kDualHeap:
      return "dual_heap";
    case EligibleSetKind::kAugTree:
      return "aug_tree";
    case EligibleSetKind::kCalendar:
      return "calendar";
  }
  return "?";
}

struct Result {
  std::string workload;
  std::string scheduler = "hfsc";
  std::string kind;  // eligible-set kind; "-" for non-H-FSC rows
  int shards = 1;    // > 1 only for the supervised sharded-runtime rows
  int batch = 1;     // dequeues per dequeue_batch() call (1 = single API)
  std::uint64_t packets = 0;
  std::uint64_t wall_ns = 0;
  double pkts_per_sec = 0.0;
  std::uint64_t lat_samples = 0;
  double ns_mean = 0.0;
  std::uint64_t ns_p50 = 0;
  std::uint64_t ns_p99 = 0;
};

// One steady-state pass: each iteration dequeues a packet and refills the
// class it came from, so the per-leaf backlog stays constant.  Returns the
// number of packets actually dequeued (== iters unless the config is
// broken, which the caller checks).
template <class S>
std::uint64_t run_loop(S& s, TimeNs& now, const TimeNs step,
                       std::uint64_t iters, std::uint64_t& seq,
                       std::vector<std::uint32_t>* lat) {
  std::uint64_t served = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    now += step;
    std::optional<Packet> p;
    if (lat) {
      const std::uint64_t t0 = now_ns();
      p = s.dequeue(now);
      const std::uint64_t t1 = now_ns();
      lat->push_back(static_cast<std::uint32_t>(
          std::min<std::uint64_t>(t1 - t0, 0xFFFFFFFFu)));
    } else {
      p = s.dequeue(now);
    }
    if (p) {
      ++served;
      s.enqueue(now, Packet{p->cls, kPktLen, now, seq++});
    }
  }
  return served;
}

// The batched variant of run_loop: advances the clock by k steps at once,
// drains up to k packets with one dequeue_batch() call, then refills each
// served class.  Latency samples are per-dequeue figures derived from the
// batch call (wall / served), so batch rows and single rows report the
// same unit; schema v4 tags each row with its batch size.
template <class S>
std::uint64_t run_loop_batch(S& s, TimeNs& now, const TimeNs step,
                             std::size_t k, std::uint64_t iters,
                             std::uint64_t& seq,
                             std::vector<std::uint32_t>* lat,
                             std::vector<Packet>& buf) {
  std::uint64_t served = 0;
  for (std::uint64_t i = 0; i < iters; i += k) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(k, iters - i));
    now += step * static_cast<TimeNs>(want);
    buf.clear();
    std::size_t got;
    if (lat) {
      const std::uint64_t t0 = now_ns();
      got = s.dequeue_batch(now, want, buf);
      const std::uint64_t t1 = now_ns();
      if (got > 0) {
        lat->push_back(static_cast<std::uint32_t>(
            std::min<std::uint64_t>((t1 - t0) / got, 0xFFFFFFFFu)));
      }
    } else {
      got = s.dequeue_batch(now, want, buf);
    }
    served += got;
    for (std::size_t j = 0; j < got; ++j) {
      s.enqueue(now, Packet{buf[j].cls, kPktLen, now, seq++});
    }
  }
  return served;
}

Result run_one(const Workload& w, EligibleSetKind kind, std::uint64_t packets,
               std::uint64_t lat_samples, std::size_t batch) {
  Hfsc s(kLink, kind);
  const std::vector<ClassId> leaves = w.build(s);
  TimeNs now = 0;
  std::uint64_t seq = 0;
  for (int r = 0; r < kBacklogPerLeaf; ++r) {
    for (const ClassId c : leaves) {
      s.enqueue(now, Packet{c, kPktLen, now, seq++});
    }
  }
  const TimeNs step = tx_time(kPktLen, kLink);
  std::vector<Packet> buf;
  buf.reserve(batch);

  // Warmup: reach the steady state (heaps at final size, curves past
  // their knees) before the timed phase — through the same API the timed
  // phase will use.
  std::uint64_t warm = std::min<std::uint64_t>(packets / 10, 100'000);
  if (batch > 1) {
    run_loop_batch(s, now, step, batch, warm, seq, nullptr, buf);
  } else {
    run_loop(s, now, step, warm, seq, nullptr);
  }

  Result res;
  res.workload = w.name;
  res.kind = kind_name(kind);
  res.batch = static_cast<int>(batch);
  res.packets = packets;

  const std::uint64_t t0 = now_ns();
  const std::uint64_t served =
      batch > 1 ? run_loop_batch(s, now, step, batch, packets, seq, nullptr,
                                 buf)
                : run_loop(s, now, step, packets, seq, nullptr);
  res.wall_ns = now_ns() - t0;
  if (served != packets) {
    std::fprintf(stderr,
                 "FATAL: %s/%s served %llu of %llu packets — broken config\n",
                 res.workload.c_str(), res.kind.c_str(),
                 static_cast<unsigned long long>(served),
                 static_cast<unsigned long long>(packets));
    std::exit(1);
  }
  res.pkts_per_sec =
      res.wall_ns == 0 ? 0.0 : 1e9 * static_cast<double>(packets) /
                                   static_cast<double>(res.wall_ns);

  std::vector<std::uint32_t> lat;
  lat.reserve(lat_samples);
  if (batch > 1) {
    run_loop_batch(s, now, step, batch, lat_samples, seq, &lat, buf);
  } else {
    run_loop(s, now, step, lat_samples, seq, &lat);
  }
  res.lat_samples = lat.size();
  if (!lat.empty()) {
    std::uint64_t sum = 0;
    for (const std::uint32_t v : lat) sum += v;
    res.ns_mean = static_cast<double>(sum) / static_cast<double>(lat.size());
    auto pct = [&](double q) {
      const std::size_t idx = static_cast<std::size_t>(
          q * static_cast<double>(lat.size() - 1));
      std::nth_element(lat.begin(), lat.begin() + idx, lat.end());
      return static_cast<std::uint64_t>(lat[idx]);
    };
    res.ns_p50 = pct(0.50);
    res.ns_p99 = pct(0.99);
  }
  return res;
}

// The same steady-state pass driven through RuntimeHost (runtime/host.hpp)
// with the overload governor enabled but idle at level 0: the row prices
// the resilience layer's hot-path tax (one threshold compare per enqueue
// plus the bounded-cadence sampling) against the bare scheduler.  The
// acceptance budget is < 3% off the matching hfsc/dual_heap row.
Result run_one_runtime(const Workload& w, std::uint64_t packets,
                       std::uint64_t lat_samples) {
  RuntimeOptions opts;
  opts.link_rate = kLink;
  opts.es_kind = EligibleSetKind::kDualHeap;
  // The benchmark intentionally holds a constant multi-megabyte backlog;
  // raise the ladder thresholds so the governor observes it and stays at
  // level 0 (the level-0 cost is what this row prices).
  opts.governor.enter_backlog[0] = 64 * 1024 * 1024;
  opts.governor.enter_backlog[1] = 128 * 1024 * 1024;
  opts.governor.enter_backlog[2] = 256 * 1024 * 1024;
  opts.governor.exit_backlog[0] = 32 * 1024 * 1024;
  opts.governor.exit_backlog[1] = 64 * 1024 * 1024;
  opts.governor.exit_backlog[2] = 128 * 1024 * 1024;
  opts.governor.class_threshold = 16 * 1024 * 1024;
  RuntimeHost host(opts);
  const std::vector<ClassId> leaves = w.build(host.sched());
  TimeNs now = 0;
  std::uint64_t seq = 0;
  for (int r = 0; r < kBacklogPerLeaf; ++r) {
    for (const ClassId c : leaves) {
      host.enqueue(now, Packet{c, kPktLen, now, seq++});
    }
  }
  const TimeNs step = tx_time(kPktLen, kLink);
  const std::uint64_t warm = std::min<std::uint64_t>(packets / 10, 100'000);
  run_loop(host, now, step, warm, seq, nullptr);

  Result res;
  res.workload = w.name;
  res.scheduler = "runtime";
  res.kind = kind_name(EligibleSetKind::kDualHeap);
  res.packets = packets;

  const std::uint64_t t0 = now_ns();
  const std::uint64_t served = run_loop(host, now, step, packets, seq, nullptr);
  res.wall_ns = now_ns() - t0;
  if (served != packets || host.gov_level() != 0) {
    std::fprintf(stderr,
                 "FATAL: %s/runtime served %llu of %llu at level %d — "
                 "broken config\n",
                 res.workload.c_str(),
                 static_cast<unsigned long long>(served),
                 static_cast<unsigned long long>(packets), host.gov_level());
    std::exit(1);
  }
  res.pkts_per_sec =
      res.wall_ns == 0 ? 0.0 : 1e9 * static_cast<double>(packets) /
                                   static_cast<double>(res.wall_ns);

  std::vector<std::uint32_t> lat;
  lat.reserve(lat_samples);
  run_loop(host, now, step, lat_samples, seq, &lat);
  res.lat_samples = lat.size();
  if (!lat.empty()) {
    std::uint64_t sum = 0;
    for (const std::uint32_t v : lat) sum += v;
    res.ns_mean = static_cast<double>(sum) / static_cast<double>(lat.size());
    auto pct = [&](double q) {
      const std::size_t idx = static_cast<std::size_t>(
          q * static_cast<double>(lat.size() - 1));
      std::nth_element(lat.begin(), lat.begin() + idx, lat.end());
      return static_cast<std::uint64_t>(lat[idx]);
    };
    res.ns_p50 = pct(0.50);
    res.ns_p99 = pct(0.99);
  }
  return res;
}

// The supervised sharded runtime (runtime/supervisor.hpp) on wide1000:
// the 1000 top-level leaves hash-partition across N shards, each shard a
// full RuntimeHost (+ heartbeat supervision) driven by its own worker
// thread in steady-state refill mode (checkpointing off, frontier gate
// off — pure hot-path).  The figure is total dequeues across shards over
// wall time, measured from the workers' cumulative sent counters.  On a
// single-core machine the grid records the isolation tax (threads +
// supervision vs the in-process runtime row), not a speedup.
Result run_one_sharded(const HierarchySpec& spec, int shards,
                       std::uint64_t packets) {
  ShardedOptions so;
  so.shards = shards;
  RuntimeOptions& o = so.shard.runtime;
  o.link_rate = kLink;
  o.es_kind = EligibleSetKind::kDualHeap;
  // Same idle-governor thresholds as run_one_runtime: the constant
  // multi-megabyte backlog must read as steady state, not overload.
  o.governor.enter_backlog[0] = 64 * 1024 * 1024;
  o.governor.enter_backlog[1] = 128 * 1024 * 1024;
  o.governor.enter_backlog[2] = 256 * 1024 * 1024;
  o.governor.exit_backlog[0] = 32 * 1024 * 1024;
  o.governor.exit_backlog[1] = 64 * 1024 * 1024;
  o.governor.exit_backlog[2] = 128 * 1024 * 1024;
  o.governor.class_threshold = 16 * 1024 * 1024;
  so.shard.ring_capacity = 64;
  so.shard.checkpoint_every_pops = 0;  // never: hot path only
  so.shard.serve_burst = 64;
  so.shard.refill = true;
  ShardedRuntime rt(so, spec);

  // Pre-seed the per-leaf backlog directly into each shard's host (the
  // workers have not started; construction-time access is legal).
  std::uint64_t seq = 0;
  for (const auto& c : spec.classes) {
    const ClassId gid = rt.global_id(c.name);
    Shard& sh = rt.shard(rt.shard_of(gid));
    for (int r = 0; r < kBacklogPerLeaf; ++r) {
      sh.host().enqueue(0, Packet{rt.local_id(gid), kPktLen, 0, seq++});
    }
  }
  rt.start();

  auto total_sent = [&rt, shards] {
    std::uint64_t t = 0;
    for (int s = 0; s < shards; ++s) t += rt.shard(s).sent_total();
    return t;
  };
  const std::uint64_t warm = std::min<std::uint64_t>(packets / 10, 100'000);
  while (total_sent() < warm) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const std::uint64_t s0 = total_sent();
  const std::uint64_t t0 = now_ns();
  while (total_sent() < s0 + packets) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  const std::uint64_t wall = now_ns() - t0;
  const std::uint64_t served = total_sent() - s0;
  rt.stop();
  for (int s = 0; s < shards; ++s) {
    if (rt.shard(s).dead() || rt.shard(s).restarts() != 0) {
      std::fprintf(stderr,
                   "FATAL: sharded/%d shard %d died or restarted during a "
                   "steady-state bench\n",
                   shards, s);
      std::exit(1);
    }
  }

  Result res;
  res.workload = "wide1000";
  res.scheduler = "sharded";
  res.kind = kind_name(EligibleSetKind::kDualHeap);
  res.shards = shards;
  res.packets = served;
  res.wall_ns = wall;
  res.pkts_per_sec = wall == 0 ? 0.0
                               : 1e9 * static_cast<double>(served) /
                                     static_cast<double>(wall);
  return res;  // per-dequeue latency is in-thread; no samples from here
}

// The same hierarchies as build_wide/build_deep, as a HierarchySpec the
// comparison families compile from.
HierarchySpec spec_wide() {
  constexpr int kLeaves = 1000;
  const RateBps r = kLink / kLeaves;
  HierarchySpec spec;
  for (int i = 0; i < kLeaves; ++i) {
    HierarchySpec::ClassSpec c;
    c.name = "w";
    c.name += std::to_string(i);
    c.rt = c.ls = ServiceCurve{2 * r, msec(5), r};
    spec.add(std::move(c));
  }
  return spec;
}

HierarchySpec spec_deep() {
  constexpr int kDepth = 8;
  HierarchySpec spec;
  std::vector<std::string> level{""};
  for (int d = 1; d <= kDepth; ++d) {
    const std::size_t width = std::size_t{1} << d;
    const RateBps share = kLink / static_cast<RateBps>(width);
    std::vector<std::string> next;
    next.reserve(width);
    for (const std::string& p : level) {
      for (int k = 0; k < 2; ++k) {
        HierarchySpec::ClassSpec c;
        c.name = p.empty() ? "d" : p;
        c.name += std::to_string(k);
        c.parent = p;
        if (d == kDepth) {
          c.rt = c.ls = ServiceCurve{2 * share, msec(5), share};
        } else {
          c.ls = ServiceCurve::linear(share);
        }
        next.push_back(c.name);
        spec.add(std::move(c));
      }
    }
    level = std::move(next);
  }
  return spec;
}

Result run_one_family(const char* workload, const HierarchySpec& spec,
                      SchedulerKind kind, std::uint64_t packets,
                      std::uint64_t lat_samples) {
  HierarchySpec::Compiled compiled = spec.compile(kind, kLink);
  Scheduler& s = *compiled.sched;
  std::vector<ClassId> leaves;
  for (const auto& [cls_name, id] : compiled.ids) {
    if (spec.is_leaf(cls_name)) leaves.push_back(id);
  }
  TimeNs now = 0;
  std::uint64_t seq = 0;
  for (int r = 0; r < kBacklogPerLeaf; ++r) {
    for (const ClassId c : leaves) {
      s.enqueue(now, Packet{c, kPktLen, now, seq++});
    }
  }
  const TimeNs step = tx_time(kPktLen, kLink);
  const std::uint64_t warm = std::min<std::uint64_t>(packets / 10, 100'000);
  run_loop(s, now, step, warm, seq, nullptr);

  Result res;
  res.workload = workload;
  res.scheduler = std::string(to_string(kind));
  // Single-char assign dodges GCC 12's -Wrestrict false positive (PR
  // 105651) on string-from-short-literal at -O3 under -Werror.
  res.kind = '-';
  res.packets = packets;

  const std::uint64_t t0 = now_ns();
  const std::uint64_t served = run_loop(s, now, step, packets, seq, nullptr);
  res.wall_ns = now_ns() - t0;
  if (served == 0) {
    std::fprintf(stderr, "FATAL: %s/%s served nothing — broken config\n",
                 res.workload.c_str(), res.scheduler.c_str());
    std::exit(1);
  }
  res.pkts_per_sec =
      res.wall_ns == 0 ? 0.0 : 1e9 * static_cast<double>(served) /
                                   static_cast<double>(res.wall_ns);

  std::vector<std::uint32_t> lat;
  lat.reserve(lat_samples);
  run_loop(s, now, step, lat_samples, seq, &lat);
  res.lat_samples = lat.size();
  if (!lat.empty()) {
    std::uint64_t sum = 0;
    for (const std::uint32_t v : lat) sum += v;
    res.ns_mean = static_cast<double>(sum) / static_cast<double>(lat.size());
    auto pct = [&](double q) {
      const std::size_t idx = static_cast<std::size_t>(
          q * static_cast<double>(lat.size() - 1));
      std::nth_element(lat.begin(), lat.begin() + idx, lat.end());
      return static_cast<std::uint64_t>(lat[idx]);
    };
    res.ns_p50 = pct(0.50);
    res.ns_p99 = pct(0.99);
  }
  return res;
}

void write_json(const std::vector<Result>& results, std::uint64_t packets,
                bool smoke, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "FATAL: cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_throughput\",\n");
  std::fprintf(f, "  \"schema_version\": 4,\n");
  std::fprintf(f, "  \"link_rate_bps\": %llu,\n",
               static_cast<unsigned long long>(kLink));
  std::fprintf(f, "  \"packet_len\": %llu,\n",
               static_cast<unsigned long long>(kPktLen));
  std::fprintf(f, "  \"packets_per_combo\": %llu,\n",
               static_cast<unsigned long long>(packets));
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"scheduler\": \"%s\", "
        "\"eligible_set\": \"%s\", \"shards\": %d, \"batch\": %d, "
        "\"packets\": %llu, \"wall_ns\": %llu, \"pkts_per_sec\": %.0f, "
        "\"lat_samples\": %llu",
        r.workload.c_str(), r.scheduler.c_str(), r.kind.c_str(), r.shards,
        r.batch, static_cast<unsigned long long>(r.packets),
        static_cast<unsigned long long>(r.wall_ns), r.pkts_per_sec,
        static_cast<unsigned long long>(r.lat_samples));
    // Rows with no latency samples (the sharded runtime measures its
    // dequeues in-thread) omit the latency fields entirely: schema v3
    // printed them as literal zeros, which read as an impossible 0 ns.
    if (r.lat_samples > 0) {
      std::fprintf(f,
                   ", \"ns_per_dequeue_mean\": %.1f, "
                   "\"ns_per_dequeue_p50\": %llu, "
                   "\"ns_per_dequeue_p99\": %llu",
                   r.ns_mean, static_cast<unsigned long long>(r.ns_p50),
                   static_cast<unsigned long long>(r.ns_p99));
    }
    std::fprintf(f, "}%s\n", i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace hfsc

int main(int argc, char** argv) {
  using namespace hfsc;
  std::uint64_t packets = 10'000'000;
  std::uint64_t lat_samples = 1'000'000;
  bool smoke = false;
  std::string out = "BENCH_throughput.json";
  std::string only_workload;
  std::string only_kind;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (const char* v = val("--packets=")) {
      packets = std::strtoull(v, nullptr, 10);
    } else if (const char* o = val("--out=")) {
      out = o;
    } else if (const char* w = val("--workload=")) {
      only_workload = w;
    } else if (const char* k = val("--kind=")) {
      only_kind = k;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--packets=N] [--smoke] [--out=FILE]\n"
                   "          [--workload=wide1000|deep8] "
                   "[--kind=dual_heap|aug_tree|calendar]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) {
    packets = std::min<std::uint64_t>(packets, 200'000);
    lat_samples = 50'000;
  }
  lat_samples = std::min(lat_samples, packets);

  const Workload workloads[] = {
      {"wide1000", &build_wide},
      {"deep8", &build_deep},
  };
  const EligibleSetKind kinds[] = {EligibleSetKind::kDualHeap,
                                   EligibleSetKind::kAugTree,
                                   EligibleSetKind::kCalendar};

  std::vector<Result> results;
  auto show = [](const Result& r) {
    std::printf(
        "%-8s %-5s %-9s k=%-2d  %10.0f pkts/s  mean %6.1f ns  p50 %4llu ns  "
        "p99 %4llu ns\n",
        r.workload.c_str(), r.scheduler.c_str(), r.kind.c_str(), r.batch,
        r.pkts_per_sec, r.ns_mean, static_cast<unsigned long long>(r.ns_p50),
        static_cast<unsigned long long>(r.ns_p99));
  };
  // Batch sizes for the H-FSC grid: k=1 is the classic single-dequeue
  // API; k=8/32 drive the same steady state through dequeue_batch()
  // (bit-identical service — tests/test_batch_ablation_fuzz.cpp — so the
  // delta between rows is pure call-overhead amortization).
  constexpr std::size_t kBatchSizes[] = {1, 8, 32};
  for (const Workload& w : workloads) {
    if (!only_workload.empty() && only_workload != w.name) continue;
    for (const EligibleSetKind k : kinds) {
      if (!only_kind.empty() && only_kind != kind_name(k)) continue;
      for (const std::size_t b : kBatchSizes) {
        const Result r = run_one(w, k, packets, lat_samples, b);
        show(r);
        results.push_back(r);
      }
    }
  }
  // Resilience-runtime rows: the same workloads through RuntimeHost with
  // the governor idle at level 0, plus the overhead vs the bare
  // hfsc/dual_heap row (budget: < 3%).
  if (only_kind.empty() || only_kind == "dual_heap") {
    for (const Workload& w : workloads) {
      if (!only_workload.empty() && only_workload != w.name) continue;
      const Result r = run_one_runtime(w, packets, lat_samples);
      show(r);
      for (const Result& base : results) {
        if (base.workload == r.workload && base.scheduler == "hfsc" &&
            base.kind == "dual_heap" && base.batch == 1 &&
            base.pkts_per_sec > 0) {
          std::printf("%-8s governor-at-level-0 overhead vs hfsc/dual_heap: "
                      "%+.2f%%\n",
                      r.workload.c_str(),
                      100.0 * (base.pkts_per_sec - r.pkts_per_sec) /
                          base.pkts_per_sec);
        }
      }
      results.push_back(r);
    }
  }
  // Supervised sharded-runtime rows: wide1000 hash-partitioned across
  // 1/2/4/8 shards, steady-state refill under live heartbeat
  // supervision (runtime/supervisor.hpp).
  if (only_kind.empty() &&
      (only_workload.empty() || only_workload == "wide1000")) {
    const HierarchySpec wide = spec_wide();
    for (const int n : {1, 2, 4, 8}) {
      const Result r = run_one_sharded(wide, n, packets);
      std::printf("%-8s sharded x%d dual_heap  %10.0f pkts/s\n",
                  r.workload.c_str(), r.shards, r.pkts_per_sec);
      results.push_back(r);
    }
  }
  // Comparison-family rows: the same hierarchies through H-PFQ and CBQ.
  // The H-FSC-only --kind filter skips them (they have no eligible set).
  if (only_kind.empty()) {
    const std::pair<const char*, HierarchySpec> specs[] = {
        {"wide1000", spec_wide()},
        {"deep8", spec_deep()},
    };
    for (const auto& [wname, spec] : specs) {
      if (!only_workload.empty() && only_workload != wname) continue;
      for (const SchedulerKind kind :
           {SchedulerKind::kHpfq, SchedulerKind::kCbq}) {
        const Result r =
            run_one_family(wname, spec, kind, packets, lat_samples);
        show(r);
        results.push_back(r);
      }
    }
  }
  if (results.empty()) {
    std::fprintf(stderr, "no (workload, kind) combination selected\n");
    return 2;
  }
#ifdef HFSC_CACHE_STATS
  {
    const auto& cs = curve_cache_stats();
    const std::uint64_t hits = cs.hits.load(std::memory_order_relaxed);
    const std::uint64_t misses = cs.misses.load(std::memory_order_relaxed);
    const std::uint64_t total = hits + misses;
    std::printf("curve-inverse cache: %llu hits / %llu misses (%.1f%% hit)\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(hits) /
                                 static_cast<double>(total));
  }
#endif
  write_json(results, packets, smoke, out);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
