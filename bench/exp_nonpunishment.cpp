// Experiment E11 — Section III-B's motivation for fairness: "a video
// application may choose to make reservation only for its minimal
// transmission quality and use the excess service to increase its
// quality.  In a system which penalizes a session for using excess
// service, such an adaptive application runs the risk of not receiving
// its minimum bandwidth."
//
// Scenario: an adaptive video class reserves 2 Mb/s but opportunistically
// fills the whole 10 Mb/s link while FTP is idle.  FTP (6 Mb/s share)
// wakes at t = 2 s.  We measure the video class's throughput around the
// transition under Virtual Clock, SCED, and H-FSC, and in particular its
// worst 100 ms window after the wake-up — the "did I drop below my
// reservation?" number an adaptive codec cares about.
#include <cstdio>

#include "core/hfsc.hpp"
#include "sched/sced.hpp"
#include "sched/virtual_clock.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

using namespace hfsc;

namespace {

constexpr RateBps kLink = mbps(10);
constexpr TimeNs kWake = sec(2);
constexpr TimeNs kEnd = sec(4);
const ServiceCurve kVideoSc = ServiceCurve::linear(mbps(2));
const ServiceCurve kFtpSc = ServiceCurve::linear(mbps(6));

struct Result {
  double before_mbps;     // video rate while alone
  double worst_window;    // worst 100 ms video window after wake
  double after_mbps;      // steady-state video rate after wake
  double ftp_mbps;        // steady-state ftp rate after wake
};

Result drive(Scheduler& sched, ClassId video, ClassId ftp) {
  Simulator sim(kLink, sched);
  sim.add<GreedySource>(video, 1250, 6, 0, kEnd);  // adaptive: always more
  sim.add<GreedySource>(ftp, 1500, 6, kWake, kEnd);
  sim.run(kEnd);
  const auto& t = sim.tracker();
  double worst = 1e9;
  for (TimeNs w = kWake; w + msec(100) <= kEnd; w += msec(100)) {
    worst = std::min(worst, t.rate_mbps(video, w, w + msec(100)));
  }
  return Result{t.rate_mbps(video, msec(200), kWake), worst,
                t.rate_mbps(video, kWake + msec(500), kEnd),
                t.rate_mbps(ftp, kWake + msec(500), kEnd)};
}

}  // namespace

int main() {
  std::printf("E11: adaptive application using excess bandwidth (video "
              "reserves 2 Mb/s, FTP 6 Mb/s wakes at t=2 s, 10 Mb/s "
              "link)\n\n");
  TablePrinter table({"sched", "video_before_mbps", "video_worst_100ms",
                      "video_after_mbps", "ftp_after_mbps"});

  {
    VirtualClock vc;
    const ClassId video = vc.add_session(mbps(2));
    const ClassId ftp = vc.add_session(mbps(6));
    const Result r = drive(vc, video, ftp);
    table.add_row({"VirtualClock", TablePrinter::fmt(r.before_mbps, 2),
                   TablePrinter::fmt(r.worst_window, 2),
                   TablePrinter::fmt(r.after_mbps, 2),
                   TablePrinter::fmt(r.ftp_mbps, 2)});
  }
  {
    Sced sced;
    const ClassId video = sced.add_session(kVideoSc);
    const ClassId ftp = sced.add_session(kFtpSc);
    const Result r = drive(sced, video, ftp);
    table.add_row({"SCED", TablePrinter::fmt(r.before_mbps, 2),
                   TablePrinter::fmt(r.worst_window, 2),
                   TablePrinter::fmt(r.after_mbps, 2),
                   TablePrinter::fmt(r.ftp_mbps, 2)});
  }
  {
    Hfsc hfsc(kLink);
    const ClassId video =
        hfsc.add_class(kRootClass, ClassConfig::both(kVideoSc));
    const ClassId ftp = hfsc.add_class(kRootClass, ClassConfig::both(kFtpSc));
    const Result r = drive(hfsc, video, ftp);
    table.add_row({"H-FSC", TablePrinter::fmt(r.before_mbps, 2),
                   TablePrinter::fmt(r.worst_window, 2),
                   TablePrinter::fmt(r.after_mbps, 2),
                   TablePrinter::fmt(r.ftp_mbps, 2)});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected shape (paper): under Virtual Clock / SCED the video "
              "class's worst window after the wake-up drops to ~0 — it is "
              "punished for its 2 s of excess and briefly loses even its "
              "2 Mb/s reservation; under H-FSC the worst window stays at "
              "(or above) the reservation.  Steady state is 2.5/7.5 by the "
              "2:6 curves for all three.\n");
  return 0;
}
