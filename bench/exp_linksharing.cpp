// Experiment E5 — the paper's link-sharing simulation (Section VII):
// hierarchical bandwidth distribution as classes oscillate between active
// and idle, on the Fig. 1 hierarchy.
//
// Timeline on a 45 Mb/s link (CMU 25 / U.Pitt 20):
//   0-2 s : all four leaf classes greedy
//   2-4 s : CMU video idle       -> its 10 Mb/s goes to CMU's other
//                                   classes first (goal 1 of Section I)
//   4-6 s : U.Pitt data idle     -> its 20 Mb/s spreads over CMU by the
//                                   CMU-internal curves (goal 2)
//   6-8 s : all greedy again     -> immediate reconvergence, nobody is
//                                   punished for having used the excess
//
// Output: per-class throughput in every 500 ms window, for H-FSC and
// H-PFQ side by side.
#include <cstdio>

#include "core/hfsc.hpp"
#include "sched/hpfq.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

using namespace hfsc;

namespace {

constexpr RateBps kLink = mbps(45);
constexpr TimeNs kEnd = sec(8);

struct Ids {
  ClassId audio, video, cmu_data, pitt_data;
};

struct Windows {
  std::vector<double> audio, video, cmu_data, pitt_data;
};

Windows drive(Scheduler& sched, Ids ids) {
  Simulator sim(kLink, sched);
  sim.add<GreedySource>(ids.audio, 1000, 6, 0, kEnd);
  // video greedy except (2 s, 4 s)
  sim.add<GreedySource>(ids.video, 1500, 6, 0, sec(2));
  sim.add<GreedySource>(ids.video, 1500, 6, sec(4), kEnd);
  // U.Pitt data greedy except (4 s, 6 s)
  sim.add<GreedySource>(ids.pitt_data, 1500, 6, 0, sec(4));
  sim.add<GreedySource>(ids.pitt_data, 1500, 6, sec(6), kEnd);
  sim.add<GreedySource>(ids.cmu_data, 1500, 6, 0, kEnd);
  sim.run(kEnd);
  Windows w;
  for (TimeNs t0 = 0; t0 < kEnd; t0 += msec(500)) {
    const TimeNs t1 = t0 + msec(500);
    w.audio.push_back(sim.tracker().rate_mbps(ids.audio, t0, t1));
    w.video.push_back(sim.tracker().rate_mbps(ids.video, t0, t1));
    w.cmu_data.push_back(sim.tracker().rate_mbps(ids.cmu_data, t0, t1));
    w.pitt_data.push_back(sim.tracker().rate_mbps(ids.pitt_data, t0, t1));
  }
  return w;
}

void print(const char* name, const Windows& w) {
  std::printf("%s:\n", name);
  TablePrinter table({"window_s", "cmu_audio", "cmu_video", "cmu_data",
                      "pitt_data", "total"});
  for (std::size_t i = 0; i < w.audio.size(); ++i) {
    const double total =
        w.audio[i] + w.video[i] + w.cmu_data[i] + w.pitt_data[i];
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f-%.1f",
                  static_cast<double>(i) * 0.5,
                  static_cast<double>(i + 1) * 0.5);
    table.add_row({label, TablePrinter::fmt(w.audio[i], 2),
                   TablePrinter::fmt(w.video[i], 2),
                   TablePrinter::fmt(w.cmu_data[i], 2),
                   TablePrinter::fmt(w.pitt_data[i], 2),
                   TablePrinter::fmt(total, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("E5: hierarchical link-sharing on the Fig. 1 hierarchy "
              "(45 Mb/s; CMU 25 = audio 5 + video 10 + data 10; U.Pitt "
              "20)\n");
  std::printf("  phases: all on | video idle 2-4 s | pitt idle 4-6 s | all "
              "on\n\n");

  {
    Hfsc s(kLink);
    const ClassId cmu = s.add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(25))));
    const ClassId pitt = s.add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(20))));
    Ids ids;
    ids.audio = s.add_class(
        cmu, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));
    ids.video = s.add_class(
        cmu, ClassConfig::link_share_only(ServiceCurve::linear(mbps(10))));
    ids.cmu_data = s.add_class(
        cmu, ClassConfig::link_share_only(ServiceCurve::linear(mbps(10))));
    ids.pitt_data = s.add_class(
        pitt, ClassConfig::link_share_only(ServiceCurve::linear(mbps(20))));
    print("H-FSC", drive(s, ids));
  }
  {
    HPfq s(kLink);
    const ClassId cmu = s.add_class(kRootClass, mbps(25));
    const ClassId pitt = s.add_class(kRootClass, mbps(20));
    Ids ids;
    ids.audio = s.add_class(cmu, mbps(5));
    ids.video = s.add_class(cmu, mbps(10));
    ids.cmu_data = s.add_class(cmu, mbps(10));
    ids.pitt_data = s.add_class(pitt, mbps(20));
    print("H-PFQ", drive(s, ids));
  }

  std::printf("expected shape (paper): while video is idle its 10 Mb/s "
              "goes to CMU audio/data (15/20 split by curves -> audio "
              "~8.3, data ~16.7), NOT to U.Pitt; while U.Pitt is idle all "
              "45 Mb/s goes to CMU in 5:10:10 proportion; both schedulers "
              "realize the hierarchy, H-FSC additionally honours real-time "
              "curves when configured.\n");
  return 0;
}
