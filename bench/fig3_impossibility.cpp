// Experiment E3 — Fig. 3 of the paper.
//
// Hierarchy: root splits 4/4 Mb/s into two interior classes, each with two
// leaves whose service curves are concave {4 Mb/s for 20 ms, then 2 Mb/s};
// each interior curve is (by the figure's convention) the sum of its
// children's.  Sessions 2-4 are backlogged from t = 0; session 1 wakes at
// t1 = 1 s.  At that instant the sum of the service curves that must be
// satisfied exceeds the server curve — the model is unrealizable
// (Section III-C(b)).
//
// The experiment shows H-FSC's resolution: session 1's (leaf) curve is
// honoured via the real-time criterion at the expense of short-term
// link-sharing accuracy for the interior classes, and the system converges
// to the fair allocation within the burst horizon.
//
// Output: per-50 ms throughput of each session around t1.
#include <cstdio>

#include "core/hfsc.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

using namespace hfsc;

int main() {
  const RateBps link = mbps(8);
  const ServiceCurve leaf_sc{mbps(4), msec(20), mbps(2)};
  const ServiceCurve org_sc{mbps(8), msec(20), mbps(4)};  // sum of children

  Hfsc sched(link);
  const ClassId orgA =
      sched.add_class(kRootClass, ClassConfig::link_share_only(org_sc));
  const ClassId orgB =
      sched.add_class(kRootClass, ClassConfig::link_share_only(org_sc));
  const ClassId s1 = sched.add_class(orgA, ClassConfig::both(leaf_sc));
  const ClassId s2 = sched.add_class(orgA, ClassConfig::both(leaf_sc));
  const ClassId s3 = sched.add_class(orgB, ClassConfig::both(leaf_sc));
  const ClassId s4 = sched.add_class(orgB, ClassConfig::both(leaf_sc));

  const TimeNs t1 = sec(1);
  const TimeNs end = sec(2);
  Simulator sim(link, sched, msec(50));
  sim.add<GreedySource>(s2, 1000, 4, 0, end);
  sim.add<GreedySource>(s3, 1000, 4, 0, end);
  sim.add<GreedySource>(s4, 1000, 4, 0, end);
  sim.add<GreedySource>(s1, 1000, 4, t1, end);
  sim.run(end);

  std::printf("Fig. 3 reproduction: sessions 2-4 active from 0, session 1 "
              "wakes at t1 = 1000 ms\n");
  std::printf("  leaf curves: %s (sum m1 = 16 Mb/s > link 8 Mb/s at t1: "
              "unrealizable)\n\n",
              to_string(leaf_sc).c_str());

  const auto& t = sim.tracker();
  TablePrinter table(
      {"window_ms", "s1_mbps", "s2_mbps", "s3_mbps", "s4_mbps"});
  for (TimeNs w = msec(800); w < msec(1400); w += msec(50)) {
    table.add_row({std::to_string(w / msec(1)) + "-" +
                       std::to_string((w + msec(50)) / msec(1)),
                   TablePrinter::fmt(t.rate_mbps(s1, w, w + msec(50)), 2),
                   TablePrinter::fmt(t.rate_mbps(s2, w, w + msec(50)), 2),
                   TablePrinter::fmt(t.rate_mbps(s3, w, w + msec(50)), 2),
                   TablePrinter::fmt(t.rate_mbps(s4, w, w + msec(50)), 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("steady state after the conflict (1300-2000 ms):\n");
  const ClassId sessions[] = {s1, s2, s3, s4};
  for (int i = 0; i < 4; ++i) {
    std::printf("  session %d: %.2f Mb/s (guaranteed long-term rate: 2)\n",
                i + 1, t.rate_mbps(sessions[i], msec(1300), end));
  }
  std::printf("\nsession 1 burst window (1000-1050 ms): %.2f Mb/s -- above "
              "its 2 Mb/s share because the leaf guarantee wins; the "
              "deficit is borne by the siblings' link-sharing, exactly the "
              "tradeoff Fig. 3 illustrates\n",
              t.rate_mbps(s1, t1, t1 + msec(50)));
  return 0;
}
