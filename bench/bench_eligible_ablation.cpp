// Experiment E10 — Section V data-structure ablation: the dual-heap
// ("calendar queue + deadline heap") versus the augmented balanced tree
// (ref. [16]) implementations of the real-time request set.
//
// Two views:
//   * isolated — raw update / query / erase cycles on the structures with
//     synthetic (e, d) requests;
//   * end-to-end — a full H-FSC scheduler configured with each structure
//     under an all-backlogged workload.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/eligible_set.hpp"
#include "core/hfsc.hpp"
#include "util/rng.hpp"

namespace hfsc {
namespace {

void isolated(benchmark::State& state, EligibleSetKind kind) {
  const int n = static_cast<int>(state.range(0));
  auto set = make_eligible_set(kind);
  Rng rng(7);
  TimeNs now = 0;
  // Steady state: n requests resident.
  for (int i = 1; i <= n; ++i) {
    set->update(static_cast<ClassId>(i), rng.uniform(0, msec(10)),
                rng.uniform(msec(10), msec(30)), now);
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    now += usec(10);
    const ClassId cls = 1 + (i % static_cast<std::uint32_t>(n));
    set->update(cls, now + rng.uniform(0, msec(10)),
                now + rng.uniform(msec(10), msec(30)), now);
    auto got = set->min_deadline_eligible(now);
    benchmark::DoNotOptimize(got);
    ++i;
  }
}

void BM_EligibleDualHeap(benchmark::State& state) {
  isolated(state, EligibleSetKind::kDualHeap);
}
void BM_EligibleAugTree(benchmark::State& state) {
  isolated(state, EligibleSetKind::kAugTree);
}
void BM_EligibleCalendar(benchmark::State& state) {
  isolated(state, EligibleSetKind::kCalendar);
}

void end_to_end(benchmark::State& state, EligibleSetKind kind) {
  const int n = static_cast<int>(state.range(0));
  const RateBps link = gbps(1);
  Hfsc sched(link, kind);
  std::vector<ClassId> cls;
  for (int i = 0; i < n; ++i) {
    const RateBps r = link / static_cast<RateBps>(n);
    cls.push_back(sched.add_class(
        kRootClass, ClassConfig::both(ServiceCurve{2 * r, msec(5), r})));
  }
  TimeNs now = 0;
  std::uint64_t seq = 0;
  for (int r = 0; r < 4; ++r) {
    for (ClassId c : cls) sched.enqueue(now, Packet{c, 1000, now, seq++});
  }
  const TimeNs step = tx_time(1000, link);
  std::size_t i = 0;
  for (auto _ : state) {
    now += step;
    sched.enqueue(now, Packet{cls[i % cls.size()], 1000, now, seq++});
    auto p = sched.dequeue(now);
    benchmark::DoNotOptimize(p);
    ++i;
  }
}

void BM_HfscDualHeap(benchmark::State& state) {
  end_to_end(state, EligibleSetKind::kDualHeap);
}
void BM_HfscAugTree(benchmark::State& state) {
  end_to_end(state, EligibleSetKind::kAugTree);
}
void BM_HfscCalendar(benchmark::State& state) {
  end_to_end(state, EligibleSetKind::kCalendar);
}

BENCHMARK(BM_EligibleDualHeap)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_EligibleAugTree)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_EligibleCalendar)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_HfscDualHeap)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_HfscAugTree)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_HfscCalendar)->RangeMultiplier(4)->Range(16, 4096);

}  // namespace
}  // namespace hfsc
