// Experiment E9 — the paper's measurement experiments (Section VII /
// Table-I shape): per-packet scheduling overhead as a function of the
// number of classes, for H-FSC and every baseline.
//
// The authors measured enqueue+dequeue microseconds in a NetBSD kernel on
// a Pentium; we measure ns/op of the identical algorithmic code in user
// space (substitution documented in DESIGN.md).  The comparable result is
// the *shape*: O(log n) growth for the heap-based schedulers, flat for
// FIFO, and the constant factors between disciplines.
//
// Each iteration performs one enqueue and one dequeue in steady state with
// all classes backlogged, advancing simulated time so curve updates and
// eligibility migrations are exercised.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/hfsc.hpp"
#include "sched/fifo.hpp"
#include "sched/hpfq.hpp"
#include "sched/pfq_sched.hpp"
#include "sched/sced.hpp"
#include "sched/virtual_clock.hpp"
#include "util/rng.hpp"

namespace hfsc {
namespace {

constexpr RateBps kLink = gbps(1);
constexpr Bytes kPkt = 1000;

// Drives one enqueue+dequeue per iteration with `n` backlogged classes.
template <typename MakeSched, typename AddClass>
void drive(benchmark::State& state, MakeSched make, AddClass add) {
  const int n = static_cast<int>(state.range(0));
  auto sched = make();
  std::vector<ClassId> cls;
  cls.reserve(n);
  for (int i = 0; i < n; ++i) cls.push_back(add(*sched, n));
  // Pre-fill: 4 packets per class.
  TimeNs now = 0;
  std::uint64_t seq = 0;
  for (int r = 0; r < 4; ++r) {
    for (ClassId c : cls) {
      sched->enqueue(now, Packet{c, kPkt, now, seq++});
    }
  }
  Rng rng(42);
  const TimeNs step = tx_time(kPkt, kLink);
  std::size_t i = 0;
  for (auto _ : state) {
    now += step;
    sched->enqueue(now, Packet{cls[i % cls.size()], kPkt, now, seq++});
    auto p = sched->dequeue(now);
    benchmark::DoNotOptimize(p);
    ++i;
  }
  state.SetLabel(std::string(sched->name()));
}

void BM_Fifo(benchmark::State& state) {
  drive(
      state, [] { return std::make_unique<Fifo>(); },
      [](Fifo&, int) { return ClassId{1}; });
}

void BM_VirtualClock(benchmark::State& state) {
  drive(
      state, [] { return std::make_unique<VirtualClock>(); },
      [](VirtualClock& s, int n) {
        return s.add_session(kLink / static_cast<RateBps>(n));
      });
}

void BM_Sced(benchmark::State& state) {
  drive(
      state, [] { return std::make_unique<Sced>(); },
      [](Sced& s, int n) {
        const RateBps r = kLink / static_cast<RateBps>(n);
        return s.add_session(ServiceCurve{2 * r, msec(5), r});
      });
}

void BM_Wf2qPlus(benchmark::State& state) {
  drive(
      state,
      [] { return std::make_unique<PfqSched>(kLink, PfqPolicy::SEFF); },
      [](PfqSched& s, int n) {
        return s.add_session(kLink / static_cast<RateBps>(n));
      });
}

void BM_HPfq(benchmark::State& state) {
  // Two-level tree: sqrt(n) orgs with sqrt(n) leaves each.
  const int n = static_cast<int>(state.range(0));
  int orgs = 1;
  while (orgs * orgs < n) ++orgs;
  auto sched = std::make_unique<HPfq>(kLink);
  std::vector<ClassId> cls;
  const RateBps org_rate = kLink / static_cast<RateBps>(orgs);
  for (int o = 0; o < orgs && static_cast<int>(cls.size()) < n; ++o) {
    const ClassId org = sched->add_class(kRootClass, org_rate);
    for (int l = 0; l < orgs && static_cast<int>(cls.size()) < n; ++l) {
      cls.push_back(sched->add_class(
          org, org_rate / static_cast<RateBps>(orgs)));
    }
  }
  TimeNs now = 0;
  std::uint64_t seq = 0;
  for (int r = 0; r < 4; ++r) {
    for (ClassId c : cls) sched->enqueue(now, Packet{c, kPkt, now, seq++});
  }
  const TimeNs step = tx_time(kPkt, kLink);
  std::size_t i = 0;
  for (auto _ : state) {
    now += step;
    sched->enqueue(now, Packet{cls[i % cls.size()], kPkt, now, seq++});
    auto p = sched->dequeue(now);
    benchmark::DoNotOptimize(p);
    ++i;
  }
  state.SetLabel("H-PFQ (2-level)");
}

template <EligibleSetKind kKind>
void BM_Hfsc(benchmark::State& state) {
  drive(
      state,
      [] { return std::make_unique<Hfsc>(kLink, kKind); },
      [](Hfsc& s, int n) {
        const RateBps r = kLink / static_cast<RateBps>(n);
        return s.add_class(kRootClass,
                           ClassConfig::both(ServiceCurve{2 * r, msec(5), r}));
      });
}

void BM_HfscTwoLevel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  int orgs = 1;
  while (orgs * orgs < n) ++orgs;
  auto sched = std::make_unique<Hfsc>(kLink);
  std::vector<ClassId> cls;
  const RateBps org_rate = kLink / static_cast<RateBps>(orgs);
  for (int o = 0; o < orgs && static_cast<int>(cls.size()) < n; ++o) {
    const ClassId org = sched->add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(org_rate)));
    for (int l = 0; l < orgs && static_cast<int>(cls.size()) < n; ++l) {
      const RateBps r = org_rate / static_cast<RateBps>(orgs);
      cls.push_back(sched->add_class(
          org, ClassConfig::both(ServiceCurve{2 * r, msec(5), r})));
    }
  }
  TimeNs now = 0;
  std::uint64_t seq = 0;
  for (int r = 0; r < 4; ++r) {
    for (ClassId c : cls) sched->enqueue(now, Packet{c, kPkt, now, seq++});
  }
  const TimeNs step = tx_time(kPkt, kLink);
  std::size_t i = 0;
  for (auto _ : state) {
    now += step;
    sched->enqueue(now, Packet{cls[i % cls.size()], kPkt, now, seq++});
    auto p = sched->dequeue(now);
    benchmark::DoNotOptimize(p);
    ++i;
  }
  state.SetLabel("H-FSC (2-level)");
}

constexpr int kLo = 16;
constexpr int kHi = 4096;

BENCHMARK(BM_Fifo)->RangeMultiplier(4)->Range(kLo, kHi);
BENCHMARK(BM_VirtualClock)->RangeMultiplier(4)->Range(kLo, kHi);
BENCHMARK(BM_Sced)->RangeMultiplier(4)->Range(kLo, kHi);
BENCHMARK(BM_Wf2qPlus)->RangeMultiplier(4)->Range(kLo, kHi);
BENCHMARK(BM_HPfq)->RangeMultiplier(4)->Range(kLo, kHi);
BENCHMARK(BM_Hfsc<EligibleSetKind::kDualHeap>)
    ->RangeMultiplier(4)
    ->Range(kLo, kHi);
BENCHMARK(BM_HfscTwoLevel)->RangeMultiplier(4)->Range(kLo, kHi);

}  // namespace
}  // namespace hfsc
