file(REMOVE_RECURSE
  "CMakeFiles/fig3_impossibility.dir/fig3_impossibility.cpp.o"
  "CMakeFiles/fig3_impossibility.dir/fig3_impossibility.cpp.o.d"
  "fig3_impossibility"
  "fig3_impossibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_impossibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
