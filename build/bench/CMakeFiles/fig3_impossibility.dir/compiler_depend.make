# Empty compiler generated dependencies file for fig3_impossibility.
# This may be replaced when dependencies are built.
