file(REMOVE_RECURSE
  "CMakeFiles/exp_vt_discrepancy.dir/exp_vt_discrepancy.cpp.o"
  "CMakeFiles/exp_vt_discrepancy.dir/exp_vt_discrepancy.cpp.o.d"
  "exp_vt_discrepancy"
  "exp_vt_discrepancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_vt_discrepancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
