# Empty compiler generated dependencies file for exp_vt_discrepancy.
# This may be replaced when dependencies are built.
