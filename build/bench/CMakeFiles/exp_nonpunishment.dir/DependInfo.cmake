
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp_nonpunishment.cpp" "bench/CMakeFiles/exp_nonpunishment.dir/exp_nonpunishment.cpp.o" "gcc" "bench/CMakeFiles/exp_nonpunishment.dir/exp_nonpunishment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hfsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hfsc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hfsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/curve/CMakeFiles/hfsc_curve.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hfsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
