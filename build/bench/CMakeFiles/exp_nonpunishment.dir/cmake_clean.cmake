file(REMOVE_RECURSE
  "CMakeFiles/exp_nonpunishment.dir/exp_nonpunishment.cpp.o"
  "CMakeFiles/exp_nonpunishment.dir/exp_nonpunishment.cpp.o.d"
  "exp_nonpunishment"
  "exp_nonpunishment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_nonpunishment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
