# Empty dependencies file for exp_nonpunishment.
# This may be replaced when dependencies are built.
