file(REMOVE_RECURSE
  "CMakeFiles/exp_admission.dir/exp_admission.cpp.o"
  "CMakeFiles/exp_admission.dir/exp_admission.cpp.o.d"
  "exp_admission"
  "exp_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
