# Empty compiler generated dependencies file for exp_admission.
# This may be replaced when dependencies are built.
