file(REMOVE_RECURSE
  "CMakeFiles/exp_delay_vs_depth.dir/exp_delay_vs_depth.cpp.o"
  "CMakeFiles/exp_delay_vs_depth.dir/exp_delay_vs_depth.cpp.o.d"
  "exp_delay_vs_depth"
  "exp_delay_vs_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_delay_vs_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
