# Empty compiler generated dependencies file for exp_delay_vs_depth.
# This may be replaced when dependencies are built.
