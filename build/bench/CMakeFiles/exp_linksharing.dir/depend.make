# Empty dependencies file for exp_linksharing.
# This may be replaced when dependencies are built.
