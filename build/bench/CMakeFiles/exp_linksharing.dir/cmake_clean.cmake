file(REMOVE_RECURSE
  "CMakeFiles/exp_linksharing.dir/exp_linksharing.cpp.o"
  "CMakeFiles/exp_linksharing.dir/exp_linksharing.cpp.o.d"
  "exp_linksharing"
  "exp_linksharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_linksharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
