file(REMOVE_RECURSE
  "CMakeFiles/fig2_sced_punishment.dir/fig2_sced_punishment.cpp.o"
  "CMakeFiles/fig2_sced_punishment.dir/fig2_sced_punishment.cpp.o.d"
  "fig2_sced_punishment"
  "fig2_sced_punishment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sced_punishment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
