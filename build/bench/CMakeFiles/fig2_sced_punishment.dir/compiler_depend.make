# Empty compiler generated dependencies file for fig2_sced_punishment.
# This may be replaced when dependencies are built.
