file(REMOVE_RECURSE
  "CMakeFiles/bench_eligible_ablation.dir/bench_eligible_ablation.cpp.o"
  "CMakeFiles/bench_eligible_ablation.dir/bench_eligible_ablation.cpp.o.d"
  "bench_eligible_ablation"
  "bench_eligible_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eligible_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
