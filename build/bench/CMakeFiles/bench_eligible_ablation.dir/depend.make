# Empty dependencies file for bench_eligible_ablation.
# This may be replaced when dependencies are built.
