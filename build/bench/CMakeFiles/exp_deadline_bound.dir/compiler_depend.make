# Empty compiler generated dependencies file for exp_deadline_bound.
# This may be replaced when dependencies are built.
