file(REMOVE_RECURSE
  "CMakeFiles/exp_deadline_bound.dir/exp_deadline_bound.cpp.o"
  "CMakeFiles/exp_deadline_bound.dir/exp_deadline_bound.cpp.o.d"
  "exp_deadline_bound"
  "exp_deadline_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_deadline_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
