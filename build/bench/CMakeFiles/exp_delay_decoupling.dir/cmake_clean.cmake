file(REMOVE_RECURSE
  "CMakeFiles/exp_delay_decoupling.dir/exp_delay_decoupling.cpp.o"
  "CMakeFiles/exp_delay_decoupling.dir/exp_delay_decoupling.cpp.o.d"
  "exp_delay_decoupling"
  "exp_delay_decoupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_delay_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
