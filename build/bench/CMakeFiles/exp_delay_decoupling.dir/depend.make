# Empty dependencies file for exp_delay_decoupling.
# This may be replaced when dependencies are built.
