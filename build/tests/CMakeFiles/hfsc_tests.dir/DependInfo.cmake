
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_classifier.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_classifier.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_classifier.cpp.o.d"
  "/root/repo/tests/test_conditioning.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_conditioning.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_conditioning.cpp.o.d"
  "/root/repo/tests/test_drr_cbq.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_drr_cbq.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_drr_cbq.cpp.o.d"
  "/root/repo/tests/test_eligible_set.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_eligible_set.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_eligible_set.cpp.o.d"
  "/root/repo/tests/test_gps.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_gps.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_gps.cpp.o.d"
  "/root/repo/tests/test_hfsc_basic.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_hfsc_basic.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_hfsc_basic.cpp.o.d"
  "/root/repo/tests/test_hfsc_dynamic.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_hfsc_dynamic.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_hfsc_dynamic.cpp.o.d"
  "/root/repo/tests/test_hfsc_edge.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_hfsc_edge.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_hfsc_edge.cpp.o.d"
  "/root/repo/tests/test_hfsc_fuzz.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_hfsc_fuzz.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_hfsc_fuzz.cpp.o.d"
  "/root/repo/tests/test_hfsc_guarantees.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_hfsc_guarantees.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_hfsc_guarantees.cpp.o.d"
  "/root/repo/tests/test_hfsc_linksharing.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_hfsc_linksharing.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_hfsc_linksharing.cpp.o.d"
  "/root/repo/tests/test_hfsc_upperlimit.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_hfsc_upperlimit.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_hfsc_upperlimit.cpp.o.d"
  "/root/repo/tests/test_hpfq_policies.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_hpfq_policies.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_hpfq_policies.cpp.o.d"
  "/root/repo/tests/test_indexed_heap.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_indexed_heap.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_indexed_heap.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_linear_curve_advantage.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_linear_curve_advantage.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_linear_curve_advantage.cpp.o.d"
  "/root/repo/tests/test_pfq.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_pfq.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_pfq.cpp.o.d"
  "/root/repo/tests/test_piecewise.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_piecewise.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_piecewise.cpp.o.d"
  "/root/repo/tests/test_router_pipeline.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_router_pipeline.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_router_pipeline.cpp.o.d"
  "/root/repo/tests/test_runtime_curve.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_runtime_curve.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_runtime_curve.cpp.o.d"
  "/root/repo/tests/test_sced_vc.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_sced_vc.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_sced_vc.cpp.o.d"
  "/root/repo/tests/test_scenario.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_scenario.cpp.o.d"
  "/root/repo/tests/test_service_curve.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_service_curve.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_service_curve.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_stats_rng.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_stats_rng.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_stats_rng.cpp.o.d"
  "/root/repo/tests/test_tandem_trace.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_tandem_trace.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_tandem_trace.cpp.o.d"
  "/root/repo/tests/test_types.cpp" "tests/CMakeFiles/hfsc_tests.dir/test_types.cpp.o" "gcc" "tests/CMakeFiles/hfsc_tests.dir/test_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hfsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hfsc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hfsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/curve/CMakeFiles/hfsc_curve.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hfsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
