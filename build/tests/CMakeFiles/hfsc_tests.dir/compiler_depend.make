# Empty compiler generated dependencies file for hfsc_tests.
# This may be replaced when dependencies are built.
