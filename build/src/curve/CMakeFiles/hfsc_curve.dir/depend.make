# Empty dependencies file for hfsc_curve.
# This may be replaced when dependencies are built.
