file(REMOVE_RECURSE
  "CMakeFiles/hfsc_curve.dir/piecewise.cpp.o"
  "CMakeFiles/hfsc_curve.dir/piecewise.cpp.o.d"
  "CMakeFiles/hfsc_curve.dir/runtime_curve.cpp.o"
  "CMakeFiles/hfsc_curve.dir/runtime_curve.cpp.o.d"
  "CMakeFiles/hfsc_curve.dir/service_curve.cpp.o"
  "CMakeFiles/hfsc_curve.dir/service_curve.cpp.o.d"
  "libhfsc_curve.a"
  "libhfsc_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfsc_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
