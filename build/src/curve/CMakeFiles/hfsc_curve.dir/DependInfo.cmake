
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/curve/piecewise.cpp" "src/curve/CMakeFiles/hfsc_curve.dir/piecewise.cpp.o" "gcc" "src/curve/CMakeFiles/hfsc_curve.dir/piecewise.cpp.o.d"
  "/root/repo/src/curve/runtime_curve.cpp" "src/curve/CMakeFiles/hfsc_curve.dir/runtime_curve.cpp.o" "gcc" "src/curve/CMakeFiles/hfsc_curve.dir/runtime_curve.cpp.o.d"
  "/root/repo/src/curve/service_curve.cpp" "src/curve/CMakeFiles/hfsc_curve.dir/service_curve.cpp.o" "gcc" "src/curve/CMakeFiles/hfsc_curve.dir/service_curve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hfsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
