file(REMOVE_RECURSE
  "libhfsc_curve.a"
)
