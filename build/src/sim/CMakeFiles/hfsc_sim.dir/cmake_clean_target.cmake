file(REMOVE_RECURSE
  "libhfsc_sim.a"
)
