file(REMOVE_RECURSE
  "CMakeFiles/hfsc_sim.dir/scenario.cpp.o"
  "CMakeFiles/hfsc_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/hfsc_sim.dir/sources.cpp.o"
  "CMakeFiles/hfsc_sim.dir/sources.cpp.o.d"
  "CMakeFiles/hfsc_sim.dir/trace_io.cpp.o"
  "CMakeFiles/hfsc_sim.dir/trace_io.cpp.o.d"
  "libhfsc_sim.a"
  "libhfsc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfsc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
