
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/hfsc_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/hfsc_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/sources.cpp" "src/sim/CMakeFiles/hfsc_sim.dir/sources.cpp.o" "gcc" "src/sim/CMakeFiles/hfsc_sim.dir/sources.cpp.o.d"
  "/root/repo/src/sim/trace_io.cpp" "src/sim/CMakeFiles/hfsc_sim.dir/trace_io.cpp.o" "gcc" "src/sim/CMakeFiles/hfsc_sim.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hfsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hfsc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hfsc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/curve/CMakeFiles/hfsc_curve.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
