# Empty compiler generated dependencies file for hfsc_sim.
# This may be replaced when dependencies are built.
