file(REMOVE_RECURSE
  "libhfsc_sched.a"
)
