# Empty compiler generated dependencies file for hfsc_sched.
# This may be replaced when dependencies are built.
