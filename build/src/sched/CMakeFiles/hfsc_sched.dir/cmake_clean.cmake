file(REMOVE_RECURSE
  "CMakeFiles/hfsc_sched.dir/cbq.cpp.o"
  "CMakeFiles/hfsc_sched.dir/cbq.cpp.o.d"
  "CMakeFiles/hfsc_sched.dir/classifier.cpp.o"
  "CMakeFiles/hfsc_sched.dir/classifier.cpp.o.d"
  "CMakeFiles/hfsc_sched.dir/conditioning.cpp.o"
  "CMakeFiles/hfsc_sched.dir/conditioning.cpp.o.d"
  "CMakeFiles/hfsc_sched.dir/drr.cpp.o"
  "CMakeFiles/hfsc_sched.dir/drr.cpp.o.d"
  "CMakeFiles/hfsc_sched.dir/fsc_flat.cpp.o"
  "CMakeFiles/hfsc_sched.dir/fsc_flat.cpp.o.d"
  "CMakeFiles/hfsc_sched.dir/gps.cpp.o"
  "CMakeFiles/hfsc_sched.dir/gps.cpp.o.d"
  "CMakeFiles/hfsc_sched.dir/hpfq.cpp.o"
  "CMakeFiles/hfsc_sched.dir/hpfq.cpp.o.d"
  "CMakeFiles/hfsc_sched.dir/pfq.cpp.o"
  "CMakeFiles/hfsc_sched.dir/pfq.cpp.o.d"
  "CMakeFiles/hfsc_sched.dir/pfq_sched.cpp.o"
  "CMakeFiles/hfsc_sched.dir/pfq_sched.cpp.o.d"
  "CMakeFiles/hfsc_sched.dir/sced.cpp.o"
  "CMakeFiles/hfsc_sched.dir/sced.cpp.o.d"
  "CMakeFiles/hfsc_sched.dir/virtual_clock.cpp.o"
  "CMakeFiles/hfsc_sched.dir/virtual_clock.cpp.o.d"
  "libhfsc_sched.a"
  "libhfsc_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfsc_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
