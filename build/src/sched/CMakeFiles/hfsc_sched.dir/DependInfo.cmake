
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cbq.cpp" "src/sched/CMakeFiles/hfsc_sched.dir/cbq.cpp.o" "gcc" "src/sched/CMakeFiles/hfsc_sched.dir/cbq.cpp.o.d"
  "/root/repo/src/sched/classifier.cpp" "src/sched/CMakeFiles/hfsc_sched.dir/classifier.cpp.o" "gcc" "src/sched/CMakeFiles/hfsc_sched.dir/classifier.cpp.o.d"
  "/root/repo/src/sched/conditioning.cpp" "src/sched/CMakeFiles/hfsc_sched.dir/conditioning.cpp.o" "gcc" "src/sched/CMakeFiles/hfsc_sched.dir/conditioning.cpp.o.d"
  "/root/repo/src/sched/drr.cpp" "src/sched/CMakeFiles/hfsc_sched.dir/drr.cpp.o" "gcc" "src/sched/CMakeFiles/hfsc_sched.dir/drr.cpp.o.d"
  "/root/repo/src/sched/fsc_flat.cpp" "src/sched/CMakeFiles/hfsc_sched.dir/fsc_flat.cpp.o" "gcc" "src/sched/CMakeFiles/hfsc_sched.dir/fsc_flat.cpp.o.d"
  "/root/repo/src/sched/gps.cpp" "src/sched/CMakeFiles/hfsc_sched.dir/gps.cpp.o" "gcc" "src/sched/CMakeFiles/hfsc_sched.dir/gps.cpp.o.d"
  "/root/repo/src/sched/hpfq.cpp" "src/sched/CMakeFiles/hfsc_sched.dir/hpfq.cpp.o" "gcc" "src/sched/CMakeFiles/hfsc_sched.dir/hpfq.cpp.o.d"
  "/root/repo/src/sched/pfq.cpp" "src/sched/CMakeFiles/hfsc_sched.dir/pfq.cpp.o" "gcc" "src/sched/CMakeFiles/hfsc_sched.dir/pfq.cpp.o.d"
  "/root/repo/src/sched/pfq_sched.cpp" "src/sched/CMakeFiles/hfsc_sched.dir/pfq_sched.cpp.o" "gcc" "src/sched/CMakeFiles/hfsc_sched.dir/pfq_sched.cpp.o.d"
  "/root/repo/src/sched/sced.cpp" "src/sched/CMakeFiles/hfsc_sched.dir/sced.cpp.o" "gcc" "src/sched/CMakeFiles/hfsc_sched.dir/sced.cpp.o.d"
  "/root/repo/src/sched/virtual_clock.cpp" "src/sched/CMakeFiles/hfsc_sched.dir/virtual_clock.cpp.o" "gcc" "src/sched/CMakeFiles/hfsc_sched.dir/virtual_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/curve/CMakeFiles/hfsc_curve.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hfsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
