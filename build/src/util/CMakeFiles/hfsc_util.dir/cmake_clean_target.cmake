file(REMOVE_RECURSE
  "libhfsc_util.a"
)
