file(REMOVE_RECURSE
  "CMakeFiles/hfsc_util.dir/stats.cpp.o"
  "CMakeFiles/hfsc_util.dir/stats.cpp.o.d"
  "libhfsc_util.a"
  "libhfsc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfsc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
