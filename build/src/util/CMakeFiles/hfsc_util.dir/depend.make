# Empty dependencies file for hfsc_util.
# This may be replaced when dependencies are built.
