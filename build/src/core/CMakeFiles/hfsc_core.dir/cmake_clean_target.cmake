file(REMOVE_RECURSE
  "libhfsc_core.a"
)
