file(REMOVE_RECURSE
  "CMakeFiles/hfsc_core.dir/eligible_set.cpp.o"
  "CMakeFiles/hfsc_core.dir/eligible_set.cpp.o.d"
  "CMakeFiles/hfsc_core.dir/hfsc.cpp.o"
  "CMakeFiles/hfsc_core.dir/hfsc.cpp.o.d"
  "libhfsc_core.a"
  "libhfsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfsc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
