# Empty compiler generated dependencies file for hfsc_core.
# This may be replaced when dependencies are built.
