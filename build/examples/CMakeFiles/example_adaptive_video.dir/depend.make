# Empty dependencies file for example_adaptive_video.
# This may be replaced when dependencies are built.
