file(REMOVE_RECURSE
  "CMakeFiles/example_adaptive_video.dir/adaptive_video.cpp.o"
  "CMakeFiles/example_adaptive_video.dir/adaptive_video.cpp.o.d"
  "example_adaptive_video"
  "example_adaptive_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adaptive_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
