# Empty dependencies file for example_multihop_tandem.
# This may be replaced when dependencies are built.
