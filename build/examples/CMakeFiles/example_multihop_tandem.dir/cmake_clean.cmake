file(REMOVE_RECURSE
  "CMakeFiles/example_multihop_tandem.dir/multihop_tandem.cpp.o"
  "CMakeFiles/example_multihop_tandem.dir/multihop_tandem.cpp.o.d"
  "example_multihop_tandem"
  "example_multihop_tandem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multihop_tandem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
