# Empty compiler generated dependencies file for example_voip_gateway.
# This may be replaced when dependencies are built.
