file(REMOVE_RECURSE
  "CMakeFiles/example_voip_gateway.dir/voip_gateway.cpp.o"
  "CMakeFiles/example_voip_gateway.dir/voip_gateway.cpp.o.d"
  "example_voip_gateway"
  "example_voip_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_voip_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
