# Empty compiler generated dependencies file for example_campus_linksharing.
# This may be replaced when dependencies are built.
