file(REMOVE_RECURSE
  "CMakeFiles/example_campus_linksharing.dir/campus_linksharing.cpp.o"
  "CMakeFiles/example_campus_linksharing.dir/campus_linksharing.cpp.o.d"
  "example_campus_linksharing"
  "example_campus_linksharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_campus_linksharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
