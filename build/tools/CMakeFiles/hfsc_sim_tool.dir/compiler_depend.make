# Empty compiler generated dependencies file for hfsc_sim_tool.
# This may be replaced when dependencies are built.
