file(REMOVE_RECURSE
  "CMakeFiles/hfsc_sim_tool.dir/hfsc_sim.cpp.o"
  "CMakeFiles/hfsc_sim_tool.dir/hfsc_sim.cpp.o.d"
  "hfsc_sim"
  "hfsc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfsc_sim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
