// Chaos/soak gate (ctest label "chaos"; the soak test carries "soak" and
// is opt-in via HFSC_SOAK=1).  Everything interesting lives in
// sim/chaos.{hpp,cpp}; these tests assert its verdict and pin the
// acceptance floor: >= 50 kill-and-recover episodes across every
// journal/checkpoint boundary, digest-identical recovery, packet
// conservation, and rt delays within the analyzer's Theorem 2 bound at
// every degradation level (differential twin included).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "sim/chaos.hpp"

namespace hfsc {
namespace {

TEST(Chaos, SixtyKillAndRecoverEpisodesWithOverloadProof) {
  ChaosConfig cfg;
  cfg.episodes = 60;  // acceptance floor is 50
  const ChaosReport rep = run_chaos(cfg);
  for (const std::string& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(rep.ok());
  EXPECT_GE(rep.crashes, 50);
  EXPECT_EQ(rep.crashes, rep.recoveries);
  EXPECT_GT(rep.torn_appends, 0);
  EXPECT_GT(rep.replayed_records, 0u);
  // The overload proof ran: ladder topped out, early drop engaged, and
  // both the governed run and its governor-disabled twin kept the rt
  // leaf inside the Theorem 2 bound.
  EXPECT_EQ(rep.max_gov_level, 3);
  EXPECT_GT(rep.push_outs, 0u);
  EXPECT_GT(rep.rt_delay_bound, 0);
  EXPECT_LE(rep.rt_delay_max_governed, rep.rt_delay_bound);
  EXPECT_LE(rep.rt_delay_max_twin, rep.rt_delay_bound);
}

TEST(Chaos, SecondSeedIsAlsoClean) {
  ChaosConfig cfg;
  cfg.seed = 0xDECAFBAD;
  cfg.episodes = 20;
  cfg.overload_check = false;  // covered by the first test
  const ChaosReport rep = run_chaos(cfg);
  for (const std::string& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.crashes, rep.recoveries);
}

TEST(ChaosSharded, ThreadFaultEpisodesRecoverClean) {
  // The sharded harness (sim/chaos_sharded.cpp) runs REAL worker
  // threads under the Supervisor: stall + ring-overflow flood, worker
  // kills mid-loop, persistence-boundary crashes reached from the
  // worker thread, and a death during a supervisor outage.  Eight
  // episodes cycle through every fault kind twice.
  ChaosConfig cfg;
  cfg.shards = 2;
  cfg.shard_episodes = 8;
  const ChaosReport rep = run_sharded_chaos(cfg);
  for (const std::string& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.shard_episodes, 8);
  EXPECT_GE(rep.shard_restarts, 8u);  // every episode must heal
  EXPECT_GT(rep.shard_rt_delay_bound, 0);
  EXPECT_LE(rep.shard_rt_delay_max, rep.shard_rt_delay_bound);
}

TEST(ChaosSoak, WallClockBudget) {
  const char* env = std::getenv("HFSC_SOAK");
  if (env == nullptr || std::string(env) != "1") {
    GTEST_SKIP() << "soak is opt-in: set HFSC_SOAK=1 (ci_check.sh --soak)";
  }
  ChaosConfig cfg;
  cfg.seed = 0x50AC50AC;
  cfg.soak = true;
  cfg.soak_seconds = 60;
  const ChaosReport rep = run_chaos(cfg);
  for (const std::string& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(rep.ok());
}

}  // namespace
}  // namespace hfsc
