// Unit tests for the resilience runtime (src/runtime/): the write-ahead
// journal's parse/torn-tail/compaction behavior, the overload governor's
// ladder and durable-state round trip, and RuntimeHost crash recovery at
// every persistence boundary.  The chaos harness (tests/test_chaos.cpp)
// composes these under randomized adversity; here each property is
// pinned deterministically.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/governor.hpp"
#include "runtime/host.hpp"
#include "runtime/journal.hpp"
#include "util/errors.hpp"

namespace hfsc {
namespace {

// --- Journal ---------------------------------------------------------------

TEST(Journal, AppendParseRoundTrip) {
  Journal j;
  j.append("add 1 2 3");
  j.append("chg 2");
  j.append(std::string("\0binary\xff", 8));  // payloads are opaque bytes
  const Journal back = Journal::parse(j.image());
  ASSERT_EQ(back.num_records(), 3u);
  EXPECT_EQ(back.records_after(0)[0].payload, "add 1 2 3");
  EXPECT_EQ(back.records_after(0)[2].payload, std::string("\0binary\xff", 8));
  EXPECT_EQ(back.last_seq(), 3u);
  EXPECT_EQ(back.truncated_bytes(), 0u);
}

TEST(Journal, TornTailIsTruncatedNotFatal) {
  Journal j;
  j.append("one");
  j.append("two");
  j.append("three");
  for (std::size_t chop = 1; chop < 3 + Journal::kRecordOverhead; ++chop) {
    std::string img = j.image();
    img.resize(img.size() - chop);  // tear inside the last record
    const Journal back = Journal::parse(img);
    EXPECT_EQ(back.num_records(), 2u) << "chop=" << chop;
    EXPECT_GT(back.truncated_bytes(), 0u);
    EXPECT_EQ(back.records_after(0)[1].payload, "two");
  }
}

TEST(Journal, InteriorBitFlipTruncatesFromTheDamage) {
  Journal j;
  j.append("aaaa");
  j.append("bbbb");
  j.append("cccc");
  std::string img = j.image();
  // Flip a payload bit of the SECOND record: its checksum fails, and the
  // scan must keep record one, dropping two and everything after.
  const std::size_t rec1 = Journal::kHeaderBytes + Journal::kRecordOverhead + 4;
  img[rec1 + Journal::kRecordOverhead + 1] ^= 0x10;
  const Journal back = Journal::parse(img);
  ASSERT_EQ(back.num_records(), 1u);
  EXPECT_EQ(back.records_after(0)[0].payload, "aaaa");
  EXPECT_GT(back.truncated_bytes(), 0u);
}

TEST(Journal, BadMagicOrVersionIsTyped) {
  Journal j;
  j.append("x");
  std::string img = j.image();
  img[0] = 'X';
  try {
    Journal::parse(img);
    FAIL() << "bad magic parsed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kBadJournal);
  }
  std::string img2 = j.image();
  img2[8] = 0x7f;  // absurd version
  try {
    Journal::parse(img2);
    FAIL() << "bad version parsed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kBadJournal);
  }
  try {
    Journal::parse("short");
    FAIL() << "truncated header parsed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kBadJournal);
  }
}

TEST(Journal, CompactionKeepsSequenceNumbers) {
  Journal j;
  for (int i = 0; i < 5; ++i) {
    std::string payload = "r";
    payload += std::to_string(i);
    j.append(payload);
  }
  j.compact(3);  // checkpoint covered seqs 1..3
  EXPECT_EQ(j.num_records(), 2u);
  const auto rest = j.records_after(3);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].seq, 4u);
  EXPECT_EQ(rest[1].payload, "r4");
  // New appends continue the sequence, and the compacted image
  // round-trips even though it no longer starts at seq 1.
  j.append("r5");
  EXPECT_EQ(j.last_seq(), 6u);
  const Journal back = Journal::parse(j.image());
  EXPECT_EQ(back.num_records(), 3u);
  EXPECT_EQ(back.last_seq(), 6u);
}

// --- Governor durable state ------------------------------------------------

TEST(Governor, SerializeRestoreRoundTrip) {
  OverloadGovernor g{GovernorConfig{}};
  const std::string blob = g.serialize();
  OverloadGovernor back{GovernorConfig{}};
  back.restore(blob);
  EXPECT_EQ(back.level(), 0);
  EXPECT_EQ(back.serialize(), blob);
}

TEST(Governor, RestoreRejectsGarbage) {
  OverloadGovernor g{GovernorConfig{}};
  for (const char* bad :
       {"", "gov-state 2\n", "gov-state 1\nlevel 9 0\n",
        "gov-state 1\nlevel 1 0\nclamped zzz\n"}) {
    try {
      g.restore(bad);
      FAIL() << "restored from: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), Errc::kBadCheckpoint);
    }
  }
}

// --- RuntimeHost recovery --------------------------------------------------

RuntimeOptions small_opts() {
  RuntimeOptions o;
  o.link_rate = mbps(10);
  o.admission_rate = mbps(10);
  o.watchdog_horizon = msec(50);
  return o;
}

// A few journaled mutations plus traffic; returns the host for probing.
RuntimeHost busy_host() {
  RuntimeHost h(small_opts());
  const ClassId org = h.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(8))));
  const ClassId rt = h.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(2))));
  std::vector<RuntimeHost::BatchOp> batch;
  for (int i = 0; i < 3; ++i) {
    RuntimeHost::BatchOp op;
    op.kind = RuntimeHost::BatchOp::Kind::kAdd;
    op.parent = org;
    op.cfg = ClassConfig::link_share_only(ServiceCurve::linear(mbps(2)));
    batch.push_back(op);
  }
  h.commit_batch(batch);
  h.set_queue_limit(org + 1, 32);
  TimeNs now = usec(1);
  std::uint64_t seq = 1;
  for (int i = 0; i < 50; ++i) {
    h.enqueue(now, Packet{rt, 200, now, seq++});
    h.enqueue(now, Packet{org + 1 + static_cast<ClassId>(i % 3), 1200, now,
                          seq++});
    if (i % 2 == 0) (void)h.dequeue(now);
    now += usec(100);
  }
  return h;
}

TEST(RuntimeHost, RecoverFromJournalAloneMatchesLive) {
  RuntimeHost live = busy_host();
  // Never checkpointed: recovery replays the full journal from scratch.
  RuntimeHost back = RuntimeHost::recover(small_opts(), "", live.journal_image());
  // Control-plane state converges exactly; the (unjournaled) data path
  // does not travel, so compare structure via the audit + class configs.
  EXPECT_TRUE(back.audit_runtime().ok());
  EXPECT_EQ(back.sched().num_classes(), live.sched().num_classes());
  for (ClassId c = 1; c < live.sched().num_classes(); ++c) {
    EXPECT_EQ(back.sched().is_deleted(c), live.sched().is_deleted(c));
    if (live.sched().is_deleted(c)) continue;
    EXPECT_EQ(back.sched().queue_limit_of(c), live.sched().queue_limit_of(c));
  }
}

TEST(RuntimeHost, RecoverFromCheckpointPlusTailMatchesDigest) {
  RuntimeHost live = busy_host();
  live.save_checkpoint();
  // Post-checkpoint control-plane tail — exactly what replay must redo.
  live.set_queue_limit(1, 64);
  live.change_class(msec(100), 2,
                    ClassConfig::both(ServiceCurve::linear(mbps(1))));
  RuntimeHost back = RuntimeHost::recover(small_opts(), live.checkpoint_image(),
                                          live.journal_image());
  EXPECT_EQ(back.digest(), live.digest());
  EXPECT_TRUE(back.audit_runtime().ok());
  EXPECT_EQ(back.governor().serialize(), live.governor().serialize());
}

TEST(RuntimeHost, EveryCrashPointRecoversClean) {
  for (const CrashPoint p : kAllCrashPoints) {
    RuntimeHost live = busy_host();
    live.save_checkpoint();
    live.arm_crash(p);
    bool crashed = false;
    try {
      // An op that crosses every boundary: a mutation for the journal
      // points, a snapshot for the checkpoint points.
      if (p == CrashPoint::kBeforeCheckpoint ||
          p == CrashPoint::kAfterCheckpoint || p == CrashPoint::kAfterCompact) {
        live.set_queue_limit(1, 16);
        live.save_checkpoint();
      } else {
        live.set_queue_limit(1, 16);
      }
    } catch (const CrashSignal& s) {
      crashed = true;
      EXPECT_EQ(s.point, p);
    }
    ASSERT_TRUE(crashed) << to_string(p);
    RuntimeHost back = RuntimeHost::recover(
        small_opts(), live.checkpoint_image(), live.journal_image());
    EXPECT_TRUE(back.audit_runtime().ok()) << to_string(p);
    // Recovery is deterministic: a second independent recovery agrees.
    RuntimeHost back2 = RuntimeHost::recover(
        small_opts(), live.checkpoint_image(), live.journal_image());
    EXPECT_EQ(back.digest(), back2.digest()) << to_string(p);
  }
}

TEST(RuntimeHost, TornAppendLosesOnlyTheTornRecord) {
  RuntimeHost live = busy_host();
  live.save_checkpoint();
  live.set_queue_limit(1, 64);  // survives: appended whole
  live.tear_next_append(4);
  bool crashed = false;
  try {
    live.set_queue_limit(1, 7);  // torn: must NOT survive
  } catch (const CrashSignal&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  RuntimeHost back = RuntimeHost::recover(small_opts(), live.checkpoint_image(),
                                          live.journal_image());
  EXPECT_EQ(back.sched().queue_limit_of(1), 64u);
  EXPECT_TRUE(back.audit_runtime().ok());
}

TEST(RuntimeHost, CorruptImagesRaiseTypedErrors) {
  RuntimeHost live = busy_host();
  live.save_checkpoint();
  std::string bad_cp = live.checkpoint_image();
  bad_cp[0] = 'X';
  try {
    RuntimeHost::recover(small_opts(), bad_cp, live.journal_image());
    FAIL() << "corrupt checkpoint recovered";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kBadCheckpoint);
  }
  try {
    RuntimeHost::recover(small_opts(), live.checkpoint_image(), "garbage!");
    FAIL() << "corrupt journal recovered";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kBadJournal);
  }
}

}  // namespace
}  // namespace hfsc
