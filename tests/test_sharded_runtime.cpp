// Tests for the supervised sharded runtime (docs/ROBUSTNESS.md
// Section 12) and its building blocks: the lock-free MPSC ring, the
// spec partitioner, the journal's fsync boundary (SyncPolicy), and the
// full runtime under load — including a worker kill healed by the
// supervisor while producers keep pushing.
//
// These build into hfsc_runtime_tests (ctest label "runtime") because
// the runtime tests spin real threads: tools/ci_check.sh runs the
// label under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "config/hierarchy_spec.hpp"
#include "runtime/host.hpp"
#include "runtime/journal.hpp"
#include "runtime/supervisor.hpp"
#include "sim/scenario.hpp"
#include "util/mpsc_ring.hpp"

namespace hfsc {
namespace {

// ---------------------------------------------------------------------------
// MpscRing
// ---------------------------------------------------------------------------

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(MpscRing<int>(65).capacity(), 128u);
}

TEST(MpscRing, FifoAcrossManyWraparounds) {
  MpscRing<int> ring(8);
  int next_push = 0;
  int next_pop = 0;
  // Keep the ring partially full while cycling the counters far past
  // capacity, so head/tail wrap many times.
  for (int round = 0; round < 500; ++round) {
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_push(next_push++));
    for (int i = 0; i < 5; ++i) {
      auto v = ring.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_pop++);
    }
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(MpscRing, BackpressureWhenFullNeverOverwrites) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full: rejected, not overwritten
  EXPECT_FALSE(ring.try_push(99));
  auto v = ring.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0);
  EXPECT_TRUE(ring.try_push(4));  // one slot freed
  for (int want = 1; want <= 4; ++want) {
    auto u = ring.try_pop();
    ASSERT_TRUE(u.has_value());
    EXPECT_EQ(*u, want);
  }
}

TEST(MpscRing, PeekObservesWithoutConsuming) {
  MpscRing<int> ring(4);
  EXPECT_EQ(ring.try_peek(), nullptr);
  ASSERT_TRUE(ring.try_push(7));
  ASSERT_TRUE(ring.try_push(8));
  const int* head = ring.try_peek();
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(*head, 7);
  // Peek again: same element, nothing consumed.
  ASSERT_NE(ring.try_peek(), nullptr);
  EXPECT_EQ(*ring.try_peek(), 7);
  EXPECT_EQ(ring.size_approx(), 2u);
  auto v = ring.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  ASSERT_NE(ring.try_peek(), nullptr);
  EXPECT_EQ(*ring.try_peek(), 8);
}

TEST(MpscRing, MultiProducerStressKeepsEveryElementInPerProducerOrder) {
  constexpr int kProducers = 3;
  constexpr std::uint64_t kPerProducer = 4000;
  MpscRing<std::uint64_t> ring(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v =
            (static_cast<std::uint64_t>(p) << 32) | i;
        while (!ring.try_push(v)) std::this_thread::yield();
      }
    });
  }

  // This thread is the single consumer.  Per-producer sequences must
  // come out strictly in order even though the global interleaving is
  // arbitrary.
  std::uint64_t expect[kProducers] = {0, 0, 0};
  std::uint64_t got = 0;
  while (got < kProducers * kPerProducer) {
    auto v = ring.try_pop();
    if (!v) {
      std::this_thread::yield();
      continue;
    }
    const int p = static_cast<int>(*v >> 32);
    const std::uint64_t seq = *v & 0xffffffffu;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(seq, expect[p]) << "producer " << p << " reordered";
    ++expect[p];
    ++got;
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(ring.try_pop().has_value());
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(expect[p], kPerProducer);
}

// ---------------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------------

HierarchySpec two_org_spec() {
  HierarchySpec spec;
  using ClassSpec = HierarchySpec::ClassSpec;
  ClassSpec a;
  a.name = "orgA";
  a.parent = "root";
  a.ls = ServiceCurve::linear(mbps(40));
  a.shard = 1;
  spec.add(a);
  ClassSpec leaf;
  leaf.name = "leafA";
  leaf.parent = "orgA";
  leaf.ls = ServiceCurve::linear(mbps(20));
  spec.add(leaf);
  ClassSpec b;
  b.name = "orgB";
  b.parent = "root";
  b.ls = ServiceCurve::linear(mbps(40));  // no pin: hash-assigned
  spec.add(b);
  ClassSpec leafb;
  leafb.name = "leafB";
  leafb.parent = "orgB";
  leafb.ls = ServiceCurve::linear(mbps(20));
  spec.add(leafb);
  return spec;
}

TEST(ShardPartition, PinsRespectedAndChildrenFollowAncestor) {
  const HierarchySpec spec = two_org_spec();
  const std::vector<int> part = ShardedRuntime::partition(spec, 4);
  ASSERT_EQ(part.size(), 4u);
  EXPECT_EQ(part[0], 1);            // orgA pinned
  EXPECT_EQ(part[1], part[0]);      // leafA follows its top-level ancestor
  EXPECT_GE(part[2], 0);            // orgB hashed into range
  EXPECT_LT(part[2], 4);
  EXPECT_EQ(part[3], part[2]);      // leafB follows orgB
  // The hash assignment is a pure function of the name: stable.
  EXPECT_EQ(part, ShardedRuntime::partition(spec, 4));
}

TEST(ShardPartition, SingleShardMapsEverythingToZero) {
  HierarchySpec spec = two_org_spec();
  spec.classes[0].shard = -1;  // unpin orgA so 1 shard is legal
  const std::vector<int> part = ShardedRuntime::partition(spec, 1);
  for (const int s : part) EXPECT_EQ(s, 0);
}

TEST(ShardPartition, OutOfRangePinRejected) {
  HierarchySpec spec = two_org_spec();
  spec.classes[0].shard = 7;  // > shards-1
  EXPECT_THROW(
      { (void)ShardedRuntime::partition(spec, 4); }, Error);
}

TEST(ShardPartition, NonTopLevelPinRejected) {
  HierarchySpec spec = two_org_spec();
  spec.classes[1].shard = 0;  // leafA: pins are top-level only
  try {
    (void)ShardedRuntime::partition(spec, 4);
    FAIL() << "non-top-level pin accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kInvalidArgument);
  }
}

// A pin out of range for the ACTUAL shard count must throw even if it
// was valid for some larger count (orgA pins shard 1 here).
TEST(ShardPartition, PinValidAgainstActualShardCountOnly) {
  try {
    (void)ShardedRuntime::partition(two_org_spec(), 1);
    FAIL() << "pin 1 accepted with a single shard";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Journal fsync boundary (SyncPolicy)
// ---------------------------------------------------------------------------

TEST(JournalSync, TearStopsAtDurableWatermark) {
  Journal j;
  j.append("alpha");
  j.sync();  // the fsync for "alpha" returned
  j.append("beta");
  const std::size_t synced = j.synced_bytes();
  ASSERT_LT(synced, j.image().size());

  // A torn write can only damage the unsynced suffix: tearing "more
  // than everything" still leaves the durable prefix byte-identical.
  j.tear_tail(1u << 20);
  EXPECT_EQ(j.image().size(), synced);
  EXPECT_EQ(j.num_records(), 1u);

  const Journal back = Journal::parse(j.image());
  EXPECT_EQ(back.num_records(), 1u);
  EXPECT_EQ(back.truncated_bytes(), 0u);
  ASSERT_EQ(back.records_after(0).size(), 1u);
  EXPECT_EQ(back.records_after(0)[0].payload, "alpha");
}

TEST(JournalSync, FullySyncedJournalCannotBeTorn) {
  Journal j;
  j.append("alpha");
  j.append("beta");
  j.sync();
  const std::string before = j.image();
  j.tear_tail(1u << 20);
  EXPECT_EQ(j.image(), before);
  EXPECT_EQ(j.num_records(), 2u);
}

TEST(JournalSync, DurableImageIsTheSyncedPrefix) {
  Journal j;
  EXPECT_EQ(j.durable_image().size(), j.image().size());  // header synced
  j.append("alpha");
  EXPECT_LT(j.durable_image().size(), j.image().size());
  const Journal crash = Journal::parse(std::string(j.durable_image()));
  EXPECT_EQ(crash.num_records(), 0u);  // unsynced append gone
  j.sync();
  EXPECT_EQ(j.durable_image().size(), j.image().size());
  const Journal after = Journal::parse(std::string(j.durable_image()));
  EXPECT_EQ(after.num_records(), 1u);
}

RuntimeOptions small_host_options(SyncPolicy sync) {
  RuntimeOptions o;
  o.link_rate = mbps(10);
  o.sync_policy = sync;
  return o;
}

ClassConfig ls_class(RateBps rate) {
  ClassConfig cfg;
  cfg.ls = ServiceCurve::linear(rate);
  return cfg;
}

TEST(JournalSync, PolicyNoneLosesEverythingSinceTheCheckpoint) {
  RuntimeOptions opts = small_host_options(SyncPolicy::kNone);
  RuntimeHost h(opts);
  const ClassId a = h.add_class(kRootClass, ls_class(mbps(4)));
  h.save_checkpoint();  // checkpointing always syncs (see journal.hpp)
  const std::uint64_t at_checkpoint = h.digest();

  h.add_class(a, ls_class(mbps(2)));  // journaled but never synced
  ASSERT_NE(h.digest(), at_checkpoint);
  ASSERT_LT(h.durable_journal_image().size(), h.journal_image().size());

  // Honest crash: only the durable prefix survives — the post-
  // checkpoint mutation is gone, by design of kNone.
  RuntimeHost crashed = RuntimeHost::recover(opts, h.checkpoint_image(),
                                             h.durable_journal_image());
  EXPECT_EQ(crashed.digest(), at_checkpoint);

  // Lucky crash (the OS happened to write the tail): full state back.
  RuntimeHost lucky = RuntimeHost::recover(opts, h.checkpoint_image(),
                                           h.journal_image());
  EXPECT_EQ(lucky.digest(), h.digest());
}

TEST(JournalSync, PolicyOnCommitKeepsEveryCompletedAppend) {
  RuntimeOptions opts = small_host_options(SyncPolicy::kOnCommit);
  RuntimeHost h(opts);
  const ClassId a = h.add_class(kRootClass, ls_class(mbps(4)));
  h.save_checkpoint();
  h.add_class(a, ls_class(mbps(2)));
  h.add_class(a, ls_class(mbps(1)));

  // Every completed append is behind the fsync: the durable image IS
  // the image, and recovery from it reproduces the live scheduler.
  EXPECT_EQ(h.durable_journal_image(), h.journal_image());
  RuntimeHost crashed = RuntimeHost::recover(opts, h.checkpoint_image(),
                                             h.durable_journal_image());
  EXPECT_EQ(crashed.digest(), h.digest());
  EXPECT_TRUE(crashed.audit_runtime().ok());
}

// ---------------------------------------------------------------------------
// ShardedRuntime under load
// ---------------------------------------------------------------------------

HierarchySpec sharded_spec(int shards) {
  HierarchySpec spec;
  using ClassSpec = HierarchySpec::ClassSpec;
  for (int s = 0; s < shards; ++s) {
    const std::string tag = std::to_string(s);
    ClassSpec org;
    org.name = "org" + tag;
    org.parent = "root";
    org.ls = ServiceCurve::linear(mbps(50));
    org.shard = s;
    spec.add(org);
    ClassSpec rt;
    rt.name = "rt" + tag;
    rt.parent = org.name;
    rt.rt = ServiceCurve::linear(mbps(20));
    rt.ls = ServiceCurve::linear(mbps(20));
    spec.add(rt);
    ClassSpec bulk;
    bulk.name = "bulk" + tag;
    bulk.parent = org.name;
    bulk.ls = ServiceCurve::linear(mbps(20));
    bulk.qlimit = 256;
    spec.add(bulk);
  }
  return spec;
}

ShardedOptions sharded_options(int shards) {
  ShardedOptions so;
  so.shards = shards;
  RuntimeOptions& o = so.shard.runtime;
  o.link_rate = mbps(100);
  o.watchdog_horizon = 0;
  o.sample_interval = usec(500);
  so.shard.ring_capacity = 256;
  so.shard.checkpoint_every_pops = 128;
  so.shard.serve_burst = 32;
  so.spill_capacity = 1024;
  // Generous stall thresholds: scheduling jitter on a small machine
  // (or TSan slowdown) must never read as a wedged worker.
  so.poll_every = std::chrono::microseconds(500);
  so.suspect_after_polls = 30;
  so.restart_after_polls = 80;
  return so;
}

// Pushes until the runtime accepts the packet or the ring stays full
// for too long (then the reject is the runtime's own accounting).
void push_hard(ShardedRuntime& rt, TimeNs now, Packet pkt) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (rt.enqueue(now, pkt)) return;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

// Advances virtual time past all traffic and waits until every queue,
// ring and spill buffer is empty.  Returns the final quiesced totals.
ShardedRuntime::Totals drain(ShardedRuntime& rt, int producer,
                             TimeNs from) {
  TimeNs now = from;
  for (int iter = 0; iter < 4000; ++iter) {
    now += msec(1);
    rt.publish_frontier(producer, now);
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    if (iter % 8 == 7) {
      ShardedRuntime::Totals t = rt.quiesce_totals();
      if (t.backlog == 0 && t.spilled == 0) return t;
    }
  }
  return rt.quiesce_totals();
}

TEST(ShardedRuntime, ConservationHoldsWithNoFaults) {
  const int kShards = 2;
  ShardedRuntime rt(sharded_options(kShards), sharded_spec(kShards));
  std::vector<ClassId> ids;
  for (int s = 0; s < kShards; ++s) {
    ids.push_back(rt.global_id("rt" + std::to_string(s)));
    ids.push_back(rt.global_id("bulk" + std::to_string(s)));
  }
  const int prod = rt.register_producer();
  rt.start();

  TimeNs now = 0;
  std::uint64_t seq = 1;
  for (int iter = 0; iter < 400; ++iter) {
    now += usec(100);
    rt.publish_frontier(prod, now);
    for (const ClassId id : ids) {
      push_hard(rt, now, Packet{id, 400, now, seq++});
    }
  }
  // An unroutable global id is rejected at the front door, before any
  // shard accounting.
  EXPECT_FALSE(rt.enqueue(now, Packet{ClassId(9999), 400, now, seq++}));

  const ShardedRuntime::Totals t = drain(rt, prod, now);
  EXPECT_TRUE(t.conserved()) << t.to_string();
  EXPECT_EQ(t.backlog, 0u) << t.to_string();
  EXPECT_EQ(t.spilled, 0u) << t.to_string();
  EXPECT_EQ(t.restarts, 0u) << t.to_string();
  EXPECT_EQ(t.crash_lost, 0u) << t.to_string();
  EXPECT_GT(t.sent, 0u);
  std::string why;
  EXPECT_TRUE(rt.audit_all(&why)) << why;
  rt.stop();
}

TEST(ShardedRuntime, WorkerKillHealsUnderLoadDigestIdentical) {
  const int kShards = 2;
  ShardedRuntime rt(sharded_options(kShards), sharded_spec(kShards));
  std::vector<ClassId> ids;
  for (int s = 0; s < kShards; ++s) {
    ids.push_back(rt.global_id("rt" + std::to_string(s)));
    ids.push_back(rt.global_id("bulk" + std::to_string(s)));
  }
  const int prod = rt.register_producer();
  rt.start();

  TimeNs now = 0;
  std::uint64_t seq = 1;
  for (int iter = 0; iter < 200; ++iter) {
    now += usec(100);
    rt.publish_frontier(prod, now);
    for (const ClassId id : ids) {
      // Not push_hard: while shard 0 is down its ring backs up, and
      // blocking here would stall the whole load loop.  A false return
      // is the runtime's own ring_rejected/spill accounting.
      (void)rt.enqueue(now, Packet{id, 400, now, seq++});
    }
    if (iter == 50) rt.shard(0).inject_kill(20);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  // Keep a trickle flowing while the supervisor heals the corpse.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    if (rt.shard(0).restarts() >= 1 && !rt.shard(0).dead() &&
        rt.phase(0) == ShardPhase::kRunning) {
      break;
    }
    now += usec(500);
    rt.publish_frontier(prod, now);
    (void)rt.enqueue(now, Packet{ids[1], 400, now, seq++});
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  ASSERT_GE(rt.shard(0).restarts(), 1u) << "supervisor never restarted";
  ASSERT_FALSE(rt.shard(0).dead());

  // Load after the heal: the restarted shard must serve again.
  const std::uint64_t sent_before = rt.shard(0).sent_total();
  for (int iter = 0; iter < 100; ++iter) {
    now += usec(100);
    rt.publish_frontier(prod, now);
    push_hard(rt, now, Packet{ids[0], 400, now, seq++});
    push_hard(rt, now, Packet{ids[1], 400, now, seq++});
  }

  const ShardedRuntime::Totals t = drain(rt, prod, now);
  EXPECT_TRUE(t.conserved()) << t.to_string();
  EXPECT_EQ(t.backlog, 0u) << t.to_string();
  EXPECT_EQ(t.spilled, 0u) << t.to_string();
  EXPECT_GE(t.restarts, 1u);
  EXPECT_GT(rt.shard(0).sent_total(), sent_before)
      << "restarted shard never served again";

  bool recovered_seen = false;
  for (const SupervisorEvent& ev : rt.drain_events()) {
    ASSERT_NE(ev.kind, SupervisorEvent::Kind::kRecoveryFailed)
        << ev.detail;
    if (ev.kind == SupervisorEvent::Kind::kRecovered) {
      recovered_seen = true;
      EXPECT_TRUE(ev.digest_match)
          << "double recovery diverged: " << ev.detail;
    }
  }
  EXPECT_TRUE(recovered_seen);

  std::string why;
  EXPECT_TRUE(rt.audit_all(&why)) << why;
  rt.stop();
}

// ---------------------------------------------------------------------------
// Scenario `shard` class attribute
// ---------------------------------------------------------------------------

TEST(ScenarioShard, TopLevelPinParsesAndPropagates) {
  std::istringstream in(R"(
link 10Mbps
duration 1s
class org root ls linear 10Mbps shard 1
class leaf org ls linear 5Mbps
source cbr leaf 1Mbps 1000 0s 1s
)");
  const Scenario sc = Scenario::parse(in);
  ASSERT_EQ(sc.classes.size(), 2u);
  EXPECT_EQ(sc.classes[0].shard, 1);
  EXPECT_EQ(sc.classes[1].shard, -1);  // unpinned: hash-assigned
  const HierarchySpec spec = sc.to_hierarchy_spec();
  ASSERT_EQ(spec.classes.size(), 2u);
  EXPECT_EQ(spec.classes[0].shard, 1);
  EXPECT_EQ(spec.classes[1].shard, -1);
}

TEST(ScenarioShard, PinOnChildClassRejected) {
  std::istringstream in(R"(
link 10Mbps
duration 1s
class org root ls linear 10Mbps
class leaf org ls linear 5Mbps shard 0
source cbr leaf 1Mbps 1000 0s 1s
)");
  EXPECT_THROW({ (void)Scenario::parse(in); }, std::runtime_error);
}

}  // namespace
}  // namespace hfsc
