// Tests for the ALTQ-style packet classifier.
#include <gtest/gtest.h>

#include "sched/classifier.hpp"

namespace hfsc {
namespace {

FlowKey key(std::uint32_t s, std::uint32_t d, std::uint16_t sp,
            std::uint16_t dp, std::uint8_t proto) {
  return FlowKey{s, d, sp, dp, proto};
}

TEST(Classifier, DefaultClassWhenNoMatch) {
  Classifier c;
  c.set_default_class(42);
  EXPECT_EQ(c.classify(key(1, 2, 3, 4, kProtoTcp)), 42u);
}

TEST(Classifier, ExactMatchWins) {
  Classifier c;
  c.set_default_class(1);
  Filter f;
  f.src_ip = 0x0A000001;  // 10.0.0.1
  f.dst_ip = 0x0A000002;
  f.src_port = 5000;
  f.dst_port = 80;
  f.proto = kProtoTcp;
  c.add_filter(f, 7);
  EXPECT_EQ(c.classify(key(0x0A000001, 0x0A000002, 5000, 80, kProtoTcp)), 7u);
  // Any field off misses the exact entry.
  EXPECT_EQ(c.classify(key(0x0A000001, 0x0A000002, 5000, 81, kProtoTcp)), 1u);
  EXPECT_EQ(c.classify(key(0x0A000001, 0x0A000002, 5000, 80, kProtoUdp)), 1u);
}

TEST(Classifier, WildcardFields) {
  Classifier c;
  Filter any_udp;
  any_udp.proto = kProtoUdp;
  c.add_filter(any_udp, 3);
  EXPECT_EQ(c.classify(key(1, 2, 3, 4, kProtoUdp)), 3u);
  EXPECT_EQ(c.classify(key(9, 9, 9, 9, kProtoUdp)), 3u);
  EXPECT_EQ(c.classify(key(1, 2, 3, 4, kProtoTcp)), 0u);
}

TEST(Classifier, PrefixMatch) {
  Classifier c;
  Filter subnet;
  subnet.src_ip = 0x0A0A0000;  // 10.10.0.0/16
  subnet.src_prefix = 16;
  c.add_filter(subnet, 5);
  EXPECT_EQ(c.classify(key(0x0A0A1234, 1, 2, 3, kProtoTcp)), 5u);
  EXPECT_EQ(c.classify(key(0x0A0B1234, 1, 2, 3, kProtoTcp)), 0u);
}

TEST(Classifier, PriorityOrdersWildcardFilters) {
  Classifier c;
  Filter low;  // matches everything
  low.priority = 0;
  c.add_filter(low, 1);
  Filter high;
  high.proto = kProtoUdp;
  high.priority = 10;
  c.add_filter(high, 2);
  EXPECT_EQ(c.classify(key(1, 1, 1, 1, kProtoUdp)), 2u);
  EXPECT_EQ(c.classify(key(1, 1, 1, 1, kProtoTcp)), 1u);
}

TEST(Classifier, HigherPriorityWildcardBeatsExact) {
  Classifier c;
  Filter exact;
  exact.src_ip = 1;
  exact.dst_ip = 2;
  exact.src_port = 3;
  exact.dst_port = 4;
  exact.proto = kProtoTcp;
  exact.priority = 0;
  c.add_filter(exact, 7);
  Filter override_all;
  override_all.priority = 5;
  c.add_filter(override_all, 9);
  EXPECT_EQ(c.classify(key(1, 2, 3, 4, kProtoTcp)), 9u);
}

TEST(Classifier, InsertionOrderBreaksPriorityTies) {
  Classifier c;
  Filter a;
  a.proto = kProtoTcp;
  Filter b;  // also matches tcp via wildcard proto
  c.add_filter(a, 1);
  c.add_filter(b, 2);
  EXPECT_EQ(c.classify(key(1, 1, 1, 1, kProtoTcp)), 1u);
}

TEST(Classifier, RemoveFilter) {
  Classifier c;
  Filter f;
  f.proto = kProtoUdp;
  const auto id = c.add_filter(f, 3);
  EXPECT_EQ(c.num_filters(), 1u);
  c.remove(id);
  EXPECT_EQ(c.num_filters(), 0u);
  EXPECT_EQ(c.classify(key(1, 1, 1, 1, kProtoUdp)), 0u);
}

TEST(Classifier, ManyExactFiltersStayFast) {
  Classifier c;
  for (std::uint32_t i = 1; i <= 1000; ++i) {
    Filter f;
    f.src_ip = i;
    f.dst_ip = i + 1;
    f.src_port = 1000;
    f.dst_port = 80;
    f.proto = kProtoTcp;
    c.add_filter(f, i);
  }
  EXPECT_EQ(c.num_filters(), 1000u);
  for (std::uint32_t i = 1; i <= 1000; ++i) {
    ASSERT_EQ(c.classify(key(i, i + 1, 1000, 80, kProtoTcp)), i);
  }
}

}  // namespace
}  // namespace hfsc
