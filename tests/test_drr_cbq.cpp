// Tests for the DRR and (simplified) CBQ baselines.
#include <gtest/gtest.h>

#include "sched/cbq.hpp"
#include "sched/drr.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

TEST(Drr, SingleClassFifo) {
  Drr sched;
  const ClassId c = sched.add_session(1500);
  sched.enqueue(0, Packet{c, 100, 0, 0});
  sched.enqueue(0, Packet{c, 100, 0, 1});
  EXPECT_EQ(sched.dequeue(0)->seq, 0u);
  EXPECT_EQ(sched.dequeue(0)->seq, 1u);
  EXPECT_FALSE(sched.dequeue(0).has_value());
}

TEST(Drr, QuantaDetermineShares) {
  Drr sched;
  const ClassId a = sched.add_session(3000);
  const ClassId b = sched.add_session(1000);
  Simulator sim(mbps(8), sched);
  sim.add<GreedySource>(a, 1000, 4, 0, sec(4));
  sim.add<GreedySource>(b, 1000, 4, 0, sec(4));
  sim.run(sec(4));
  EXPECT_NEAR(sim.tracker().rate_mbps(a, sec(1), sec(4)), 6.0, 0.25);
  EXPECT_NEAR(sim.tracker().rate_mbps(b, sec(1), sec(4)), 2.0, 0.25);
}

TEST(Drr, LargePacketsWaitForDeficit) {
  // A class whose packets exceed one quantum accumulates deficit over
  // multiple rounds but still gets its byte share.
  Drr sched;
  const ClassId big = sched.add_session(500);   // packets are 1500
  const ClassId sml = sched.add_session(500);   // packets are 500
  Simulator sim(mbps(8), sched);
  sim.add<GreedySource>(big, 1500, 4, 0, sec(4));
  sim.add<GreedySource>(sml, 500, 4, 0, sec(4));
  sim.run(sec(4));
  EXPECT_NEAR(sim.tracker().rate_mbps(big, sec(1), sec(4)), 4.0, 0.3);
  EXPECT_NEAR(sim.tracker().rate_mbps(sml, sec(1), sec(4)), 4.0, 0.3);
}

TEST(Drr, WorkConserving) {
  Drr sched;
  const ClassId a = sched.add_session(1500);
  const ClassId b = sched.add_session(1500);
  Simulator sim(mbps(8), sched);
  sim.add<GreedySource>(a, 1000, 4, 0, sec(1));
  sim.add<PoissonSource>(b, mbps(1), 400, 0, sec(1), 3);
  sim.run(sec(1));
  EXPECT_GT(sim.link().busy_time(), sec(1) - msec(1));
}

TEST(Cbq, TopLevelSharesFollowWeights) {
  Cbq sched(mbps(8));
  const ClassId a = sched.add_class(kRootClass, mbps(6));
  const ClassId b = sched.add_class(kRootClass, mbps(2));
  Simulator sim(mbps(8), sched);
  sim.add<GreedySource>(a, 1000, 4, 0, sec(4));
  sim.add<GreedySource>(b, 1000, 4, 0, sec(4));
  sim.run(sec(4));
  EXPECT_NEAR(sim.tracker().rate_mbps(a, sec(1), sec(4)), 6.0, 0.5);
  EXPECT_NEAR(sim.tracker().rate_mbps(b, sec(1), sec(4)), 2.0, 0.5);
}

TEST(Cbq, NonBorrowingClassIsRateLimited) {
  Cbq sched(mbps(10));
  const ClassId capped =
      sched.add_class(kRootClass, mbps(2), /*borrow=*/false);
  Simulator sim(mbps(10), sched);
  sim.add<GreedySource>(capped, 1000, 4, 0, sec(3));
  sim.run(sec(3));
  // Alone on an idle link but forbidden to borrow: held near 2 Mb/s by
  // the estimator (CBQ's regulation is approximate, hence the loose
  // tolerance — exactly the inaccuracy the paper criticizes).
  EXPECT_NEAR(sim.tracker().rate_mbps(capped, msec(500), sec(3)), 2.0, 0.6);
  EXPECT_LT(sim.link().busy_time(), sec(1));
}

TEST(Cbq, BorrowingClassTakesIdleBandwidth) {
  Cbq sched(mbps(10));
  const ClassId a = sched.add_class(kRootClass, mbps(2), /*borrow=*/true);
  const ClassId b = sched.add_class(kRootClass, mbps(8), /*borrow=*/true);
  Simulator sim(mbps(10), sched);
  sim.add<GreedySource>(a, 1000, 4, 0, sec(3));
  sim.add<GreedySource>(b, 1000, 4, 0, sec(1));  // b idles after 1 s
  sim.run(sec(3));
  // After b goes idle, a borrows the whole link.
  EXPECT_GT(sim.tracker().rate_mbps(a, sec(1) + msec(200), sec(3)), 9.0);
}

TEST(Cbq, HierarchicalBorrowStaysInOrganization) {
  Cbq sched(mbps(8));
  const ClassId orgA = sched.add_class(kRootClass, mbps(4));
  const ClassId orgB = sched.add_class(kRootClass, mbps(4));
  const ClassId a1 = sched.add_class(orgA, mbps(2));
  const ClassId a2 = sched.add_class(orgA, mbps(2));
  const ClassId b1 = sched.add_class(orgB, mbps(4));
  Simulator sim(mbps(8), sched);
  sim.add<GreedySource>(a1, 1000, 4, 0, sec(4));
  sim.add<GreedySource>(a2, 1000, 4, 0, sec(2));
  sim.add<GreedySource>(b1, 1000, 4, 0, sec(4));
  sim.run(sec(4));
  const auto& t = sim.tracker();
  // CBQ approximates the same link-sharing goals; tolerances are wide
  // because WRR + estimator control is coarse.
  EXPECT_NEAR(t.rate_mbps(a1, sec(1), sec(2)), 2.0, 0.7);
  EXPECT_NEAR(t.rate_mbps(b1, sec(1), sec(2)), 4.0, 0.8);
  EXPECT_GT(t.rate_mbps(a1, sec(2) + msec(300), sec(4)), 2.8);
}

TEST(Cbq, DelayCoupledToBandwidth) {
  // The paper's core criticism: CBQ has no mechanism to give a
  // low-bandwidth class low delay.  A 64 kb/s audio class against greedy
  // bulk sees delays far above what H-FSC achieves with a concave curve
  // (cf. Integration.HfscDecouplesDelayFromRateHpfqCannot).
  Cbq sched(mbps(10));
  const ClassId audio = sched.add_class(kRootClass, kbps(640));
  const ClassId bulk = sched.add_class(kRootClass, mbps(9));
  Simulator sim(mbps(10), sched);
  sim.add<CbrSource>(audio, kbps(64), 160, 0, sec(3));
  sim.add<GreedySource>(bulk, 1500, 8, 0, sec(3));
  sim.run(sec(3));
  EXPECT_GT(sim.tracker().max_delay_ms(audio), 1.0);
}

TEST(Cbq, UnsatLevelCacheKeepsSeedSentCounts) {
  // Differential pin for the lazy unsatisfied-level cache: the exact
  // per-class delivered-packet counts of this borrow-heavy workload were
  // captured with the original eager implementation (one full-tree scan
  // per dequeue).  The cache must be invisible — any drift here means a
  // stale cache changed a borrowing decision.  The workload exercises the
  // interesting transitions: a non-borrowing class going overlimit, a
  // source stopping mid-run (its share becomes borrowable), and a
  // late-starting class flipping the unsatisfied level back down.
  Cbq sched(mbps(10));
  const ClassId agency_a = sched.add_class(kRootClass, mbps(7));
  const ClassId agency_b = sched.add_class(kRootClass, mbps(3));
  const ClassId a1 = sched.add_class(agency_a, mbps(5), /*borrow=*/true);
  const ClassId a2 = sched.add_class(agency_a, mbps(2), /*borrow=*/false);
  const ClassId b1 = sched.add_class(agency_b, mbps(2), /*borrow=*/true);
  const ClassId b2 = sched.add_class(agency_b, mbps(1), /*borrow=*/true);
  Simulator sim(mbps(10), sched);
  sim.add<GreedySource>(a1, 1000, 4, 0, sec(2));
  sim.add<GreedySource>(a2, 700, 4, 0, sec(1));
  sim.add<PoissonSource>(b1, mbps(2), 400, 0, sec(2), 7);
  sim.add<GreedySource>(b2, 1200, 4, msec(500), sec(2));
  sim.run(sec(2) + msec(100));
  const auto& t = sim.tracker();
  EXPECT_EQ(t.packets(a1), 1520u);
  EXPECT_EQ(t.packets(a2), 370u);
  EXPECT_EQ(t.packets(b1), 1270u);
  EXPECT_EQ(t.packets(b2), 182u);
}

}  // namespace
}  // namespace hfsc
