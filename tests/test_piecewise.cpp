// Tests for the piecewise-linear algebra, admission control (the
// Section II feasibility condition) and the analytical delay bound.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/hfsc.hpp"
#include "curve/piecewise.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

TEST(Piecewise, EvalAndInverseOfServiceCurve) {
  const ServiceCurve sc{mbps(10), msec(8), mbps(2)};
  const auto p = PiecewiseLinear::from_service_curve(sc);
  for (TimeNs t : {TimeNs{0}, msec(3), msec(8), msec(20), sec(1)}) {
    EXPECT_EQ(p.eval(t), sc.eval(t)) << t;
  }
  for (Bytes y : {Bytes{0}, Bytes{500}, Bytes{10000}, Bytes{12000}}) {
    EXPECT_EQ(p.inverse(y), sc.inverse(y)) << y;
  }
}

TEST(Piecewise, TokenBucketEnvelope) {
  const auto tb = PiecewiseLinear::token_bucket(5000, mbps(1));
  EXPECT_EQ(tb.eval(0), 5000u);
  EXPECT_EQ(tb.eval(msec(8)), 6000u);
  EXPECT_EQ(tb.inverse(5000), 0u);
  EXPECT_EQ(tb.inverse(6000), msec(8));
}

TEST(Piecewise, InverseCrossesFlatPieces) {
  // Convex curve: flat then rising — inverse of a value above the flat
  // part must land on the second piece.
  const ServiceCurve convex{0, msec(10), mbps(1)};
  const auto p = PiecewiseLinear::from_service_curve(convex);
  EXPECT_EQ(p.inverse(0), 0u);
  EXPECT_EQ(p.inverse(1), msec(10) + seg_y2x(1, mbps(1)));
  // A curve ending flat never reaches values above its plateau.
  const auto flat = PiecewiseLinear(
      {PiecewiseLinear::Piece{0, 0, mbps(1)},
       PiecewiseLinear::Piece{msec(1), 125, 0}});
  EXPECT_EQ(flat.inverse(126), kTimeInfinity);
}

TEST(Piecewise, SumMatchesPointwise) {
  const auto a =
      PiecewiseLinear::from_service_curve({mbps(10), msec(8), mbps(2)});
  const auto b =
      PiecewiseLinear::from_service_curve({0, msec(4), mbps(6)});
  const auto s = a.sum(b);
  for (TimeNs t = 0; t < msec(30); t += usec(100)) {
    ASSERT_EQ(s.eval(t), a.eval(t) + b.eval(t)) << t;
  }
  EXPECT_EQ(s.tail_rate(), mbps(8));
}

TEST(Piecewise, MinMatchesPointwise) {
  // Concave vs line: the min switches curves at an interior crossing that
  // is not a breakpoint of either input.
  const auto a =
      PiecewiseLinear::from_service_curve({mbps(10), msec(8), mbps(2)});
  const auto b = PiecewiseLinear::from_service_curve(
      ServiceCurve::linear(mbps(4)));
  const auto m = a.min(b);
  // Never above the pointwise min; at most one byte below (the documented
  // floor slack at synthesized crossing breakpoints).
  for (TimeNs t = 0; t < msec(40); t += usec(50)) {
    const Bytes want = std::min(a.eval(t), b.eval(t));
    ASSERT_LE(m.eval(t), want) << t;
    ASSERT_GE(m.eval(t) + 1, want) << t;
  }
  EXPECT_EQ(m.tail_rate(), mbps(2));
  // min is symmetric and dominated by both inputs.
  const auto m2 = b.min(a);
  for (TimeNs t = 0; t < msec(40); t += usec(97)) {
    ASSERT_EQ(m2.eval(t), m.eval(t)) << t;
  }
  EXPECT_TRUE(a.dominates(m));
  EXPECT_TRUE(b.dominates(m));
}

TEST(Piecewise, MinOfDominatedPairIsTheLowerCurve) {
  const auto low =
      PiecewiseLinear::from_service_curve(ServiceCurve::linear(mbps(1)));
  const auto high =
      PiecewiseLinear::from_service_curve({mbps(8), msec(5), mbps(3)});
  EXPECT_EQ(high.min(low), low);
  EXPECT_EQ(low.min(high), low);
}

TEST(Piecewise, MinWithTokenBucketCrossing) {
  // Token bucket (jump at 0, shallow slope) vs convex service curve: min
  // follows the service curve early, the bucket late.
  const auto bucket = PiecewiseLinear::token_bucket(4000, kbps(512));
  const auto svc =
      PiecewiseLinear::from_service_curve({0, msec(2), mbps(10)});
  const auto m = bucket.min(svc);
  for (TimeNs t = 0; t < msec(100); t += usec(211)) {
    const Bytes want = std::min(bucket.eval(t), svc.eval(t));
    ASSERT_LE(m.eval(t), want) << t;
    ASSERT_GE(m.eval(t) + 1, want) << t;
  }
  EXPECT_EQ(m.eval(0), 0u);
  EXPECT_EQ(m.tail_rate(), kbps(512));
}

TEST(Piecewise, MinTieBreaksTowardsLowerSlope) {
  // Identical value at t = 0, different slopes: the flatter curve is the
  // minimum from the very first nanosecond.
  const auto s1 =
      PiecewiseLinear::from_service_curve(ServiceCurve::linear(mbps(2)));
  const auto s2 =
      PiecewiseLinear::from_service_curve(ServiceCurve::linear(mbps(5)));
  const auto m = s1.min(s2);
  EXPECT_EQ(m, s1);
}

TEST(Piecewise, DominatesDetectsInteriorCrossing) {
  // A concave burst crosses a plain line even though both endpoints of a
  // coarse comparison could look fine.
  const auto line = PiecewiseLinear::from_service_curve(
      ServiceCurve::linear(mbps(5)));
  const auto burst =
      PiecewiseLinear::from_service_curve({mbps(10), msec(8), mbps(2)});
  EXPECT_FALSE(line.dominates(burst));  // burst exceeds the line early
  EXPECT_FALSE(burst.dominates(line));  // line exceeds the burst late
  const auto big = PiecewiseLinear::from_service_curve(
      ServiceCurve::linear(mbps(11)));
  EXPECT_TRUE(big.dominates(burst));
  EXPECT_TRUE(big.dominates(line));
}

TEST(Piecewise, DominatesChecksTailRates) {
  const auto slow = PiecewiseLinear::from_service_curve(
      {mbps(10), msec(8), mbps(1)});
  const auto fast = PiecewiseLinear::from_service_curve(
      ServiceCurve::linear(mbps(2)));
  // slow is above early but its tail loses eventually.
  EXPECT_FALSE(slow.dominates(fast));
}

TEST(Admission, AcceptsUntilTheLinkCurveIsFull) {
  AdmissionControl ac(mbps(10));
  // Five 2 Mb/s linear sessions fill the link exactly.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ac.admit(ServiceCurve::linear(mbps(2)))) << i;
  }
  EXPECT_EQ(ac.admitted(), 5u);
  EXPECT_NEAR(ac.utilization(), 1.0, 1e-9);
  EXPECT_FALSE(ac.admit(ServiceCurve::linear(kbps(8))));
  // Releasing one frees the capacity again.
  ac.release(ServiceCurve::linear(mbps(2)));
  EXPECT_TRUE(ac.admit(ServiceCurve::linear(mbps(1))));
}

TEST(Admission, ConcaveBurstsLimitEachOther) {
  // Two concave curves whose m1's sum beyond the link must not both be
  // admitted even though their m2's fit easily.
  AdmissionControl ac(mbps(10));
  const ServiceCurve burst{mbps(8), msec(10), mbps(1)};
  EXPECT_TRUE(ac.admit(burst));
  EXPECT_FALSE(ac.admit(burst));  // 16 Mb/s burst demand > 10 Mb/s link
  // A convex session fits alongside: its demand is deferred.
  EXPECT_TRUE(ac.admit(ServiceCurve{0, msec(40), mbps(2)}));
}

TEST(Admission, ConvexPlusConcaveInteraction) {
  AdmissionControl ac(mbps(10));
  EXPECT_TRUE(ac.admit(ServiceCurve{mbps(10), msec(5), mbps(5)}));
  // A convex ramp that starts before the concave knee collides with it
  // (combined slope 15 Mb/s while the burst is still being paid).
  EXPECT_FALSE(ac.admit(ServiceCurve{0, msec(1), mbps(5)}));
  // Deferring the ramp past the knee fits exactly (5 + 5 = 10 Mb/s).
  EXPECT_TRUE(ac.admit(ServiceCurve{0, msec(5), mbps(5)}));
  // And now the link curve is an exact equality: nothing more fits.
  EXPECT_FALSE(ac.admit(ServiceCurve::linear(kbps(8))));
}

TEST(DelayBound, MatchesHandComputedCases) {
  // Token bucket (1500 B, 1 Mb/s) into a linear 2 Mb/s curve:
  // gap = burst / rate = 1500 B / 250 kB/s = 6 ms, plus tau.
  const auto d = delay_bound(1500, mbps(1), ServiceCurve::linear(mbps(2)),
                             1500, mbps(10));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, msec(6) + tx_time(1500, mbps(10)));

  // Envelope faster than the curve: unbounded.
  EXPECT_FALSE(delay_bound(1500, mbps(3), ServiceCurve::linear(mbps(2)),
                           1500, mbps(10))
                   .has_value());
}

TEST(DelayBound, ConcaveCurveCutsTheBound) {
  // Same envelope; a concave curve with a fast first segment slashes the
  // bound versus the linear curve of equal long-term rate.
  const auto lin = delay_bound(3000, kbps(64), ServiceCurve::linear(kbps(64)),
                               1500, mbps(10));
  const auto con = delay_bound(3000, kbps(64),
                               from_udr(3000, msec(5), kbps(64)), 1500,
                               mbps(10));
  ASSERT_TRUE(lin.has_value());
  ASSERT_TRUE(con.has_value());
  EXPECT_LT(*con, *lin / 10);
}

// The money property: the analytical bound is an upper bound on the
// simulated worst-case delay for conformant traffic, across a parameter
// sweep.
struct BoundCase {
  Bytes burst;
  RateBps rate;
  ServiceCurve sc;
};

class DelayBoundProperty : public ::testing::TestWithParam<BoundCase> {};

TEST_P(DelayBoundProperty, SimulatedDelayWithinAnalyticalBound) {
  const auto [burst, rate, sc] = GetParam();
  const RateBps link = mbps(10);
  const auto bound = delay_bound(burst, rate, sc, 1500, link);
  ASSERT_TRUE(bound.has_value());

  Hfsc sched(link);
  const ClassId session = sched.add_class(kRootClass, ClassConfig::both(sc));
  const ClassId noise = sched.add_class(
      kRootClass, ClassConfig::link_share_only(
                      ServiceCurve::linear(link - sc.m2)));
  Simulator sim(link, sched);
  // Conformant worst-ish case: dump the whole burst, then send at the
  // sustained rate.
  std::vector<TraceSource::Item> items;
  Bytes left = burst;
  while (left > 0) {
    const Bytes chunk = std::min<Bytes>(left, 500);
    items.push_back({msec(1), chunk});
    left -= chunk;
  }
  for (TimeNs t = msec(1); t < sec(2); t += seg_y2x(500, rate)) {
    items.push_back({t + seg_y2x(500, rate), 500});
  }
  sim.add<TraceSource>(session, items);
  sim.add<GreedySource>(noise, 1500, 8, 0, sec(2));
  sim.run_all();
  const double bound_ms = static_cast<double>(*bound) / 1e6;
  EXPECT_LE(sim.tracker().max_delay_ms(session), bound_ms + 0.01)
      << "bound " << bound_ms << " ms";
  EXPECT_GT(sim.tracker().packets(session), 50u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DelayBoundProperty,
    ::testing::Values(
        BoundCase{1500, kbps(256), ServiceCurve::linear(kbps(512))},
        BoundCase{3000, kbps(512), {mbps(4), msec(10), mbps(1)}},
        BoundCase{6000, mbps(1), {mbps(8), msec(10), mbps(2)}},
        BoundCase{1500, kbps(128), from_udr(1500, msec(20), kbps(256))},
        BoundCase{9000, mbps(2), {mbps(8), msec(20), mbps(4)}}));

}  // namespace
}  // namespace hfsc
