// Tests for util/rng.hpp and util/stats.hpp.
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hfsc {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  Rng a2(7);
  Rng c2(8);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(Rng, DoublesInUnitInterval) {
  Rng r(123);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform(10, 20);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 20u);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r(99);
  double sum = 0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, ParetoAboveScale) {
  Rng r(4);
  for (int i = 0; i < 1000; ++i) ASSERT_GE(r.pareto(2.0, 10.0), 10.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100 reversed
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, AddAfterQuantileStillWorks) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
}

TEST(WindowedThroughput, AccumulatesIntoWindows) {
  WindowedThroughput w(msec(100));
  w.add(msec(10), 1000);
  w.add(msec(90), 1000);
  w.add(msec(150), 500);
  EXPECT_EQ(w.bytes_in_window(0), 2000u);
  EXPECT_EQ(w.bytes_in_window(1), 500u);
  // 2000 bytes in 100 ms = 20 kB/s.
  EXPECT_DOUBLE_EQ(w.rate_bps(0), 20000.0);
}

TEST(WindowedThroughput, RateOverInterval) {
  WindowedThroughput w(msec(100));
  w.add(msec(50), 1000);   // window 0
  w.add(msec(150), 3000);  // window 1
  // Over [0, 200 ms): 4000 bytes -> 20 kB/s.
  EXPECT_NEAR(w.rate_over(0, msec(200)), 20000.0, 1e-6);
  // Over window 1 only.
  EXPECT_NEAR(w.rate_over(msec(100), msec(200)), 30000.0, 1e-6);
  // Interval past the data.
  EXPECT_NEAR(w.rate_over(msec(300), msec(400)), 0.0, 1e-9);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace hfsc
