// Unit tests for the static hierarchy analyzer (analysis/analyzer.hpp):
// one scenario per diagnostic id, each asserting the exact file:line
// provenance the parser recorded, plus report plumbing (JSON schema
// presence, portability verdicts, delay bounds on the committed
// scenarios).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "analysis/analyzer.hpp"
#include "curve/piecewise.hpp"
#include "sim/scenario.hpp"

namespace hfsc {
namespace {

Scenario parse_text(const std::string& text) {
  std::istringstream in(text);
  return Scenario::parse(in, "mem.hfsc");
}

// The single diagnostic with the given id; fails the test when it is
// absent or ambiguous.  Returns a copy so callers may pass a temporary
// report.
Diagnostic find_diag(const AnalysisReport& r, const std::string& id) {
  const Diagnostic* found = nullptr;
  for (const Diagnostic& d : r.diagnostics) {
    if (d.id == id) {
      EXPECT_EQ(found, nullptr) << "duplicate diagnostic " << id;
      found = &d;
    }
  }
  EXPECT_NE(found, nullptr) << "missing diagnostic " << id;
  return found ? *found : Diagnostic{};
}

bool has_diag(const AnalysisReport& r, const std::string& id) {
  return std::any_of(
      r.diagnostics.begin(), r.diagnostics.end(),
      [&](const Diagnostic& d) { return d.id == id; });
}

TEST(Analysis, CleanScenarioHasNoFindings) {
  const Scenario sc = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class a root ls linear 6Mbps\n"
      "class b root rt udr 160 10ms 64kbps ls linear 4Mbps\n"
      "envelope b 160 64kbps\n"
      "source cbr b 64kbps 160 0s 1s\n"
      "source greedy a 1500 4 0s 1s\n");
  const AnalysisReport r = analyze(sc);
  EXPECT_TRUE(r.rt_feasible);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.notes(), 0u);
  ASSERT_EQ(r.delay_bounds.size(), 1u);
  EXPECT_EQ(r.delay_bounds[0].cls, "b");
  ASSERT_TRUE(r.delay_bounds[0].bound.has_value());
  // The (u, d, r) = (160 B, 10 ms, 64 kb/s) guarantee bounds a conformant
  // one-packet burst by d plus one max-packet transmission time.
  EXPECT_EQ(*r.delay_bounds[0].bound,
            msec(10) + tx_time(1500, sc.link_rate));
  EXPECT_EQ(r.file, "mem.hfsc");
  EXPECT_EQ(r.num_classes, 2u);
}

TEST(Analysis, RtLinkInfeasibleNamesTheBreakingClass) {
  // 6 + 6 Mb/s of rt reservation on a 10 Mb/s link: the second class is
  // the one that pushes the aggregate over.
  const Scenario sc = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class a root rt linear 6Mbps\n"
      "class b root rt linear 6Mbps\n");
  const AnalysisReport r = analyze(sc);
  EXPECT_FALSE(r.rt_feasible);
  const Diagnostic& d = find_diag(r, "rt-link-infeasible");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.cls, "b");
  EXPECT_EQ(d.loc.file, "mem.hfsc");
  EXPECT_EQ(d.loc.line, 4u);
  EXPECT_DOUBLE_EQ(r.rt_utilization, 1.2);
}

TEST(Analysis, RtUlInfeasibleOnLeafAndInterior) {
  // Leaf: its own ul cuts below its rt curve.
  const Scenario leaf = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class a root rt linear 4Mbps ls linear 4Mbps ul linear 2Mbps\n");
  const Diagnostic& d1 = find_diag(analyze(leaf), "rt-ul-infeasible");
  EXPECT_EQ(d1.severity, Severity::kError);
  EXPECT_EQ(d1.cls, "a");
  EXPECT_EQ(d1.loc.line, 3u);

  // Interior: the subtree's aggregate rt exceeds the interior cap even
  // though each leaf alone fits under it.
  const Scenario interior = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class agg root ls linear 5Mbps ul linear 3Mbps\n"
      "class x agg rt linear 2Mbps ls linear 2Mbps\n"
      "class y agg rt linear 2Mbps ls linear 2Mbps\n");
  const AnalysisReport r = analyze(interior);
  const Diagnostic& d2 = find_diag(r, "rt-ul-infeasible");
  EXPECT_EQ(d2.cls, "agg");
  EXPECT_EQ(d2.loc.line, 3u);
  // The link itself is fine: 4 of 10 Mb/s.
  EXPECT_TRUE(r.rt_feasible);
}

TEST(Analysis, UlBelowLsWarns) {
  const Scenario sc = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class bulk root ls linear 9Mbps ul linear 8Mbps\n");
  const Diagnostic& d = find_diag(analyze(sc), "ul-below-ls");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.cls, "bulk");
  EXPECT_EQ(d.loc.line, 3u);
}

TEST(Analysis, LsZeroSlopeSegmentsWarn) {
  // Flat tail: the class starves once the first segment is spent.
  const Scenario tail = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class a root ls curve 2Mbps 5ms 0bps rt linear 1Mbps\n");
  const Diagnostic& d1 = find_diag(analyze(tail), "ls-zero-slope");
  EXPECT_EQ(d1.severity, Severity::kWarning);
  EXPECT_EQ(d1.loc.line, 3u);

  // Flat start (convex): no share during the first d of a backlog period.
  const Scenario start = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class a root ls curve 0bps 5ms 2Mbps\n");
  const Diagnostic& d2 = find_diag(analyze(start), "ls-zero-slope");
  EXPECT_EQ(d2.severity, Severity::kWarning);
}

TEST(Analysis, LsOversubscriptionAtParentAndLink) {
  const Scenario at_parent = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class p root ls linear 5Mbps\n"
      "class c1 p ls linear 3Mbps\n"
      "class c2 p ls linear 3Mbps\n");
  const Diagnostic& d1 = find_diag(analyze(at_parent), "ls-oversubscribed");
  EXPECT_EQ(d1.severity, Severity::kWarning);
  EXPECT_EQ(d1.cls, "p");
  EXPECT_EQ(d1.loc.line, 3u);

  const Scenario at_link = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class a root ls linear 6Mbps\n"
      "class b root ls linear 6Mbps\n");
  const Diagnostic& d2 = find_diag(analyze(at_link), "ls-oversubscribed");
  EXPECT_EQ(d2.cls, "");  // link-level: no class to anchor to
  EXPECT_EQ(d2.loc.line, 0u);
}

TEST(Analysis, RtOverLsOnInteriorWarns) {
  const Scenario sc = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class agg root ls linear 1Mbps\n"
      "class x agg rt linear 2Mbps ls linear 1Mbps\n");
  const AnalysisReport r = analyze(sc);
  const Diagnostic& d = find_diag(r, "rt-over-ls");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.cls, "agg");
  EXPECT_EQ(d.loc.line, 3u);
  // The leaf's own rt above its own ls is the paper's decoupling feature,
  // not a finding.
  EXPECT_FALSE(has_diag(r, "rt-on-interior"));
}

TEST(Analysis, RtOnInteriorWarns) {
  const Scenario sc = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class agg root rt linear 1Mbps ls linear 5Mbps\n"
      "class x agg ls linear 5Mbps\n");
  const Diagnostic& d = find_diag(analyze(sc), "rt-on-interior");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.cls, "agg");
  EXPECT_EQ(d.loc.line, 3u);
}

TEST(Analysis, QlimitUnboundedUnderOversubscribedParentWarns) {
  // Both leaves oversubscribe p; c1 has no qlimit -> unbounded backlog
  // exactly when the contention bites.  c2's qlimit silences it.
  const Scenario sc = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class p root ls linear 5Mbps\n"
      "class c1 p ls linear 3Mbps\n"
      "class c2 p ls linear 3Mbps qlimit 64\n");
  const AnalysisReport r = analyze(sc);
  const Diagnostic& d = find_diag(r, "qlimit-unbounded");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.cls, "c1");
  int unbounded = 0;
  for (const Diagnostic& di : r.diagnostics) {
    if (di.id == "qlimit-unbounded") ++unbounded;
  }
  EXPECT_EQ(unbounded, 1);  // c2 is capped, p is interior

  // A well-subscribed parent keeps unlimited leaves lint-clean: the
  // share is honourable, so the backlog is bounded by the sources.
  const Scenario ok = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class p root ls linear 6Mbps\n"
      "class c1 p ls linear 3Mbps\n"
      "class c2 p ls linear 3Mbps\n");
  EXPECT_FALSE(has_diag(analyze(ok), "qlimit-unbounded"));
}

TEST(Analysis, QlimitSmallerThanBurstWarns) {
  // 4 packets x 160 B = 640 B of queue for a 1000 B declared burst.
  const Scenario sc = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class a root rt linear 1Mbps ls linear 1Mbps qlimit 4\n"
      "envelope a 1000 64kbps\n"
      "source cbr a 64kbps 160 0s 1s\n");
  const Diagnostic& d = find_diag(analyze(sc), "qlimit-lt-burst");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.cls, "a");
  EXPECT_EQ(d.loc.line, 3u);
}

TEST(Analysis, UnfedLeafIsANote) {
  const Scenario sc = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class a root ls linear 5Mbps\n"
      "class b root ls linear 5Mbps\n"
      "source greedy a 1500 4 0s 1s\n");
  const AnalysisReport r = analyze(sc);
  const Diagnostic& d = find_diag(r, "class-unfed");
  EXPECT_EQ(d.severity, Severity::kNote);
  EXPECT_EQ(d.cls, "b");
  EXPECT_EQ(d.loc.line, 4u);
  EXPECT_TRUE(r.clean());  // notes do not dirty a scenario
}

TEST(Analysis, EnvelopeDiagnostics) {
  // Envelope rate above the rt curve's tail: unbounded worst-case delay.
  const Scenario overrun = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class a root rt linear 1Mbps ls linear 1Mbps\n"
      "envelope a 160 2Mbps\n");
  const AnalysisReport r1 = analyze(overrun);
  const Diagnostic& d1 = find_diag(r1, "envelope-overruns-service");
  EXPECT_EQ(d1.severity, Severity::kWarning);
  ASSERT_EQ(r1.delay_bounds.size(), 1u);
  EXPECT_FALSE(r1.delay_bounds[0].bound.has_value());
  // The delay-bound row anchors at the envelope directive's line.
  EXPECT_EQ(r1.delay_bounds[0].loc.line, 4u);

  // Envelope without an rt curve: nothing to bound against.
  const Scenario no_rt = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class a root ls linear 5Mbps\n"
      "envelope a 160 64kbps\n"
      "source cbr a 64kbps 160 0s 1s\n");
  const Diagnostic& d2 = find_diag(analyze(no_rt), "envelope-without-rt");
  EXPECT_EQ(d2.severity, Severity::kNote);

  // Envelope on an interior class is ignored (and said so).
  const Scenario interior = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class agg root ls linear 5Mbps\n"
      "class x agg ls linear 5Mbps\n"
      "envelope agg 160 64kbps\n"
      "source greedy x 1500 4 0s 1s\n");
  const Diagnostic& d3 = find_diag(analyze(interior), "envelope-on-interior");
  EXPECT_EQ(d3.severity, Severity::kWarning);
  EXPECT_EQ(d3.cls, "agg");
}

TEST(Analysis, UlCapTightensTheDelayBound) {
  // Same envelope and rt curve, but an ancestor ul caps the service the
  // subtree can receive: the effective guarantee min(rt, ul) is slower,
  // so the bound must grow.
  const Scenario uncapped = parse_text(
      "link 100Mbps\n"
      "duration 1s\n"
      "class agg root ls linear 50Mbps\n"
      "class a agg rt curve 16Mbps 10ms 2Mbps ls linear 2Mbps\n"
      "envelope a 20000 2Mbps\n");
  const Scenario capped = parse_text(
      "link 100Mbps\n"
      "duration 1s\n"
      "class agg root ls linear 50Mbps ul linear 4Mbps\n"
      "class a agg rt curve 16Mbps 10ms 2Mbps ls linear 2Mbps\n"
      "envelope a 20000 2Mbps\n");
  const AnalysisReport r1 = analyze(uncapped);
  const AnalysisReport r2 = analyze(capped);
  ASSERT_EQ(r1.delay_bounds.size(), 1u);
  ASSERT_EQ(r2.delay_bounds.size(), 1u);
  ASSERT_TRUE(r1.delay_bounds[0].bound.has_value());
  ASSERT_TRUE(r2.delay_bounds[0].bound.has_value());
  EXPECT_GT(*r2.delay_bounds[0].bound, *r1.delay_bounds[0].bound);
}

TEST(Analysis, PortabilityPreFlight) {
  // Non-linear rt/ls curves, an upper limit, a queue limit and an
  // interior class: only H-FSC expresses all of it.
  const Scenario sc = parse_text(
      "link 45Mbps\n"
      "duration 1s\n"
      "class org root ls linear 25Mbps\n"
      "class audio org rt udr 160 5ms 64kbps ls linear 64kbps\n"
      "class data org ls linear 20Mbps ul linear 22Mbps qlimit 50\n");
  const AnalysisReport r = analyze(sc);
  ASSERT_EQ(r.portability.size(), all_scheduler_kinds().size());
  for (const PortabilityEntry& e : r.portability) {
    EXPECT_TRUE(e.compiles) << to_string(e.kind);
    if (e.kind == SchedulerKind::kHfsc) {
      EXPECT_TRUE(e.lossless);
      EXPECT_TRUE(e.notes.empty());
    } else {
      EXPECT_FALSE(e.lossless) << to_string(e.kind);
      EXPECT_FALSE(e.notes.empty()) << to_string(e.kind);
    }
  }
}

TEST(Analysis, SpecLevelEntryPointHasNoProvenance) {
  HierarchySpec spec;
  HierarchySpec::ClassSpec c;
  c.name = "a";
  c.rt = c.ls = ServiceCurve::linear(mbps(20));
  c.env_burst = 1500;
  c.env_rate = mbps(20);
  spec.add(c);
  const AnalysisReport r = analyze(spec, mbps(10));
  EXPECT_FALSE(r.rt_feasible);
  const Diagnostic& d = find_diag(r, "rt-link-infeasible");
  EXPECT_EQ(d.loc.line, 0u);
  EXPECT_EQ(d.loc.to_string(), "<spec>");
  EXPECT_EQ(r.file, "");
}

TEST(Analysis, JsonReportCarriesTheSchema) {
  const Scenario sc = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class a root rt udr 160 10ms 64kbps ls linear 5Mbps\n"
      "envelope a 160 64kbps\n"
      "source cbr a 64kbps 160 0s 1s\n"
      "class b root ls linear 9Mbps\n"
      "source greedy b 1500 4 0s 1s\n");
  const std::string json = analyze(sc).to_json();
  for (const char* key :
       {"\"file\": \"mem.hfsc\"", "\"classes\": 2", "\"rt_feasible\": true",
        "\"rt_utilization\"", "\"diagnostics\": [", "\"delay_bounds\": [",
        "\"class\": \"a\"", "\"burst_bytes\": 160", "\"bound_ns\"",
        "\"bound_ms\"", "\"portability\": [", "\"family\": \"hfsc\"",
        "\"lossless\": true", "\"ls-oversubscribed\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
}

TEST(Analysis, CommittedScenariosAreClean) {
  for (const char* name : {"campus", "voip", "decoupling"}) {
    const Scenario sc = Scenario::parse_file(
        std::string(HFSC_SOURCE_DIR) + "/scenarios/" + name + ".hfsc");
    const AnalysisReport r = analyze(sc);
    EXPECT_TRUE(r.clean()) << name << ":\n" << r.to_text();
    EXPECT_TRUE(r.rt_feasible) << name;
    EXPECT_FALSE(r.delay_bounds.empty()) << name;
  }
}

TEST(Analysis, EnvelopeDirectiveParseErrors) {
  auto expect_fail = [](const std::string& text, const std::string& what) {
    try {
      parse_text(text);
      FAIL() << "expected parse failure: " << what;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << e.what();
    }
  };
  expect_fail(
      "link 10Mbps\nduration 1s\nclass a root ls linear 1Mbps\n"
      "envelope b 160 64kbps\n",
      "mem.hfsc:4: unknown class b");
  expect_fail(
      "link 10Mbps\nduration 1s\nclass a root ls linear 1Mbps\n"
      "envelope a 160\n",
      "envelope needs <class> <burst> <rate>");
  expect_fail(
      "link 10Mbps\nduration 1s\nclass a root ls linear 1Mbps\n"
      "envelope a 160 64kbps\nenvelope a 320 64kbps\n",
      "mem.hfsc:5: duplicate envelope for class a");
  expect_fail(
      "link 10Mbps\nduration 1s\nclass a root ls linear 1Mbps\n"
      "envelope a 0 0bps\n",
      "envelope must have a non-zero burst or rate");
  expect_fail(
      "link 10Mbps\nduration 1s\nclass a root ls linear 1Mbps\n"
      "envelope a 160 64kbps extra\n",
      "trailing token: extra");
}

TEST(Analysis, TextReportShape) {
  const Scenario sc = parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class a root rt linear 6Mbps\n"
      "class b root rt linear 6Mbps\n");
  const std::string text = analyze(sc).to_text();
  EXPECT_NE(text.find("mem.hfsc:4: error: [rt-link-infeasible]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rt admissibility: INFEASIBLE"), std::string::npos);
  EXPECT_NE(text.find("summary: 1 error(s)"), std::string::npos);
}

}  // namespace
}  // namespace hfsc
