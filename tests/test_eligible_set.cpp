// Tests for the two real-time request structures of Section V, including a
// randomized cross-check between them and a brute-force model.
#include <gtest/gtest.h>

#include <optional>
#include <map>

#include "core/eligible_set.hpp"
#include "util/rng.hpp"

namespace hfsc {
namespace {

class EligibleSetTest : public ::testing::TestWithParam<EligibleSetKind> {
 protected:
  std::unique_ptr<EligibleSet> set_ = make_eligible_set(GetParam());
};

TEST_P(EligibleSetTest, EmptyBehaviour) {
  EXPECT_TRUE(set_->empty());
  EXPECT_FALSE(set_->min_deadline_eligible(msec(100)).has_value());
  EXPECT_EQ(set_->next_eligible_time(), kTimeInfinity);
  EXPECT_FALSE(set_->contains(3));
  set_->erase(3);  // erasing an absent class is a no-op
}

TEST_P(EligibleSetTest, OnlyEligibleClassesAreReturned) {
  set_->update(1, msec(10), msec(20), 0);
  set_->update(2, msec(5), msec(50), 0);
  // At t=0 nothing is eligible.
  EXPECT_FALSE(set_->min_deadline_eligible(0).has_value());
  // At t=7ms only class 2 (e=5ms) is eligible even though its deadline is
  // later than class 1's.
  auto got = set_->min_deadline_eligible(msec(7));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 2u);
  // At t=10ms both are eligible; class 1 has the smaller deadline.
  got = set_->min_deadline_eligible(msec(10));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1u);
}

TEST_P(EligibleSetTest, UpdateReplacesRequest) {
  set_->update(1, msec(10), msec(20), 0);
  set_->update(1, msec(1), msec(99), 0);
  EXPECT_TRUE(set_->contains(1));
  auto got = set_->min_deadline_eligible(msec(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1u);
}

TEST_P(EligibleSetTest, EraseRemoves) {
  set_->update(1, 0, msec(20), 0);
  set_->update(2, 0, msec(10), 0);
  set_->erase(2);
  EXPECT_FALSE(set_->contains(2));
  auto got = set_->min_deadline_eligible(msec(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1u);
}

TEST_P(EligibleSetTest, NextEligibleTime) {
  set_->update(1, msec(30), msec(40), 0);
  set_->update(2, msec(10), msec(90), 0);
  EXPECT_EQ(set_->next_eligible_time(), msec(10));
  // Once something is eligible the hint is exactly 0 ("wake immediately"),
  // not merely "not in the future" — Hfsc::next_wakeup folds it into a
  // min with the upper-limit fit times and must not defer a due class.
  (void)set_->min_deadline_eligible(msec(15));
  EXPECT_EQ(set_->next_eligible_time(), 0u);
}

TEST_P(EligibleSetTest, NextEligibleTimeContract) {
  // Shared contract across all three implementations: kTimeInfinity when
  // empty, the minimum pending eligible time while nothing is eligible,
  // and exactly 0 as soon as some member is eligible at the latest `now`
  // the set has observed.
  EXPECT_EQ(set_->next_eligible_time(), kTimeInfinity);
  set_->update(7, msec(40), msec(50), 0);
  set_->update(3, msec(25), msec(90), 0);
  EXPECT_EQ(set_->next_eligible_time(), msec(25));
  // An update whose eligible time has already passed makes the class
  // eligible right away, so the hint collapses to 0 without any query.
  set_->update(5, msec(1), msec(60), msec(2));
  EXPECT_EQ(set_->next_eligible_time(), 0u);
  set_->erase(5);
  EXPECT_EQ(set_->next_eligible_time(), msec(25));
  // Advancing the clock via a query re-evaluates eligibility.
  (void)set_->min_deadline_eligible(msec(30));
  EXPECT_EQ(set_->next_eligible_time(), 0u);
  set_->erase(3);
  EXPECT_EQ(set_->next_eligible_time(), msec(40));
  set_->erase(7);
  EXPECT_EQ(set_->next_eligible_time(), kTimeInfinity);
}

TEST_P(EligibleSetTest, DeadlineTiesBreakBySmallestClassId) {
  // All three implementations must resolve exact deadline ties the same
  // way (smallest ClassId) so the scheduler's packet order is identical
  // under the eligible-set ablation.  Insert in descending id order to
  // catch structures that keep first-inserted on top.
  set_->update(9, msec(1), msec(20), 0);
  set_->update(4, msec(2), msec(20), 0);
  set_->update(6, msec(3), msec(20), 0);
  auto got = set_->min_deadline_eligible(msec(5));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 4u);
  // A strictly smaller deadline still beats a smaller id... (the update
  // passes now = 5ms: `now` must stay monotone across calls on one
  // instance, and the query above already advanced it)
  set_->update(8, msec(4), msec(19), msec(5));
  got = set_->min_deadline_eligible(msec(5));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 8u);
  // ...and once it leaves, the tie group decides by id again.
  set_->erase(8);
  set_->erase(4);
  got = set_->min_deadline_eligible(msec(5));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 6u);
}

TEST_P(EligibleSetTest, FarFutureEligibleTimeIsNotServedEarly) {
  // Regression for the calendar-queue day rollover (run against every
  // kind): an eligible time many full calendar revolutions ahead hashes
  // into a bucket the scan passes long before the request matures.  The
  // request must stay invisible until its exact eligible time.
  // Calendar geometry: 256 buckets x 100us = 25.6ms per revolution.
  const TimeNs far_e = msec(100);  // ~4 revolutions ahead of t=0
  set_->update(1, far_e, far_e + msec(1), 0);
  // Sweep the clock through several full revolutions in sub-day steps.
  for (TimeNs t = 0; t < far_e; t += msec(4)) {
    EXPECT_FALSE(set_->min_deadline_eligible(t).has_value())
        << "served " << t << " ns early";
    EXPECT_TRUE(set_->contains(1));
  }
  EXPECT_EQ(set_->next_eligible_time(), far_e);
  auto got = set_->min_deadline_eligible(far_e);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1u);
}

TEST_P(EligibleSetTest, FarFutureBucketCollisionKeepsNearRequestVisible) {
  // Two requests whose eligible times land in the SAME calendar bucket,
  // a whole number of revolutions apart (1ms and 1ms + 4 * 25.6ms).  The
  // near one must surface on time; the far one must not ride along.
  const TimeNs near_e = msec(1);
  const TimeNs far_e = near_e + 4 * usec(100) * 256;
  set_->update(2, far_e, far_e + usec(10), 0);  // smaller deadline overall
  set_->update(3, near_e, msec(200), 0);
  auto got = set_->min_deadline_eligible(msec(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 3u) << "future-revolution entry promoted a day early";
  got = set_->min_deadline_eligible(far_e);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 2u);  // now mature, and its deadline is the smaller
}

INSTANTIATE_TEST_SUITE_P(Kinds, EligibleSetTest,
                         ::testing::Values(EligibleSetKind::kDualHeap,
                                           EligibleSetKind::kAugTree,
                                           EligibleSetKind::kCalendar));

// Randomized equivalence: both structures and a brute-force model must
// agree on the *deadline value* of the winner at every query (class ids
// may differ when deadlines tie exactly).
class EligibleSetFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EligibleSetFuzz, StructuresAgreeWithBruteForce) {
  Rng rng(GetParam());
  auto dual = make_eligible_set(EligibleSetKind::kDualHeap);
  auto tree = make_eligible_set(EligibleSetKind::kAugTree);
  auto cal = make_eligible_set(EligibleSetKind::kCalendar);
  struct Req {
    TimeNs e, d;
  };
  std::map<ClassId, Req> model;
  TimeNs now = 0;

  for (int step = 0; step < 4000; ++step) {
    const ClassId cls = static_cast<ClassId>(rng.uniform(1, 40));
    switch (rng.uniform(0, 2)) {
      case 0: {
        const TimeNs e = sat_sub(now + rng.uniform(0, msec(20)), msec(5));
        const TimeNs d = e + rng.uniform(usec(10), msec(30));
        dual->update(cls, e, d, now);
        tree->update(cls, e, d, now);
        cal->update(cls, e, d, now);
        model[cls] = {e, d};
        break;
      }
      case 1:
        dual->erase(cls);
        tree->erase(cls);
        cal->erase(cls);
        model.erase(cls);
        break;
      case 2: {
        now += rng.uniform(0, msec(5));
        std::optional<TimeNs> want;
        for (const auto& [id, r] : model) {
          if (r.e <= now && (!want || r.d < *want)) want = r.d;
        }
        const auto got_dual = dual->min_deadline_eligible(now);
        const auto got_tree = tree->min_deadline_eligible(now);
        const auto got_cal = cal->min_deadline_eligible(now);
        ASSERT_EQ(got_dual.has_value(), want.has_value()) << "step " << step;
        ASSERT_EQ(got_tree.has_value(), want.has_value()) << "step " << step;
        ASSERT_EQ(got_cal.has_value(), want.has_value()) << "step " << step;
        if (want) {
          ASSERT_EQ(model[*got_dual].d, *want) << "step " << step;
          ASSERT_EQ(model[*got_tree].d, *want) << "step " << step;
          ASSERT_EQ(model[*got_cal].d, *want) << "step " << step;
        }
        break;
      }
    }
    ASSERT_EQ(dual->empty(), model.empty());
    ASSERT_EQ(tree->empty(), model.empty());
    ASSERT_EQ(cal->empty(), model.empty());
    ASSERT_EQ(dual->contains(cls), model.count(cls) != 0);
    ASSERT_EQ(tree->contains(cls), model.count(cls) != 0);
    ASSERT_EQ(cal->contains(cls), model.count(cls) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EligibleSetFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace hfsc
