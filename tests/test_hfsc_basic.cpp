// Basic behavioural tests for the H-FSC scheduler.
#include <gtest/gtest.h>

#include "core/hfsc.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

TEST(HfscBasic, EmptySchedulerReturnsNothing) {
  Hfsc sched(mbps(10));
  EXPECT_FALSE(sched.dequeue(0).has_value());
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.backlog_bytes(), 0u);
  EXPECT_EQ(sched.next_wakeup(0), kTimeInfinity);
}

TEST(HfscBasic, SingleClassFifoOrder) {
  Hfsc sched(mbps(10));
  const ClassId c = sched.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(10))));
  sched.enqueue(0, Packet{c, 100, 0, 0});
  sched.enqueue(0, Packet{c, 200, 0, 1});
  sched.enqueue(0, Packet{c, 300, 0, 2});
  EXPECT_EQ(sched.backlog_packets(), 3u);
  EXPECT_EQ(sched.backlog_bytes(), 600u);
  EXPECT_EQ(sched.dequeue(0)->seq, 0u);
  EXPECT_EQ(sched.dequeue(0)->seq, 1u);
  EXPECT_EQ(sched.dequeue(0)->seq, 2u);
  EXPECT_FALSE(sched.dequeue(0).has_value());
}

TEST(HfscBasic, TracksCriterionCounters) {
  Hfsc sched(mbps(10));
  const ClassId rt = sched.add_class(
      kRootClass,
      ClassConfig::both(ServiceCurve{mbps(10), msec(5), mbps(1)}));
  const ClassId ls = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(9))));
  sched.enqueue(0, Packet{rt, 1000, 0, 0});
  sched.enqueue(0, Packet{ls, 1000, 0, 1});
  // The concave class is immediately eligible with an early deadline; the
  // ls-only class can only go through link-sharing.
  auto p1 = sched.dequeue(0);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->cls, rt);
  EXPECT_EQ(sched.last_criterion(), Criterion::kRealTime);
  auto p2 = sched.dequeue(usec(100));
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->cls, ls);
  EXPECT_EQ(sched.last_criterion(), Criterion::kLinkShare);
  EXPECT_EQ(sched.rt_selections(), 1u);
  EXPECT_EQ(sched.ls_selections(), 1u);
}

TEST(HfscBasic, RtOnlyClassIsShapedAfterEarlyService) {
  // Eligibility of a convex class starts immediately (the eligible curve
  // is the m2-slope line through the activation point, Section V), but it
  // limits *future* real-time service to rate m2: once the class has been
  // served ahead of that line, the next packet must wait and the
  // scheduler goes non-work-conserving, reporting the wakeup time.
  Hfsc sched(mbps(10));
  const ServiceCurve convex{0, msec(10), mbps(1)};
  const ClassId c = sched.add_class(kRootClass,
                                    ClassConfig::real_time_only(convex));
  sched.enqueue(0, Packet{c, 1000, 0, 0});
  sched.enqueue(0, Packet{c, 1000, 0, 1});
  // First packet: eligible at activation (e = E^{-1}(0) = 0).
  auto p = sched.dequeue(0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(sched.last_criterion(), Criterion::kRealTime);
  // Second packet: c = 1000 bytes already served; the m2 = 1 Mb/s line
  // reaches 1000 bytes only at t = 8 ms, so nothing may be sent before.
  EXPECT_FALSE(sched.dequeue(usec(10)).has_value());
  EXPECT_EQ(sched.backlog_packets(), 1u);
  const TimeNs wake = sched.next_wakeup(usec(10));
  EXPECT_EQ(wake, msec(8));
  EXPECT_TRUE(sched.dequeue(wake).has_value());
}

TEST(HfscBasic, RtOnlyEligibleImmediatelyWithConcaveCurve) {
  Hfsc sched(mbps(10));
  const ClassId c = sched.add_class(
      kRootClass,
      ClassConfig::real_time_only(ServiceCurve{mbps(10), msec(5), mbps(1)}));
  sched.enqueue(msec(3), Packet{c, 500, msec(3), 0});
  EXPECT_TRUE(sched.dequeue(msec(3)).has_value());
}

TEST(HfscBasic, LeafIntrospection) {
  Hfsc sched(mbps(10));
  const ClassId org = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(10))));
  const ClassId leaf = sched.add_class(
      org, ClassConfig::both(ServiceCurve::linear(mbps(5))));
  EXPECT_EQ(sched.num_classes(), 3u);  // root + 2
  EXPECT_TRUE(sched.is_leaf(leaf));
  EXPECT_FALSE(sched.is_leaf(org));
  EXPECT_EQ(sched.parent_of(leaf), org);
  EXPECT_EQ(sched.parent_of(org), kRootClass);

  sched.enqueue(0, Packet{leaf, 1000, 0, 0});
  EXPECT_TRUE(sched.active(leaf));
  EXPECT_TRUE(sched.active(org));
  auto p = sched.dequeue(0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(sched.total_work(leaf), 1000u);
  EXPECT_EQ(sched.total_work(org), 1000u);
  EXPECT_EQ(sched.total_work(kRootClass), 1000u);
  EXPECT_FALSE(sched.active(leaf));
  EXPECT_FALSE(sched.active(org));
}

TEST(HfscBasic, WorkConservingWithLsCurves) {
  // As long as every leaf has an ls curve the scheduler never idles while
  // backlogged.
  Hfsc sched(mbps(8));
  const ClassId a = sched.add_class(
      kRootClass,
      ClassConfig::both(ServiceCurve{mbps(6), msec(10), mbps(2)}));
  const ClassId b = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(6))));
  Simulator sim(mbps(8), sched);
  sim.add<OnOffSource>(a, mbps(6), 900, msec(30), msec(30), 0, sec(2), 21);
  sim.add<GreedySource>(b, 1200, 4, 0, sec(2));
  sim.run(sec(2));
  EXPECT_GT(sim.link().busy_time(), sec(2) - msec(1));
}

TEST(HfscBasic, BothEligibleSetKindsDeliverSameTotals) {
  // The two Section-V data structures must produce equivalent schedules
  // (identical per-class byte totals on a deterministic workload).
  auto run = [](EligibleSetKind kind) {
    Hfsc sched(mbps(8), kind);
    const ClassId a = sched.add_class(
        kRootClass,
        ClassConfig::both(ServiceCurve{mbps(6), msec(5), mbps(2)}));
    const ClassId b = sched.add_class(
        kRootClass, ClassConfig::both(ServiceCurve{0, msec(20), mbps(6)}));
    Simulator sim(mbps(8), sched);
    sim.add<PoissonSource>(a, mbps(2), 700, 0, sec(2), 77);
    sim.add<GreedySource>(b, 1400, 4, 0, sec(2));
    sim.run(sec(2));
    return std::pair{sim.tracker().bytes(a), sim.tracker().bytes(b)};
  };
  const auto dual = run(EligibleSetKind::kDualHeap);
  const auto tree = run(EligibleSetKind::kAugTree);
  const auto cal = run(EligibleSetKind::kCalendar);
  EXPECT_EQ(dual, tree);
  EXPECT_EQ(dual, cal);
}

TEST(HfscBasic, DeepHierarchyDeliversAllTraffic) {
  Hfsc sched(mbps(10));
  ClassId parent = kRootClass;
  for (int depth = 0; depth < 6; ++depth) {
    parent = sched.add_class(
        parent, ClassConfig::link_share_only(ServiceCurve::linear(mbps(10))));
  }
  const ClassId leaf = sched.add_class(
      parent, ClassConfig::both(ServiceCurve::linear(mbps(10))));
  Simulator sim(mbps(10), sched);
  sim.add<CbrSource>(leaf, mbps(8), 1000, 0, sec(1));
  sim.run_all();
  EXPECT_EQ(sim.tracker().packets(leaf), 1000u);
  EXPECT_TRUE(sched.empty());
}

TEST(HfscBasic, ManySiblingsAllServed) {
  Hfsc sched(mbps(100));
  std::vector<ClassId> leaves;
  for (int i = 0; i < 50; ++i) {
    leaves.push_back(sched.add_class(
        kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(2)))));
  }
  Simulator sim(mbps(100), sched);
  for (ClassId c : leaves) sim.add<CbrSource>(c, mbps(1), 500, 0, sec(1));
  sim.run_all();
  for (ClassId c : leaves) {
    EXPECT_EQ(sim.tracker().packets(c), 250u) << "class " << c;
  }
}

}  // namespace
}  // namespace hfsc
