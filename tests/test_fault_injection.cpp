// Op-level fault-injection fuzzing for the hardened H-FSC scheduler
// (sim/fault_injector.hpp + core/auditor.hpp).
//
// Test 1 drives >= 100k mixed operations through a FaultInjector that
// perturbs the clock (permanent jumps + transient regressions), injects
// malformed packets and churns the class tree mid-backlog, with the
// runtime invariant auditor enabled throughout — and differentially
// checks aggregate throughput against a DRR oracle fed the same (clean)
// arrival stream.  Every injected fault is guaranteed-rejected by the
// hardened data path and every churned class is traffic-less, so after a
// full drain both work-conserving schedulers must have served exactly
// the accepted arrivals: equal packet and byte totals.
//
// Test 2 adds queue-limit pressure and deliberate deletion of backlogged
// leaves (class churn on classes that are actually carrying traffic) and
// checks exact packet conservation — in == out + queued + dropped — with
// the auditor green across every mutation.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/auditor.hpp"
#include "core/hfsc.hpp"
#include "sched/drr.hpp"
#include "sim/fault_injector.hpp"
#include "util/rng.hpp"

namespace hfsc {
namespace {

TEST(FaultInjection, HundredThousandOpsMatchDrrOracle) {
  const RateBps link = mbps(100);
  Hfsc sched(link);
  sched.enable_self_check(2048);

  // Two organizations, three leaves each; every leaf has a link-sharing
  // curve so the hierarchy is work-conserving like the DRR oracle.
  Drr oracle;
  std::vector<ClassId> leaves;       // H-FSC ids
  std::vector<ClassId> oracle_ids;   // DRR ids, same order
  ClassId churn_parent = kRootClass;
  for (int o = 0; o < 2; ++o) {
    const ClassId org = sched.add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(link / 2)));
    if (o == 0) churn_parent = org;
    for (int l = 0; l < 3; ++l) {
      const RateBps share = link / 6;
      const ClassConfig cfg =
          l % 2 == 0 ? ClassConfig::both(ServiceCurve::linear(share))
                     : ClassConfig::link_share_only(
                           ServiceCurve{share * 2, msec(2), share / 2});
      leaves.push_back(sched.add_class(org, cfg));
      oracle_ids.push_back(oracle.add_session(1500));
    }
  }

  FaultPlan plan;
  plan.p_clock_jump = 0.02;
  plan.p_clock_regress = 0.02;
  plan.p_bad_class = 0.01;
  plan.p_zero_len = 0.01;
  plan.p_oversized = 0.01;
  plan.p_class_churn = 0.02;  // ephemeral adds/deletes + leaf re-shaping
  plan.p_txn_commit = 0.01;   // transactional batches applied mid-backlog
  plan.p_txn_abort = 0.01;    // staged batches discarded mid-backlog
  plan.p_checkpoint = 0.001;  // checkpoint/restore round trip mid-backlog
  FaultInjector injector(sched, plan, /*seed=*/0xFA17);
  injector.enable_churn(sched, churn_parent, leaves);

  Rng rng(0xD1FF);
  TimeNs now = 0;
  std::uint64_t seq = 0;
  std::uint64_t in_pkts = 0, out_pkts = 0;
  Bytes in_bytes = 0, out_bytes_hfsc = 0, out_bytes_drr = 0;

  constexpr int kSteps = 110'000;  // >= 100k scheduler operations
  for (int step = 0; step < kSteps; ++step) {
    const int op = static_cast<int>(rng.uniform(0, 9));
    if (op <= 4) {  // enqueue the same packet to both schedulers
      const std::size_t i = rng.uniform(0, leaves.size() - 1);
      const Bytes len = 40 + rng.uniform(0, 1460);
      const std::size_t before = sched.backlog_packets();
      injector.enqueue(now, Packet{leaves[i], len, now, seq});
      // No queue limits in this test and injected packets are all
      // rejected, so exactly the real packet must have been admitted.
      ASSERT_EQ(sched.backlog_packets(), before + 1);
      oracle.enqueue(now, Packet{oracle_ids[i], len, now, seq});
      ++seq;
      ++in_pkts;
      in_bytes += len;
    } else if (op <= 8) {  // dequeue both
      const auto hp = injector.dequeue(now);
      const auto dp = oracle.dequeue(now);
      // Both are work-conserving with identical backlogs, so they must
      // agree on whether a packet is available.
      ASSERT_EQ(hp.has_value(), dp.has_value());
      if (hp) {
        out_bytes_hfsc += hp->len;
        out_bytes_drr += dp->len;
        ++out_pkts;
        now += tx_time(hp->len, link);
      }
    } else {  // idle gap
      now += usec(1) + rng.uniform(0, usec(100));
    }
    ASSERT_EQ(sched.backlog_packets(), oracle.backlog_packets());
    if (step % 8192 == 0) {
      const AuditReport report = audit(sched);
      ASSERT_TRUE(report.ok()) << report.to_string();
    }
  }

  // Drain both completely; every accepted byte must come back out.
  while (sched.backlog_packets() > 0) {
    const auto hp = injector.dequeue(now);
    const auto dp = oracle.dequeue(now);
    ASSERT_TRUE(hp.has_value());
    ASSERT_TRUE(dp.has_value());
    out_bytes_hfsc += hp->len;
    out_bytes_drr += dp->len;
    ++out_pkts;
    now += tx_time(hp->len, link);
  }
  EXPECT_EQ(oracle.backlog_packets(), 0u);
  EXPECT_EQ(out_pkts, in_pkts);
  EXPECT_EQ(out_bytes_hfsc, in_bytes);
  EXPECT_EQ(out_bytes_drr, in_bytes);

  const AuditReport final_report = audit(sched);
  EXPECT_TRUE(final_report.ok()) << final_report.to_string();
  EXPECT_GT(sched.self_checks_run(), 0u);

  // The run must actually have exercised every fault category.
  const FaultCounts& fc = injector.counts();
  EXPECT_GT(fc.clock_jumps, 0u);
  EXPECT_GT(fc.clock_regressions, 0u);
  EXPECT_GT(fc.bad_class_packets, 0u);
  EXPECT_GT(fc.zero_len_packets, 0u);
  EXPECT_GT(fc.oversized_packets, 0u);
  EXPECT_GT(fc.classes_added, 0u);
  EXPECT_GT(fc.classes_changed, 0u);
  EXPECT_GT(fc.classes_deleted, 0u);
  EXPECT_GT(fc.txn_commits, 0u);
  EXPECT_GT(fc.txn_aborts, 0u);
  EXPECT_GT(fc.checkpoint_roundtrips, 0u);
  EXPECT_EQ(fc.checkpoint_mismatches, 0u)
      << "a restored checkpoint diverged from the original's state digest";

  // ... and the hardened data path must have absorbed all of it.
  const DataPathCounters& dc = sched.data_path_counters();
  EXPECT_EQ(dc.rejected_packets(),
            fc.bad_class_packets + fc.zero_len_packets + fc.oversized_packets);
  EXPECT_GT(dc.clock_regressions, 0u);
}

TEST(FaultInjection, QueueLimitPressureAndBackloggedDeletesConserve) {
  const RateBps link = mbps(50);
  Hfsc sched(link);
  sched.enable_self_check(1024);

  // org1 holds stable leaves the injector may re-shape and limit-flap;
  // org2 holds victim leaves the test deletes while they are backlogged.
  const ClassId org1 = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(link / 2)));
  const ClassId org2 = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(link / 2)));
  std::vector<ClassId> stable;
  for (int l = 0; l < 3; ++l) {
    stable.push_back(sched.add_class(
        org1, ClassConfig::both(ServiceCurve::linear(link / 8))));
  }
  std::vector<ClassId> victims;
  auto add_victim = [&] {
    victims.push_back(sched.add_class(
        org2, ClassConfig::both(ServiceCurve{link / 4, msec(1), link / 16})));
  };
  for (int l = 0; l < 3; ++l) add_victim();

  FaultPlan plan;
  plan.p_clock_jump = 0.01;
  plan.p_clock_regress = 0.01;
  plan.p_bad_class = 0.01;
  plan.p_zero_len = 0.01;
  plan.p_oversized = 0.01;
  plan.p_queue_limit = 0.05;  // pressure: stable leaves flap 0..16 slots
  plan.p_class_churn = 0.02;
  FaultInjector injector(sched, plan, /*seed=*/0xBEEF);
  injector.enable_churn(sched, org1, stable);

  Rng rng(0xCAFE);
  TimeNs now = 0;
  std::uint64_t seq = 0;
  std::uint64_t in_pkts = 0, out_pkts = 0;
  std::uint64_t taildrops = 0;   // rejected at the door by a queue limit
  std::uint64_t del_drops = 0;   // admitted, then dropped by delete_class
  std::map<ClassId, std::uint64_t> queued;

  auto model_backlog = [&] {
    std::uint64_t sum = 0;
    for (const auto& [cls, n] : queued) sum += n;
    return sum;
  };

  constexpr int kSteps = 50'000;
  for (int step = 0; step < kSteps; ++step) {
    const int op = static_cast<int>(rng.uniform(0, 9));
    if (op <= 3) {  // enqueue to a random live leaf
      std::vector<ClassId>& pool = (rng.chance(0.5) || victims.empty())
                                       ? stable
                                       : victims;
      const ClassId cls = pool[rng.uniform(0, pool.size() - 1)];
      const Bytes len = 40 + rng.uniform(0, 1460);
      const std::size_t before = sched.backlog_packets();
      injector.enqueue(now, Packet{cls, len, now, seq++});
      // Injected packets never enter the queues, so the backlog delta
      // tells exactly whether the real packet was admitted or tail-
      // dropped by a queue limit.
      if (sched.backlog_packets() == before + 1) {
        ++in_pkts;
        ++queued[cls];
      } else {
        ASSERT_EQ(sched.backlog_packets(), before);
        ++taildrops;
      }
    } else if (op <= 6) {  // dequeue
      const auto p = injector.dequeue(now);
      if (p) {
        ASSERT_GT(queued[p->cls], 0u) << "served an empty leaf";
        --queued[p->cls];
        ++out_pkts;
        now += tx_time(p->len, link);
      }
    } else if (op == 7) {  // delete a victim leaf mid-backlog
      if (!victims.empty()) {
        const std::size_t i = rng.uniform(0, victims.size() - 1);
        const ClassId victim = victims[i];
        const std::size_t before = sched.backlog_packets();
        sched.delete_class(victim);
        ASSERT_EQ(before - sched.backlog_packets(), queued[victim]);
        del_drops += queued[victim];
        queued.erase(victim);
        victims.erase(victims.begin() + static_cast<long>(i));
        const AuditReport report = audit(sched);
        ASSERT_TRUE(report.ok()) << report.to_string();
      }
      if (victims.size() < 4 && rng.chance(0.8)) add_victim();
    } else {  // idle gap
      now += usec(1) + rng.uniform(0, usec(50));
    }
    ASSERT_EQ(sched.backlog_packets(), model_backlog());
    // Conservation: every admitted packet is out, queued, or delete-dropped.
    ASSERT_EQ(in_pkts, out_pkts + model_backlog() + del_drops);
    if (step % 4096 == 0) {
      const AuditReport report = audit(sched);
      ASSERT_TRUE(report.ok()) << report.to_string();
    }
  }

  while (sched.backlog_packets() > 0) {
    const auto p = injector.dequeue(now);
    ASSERT_TRUE(p.has_value());
    --queued[p->cls];
    ++out_pkts;
    now += tx_time(p->len, link);
  }
  EXPECT_EQ(in_pkts, out_pkts + del_drops);
  EXPECT_GT(taildrops, 0u);  // queue-limit pressure actually bit
  EXPECT_GT(del_drops, 0u);  // deletes actually hit backlogged victims

  const AuditReport final_report = audit(sched);
  EXPECT_TRUE(final_report.ok()) << final_report.to_string();
  EXPECT_GT(sched.self_checks_run(), 0u);
  EXPECT_GT(injector.counts().queue_limit_changes, 0u);
}

}  // namespace
}  // namespace hfsc
