// Differential fuzz across the three EligibleSet implementations.
//
// The eligible-set ablation (bench/bench_throughput.cpp) only measures a
// like-for-like comparison if all three kinds are observably identical:
// same winner from min_deadline_eligible() — *including* exact deadline
// ties, which must break toward the smallest ClassId — and the same
// next_eligible_time() under the shared contract (0 once eligible, min
// pending e otherwise, kTimeInfinity when empty).
//
// Unlike tests/test_eligible_set.cpp's equivalence fuzz (which only
// compares the winning deadline *value*), this one drives identical
// update/erase/query sequences through all three kinds and asserts the
// returned ClassId matches exactly.  Deadlines are quantized to a coarse
// grid so exact ties happen constantly rather than almost never.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "core/eligible_set.hpp"
#include "util/rng.hpp"

namespace hfsc {
namespace {

class EligibleAblationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EligibleAblationFuzz, AllKindsReturnIdenticalClassIds) {
  Rng rng(GetParam());
  auto dual = make_eligible_set(EligibleSetKind::kDualHeap);
  auto tree = make_eligible_set(EligibleSetKind::kAugTree);
  auto cal = make_eligible_set(EligibleSetKind::kCalendar);
  struct Req {
    TimeNs e, d;
  };
  std::map<ClassId, Req> model;
  TimeNs now = 0;

  for (int step = 0; step < 6000; ++step) {
    const ClassId cls = static_cast<ClassId>(rng.uniform(1, 24));
    switch (rng.uniform(0, 2)) {
      case 0: {
        // Coarse grids force frequent exact collisions in both e and d.
        const TimeNs e =
            sat_sub(now + msec(rng.uniform(0, 12)), msec(4));
        const TimeNs d = e + msec(rng.uniform(1, 6));
        dual->update(cls, e, d, now);
        tree->update(cls, e, d, now);
        cal->update(cls, e, d, now);
        model[cls] = {e, d};
        break;
      }
      case 1:
        dual->erase(cls);
        tree->erase(cls);
        cal->erase(cls);
        model.erase(cls);
        break;
      case 2: {
        now += msec(rng.uniform(0, 3));
        // Reference winner: smallest deadline among eligible requests,
        // ties by smallest ClassId (std::map iterates ids ascending, so
        // strict < keeps the first — smallest — id of a tie group).
        std::optional<ClassId> want;
        for (const auto& [id, r] : model) {
          if (r.e <= now && (!want || r.d < model[*want].d)) want = id;
        }
        const auto got_dual = dual->min_deadline_eligible(now);
        const auto got_tree = tree->min_deadline_eligible(now);
        const auto got_cal = cal->min_deadline_eligible(now);
        ASSERT_EQ(got_dual, want) << "dual_heap diverges at step " << step;
        ASSERT_EQ(got_tree, want) << "aug_tree diverges at step " << step;
        ASSERT_EQ(got_cal, want) << "calendar diverges at step " << step;

        // Wakeup-hint contract, cross-checked against the model.
        TimeNs want_next = kTimeInfinity;
        for (const auto& [id, r] : model) {
          want_next = std::min(want_next, r.e <= now ? TimeNs{0} : r.e);
        }
        ASSERT_EQ(dual->next_eligible_time(), want_next) << "step " << step;
        ASSERT_EQ(tree->next_eligible_time(), want_next) << "step " << step;
        ASSERT_EQ(cal->next_eligible_time(), want_next) << "step " << step;
        break;
      }
    }
    ASSERT_EQ(dual->contains(cls), model.count(cls) != 0);
    ASSERT_EQ(tree->contains(cls), model.count(cls) != 0);
    ASSERT_EQ(cal->contains(cls), model.count(cls) != 0);
    ASSERT_EQ(dual->empty(), model.empty());
    ASSERT_EQ(tree->empty(), model.empty());
    ASSERT_EQ(cal->empty(), model.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EligibleAblationFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace hfsc
