// Differential fuzz: Hfsc::dequeue_batch(k) vs k single dequeue() calls.
//
// The batched hot path only earns its keep if it is *observably free*:
// the contract (core/hfsc.hpp) promises bit-identity with the single-
// dequeue loop — same packets in the same order, same state_digest, same
// counters — so callers can mix APIs freely and every existing proof
// about dequeue() transfers to the batch.  This fuzzer drives two
// schedulers built identically through the same random tape; at every
// service point one side serves k packets with single calls and the
// other with one dequeue_batch(now, k), and the digests must agree
// exactly.  The tape interleaves the hard cases:
//
//   * enqueues (including queue-limit drop-tail pressure),
//   * clock jumps (idle gaps, watchdog cadence),
//   * Txn churn — committed batches and failing batches that must
//     roll back on both sides identically,
//   * checkpoint/restore of the batch-side scheduler mid-run (the
//     restored instance must keep matching the never-restored one),
//
// across all three eligible-set kinds and k in {1, 2, 7, 32}.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/hfsc.hpp"
#include "util/rng.hpp"

namespace hfsc {
namespace {

struct BatchFuzzCase {
  std::uint64_t seed;
  EligibleSetKind kind;
};

void PrintTo(const BatchFuzzCase& c, std::ostream* os) {
  *os << "seed" << c.seed << "_kind" << static_cast<int>(c.kind);
}

class BatchAblationFuzz : public ::testing::TestWithParam<BatchFuzzCase> {};

// Builds one of a few random leaf configs under a 100 Mb/s link.
ClassConfig random_leaf_cfg(Rng& rng) {
  const RateBps share = mbps(static_cast<RateBps>(rng.uniform(1, 8)));
  switch (rng.uniform(0, 3)) {
    case 0:
      return ClassConfig::link_share_only(ServiceCurve::linear(share));
    case 1:
      return ClassConfig::both(
          ServiceCurve{share * 2, msec(rng.uniform(1, 4)), share});
    case 2:
      return ClassConfig::both(ServiceCurve{0, msec(rng.uniform(0, 3)),
                                            share});
    default: {
      ClassConfig cfg = ClassConfig::both(ServiceCurve::linear(share));
      cfg.ul = ServiceCurve::linear(share * 2);  // exercise upper limits
      return cfg;
    }
  }
}

TEST_P(BatchAblationFuzz, BatchIsBitIdenticalToSingles) {
  const auto [seed, kind] = GetParam();
  Rng rng(seed);
  const RateBps link = mbps(100);
  Hfsc single(link, kind);
  Hfsc batch(link, kind);

  // Identical random hierarchy on both sides.
  std::vector<ClassId> leaves;
  const int num_orgs = rng.uniform(1, 3);
  for (int o = 0; o < num_orgs; ++o) {
    const ClassConfig org_cfg = ClassConfig::link_share_only(
        ServiceCurve::linear(link / static_cast<RateBps>(num_orgs)));
    const ClassId org_s = single.add_class(kRootClass, org_cfg);
    const ClassId org_b = batch.add_class(kRootClass, org_cfg);
    ASSERT_EQ(org_s, org_b);
    const int n_leaves = rng.uniform(2, 5);
    for (int l = 0; l < n_leaves; ++l) {
      const ClassConfig cfg = random_leaf_cfg(rng);
      const ClassId leaf = single.add_class(org_s, cfg);
      ASSERT_EQ(leaf, batch.add_class(org_b, cfg));
      if (rng.chance(0.3)) {
        single.set_queue_limit(leaf, 6);
        batch.set_queue_limit(leaf, 6);
      }
      leaves.push_back(leaf);
    }
  }

  constexpr std::size_t kBatchSizes[] = {1, 2, 7, 32};
  TimeNs now = 0;
  std::uint64_t seq = 0;
  std::vector<Packet> out;

  for (int step = 0; step < 1200; ++step) {
    switch (rng.uniform(0, 9)) {
      case 0:
      case 1:
      case 2: {  // enqueue a small burst into both
        const int n = rng.uniform(1, 6);
        for (int i = 0; i < n; ++i) {
          const ClassId cls =
              leaves[static_cast<std::size_t>(rng.uniform(
                  0, static_cast<int>(leaves.size()) - 1))];
          const Bytes len = static_cast<Bytes>(rng.uniform(64, 1500));
          const Packet pkt{cls, len, now, seq++};
          single.enqueue(now, pkt);
          batch.enqueue(now, pkt);
        }
        break;
      }
      case 3: {  // idle gap (watchdog / eligibility flips)
        now += static_cast<TimeNs>(rng.uniform(0, static_cast<int>(msec(2))));
        break;
      }
      case 4: {  // Txn churn, identical on both sides
        const bool fail = rng.chance(0.3);
        const ClassId victim =
            leaves[static_cast<std::size_t>(rng.uniform(
                0, static_cast<int>(leaves.size()) - 1))];
        auto run_txn = [&](Hfsc& s) -> bool {
          Hfsc::Txn txn = s.begin();
          txn.set_queue_limit(victim, static_cast<std::size_t>(
                                          rng.uniform(4, 12)));
          if (fail) txn.delete_class(kRootClass);  // always rejected
          try {
            txn.commit();
            return true;
          } catch (const Error&) {
            return false;
          }
        };
        // One rng tape: draw the limit once, replay on both.
        Rng fork = rng;
        const bool ok_s = run_txn(single);
        rng = fork;
        const bool ok_b = run_txn(batch);
        ASSERT_EQ(ok_s, ok_b) << "txn outcome diverged at step " << step;
        break;
      }
      case 5: {  // checkpoint/restore the batch side mid-run
        std::ostringstream img;
        checkpoint(batch, img);
        std::istringstream in(img.str());
        batch = restore_checkpoint(in);
        ASSERT_EQ(state_digest(single), state_digest(batch))
            << "restore broke digest parity at step " << step;
        break;
      }
      default: {  // the differential service point
        const std::size_t k =
            kBatchSizes[static_cast<std::size_t>(rng.uniform(0, 3))];
        out.clear();
        const std::size_t got = batch.dequeue_batch(now, k, out);
        ASSERT_EQ(got, out.size());
        std::size_t served = 0;
        for (; served < k; ++served) {
          std::optional<Packet> p = single.dequeue(now);
          if (!p) break;
          ASSERT_LT(served, got)
              << "singles served more than the batch at step " << step;
          EXPECT_EQ(p->cls, out[served].cls) << "order diverged, step " << step;
          EXPECT_EQ(p->seq, out[served].seq) << "order diverged, step " << step;
          EXPECT_EQ(p->len, out[served].len) << "order diverged, step " << step;
        }
        ASSERT_EQ(served, got) << "served-count diverged at step " << step;
        ASSERT_EQ(state_digest(single), state_digest(batch))
            << "state digest diverged after k=" << k << " at step " << step;
        break;
      }
    }
  }

  // Drain both completely through opposite APIs and compare the full
  // remaining order plus final counters.
  for (;;) {
    now += usec(200);
    out.clear();
    const std::size_t got = batch.dequeue_batch(now, 32, out);
    for (std::size_t i = 0; i < got; ++i) {
      std::optional<Packet> p = single.dequeue(now);
      ASSERT_TRUE(p.has_value());
      EXPECT_EQ(p->seq, out[i].seq);
    }
    if (got == 0) {
      ASSERT_FALSE(single.dequeue(now).has_value());
      if (batch.backlog_packets() == 0) break;
    }
  }
  ASSERT_EQ(state_digest(single), state_digest(batch));
  for (const ClassId leaf : leaves) {
    EXPECT_EQ(single.packets_sent(leaf), batch.packets_sent(leaf));
    EXPECT_EQ(single.class_drops(leaf), batch.class_drops(leaf));
  }
}

std::vector<BatchFuzzCase> make_cases() {
  std::vector<BatchFuzzCase> cases;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (EligibleSetKind kind :
         {EligibleSetKind::kDualHeap, EligibleSetKind::kAugTree,
          EligibleSetKind::kCalendar}) {
      cases.push_back({seed * 0x9E37u, kind});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchAblationFuzz,
                         ::testing::ValuesIn(make_cases()));

}  // namespace
}  // namespace hfsc
