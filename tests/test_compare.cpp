// Tests for the scheduler-generic scenario engine: the `scheduler`
// directive, run_scenario under non-H-FSC families, and run_compare
// (the engine behind `hfsc_sim --compare`).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/scenario.hpp"

namespace hfsc {
namespace {

constexpr const char* kSmallScenario = R"(
link 10Mbps
duration 1s
class org   root ls linear 10Mbps
class voice org  rt udr 160 5ms 64kbps  ls udr 160 5ms 64kbps
class data  org  ls linear 9Mbps
source cbr    voice 64kbps 160 0s 1s
source greedy data  1000 8 0s 1s
)";

Scenario small_scenario(const std::string& extra = "") {
  std::istringstream in(std::string(kSmallScenario) + extra);
  return Scenario::parse(in);
}

const ScenarioResult::PerClass& row(const ScenarioResult& r,
                                    const std::string& name) {
  for (const auto& pc : r.per_class) {
    if (pc.name == name) return pc;
  }
  throw std::runtime_error("no row for class " + name);
}

TEST(ScenarioScheduler, DirectiveSelectsTheFamily) {
  const Scenario sc = small_scenario("scheduler hpfq\n");
  EXPECT_EQ(sc.scheduler, SchedulerKind::kHpfq);
  const ScenarioResult r = run_scenario(sc);
  EXPECT_EQ(r.scheduler, "H-PFQ");
  EXPECT_GT(row(r, "voice").packets, 0u);
  // The concave voice curve cannot survive the rate-only mapping: the
  // loss is on the record.
  EXPECT_FALSE(r.notes.empty());
}

TEST(ScenarioScheduler, DefaultIsHfscWithNoNotes) {
  const Scenario sc = small_scenario();
  EXPECT_EQ(sc.scheduler, SchedulerKind::kHfsc);
  const ScenarioResult r = run_scenario(sc);
  EXPECT_EQ(r.scheduler, "H-FSC");
  EXPECT_TRUE(r.notes.empty());
}

TEST(ScenarioScheduler, RunOptionOverridesTheDirective) {
  const Scenario sc = small_scenario("scheduler hpfq\n");
  ScenarioRunOptions opts;
  opts.scheduler = SchedulerKind::kCbq;
  const ScenarioResult r = run_scenario(sc, opts);
  EXPECT_EQ(r.scheduler, "CBQ");
}

// The same file must run unmodified through every family the spec
// compiles for, and deliver the CBR class's traffic in full measure
// under every work-conserving discipline.
TEST(ScenarioScheduler, OneFileRunsThroughEveryFamily) {
  const Scenario sc = small_scenario();
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    ScenarioRunOptions opts;
    opts.scheduler = kind;
    const ScenarioResult r = run_scenario(sc, opts);
    // 64 kb/s of 160 B packets for 1 s = 50 packets; the last arrival
    // may still sit in a round-robin queue when the horizon cuts off.
    EXPECT_GE(row(r, "voice").packets, 49u) << to_string(kind);
    EXPECT_LE(row(r, "voice").packets, 50u) << to_string(kind);
    EXPECT_GT(row(r, "data").packets, 0u) << to_string(kind);
    EXPECT_GT(r.link_utilization, 0.5) << to_string(kind);
  }
}

TEST(ScenarioScheduler, CheckpointWithNonHfscFamilyThrows) {
  const Scenario sc = small_scenario("scheduler cbq\n");
  ScenarioRunOptions opts;
  opts.checkpoint_path = "/tmp/should_never_be_written.ckpt";
  try {
    run_scenario(sc, opts);
    FAIL() << "checkpointing a CBQ run was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checkpointing requires"),
              std::string::npos);
  }
}

TEST(RunCompare, RunsEveryRequestedFamilyInOrder) {
  const Scenario sc = small_scenario();
  const CompareResult cmp = run_compare(
      sc, {SchedulerKind::kHfsc, SchedulerKind::kHpfq, SchedulerKind::kCbq});
  ASSERT_EQ(cmp.runs.size(), 3u);
  EXPECT_EQ(cmp.runs[0].scheduler, "H-FSC");
  EXPECT_EQ(cmp.runs[1].scheduler, "H-PFQ");
  EXPECT_EQ(cmp.runs[2].scheduler, "CBQ");
  for (const ScenarioResult& r : cmp.runs) {
    EXPECT_GT(row(r, "voice").packets, 0u) << r.scheduler;
  }
}

// A compare run must not disturb the primary family's results: the
// H-FSC column of run_compare is the plain run_scenario outcome.
TEST(RunCompare, HfscColumnMatchesPlainRun) {
  const Scenario sc = small_scenario();
  const ScenarioResult plain = run_scenario(sc);
  const CompareResult cmp =
      run_compare(sc, {SchedulerKind::kHpfq, SchedulerKind::kHfsc});
  const ScenarioResult& in_compare = cmp.runs[1];
  ASSERT_EQ(plain.per_class.size(), in_compare.per_class.size());
  for (std::size_t i = 0; i < plain.per_class.size(); ++i) {
    const auto& a = plain.per_class[i];
    const auto& b = in_compare.per_class[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_DOUBLE_EQ(a.mean_delay_ms, b.mean_delay_ms);
    EXPECT_DOUBLE_EQ(a.max_delay_ms, b.max_delay_ms);
  }
  EXPECT_DOUBLE_EQ(plain.link_utilization, in_compare.link_utilization);
}

TEST(RunCompare, TableHasOneColumnGroupPerScheduler) {
  const Scenario sc = small_scenario();
  const CompareResult cmp =
      run_compare(sc, {SchedulerKind::kHfsc, SchedulerKind::kFifo});
  const std::string table = cmp.to_table();
  EXPECT_NE(table.find("H-FSC mean_ms"), std::string::npos);
  EXPECT_NE(table.find("FIFO mean_ms"), std::string::npos);
  EXPECT_NE(table.find("voice"), std::string::npos);
  EXPECT_NE(table.find("link utilization"), std::string::npos);
}

// Flat families drop the interior `org` class; its row disappears from
// the result instead of reporting zeros.
TEST(RunCompare, DroppedInteriorClassesLeaveNoRow) {
  const Scenario sc = small_scenario();
  ScenarioRunOptions opts;
  opts.scheduler = SchedulerKind::kDrr;
  const ScenarioResult r = run_scenario(sc, opts);
  for (const auto& pc : r.per_class) {
    EXPECT_NE(pc.name, "org");
  }
  EXPECT_EQ(r.per_class.size(), 2u);
}

}  // namespace
}  // namespace hfsc
