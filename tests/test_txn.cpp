// Unit tests for Hfsc::Txn — transactional live reconfiguration
// (src/core/txn.cpp): staging, predicted ids, atomic commit, rollback,
// and the equivalence between a committed batch and the same mutations
// applied directly.
#include <gtest/gtest.h>

#include <sstream>

#include "core/auditor.hpp"
#include "core/checkpoint.hpp"
#include "core/hfsc.hpp"

namespace hfsc {
namespace {

ClassConfig ls_only(RateBps r) {
  return ClassConfig::link_share_only(ServiceCurve::linear(r));
}

TEST(Txn, CommitAppliesAllStagedOps) {
  Hfsc s(mbps(10));
  const ClassId org = s.add_class(kRootClass, ls_only(mbps(10)));

  Hfsc::Txn txn = s.begin();
  const ClassId a = txn.add_class(org, ls_only(mbps(4)));
  const ClassId b = txn.add_class(org, ClassConfig::both(
                                           ServiceCurve::linear(mbps(2))));
  txn.set_queue_limit(a, 7);
  EXPECT_TRUE(txn.open());
  EXPECT_EQ(txn.num_ops(), 3u);
  // Nothing is applied while staging.
  EXPECT_EQ(s.num_classes(), 2u);

  txn.commit();
  EXPECT_FALSE(txn.open());
  EXPECT_EQ(s.num_classes(), 4u);
  EXPECT_TRUE(s.is_leaf(a));
  EXPECT_TRUE(s.is_leaf(b));
  EXPECT_EQ(s.parent_of(a), org);
  EXPECT_EQ(s.parent_of(b), org);
  EXPECT_EQ(s.config_of(b).rt, ServiceCurve::linear(mbps(2)));

  // The staged queue limit is live: the 8th packet tail-drops.
  for (int i = 0; i < 10; ++i) s.enqueue(0, Packet{a, 100, 0, 0});
  EXPECT_EQ(s.backlog_packets(), 7u);

  const AuditReport report = audit(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Txn, StagedIdsAreUsableWithinTheBatch) {
  Hfsc s(mbps(10));
  Hfsc::Txn txn = s.begin();
  // Build a two-level subtree entirely inside the batch, then mutate and
  // partially tear it down — all against predicted ids.
  const ClassId org = txn.add_class(kRootClass, ls_only(mbps(8)));
  const ClassId kid1 = txn.add_class(org, ls_only(mbps(4)));
  const ClassId kid2 = txn.add_class(org, ls_only(mbps(4)));
  txn.change_class(0, kid1, ClassConfig::both(ServiceCurve::linear(mbps(3))));
  txn.delete_class(kid2);
  txn.commit();

  EXPECT_EQ(s.num_classes(), 4u);  // root + org + kid1 + tombstoned kid2
  EXPECT_FALSE(s.is_deleted(org));
  EXPECT_FALSE(s.is_deleted(kid1));
  EXPECT_TRUE(s.is_deleted(kid2));
  EXPECT_EQ(s.config_of(kid1).rt, ServiceCurve::linear(mbps(3)));
  const AuditReport report = audit(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Txn, RollbackAndDestructorLeaveNoTrace) {
  Hfsc s(mbps(10));
  const ClassId org = s.add_class(kRootClass, ls_only(mbps(10)));
  const std::uint64_t before = state_digest(s);

  Hfsc::Txn txn = s.begin();
  txn.add_class(org, ls_only(mbps(1)));
  txn.delete_class(org);
  txn.rollback();
  EXPECT_FALSE(txn.open());
  EXPECT_EQ(state_digest(s), before);

  {
    Hfsc::Txn dropped = s.begin();
    dropped.add_class(org, ls_only(mbps(1)));
    // Destroyed while open: the destructor rolls back.
  }
  EXPECT_EQ(state_digest(s), before);
}

TEST(Txn, FailedCommitIsAtomicAndLeavesTheTxnOpen) {
  Hfsc s(mbps(10));
  const ClassId org = s.add_class(kRootClass, ls_only(mbps(10)));
  const ClassId leaf = s.add_class(org, ls_only(mbps(5)));
  const std::uint64_t before = state_digest(s);

  Hfsc::Txn txn = s.begin();
  txn.add_class(org, ls_only(mbps(1)));     // valid
  txn.delete_class(org);                    // invalid: org still has `leaf`
  try {
    txn.commit();
    FAIL() << "commit of an invalid batch must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kHasChildren);
  }
  EXPECT_TRUE(txn.open());  // fixable: drop the bad op by re-staging
  EXPECT_EQ(state_digest(s), before);
  EXPECT_EQ(s.num_classes(), 3u);

  // The same handle can be rolled back and a fresh batch committed.
  txn.rollback();
  Hfsc::Txn retry = s.begin();
  retry.delete_class(leaf);
  retry.delete_class(org);  // valid now: its only child dies first
  retry.commit();
  EXPECT_TRUE(s.is_deleted(org));
  EXPECT_TRUE(s.is_deleted(leaf));
}

TEST(Txn, OpsOnClosedTxnThrow) {
  Hfsc s(mbps(10));
  Hfsc::Txn txn = s.begin();
  txn.add_class(kRootClass, ls_only(mbps(1)));
  txn.commit();
  EXPECT_THROW(txn.add_class(kRootClass, ls_only(mbps(1))), Error);
  EXPECT_THROW(txn.commit(), Error);
  try {
    txn.delete_class(1);
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kTxnInvalid);
  }
}

TEST(Txn, DirectAddsWhileOpenInvalidateStagedIds) {
  Hfsc s(mbps(10));
  Hfsc::Txn txn = s.begin();
  txn.add_class(kRootClass, ls_only(mbps(1)));
  // A direct (non-transactional) add shifts the id the staged add would
  // get, so the commit must refuse rather than attach ops to the wrong
  // class.
  s.add_class(kRootClass, ls_only(mbps(2)));
  try {
    txn.commit();
    FAIL() << "stale staged ids must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kTxnInvalid);
  }

  // Batches without adds are immune to id shift and still commit.
  const ClassId direct = 1;
  Hfsc::Txn txn2 = s.begin();
  txn2.set_queue_limit(direct, 3);
  s.add_class(kRootClass, ls_only(mbps(3)));
  txn2.commit();
}

TEST(Txn, CommittedBatchMatchesDirectMutationsBitForBit) {
  const auto build = [](Hfsc& s, bool transactional) {
    const ClassId org = s.add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(8))));
    if (transactional) {
      Hfsc::Txn txn = s.begin();
      const ClassId a = txn.add_class(org, ClassConfig::both(
                                               ServiceCurve::linear(mbps(2))));
      const ClassId b = txn.add_class(
          org, ClassConfig::both(ServiceCurve{mbps(4), msec(2), mbps(1)}));
      txn.set_queue_limit(a, 64);
      txn.change_class(0, b,
                       ClassConfig::both(ServiceCurve::linear(mbps(3))));
      txn.commit();
    } else {
      const ClassId a = s.add_class(org, ClassConfig::both(
                                             ServiceCurve::linear(mbps(2))));
      const ClassId b = s.add_class(
          org, ClassConfig::both(ServiceCurve{mbps(4), msec(2), mbps(1)}));
      s.set_queue_limit(a, 64);
      s.change_class(0, b, ClassConfig::both(ServiceCurve::linear(mbps(3))));
    }
  };
  Hfsc via_txn(mbps(10));
  Hfsc direct(mbps(10));
  build(via_txn, true);
  build(direct, false);
  EXPECT_EQ(state_digest(via_txn), state_digest(direct));
}

TEST(Txn, CommitValidatesAgainstBacklogAtCommitTime) {
  Hfsc s(mbps(10));
  const ClassId org = s.add_class(kRootClass, ls_only(mbps(10)));
  const ClassId leaf = s.add_class(org, ls_only(mbps(5)));

  Hfsc::Txn txn = s.begin();
  txn.add_class(leaf, ls_only(mbps(1)));  // leaf is quiet right now...
  s.enqueue(0, Packet{leaf, 100, 0, 0});  // ...but gains backlog pre-commit
  try {
    txn.commit();
    FAIL() << "adding under a backlogged class must fail at commit";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kHasBacklog);
  }
  EXPECT_EQ(s.backlog_packets(), 1u);
  const AuditReport report = audit(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

}  // namespace
}  // namespace hfsc
