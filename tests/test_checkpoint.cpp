// Checkpoint/restore tests (core/checkpoint.{hpp,cpp}): a mid-backlog
// round trip must audit clean, match the original's state digest, and
// dequeue packet-for-packet identically until drain; malformed streams
// must throw Error{kBadCheckpoint}.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/auditor.hpp"
#include "core/checkpoint.hpp"
#include "core/hfsc.hpp"
#include "util/rng.hpp"

namespace hfsc {
namespace {

// A busy two-org hierarchy with rt/ls/ul curves, deletions (tombstones),
// queue limits, dropped packets and a partially drained backlog — the
// checkpoint must capture all of it.
struct Busy {
  Hfsc sched;
  std::vector<ClassId> leaves;
  TimeNs now = 0;
  std::uint64_t seq = 0;

  explicit Busy(EligibleSetKind kind)
      : sched(mbps(20), kind) {
    const RateBps link = mbps(20);
    const ClassId org1 = sched.add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(link / 2)));
    const ClassId org2 = sched.add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(link / 2)));
    leaves.push_back(sched.add_class(
        org1, ClassConfig::both(ServiceCurve{link / 4, msec(2), link / 8})));
    leaves.push_back(sched.add_class(
        org1, ClassConfig::link_share_only(ServiceCurve::linear(link / 8))));
    leaves.push_back(sched.add_class(
        org2, ClassConfig{ServiceCurve::linear(link / 8),
                          ServiceCurve::linear(link / 8),
                          ServiceCurve::linear(link / 4)}));
    sched.set_queue_limit(leaves[1], 16);
    sched.enable_admission_control();
    sched.enable_starvation_watchdog(sec(1));
    // A tombstone: restore must keep dense ids across it.
    const ClassId doomed = sched.add_class(
        org2, ClassConfig::link_share_only(ServiceCurve::linear(kbps(100))));
    sched.delete_class(doomed);

    Rng rng(0xC0FFEE);
    for (int i = 0; i < 400; ++i) {
      const std::size_t l = rng.uniform(0, leaves.size() - 1);
      sched.enqueue(now, Packet{leaves[l], 40 + rng.uniform(0, 1460),
                                now, seq++});
      if (rng.chance(0.4)) {
        const auto p = sched.dequeue(now);
        if (p) now += tx_time(p->len, mbps(20));
      }
      now += rng.uniform(0, usec(200));
    }
    // An anomaly for the data-path counters.
    sched.enqueue(now, Packet{9999, 100, now, seq++});
  }
};

class CheckpointRoundTrip
    : public ::testing::TestWithParam<EligibleSetKind> {};

TEST_P(CheckpointRoundTrip, MidBacklogRestoreIsExact) {
  Busy b(GetParam());
  ASSERT_GT(b.sched.backlog_packets(), 0u);

  std::stringstream buf;
  checkpoint(b.sched, buf);
  Hfsc restored = restore_checkpoint(buf);

  const AuditReport report = audit(restored);
  ASSERT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(state_digest(restored), state_digest(b.sched));

  // Statistics and configuration survive.
  EXPECT_EQ(restored.num_classes(), b.sched.num_classes());
  EXPECT_EQ(restored.backlog_packets(), b.sched.backlog_packets());
  EXPECT_EQ(restored.backlog_bytes(), b.sched.backlog_bytes());
  EXPECT_TRUE(restored.admission_enabled());
  EXPECT_DOUBLE_EQ(restored.admission_utilization(),
                   b.sched.admission_utilization());
  EXPECT_EQ(restored.starvation_horizon(), b.sched.starvation_horizon());
  EXPECT_EQ(restored.link_rate(), b.sched.link_rate());
  for (ClassId c = 1; c < b.sched.num_classes(); ++c) {
    EXPECT_EQ(restored.is_deleted(c), b.sched.is_deleted(c));
    if (b.sched.is_deleted(c)) continue;
    EXPECT_EQ(restored.packets_sent(c), b.sched.packets_sent(c));
    EXPECT_EQ(restored.packets_dropped(c), b.sched.packets_dropped(c));
    EXPECT_EQ(restored.total_work(c), b.sched.total_work(c));
    EXPECT_EQ(restored.rt_work(c), b.sched.rt_work(c));
    EXPECT_EQ(restored.vtime(c), b.sched.vtime(c));
  }
  EXPECT_EQ(restored.data_path_counters().bad_class,
            b.sched.data_path_counters().bad_class);

  // Packet-for-packet identical dequeue order until drain, including
  // fresh arrivals landing on both after the restore.
  TimeNs now = b.now;
  std::uint64_t seq = b.seq;
  Rng rng(0xF00D);
  int served = 0;
  while (b.sched.backlog_packets() > 0) {
    if (seq < b.seq + 100 && rng.chance(0.2)) {  // bounded, then drain out
      const std::size_t l = rng.uniform(0, b.leaves.size() - 1);
      const Bytes len = 40 + rng.uniform(0, 1460);
      b.sched.enqueue(now, Packet{b.leaves[l], len, now, seq});
      restored.enqueue(now, Packet{b.leaves[l], len, now, seq});
      ++seq;
    }
    const auto po = b.sched.dequeue(now);
    const auto pr = restored.dequeue(now);
    ASSERT_EQ(po.has_value(), pr.has_value());
    if (po) {
      ASSERT_EQ(po->cls, pr->cls) << "diverged after " << served << " packets";
      ASSERT_EQ(po->seq, pr->seq);
      ASSERT_EQ(po->len, pr->len);
      now += tx_time(po->len, mbps(20));
      ++served;
    } else {
      now += usec(100);
    }
  }
  EXPECT_EQ(restored.backlog_packets(), 0u);
  EXPECT_GT(served, 0);
  EXPECT_EQ(state_digest(restored), state_digest(b.sched));
}

INSTANTIATE_TEST_SUITE_P(AllEligibleSets, CheckpointRoundTrip,
                         ::testing::Values(EligibleSetKind::kDualHeap,
                                           EligibleSetKind::kAugTree,
                                           EligibleSetKind::kCalendar));

TEST(Checkpoint, RejectsForeignMagic) {
  std::istringstream in("not-a-checkpoint 1\n");
  try {
    restore_checkpoint(in);
    FAIL() << "foreign magic must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kBadCheckpoint);
  }
}

TEST(Checkpoint, RejectsUnknownVersion) {
  std::istringstream in("hfsc-checkpoint 999\n");
  try {
    restore_checkpoint(in);
    FAIL() << "future versions must be rejected, not misparsed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kBadCheckpoint);
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(Checkpoint, RejectsTruncation) {
  Busy b(EligibleSetKind::kDualHeap);
  std::stringstream buf;
  checkpoint(b.sched, buf);
  const std::string full = buf.str();
  // Chop at a few representative depths; every prefix must throw rather
  // than yield a half-restored scheduler.
  for (const double frac : {0.1, 0.5, 0.9, 0.99}) {
    std::istringstream cut(
        full.substr(0, static_cast<std::size_t>(full.size() * frac)));
    EXPECT_THROW(restore_checkpoint(cut), Error) << "fraction " << frac;
  }
}

TEST(Checkpoint, RejectsCorruptStructure) {
  // A parent pointing at itself.
  std::istringstream in(
      "hfsc-checkpoint 1\nlink 1000000 0 2\nmaxpkt 67108864\nclock 0 0\n"
      "selections 0 0 1\ncounters 0 0 0 0\nadmission 0 0\nwatchdog 0\n"
      "classes 2\n"
      "node 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n"
      "cfg 0 0 0 0 0 0 0 0 0\n"
      "curve dc 0 0 0 0 0 0\ncurve ec 0 0 0 0 0 0\n"
      "curve vc 0 0 0 0 0 0\ncurve uc 0 0 0 0 0 0\n"
      "node 1 1 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n"
      "cfg 0 0 0 0 0 125000 0 0 0\n"
      "curve dc 0 0 0 0 0 0\ncurve ec 0 0 0 0 0 0\n"
      "curve vc 0 0 0 0 0 0\ncurve uc 0 0 0 0 0 0\n"
      "end\n");
  try {
    restore_checkpoint(in);
    FAIL() << "self-parenting node must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kBadCheckpoint);
  }
}

TEST(Checkpoint, AdmissionControlSurvivesRestoreBehaviorally) {
  // A restored scheduler must not merely report admission as enabled —
  // its rebuilt bookkeeping must make the SAME admit/reject decisions a
  // never-checkpointed twin makes from identical state.
  Hfsc twin(mbps(10));
  const ClassId org = twin.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(10))));
  twin.enable_admission_control();
  twin.add_class(org, ClassConfig::both(ServiceCurve::linear(mbps(6))));

  std::stringstream ss;
  checkpoint(twin, ss);
  Hfsc restored = restore_checkpoint(ss);
  EXPECT_TRUE(restored.admission_enabled());
  EXPECT_DOUBLE_EQ(restored.admission_utilization(),
                   twin.admission_utilization());

  // Over capacity (6 + 5 > 10): both must reject with the typed code.
  const ClassConfig over = ClassConfig::both(ServiceCurve::linear(mbps(5)));
  for (Hfsc* s : {&twin, &restored}) {
    try {
      s->add_class(org, over);
      FAIL() << "oversubscribing rt flow admitted";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), Errc::kAdmissionRejected);
    }
  }
  EXPECT_EQ(restored.admission_rejections(), 1u);

  // Within capacity: both must admit, and the aggregates must agree.
  const ClassConfig fits = ClassConfig::both(ServiceCurve::linear(mbps(3)));
  const ClassId t_new = twin.add_class(org, fits);
  const ClassId r_new = restored.add_class(org, fits);
  EXPECT_EQ(t_new, r_new);
  EXPECT_DOUBLE_EQ(restored.admission_utilization(),
                   twin.admission_utilization());
  EXPECT_EQ(state_digest(restored), state_digest(twin));
}

TEST(Checkpoint, StarvationWatchdogSurvivesRestoreBehaviorally) {
  // Leave a backlogged leaf unserved, checkpoint mid-episode, and let
  // the horizon expire on both sides: the restored watchdog must flag
  // the same starved set at the same time as the twin.
  Hfsc twin(mbps(10));
  const ClassId a = twin.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(5))));
  const ClassId b = twin.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));
  twin.enable_starvation_watchdog(msec(10));

  // Backlog both leaves with zero service: the episode clocks start at
  // the first enqueue (t=0 for a, t=2ms for b) and keep ticking.
  std::uint64_t seq = 0;
  for (int i = 0; i < 4; ++i) {
    twin.enqueue(0, Packet{a, 500, 0, seq++});
    twin.enqueue(msec(2), Packet{b, 500, msec(2), seq++});
  }

  std::stringstream ss;
  checkpoint(twin, ss);
  Hfsc restored = restore_checkpoint(ss);
  EXPECT_EQ(restored.starvation_horizon(), twin.starvation_horizon());

  // Before a's horizon expires neither side flags anything; between the
  // two horizons both flag exactly {a}; past both, both flag {a, b} —
  // the episode clocks carried over exactly.
  for (const TimeNs t : {msec(9), msec(11), msec(13)}) {
    EXPECT_EQ(twin.starved_classes(t), restored.starved_classes(t)) << t;
  }
  ASSERT_EQ(restored.starved_classes(msec(11)).size(), 1u);
  EXPECT_EQ(restored.starved_classes(msec(11))[0], a);
  EXPECT_EQ(restored.starved_classes(msec(13)).size(), 2u);

  // Service on both sides clears the same flag identically.
  (void)twin.dequeue(msec(13));
  (void)restored.dequeue(msec(13));
  EXPECT_EQ(twin.starved_classes(msec(13) + usec(1)),
            restored.starved_classes(msec(13) + usec(1)));
  EXPECT_EQ(state_digest(restored), state_digest(twin));
}

TEST(Checkpoint, DigestIgnoresObservabilityCounters) {
  Hfsc s(mbps(10));
  const ClassId org = s.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(10))));
  s.add_class(org, ClassConfig::both(ServiceCurve::linear(mbps(4))));
  s.enable_admission_control();
  const std::uint64_t before = state_digest(s);

  // A rejected direct mutation bumps admission_rejections() but must not
  // move the digest — that is exactly what makes the digest usable as the
  // Txn atomicity oracle.
  EXPECT_THROW(
      s.add_class(org, ClassConfig::both(ServiceCurve::linear(mbps(20)))),
      Error);
  EXPECT_EQ(s.admission_rejections(), 1u);
  EXPECT_EQ(state_digest(s), before);
}

}  // namespace
}  // namespace hfsc
