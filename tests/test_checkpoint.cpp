// Checkpoint/restore tests (core/checkpoint.{hpp,cpp}): a mid-backlog
// round trip must audit clean, match the original's state digest, and
// dequeue packet-for-packet identically until drain; malformed streams
// must throw Error{kBadCheckpoint}.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/auditor.hpp"
#include "core/checkpoint.hpp"
#include "core/hfsc.hpp"
#include "util/rng.hpp"

namespace hfsc {
namespace {

// A busy two-org hierarchy with rt/ls/ul curves, deletions (tombstones),
// queue limits, dropped packets and a partially drained backlog — the
// checkpoint must capture all of it.
struct Busy {
  Hfsc sched;
  std::vector<ClassId> leaves;
  TimeNs now = 0;
  std::uint64_t seq = 0;

  explicit Busy(EligibleSetKind kind)
      : sched(mbps(20), kind) {
    const RateBps link = mbps(20);
    const ClassId org1 = sched.add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(link / 2)));
    const ClassId org2 = sched.add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(link / 2)));
    leaves.push_back(sched.add_class(
        org1, ClassConfig::both(ServiceCurve{link / 4, msec(2), link / 8})));
    leaves.push_back(sched.add_class(
        org1, ClassConfig::link_share_only(ServiceCurve::linear(link / 8))));
    leaves.push_back(sched.add_class(
        org2, ClassConfig{ServiceCurve::linear(link / 8),
                          ServiceCurve::linear(link / 8),
                          ServiceCurve::linear(link / 4)}));
    sched.set_queue_limit(leaves[1], 16);
    sched.enable_admission_control();
    sched.enable_starvation_watchdog(sec(1));
    // A tombstone: restore must keep dense ids across it.
    const ClassId doomed = sched.add_class(
        org2, ClassConfig::link_share_only(ServiceCurve::linear(kbps(100))));
    sched.delete_class(doomed);

    Rng rng(0xC0FFEE);
    for (int i = 0; i < 400; ++i) {
      const std::size_t l = rng.uniform(0, leaves.size() - 1);
      sched.enqueue(now, Packet{leaves[l], 40 + rng.uniform(0, 1460),
                                now, seq++});
      if (rng.chance(0.4)) {
        const auto p = sched.dequeue(now);
        if (p) now += tx_time(p->len, mbps(20));
      }
      now += rng.uniform(0, usec(200));
    }
    // An anomaly for the data-path counters.
    sched.enqueue(now, Packet{9999, 100, now, seq++});
  }
};

class CheckpointRoundTrip
    : public ::testing::TestWithParam<EligibleSetKind> {};

TEST_P(CheckpointRoundTrip, MidBacklogRestoreIsExact) {
  Busy b(GetParam());
  ASSERT_GT(b.sched.backlog_packets(), 0u);

  std::stringstream buf;
  checkpoint(b.sched, buf);
  Hfsc restored = restore_checkpoint(buf);

  const AuditReport report = audit(restored);
  ASSERT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(state_digest(restored), state_digest(b.sched));

  // Statistics and configuration survive.
  EXPECT_EQ(restored.num_classes(), b.sched.num_classes());
  EXPECT_EQ(restored.backlog_packets(), b.sched.backlog_packets());
  EXPECT_EQ(restored.backlog_bytes(), b.sched.backlog_bytes());
  EXPECT_TRUE(restored.admission_enabled());
  EXPECT_DOUBLE_EQ(restored.admission_utilization(),
                   b.sched.admission_utilization());
  EXPECT_EQ(restored.starvation_horizon(), b.sched.starvation_horizon());
  EXPECT_EQ(restored.link_rate(), b.sched.link_rate());
  for (ClassId c = 1; c < b.sched.num_classes(); ++c) {
    EXPECT_EQ(restored.is_deleted(c), b.sched.is_deleted(c));
    if (b.sched.is_deleted(c)) continue;
    EXPECT_EQ(restored.packets_sent(c), b.sched.packets_sent(c));
    EXPECT_EQ(restored.packets_dropped(c), b.sched.packets_dropped(c));
    EXPECT_EQ(restored.total_work(c), b.sched.total_work(c));
    EXPECT_EQ(restored.rt_work(c), b.sched.rt_work(c));
    EXPECT_EQ(restored.vtime(c), b.sched.vtime(c));
  }
  EXPECT_EQ(restored.data_path_counters().bad_class,
            b.sched.data_path_counters().bad_class);

  // Packet-for-packet identical dequeue order until drain, including
  // fresh arrivals landing on both after the restore.
  TimeNs now = b.now;
  std::uint64_t seq = b.seq;
  Rng rng(0xF00D);
  int served = 0;
  while (b.sched.backlog_packets() > 0) {
    if (seq < b.seq + 100 && rng.chance(0.2)) {  // bounded, then drain out
      const std::size_t l = rng.uniform(0, b.leaves.size() - 1);
      const Bytes len = 40 + rng.uniform(0, 1460);
      b.sched.enqueue(now, Packet{b.leaves[l], len, now, seq});
      restored.enqueue(now, Packet{b.leaves[l], len, now, seq});
      ++seq;
    }
    const auto po = b.sched.dequeue(now);
    const auto pr = restored.dequeue(now);
    ASSERT_EQ(po.has_value(), pr.has_value());
    if (po) {
      ASSERT_EQ(po->cls, pr->cls) << "diverged after " << served << " packets";
      ASSERT_EQ(po->seq, pr->seq);
      ASSERT_EQ(po->len, pr->len);
      now += tx_time(po->len, mbps(20));
      ++served;
    } else {
      now += usec(100);
    }
  }
  EXPECT_EQ(restored.backlog_packets(), 0u);
  EXPECT_GT(served, 0);
  EXPECT_EQ(state_digest(restored), state_digest(b.sched));
}

INSTANTIATE_TEST_SUITE_P(AllEligibleSets, CheckpointRoundTrip,
                         ::testing::Values(EligibleSetKind::kDualHeap,
                                           EligibleSetKind::kAugTree,
                                           EligibleSetKind::kCalendar));

TEST(Checkpoint, RejectsForeignMagic) {
  std::istringstream in("not-a-checkpoint 1\n");
  try {
    restore_checkpoint(in);
    FAIL() << "foreign magic must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kBadCheckpoint);
  }
}

TEST(Checkpoint, RejectsUnknownVersion) {
  std::istringstream in("hfsc-checkpoint 999\n");
  try {
    restore_checkpoint(in);
    FAIL() << "future versions must be rejected, not misparsed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kBadCheckpoint);
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(Checkpoint, RejectsTruncation) {
  Busy b(EligibleSetKind::kDualHeap);
  std::stringstream buf;
  checkpoint(b.sched, buf);
  const std::string full = buf.str();
  // Chop at a few representative depths; every prefix must throw rather
  // than yield a half-restored scheduler.
  for (const double frac : {0.1, 0.5, 0.9, 0.99}) {
    std::istringstream cut(
        full.substr(0, static_cast<std::size_t>(full.size() * frac)));
    EXPECT_THROW(restore_checkpoint(cut), Error) << "fraction " << frac;
  }
}

TEST(Checkpoint, RejectsCorruptStructure) {
  // A parent pointing at itself.
  std::istringstream in(
      "hfsc-checkpoint 1\nlink 1000000 0 2\nmaxpkt 67108864\nclock 0 0\n"
      "selections 0 0 1\ncounters 0 0 0 0\nadmission 0 0\nwatchdog 0\n"
      "classes 2\n"
      "node 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n"
      "cfg 0 0 0 0 0 0 0 0 0\n"
      "curve dc 0 0 0 0 0 0\ncurve ec 0 0 0 0 0 0\n"
      "curve vc 0 0 0 0 0 0\ncurve uc 0 0 0 0 0 0\n"
      "node 1 1 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n"
      "cfg 0 0 0 0 0 125000 0 0 0\n"
      "curve dc 0 0 0 0 0 0\ncurve ec 0 0 0 0 0 0\n"
      "curve vc 0 0 0 0 0 0\ncurve uc 0 0 0 0 0 0\n"
      "end\n");
  try {
    restore_checkpoint(in);
    FAIL() << "self-parenting node must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kBadCheckpoint);
  }
}

TEST(Checkpoint, DigestIgnoresObservabilityCounters) {
  Hfsc s(mbps(10));
  const ClassId org = s.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(10))));
  s.add_class(org, ClassConfig::both(ServiceCurve::linear(mbps(4))));
  s.enable_admission_control();
  const std::uint64_t before = state_digest(s);

  // A rejected direct mutation bumps admission_rejections() but must not
  // move the digest — that is exactly what makes the digest usable as the
  // Txn atomicity oracle.
  EXPECT_THROW(
      s.add_class(org, ClassConfig::both(ServiceCurve::linear(mbps(20)))),
      Error);
  EXPECT_EQ(s.admission_rejections(), 1u);
  EXPECT_EQ(state_digest(s), before);
}

}  // namespace
}  // namespace hfsc
