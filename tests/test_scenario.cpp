// Tests for the scenario language: unit parsing, directive parsing,
// error reporting, and end-to-end runs (including the shipped scenario
// files).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/scenario.hpp"

namespace hfsc {
namespace {

TEST(ScenarioUnits, Rates) {
  EXPECT_EQ(parse_rate("64kbps"), kbps(64));
  EXPECT_EQ(parse_rate("10Mbps"), mbps(10));
  EXPECT_EQ(parse_rate("1Gbps"), gbps(1));
  EXPECT_EQ(parse_rate("800bps"), 100u);
  EXPECT_EQ(parse_rate("2.5Mbps"), 312'500u);
  EXPECT_THROW(parse_rate("10"), std::runtime_error);
  EXPECT_THROW(parse_rate("fast"), std::runtime_error);
  EXPECT_THROW(parse_rate("10MBps"), std::runtime_error);
}

TEST(ScenarioUnits, Times) {
  EXPECT_EQ(parse_time("5ms"), msec(5));
  EXPECT_EQ(parse_time("10s"), sec(10));
  EXPECT_EQ(parse_time("250us"), usec(250));
  EXPECT_EQ(parse_time("100ns"), 100u);
  EXPECT_EQ(parse_time("0.5s"), msec(500));
  EXPECT_THROW(parse_time("5"), std::runtime_error);
  EXPECT_THROW(parse_time("5minutes"), std::runtime_error);
}

TEST(ScenarioUnits, Bytes) {
  EXPECT_EQ(parse_bytes("1500"), 1500u);
  EXPECT_THROW(parse_bytes("1500B"), std::runtime_error);
  EXPECT_THROW(parse_bytes("-1"), std::runtime_error);
}

TEST(ScenarioParse, MinimalScenario) {
  std::istringstream in(R"(
link 10Mbps
duration 1s
class a root ls linear 10Mbps
source cbr a 1Mbps 1000 0s 1s
)");
  const Scenario sc = Scenario::parse(in);
  EXPECT_EQ(sc.link_rate, mbps(10));
  EXPECT_EQ(sc.duration, sec(1));
  ASSERT_EQ(sc.classes.size(), 1u);
  EXPECT_EQ(sc.classes[0].name, "a");
  EXPECT_EQ(sc.classes[0].cfg.ls, ServiceCurve::linear(mbps(10)));
  ASSERT_EQ(sc.sources.size(), 1u);
  EXPECT_EQ(sc.sources[0].kind, ScenarioSource::Kind::kCbr);
}

TEST(ScenarioParse, FullClassAttributes) {
  std::istringstream in(R"(
link 10Mbps
duration 1s
class org root ls linear 10Mbps
class a org rt udr 160 5ms 64kbps ls linear 64kbps ul linear 1Mbps qlimit 50
)");
  const Scenario sc = Scenario::parse(in);
  ASSERT_EQ(sc.classes.size(), 2u);
  const ScenarioClass& a = sc.classes[1];
  EXPECT_EQ(a.parent, "org");
  EXPECT_EQ(a.cfg.rt, from_udr(160, msec(5), kbps(64)));
  EXPECT_EQ(a.cfg.ul, ServiceCurve::linear(mbps(1)));
  EXPECT_EQ(a.qlimit, 50u);
}

TEST(ScenarioParse, ErrorsCarryLineNumbers) {
  auto expect_error = [](const char* text, const char* needle) {
    std::istringstream in(text);
    try {
      (void)Scenario::parse(in);
      FAIL() << "expected parse error containing '" << needle << "'";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("link 10Mbps\nduration 1s\nbogus x\n", "unknown directive");
  expect_error("link 10Mbps\nduration 1s\nclass a nosuch ls linear 1Mbps\n",
               "unknown parent");
  expect_error("link 10Mbps\nduration 1s\nclass a root ls linear 1Mbps\n"
               "class a root ls linear 1Mbps\n",
               "duplicate class");
  expect_error("link 10Mbps\nduration 1s\nclass a root qlimit 5\n",
               "at least one of rt/ls");
  expect_error("link 10Mbps\nduration 1s\nclass a root ls linear 1Mbps\n"
               "source cbr b 1Mbps 100 0s 1s\n",
               "unknown class");
  expect_error("link 10Mbps\nduration 1s\nclass a root ls linear 1Mbps\n"
               "source cbr a 1Mbps 100 0s 1s extra\n",
               "trailing token");
  expect_error("link 10Mbps\nduration 1s\n"
               "class a root ls curve 1Mbps 5ms 2Mbps\n",
               "unsupported curve shape");
  expect_error("duration 1s\nclass a root ls linear 1Mbps\n", "missing link");
  expect_error("link 1Mbps\nclass a root ls linear 1Mbps\n",
               "missing duration");
}

TEST(ScenarioParse, RejectsZeroRateServiceCurves) {
  auto expect_error = [](const char* text, const char* needle) {
    std::istringstream in(text);
    try {
      (void)Scenario::parse(in);
      FAIL() << "expected parse error containing '" << needle << "'";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(needle), std::string::npos) << what;
      // The message must carry the offending line number (line 3 below).
      EXPECT_NE(what.find("3"), std::string::npos) << what;
    }
  };
  expect_error("link 10Mbps\nduration 1s\nclass a root ls linear 0bps\n",
               "zero-rate service curve");
  expect_error("link 10Mbps\nduration 1s\n"
               "class a root rt curve 0bps 5ms 0bps\n",
               "zero-rate service curve");
  expect_error("link 10Mbps\nduration 1s\n"
               "class a root rt udr 0 5ms 0bps ls linear 1Mbps\n",
               "zero-rate service curve");
}

TEST(ScenarioParse, RejectsDuplicateClassNamesAcrossParents) {
  std::istringstream in(R"(
link 10Mbps
duration 1s
class org1 root ls linear 5Mbps
class org2 root ls linear 5Mbps
class a org1 ls linear 1Mbps
class a org2 ls linear 1Mbps
)");
  try {
    (void)Scenario::parse(in);
    FAIL() << "expected duplicate-class parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate class"), std::string::npos) << what;
    EXPECT_NE(what.find("7"), std::string::npos) << what;  // line number
  }
}

// A child declared before its parent is the order the spec compiler can
// never satisfy; the error must carry the file AND the line so a batch
// run points straight at the offending declaration.
TEST(ScenarioParse, ChildBeforeParentCarriesFileAndLine) {
  const std::string path = ::testing::TempDir() + "hfsc_orphan_scenario.hfsc";
  {
    std::ofstream out(path);
    out << "link 10Mbps\nduration 1s\n"
           "class leaf org ls linear 1Mbps\n"   // line 3: org not yet known
           "class org root ls linear 5Mbps\n";
  }
  try {
    (void)Scenario::parse_file(path);
    FAIL() << "expected child-before-parent parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path + ":3:"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown parent class org"), std::string::npos)
        << what;
  }
  std::remove(path.c_str());
}

TEST(ScenarioParse, DuplicateClassCarriesFileAndLine) {
  const std::string path = ::testing::TempDir() + "hfsc_dup_scenario.hfsc";
  {
    std::ofstream out(path);
    out << "link 10Mbps\nduration 1s\n"
           "class a root ls linear 1Mbps\n"
           "class a root ls linear 2Mbps\n";  // line 4
  }
  try {
    (void)Scenario::parse_file(path);
    FAIL() << "expected duplicate-class parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path + ":4:"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate class a"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(ScenarioParse, SchedulerDirective) {
  std::istringstream in(R"(
link 10Mbps
duration 1s
scheduler cbq
class a root ls linear 10Mbps
)");
  const Scenario sc = Scenario::parse(in);
  EXPECT_EQ(sc.scheduler, SchedulerKind::kCbq);
}

TEST(ScenarioParse, UnknownSchedulerKindCarriesTheLine) {
  std::istringstream in("link 10Mbps\nduration 1s\nscheduler wfq\n");
  try {
    (void)Scenario::parse(in);
    FAIL() << "expected unknown-scheduler parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown scheduler kind: wfq"), std::string::npos)
        << what;
    EXPECT_NE(what.find("3"), std::string::npos) << what;
  }
}

TEST(ScenarioParse, FileErrorsCarryTheFileName) {
  const std::string path = ::testing::TempDir() + "hfsc_bad_scenario.hfsc";
  {
    std::ofstream out(path);
    out << "link 10Mbps\nduration 1s\nbogus x\n";
  }
  try {
    (void)Scenario::parse_file(path);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    // file:line: message — greppable straight into an editor.
    EXPECT_NE(what.find(path + ":3:"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown directive"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(ScenarioRun, AdmissionExceedingScenarioFailsWithOneLineError) {
  // 8 + 7 Mb/s of rt guarantees on a 10 Mb/s link: infeasible.  With the
  // admission option on, the run must fail with a single actionable line
  // naming the class that broke the budget.
  std::istringstream in(R"(
link 10Mbps
duration 1s
class org   root ls linear 10Mbps
class voice org  rt linear 8Mbps ls linear 8Mbps
class video org  rt linear 7Mbps ls linear 7Mbps
source cbr voice 1Mbps 1000 0s 1s
)");
  const Scenario sc = Scenario::parse(in);
  ScenarioRunOptions opts;
  opts.admission = true;
  try {
    (void)run_scenario(sc, opts);
    FAIL() << "infeasible scenario must be refused up front";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find('\n'), std::string::npos) << what;
    EXPECT_NE(what.find("class 'video'"), std::string::npos) << what;
    EXPECT_NE(what.find("admission"), std::string::npos) << what;
  }
  // Without the option the same scenario still runs (link-sharing only
  // degrades; no guarantees are promised).
  ScenarioRunOptions lax;
  EXPECT_NO_THROW((void)run_scenario(sc, lax));
}

TEST(ScenarioRun, AuditOptionRunsSelfChecks) {
  std::istringstream in(R"(
link 10Mbps
duration 1s
class org  root ls linear 10Mbps
class a    org  ls linear 5Mbps
class b    org  ls linear 5Mbps
source cbr a 2Mbps 1000 0s 1s
source cbr b 2Mbps 1000 0s 1s
)");
  const Scenario sc = Scenario::parse(in);
  ScenarioRunOptions opts;
  opts.audit_every = 64;
  ScenarioResult r;
  ASSERT_NO_THROW(r = run_scenario(sc, opts));
  EXPECT_EQ(r.per_class.size(), 2u);
}

TEST(ScenarioRun, EndToEndWithHierarchy) {
  std::istringstream in(R"(
link 10Mbps
duration 2s
class org   root ls linear 10Mbps
class voice org  rt udr 160 5ms 64kbps  ls linear 64kbps
class data  org  ls linear 9Mbps  qlimit 20
source cbr    voice 64kbps 160 0s 2s
source greedy data  1500 8 0s 2s
)");
  const Scenario sc = Scenario::parse(in);
  const ScenarioResult r = run_scenario(sc);
  ASSERT_EQ(r.per_class.size(), 2u);  // leaves only
  const auto& voice = r.per_class[0];
  const auto& data = r.per_class[1];
  EXPECT_EQ(voice.name, "voice");
  EXPECT_EQ(voice.packets, 100u);
  EXPECT_LT(voice.max_delay_ms, 6.3);
  EXPECT_EQ(data.name, "data");
  EXPECT_GT(data.rate_mbps, 9.0);
  EXPECT_GT(r.link_utilization, 0.99);
  const std::string table = r.to_table();
  EXPECT_NE(table.find("voice"), std::string::npos);
  EXPECT_NE(table.find("link utilization"), std::string::npos);
}

TEST(ScenarioRun, ShippedScenarioFilesAreValid) {
  for (const char* path :
       {"scenarios/campus.hfsc", "scenarios/voip.hfsc",
        "scenarios/decoupling.hfsc"}) {
    SCOPED_TRACE(path);
    Scenario sc;
    ASSERT_NO_THROW(sc = Scenario::parse_file(
                        std::string(HFSC_SOURCE_DIR) + "/" + path));
    const ScenarioResult r = run_scenario(sc);
    EXPECT_FALSE(r.per_class.empty());
    for (const auto& pc : r.per_class) {
      EXPECT_GT(pc.packets, 0u) << pc.name;
    }
  }
}

}  // namespace
}  // namespace hfsc
