// Full-pipeline integration: classifier -> policer -> H-FSC -> link,
// the composition an actual router port would run (ALTQ's architecture).
#include <gtest/gtest.h>

#include "core/hfsc.hpp"
#include "sched/classifier.hpp"
#include "sched/conditioning.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

TEST(RouterPipeline, ClassifyPoliceSchedule) {
  const RateBps link = mbps(10);

  // Scheduler: voice gets a concave guarantee, web and bulk share the
  // rest 2:1, default (unclassified) traffic rides a small best-effort
  // class.
  Hfsc hfsc(link);
  const ClassId voice = hfsc.add_class(
      kRootClass, ClassConfig::both(from_udr(160, msec(5), kbps(640))));
  const ClassId web = hfsc.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(6))));
  const ClassId bulk = hfsc.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(3))));
  const ClassId best_effort = hfsc.add_class(
      kRootClass,
      ClassConfig::link_share_only(ServiceCurve::linear(kbps(256))));

  // Policer in front of the scheduler: voice is held to its envelope.
  Policed sched(hfsc);
  sched.set_policer(voice, 2 * 160, kbps(64));

  // Classifier: RTP/UDP to voice, port 80 to web, port 22-ish flows to
  // bulk, everything else to best effort.
  Classifier cls;
  cls.set_default_class(best_effort);
  Filter f_voice;
  f_voice.proto = kProtoUdp;
  f_voice.dst_port = 5004;
  f_voice.priority = 10;
  cls.add_filter(f_voice, voice);
  Filter f_web;
  f_web.proto = kProtoTcp;
  f_web.dst_port = 80;
  cls.add_filter(f_web, web);
  Filter f_bulk;
  f_bulk.proto = kProtoTcp;
  f_bulk.dst_port = 873;
  cls.add_filter(f_bulk, bulk);

  // Drive raw "wire" packets through the classifier into the link.
  EventQueue ev;
  Link out(ev, link, sched);
  FlowTracker tracker;
  tracker.attach(out);
  auto inject = [&](TimeNs t, const FlowKey& key, Bytes len,
                    std::uint64_t seq) {
    ev.schedule(t, [&, key, len, seq](TimeNs now) {
      out.on_arrival(now, Packet{cls.classify(key), len, now, seq});
    });
  };

  const FlowKey voice_flow{0x0A000001, 0x0A000002, 9000, 5004, kProtoUdp};
  const FlowKey web_flow{0x0A000003, 0x0A000004, 40000, 80, kProtoTcp};
  const FlowKey bulk_flow{0x0A000005, 0x0A000006, 40001, 873, kProtoTcp};
  const FlowKey stray_flow{0x0A000007, 0x0A000008, 1, 1, kProtoTcp};

  std::uint64_t seq = 0;
  // Voice: 64 kb/s conforming CBR (one 160 B packet per 20 ms).
  for (TimeNs t = 0; t < sec(2); t += msec(20)) {
    inject(t, voice_flow, 160, seq++);
  }
  // Web and bulk: saturating streams of 1500 B every ms (12 Mb/s each,
  // far over capacity — the hierarchy decides).
  for (TimeNs t = 0; t < sec(2); t += msec(1)) {
    inject(t, web_flow, 1500, seq++);
    inject(t, bulk_flow, 1500, seq++);
  }
  // A stray trickle hits the default class.
  for (TimeNs t = 0; t < sec(2); t += msec(100)) {
    inject(t, stray_flow, 400, seq++);
  }
  ev.run_until(sec(2));

  // Voice: guaranteed delay, no policer drops (it conforms).
  EXPECT_EQ(tracker.packets(voice), 100u);
  EXPECT_LT(tracker.max_delay_ms(voice), 6.3);
  EXPECT_EQ(sched.dropped(voice), 0u);
  // Web and bulk split the remaining ~9.9 Mb/s in their 2:1 curve
  // proportion (the excess over their nominal 6+3 goes to them too).
  EXPECT_NEAR(tracker.rate_mbps(web, msec(200), sec(2)), 6.6, 0.4);
  EXPECT_NEAR(tracker.rate_mbps(bulk, msec(200), sec(2)), 3.3, 0.4);
  // The stray flow lands in best effort and still gets through.
  EXPECT_EQ(tracker.packets(best_effort), 20u);
}

TEST(RouterPipeline, MisbehavingVoiceIsClippedNotPrioritized) {
  // The policer protects the guarantee semantics: a voice flow blasting
  // 10x its reservation has the excess dropped at the door instead of
  // hijacking the real-time criterion.
  const RateBps link = mbps(10);
  Hfsc hfsc(link);
  const ClassId voice = hfsc.add_class(
      kRootClass, ClassConfig::both(from_udr(160, msec(5), kbps(640))));
  const ClassId data = hfsc.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(9))));
  Policed sched(hfsc);
  sched.set_policer(voice, 480, kbps(64));

  Simulator sim(link, sched);
  sim.add<CbrSource>(voice, kbps(640), 160, 0, sec(2));  // 10x envelope
  sim.add<GreedySource>(data, 1500, 8, 0, sec(2));
  sim.run(sec(2));

  // ~90% of the voice flood is dropped; data keeps its share.
  EXPECT_NEAR(static_cast<double>(sched.dropped(voice)),
              0.9 * static_cast<double>(sched.dropped(voice) +
                                        sched.passed(voice)),
              60.0);
  EXPECT_GT(sim.tracker().rate_mbps(data, msec(200), sec(2)), 9.0);
  // The survivors still meet the voice bound.
  EXPECT_LT(sim.tracker().max_delay_ms(voice), 6.3);
}

}  // namespace
}  // namespace hfsc
