// Tests for the fluid GPS reference and differential fairness tests of
// the packet schedulers against it.
#include <gtest/gtest.h>

#include "core/hfsc.hpp"
#include "sched/gps.hpp"
#include "sched/pfq_sched.hpp"
#include "sched/virtual_clock.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

TEST(FluidGps, SharesProportionalToWeights) {
  FluidGps gps(mbps(8));  // 1e6 B/s
  const auto a = gps.add_session(mbps(6));
  const auto b = gps.add_session(mbps(2));
  gps.arrive(0, a, 1'000'000);
  gps.arrive(0, b, 1'000'000);
  gps.advance(sec(1));
  EXPECT_NEAR(gps.service(a), 750'000.0, 1.0);
  EXPECT_NEAR(gps.service(b), 250'000.0, 1.0);
}

TEST(FluidGps, RedistributesOnDrain) {
  FluidGps gps(mbps(8));
  const auto a = gps.add_session(mbps(4));
  const auto b = gps.add_session(mbps(4));
  gps.arrive(0, a, 100'000);   // drains at 0.2 s under a 0.5 share
  gps.arrive(0, b, 1'000'000);
  gps.advance(sec(1));
  EXPECT_NEAR(gps.service(a), 100'000.0, 1.0);
  // b: 500 kB/s * 0.2 s + 1 MB/s * 0.8 s = 900 kB.
  EXPECT_NEAR(gps.service(b), 900'000.0, 10.0);
  EXPECT_NEAR(gps.backlog(b), 100'000.0, 10.0);
}

TEST(FluidGps, IdlePeriodsServeNothing) {
  FluidGps gps(mbps(8));
  const auto a = gps.add_session(mbps(8));
  gps.advance(sec(1));
  EXPECT_EQ(gps.service(a), 0.0);
  gps.arrive(sec(1), a, 500);
  gps.advance(sec(2));
  EXPECT_NEAR(gps.service(a), 500.0, 1e-6);
}

// Differential harness: replay one workload through a packet scheduler
// and the fluid server; track the worst per-session service gap
// GPS_i(t) - W_i(t) sampled at every departure.
struct GapResult {
  double worst_lag = 0.0;   // packet scheduler behind fluid GPS (bytes)
  double worst_lead = 0.0;  // packet scheduler ahead of fluid GPS
};

template <typename MakeSource>
GapResult run_against_gps(Scheduler& sched, FluidGps& gps,
                          const std::vector<ClassId>& classes,
                          MakeSource make_sources) {
  Simulator sim(mbps(8), sched);
  std::vector<double> sent(*std::max_element(classes.begin(), classes.end()) +
                           1);
  sim.link().add_arrival_hook([&](TimeNs t, const Packet& p) {
    gps.arrive(t, p.cls - 1, p.len);  // GPS ids are ClassId-1
  });
  GapResult r;
  sim.link().add_departure_hook([&](TimeNs t, const Packet& p) {
    gps.advance(t);
    sent[p.cls] += static_cast<double>(p.len);
    for (ClassId c : classes) {
      const double gap = gps.service(c - 1) - sent[c];
      r.worst_lag = std::max(r.worst_lag, gap);
      r.worst_lead = std::max(r.worst_lead, -gap);
    }
  });
  make_sources(sim);
  sim.run(sec(4));
  return r;
}

TEST(GpsDifferential, Wf2qPlusTracksGpsWithinPackets) {
  PfqSched sched(mbps(8), PfqPolicy::SEFF);
  const ClassId a = sched.add_session(mbps(6));
  const ClassId b = sched.add_session(mbps(2));
  FluidGps gps(mbps(8));
  gps.add_session(mbps(6));
  gps.add_session(mbps(2));
  const GapResult r = run_against_gps(
      sched, gps, {a, b}, [&](Simulator& sim) {
        // Open-loop overload so both the packet system and the fluid
        // reference see identical arrivals.
        sim.add<CbrSource>(a, mbps(7), 1000, 0, sec(4));
        sim.add<OnOffSource>(b, mbps(8), 600, msec(30), msec(30), 0, sec(4),
                             17);
      });
  // WF2Q+'s service stays within a few packets of fluid GPS either way —
  // the worst-case-fair property.
  EXPECT_LT(r.worst_lag, 10'000.0);
  EXPECT_LT(r.worst_lead, 5'000.0);
}

TEST(GpsDifferential, HfscLinearCurvesTrackGps) {
  Hfsc sched(mbps(8));
  const ClassId a = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(6))));
  const ClassId b = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(2))));
  FluidGps gps(mbps(8));
  gps.add_session(mbps(6));
  gps.add_session(mbps(2));
  const GapResult r = run_against_gps(
      sched, gps, {a, b}, [&](Simulator& sim) {
        sim.add<CbrSource>(a, mbps(7), 1000, 0, sec(4));
        sim.add<OnOffSource>(b, mbps(8), 600, msec(30), msec(30), 0, sec(4),
                             18);
      });
  EXPECT_LT(r.worst_lag, 12'000.0);
  EXPECT_LT(r.worst_lead, 6'000.0);
}

TEST(GpsDifferential, VirtualClockFallsArbitrarilyBehindGps) {
  // The punishment scenario: session a uses the idle link for 2 s, then b
  // wakes.  Under GPS a immediately drops to its fair half; under VC it
  // is starved, so its lag behind GPS grows to hundreds of kilobytes —
  // there is no constant bound (Section III-B's criticism).
  VirtualClock sched;
  const ClassId a = sched.add_session(mbps(4));
  const ClassId b = sched.add_session(mbps(4));
  FluidGps gps(mbps(8));
  gps.add_session(mbps(4));
  gps.add_session(mbps(4));
  const GapResult r = run_against_gps(
      sched, gps, {a, b}, [&](Simulator& sim) {
        sim.add<CbrSource>(a, mbps(8), 1000, 0, sec(4));
        sim.add<CbrSource>(b, mbps(8), 1000, sec(2), sec(4));
      });
  EXPECT_GT(r.worst_lag, 100'000.0);
}

}  // namespace
}  // namespace hfsc
