// Tests for the min-plus curve algebra behind Analyzer 2.0: convolution
// ((*)), deconvolution ((/)), the vertical deviation (backlog bound) and
// the delayed/plus/is_concave helpers on PiecewiseLinear.
//
// Reference semantics: the real-valued piecewise-linear curve defined by
// the stored breakpoints.  convolve() is exact up to the documented
// conservative floor (values never ABOVE the exact convolution, at most
// a few bytes below at synthesized crossings); deconvolve() is exact up
// to <= 2 bytes of deliberate upward rounding for affine envelopes and
// conservative (never below the exact deconvolution) in general.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "curve/piecewise.hpp"

namespace hfsc {
namespace {

using Piece = PiecewiseLinear::Piece;

// Rate-latency service curve beta_{R,T}.
PiecewiseLinear beta(RateBps rate, TimeNs latency) {
  return PiecewiseLinear::from_service_curve(
      ServiceCurve{0, latency, rate});
}

// Brute-force (f (*) g)(t): the infimum of the linear-in-s objective is
// attained with s on a breakpoint of f or t - s on a breakpoint of g (or
// at the interval ends), so enumerating those candidates is exact modulo
// eval()'s <= 1-byte floor.
Bytes brute_convolve(const PiecewiseLinear& f, const PiecewiseLinear& g,
                     TimeNs t) {
  Bytes best = kBytesInfinity;
  auto consider = [&](TimeNs s) {
    if (s > t) return;
    best = std::min(best, sat_add(f.eval(s), g.eval(t - s)));
  };
  consider(0);
  consider(t);
  for (const Piece& p : f.pieces()) consider(p.x);
  for (const Piece& p : g.pieces()) {
    if (p.x <= t) consider(t - p.x);
  }
  return best;
}

// Brute-force (f (/) g)(t) = sup_u f(t+u) - g(u), clamped at 0.  The
// supremum lands with u on a breakpoint of g or t + u on a breakpoint of
// f; a far probe covers the constant tail when the rates tie.
Bytes brute_deconvolve(const PiecewiseLinear& f, const PiecewiseLinear& g,
                       TimeNs t) {
  __int128 best = 0;
  auto consider = [&](TimeNs u) {
    const __int128 v = static_cast<__int128>(f.eval(sat_add(t, u))) -
                       static_cast<__int128>(g.eval(u));
    best = std::max(best, v);
  };
  consider(0);
  for (const Piece& p : g.pieces()) consider(p.x);
  for (const Piece& p : f.pieces()) {
    if (p.x > t) consider(p.x - t);
  }
  consider(std::max(f.pieces().back().x, g.pieces().back().x) + sec(2));
  return static_cast<Bytes>(std::max<__int128>(best, 0));
}

TEST(MinPlus, DelayedShiftsAndClamps) {
  const auto tb = PiecewiseLinear::token_bucket(5000, mbps(1));
  const auto d = tb.delayed(msec(3));
  EXPECT_EQ(d.eval(0), 5000u);
  EXPECT_EQ(d.eval(msec(3) - 1), 5000u);
  for (TimeNs t = msec(3); t < msec(20); t += usec(137)) {
    ASSERT_EQ(d.eval(t), tb.eval(t - msec(3))) << t;
  }
  // d == 0 is the identity.
  EXPECT_EQ(tb.delayed(0), tb);
}

TEST(MinPlus, PlusRaisesByConstant) {
  const auto sc =
      PiecewiseLinear::from_service_curve({mbps(10), msec(8), mbps(2)});
  const auto r = sc.plus(777);
  for (TimeNs t = 0; t < msec(20); t += usec(211)) {
    ASSERT_EQ(r.eval(t), sc.eval(t) + 777) << t;
  }
}

TEST(MinPlus, IsConcaveClassifiesShapes) {
  EXPECT_TRUE(PiecewiseLinear::token_bucket(1000, mbps(1)).is_concave());
  EXPECT_TRUE(PiecewiseLinear::from_service_curve({mbps(10), msec(5), mbps(2)})
                  .is_concave());
  // Rate-latency (flat then rising) is convex, not concave.
  EXPECT_FALSE(beta(mbps(10), msec(5)).is_concave());
  // The zero curve and any single line are (weakly) concave.
  EXPECT_TRUE(PiecewiseLinear().is_concave());
}

TEST(MinPlus, RateLatencyConvolutionComposes) {
  // beta_{R1,T1} (*) beta_{R2,T2} = beta_{min(R1,R2), T1+T2} — the
  // concatenation result behind pay-bursts-only-once.
  const auto a = beta(mbps(10), msec(4));
  const auto b = beta(mbps(4), msec(6));
  const auto c = a.convolve(b);
  const auto expect = beta(mbps(4), msec(10));
  for (TimeNs t = 0; t < msec(40); t += usec(173)) {
    ASSERT_EQ(c.eval(t), expect.eval(t)) << t;
  }
  EXPECT_EQ(c.tail_rate(), mbps(4));
}

TEST(MinPlus, TokenBucketThroughRateLatencyIsDelayed) {
  // tb(b, r) (*) beta_{R,T} with r <= R: the envelope simply shifted by
  // the latency (flat at b before T).
  const auto tb = PiecewiseLinear::token_bucket(3000, mbps(2));
  const auto sc = beta(mbps(10), msec(7));
  const auto c = tb.convolve(sc);
  const auto expect = tb.delayed(msec(7));
  for (TimeNs t = 0; t < msec(30); t += usec(97)) {
    ASSERT_EQ(c.eval(t), expect.eval(t)) << t;
  }
}

TEST(MinPlus, ConvolutionMatchesBruteForceOnMixedShapes) {
  const PiecewiseLinear curves[] = {
      PiecewiseLinear::token_bucket(9000, mbps(3)),
      beta(mbps(8), msec(2)),
      PiecewiseLinear::from_service_curve({mbps(12), msec(5), mbps(1)}),
      // Non-convex, non-concave: rising, flat, rising faster.
      PiecewiseLinear({Piece{0, 0, mbps(2)}, Piece{msec(2), 500, 0},
                       Piece{msec(6), 500, mbps(5)}}),
  };
  for (const auto& f : curves) {
    for (const auto& g : curves) {
      const auto c = f.convolve(g);
      for (TimeNs t = 0; t < msec(25); t += usec(331)) {
        const Bytes exact = brute_convolve(f, g, t);
        const Bytes got = c.eval(t);
        // Conservative floor: never above exact (modulo eval's own
        // 1-byte floor in the brute force), at most a few bytes below.
        ASSERT_LE(got, sat_add(exact, 1)) << t;
        ASSERT_GE(sat_add(got, 4), exact) << t;
      }
    }
  }
}

TEST(MinPlus, ConvolutionIsAssociativeWithinFloorSlack) {
  const auto f = PiecewiseLinear::token_bucket(4000, mbps(6));
  const auto g = beta(mbps(10), msec(3));
  const auto h = PiecewiseLinear::from_service_curve({mbps(9), msec(4),
                                                      mbps(2)});
  const auto lhs = f.convolve(g).convolve(h);
  const auto rhs = f.convolve(g.convolve(h));
  for (TimeNs t = 0; t < msec(40); t += usec(257)) {
    const Bytes a = lhs.eval(t);
    const Bytes b = rhs.eval(t);
    ASSERT_LE(a > b ? a - b : b - a, 4u) << t;
  }
}

TEST(MinPlus, DeconvolveTokenBucketThroughRateLatency) {
  // tb(b, r) (/) beta_{R,T} = tb(b + r*T, r) exactly; the implementation
  // may round the burst up by <= 2 bytes (ceil + crossing pad).
  const Bytes b = 6000;
  const RateBps r = mbps(2);
  const auto out =
      PiecewiseLinear::token_bucket(b, r).deconvolve(beta(mbps(10), msec(5)));
  ASSERT_TRUE(out.has_value());
  const Bytes exact_burst = b + seg_x2y(msec(5), r);
  EXPECT_GE(out->eval(0), exact_burst);
  EXPECT_LE(out->eval(0), exact_burst + 2);
  EXPECT_EQ(out->tail_rate(), r);
}

TEST(MinPlus, DeconvolveIsConservativeAndTight) {
  const PiecewiseLinear envelopes[] = {
      PiecewiseLinear::token_bucket(8000, mbps(1)),
      // Concave two-piece envelope.
      PiecewiseLinear::from_service_curve({mbps(8), msec(3), mbps(1)})
          .plus(1500),
  };
  const PiecewiseLinear services[] = {
      beta(mbps(10), msec(4)),
      PiecewiseLinear::from_service_curve({mbps(6), msec(2), mbps(3)}),
  };
  for (const auto& f : envelopes) {
    for (const auto& g : services) {
      const auto out = f.deconvolve(g);
      ASSERT_TRUE(out.has_value());
      for (TimeNs t = 0; t < msec(30); t += usec(389)) {
        const Bytes exact = brute_deconvolve(f, g, t);
        // Never below the exact deconvolution (soundness, always)...
        ASSERT_GE(sat_add(out->eval(t), 1), exact) << t;
        // ... and within a few bytes of it for affine envelopes — the
        // analyzer's case.  Multi-piece concave envelopes decompose per
        // component and may legitimately overshoot near t = 0.
        if (f.pieces().size() == 1) {
          ASSERT_LE(out->eval(t), sat_add(exact, 8)) << t;
        }
      }
    }
  }
}

TEST(MinPlus, DeconvolveThenConvolveDominates) {
  // (f (/) g) (*) g >= f — the fundamental duality sanity check.
  const auto f = PiecewiseLinear::token_bucket(5000, mbps(3));
  const auto g = beta(mbps(12), msec(6));
  const auto out = f.deconvolve(g);
  ASSERT_TRUE(out.has_value());
  const auto back = out->convolve(g);
  for (TimeNs t = 0; t < msec(40); t += usec(449)) {
    // Allow the convolution's conservative floor (a few bytes down).
    ASSERT_GE(sat_add(back.eval(t), 4), f.eval(t)) << t;
  }
}

TEST(MinPlus, DeconvolveUnboundedWhenArrivalOutrunsService) {
  const auto fast = PiecewiseLinear::token_bucket(100, mbps(20));
  EXPECT_FALSE(fast.deconvolve(beta(mbps(10), msec(1))).has_value());
  // Non-concave arrival (slope rises mid-curve) whose affine majorant
  // outruns the service tail even though its own tail does not.
  const PiecewiseLinear zigzag({Piece{0, 0, mbps(5)},
                                Piece{msec(1), 625, mbps(20)},
                                Piece{msec(2), 3125, mbps(10)}});
  ASSERT_FALSE(zigzag.is_concave());
  EXPECT_FALSE(zigzag.deconvolve(beta(mbps(10), msec(1))).has_value());
}

TEST(MinPlus, VerticalGapClosedForms) {
  // tb(b, r) vs beta_{R,T} with r <= R: worst backlog at t = T is
  // b + r*T (the bound may round one byte up).
  const Bytes b = 4000;
  const RateBps r = mbps(2);
  const auto gap =
      PiecewiseLinear::token_bucket(b, r).max_vertical_gap(
          beta(mbps(10), msec(5)));
  ASSERT_TRUE(gap.has_value());
  const Bytes exact = b + seg_x2y(msec(5), r);
  EXPECT_GE(*gap, exact);
  EXPECT_LE(*gap, exact + 1);
  // tb vs a plain rate r <= R: worst backlog is the burst itself.
  const auto flat_gap = PiecewiseLinear::token_bucket(b, r).max_vertical_gap(
      PiecewiseLinear::from_service_curve(ServiceCurve::linear(mbps(10))));
  ASSERT_TRUE(flat_gap.has_value());
  EXPECT_EQ(*flat_gap, b);
  // Arrival tail above the service tail: unbounded.
  EXPECT_FALSE(PiecewiseLinear::token_bucket(b, mbps(20))
                   .max_vertical_gap(beta(mbps(10), msec(5)))
                   .has_value());
}

TEST(MinPlus, VerticalGapEqualTailRates) {
  // Equal tails: the gap levels off past the last breakpoint and must be
  // read there, not at infinity.
  const auto a = PiecewiseLinear::token_bucket(2000, mbps(5));
  const auto s = beta(mbps(5), msec(4));
  const auto gap = a.max_vertical_gap(s);
  ASSERT_TRUE(gap.has_value());
  const Bytes exact = 2000 + seg_x2y(msec(4), mbps(5));
  EXPECT_GE(*gap, exact);
  EXPECT_LE(*gap, exact + 1);
}

// Mirror of PR 8's saturation-horizon regressions: enormous rates and
// breakpoints must saturate through the 128-bit paths instead of
// overflowing (UBSan-clean) and stay on the conservative side.
TEST(MinPlus, SaturationHorizonConvolve) {
  const auto huge = PiecewiseLinear(
      {Piece{0, 0, gbps(80)},
       Piece{sec(3600) * 24, kBytesInfinity / 2, gbps(80)}});
  const auto tb = PiecewiseLinear::token_bucket(kBytesInfinity / 4, gbps(40));
  const auto c = tb.convolve(huge);
  // Monotone nondecreasing and below both operands' endpoint terms.
  Bytes prev = 0;
  for (TimeNs t = 0; t < sec(10); t += sec(1)) {
    const Bytes v = c.eval(t);
    ASSERT_GE(v, prev);
    ASSERT_LE(v, sat_add(tb.eval(t), huge.pieces().front().y));
    prev = v;
  }
}

TEST(MinPlus, SaturationHorizonDeconvolve) {
  // A breakpoint far enough out that rho * x would overflow 128 bits
  // saturates the deviation upward (conservative) instead of wrapping.
  const auto service = PiecewiseLinear(
      {Piece{0, 0, 0}, Piece{kTimeInfinity - 1, 0, gbps(80)}});
  const auto out = PiecewiseLinear::token_bucket(1000, gbps(40))
                       .deconvolve(service);
  ASSERT_TRUE(out.has_value());
  // The deviation saturated: the resulting burst is pinned at infinity.
  EXPECT_EQ(out->eval(0), kBytesInfinity);
}

TEST(MinPlus, ConvolveWithZeroCurveCaps) {
  // f (*) 0 = f(0) everywhere (the zero curve absorbs all service).
  const auto tb = PiecewiseLinear::token_bucket(1234, mbps(3));
  const auto c = tb.convolve(PiecewiseLinear());
  for (TimeNs t = 0; t < msec(10); t += usec(503)) {
    ASSERT_EQ(c.eval(t), 1234u) << t;
  }
}

}  // namespace
}  // namespace hfsc
