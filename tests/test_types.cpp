// Unit tests for the fixed-point arithmetic in util/types.hpp.
#include <gtest/gtest.h>

#include "util/types.hpp"

namespace hfsc {
namespace {

TEST(MulDiv, FloorBasics) {
  EXPECT_EQ(muldiv_floor(10, 3, 4), 7u);   // 30/4 = 7.5 -> 7
  EXPECT_EQ(muldiv_floor(0, 123, 7), 0u);
  EXPECT_EQ(muldiv_floor(5, 4, 2), 10u);
}

TEST(MulDiv, CeilBasics) {
  EXPECT_EQ(muldiv_ceil(10, 3, 4), 8u);  // 30/4 = 7.5 -> 8
  EXPECT_EQ(muldiv_ceil(0, 123, 7), 0u);
  EXPECT_EQ(muldiv_ceil(5, 4, 2), 10u);  // exact stays exact
}

TEST(MulDiv, No64BitOverflow) {
  // 1e19-scale product must not wrap: (2^62 * 4) / 8 == 2^61.
  const std::uint64_t big = 1ULL << 62;
  EXPECT_EQ(muldiv_floor(big, 4, 8), 1ULL << 61);
  EXPECT_EQ(muldiv_ceil(big, 4, 8), 1ULL << 61);
}

TEST(MulDiv, SaturatesInsteadOfWrapping) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(muldiv_floor(max, max, 1), max);
  EXPECT_EQ(muldiv_ceil(max, max, 2), max);
}

TEST(Segments, ForwardEvaluation) {
  // 1 MB/s over 1 second = 1e6 bytes.
  EXPECT_EQ(seg_x2y(kNsPerSec, 1'000'000), 1'000'000u);
  // 8 Mb/s = 1e6 B/s over 1 ms = 1000 bytes.
  EXPECT_EQ(seg_x2y(msec(1), mbps(8)), 1000u);
  EXPECT_EQ(seg_x2y(0, mbps(8)), 0u);
  EXPECT_EQ(seg_x2y(msec(1), 0), 0u);
}

TEST(Segments, InverseIsSmallestTime) {
  const RateBps r = mbps(8);  // 1e6 B/s
  const Bytes y = 1000;
  const TimeNs t = seg_y2x(y, r);
  EXPECT_GE(seg_x2y(t, r), y);
  ASSERT_GT(t, 0u);
  EXPECT_LT(seg_x2y(t - 1, r), y);
}

TEST(Segments, InverseEdgeCases) {
  EXPECT_EQ(seg_y2x(0, 0), 0u);
  EXPECT_EQ(seg_y2x(1, 0), kTimeInfinity);
  EXPECT_EQ(seg_y2x(0, 12345), 0u);
}

// Round-trip property over a parameter sweep: y2x(x2y(t)) <= t and
// x2y(y2x(y)) >= y for many (rate, value) combinations.
class SegRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SegRoundTrip, InverseDominatesForward) {
  const RateBps r = GetParam();
  for (Bytes y : {Bytes{1}, Bytes{7}, Bytes{160}, Bytes{1500}, Bytes{65536},
                  Bytes{1'000'000}}) {
    const TimeNs t = seg_y2x(y, r);
    ASSERT_NE(t, kTimeInfinity);
    EXPECT_GE(seg_x2y(t, r), y) << "rate=" << r << " y=" << y;
    if (t > 0) {
      EXPECT_LT(seg_x2y(t - 1, r), y) << "rate=" << r << " y=" << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, SegRoundTrip,
                         ::testing::Values(kbps(8), kbps(64), kbps(333),
                                           mbps(1), mbps(7), mbps(100),
                                           gbps(1), gbps(10), 1ULL, 999ULL));

TEST(Saturation, AddAndSub) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(sat_add(max, 1), max);
  EXPECT_EQ(sat_add(max - 5, 3), max - 2);
  EXPECT_EQ(sat_sub(3, 5), 0u);
  EXPECT_EQ(sat_sub(5, 3), 2u);
}

TEST(Units, Constructors) {
  EXPECT_EQ(kbps(64), 8000u);          // 64 kb/s = 8000 B/s
  EXPECT_EQ(mbps(10), 1'250'000u);
  EXPECT_EQ(gbps(1), 125'000'000u);
  EXPECT_EQ(msec(5), 5'000'000u);
  EXPECT_EQ(sec(2), 2'000'000'000u);
  EXPECT_EQ(usec(3), 3'000u);
}

TEST(Units, TxTime) {
  // 1500 bytes at 1.25e6 B/s (10 Mb/s) = 1.2 ms.
  EXPECT_EQ(tx_time(1500, mbps(10)), msec(1) + usec(200));
}

}  // namespace
}  // namespace hfsc
