// Tests for runtime reconfiguration: queue limits / drops, change_class,
// delete_class.
#include <gtest/gtest.h>

#include "core/auditor.hpp"
#include "core/hfsc.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

TEST(HfscQueueLimit, TailDropsBeyondLimit) {
  Hfsc sched(mbps(10));
  const ClassId c = sched.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(10))));
  sched.set_queue_limit(c, 3);
  for (int i = 0; i < 5; ++i) {
    sched.enqueue(0, Packet{c, 100, 0, static_cast<std::uint64_t>(i)});
  }
  EXPECT_EQ(sched.backlog_packets(), 3u);
  EXPECT_EQ(sched.packets_dropped(c), 2u);
  EXPECT_EQ(sched.bytes_dropped(c), 200u);
  // FIFO order preserved among the survivors.
  EXPECT_EQ(sched.dequeue(0)->seq, 0u);
  EXPECT_EQ(sched.dequeue(0)->seq, 1u);
  EXPECT_EQ(sched.dequeue(0)->seq, 2u);
  EXPECT_EQ(sched.packets_sent(c), 3u);
}

TEST(HfscQueueLimit, LimitBoundsDelayOfOverdrivenClass) {
  // An overdriven class with a short queue keeps bounded delay (losses
  // absorb the excess) while its sibling is unaffected.
  Hfsc sched(mbps(10));
  const ClassId hot = sched.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(2))));
  const ClassId calm = sched.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(8))));
  sched.set_queue_limit(hot, 10);
  Simulator sim(mbps(10), sched);
  sim.add<CbrSource>(hot, mbps(8), 1000, 0, sec(2));   // 4x its share
  sim.add<CbrSource>(calm, mbps(6), 1000, 0, sec(2));
  sim.run_all();
  EXPECT_GT(sched.packets_dropped(hot), 0u);
  // 10 packets * 1000 B at 2 Mb/s = 40 ms worst queueing.
  EXPECT_LT(sim.tracker().max_delay_ms(hot), 45.0);
  EXPECT_LT(sim.tracker().max_delay_ms(calm), 5.0);
  EXPECT_EQ(sched.packets_dropped(calm), 0u);
}

TEST(HfscChange, RaisingTheCurveTakesEffect) {
  Hfsc sched(mbps(10));
  const ClassId a = sched.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(2))));
  const ClassId b = sched.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(8))));
  Simulator sim(mbps(10), sched);
  sim.add<GreedySource>(a, 1000, 4, 0, sec(4));
  sim.add<GreedySource>(b, 1000, 4, 0, sec(4));
  sim.events().schedule(sec(2), [&](TimeNs t) {
    sched.change_class(t, a, ClassConfig::both(ServiceCurve::linear(mbps(8))));
    sched.change_class(t, b, ClassConfig::both(ServiceCurve::linear(mbps(2))));
  });
  sim.run(sec(4));
  const auto& t = sim.tracker();
  EXPECT_NEAR(t.rate_mbps(a, sec(1), sec(2)), 2.0, 0.3);
  EXPECT_NEAR(t.rate_mbps(a, sec(2) + msec(300), sec(4)), 8.0, 0.4);
  EXPECT_NEAR(t.rate_mbps(b, sec(2) + msec(300), sec(4)), 2.0, 0.4);
}

TEST(HfscChange, AddingRtCurveGivesPriority) {
  // Bursty audio (5 x 160 B every 100 ms) with only a 64 kb/s ls curve:
  // each burst drains at the ls pace behind greedy bulk.  At t = 2 s the
  // class gains a concave rt curve (burst within 5 ms) — the burst tail
  // delay collapses.
  Hfsc sched(mbps(10));
  const ClassId audio = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(kbps(64))));
  const ClassId bulk = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(9))));
  Simulator sim(mbps(10), sched);
  std::vector<TraceSource::Item> items;
  for (TimeNs t = 0; t < sec(4); t += msec(100)) {
    for (int i = 0; i < 5; ++i) items.push_back({t, 160});
  }
  sim.add<TraceSource>(audio, items);
  sim.add<GreedySource>(bulk, 1500, 8, 0, sec(4));
  sim.events().schedule(sec(2), [&](TimeNs t) {
    ClassConfig cfg;
    cfg.rt = from_udr(800, msec(5), kbps(64));
    cfg.ls = ServiceCurve::linear(kbps(64));
    sched.change_class(t, audio, cfg);
  });
  SampleSet before, after;
  sim.link().add_departure_hook([&](TimeNs t, const Packet& p) {
    if (p.cls != audio) return;
    (t < sec(2) ? before : after)
        .add(static_cast<double>(t - p.arrival) / 1e6);
  });
  sim.run(sec(4));
  EXPECT_GT(before.max(), 20.0);  // burst tail crawls at the ls pace
  EXPECT_LT(after.max(), 6.3);    // rt burst term takes over
}

TEST(HfscChange, RemovingLsLeavesShapedRtOnly) {
  Hfsc sched(mbps(10));
  const ClassId c = sched.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(2))));
  sched.enqueue(0, Packet{c, 1000, 0, 0});
  sched.change_class(0, c,
                     ClassConfig::real_time_only(ServiceCurve::linear(mbps(2))));
  EXPECT_FALSE(sched.active(c));  // out of the link-sharing tree
  // Still served via the real-time criterion.
  auto p = sched.dequeue(msec(1));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(sched.last_criterion(), Criterion::kRealTime);
}

TEST(HfscDelete, RemovesLeafAndRedistributes) {
  Hfsc sched(mbps(9));
  const ClassId a = sched.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(3))));
  const ClassId b = sched.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(6))));
  Simulator sim(mbps(9), sched);
  sim.add<GreedySource>(a, 1000, 4, 0, sec(4));
  sim.add<GreedySource>(b, 1000, 4, 0, sec(4));
  sim.events().schedule(sec(2), [&](TimeNs) { sched.delete_class(a); });
  sim.run(sec(4));
  EXPECT_TRUE(sched.is_deleted(a));
  // Queued packets were purged and counted.
  EXPECT_GT(sched.packets_dropped(a), 0u);
  const auto& t = sim.tracker();
  EXPECT_NEAR(t.rate_mbps(b, sec(1), sec(2)), 6.0, 0.3);
  EXPECT_NEAR(t.rate_mbps(b, sec(2) + msec(200), sec(4)), 9.0, 0.3);
}

TEST(HfscDelete, SwapRemoveKeepsSiblingBookkeeping) {
  // Deleting a middle child must not corrupt the displaced sibling's
  // parent-heap entry.
  Hfsc sched(mbps(9));
  std::vector<ClassId> kids;
  for (int i = 0; i < 5; ++i) {
    kids.push_back(sched.add_class(
        kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(1)))));
  }
  // Activate all, then delete one in the middle while others are active.
  for (ClassId c : kids) sched.enqueue(0, Packet{c, 500, 0, c});
  sched.delete_class(kids[1]);
  // Drain: the four survivors' packets all come out.
  int got = 0;
  TimeNs now = 0;
  while (auto p = sched.dequeue(now)) {
    ++got;
    now += tx_time(p->len, mbps(9));
    EXPECT_NE(p->cls, kids[1]);
  }
  EXPECT_EQ(got, 4);
  // And the tree still works for new traffic.
  sched.enqueue(now, Packet{kids[4], 800, now, 99});
  EXPECT_TRUE(sched.dequeue(now).has_value());
}

TEST(HfscChange, MidRealTimeServiceKeepsAuditorGreen) {
  // Re-shape a backlogged leaf between two real-time services: its rt
  // curve is re-anchored mid-backlog, and every structural invariant the
  // auditor checks must survive the transition.
  const RateBps link = mbps(10);
  Hfsc sched(link);
  const ClassId org = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(link)));
  const ClassId rt = sched.add_class(
      org, ClassConfig::both(ServiceCurve::linear(mbps(8))));
  const ClassId bg = sched.add_class(
      org, ClassConfig::link_share_only(ServiceCurve::linear(mbps(2))));

  TimeNs now = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    sched.enqueue(now, Packet{rt, 1000, now, i});
    sched.enqueue(now, Packet{bg, 1000, now, 100 + i});
  }
  // First service at t=0 must pick the rt leaf by the real-time
  // criterion (its deadline is due; bg has no guarantee).
  auto p = sched.dequeue(now);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->cls, rt);
  EXPECT_EQ(sched.last_criterion(), Criterion::kRealTime);
  now += tx_time(p->len, link);

  // Mid-service (rt still backlogged, cumul > 0): swap in a concave
  // two-piece curve with a different long-term rate.
  sched.change_class(
      now, rt, ClassConfig::both(ServiceCurve{mbps(9), msec(2), mbps(4)}));
  AuditReport report = audit(sched);
  ASSERT_TRUE(report.ok()) << report.to_string();

  // The leaf keeps its backlog, keeps receiving service, and the tree
  // stays consistent through the drain.
  std::size_t rt_left = 7, bg_left = 8;
  while (sched.backlog_packets() > 0) {
    p = sched.dequeue(now);
    ASSERT_TRUE(p.has_value());
    (p->cls == rt ? rt_left : bg_left)--;
    now += tx_time(p->len, link);
  }
  EXPECT_EQ(rt_left, 0u);
  EXPECT_EQ(bg_left, 0u);
  report = audit(sched);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(HfscDelete, MidRealTimeServiceKeepsAuditorGreen) {
  // Delete a leaf that is backlogged and mid-real-time-service; its
  // packets are purged, the rt eligible set and parent heaps shed it,
  // and the sibling inherits the link cleanly.
  const RateBps link = mbps(10);
  Hfsc sched(link);
  const ClassId org = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(link)));
  const ClassId victim = sched.add_class(
      org, ClassConfig::both(ServiceCurve::linear(mbps(8))));
  const ClassId sibling = sched.add_class(
      org, ClassConfig::both(ServiceCurve::linear(mbps(2))));

  TimeNs now = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    sched.enqueue(now, Packet{victim, 1000, now, i});
    sched.enqueue(now, Packet{sibling, 1000, now, 100 + i});
  }
  auto p = sched.dequeue(now);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->cls, victim);
  EXPECT_EQ(sched.last_criterion(), Criterion::kRealTime);
  now += tx_time(p->len, link);

  sched.delete_class(victim);
  EXPECT_TRUE(sched.is_deleted(victim));
  EXPECT_EQ(sched.packets_dropped(victim), 7u);
  AuditReport report = audit(sched);
  ASSERT_TRUE(report.ok()) << report.to_string();

  // Only the sibling's packets remain and all of them drain.
  std::size_t got = 0;
  while ((p = sched.dequeue(now))) {
    EXPECT_EQ(p->cls, sibling);
    ++got;
    now += tx_time(p->len, link);
  }
  EXPECT_EQ(got, 8u);
  report = audit(sched);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(HfscDelete, ParentBecomesLeafAgain) {
  Hfsc sched(mbps(10));
  const ClassId org = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(10))));
  const ClassId kid = sched.add_class(
      org, ClassConfig::both(ServiceCurve::linear(mbps(10))));
  sched.delete_class(kid);
  EXPECT_TRUE(sched.is_leaf(org));
  // org can now queue packets itself (it has an ls curve).
  sched.enqueue(0, Packet{org, 400, 0, 0});
  EXPECT_TRUE(sched.dequeue(0).has_value());
}

}  // namespace
}  // namespace hfsc
