// Tests for the topology-first scenario language: node blocks, routes,
// timed `at` control events, the new source kinds, delay histograms,
// the JSON report, the Section VII reconstruction and churn at scale.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "sim/scenario.hpp"

namespace hfsc {
namespace {

void expect_parse_error(const std::string& text, const char* needle) {
  std::istringstream in(text);
  try {
    (void)Scenario::parse(in);
    FAIL() << "expected parse error containing '" << needle << "'\n" << text;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

// A two-node skeleton most negative tests below perturb.
const char* kTwoNode = R"(
duration 1s
node a 10Mbps
  class x root ls linear 10Mbps
end
node b 10Mbps
  class x root ls linear 10Mbps
end
route x a b
source cbr x 1Mbps 1000 0s 1s
)";

TEST(ScenarioMultiNode, ParsesNodesRoutesAndResolvesEntry) {
  std::istringstream in(kTwoNode);
  const Scenario sc = Scenario::parse(in);
  EXPECT_TRUE(sc.multi_node);
  ASSERT_EQ(sc.nodes.size(), 2u);
  EXPECT_EQ(sc.nodes[0].name, "a");
  EXPECT_EQ(sc.link_rate, mbps(10));  // first node's rate
  ASSERT_EQ(sc.routes.size(), 1u);
  EXPECT_EQ(sc.routes[0].nodes, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(sc.sources.size(), 1u);
  EXPECT_EQ(sc.sources[0].node, "a");  // routed source enters at hop 1
  EXPECT_EQ(sc.node_hierarchy_spec("a").classes.size(), 1u);
}

TEST(ScenarioMultiNode, SingleNodeFilesStillParseIdentically) {
  std::istringstream in(R"(
link 10Mbps
duration 1s
class a root ls linear 10Mbps
source cbr a 1Mbps 1000 0s 1s
)");
  const Scenario sc = Scenario::parse(in);
  EXPECT_FALSE(sc.multi_node);
  ASSERT_EQ(sc.nodes.size(), 1u);  // implicit node materialized
  EXPECT_EQ(sc.nodes[0].name, "link");
  EXPECT_EQ(sc.classes[0].node, "link");
  EXPECT_EQ(sc.sources[0].node, "link");
}

TEST(ScenarioMultiNode, ParserRejectsBadTopologies) {
  // Route through a node that does not exist.
  expect_parse_error(
      "duration 1s\n"
      "node a 10Mbps\n  class x root ls linear 1Mbps\nend\n"
      "node b 10Mbps\n  class x root ls linear 1Mbps\nend\n"
      "route x a nowhere\n",
      "route through unknown node nowhere");
  // Class missing on the route's first hop.
  expect_parse_error(
      "duration 1s\n"
      "node a 10Mbps\n  class y root ls linear 1Mbps\nend\n"
      "node b 10Mbps\n  class x root ls linear 1Mbps\nend\n"
      "route x a b\n",
      "class x is not declared on its first hop a");
  // Class missing on a later hop.
  expect_parse_error(
      "duration 1s\n"
      "node a 10Mbps\n  class x root ls linear 1Mbps\nend\n"
      "node b 10Mbps\n  class y root ls linear 1Mbps\nend\n"
      "route x a b\n",
      "class x is not declared on hop b");
  expect_parse_error(
      "duration 1s\n"
      "node a 10Mbps\n  class x root ls linear 1Mbps\nend\n"
      "route x a\n",
      "route needs at least two nodes");
  expect_parse_error(
      "duration 1s\n"
      "node a 10Mbps\n  class x root ls linear 1Mbps\nend\n"
      "node b 10Mbps\n  class x root ls linear 1Mbps\nend\n"
      "route x a b\nroute x b a\n",
      "duplicate route for class x");
  expect_parse_error(
      "duration 1s\n"
      "node a 10Mbps\n  class x root ls linear 1Mbps\nend\n"
      "node b 10Mbps\n  class x root ls linear 1Mbps\nend\n"
      "route x a b a\n",
      "route visits node a twice");
  expect_parse_error("duration 1s\nnode a 10Mbps\nnode b 10Mbps\n",
                     "nested node block");
  expect_parse_error("duration 1s\nnode a 10Mbps\nend\nnode a 10Mbps\nend\n",
                     "duplicate node a");
  expect_parse_error("link 10Mbps\nduration 1s\nend\n",
                     "end outside a node block");
  expect_parse_error("link 10Mbps\nduration 1s\nnode a 10Mbps\n",
                     "cannot mix `node` blocks with `link`");
  expect_parse_error("duration 1s\nnode a 10Mbps\nend\nlink 10Mbps\n",
                     "cannot mix `link` with `node` blocks");
  expect_parse_error("duration 1s\nnode a 10Mbps\n"
                     "  class x root ls linear 1Mbps\n",
                     "unterminated node block");
  // Multi-node files scope class/at declarations to blocks.
  expect_parse_error(
      "duration 1s\nnode a 10Mbps\nend\nclass x root ls linear 1Mbps\n",
      "class declared outside a node block");
  // Routes need explicit nodes.
  expect_parse_error(
      "link 10Mbps\nduration 1s\nclass x root ls linear 1Mbps\n"
      "route x a b\n",
      "route needs `node` blocks");
  // A class declared on two nodes without a route can't place a
  // top-level source.
  expect_parse_error(
      "duration 1s\n"
      "node a 10Mbps\n  class x root ls linear 1Mbps\nend\n"
      "node b 10Mbps\n  class x root ls linear 1Mbps\nend\n"
      "source cbr x 1Mbps 1000 0s 1s\n",
      "declared on several nodes");
  // A routed class's source can't enter mid-route.
  expect_parse_error(
      "duration 1s\n"
      "node a 10Mbps\n  class x root ls linear 1Mbps\nend\n"
      "node b 10Mbps\n  class x root ls linear 1Mbps\n"
      "  source cbr x 1Mbps 1000 0s 1s\nend\n"
      "route x a b\n",
      "must enter at its first hop a");
}

TEST(ScenarioMultiNode, ParserRejectsBadTimedEventsAndSources) {
  expect_parse_error("link 10Mbps\nduration 1s\n"
                     "class x root ls linear 1Mbps\n"
                     "at 0.5s explode x\n",
                     "unknown at-directive: explode");
  expect_parse_error("link 10Mbps\nduration 1s\n"
                     "class x root ls linear 1Mbps\n"
                     "at 0.5s class x root ls linear 1Mbps\n",
                     "timed class x duplicates a static class");
  expect_parse_error("link 10Mbps\nduration 1s\n"
                     "class x root ls linear 1Mbps\n"
                     "at 0.5s class y nosuch ls linear 1Mbps\n",
                     "unknown parent class nosuch");
  expect_parse_error("link 10Mbps\nduration 1s\n"
                     "class x root ls linear 1Mbps\n"
                     "at 0.5s delete ghost\n",
                     "unknown class ghost");
  expect_parse_error("link 10Mbps\nduration 1s\n"
                     "class x root ls linear 1Mbps\n"
                     "at 0.5s source cbr ghost 1Mbps 100\n",
                     "unknown class ghost");
  expect_parse_error("link 10Mbps\nduration 1s\n"
                     "class x root ls linear 1Mbps\n"
                     "at 0.5s class y root ls linear 1Mbps shard 2\n",
                     "shard pins are not allowed on timed classes");
  expect_parse_error("link 10Mbps\nduration 1s\n"
                     "class x root ls linear 1Mbps\n"
                     "source pareto x 1Mbps 1000 10ms 10ms 0.9 0s 1s 7\n",
                     "pareto alpha must be > 1");
  expect_parse_error("link 10Mbps\nduration 1s\n"
                     "class x root ls linear 1Mbps\n"
                     "source tcpish x 1000 0 0s 1s\n",
                     "tcpish max window must be > 0");
  // Timed events are scoped like classes in multi-node files.
  expect_parse_error(
      "duration 1s\nnode a 10Mbps\n  class x root ls linear 1Mbps\nend\n"
      "at 0.5s delete x\n",
      "`at` event outside a node block");
}

TEST(ScenarioMultiNode, RunsRoutedTopologyWithEndToEndRows) {
  std::istringstream in(kTwoNode);
  const Scenario sc = Scenario::parse(in);
  const ScenarioResult r = run_scenario(sc);
  ASSERT_EQ(r.nodes.size(), 2u);
  for (const auto& ns : r.nodes) {
    SCOPED_TRACE(ns.name);
    EXPECT_TRUE(ns.conserved());
    EXPECT_EQ(ns.offered, 125u);
    EXPECT_EQ(ns.sent, 125u);
  }
  ASSERT_EQ(r.e2e.size(), 1u);
  EXPECT_EQ(r.e2e[0].cls, "x");
  EXPECT_EQ(r.e2e[0].delivered, 125u);
  // Two hops at 0.8 ms serialization each.
  EXPECT_NEAR(r.e2e[0].mean_delay_ms, 1.6, 0.1);
  // Per-node rows carry their owning node.
  ASSERT_EQ(r.per_class.size(), 2u);
  EXPECT_EQ(r.per_class[0].node, "a");
  EXPECT_EQ(r.per_class[1].node, "b");
  const std::string table = r.to_table();
  EXPECT_NE(table.find("node a"), std::string::npos);
  EXPECT_NE(table.find("end-to-end"), std::string::npos);
  EXPECT_NE(table.find("a>b"), std::string::npos);
}

TEST(ScenarioMultiNode, ShippedTopologyScenariosRunConserved) {
  for (const char* path :
       {"scenarios/backbone.hfsc", "scenarios/churn_soak.hfsc"}) {
    SCOPED_TRACE(path);
    const Scenario sc =
        Scenario::parse_file(std::string(HFSC_SOURCE_DIR) + "/" + path);
    ScenarioRunOptions opts;
    opts.audit_every = 512;  // auditor-clean or the run throws
    const ScenarioResult r = run_scenario(sc, opts);
    EXPECT_TRUE(r.conserved())
        << "offered " << r.offered() << " != sent " << r.sent()
        << " + dropped " << r.dropped() << " + rejected " << r.rejected()
        << " + backlog " << r.backlog();
    for (const auto& ns : r.nodes) {
      EXPECT_TRUE(ns.conserved()) << ns.name;
    }
  }
}

TEST(ScenarioMultiNode, ChurnSoakAdmitsPartiallyAndStaysConserved) {
  const Scenario sc = Scenario::parse_file(std::string(HFSC_SOURCE_DIR) +
                                           "/scenarios/churn_soak.hfsc");
  EXPECT_TRUE(sc.admission);
  const ScenarioResult r = run_scenario(sc);
  // The t=4s flash crowd offers three 4 Mb/s reservations to a 10 Mb/s
  // link: per-class fallback admits two, rejects one.
  EXPECT_EQ(r.classes_rejected, 1u);
  EXPECT_TRUE(r.conserved());
  // Deleted classes keep reporting their traffic.
  bool saw_call1 = false;
  for (const auto& pc : r.per_class) {
    if (pc.name == "call1") {
      saw_call1 = true;
      EXPECT_GT(pc.packets, 0u);
    }
  }
  EXPECT_TRUE(saw_call1);
}

// The paper's Section VII claim, reconstructed: under H-FSC the audio
// class's p99 delay is decoupled from its 64 kb/s reservation; under
// H-PFQ delay stays coupled to rate, so its p99 must be strictly worse.
TEST(ScenarioMultiNode, SectionViiDecouplingHfscBeatsHpfq) {
  const Scenario sc = Scenario::parse_file(std::string(HFSC_SOURCE_DIR) +
                                           "/scenarios/decoupling_vii.hfsc");
  const CompareResult cmp =
      run_compare(sc, {SchedulerKind::kHfsc, SchedulerKind::kHpfq});
  ASSERT_EQ(cmp.runs.size(), 2u);
  auto p99 = [](const ScenarioResult& r, const char* cls) {
    for (const auto& pc : r.per_class) {
      if (pc.name == cls) return pc.p99_delay_ms;
    }
    ADD_FAILURE() << "class " << cls << " missing";
    return 0.0;
  };
  const double hfsc_p99 = p99(cmp.runs[0], "audio");
  const double hpfq_p99 = p99(cmp.runs[1], "audio");
  EXPECT_LT(hfsc_p99, hpfq_p99);
  // And the decoupled delay actually honors the 5 ms service-curve knee.
  EXPECT_LT(hfsc_p99, 6.3);
  const std::string json = cmp.to_json();
  EXPECT_NE(json.find("hfsc-sim-compare-v1"), std::string::npos);
}

TEST(ScenarioMultiNode, DelayHistogramBucketsAreExact) {
  const auto& edges = delay_hist_edges_ms();
  ASSERT_EQ(edges.size(), 25u);
  EXPECT_DOUBLE_EQ(edges.front(), 0.001);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_DOUBLE_EQ(edges[i], edges[i - 1] * 2.0);
  }
  const auto h = delay_histogram({0.0005, 0.001, 0.0015, 1e9});
  ASSERT_EQ(h.size(), edges.size() + 1);
  EXPECT_EQ(h[0], 1u);         // below the first edge
  EXPECT_EQ(h[1], 2u);         // [0.001, 0.002): edge value included
  EXPECT_EQ(h.back(), 1u);     // at/above the last edge
  std::uint64_t total = 0;
  for (const auto c : h) total += c;
  EXPECT_EQ(total, 4u);
}

TEST(ScenarioMultiNode, JsonReportCarriesSchemaAndHistograms) {
  const Scenario sc = Scenario::parse_file(std::string(HFSC_SOURCE_DIR) +
                                           "/scenarios/backbone.hfsc");
  const ScenarioResult r = run_scenario(sc);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"schema\":\"hfsc-sim-report-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"hist_edges_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"hist\""), std::string::npos);
  EXPECT_NE(json.find("\"e2e\""), std::string::npos);
  EXPECT_NE(json.find("\"conserved\":true"), std::string::npos);
  EXPECT_NE(json.find("\"state_digest\""), std::string::npos);
  for (const auto& pc : r.per_class) {
    ASSERT_EQ(pc.hist.size(), delay_hist_edges_ms().size() + 1) << pc.name;
    std::uint64_t total = 0;
    for (const auto c : pc.hist) total += c;
    EXPECT_EQ(total, pc.packets) << pc.name;
  }
}

// Large-scale churn: batches of timed classes (each with its own timed
// source) are created and torn down throughout the run, all through
// Hfsc::Txn with admission on.  The default size keeps CI quick; set
// HFSC_SOAK=1 for the full 100k-flow soak the issue's acceptance
// criterion names.
TEST(ScenarioMultiNode, HundredThousandFlowChurnRunsConserved) {
  const bool soak =
      std::getenv("HFSC_SOAK") && std::string(std::getenv("HFSC_SOAK")) == "1";
  const std::size_t flows = soak ? 100'000 : 5'000;
  const std::size_t batch = 1'000;
  const std::size_t batches = (flows + batch - 1) / batch;
  constexpr std::size_t kStepMs = 100;   // batch cadence
  constexpr std::size_t kLifeMs = 300;   // flow lifetime

  std::ostringstream sc_text;
  sc_text << "link 100Mbps\nduration "
          << (batches * kStepMs + kLifeMs + 200) << "ms\nadmission\n"
          << "class pool root ls linear 90Mbps\n"
          << "class base root ls linear 10Mbps\n"
          << "source cbr base 5Mbps 1000 0s 1s\n";
  for (std::size_t b = 0; b < batches; ++b) {
    const std::size_t born = b * kStepMs;
    for (std::size_t i = 0; i < batch && b * batch + i < flows; ++i) {
      const std::size_t f = b * batch + i;
      // Flat rt curves: admission sums service curves pointwise, so a
      // udr burst slope would oversubscribe the link across a whole
      // 1000-flow batch even when the long-term rates fit.
      sc_text << "at " << born << "ms class f" << f
              << " pool rt linear 8kbps ls linear 64kbps\n"
          << "at " << born << "ms source cbr f" << f << " 64kbps 200\n"
          << "at " << (born + kLifeMs) << "ms delete f" << f << "\n";
    }
  }
  std::istringstream in(sc_text.str());
  const Scenario sc = Scenario::parse(in);
  ScenarioRunOptions opts;
  opts.audit_every = 100'000;  // periodic invariant audit, cheap at scale
  const ScenarioResult r = run_scenario(sc, opts);

  // At most three batches are alive at once (100 ms cadence, 300 ms
  // lifetime, staged deletes freeing capacity first), so admission never
  // rejects: 3000 * 8 kb/s = 24 Mb/s of rt on a 100 Mb/s link.
  EXPECT_EQ(r.classes_rejected, 0u);
  EXPECT_TRUE(r.conserved())
      << "offered " << r.offered() << " != sent " << r.sent() << " + dropped "
      << r.dropped() << " + rejected " << r.rejected() << " + backlog "
      << r.backlog();
  // Every flow that ran delivered traffic: offered covers the base load
  // plus at least a handful of packets per churned flow.
  EXPECT_GT(r.offered(), flows * 5);
  EXPECT_NE(r.state_digest, 0u);
}

}  // namespace
}  // namespace hfsc
