// Randomized differential validation of the min-plus curve algebra
// (curve/piecewise.hpp) against brute-force reference evaluation, plus
// 128-bit saturation regressions near the representable horizon.
//
// Soundness directions under test (the analyzer depends on exactly
// these):
//   - convolve() never exceeds the exact (f (*) g): understating a
//     service curve is conservative, overstating would produce unsound
//     delay bounds.  Tightness: within a few bytes of exact (one
//     <= 1-byte min() floor per fold step).
//   - deconvolve() never falls below the exact (f (/) g): overstating
//     an arrival envelope is conservative.
//   - max_vertical_gap() never understates the sampled arrival/service
//     gap (backlog bounds must cover every instant).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <vector>

#include "curve/piecewise.hpp"

namespace hfsc {
namespace {

using Piece = PiecewiseLinear::Piece;

// Brute-force (f (*) g)(t): the infimum of the linear-in-s objective is
// attained with s on a breakpoint of f or t - s on a breakpoint of g (or
// at the interval ends) — exact modulo eval()'s <= 1-byte floor.
Bytes brute_convolve(const PiecewiseLinear& f, const PiecewiseLinear& g,
                     TimeNs t) {
  Bytes best = kBytesInfinity;
  auto consider = [&](TimeNs s) {
    if (s > t) return;
    best = std::min(best, sat_add(f.eval(s), g.eval(t - s)));
  };
  consider(0);
  consider(t);
  for (const Piece& p : f.pieces()) consider(p.x);
  for (const Piece& p : g.pieces()) {
    if (p.x <= t) consider(t - p.x);
  }
  return best;
}

// Brute-force (f (/) g)(t) = sup_u f(t+u) - g(u), clamped at 0.
Bytes brute_deconvolve(const PiecewiseLinear& f, const PiecewiseLinear& g,
                       TimeNs t) {
  __int128 best = 0;
  auto consider = [&](TimeNs u) {
    const __int128 v = static_cast<__int128>(f.eval(sat_add(t, u))) -
                       static_cast<__int128>(g.eval(u));
    best = std::max(best, v);
  };
  consider(0);
  for (const Piece& p : g.pieces()) consider(p.x);
  for (const Piece& p : f.pieces()) {
    if (p.x > t) consider(p.x - t);
  }
  consider(std::max(f.pieces().back().x, g.pieces().back().x) + sec(2));
  return static_cast<Bytes>(std::max<__int128>(best, 0));
}

// A random service-curve-shaped operand: one to three two-piece curves
// folded with min/sum, covering concave, convex and mixed shapes.
PiecewiseLinear random_curve(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> parts(1, 3);
  std::uniform_int_distribution<int> op(0, 1);
  std::uniform_int_distribution<RateBps> rate(kbps(32), mbps(40));
  std::uniform_int_distribution<TimeNs> dwell(0, msec(12));
  auto piece = [&] {
    return PiecewiseLinear::from_service_curve(
        ServiceCurve{rate(rng), dwell(rng), rate(rng)});
  };
  PiecewiseLinear out = piece();
  const int n = parts(rng);
  for (int i = 1; i < n; ++i) {
    out = op(rng) == 0 ? out.min(piece()) : out.sum(piece());
  }
  return out;
}

TEST(MinPlusFuzz, ConvolveSoundAndTightAgainstBruteForce) {
  std::mt19937_64 rng(0xc0117001dULL);
  for (int iter = 0; iter < 200; ++iter) {
    const PiecewiseLinear f = random_curve(rng);
    const PiecewiseLinear g = random_curve(rng);
    const PiecewiseLinear c = f.convolve(g);
    // Tightness slack: one potential 1-byte floor per min() fold, one
    // fold per operand breakpoint.
    const Bytes slack = f.pieces().size() + g.pieces().size();
    std::uniform_int_distribution<TimeNs> at(0, msec(40));
    for (int probe = 0; probe < 24; ++probe) {
      const TimeNs t = at(rng);
      const Bytes exact = brute_convolve(f, g, t);
      const Bytes got = c.eval(t);
      ASSERT_LE(got, sat_add(exact, 1))
          << "iter " << iter << " t=" << t << " overstates the service";
      ASSERT_GE(sat_add(got, slack), exact)
          << "iter " << iter << " t=" << t << " too loose";
    }
  }
}

TEST(MinPlusFuzz, ConvolveIsCommutativeOnEvaluation) {
  std::mt19937_64 rng(0x5eedULL);
  for (int iter = 0; iter < 100; ++iter) {
    const PiecewiseLinear f = random_curve(rng);
    const PiecewiseLinear g = random_curve(rng);
    const PiecewiseLinear fg = f.convolve(g);
    const PiecewiseLinear gf = g.convolve(f);
    std::uniform_int_distribution<TimeNs> at(0, msec(40));
    for (int probe = 0; probe < 16; ++probe) {
      const TimeNs t = at(rng);
      const Bytes a = fg.eval(t);
      const Bytes b = gf.eval(t);
      ASSERT_LE(a > b ? a - b : b - a, 2u) << "iter " << iter << " t=" << t;
    }
  }
}

TEST(MinPlusFuzz, DeconvolveTokenBucketIsSoundAgainstBruteForce) {
  // Token-bucket envelopes are what the analyzer propagates; for them
  // the decomposition is exact modulo <= 2 bytes of upward rounding.
  std::mt19937_64 rng(0xdecafULL);
  std::uniform_int_distribution<Bytes> burst(1, 20000);
  std::uniform_int_distribution<RateBps> rate(kbps(16), mbps(8));
  for (int iter = 0; iter < 200; ++iter) {
    const PiecewiseLinear f =
        PiecewiseLinear::token_bucket(burst(rng), rate(rng));
    const PiecewiseLinear g = random_curve(rng);
    const auto d = f.deconvolve(g);
    if (f.tail_rate() > g.tail_rate()) continue;  // may be unbounded
    ASSERT_TRUE(d.has_value()) << "iter " << iter;
    std::uniform_int_distribution<TimeNs> at(0, msec(40));
    for (int probe = 0; probe < 24; ++probe) {
      const TimeNs t = at(rng);
      const Bytes exact = brute_deconvolve(f, g, t);
      const Bytes got = d->eval(t);
      ASSERT_GE(sat_add(got, 1), exact)
          << "iter " << iter << " t=" << t << " understates the envelope";
      ASSERT_LE(got, sat_add(exact, 4))
          << "iter " << iter << " t=" << t << " too loose for affine f";
    }
  }
}

TEST(MinPlusFuzz, DeconvolveGeneralEnvelopeNeverUnderstates) {
  std::mt19937_64 rng(0xfadedULL);
  for (int iter = 0; iter < 150; ++iter) {
    const PiecewiseLinear f = random_curve(rng);
    const PiecewiseLinear g = random_curve(rng);
    const auto d = f.deconvolve(g);
    if (!d) {
      // Only legal when the envelope genuinely outruns the service (the
      // majorant fallback may bail early for non-concave envelopes).
      EXPECT_TRUE(f.tail_rate() > g.tail_rate() || !f.is_concave())
          << "iter " << iter;
      continue;
    }
    std::uniform_int_distribution<TimeNs> at(0, msec(40));
    for (int probe = 0; probe < 16; ++probe) {
      const TimeNs t = at(rng);
      ASSERT_GE(sat_add(d->eval(t), 1), brute_deconvolve(f, g, t))
          << "iter " << iter << " t=" << t;
    }
  }
}

TEST(MinPlusFuzz, VerticalGapDominatesSampledGap) {
  std::mt19937_64 rng(0xbac109ULL);
  std::uniform_int_distribution<Bytes> burst(1, 20000);
  std::uniform_int_distribution<RateBps> rate(kbps(16), mbps(8));
  for (int iter = 0; iter < 200; ++iter) {
    const PiecewiseLinear arrival =
        PiecewiseLinear::token_bucket(burst(rng), rate(rng));
    const PiecewiseLinear service = random_curve(rng);
    const auto gap = arrival.max_vertical_gap(service);
    if (arrival.tail_rate() > service.tail_rate()) {
      EXPECT_FALSE(gap.has_value()) << "iter " << iter;
      continue;
    }
    ASSERT_TRUE(gap.has_value()) << "iter " << iter;
    std::uniform_int_distribution<TimeNs> at(0, msec(60));
    for (int probe = 0; probe < 48; ++probe) {
      const TimeNs t = at(rng);
      const Bytes a = arrival.eval(t);
      const Bytes s = service.eval(t);
      if (a > s) {
        ASSERT_GE(sat_add(*gap, 1), a - s) << "iter " << iter << " t=" << t;
      }
    }
  }
}

TEST(MinPlusFuzz, SaturationHorizonStaysConservative) {
  // Operands with breakpoints at the far end of the representable time
  // axis and multi-Gb/s slopes: the 128-bit intermediate products must
  // saturate upward for deconvolution (envelope side) and never
  // overflow into small values for convolution (service side).
  const PiecewiseLinear far_service = PiecewiseLinear::from_service_curve(
      ServiceCurve{gbps(80), kTimeInfinity - 1, gbps(80)});
  const PiecewiseLinear tb =
      PiecewiseLinear::token_bucket(5000, gbps(40));
  const PiecewiseLinear c = tb.convolve(far_service);
  EXPECT_LE(c.eval(msec(1)), tb.eval(msec(1)));
  const auto d = tb.deconvolve(far_service);
  ASSERT_TRUE(d.has_value());
  EXPECT_GE(d->eval(0), tb.eval(0));

  // A service curve whose own values saturate: every derived bound must
  // stay on the conservative side without UB (ASan/UBSan gate this file
  // in the sanitize CI stage).
  const PiecewiseLinear sat_arrival =
      PiecewiseLinear::token_bucket(kBytesInfinity - 1, gbps(100));
  const auto gap = sat_arrival.max_vertical_gap(far_service);
  if (gap) EXPECT_GE(*gap, sat_arrival.eval(0) - far_service.eval(0));
}

}  // namespace
}  // namespace hfsc
