// Edge cases and boundary conditions for H-FSC and the curve machinery.
#include <gtest/gtest.h>

#include "core/hfsc.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

TEST(HfscEdge, BurstOnlyRtCurveFallsBackToLinkShare) {
  // rt = {10 Mb/s for 2 ms, then 0}: only the first 2500 bytes of each
  // backlog period carry a deadline; afterwards D^{-1} is infinite and
  // the class lives off its ls curve.
  Hfsc sched(mbps(10));
  ClassConfig cfg;
  cfg.rt = ServiceCurve{mbps(10), msec(2), 0};
  cfg.ls = ServiceCurve::linear(mbps(1));
  const ClassId c = sched.add_class(kRootClass, cfg);
  const ClassId bulk = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(9))));
  Simulator sim(mbps(10), sched);
  sim.add<GreedySource>(c, 1000, 8, 0, sec(1));
  sim.add<GreedySource>(bulk, 1500, 8, 0, sec(1));
  sim.run(sec(1));
  // The class is not starved (ls keeps it at ~1 Mb/s) and nothing hangs
  // on the infinite deadlines.
  EXPECT_NEAR(sim.tracker().rate_mbps(c, msec(100), sec(1)), 1.0, 0.3);
  EXPECT_GT(sched.rt_selections(), 0u);
}

TEST(HfscEdge, OneByteAndJumboPacketsCoexist) {
  Hfsc sched(mbps(10));
  const ClassId tiny = sched.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(5))));
  const ClassId jumbo = sched.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(5))));
  Simulator sim(mbps(10), sched);
  sim.add<CbrSource>(tiny, kbps(80), 1, 0, sec(1));      // 1-byte packets
  sim.add<CbrSource>(jumbo, mbps(4), 9000, 0, sec(1));   // jumbograms
  sim.run_all();
  EXPECT_EQ(sim.tracker().packets(tiny), 10000u);
  EXPECT_GT(sim.tracker().packets(jumbo), 50u);
  EXPECT_TRUE(sched.empty());
}

TEST(HfscEdge, GigabitRatesAndMicrosecondCurves) {
  // High-speed regime: 10 Gb/s link, 50 us delay targets — exercises the
  // fixed-point paths far from the default test scales.
  const RateBps link = gbps(10);
  Hfsc sched(link);
  const ClassId rpc = sched.add_class(
      kRootClass, ClassConfig::both(from_udr(4096, usec(50), gbps(1))));
  const ClassId bg = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(gbps(9))));
  Simulator sim(link, sched);
  sim.add<CbrSource>(rpc, mbps(800), 4096, 0, msec(100));
  sim.add<GreedySource>(bg, 9000, 16, 0, msec(100));
  sim.run(msec(100));
  EXPECT_LT(sim.tracker().max_delay_ms(rpc), 0.06);  // 50 us + one jumbo
  EXPECT_GT(sim.tracker().rate_mbps(bg, msec(10), msec(100)), 8500.0);
}

TEST(HfscEdge, SimultaneousActivationTiesAreDeterministic) {
  // Many classes activating at the same instant with identical curves:
  // ties must break deterministically (by id) and service stays equal.
  Hfsc sched(mbps(10));
  std::vector<ClassId> cls;
  for (int i = 0; i < 10; ++i) {
    cls.push_back(sched.add_class(
        kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(1)))));
  }
  for (int round = 0; round < 3; ++round) {
    for (ClassId c : cls) {
      sched.enqueue(0, Packet{c, 1000, 0,
                              static_cast<std::uint64_t>(round)});
    }
  }
  std::vector<ClassId> order;
  TimeNs now = 0;
  while (auto p = sched.dequeue(now)) {
    order.push_back(p->cls);
    now += tx_time(p->len, mbps(10));
  }
  ASSERT_EQ(order.size(), 30u);
  // Every class appears exactly once per round of 10.
  for (int round = 0; round < 3; ++round) {
    std::vector<ClassId> slice(order.begin() + round * 10,
                               order.begin() + (round + 1) * 10);
    std::sort(slice.begin(), slice.end());
    EXPECT_EQ(slice, cls) << "round " << round;
  }
}

TEST(HfscEdge, ReactivationAtSameTimestamp) {
  // A class that drains and refills at the identical nanosecond must not
  // confuse the activation bookkeeping.
  Hfsc sched(mbps(10));
  const ClassId c = sched.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(10))));
  sched.enqueue(msec(1), Packet{c, 100, msec(1), 0});
  auto p = sched.dequeue(msec(1));
  ASSERT_TRUE(p.has_value());
  sched.enqueue(msec(1), Packet{c, 100, msec(1), 1});
  p = sched.dequeue(msec(1));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seq, 1u);
  EXPECT_TRUE(sched.empty());
}

TEST(HfscEdge, VeryLongIdleDoesNotOverflowCurves) {
  // Hours of virtual idle between bursts: the saturating arithmetic must
  // keep deadlines/virtual times sane.
  Hfsc sched(mbps(10));
  const ClassId c = sched.add_class(
      kRootClass, ClassConfig::both(ServiceCurve{mbps(8), msec(1), kbps(64)}));
  TimeNs now = 0;
  for (int burst = 0; burst < 5; ++burst) {
    sched.enqueue(now, Packet{c, 500, now, static_cast<std::uint64_t>(burst)});
    auto p = sched.dequeue(now);
    ASSERT_TRUE(p.has_value()) << "burst " << burst;
    now += sec(3600);  // an hour of idle
  }
  EXPECT_TRUE(sched.empty());
}

TEST(HfscEdge, InterleavedRtAndLsServiceKeepsCountersConsistent) {
  Hfsc sched(mbps(10));
  const ClassId mixed = sched.add_class(
      kRootClass, ClassConfig::both(ServiceCurve{mbps(6), msec(2), mbps(2)}));
  const ClassId ls_only = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(8))));
  Simulator sim(mbps(10), sched);
  sim.add<OnOffSource>(mixed, mbps(8), 700, msec(5), msec(5), 0, sec(1), 3);
  sim.add<GreedySource>(ls_only, 1500, 6, 0, sec(1));
  sim.run(sec(1));
  // total work >= rt work for the mixed class; ls-only never uses rt.
  EXPECT_GE(sched.total_work(mixed), sched.rt_work(mixed));
  EXPECT_GT(sched.rt_work(mixed), 0u);
  EXPECT_EQ(sched.rt_work(ls_only), 0u);
  EXPECT_EQ(sched.total_work(kRootClass),
            sched.total_work(mixed) + sched.total_work(ls_only));
}

}  // namespace
}  // namespace hfsc
