// Randomized operation fuzzing and long-run stress for H-FSC.
//
// The fuzzer drives a random hierarchy with interleaved enqueues,
// dequeues, idle gaps and runtime reconfigurations, checking structural
// invariants after every step:
//   * packet/byte conservation (in == out + queued + dropped),
//   * per-class FIFO order,
//   * only backlogged leaves are served,
//   * virtual times never decrease,
//   * the scheduler drains completely when asked.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/hfsc.hpp"
#include "sim/guarantee_checker.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace hfsc {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  int num_orgs;
  int leaves_per_org;
  bool reconfigure;
};

class HfscFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(HfscFuzz, InvariantsHoldUnderRandomOps) {
  const auto [seed, num_orgs, leaves_per_org, reconfigure] = GetParam();
  Rng rng(seed);
  const RateBps link = mbps(100);
  Hfsc sched(link);

  std::vector<ClassId> leaves;
  std::vector<ClassId> all;
  for (int o = 0; o < num_orgs; ++o) {
    const ClassId org = sched.add_class(
        kRootClass,
        ClassConfig::link_share_only(ServiceCurve::linear(
            link / static_cast<RateBps>(num_orgs))));
    all.push_back(org);
    for (int l = 0; l < leaves_per_org; ++l) {
      const RateBps share =
          link / static_cast<RateBps>(num_orgs * leaves_per_org);
      ClassConfig cfg;
      switch (rng.uniform(0, 2)) {
        case 0:
          cfg = ClassConfig::both(
              ServiceCurve{share * 2, msec(1) + rng.uniform(0, msec(5)),
                           1 + share / 2});
          break;
        case 1:
          cfg = ClassConfig::link_share_only(ServiceCurve::linear(share));
          break;
        case 2:
          cfg = ClassConfig::both(
              ServiceCurve{0, rng.uniform(0, msec(5)), share});
          break;
      }
      const ClassId leaf = sched.add_class(org, cfg);
      if (rng.chance(0.3)) sched.set_queue_limit(leaf, 8);
      leaves.push_back(leaf);
      all.push_back(leaf);
    }
  }

  TimeNs now = 0;
  std::uint64_t seq = 0;
  std::uint64_t in_pkts = 0, out_pkts = 0;
  Bytes in_bytes = 0, out_bytes = 0;
  std::map<ClassId, std::uint64_t> last_seq;       // FIFO check
  std::map<ClassId, std::size_t> queued;           // per-leaf backlog model
  std::map<ClassId, TimeNs> last_vt;               // vt monotonicity

  auto check_vts = [&] {
    for (ClassId c : all) {
      const TimeNs vt = sched.vtime(c);
      auto [it, fresh] = last_vt.try_emplace(c, vt);
      if (!fresh) {
        ASSERT_GE(vt, it->second) << "vt went backwards for class " << c;
        it->second = vt;
      }
    }
  };

  for (int step = 0; step < 20000; ++step) {
    const int op = static_cast<int>(rng.uniform(0, 9));
    if (op <= 3) {  // enqueue
      const ClassId cls =
          leaves[rng.uniform(0, leaves.size() - 1)];
      const Bytes len = 40 + rng.uniform(0, 1460);
      const std::uint64_t dropped_before = sched.packets_dropped(cls);
      sched.enqueue(now, Packet{cls, len, now, seq++});
      if (sched.packets_dropped(cls) == dropped_before) {
        ++in_pkts;
        in_bytes += len;
        ++queued[cls];
      }
    } else if (op <= 7) {  // dequeue
      const auto p = sched.dequeue(now);
      if (p) {
        ++out_pkts;
        out_bytes += p->len;
        ASSERT_GT(queued[p->cls], 0u) << "served an empty leaf";
        --queued[p->cls];
        auto [it, fresh] = last_seq.try_emplace(p->cls, p->seq);
        if (!fresh) {
          ASSERT_GT(p->seq, it->second) << "FIFO violated in " << p->cls;
          it->second = p->seq;
        }
        // Model the wire: time advances by the serialization delay.
        now += tx_time(p->len, link);
      } else {
        // Refusal must be explainable: either empty or shaped.
        if (!sched.empty()) {
          const TimeNs wake = sched.next_wakeup(now);
          ASSERT_NE(wake, kTimeInfinity) << "stuck with backlog";
          now = std::max(now + 1, wake);
        }
      }
    } else if (op == 8) {  // idle gap
      now += rng.uniform(0, msec(2));
    } else if (reconfigure) {  // occasional curve change
      const ClassId cls = leaves[rng.uniform(0, leaves.size() - 1)];
      const RateBps share =
          link / static_cast<RateBps>(num_orgs * leaves_per_org);
      sched.change_class(
          now, cls,
          ClassConfig::both(ServiceCurve{
              share * (1 + rng.uniform(0, 2)),
              msec(1) + rng.uniform(0, msec(4)), 1 + share / 2}));
    }
    ASSERT_EQ(in_pkts - out_pkts, sched.backlog_packets()) << "step " << step;
    ASSERT_EQ(in_bytes - out_bytes, sched.backlog_bytes()) << "step " << step;
    if (step % 64 == 0) check_vts();
  }

  // Drain everything.
  int guard = 0;
  while (!sched.empty()) {
    const auto p = sched.dequeue(now);
    if (p) {
      ++out_pkts;
      now += tx_time(p->len, link);
    } else {
      const TimeNs wake = sched.next_wakeup(now);
      ASSERT_NE(wake, kTimeInfinity);
      now = std::max(now + 1, wake);
    }
    ASSERT_LT(++guard, 2'000'000) << "drain did not terminate";
  }
  EXPECT_EQ(in_pkts, out_pkts);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, HfscFuzz,
    ::testing::Values(FuzzCase{1, 2, 3, false}, FuzzCase{2, 3, 2, false},
                      FuzzCase{3, 1, 6, false}, FuzzCase{4, 4, 4, false},
                      FuzzCase{5, 2, 3, true}, FuzzCase{6, 3, 3, true},
                      FuzzCase{7, 1, 2, true}, FuzzCase{8, 5, 5, true}));

TEST(HfscStress, QuarterMillionPacketsThreeLevels) {
  // A sustained high-load run through a three-level hierarchy; checks
  // conservation, one leaf's guarantee, and that the run completes
  // quickly enough to live in the default test suite.
  const RateBps link = mbps(400);
  Hfsc sched(link);
  std::vector<ClassId> leaves;
  // Feasible by Section II's condition: 16 leaves x {25 Mb/s, 5 ms,
  // 20 Mb/s} sums to {400, 5 ms, 320} <= the 400 Mb/s link curve.
  const ServiceCurve rt_sc{mbps(25), msec(5), mbps(20)};
  for (int o = 0; o < 4; ++o) {
    const ClassId org = sched.add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(100))));
    for (int g = 0; g < 2; ++g) {
      const ClassId grp = sched.add_class(
          org, ClassConfig::link_share_only(ServiceCurve::linear(mbps(50))));
      for (int l = 0; l < 2; ++l) {
        leaves.push_back(sched.add_class(grp, ClassConfig::both(rt_sc)));
      }
    }
  }
  ASSERT_EQ(leaves.size(), 16u);

  Simulator sim(link, sched);
  GuaranteeChecker checker(rt_sc, tx_time(1500, link) + usec(2));
  const ClassId watched = leaves[5];
  sim.link().add_arrival_hook([&](TimeNs t, const Packet& p) {
    if (p.cls == watched) checker.on_arrival(t, p.len);
  });
  sim.link().add_departure_hook([&](TimeNs t, const Packet& p) {
    if (p.cls == watched) checker.on_departure(t, p.len);
  });
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    if (i % 2 == 0) {
      sim.add<GreedySource>(leaves[i], 1500, 6, 0, sec(6));
    } else {
      sim.add<OnOffSource>(leaves[i], mbps(60), 800, msec(10), msec(10), 0,
                           sec(6), 100 + i);
    }
  }
  sim.run(sec(6));

  std::uint64_t total = 0;
  for (ClassId c : leaves) total += sim.tracker().packets(c);
  EXPECT_GT(total, 250'000u);
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().size() << " violations, max deficit "
      << checker.max_deficit();
  // Work conservation at saturation.
  EXPECT_GT(sim.link().busy_time(), sec(6) - msec(5));
}

}  // namespace
}  // namespace hfsc
