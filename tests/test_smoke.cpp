// Cross-module smoke test: a tiny hierarchy on a simulated link.
#include <gtest/gtest.h>

#include "core/hfsc.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

TEST(Smoke, HfscDeliversEverything) {
  Hfsc sched(mbps(10));
  const ClassId a =
      sched.add_class(kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(5))));
  const ClassId b =
      sched.add_class(kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(5))));

  Simulator sim(mbps(10), sched);
  sim.add<CbrSource>(a, mbps(4), 1000, 0, sec(1));
  sim.add<CbrSource>(b, mbps(4), 1000, 0, sec(1));
  sim.run_all();

  EXPECT_GT(sim.tracker().packets(a), 400u);
  EXPECT_GT(sim.tracker().packets(b), 400u);
  EXPECT_TRUE(sched.empty());
}

}  // namespace
}  // namespace hfsc
