// Tests for the scheduler-agnostic hierarchy layer
// (config/hierarchy_spec.hpp): spec validation, the per-family compilers
// and their documented lossy-mapping rules, strict mode, and the
// guarantee that a spec-compiled Hfsc is bit-identical to one built by
// hand through the raw API.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "config/hierarchy_spec.hpp"
#include "core/checkpoint.hpp"
#include "core/hfsc.hpp"
#include "util/errors.hpp"

namespace hfsc {
namespace {

ServiceCurve audio_curve() { return from_udr(160, msec(5), kbps(64)); }

// See GoldenDigestRegression below; regenerate by printing
// state_digest() after the fixed drive when a justified semantic change
// lands.
constexpr std::uint64_t kGoldenDigest = 0xd842d0542182f937;  // format v2

// The Fig. 1-style hierarchy used throughout: two organizations, an
// audio leaf with a concave curve, data leaves, an upper-limited leaf.
HierarchySpec fig1_spec() {
  HierarchySpec spec;
  HierarchySpec::ClassSpec cmu;
  cmu.name = "cmu";
  cmu.ls = ServiceCurve::linear(mbps(25));
  spec.add(cmu);
  HierarchySpec::ClassSpec pitt;
  pitt.name = "pitt";
  pitt.ls = ServiceCurve::linear(mbps(20));
  spec.add(pitt);
  HierarchySpec::ClassSpec audio;
  audio.name = "audio";
  audio.parent = "cmu";
  audio.rt = audio.ls = audio_curve();
  spec.add(audio);
  HierarchySpec::ClassSpec data;
  data.name = "data";
  data.parent = "cmu";
  data.ls = ServiceCurve::linear(mbps(20));
  data.qlimit = 50;
  spec.add(data);
  HierarchySpec::ClassSpec pitt_data;
  pitt_data.name = "pitt_data";
  pitt_data.parent = "pitt";
  pitt_data.ls = ServiceCurve::linear(mbps(20));
  pitt_data.ul = ServiceCurve::linear(mbps(10));
  spec.add(pitt_data);
  return spec;
}

// ---------------------------------------------------------------- add()

TEST(HierarchySpecAdd, RejectsDuplicateNames) {
  HierarchySpec spec;
  HierarchySpec::ClassSpec a;
  a.name = "a";
  a.ls = ServiceCurve::linear(mbps(1));
  spec.add(a);
  try {
    spec.add(a);
    FAIL() << "duplicate accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kInvalidArgument);
    EXPECT_NE(std::string(e.what()).find("duplicate class 'a'"),
              std::string::npos);
  }
}

TEST(HierarchySpecAdd, RejectsReservedRootName) {
  HierarchySpec spec;
  HierarchySpec::ClassSpec r;
  r.name = "root";
  r.ls = ServiceCurve::linear(mbps(1));
  EXPECT_THROW(spec.add(r), Error);
}

TEST(HierarchySpecAdd, RejectsChildBeforeParent) {
  HierarchySpec spec;
  HierarchySpec::ClassSpec c;
  c.name = "child";
  c.parent = "missing";
  c.ls = ServiceCurve::linear(mbps(1));
  try {
    spec.add(c);
    FAIL() << "orphan accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kInvalidClass);
    EXPECT_NE(std::string(e.what()).find("not declared before"),
              std::string::npos);
  }
}

TEST(HierarchySpecAdd, RequiresSomeService) {
  HierarchySpec spec;
  HierarchySpec::ClassSpec c;
  c.name = "empty";
  try {
    spec.add(c);
    FAIL() << "serviceless class accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kMissingCurve);
  }
}

TEST(HierarchySpecAdd, RejectsUnsupportedCurveShapes) {
  HierarchySpec spec;
  HierarchySpec::ClassSpec c;
  c.name = "bad";
  // Convex with a sloped first segment: outside the two-piece algebra.
  c.ls = ServiceCurve{kbps(64), msec(5), mbps(10)};
  try {
    spec.add(c);
    FAIL() << "unsupported shape accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kUnsupportedCurve);
  }
}

TEST(HierarchySpecAdd, ExplicitRateAloneSuffices) {
  HierarchySpec spec;
  HierarchySpec::ClassSpec c;
  c.name = "ratelimited";
  c.rate = mbps(3);
  spec.add(c);
  EXPECT_EQ(spec.classes.at(0).share_rate(), mbps(3));
}

TEST(HierarchySpec, IsLeaf) {
  const HierarchySpec spec = fig1_spec();
  EXPECT_FALSE(spec.is_leaf("cmu"));
  EXPECT_FALSE(spec.is_leaf("pitt"));
  EXPECT_TRUE(spec.is_leaf("audio"));
  EXPECT_TRUE(spec.is_leaf("pitt_data"));
}

// ---------------------------------------------- SchedulerKind round trip

TEST(SchedulerKind, TokensRoundTrip) {
  for (const SchedulerKind k : all_scheduler_kinds()) {
    const auto back = parse_scheduler_kind(to_string(k));
    ASSERT_TRUE(back.has_value()) << to_string(k);
    EXPECT_EQ(*back, k);
  }
  EXPECT_EQ(parse_scheduler_kind("virtualclock"),
            SchedulerKind::kVirtualClock);
  EXPECT_FALSE(parse_scheduler_kind("wfq").has_value());
  EXPECT_FALSE(parse_scheduler_kind("").has_value());
}

// --------------------------------------- H-FSC: exactness and bit-identity

// The spec compiler must replicate the raw construction call-for-call:
// same ids, same state digest before traffic, same dequeue sequence and
// same digest after identical traffic.
TEST(HierarchySpecHfsc, DigestIdenticalToRawApi) {
  const RateBps link = mbps(45);

  Hfsc raw(link);
  const ClassId cmu = raw.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(25))));
  const ClassId pitt = raw.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(20))));
  const ClassId audio = raw.add_class(cmu, ClassConfig::both(audio_curve()));
  const ClassId data = raw.add_class(
      cmu, ClassConfig::link_share_only(ServiceCurve::linear(mbps(20))));
  raw.set_queue_limit(data, 50);
  const ClassId pitt_data = raw.add_class(
      pitt, ClassConfig{ServiceCurve{}, ServiceCurve::linear(mbps(20)),
                        ServiceCurve::linear(mbps(10))});

  const HierarchySpec spec = fig1_spec();
  HierarchySpec::IdMap ids;
  std::vector<std::string> notes;
  const std::unique_ptr<Hfsc> built = spec.build_hfsc(link, &ids, &notes);

  EXPECT_TRUE(notes.empty());  // H-FSC expresses the full spec
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(ids.at("cmu"), cmu);
  EXPECT_EQ(ids.at("audio"), audio);
  EXPECT_EQ(ids.at("pitt_data"), pitt_data);
  EXPECT_EQ(state_digest(raw), state_digest(*built));

  // Identical traffic must produce the identical dequeue sequence and
  // leave both instances digest-identical.
  const ClassId leaves[] = {audio, data, pitt_data};
  TimeNs now = 0;
  std::uint64_t seq = 0;
  for (int round = 0; round < 50; ++round) {
    for (const ClassId c : leaves) {
      const Packet p{c, 1000, now, seq++};
      raw.enqueue(now, p);
      built->enqueue(now, p);
    }
    now += usec(300);
    for (int k = 0; k < 2; ++k) {
      const auto a = raw.dequeue(now);
      const auto b = built->dequeue(now);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        EXPECT_EQ(a->cls, b->cls);
        EXPECT_EQ(a->seq, b->seq);
      }
    }
  }
  EXPECT_EQ(state_digest(raw), state_digest(*built));
}

TEST(HierarchySpecHfsc, CompileCheckpointRestoreRoundTrips) {
  const HierarchySpec spec = fig1_spec();
  HierarchySpec::Compiled compiled =
      spec.compile(SchedulerKind::kHfsc, mbps(45));
  ASSERT_NE(compiled.hfsc, nullptr);

  TimeNs now = 0;
  std::uint64_t seq = 0;
  for (int i = 0; i < 40; ++i) {
    compiled.sched->enqueue(now, Packet{compiled.ids.at("audio"), 160, now,
                                        seq++});
    compiled.sched->enqueue(now,
                            Packet{compiled.ids.at("data"), 1500, now, seq++});
    now += usec(500);
    compiled.sched->dequeue(now);
  }

  std::stringstream buf;
  checkpoint(*compiled.hfsc, buf);
  const Hfsc restored = restore_checkpoint(buf);
  EXPECT_EQ(state_digest(*compiled.hfsc), state_digest(restored));
  EXPECT_EQ(compiled.hfsc->backlog_packets(), restored.backlog_packets());
}

// Locks the absolute dequeue behaviour of a spec-compiled Hfsc: a fixed
// hierarchy and a fixed drive must keep producing the same state digest
// forever.  If this constant moves, the refactor changed H-FSC semantics
// (not just structure) and the change must be justified.
TEST(HierarchySpecHfsc, GoldenDigestRegression) {
  const HierarchySpec spec = fig1_spec();
  HierarchySpec::Compiled compiled =
      spec.compile(SchedulerKind::kHfsc, mbps(45));
  TimeNs now = 0;
  std::uint64_t seq = 0;
  const ClassId leaves[] = {compiled.ids.at("audio"), compiled.ids.at("data"),
                            compiled.ids.at("pitt_data")};
  for (int round = 0; round < 200; ++round) {
    for (const ClassId c : leaves) {
      compiled.sched->enqueue(now, Packet{c, 1000, now, seq++});
    }
    now += usec(267);
    compiled.sched->dequeue(now);
  }
  EXPECT_EQ(state_digest(*compiled.hfsc), kGoldenDigest);
}

// ----------------------------------------------- H-PFQ / CBQ mapping rules

TEST(HierarchySpecHpfq, MapsRatesAndRecordsLossNotes) {
  const HierarchySpec spec = fig1_spec();
  HierarchySpec::IdMap ids;
  std::vector<std::string> notes;
  const std::unique_ptr<HPfq> sched = spec.build_hpfq(mbps(45), &ids, &notes);

  ASSERT_EQ(ids.size(), 5u);  // hierarchy preserved, interior included
  EXPECT_EQ(sched->name(), "H-PFQ");
  // audio's concave curve degraded, pitt_data's ul dropped, data's qlimit
  // dropped: three distinct documented losses.
  auto has_note = [&](const char* frag) {
    return std::any_of(notes.begin(), notes.end(), [&](const std::string& n) {
      return n.find(frag) != std::string::npos;
    });
  };
  EXPECT_TRUE(has_note("'audio': non-linear"));
  EXPECT_TRUE(has_note("'pitt_data': ul curve dropped"));
  EXPECT_TRUE(has_note("'data': queue limit dropped"));

  // The compiled scheduler is live: traffic to a leaf flows.
  TimeNs now = 0;
  sched->enqueue(now, Packet{ids.at("audio"), 160, now, 0});
  const auto p = sched->dequeue(now);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->cls, ids.at("audio"));
}

TEST(HierarchySpecCbq, UlCurveDisablesBorrowingAndClampsRate) {
  const HierarchySpec spec = fig1_spec();
  HierarchySpec::IdMap ids;
  std::vector<std::string> notes;
  const std::unique_ptr<Cbq> sched = spec.build_cbq(mbps(45), &ids, &notes);
  ASSERT_EQ(ids.size(), 5u);
  const bool ul_note = std::any_of(
      notes.begin(), notes.end(), [](const std::string& n) {
        return n.find("'pitt_data': ul curve became borrow=off") !=
               std::string::npos;
      });
  EXPECT_TRUE(ul_note);
  // The clamp picked min(ls rate 20Mbps, ul rate 10Mbps): with the link
  // otherwise idle, a borrow=off class is still served when underlimit.
  TimeNs now = 0;
  sched->enqueue(now, Packet{ids.at("pitt_data"), 1500, now, 0});
  EXPECT_TRUE(sched->dequeue(now).has_value());
}

TEST(HierarchySpecRateBased, PureBurstCurveIsTypedError) {
  HierarchySpec spec;
  HierarchySpec::ClassSpec c;
  c.name = "burst";
  c.rt = ServiceCurve{mbps(10), msec(5), 0};  // m2 == 0: no long-term rate
  spec.add(c);
  try {
    spec.build_hpfq(mbps(45));
    FAIL() << "zero long-term rate accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kMissingCurve);
    EXPECT_NE(std::string(e.what()).find("'burst'"), std::string::npos);
  }
}

// ----------------------------------------------------------- strict mode

TEST(HierarchySpecStrict, RejectsCurveDegradation) {
  const HierarchySpec spec = fig1_spec();
  HierarchySpec::CompileOptions opts;
  opts.strict = true;
  try {
    spec.build_hpfq(mbps(45), nullptr, nullptr, opts);
    FAIL() << "strict mode let a lossy mapping through";
  } catch (const Error& e) {
    // audio's non-linear curve is the first loss in declaration order.
    EXPECT_EQ(e.code(), Errc::kUnsupportedCurve);
  }
}

TEST(HierarchySpecStrict, RejectsFlattening) {
  const HierarchySpec spec = fig1_spec();
  HierarchySpec::CompileOptions opts;
  opts.strict = true;
  try {
    spec.build_drr(mbps(45), nullptr, nullptr, opts);
    FAIL() << "strict mode let an interior drop through";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kInvalidArgument);
    EXPECT_NE(std::string(e.what()).find("interior class dropped"),
              std::string::npos);
  }
}

TEST(HierarchySpecStrict, ExactMappingStillCompiles) {
  const HierarchySpec spec = fig1_spec();
  HierarchySpec::CompileOptions opts;
  opts.strict = true;
  EXPECT_NO_THROW(spec.build_hfsc(mbps(45), nullptr, nullptr, opts));
}

// ------------------------------------------------------- flat families

TEST(HierarchySpecFlat, InteriorClassesDropWithNotes) {
  const HierarchySpec spec = fig1_spec();
  for (const SchedulerKind kind :
       {SchedulerKind::kDrr, SchedulerKind::kSced,
        SchedulerKind::kVirtualClock}) {
    HierarchySpec::Compiled compiled = spec.compile(kind, mbps(45));
    EXPECT_EQ(compiled.ids.count("cmu"), 0u) << to_string(kind);
    EXPECT_EQ(compiled.ids.count("pitt"), 0u) << to_string(kind);
    EXPECT_EQ(compiled.ids.count("audio"), 1u) << to_string(kind);
    const auto dropped = std::count_if(
        compiled.notes.begin(), compiled.notes.end(),
        [](const std::string& n) {
          return n.find("interior class dropped") != std::string::npos;
        });
    EXPECT_EQ(dropped, 2) << to_string(kind);
    // Each leaf is live under the flat scheduler.
    TimeNs now = 0;
    compiled.sched->enqueue(now, Packet{compiled.ids.at("audio"), 160, now, 0});
    EXPECT_TRUE(compiled.sched->dequeue(now).has_value()) << to_string(kind);
  }
}

TEST(HierarchySpecFifo, AssignsSyntheticLeafIds) {
  const HierarchySpec spec = fig1_spec();
  HierarchySpec::Compiled compiled =
      spec.compile(SchedulerKind::kFifo, mbps(45));
  // Leaves in declaration order get ids 1..n; interiors are absent.
  ASSERT_EQ(compiled.ids.size(), 3u);
  EXPECT_EQ(compiled.ids.at("audio"), 1u);
  EXPECT_EQ(compiled.ids.at("data"), 2u);
  EXPECT_EQ(compiled.ids.at("pitt_data"), 3u);
  EXPECT_FALSE(compiled.notes.empty());
}

// ------------------------------------------------------- capabilities

TEST(SchedulerCapabilities, MatchTheMatrix) {
  const HierarchySpec spec = fig1_spec();
  const struct {
    SchedulerKind kind;
    bool hierarchy, nonlinear, decoupled, shaping, upper, drops;
  } expect[] = {
      {SchedulerKind::kHfsc, true, true, true, true, true, true},
      {SchedulerKind::kHpfq, true, false, false, false, false, false},
      {SchedulerKind::kCbq, true, false, false, true, false, false},
      {SchedulerKind::kDrr, false, false, false, false, false, false},
      {SchedulerKind::kSced, false, true, true, false, false, false},
      {SchedulerKind::kVirtualClock, false, false, false, false, false, false},
      {SchedulerKind::kFifo, false, false, false, false, false, false},
  };
  for (const auto& e : expect) {
    const HierarchySpec::Compiled compiled = spec.compile(e.kind, mbps(45));
    const SchedCapabilities caps = compiled.sched->capabilities();
    EXPECT_EQ(caps.hierarchy, e.hierarchy) << to_string(e.kind);
    EXPECT_EQ(caps.nonlinear_curves, e.nonlinear) << to_string(e.kind);
    EXPECT_EQ(caps.decoupled_delay, e.decoupled) << to_string(e.kind);
    EXPECT_EQ(caps.shaping, e.shaping) << to_string(e.kind);
    EXPECT_EQ(caps.upper_limit, e.upper) << to_string(e.kind);
    EXPECT_EQ(caps.per_class_drops, e.drops) << to_string(e.kind);
  }
}

}  // namespace
}  // namespace hfsc
