// Tests for SCED and Virtual Clock, including the paper's Fig. 2
// punishment scenario.
#include <gtest/gtest.h>

#include "sched/sced.hpp"
#include "sched/virtual_clock.hpp"
#include "sim/guarantee_checker.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

TEST(VirtualClock, SharesLinkByRate) {
  VirtualClock sched;
  const ClassId a = sched.add_session(mbps(6));
  const ClassId b = sched.add_session(mbps(2));
  Simulator sim(mbps(8), sched);
  sim.add<GreedySource>(a, 1000, 4, 0, sec(4));
  sim.add<GreedySource>(b, 1000, 4, 0, sec(4));
  sim.run(sec(4));
  // 3:1 split of an 8 Mb/s link.
  EXPECT_NEAR(sim.tracker().rate_mbps(a, sec(1), sec(4)), 6.0, 0.2);
  EXPECT_NEAR(sim.tracker().rate_mbps(b, sec(1), sec(4)), 2.0, 0.2);
}

TEST(VirtualClock, PunishesSessionThatUsedIdleCapacity) {
  // Session a is alone for 2 s and uses the whole link; b then wakes up.
  // Virtual Clock lets a's VC run into the future and starves it.
  VirtualClock sched;
  const ClassId a = sched.add_session(mbps(4));
  const ClassId b = sched.add_session(mbps(4));
  Simulator sim(mbps(8), sched);
  sim.add<GreedySource>(a, 1000, 4, 0, sec(4));
  sim.add<GreedySource>(b, 1000, 4, sec(2), sec(4));
  sim.run(sec(4));
  // During (2s, 3s) session a is locked out almost completely.
  EXPECT_LT(sim.tracker().rate_mbps(a, sec(2), sec(3)), 1.0);
  EXPECT_GT(sim.tracker().rate_mbps(b, sec(2), sec(3)), 7.0);
}

TEST(Sced, GuaranteesServiceCurvesWhenFeasible) {
  // Two sessions whose curves sum to at most the link curve: SCED
  // guarantees both (Section II feasibility condition).  Verified against
  // definition (1) directly via the GuaranteeChecker.
  Sced sched;
  const ServiceCurve sa{mbps(6), msec(10), mbps(2)};  // concave
  const ServiceCurve sb{0, msec(10), mbps(6)};        // convex
  const ClassId a = sched.add_session(sa);
  const ClassId b = sched.add_session(sb);
  Simulator sim(mbps(8), sched);
  const TimeNs allowance = tx_time(1000, mbps(8)) + usec(2);
  GuaranteeChecker ca(sa, allowance);
  GuaranteeChecker cb(sb, allowance);
  sim.link().add_arrival_hook([&](TimeNs t, const Packet& p) {
    if (p.cls == a) ca.on_arrival(t, p.len);
    if (p.cls == b) cb.on_arrival(t, p.len);
  });
  sim.link().add_departure_hook([&](TimeNs t, const Packet& p) {
    if (p.cls == a) ca.on_departure(t, p.len);
    if (p.cls == b) cb.on_departure(t, p.len);
  });
  // Bursty on-off traffic within each session's long-term rate.
  sim.add<OnOffSource>(a, mbps(4), 1000, msec(50), msec(50), 0, sec(5), 11);
  sim.add<OnOffSource>(b, mbps(8), 1000, msec(40), msec(60), 0, sec(5), 12);
  sim.run_all();
  EXPECT_GT(ca.work(), 0u);
  EXPECT_GT(cb.work(), 0u);
  EXPECT_TRUE(ca.violations().empty()) << "deficit " << ca.max_deficit();
  EXPECT_TRUE(cb.violations().empty()) << "deficit " << cb.max_deficit();
}

TEST(Sced, Fig2PunishmentScenario) {
  // Fig. 2: m1_1 < m2_1 (convex session 1), m1_2 > m2_2 (concave
  // session 2), m1_1 + m1_2 <= C < m2_1 + m2_2... with the roles as in the
  // figure: session 1 convex {m1, y1, m2}, session 2 concave.
  // Session 1 alone in (0, t1]; session 2 activates at t1.  SCED serves
  // only session 2 until its deadline curve catches up: session 1 starves.
  const RateBps link = mbps(8);
  const ServiceCurve s1{0, msec(200), mbps(6)};       // convex
  const ServiceCurve s2{mbps(8), msec(200), mbps(4)};  // concave
  Sced sched;
  const ClassId c1 = sched.add_session(s1);
  const ClassId c2 = sched.add_session(s2);
  Simulator sim(link, sched);
  const TimeNs t1 = msec(500);
  sim.add<GreedySource>(c1, 1000, 4, 0, sec(2));
  sim.add<GreedySource>(c2, 1000, 4, t1, sec(2));
  sim.run(sec(2));
  // Session 1 received the full link before t1 (excess service)...
  EXPECT_NEAR(sim.tracker().rate_mbps(c1, msec(100), t1), 8.0, 0.3);
  // ...and is then punished: session 2 monopolizes the link after t1.
  EXPECT_LT(sim.tracker().rate_mbps(c1, t1, t1 + msec(200)), 0.5);
  EXPECT_GT(sim.tracker().rate_mbps(c2, t1, t1 + msec(200)), 7.5);
  // The punishment outlasts session 2's 200 ms burst phase: session 1's
  // deadline curve ran ~280 ms into the future while it consumed excess,
  // and SCED starves it until the wall clock catches up (contrast
  // HfscLinkShare.NoPunishmentAfterUsingExcess, where sharing resumes the
  // moment the burst ends).
  EXPECT_LT(sim.tracker().rate_mbps(c1, t1 + msec(210), t1 + msec(270)),
            1.5);
}

TEST(Sced, WithLinearCurvesReducesToVirtualClock) {
  // Section III-B: linear curves through the origin make SCED behave as
  // Virtual Clock.  Replay the same arrivals through both and compare the
  // departure sequence exactly.
  const RateBps link = mbps(8);
  Sced sced;
  VirtualClock vc;
  const ClassId a1 = sced.add_session(ServiceCurve::linear(mbps(5)));
  const ClassId a2 = sced.add_session(ServiceCurve::linear(mbps(3)));
  const ClassId b1 = vc.add_session(mbps(5));
  const ClassId b2 = vc.add_session(mbps(3));
  ASSERT_EQ(a1, b1);
  ASSERT_EQ(a2, b2);

  auto drive = [&](Scheduler& s) {
    Simulator sim(link, s);
    sim.add<PoissonSource>(a1, mbps(4), 1200, 0, sec(2), 5);
    sim.add<PoissonSource>(a2, mbps(4), 700, 0, sec(2), 6);
    std::vector<std::pair<TimeNs, ClassId>> seq;
    sim.link().add_departure_hook([&seq](TimeNs t, const Packet& p) {
      seq.emplace_back(t, p.cls);
    });
    sim.run_all();
    return seq;
  };
  EXPECT_EQ(drive(sced), drive(vc));
}

}  // namespace
}  // namespace hfsc
