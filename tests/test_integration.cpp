// Cross-scheduler integration tests: the paper's H-FSC vs H-PFQ claims on
// a common workload, plus end-to-end sanity of the whole stack.
#include <gtest/gtest.h>

#include "core/hfsc.hpp"
#include "sched/fifo.hpp"
#include "sched/hpfq.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

struct RunResult {
  double audio_max_ms = 0;
  double audio_mean_ms = 0;
  double ftp_mbps = 0;
};

// Fig. 1-style scenario: an audio session (64 kb/s, 160 B packets, wants
// 5 ms) against greedy FTP inside one organization, another greedy org
// alongside.  Audio gets 10% of the org under H-PFQ (its rate determines
// its delay there), while H-FSC gives it a concave curve with the same
// 10% long-term rate.
RunResult run_audio_vs_ftp(Scheduler& sched, ClassId audio, ClassId ftp1,
                           ClassId ftp2, RateBps link) {
  Simulator sim(link, sched);
  sim.add<CbrSource>(audio, kbps(64), 160, 0, sec(5));
  sim.add<GreedySource>(ftp1, 1500, 8, 0, sec(5));
  sim.add<GreedySource>(ftp2, 1500, 8, 0, sec(5));
  sim.run(sec(5));
  return RunResult{sim.tracker().max_delay_ms(audio),
                   sim.tracker().mean_delay_ms(audio),
                   sim.tracker().rate_mbps(ftp1, sec(1), sec(5))};
}

TEST(Integration, HfscDecouplesDelayFromRateHpfqCannot) {
  const RateBps link = mbps(10);

  // H-PFQ: audio's only knob is its rate (640 kb/s = 10% of org A).
  HPfq hpfq(link);
  const ClassId hA = hpfq.add_class(kRootClass, mbps(5));
  const ClassId hB = hpfq.add_class(kRootClass, mbps(5));
  const ClassId h_audio = hpfq.add_class(hA, kbps(640));
  const ClassId h_ftp1 = hpfq.add_class(hA, mbps(5) - kbps(640));
  const ClassId h_ftp2 = hpfq.add_class(hB, mbps(5));
  const RunResult pfq = run_audio_vs_ftp(hpfq, h_audio, h_ftp1, h_ftp2, link);

  // H-FSC: same long-term allocation, but the audio curve is concave —
  // 160 bytes within 5 ms.
  Hfsc hfsc(link);
  const ClassId fA = hfsc.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));
  const ClassId fB = hfsc.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));
  const ClassId f_audio =
      hfsc.add_class(fA, ClassConfig::both(from_udr(160, msec(5), kbps(640))));
  const ClassId f_ftp1 = hfsc.add_class(
      fA, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5) - kbps(640))));
  const ClassId f_ftp2 = hfsc.add_class(
      fB, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));
  const RunResult fsc = run_audio_vs_ftp(hfsc, f_audio, f_ftp1, f_ftp2, link);

  // The headline claim: audio delay under H-FSC honours the 5 ms target
  // (within a packet time), and beats H-PFQ's.
  EXPECT_LT(fsc.audio_max_ms, 6.3);
  EXPECT_LT(fsc.audio_max_ms, pfq.audio_max_ms);
  EXPECT_LT(fsc.audio_mean_ms, pfq.audio_mean_ms);
  // FTP throughput is essentially unchanged: the priority is free.
  EXPECT_NEAR(fsc.ftp_mbps, pfq.ftp_mbps, 0.4);
}

TEST(Integration, FifoGivesAudioBulkDelays) {
  // Baseline sanity: under FIFO the audio packets sit behind FTP bursts.
  const RateBps link = mbps(10);
  Fifo fifo;
  const RunResult r = run_audio_vs_ftp(fifo, 1, 2, 3, link);
  EXPECT_GT(r.audio_max_ms, 5.0);
}

TEST(Integration, AllSchedulersDrainEverything) {
  // Conservation: with on-off offered load below capacity every
  // discipline delivers every byte.
  const RateBps link = mbps(10);
  auto offered = [](Simulator& sim, ClassId a, ClassId b) {
    sim.add<OnOffSource>(a, mbps(8), 1000, msec(20), msec(20), 0, sec(2), 1);
    sim.add<PoissonSource>(b, mbps(3), 600, 0, sec(2), 2);
  };

  Bytes expect_bytes = 0;
  {
    Fifo fifo;
    Simulator sim(link, fifo);
    offered(sim, 1, 2);
    sim.run_all();
    expect_bytes = sim.tracker().bytes(1) + sim.tracker().bytes(2);
    EXPECT_TRUE(fifo.empty());
  }
  {
    Hfsc hfsc(link);
    const ClassId a = hfsc.add_class(
        kRootClass, ClassConfig::both(ServiceCurve{mbps(8), msec(5), mbps(5)}));
    const ClassId b = hfsc.add_class(
        kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(4))));
    Simulator sim(link, hfsc);
    offered(sim, a, b);
    sim.run_all();
    EXPECT_TRUE(hfsc.empty());
    EXPECT_EQ(sim.tracker().bytes(a) + sim.tracker().bytes(b), expect_bytes);
  }
  {
    HPfq hpfq(link);
    const ClassId a = hpfq.add_class(kRootClass, mbps(6));
    const ClassId b = hpfq.add_class(kRootClass, mbps(4));
    Simulator sim(link, hpfq);
    offered(sim, a, b);
    sim.run_all();
    EXPECT_TRUE(hpfq.empty());
    EXPECT_EQ(sim.tracker().bytes(a) + sim.tracker().bytes(b), expect_bytes);
  }
}

TEST(Integration, HfscDelayGrowsWithDepthUnderHpfqNotHfsc) {
  // Section IV-A: H-PFQ's leaf delay bound grows with depth; H-FSC's does
  // not.  Measure max audio delay at depth 1 vs depth 5 for both.
  const RateBps link = mbps(10);
  const Bytes pkt = 160;

  auto hpfq_delay = [&](int depth) {
    HPfq sched(link);
    ClassId parent = kRootClass;
    for (int i = 1; i < depth; ++i) parent = sched.add_class(parent, mbps(5));
    const ClassId audio = sched.add_class(parent, kbps(640));
    // A greedy sibling at every level amplifies the per-level error.
    HPfq* s = &sched;
    std::vector<ClassId> bulk;
    ClassId p2 = kRootClass;
    bulk.push_back(s->add_class(p2, mbps(5)));
    Simulator sim(link, sched);
    sim.add<CbrSource>(audio, kbps(64), pkt, 0, sec(3));
    sim.add<GreedySource>(bulk[0], 1500, 8, 0, sec(3));
    sim.run(sec(3));
    return sim.tracker().max_delay_ms(audio);
  };
  auto hfsc_delay = [&](int depth) {
    Hfsc sched(link);
    ClassId parent = kRootClass;
    for (int i = 1; i < depth; ++i) {
      parent = sched.add_class(
          parent, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));
    }
    const ClassId audio = sched.add_class(
        parent, ClassConfig::both(from_udr(pkt, msec(5), kbps(640))));
    const ClassId bulk = sched.add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));
    Simulator sim(link, sched);
    sim.add<CbrSource>(audio, kbps(64), pkt, 0, sec(3));
    sim.add<GreedySource>(bulk, 1500, 8, 0, sec(3));
    sim.run(sec(3));
    return sim.tracker().max_delay_ms(audio);
  };

  const double hfsc_1 = hfsc_delay(1), hfsc_5 = hfsc_delay(5);
  // H-FSC: flat in depth.
  EXPECT_NEAR(hfsc_1, hfsc_5, 1.5);
  EXPECT_LT(hfsc_5, 6.3);
  // H-PFQ exists and serves (depth comparison is exercised in the E6
  // experiment binary where the workload stresses every level).
  EXPECT_GT(hpfq_delay(2), 0.0);
}

}  // namespace
}  // namespace hfsc
