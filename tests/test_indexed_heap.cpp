// Unit + randomized model tests for util/indexed_heap.hpp.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/indexed_heap.hpp"
#include "util/rng.hpp"

namespace hfsc {
namespace {

TEST(IndexedHeap, PopsInKeyOrder) {
  IndexedHeap<int> h;
  h.push(3, 30);
  h.push(1, 10);
  h.push(2, 20);
  EXPECT_EQ(h.top_id(), 1u);
  EXPECT_EQ(h.pop(), 1u);
  EXPECT_EQ(h.pop(), 2u);
  EXPECT_EQ(h.pop(), 3u);
  EXPECT_TRUE(h.empty());
}

TEST(IndexedHeap, TiesBreakById) {
  IndexedHeap<int> h;
  h.push(9, 5);
  h.push(2, 5);
  h.push(7, 5);
  EXPECT_EQ(h.pop(), 2u);
  EXPECT_EQ(h.pop(), 7u);
  EXPECT_EQ(h.pop(), 9u);
}

TEST(IndexedHeap, EraseFromMiddle) {
  IndexedHeap<int> h;
  for (int i = 0; i < 10; ++i) h.push(static_cast<std::uint32_t>(i), i * 10);
  h.erase(5);
  EXPECT_FALSE(h.contains(5));
  EXPECT_EQ(h.size(), 9u);
  std::vector<std::uint32_t> order;
  while (!h.empty()) order.push_back(h.pop());
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 6, 7, 8, 9}));
}

TEST(IndexedHeap, UpdateMovesBothWays) {
  IndexedHeap<int> h;
  h.push(1, 10);
  h.push(2, 20);
  h.push(3, 30);
  h.update(3, 5);  // down
  EXPECT_EQ(h.top_id(), 3u);
  h.update(3, 99);  // up
  EXPECT_EQ(h.top_id(), 1u);
  h.update(1, 15);  // stays top? no: 15 < 20 yes
  EXPECT_EQ(h.top_id(), 1u);
}

TEST(IndexedHeap, KeyOfAndPushOrUpdate) {
  IndexedHeap<int> h;
  h.push_or_update(4, 44);
  EXPECT_EQ(h.key_of(4), 44);
  h.push_or_update(4, 11);
  EXPECT_EQ(h.key_of(4), 11);
  EXPECT_EQ(h.size(), 1u);
}

TEST(IndexedHeap, ClearResets) {
  IndexedHeap<int> h;
  h.push(1, 1);
  h.push(2, 2);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.contains(1));
  h.push(1, 5);  // reusable after clear
  EXPECT_EQ(h.top_id(), 1u);
}

// Randomized model test against std::map<id, key> + linear-scan min.
class IndexedHeapModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexedHeapModel, MatchesReferenceModel) {
  Rng rng(GetParam());
  IndexedHeap<std::uint64_t> h;
  std::map<std::uint32_t, std::uint64_t> model;
  constexpr std::uint32_t kIds = 64;

  auto model_min = [&]() {
    std::pair<std::uint64_t, std::uint32_t> best{~0ULL, ~0u};
    for (const auto& [id, key] : model) {
      best = std::min(best, {key, id});
    }
    return best.second;
  };

  for (int step = 0; step < 3000; ++step) {
    const std::uint32_t id = static_cast<std::uint32_t>(rng.uniform(0, kIds - 1));
    switch (rng.uniform(0, 3)) {
      case 0:  // push or update
        if (model.count(id)) {
          const std::uint64_t k = rng.uniform(0, 1000);
          h.update(id, k);
          model[id] = k;
        } else {
          const std::uint64_t k = rng.uniform(0, 1000);
          h.push(id, k);
          model[id] = k;
        }
        break;
      case 1:  // erase
        if (model.count(id)) {
          h.erase(id);
          model.erase(id);
        }
        break;
      case 2:  // pop
        if (!model.empty()) {
          const std::uint32_t want = model_min();
          const std::uint32_t got = h.pop();
          ASSERT_EQ(got, want) << "step " << step;
          model.erase(want);
        }
        break;
      case 3:  // verify top
        if (!model.empty()) {
          ASSERT_EQ(h.top_id(), model_min());
          ASSERT_EQ(h.top_key(), model[model_min()]);
        }
        break;
    }
    ASSERT_EQ(h.size(), model.size());
    ASSERT_EQ(h.contains(id), model.count(id) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedHeapModel,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999));

}  // namespace
}  // namespace hfsc
