// Section IV-A, final paragraph: "in addition to the advantage of
// decoupling delay and bandwidth allocation by supporting nonlinear
// service curves, H-FSC provides tighter delay bounds than H-PFQ even
// for class hierarchies with only linear service curves", because H-PFQ
// accumulates one scheduling-error term per level while H-FSC's
// real-time criterion sees leaves directly.
#include <gtest/gtest.h>

#include "core/hfsc.hpp"
#include "sched/hpfq.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

// Audio nested 4 levels deep with greedy siblings at every level; both
// schedulers get identical *linear* allocations.
double audio_max_delay_hpfq() {
  HPfq sched(mbps(10));
  ClassId parent = kRootClass;
  std::vector<ClassId> data;
  RateBps budget = mbps(10);
  for (int i = 0; i < 4; ++i) {
    const RateBps inner = budget * 3 / 4;
    data.push_back(sched.add_class(parent, budget - inner));
    if (i == 3) {
      const ClassId audio = sched.add_class(parent, kbps(640));
      data.push_back(sched.add_class(parent, inner - kbps(640)));
      Simulator sim(mbps(10), sched);
      sim.add<CbrSource>(audio, kbps(64), 160, 0, sec(3));
      for (ClassId c : data) sim.add<GreedySource>(c, 1500, 6, 0, sec(3));
      sim.run(sec(3));
      return sim.tracker().max_delay_ms(audio);
    }
    parent = sched.add_class(parent, inner);
    budget = inner;
  }
  return 0;
}

double audio_max_delay_hfsc_linear() {
  Hfsc sched(mbps(10));
  ClassId parent = kRootClass;
  std::vector<ClassId> data;
  RateBps budget = mbps(10);
  for (int i = 0; i < 4; ++i) {
    const RateBps inner = budget * 3 / 4;
    data.push_back(sched.add_class(
        parent,
        ClassConfig::link_share_only(ServiceCurve::linear(budget - inner))));
    if (i == 3) {
      // LINEAR rt curve: same 640 kb/s allocation as H-PFQ — no concave
      // burst term, so the only difference is the scheduling machinery.
      const ClassId audio = sched.add_class(
          parent, ClassConfig::both(ServiceCurve::linear(kbps(640))));
      data.push_back(sched.add_class(
          parent, ClassConfig::link_share_only(
                      ServiceCurve::linear(inner - kbps(640)))));
      Simulator sim(mbps(10), sched);
      sim.add<CbrSource>(audio, kbps(64), 160, 0, sec(3));
      for (ClassId c : data) sim.add<GreedySource>(c, 1500, 6, 0, sec(3));
      sim.run(sec(3));
      return sim.tracker().max_delay_ms(audio);
    }
    parent = sched.add_class(
        parent, ClassConfig::link_share_only(ServiceCurve::linear(inner)));
    budget = inner;
  }
  return 0;
}

TEST(LinearCurveAdvantage, HfscBeatsHpfqWithIdenticalLinearAllocations) {
  const double hpfq = audio_max_delay_hpfq();
  const double hfsc = audio_max_delay_hfsc_linear();
  // Both deliver; H-FSC's bound is depth-independent and strictly
  // tighter.
  EXPECT_GT(hpfq, 0.0);
  EXPECT_GT(hfsc, 0.0);
  EXPECT_LT(hfsc, hpfq);
  // The linear rt curve bounds the audio delay at roughly
  // L/r + tau = 160 B / 80 kB/s + 1.2 ms = 3.2 ms, hierarchy-independent.
  EXPECT_LT(hfsc, 3.3);
}

}  // namespace
}  // namespace hfsc
