// Differential validation of the static analyzer (analysis/analyzer.hpp)
// against the runtime, per the contract in the analyzer's header:
//
//  1. "analyzer says rt-feasible" <=> AdmissionControl admits every leaf
//     rt curve, in ANY insertion order (the verdict must be
//     order-independent);
//  2. the exact breakpoint-symbolic horizontal deviation is a true
//     supremum: no sampled deviation ever exceeds it, and the exact
//     min() used for effective guarantees agrees pointwise with sampling;
//  3. a simulated scenario whose sources conform to their declared
//     envelopes never measures a delay above the analyzer's Theorem 2
//     bound.
//
// Each property runs over ≥10 deterministic seeds; a single disagreement
// anywhere fails the suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "curve/piecewise.hpp"
#include "curve/service_curve.hpp"
#include "sim/scenario.hpp"

namespace hfsc {
namespace {

constexpr unsigned kSeeds = 12;

// A random leaf rt curve with long-term rate `tail`: linear, concave
// two-piece, or the Fig. 7 (u, d, r) shape.
ServiceCurve random_rt(std::mt19937_64& rng, RateBps tail) {
  switch (rng() % 3) {
    case 0:
      return ServiceCurve::linear(tail);
    case 1: {
      const RateBps m1 = tail * (2 + rng() % 4);
      const TimeNs d = msec(1 + rng() % 20);
      return ServiceCurve{m1, d, tail};
    }
    default: {
      const Bytes u = 200 + rng() % 8000;
      const TimeNs d = msec(1 + rng() % 30);
      return from_udr(u, d, tail);
    }
  }
}

// ------------------------------------------------------------------ (1)
// Random hierarchies straddling the feasibility boundary: the analyzer's
// verdict must equal the runtime's AdmissionControl verdict under every
// shuffled insertion order.
TEST(AnalysisFuzz, FeasibilityAgreesWithAdmissionControlInAnyOrder) {
  for (unsigned seed = 0; seed < kSeeds; ++seed) {
    std::mt19937_64 rng(seed);
    const RateBps link = mbps(10 + rng() % 90);
    const std::size_t n_leaves = 2 + rng() % 8;
    // Aim the aggregate long-term reservation at 40%..140% of the link so
    // roughly half the cases are infeasible (and concave first segments
    // can tip nominally-fitting tails over the link curve transiently).
    const double target = 0.4 + 0.1 * static_cast<double>(rng() % 11);
    const RateBps budget =
        static_cast<RateBps>(static_cast<double>(link) * target);

    HierarchySpec spec;
    const bool grouped = rng() % 2 == 0;
    if (grouped) {
      HierarchySpec::ClassSpec agg;
      agg.name = "agg";
      agg.ls = ServiceCurve::linear(link / 2);
      spec.add(agg);
    }
    std::vector<ServiceCurve> leaf_rt;
    for (std::size_t i = 0; i < n_leaves; ++i) {
      const RateBps tail =
          std::max<RateBps>(1000, budget / n_leaves + rng() % 10000);
      HierarchySpec::ClassSpec c;
      c.name = "leaf";
      c.name += std::to_string(i);
      if (grouped && i % 2 == 0) c.parent = "agg";
      c.rt = random_rt(rng, tail);
      c.ls = ServiceCurve::linear(tail);
      spec.add(c);
      leaf_rt.push_back(c.rt);
    }

    AnalysisOptions opts;
    opts.portability = false;
    const AnalysisReport report = analyze(spec, link, opts);

    for (unsigned order = 0; order < 5; ++order) {
      std::vector<ServiceCurve> shuffled = leaf_rt;
      std::mt19937_64 order_rng(seed * 97 + order);
      std::shuffle(shuffled.begin(), shuffled.end(), order_rng);
      AdmissionControl ac(link);
      bool all = true;
      for (const ServiceCurve& sc : shuffled) {
        if (!ac.admit(sc)) all = false;
      }
      EXPECT_EQ(all, report.rt_feasible)
          << "seed " << seed << " order " << order
          << ": analyzer and AdmissionControl disagree";
    }
  }
}

// ------------------------------------------------------------------ (2)
// The exact horizontal deviation is a supremum over the sampled one, and
// min() agrees with pointwise sampling everywhere we look.
TEST(AnalysisFuzz, ExactGapAndMinDominateSampling) {
  for (unsigned seed = 0; seed < kSeeds; ++seed) {
    std::mt19937_64 rng(1000 + seed);
    const RateBps env_rate = kbps(32 + rng() % 4000);
    const Bytes burst = 100 + rng() % 20000;
    const PiecewiseLinear env = PiecewiseLinear::token_bucket(burst, env_rate);

    // Guarantee with some headroom over the envelope tail so the gap is
    // finite most of the time; occasionally capped by a random ul.
    const RateBps rt_tail = env_rate + kbps(8 + rng() % 512);
    const PiecewiseLinear guarantee =
        PiecewiseLinear::from_service_curve(random_rt(rng, rt_tail));
    // Concave cap whose tail still covers the envelope, so the deviation
    // stays finite whenever the tails allow it.
    const PiecewiseLinear cap = PiecewiseLinear::from_service_curve(
        ServiceCurve{rt_tail * (1 + rng() % 3), msec(1 + rng() % 10),
                     env_rate + kbps(4)});
    const PiecewiseLinear effective = guarantee.min(cap);

    // min() matches pointwise sampling everywhere we look: never above
    // either operand, at most one byte below (the documented floor slack
    // at synthesized crossing breakpoints — conservative for bounds).
    for (TimeNs t = 0; t <= msec(200); t += msec(1) + seed) {
      const Bytes want = std::min(guarantee.eval(t), cap.eval(t));
      EXPECT_LE(effective.eval(t), want) << "seed " << seed << " t=" << t;
      EXPECT_GE(effective.eval(t) + 1, want) << "seed " << seed << " t=" << t;
    }

    const std::optional<TimeNs> exact = env.max_horizontal_gap(effective);
    if (env.tail_rate() > effective.tail_rate()) {
      EXPECT_FALSE(exact.has_value()) << "seed " << seed;
      continue;
    }
    ASSERT_TRUE(exact.has_value()) << "seed " << seed;
    // Sampled deviation d(t) = S^{-1}(A(t)) - t with the library's own
    // inverse (same rounding): never above the exact supremum.
    for (TimeNs t = 0; t <= msec(500); t += msec(1) / 4 + seed) {
      const TimeNs needed = effective.inverse(env.eval(t));
      ASSERT_NE(needed, kTimeInfinity) << "seed " << seed << " t=" << t;
      const TimeNs dev = needed > t ? needed - t : 0;
      EXPECT_LE(dev, *exact) << "seed " << seed << " t=" << t;
    }
  }
}

// ------------------------------------------------------------------ (3)
// End-to-end: scenarios whose CBR sources conform to their declared
// envelopes, run under H-FSC with greedy cross traffic, never measure a
// delay above the analyzer's bound.
TEST(AnalysisFuzz, MeasuredDelayNeverExceedsAnalyzerBound) {
  for (unsigned seed = 0; seed < 10; ++seed) {
    std::mt19937_64 rng(2000 + seed);
    const unsigned link_mbps = 10 + rng() % 40;
    const std::size_t n_rt = 1 + rng() % 3;

    std::ostringstream sc_text;
    sc_text << "link " << link_mbps << "Mbps\nduration 500ms\n";
    for (std::size_t i = 0; i < n_rt; ++i) {
      // CBR at `rate` with `pkt`-byte packets conforms to the token
      // bucket (pkt, rate); rt = udr(pkt, d, rate) guarantees one packet
      // within d and the sustained rate after.
      const unsigned rate_kbps = 64 * (1 + rng() % 8);
      const Bytes pkt = 160 + 100 * (rng() % 8);
      const unsigned d_ms = 2 + rng() % 20;
      sc_text << "class rt" << i << " root rt udr " << pkt << " " << d_ms
              << "ms " << rate_kbps << "kbps ls linear " << rate_kbps
              << "kbps\n";
      sc_text << "envelope rt" << i << " " << pkt << " " << rate_kbps
              << "kbps\n";
      sc_text << "source cbr rt" << i << " " << rate_kbps << "kbps " << pkt
              << " 0s 500ms\n";
    }
    // Greedy cross traffic keeps the link saturated, so the rt classes
    // actually depend on their guarantees.
    sc_text << "class bulk root ls linear " << (link_mbps / 2) << "Mbps\n";
    sc_text << "source greedy bulk 1500 8 0s 500ms\n";

    std::istringstream in(sc_text.str());
    const Scenario sc = Scenario::parse(in, "fuzz.hfsc");
    AnalysisOptions opts;
    opts.portability = false;
    const AnalysisReport report = analyze(sc, opts);
    ASSERT_TRUE(report.rt_feasible) << sc_text.str();
    ASSERT_EQ(report.delay_bounds.size(), n_rt);

    const ScenarioResult result = run_scenario(sc);
    for (const LeafDelayBound& b : report.delay_bounds) {
      ASSERT_TRUE(b.bound.has_value()) << b.cls;
      const double bound_ms = static_cast<double>(*b.bound) / 1e6;
      bool found = false;
      for (const ScenarioResult::PerClass& pc : result.per_class) {
        if (pc.name != b.cls) continue;
        found = true;
        EXPECT_GT(pc.packets, 0u) << b.cls;
        EXPECT_EQ(pc.dropped, 0u) << b.cls;
        EXPECT_LE(pc.max_delay_ms, bound_ms + 1e-6)
            << "seed " << seed << " class " << b.cls
            << ": measured delay exceeds the Theorem 2 bound\n"
            << sc_text.str();
      }
      EXPECT_TRUE(found) << b.cls;
    }
  }
}

}  // namespace
}  // namespace hfsc
