// Tests for the routed topology core: multi-node forwarding, end-to-end
// accounting, equivalence with the fixed-chain Tandem, and the
// packet-identity regression (the folded `seq ^ (cls << 48)` key Tandem
// historically used aliased distinct packets).
#include <gtest/gtest.h>

#include <memory>

#include "core/hfsc.hpp"
#include "sched/fifo.hpp"
#include "sim/sources.hpp"
#include "sim/tandem.hpp"
#include "sim/topology.hpp"
#include "util/errors.hpp"

namespace hfsc {
namespace {

TEST(Topology, RoutesAcrossNodesAndAccountsEndToEnd) {
  EventQueue ev;
  Topology topo(ev);
  const auto a = topo.add_node("a", mbps(10), std::make_unique<Fifo>());
  const auto b = topo.add_node("b", mbps(10), std::make_unique<Fifo>());
  const auto route = topo.add_route({{a, 1}, {b, 1}});

  CbrSource src(1, mbps(2), 1000, 0, sec(1));
  src.install(ev, topo.link(a));
  topo.run(sec(2));

  EXPECT_EQ(topo.delivered(route), 250u);
  EXPECT_EQ(topo.delivered_bytes(route), 250'000u);
  // Two hops at 0.8 ms serialization each.
  EXPECT_NEAR(topo.e2e_delay_ms(route).mean(), 1.6, 0.1);
  EXPECT_EQ(topo.in_flight(route), 0u);
  // Conservation at each hop: everything offered was sent.
  EXPECT_EQ(topo.offered(a), 250u);
  EXPECT_EQ(topo.link(a).packets_sent(), 250u);
  EXPECT_EQ(topo.offered(b), 250u);  // forwarded-in arrivals count
  EXPECT_EQ(topo.link(b).packets_sent(), 250u);
}

// A linear topology must report exactly what the legacy Tandem reports
// for the same workload — the refactor-equivalence pin.
TEST(Topology, LinearChainMatchesTandem) {
  constexpr std::size_t kHops = 3;

  EventQueue tev;
  Tandem tandem(tev, kHops, mbps(10), [] { return std::make_unique<Fifo>(); });
  CbrSource tsrc(1, mbps(2), 1000, 0, sec(1));
  tsrc.install(tev, tandem.ingress());
  tev.run_all();

  EventQueue ev;
  Topology topo(ev);
  std::vector<Topology::Hop> hops;
  for (std::size_t h = 0; h < kHops; ++h) {
    const auto n = topo.add_node("n" + std::to_string(h), mbps(10),
                                 std::make_unique<Fifo>());
    hops.push_back({n, 1});
  }
  const auto route = topo.add_route(std::move(hops));
  CbrSource src(1, mbps(2), 1000, 0, sec(1));
  src.install(ev, topo.link(0));
  ev.run_all();

  EXPECT_EQ(topo.delivered(route), tandem.delivered(1));
  EXPECT_EQ(topo.delivered_bytes(route), tandem.delivered_bytes(1));
  EXPECT_DOUBLE_EQ(topo.e2e_delay_ms(route).mean(), tandem.e2e_mean_ms(1));
  EXPECT_DOUBLE_EQ(topo.e2e_delay_ms(route).max(), tandem.e2e_max_ms(1));
}

TEST(Topology, RejectsBadWiring) {
  EventQueue ev;
  Topology topo(ev);
  const auto a = topo.add_node("a", mbps(10), std::make_unique<Fifo>());
  EXPECT_THROW(topo.add_node("a", mbps(10), std::make_unique<Fifo>()),
               Error);  // duplicate name
  EXPECT_THROW(topo.add_route({{a, 1}}), Error);  // fewer than 2 hops
  const auto b = topo.add_node("b", mbps(10), std::make_unique<Fifo>());
  EXPECT_THROW(topo.add_route({{a, 1}, {Topology::NodeIndex{99}, 1}}),
               Error);  // unknown node index
  (void)topo.add_route({{a, 1}, {b, 1}});
  // The (node, cls) pair is already covered by the first route.
  EXPECT_THROW(topo.add_route({{a, 1}, {b, 2}}), Error);
  EXPECT_EQ(topo.find("a"), a);
  EXPECT_EQ(topo.find("nope"), Topology::kNoNode);
}

// Regression: the folded end-to-end key `seq ^ (cls << 48)` aliased
// distinct packets — (cls=1, seq=S) and (cls=2, seq=S ^ (3<<48)) mapped
// to the same entry, silently merging their entry times.  The explicit
// (cls, seq) pair must keep them apart: inject exactly such a colliding
// pair and check both classes get their own correct delay.
TEST(Tandem, DistinctClassSeqPairsNeverAlias) {
  EventQueue ev;
  Tandem tandem(ev, 2, mbps(8), [] { return std::make_unique<Fifo>(); });

  const std::uint64_t s1 = (7ull << 48) | 5;
  const std::uint64_t s2 = s1 ^ (3ull << 48);  // folded-key collision with
                                               // (cls 1, s1) for cls 2
  ASSERT_EQ(s1 ^ (1ull << 48), s2 ^ (2ull << 48));

  Packet p1;
  p1.cls = 1;
  p1.seq = s1;
  p1.len = 1000;
  Packet p2;
  p2.cls = 2;
  p2.seq = s2;
  p2.len = 1000;
  // 1000 B at 8 Mb/s = 1 ms per hop; the second packet queues behind the
  // first at each hop, so its end-to-end delay is strictly larger.
  tandem.ingress().on_arrival(0, p1);
  tandem.ingress().on_arrival(0, p2);
  ev.run_all();

  EXPECT_EQ(tandem.delivered(1), 1u);
  EXPECT_EQ(tandem.delivered(2), 1u);
  EXPECT_NEAR(tandem.e2e_mean_ms(1), 2.0, 0.1);
  EXPECT_NEAR(tandem.e2e_mean_ms(2), 3.0, 0.1);
}

// Routed H-FSC hierarchies on every hop keep the real-time class's
// end-to-end delay near the sum of per-hop bounds even against greedy
// cross traffic entering mid-route.
TEST(Topology, HfscHopsBoundRoutedDelayAgainstCrossTraffic) {
  EventQueue ev;
  Topology topo(ev);
  auto make = [] {
    auto s = std::make_unique<Hfsc>(mbps(10));
    (void)s->add_class(kRootClass,
                       ClassConfig::both(from_udr(160, msec(5), kbps(640))));
    (void)s->add_class(kRootClass, ClassConfig::link_share_only(
                                       ServiceCurve::linear(mbps(9))));
    return s;
  };
  const auto a = topo.add_node("a", mbps(10), make());
  const auto b = topo.add_node("b", mbps(10), make());
  const auto route = topo.add_route({{a, 1}, {b, 1}});

  CbrSource audio(1, kbps(64), 160, 0, sec(3));
  audio.install(ev, topo.link(a));
  GreedySource bulk_a(2, 1500, 8, 0, sec(3));
  bulk_a.install(ev, topo.link(a));
  GreedySource bulk_b(2, 1500, 8, 0, sec(3));  // enters mid-route
  bulk_b.install(ev, topo.link(b));
  topo.run(sec(3) + msec(500));

  EXPECT_GT(topo.delivered(route), 0u);
  EXPECT_LT(topo.e2e_delay_ms(route).max(), 2 * 6.3);
}

}  // namespace
}  // namespace hfsc
