// Tests for the analyzer's end-to-end route budgets: min-plus
// composition along `route` chains, the route/deadline lint family
// (route-no-envelope, e2e-budget-exceeded, hop-backlog-over-qlimit,
// deadline-unverifiable), the v2 JSON flow rows and the SARIF writer.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "analysis/analyzer.hpp"
#include "sim/scenario.hpp"

namespace hfsc {
namespace {

Scenario parse_text(const std::string& text) {
  std::istringstream in(text);
  return Scenario::parse(in, "mem.hfsc");
}

Diagnostic find_diag(const AnalysisReport& r, const std::string& id) {
  const Diagnostic* found = nullptr;
  for (const Diagnostic& d : r.diagnostics) {
    if (d.id == id) {
      EXPECT_EQ(found, nullptr) << "duplicate diagnostic " << id;
      found = &d;
    }
  }
  EXPECT_NE(found, nullptr) << "missing diagnostic " << id;
  return found ? *found : Diagnostic{};
}

bool has_diag(const AnalysisReport& r, const std::string& id) {
  return std::any_of(
      r.diagnostics.begin(), r.diagnostics.end(),
      [&](const Diagnostic& d) { return d.id == id; });
}

// Two-hop scenario with an enveloped, deadlined voice flow.  The
// per-line layout is load-bearing: tests below assert exact lines.
const char* kTwoHop =
    "duration 1s\n"                                              // 1
    "node a 10Mbps\n"                                            // 2
    "  class voice root rt udr 160 5ms 256kbps ls linear 256kbps\n"
    "  envelope voice 160 256kbps\n"                             // 4
    "end\n"                                                      // 5
    "node b 10Mbps\n"                                            // 6
    "  class voice root rt udr 160 5ms 256kbps ls linear 256kbps\n"
    "end\n"                                                      // 8
    "route voice a b\n"                                          // 9
    "source cbr voice 256kbps 160 0s 1s\n"                       // 10
    "deadline voice 20ms\n";                                     // 11

TEST(AnalysisRoutes, RouteWalkComposesPerHopBudgets) {
  const AnalysisReport r = analyze(parse_text(kTwoHop));
  ASSERT_EQ(r.flows.size(), 1u);
  const FlowBudget& f = r.flows[0];
  EXPECT_EQ(f.cls, "voice");
  ASSERT_EQ(f.route.size(), 2u);
  EXPECT_EQ(f.route[0], "a");
  EXPECT_EQ(f.route[1], "b");
  EXPECT_EQ(f.env_burst, 160u);
  EXPECT_EQ(f.loc.file, "mem.hfsc");
  EXPECT_EQ(f.loc.line, 9u);
  ASSERT_EQ(f.hops.size(), 2u);
  ASSERT_TRUE(f.e2e_delay.has_value());
  ASSERT_TRUE(f.hops[0].delay.has_value());
  ASSERT_TRUE(f.hops[1].delay.has_value());
  ASSERT_TRUE(f.total_backlog.has_value());
  // Pay-bursts-only-once: the composed bound beats the per-hop sum.
  EXPECT_LT(*f.e2e_delay, sat_add(*f.hops[0].delay, *f.hops[1].delay));
  // ...but can never beat a single hop's own deviation against the
  // undeconvolved envelope minus the other hop's contribution entirely:
  // it must still exceed the first hop's bound (the second hop adds a
  // positive latency shift).
  EXPECT_GT(*f.e2e_delay, *f.hops[0].delay);
  // The downstream hop sees a deconvolved (slightly inflated) envelope.
  EXPECT_GE(f.hops[1].in_burst, f.hops[0].in_burst);
  ASSERT_TRUE(f.deadline.has_value());
  EXPECT_EQ(*f.deadline, msec(20));
  EXPECT_FALSE(has_diag(r, "e2e-budget-exceeded"));
}

TEST(AnalysisRoutes, BudgetExceededAnchorsAtTheDeadlineLine) {
  std::string text(kTwoHop);
  const auto pos = text.find("deadline voice 20ms");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("deadline voice 20ms").size(),
               "deadline voice 2ms");
  const AnalysisReport r = analyze(parse_text(text));
  const Diagnostic d = find_diag(r, "e2e-budget-exceeded");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.cls, "voice");
  EXPECT_EQ(d.loc.file, "mem.hfsc");
  EXPECT_EQ(d.loc.line, 11u);
  EXPECT_FALSE(r.clean());
  ASSERT_EQ(r.flows.size(), 1u);
  ASSERT_TRUE(r.flows[0].e2e_delay.has_value());
  EXPECT_GT(*r.flows[0].e2e_delay, msec(2));
}

TEST(AnalysisRoutes, RouteWithoutEnvelopeGetsANoteAtTheRouteLine) {
  std::string text(kTwoHop);
  const auto pos = text.find("  envelope voice 160 256kbps\n");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("  envelope voice 160 256kbps\n").size(),
               "\n");  // keep the line count stable
  const auto dpos = text.find("deadline voice 20ms\n");
  ASSERT_NE(dpos, std::string::npos);
  text.erase(dpos);
  const AnalysisReport r = analyze(parse_text(text));
  const Diagnostic d = find_diag(r, "route-no-envelope");
  EXPECT_EQ(d.severity, Severity::kNote);
  EXPECT_EQ(d.loc.line, 9u);
  EXPECT_TRUE(r.flows.empty());
}

TEST(AnalysisRoutes, DeadlineOnRoutedFlowWithoutEnvelopeIsUnverifiable) {
  std::string text(kTwoHop);
  const auto pos = text.find("  envelope voice 160 256kbps\n");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("  envelope voice 160 256kbps\n").size(),
               "\n");
  const AnalysisReport r = analyze(parse_text(text));
  const Diagnostic d = find_diag(r, "deadline-unverifiable");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.loc.line, 11u);
}

TEST(AnalysisRoutes, HopWithoutRtMakesTheBudgetUnbounded) {
  std::string text(kTwoHop);
  const auto pos =
      text.find("  class voice root rt udr 160 5ms 256kbps ls linear 256kbps\n",
                text.find("node b"));
  ASSERT_NE(pos, std::string::npos);
  text.replace(
      pos,
      std::string(
          "  class voice root rt udr 160 5ms 256kbps ls linear 256kbps\n")
          .size(),
      "  class voice root ls linear 256kbps\n");
  const AnalysisReport r = analyze(parse_text(text));
  EXPECT_TRUE(has_diag(r, "route-hop-without-rt"));
  // An unbounded flow cannot meet any deadline.
  EXPECT_TRUE(has_diag(r, "e2e-budget-exceeded"));
  ASSERT_EQ(r.flows.size(), 1u);
  EXPECT_FALSE(r.flows[0].e2e_delay.has_value());
  EXPECT_FALSE(r.flows[0].total_backlog.has_value());
}

TEST(AnalysisRoutes, HopBacklogOverQlimitFiresAtTheClassLine) {
  // qlimit 1 on the second hop: even the ~200 B propagated burst needs
  // two 160 B packets of headroom.
  std::string text(kTwoHop);
  const auto pos =
      text.find("  class voice root rt udr 160 5ms 256kbps ls linear 256kbps\n",
                text.find("node b"));
  ASSERT_NE(pos, std::string::npos);
  text.replace(
      pos,
      std::string(
          "  class voice root rt udr 160 5ms 256kbps ls linear 256kbps\n")
          .size(),
      "  class voice root rt udr 160 5ms 256kbps ls linear 256kbps "
      "qlimit 1\n");
  const AnalysisReport r = analyze(parse_text(text));
  const Diagnostic d = find_diag(r, "hop-backlog-over-qlimit");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.cls, "b.voice");
  EXPECT_EQ(d.loc.line, 7u);
}

TEST(AnalysisRoutes, DeadlineOnUnroutedClassChecksTheoremTwoBound) {
  const AnalysisReport over = analyze(parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class a root rt udr 160 5ms 256kbps ls linear 256kbps\n"
      "envelope a 160 256kbps\n"
      "source cbr a 256kbps 160 0s 1s\n"
      "deadline a 1ms\n"));
  const Diagnostic d = find_diag(over, "e2e-budget-exceeded");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.loc.line, 6u);

  const AnalysisReport ok = analyze(parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class a root rt udr 160 5ms 256kbps ls linear 256kbps\n"
      "envelope a 160 256kbps\n"
      "source cbr a 256kbps 160 0s 1s\n"
      "deadline a 50ms\n"));
  EXPECT_FALSE(has_diag(ok, "e2e-budget-exceeded"));

  const AnalysisReport unverifiable = analyze(parse_text(
      "link 10Mbps\n"
      "duration 1s\n"
      "class a root ls linear 256kbps\n"
      "source cbr a 256kbps 160 0s 1s\n"
      "deadline a 50ms\n"));
  const Diagnostic u = find_diag(unverifiable, "deadline-unverifiable");
  EXPECT_EQ(u.severity, Severity::kWarning);
  EXPECT_EQ(u.loc.line, 5u);
}

TEST(AnalysisRoutes, JsonV2CarriesSchemaAndFlowRows) {
  const std::string json = analyze(parse_text(kTwoHop)).to_json();
  for (const char* key :
       {"\"schema\": \"hfsc-lint-report-v2\"", "\"flows\": [",
        "\"class\": \"voice\"", "\"route\": [\"a\",\"b\"]",
        "\"env_burst_bytes\": 160", "\"e2e_bound_ns\"", "\"e2e_bound_ms\"",
        "\"total_backlog_bytes\"", "\"deadline_ms\": 20",
        "\"hops\": [", "\"node\": \"a\"", "\"node\": \"b\"",
        "\"in_burst_bytes\"", "\"delay_ms\"", "\"backlog_bytes\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
}

TEST(AnalysisRoutes, SarifReportShape) {
  std::string text(kTwoHop);
  const auto pos = text.find("deadline voice 20ms");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("deadline voice 20ms").size(),
               "deadline voice 2ms");
  const std::string sarif = to_sarif({analyze(parse_text(text))});
  for (const char* key :
       {"\"version\": \"2.1.0\"", "\"name\": \"hfsc_lint\"",
        "\"rules\": [", "{\"id\": \"e2e-budget-exceeded\"}",
        "\"ruleId\": \"e2e-budget-exceeded\"", "\"level\": \"error\"",
        "\"uri\": \"mem.hfsc\"", "\"startLine\": 11"}) {
    EXPECT_NE(sarif.find(key), std::string::npos) << key << "\n" << sarif;
  }
  // An empty report set is still a valid document.
  const std::string empty = to_sarif({});
  EXPECT_NE(empty.find("\"results\": []"), std::string::npos) << empty;
}

TEST(AnalysisRoutes, CommittedBackboneHasBudgetRowsAndMeetsItsDeadline) {
  const Scenario sc = Scenario::parse_file(std::string(HFSC_SOURCE_DIR) +
                                           "/scenarios/backbone.hfsc");
  const AnalysisReport r = analyze(sc);
  EXPECT_TRUE(r.clean()) << r.to_text();
  ASSERT_EQ(r.flows.size(), 1u);  // web has no envelope -> note, no row
  const FlowBudget& f = r.flows[0];
  EXPECT_EQ(f.cls, "voice");
  ASSERT_EQ(f.hops.size(), 2u);
  ASSERT_TRUE(f.e2e_delay.has_value());
  ASSERT_TRUE(f.deadline.has_value());
  EXPECT_LE(*f.e2e_delay, *f.deadline);
  EXPECT_TRUE(has_diag(r, "route-no-envelope"));
}

TEST(AnalysisRoutes, CommittedOverbudgetFixtureFiresWithExactLocation) {
  const std::string path =
      std::string(HFSC_SOURCE_DIR) + "/scenarios/overbudget.hfsc";
  const AnalysisReport r = analyze(Scenario::parse_file(path));
  const Diagnostic d = find_diag(r, "e2e-budget-exceeded");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.loc.file, path);
  EXPECT_EQ(d.loc.line, 28u);  // the `deadline voice 2ms` directive
  EXPECT_FALSE(r.clean());
}

TEST(AnalysisRoutes, AnalyzerAcceptsEveryShippedScenarioForm) {
  // Satellite lock-in: single-node `link` files, multi-node `node`/
  // `route` files and timed-churn `at` files all flow through analyze().
  for (const char* name :
       {"campus", "voip", "decoupling", "decoupling_vii", "churn_soak",
        "backbone"}) {
    const Scenario sc = Scenario::parse_file(
        std::string(HFSC_SOURCE_DIR) + "/scenarios/" + name + ".hfsc");
    const AnalysisReport r = analyze(sc);
    EXPECT_TRUE(r.clean()) << name << ":\n" << r.to_text();
    EXPECT_GT(r.num_classes, 0u) << name;
  }
}

}  // namespace
}  // namespace hfsc
