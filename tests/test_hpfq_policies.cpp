// H-PFQ with the alternative node policies (SFF/SSF) and deeper trees.
#include <gtest/gtest.h>

#include "sched/hpfq.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

class HPfqPolicy : public ::testing::TestWithParam<PfqPolicy> {};

TEST_P(HPfqPolicy, HierarchySharesHoldUnderEveryPolicy) {
  HPfq sched(mbps(8), GetParam());
  const ClassId orgA = sched.add_class(kRootClass, mbps(6));
  const ClassId orgB = sched.add_class(kRootClass, mbps(2));
  const ClassId a1 = sched.add_class(orgA, mbps(4));
  const ClassId a2 = sched.add_class(orgA, mbps(2));
  const ClassId b1 = sched.add_class(orgB, mbps(2));
  Simulator sim(mbps(8), sched);
  for (ClassId c : {a1, a2, b1}) sim.add<GreedySource>(c, 1000, 4, 0, sec(3));
  sim.run(sec(3));
  const auto& t = sim.tracker();
  EXPECT_NEAR(t.rate_mbps(a1, sec(1), sec(3)), 4.0, 0.3);
  EXPECT_NEAR(t.rate_mbps(a2, sec(1), sec(3)), 2.0, 0.3);
  EXPECT_NEAR(t.rate_mbps(b1, sec(1), sec(3)), 2.0, 0.3);
}

TEST_P(HPfqPolicy, FourLevelChainDeliversAndShares) {
  HPfq sched(mbps(8), GetParam());
  ClassId parent = kRootClass;
  std::vector<ClassId> side;
  RateBps budget = mbps(8);
  for (int i = 0; i < 4; ++i) {
    side.push_back(sched.add_class(parent, budget / 2));
    parent = sched.add_class(parent, budget / 2);
    budget /= 2;
  }
  const ClassId deep = sched.add_class(parent, budget);
  Simulator sim(mbps(8), sched);
  sim.add<GreedySource>(deep, 800, 4, 0, sec(3));
  for (ClassId c : side) sim.add<GreedySource>(c, 1200, 4, 0, sec(3));
  sim.run(sec(3));
  const auto& t = sim.tracker();
  // Halving at every level: 4, 2, 1, 0.5, and the deep leaf gets 0.5.
  EXPECT_NEAR(t.rate_mbps(side[0], sec(1), sec(3)), 4.0, 0.35);
  EXPECT_NEAR(t.rate_mbps(side[1], sec(1), sec(3)), 2.0, 0.3);
  EXPECT_NEAR(t.rate_mbps(side[2], sec(1), sec(3)), 1.0, 0.25);
  EXPECT_NEAR(t.rate_mbps(side[3], sec(1), sec(3)), 0.5, 0.2);
  EXPECT_NEAR(t.rate_mbps(deep, sec(1), sec(3)), 0.5, 0.2);
}

INSTANTIATE_TEST_SUITE_P(Policies, HPfqPolicy,
                         ::testing::Values(PfqPolicy::SEFF, PfqPolicy::SFF,
                                           PfqPolicy::SSF));

}  // namespace
}  // namespace hfsc
