// Tests for the runtime-curve min-fold (Fig. 8 / eqs. (7), (12)).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "curve/runtime_curve.hpp"
#include "util/rng.hpp"

namespace hfsc {
namespace {

TEST(RuntimeCurve, AnchoredEvaluation) {
  const ServiceCurve sc{mbps(10), msec(8), mbps(2)};
  const RuntimeCurve rc(sc, msec(100), 5000);
  EXPECT_EQ(rc.x2y(msec(100)), 5000u);
  EXPECT_EQ(rc.x2y(msec(50)), 5000u);  // clamps left of the anchor
  EXPECT_EQ(rc.x2y(msec(104)), 5000u + sc.eval(msec(4)));
  EXPECT_EQ(rc.x2y(msec(120)), 5000u + sc.eval(msec(20)));
}

TEST(RuntimeCurve, InverseMatchesForward) {
  const ServiceCurve sc{mbps(10), msec(8), mbps(2)};
  const RuntimeCurve rc(sc, msec(100), 5000);
  for (Bytes v : {Bytes{5000}, Bytes{6000}, Bytes{15000}, Bytes{20000}}) {
    const TimeNs t = rc.y2x(v);
    EXPECT_GE(rc.x2y(t), v);
    if (t > rc.x()) {
      EXPECT_LT(rc.x2y(t - 1), v);
    }
  }
  EXPECT_EQ(rc.y2x(0), msec(100));  // clamps to the anchor
}

TEST(RuntimeCurve, InverseOfZeroTailIsInfinity) {
  const ServiceCurve sc{mbps(10), msec(8), 0};
  const RuntimeCurve rc(sc, 0, 0);
  EXPECT_EQ(rc.y2x(10'001), kTimeInfinity);
}

TEST(RuntimeCurve, FlattenToSecondSlope) {
  const ServiceCurve convex{0, msec(10), mbps(1)};
  RuntimeCurve rc(convex, msec(50), 1000);
  rc.flatten_to_second_slope();
  // Now a line of slope m2 through the anchor.
  EXPECT_EQ(rc.x2y(msec(50)), 1000u);
  EXPECT_EQ(rc.x2y(msec(58)), 1000u + seg_x2y(msec(8), mbps(1)));
}

// --- min_with: concave cases --------------------------------------------

TEST(MinWith, ConcaveKeepsWhenOldBelow) {
  const ServiceCurve sc{mbps(10), msec(8), mbps(2)};
  RuntimeCurve rc(sc, 0, 0);
  // Fresh copy anchored at (10 ms, huge): old curve is below at the anchor
  // and stays the minimum.
  const RuntimeCurve before = rc;
  rc.min_with(sc, msec(10), 1'000'000);
  EXPECT_EQ(rc.x2y(msec(20)), before.x2y(msec(20)));
  EXPECT_EQ(rc.x2y(msec(200)), before.x2y(msec(200)));
}

TEST(MinWith, ConcaveReplacesWhenOldAbove) {
  const ServiceCurve sc{mbps(10), msec(8), mbps(2)};
  RuntimeCurve rc(sc, 0, 0);
  // Session idles long, reactivates with tiny cumulative work: the fresh
  // copy is below everywhere.
  rc.min_with(sc, sec(10), 0);
  EXPECT_EQ(rc.x(), sec(10));
  EXPECT_EQ(rc.y(), 0u);
  EXPECT_EQ(rc.x2y(sec(10) + msec(4)), sc.eval(msec(4)));
}

TEST(MinWith, ConcaveCrossingProducesPointwiseMin) {
  const ServiceCurve sc{mbps(10), msec(8), mbps(2)};
  RuntimeCurve rc(sc, 0, 0);
  // Reactivate at 12 ms having received less than the old curve's value
  // there but more than zero: the curves cross.
  const RuntimeCurve old = rc;
  const TimeNs a = msec(12);
  const Bytes c = 6000;  // old curve at 12 ms is 11000
  ASSERT_GT(old.x2y(a), c);
  rc.min_with(sc, a, c);
  const RuntimeCurve fresh(sc, a, c);
  // Pointwise: result == min(old, fresh) within rounding, sampled densely.
  for (TimeNs t = a; t < a + msec(40); t += usec(250)) {
    const Bytes want = std::min(old.x2y(t), fresh.x2y(t));
    const Bytes got = rc.x2y(t);
    ASSERT_LE(got, sat_add(want, 4)) << "t=" << t;
    ASSERT_GE(sat_add(got, 4), want) << "t=" << t;
  }
}

// --- min_with: convex cases ----------------------------------------------

TEST(MinWith, ConvexReplacesWhenFreshStartsBelow) {
  const ServiceCurve convex{0, msec(10), mbps(1)};
  RuntimeCurve rc(convex, 0, 0);
  rc.min_with(convex, msec(50), 100);  // old at 50 ms is 5000 > 100
  EXPECT_EQ(rc.x(), msec(50));
  EXPECT_EQ(rc.y(), 100u);
}

TEST(MinWith, ConvexKeepsWhenFreshStartsAbove) {
  const ServiceCurve convex{0, msec(10), mbps(1)};
  RuntimeCurve rc(convex, 0, 0);
  const RuntimeCurve before = rc;
  // cumul far above the old curve's current value: keep the old curve.
  rc.min_with(convex, msec(5), 1'000'000);
  EXPECT_EQ(rc.x2y(msec(30)), before.x2y(msec(30)));
}

TEST(MinWith, LinearBehavesLikeVirtualClockReset) {
  const ServiceCurve lin = ServiceCurve::linear(mbps(1));
  RuntimeCurve rc(lin, 0, 0);
  // After an idle period the fresh anchored line is below: replace — this
  // is what removes the virtual-clock punishment in fair schedulers.
  rc.min_with(lin, sec(5), 100);
  EXPECT_EQ(rc.x(), sec(5));
  EXPECT_EQ(rc.x2y(sec(5) + msec(1)), 100u + seg_x2y(msec(1), mbps(1)));
}

// --- property sweep -------------------------------------------------------

struct MinWithCase {
  ServiceCurve sc;
  std::uint64_t seed;
};

class MinWithProperty : public ::testing::TestWithParam<MinWithCase> {};

// Repeatedly fold fresh anchors (monotone times, arbitrary work values
// below the curve) and verify the result is always <= every fresh copy
// ever folded (the min property) and nondecreasing in t.
TEST_P(MinWithProperty, StaysBelowAllFoldedCopiesAndMonotone) {
  const auto& [sc, seed] = GetParam();
  Rng rng(seed);
  RuntimeCurve rc(sc, 0, 0);
  std::vector<RuntimeCurve> copies{rc};
  TimeNs a = 0;
  Bytes work = 0;
  for (int i = 0; i < 20; ++i) {
    a += msec(1) + rng.uniform(0, msec(20));
    // Work can only grow, and (for the deadline curve use) never exceeds
    // the current runtime curve's value at the reactivation instant.
    const Bytes ceiling = rc.x2y(a);
    work = work + rng.uniform(0, ceiling > work ? ceiling - work : 0);
    rc.min_with(sc, a, work);
    copies.emplace_back(sc, a, work);
    if (sc.m1 < sc.m2) {
      // The convex fold is exact only when replacement happens; when the
      // old curve is kept it stays the pointwise min of everything folded
      // so the assertions below still must hold.
    }
    Bytes prev = 0;
    for (TimeNs t = a; t < a + msec(60); t += usec(500)) {
      const Bytes got = rc.x2y(t);
      ASSERT_GE(sat_add(got, 2), prev) << "not monotone at t=" << t;
      prev = got;
      for (const auto& copy : copies) {
        ASSERT_LE(got, sat_add(copy.x2y(t), 4))
            << "above a folded copy at t=" << t << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Curves, MinWithProperty,
    ::testing::Values(
        MinWithCase{{mbps(10), msec(8), mbps(2)}, 1},     // concave
        MinWithCase{{mbps(100), msec(1), mbps(90)}, 2},   // mildly concave
        MinWithCase{{kbps(256), msec(50), kbps(64)}, 3},  // slow concave
        MinWithCase{{0, msec(10), mbps(1)}, 4},           // convex
        MinWithCase{{0, msec(100), kbps(512)}, 5},        // slow convex
        MinWithCase{ServiceCurve::linear(mbps(5)), 6},    // linear
        MinWithCase{ServiceCurve::linear(kbps(64)), 7}));

// --- incremental-inverse cache vs cold path at saturation ----------------
//
// y2x's second-segment fast path advances a cached (quotient, remainder)
// pair with 64-bit arithmetic, while the cold path computes the same
// inverse with a saturating 128-bit divide.  The two must stay
// bit-identical even where the quotient approaches and crosses the
// 64-bit range — a curve with a tiny m2 gets there in a handful of
// queries, and an unguarded `inv_q_ += add` (or the ceil's +1 carry)
// wraps where the cold path saturates to kTimeInfinity.

// Ground truth: a freshly constructed curve answers its first query via
// the cold path (the cache starts invalid).
TimeNs cold_y2x(const ServiceCurve& sc, Bytes v) {
  const RuntimeCurve fresh(sc, 0, 0);
  return fresh.y2x(v);
}

TEST(RuntimeCurve, CachedInverseMatchesColdAcrossSaturation) {
  for (const RateBps m2 : {RateBps{1}, RateBps{3}, RateBps{7}}) {
    const ServiceCurve sc{0, 0, m2};
    RuntimeCurve warm(sc, 0, 0);
    // Walk v monotonically (the scheduler's query pattern) from well
    // inside cacheable territory, across the 2^62 re-seed refusal line,
    // up to and past the point where the true inverse saturates to
    // kTimeInfinity.  Mixed step sizes keep the walk hitting both the
    // incremental fast path and every cold fallback.
    const Bytes v62 = muldiv_floor(std::uint64_t{1} << 62, m2, kNsPerSec);
    const Bytes vinf = muldiv_floor(~std::uint64_t{0}, m2, kNsPerSec);
    const Bytes steps[] = {1, 3, v62 / 7, 1, 2, v62 / 3, 5, vinf / 4, 1,
                           1, vinf / 3,  7, 1, vinf / 2, 1, 3};
    Bytes v = v62 > 64 ? v62 - 64 : 1;
    for (const Bytes s : steps) {
      ASSERT_EQ(warm.y2x(v), cold_y2x(sc, v))
          << "cached path diverged from cold at v=" << v << " m2=" << m2;
      v = sat_add(v, s);
    }
    // Terminal check: far past saturation both sides pin at infinity.
    EXPECT_EQ(warm.y2x(~std::uint64_t{0} - 1), kTimeInfinity);
    EXPECT_EQ(cold_y2x(sc, ~std::uint64_t{0} - 1), kTimeInfinity);
    // And the warm curve recovers normal service after saturation
    // dropped its cache (queries are allowed to keep coming).
    EXPECT_EQ(warm.y2x(~std::uint64_t{0} - 1), kTimeInfinity);
  }
}

TEST(RuntimeCurve, CacheSurvivesCheckpointRestoreBitIdentical) {
  // from_parts() is the checkpoint-restore constructor: it must produce
  // a curve whose (cold, cache-less) answers match the original warm
  // curve's cached answers query for query — including right at the
  // saturation boundary the cache refuses to cross.
  const ServiceCurve sc{0, 0, 2};
  RuntimeCurve warm(sc, usec(5), 100);
  const Bytes v62 = muldiv_floor(std::uint64_t{1} << 62, 2, kNsPerSec);
  std::vector<Bytes> probes = {200,         5000,       v62 / 2,
                               v62 - 1,     v62 + 1000, v62 * 2,
                               v62 * 3 + 7, ~std::uint64_t{0} / 2};
  for (const Bytes v : probes) (void)warm.y2x(v);  // warm the cache
  const RuntimeCurve restored = RuntimeCurve::from_parts(
      warm.x(), warm.y(), warm.dx(), warm.dy(), warm.m1(), warm.m2());
  for (const Bytes v : probes) {
    ASSERT_EQ(warm.y2x(v), restored.y2x(v))
        << "restored curve diverged at v=" << v;
  }
}

}  // namespace
}  // namespace hfsc
