// Tests for the traffic-conditioning decorators (token bucket policer,
// RED) and their interaction with H-FSC guarantees.
#include <gtest/gtest.h>

#include "core/hfsc.hpp"
#include "sched/conditioning.hpp"
#include "sched/fifo.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

TEST(TokenBucket, BurstThenRate) {
  TokenBucket tb(3000, mbps(8));  // 1e6 B/s
  // The whole burst conforms immediately.
  EXPECT_TRUE(tb.conforms(0, 1500));
  EXPECT_TRUE(tb.conforms(0, 1500));
  EXPECT_FALSE(tb.conforms(0, 1));
  // After 1 ms, 1000 tokens have refilled.
  EXPECT_TRUE(tb.conforms(msec(1), 1000));
  EXPECT_FALSE(tb.conforms(msec(1), 1));
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket tb(2000, mbps(8));
  EXPECT_EQ(tb.tokens(sec(10)), 2000u);  // long idle does not overflow
}

TEST(Policed, DropsNonconformingOnly) {
  Fifo fifo;
  Policed sched(fifo);
  sched.set_policer(1, 2000, kbps(800));  // 100 kB/s, 2 kB burst
  Simulator sim(mbps(10), sched);
  sim.add<CbrSource>(1, kbps(1600), 1000, 0, sec(2));  // 2x the rate
  sim.add<CbrSource>(2, kbps(800), 1000, 0, sec(2));   // unpoliced class
  sim.run_all();
  // Class 1 passes roughly half its packets; class 2 is untouched.
  EXPECT_NEAR(static_cast<double>(sched.passed(1)), 200.0, 10.0);
  EXPECT_NEAR(static_cast<double>(sched.dropped(1)), 200.0, 10.0);
  EXPECT_EQ(sched.dropped(2), 0u);
  EXPECT_EQ(sim.tracker().packets(2), 200u);
}

TEST(Policed, ProtectsSiblingGuarantee) {
  // A misbehaving flow is clipped to its envelope, so the H-FSC delay
  // bound for its *own* conforming packets survives.
  Hfsc hfsc(mbps(10));
  const ClassId rt = hfsc.add_class(
      kRootClass, ClassConfig::both(from_udr(1500, msec(5), mbps(1))));
  const ClassId bulk = hfsc.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(9))));
  Policed sched(hfsc);
  sched.set_policer(rt, 1500, mbps(1));
  Simulator sim(mbps(10), sched);
  sim.add<CbrSource>(rt, mbps(4), 750, 0, sec(2));  // 4x the reservation
  sim.add<GreedySource>(bulk, 1500, 8, 0, sec(2));
  sim.run(sec(2));
  // Without policing this class would build an unbounded queue (it only
  // gets 1 Mb/s); with policing the surviving packets meet the bound.
  EXPECT_GT(sched.dropped(rt), 100u);
  EXPECT_LT(sim.tracker().max_delay_ms(rt), 6.3);
}

TEST(Red, NoDropsBelowMinThreshold) {
  Fifo fifo;
  Red sched(fifo, 42);
  sched.configure(1, RedParams{50'000, 100'000, 0.1, 0.002});
  Simulator sim(mbps(10), sched);
  sim.add<CbrSource>(1, mbps(5), 1000, 0, sec(1));  // under capacity
  sim.run_all();
  EXPECT_EQ(sched.dropped(1), 0u);
  EXPECT_EQ(sim.tracker().packets(1), 625u);
}

TEST(Red, DropsUnderStandingQueue) {
  // Overdriven class: the EWMA climbs past min_th and RED sheds load.
  Hfsc hfsc(mbps(10));
  const ClassId hot = hfsc.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(2))));
  const ClassId cold = hfsc.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(8))));
  Red sched(hfsc, 7);
  sched.configure(hot, RedParams{10'000, 40'000, 0.2, 0.02});
  Simulator sim(mbps(10), sched);
  sim.add<CbrSource>(hot, mbps(6), 1000, 0, sec(3));  // 3x its share
  sim.add<GreedySource>(cold, 1000, 6, 0, sec(3));    // pins hot to 2 Mb/s
  sim.run_all();
  EXPECT_GT(sched.dropped(hot), 50u);
  EXPECT_EQ(sched.dropped(cold), 0u);
  // The standing queue is held near the thresholds instead of growing
  // for the whole run (unbounded would be ~1.5 MB).
  EXPECT_LT(sched.avg_queue_bytes(hot), 60'000.0);
}

TEST(Conditioning, DecoratorsStack) {
  Fifo fifo;
  Policed pol(fifo);
  Red red(pol, 1);
  pol.set_policer(1, 3000, mbps(1));
  red.configure(1, RedParams{5'000, 20'000, 0.5, 0.01});
  red.enqueue(0, Packet{1, 1000, 0, 0});
  EXPECT_EQ(red.backlog_packets(), 1u);
  EXPECT_TRUE(red.dequeue(0).has_value());
  EXPECT_EQ(red.name(), "FIFO+police+red");
}

}  // namespace
}  // namespace hfsc
