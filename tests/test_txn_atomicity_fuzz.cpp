// Atomicity fuzzing for Hfsc::Txn (src/core/txn.cpp).
//
// A live scheduler and an identically constructed control twin receive
// the same traffic.  Between traffic bursts the live instance is attacked
// with >= 10k randomly generated COMMIT BATCHES THAT MUST FAIL — a valid
// prefix of staged ops followed by an op that breaks a structural rule
// (add under a backlogged leaf, delete an interior class, reference a
// bogus or twice-deleted id, an unsupported curve shape) or the admission
// feasibility condition.  Every commit must throw, and after the throw
// the live scheduler's state digest (core/checkpoint.hpp) must equal both
// its own pre-batch digest and the control twin's — the scheduler behaves
// as if the batch never existed.  After the fuzz loop both instances are
// drained in lockstep and must release identical packet sequences.
#include <gtest/gtest.h>

#include <vector>

#include "core/auditor.hpp"
#include "core/checkpoint.hpp"
#include "core/hfsc.hpp"
#include "util/rng.hpp"

namespace hfsc {
namespace {

struct Twin {
  Hfsc live;
  Hfsc ctrl;
  std::vector<ClassId> orgs;
  std::vector<ClassId> leaves;

  explicit Twin(RateBps link) : live(link), ctrl(link) {
    auto build = [&](Hfsc& s) {
      std::vector<ClassId> ls, os;
      for (int o = 0; o < 2; ++o) {
        const ClassId org = s.add_class(
            kRootClass,
            ClassConfig::link_share_only(ServiceCurve::linear(link / 2)));
        os.push_back(org);
        for (int l = 0; l < 3; ++l) {
          // ~10% of the link each: 60% admission utilization total, so a
          // same-size add still fits but a link-size add cannot.
          ls.push_back(s.add_class(
              org, ClassConfig::both(ServiceCurve::linear(link / 10))));
        }
      }
      s.enable_admission_control();
      orgs = os;
      leaves = ls;
    };
    build(ctrl);
    build(live);
  }
};

TEST(TxnAtomicityFuzz, TenThousandFailingBatchesLeaveNoTrace) {
  const RateBps link = mbps(40);
  Twin tw(link);
  Rng rng(0x7A11);

  TimeNs now = 0;
  std::uint64_t seq = 0;
  constexpr int kBatches = 10'000;
  int by_kind[6] = {0, 0, 0, 0, 0, 0};

  for (int round = 0; round < kBatches; ++round) {
    // Identical traffic to both twins: a small burst, then some drains.
    const int burst = static_cast<int>(rng.uniform(0, 3));
    for (int i = 0; i < burst; ++i) {
      const std::size_t l = rng.uniform(0, tw.leaves.size() - 1);
      const Bytes len = 40 + rng.uniform(0, 1460);
      tw.live.enqueue(now, Packet{tw.leaves[l], len, now, seq});
      tw.ctrl.enqueue(now, Packet{tw.leaves[l], len, now, seq});
      ++seq;
    }
    const int drains = static_cast<int>(rng.uniform(0, 2));
    for (int i = 0; i < drains; ++i) {
      const auto lp = tw.live.dequeue(now);
      const auto cp = tw.ctrl.dequeue(now);
      ASSERT_EQ(lp.has_value(), cp.has_value());
      if (lp) {
        ASSERT_EQ(lp->cls, cp->cls);
        ASSERT_EQ(lp->seq, cp->seq);
        now += tx_time(lp->len, link);
      }
    }
    now += rng.uniform(0, usec(50));

    // Pick the poison kind up front: kind 0 needs a backlogged victim, and
    // any traffic used to create one must land (mirrored to both twins)
    // BEFORE the pre-batch digest is taken.
    const int kind = static_cast<int>(rng.uniform(0, 5));
    ++by_kind[kind];
    ClassId victim = tw.leaves[rng.uniform(0, tw.leaves.size() - 1)];
    if (kind == 0 && !tw.live.active(victim)) {
      tw.live.enqueue(now, Packet{victim, 100, now, seq});
      tw.ctrl.enqueue(now, Packet{victim, 100, now, seq});
      ++seq;
    }

    const std::uint64_t before = state_digest(tw.live);

    // Stage a batch that MUST fail: a random valid prefix, then poison.
    Hfsc::Txn txn = tw.live.begin();
    const int prefix = static_cast<int>(rng.uniform(0, 2));
    for (int i = 0; i < prefix; ++i) {
      txn.add_class(tw.orgs[rng.uniform(0, tw.orgs.size() - 1)],
                    ClassConfig::link_share_only(
                        ServiceCurve::linear(kbps(1 + rng.uniform(0, 99)))));
    }
    switch (kind) {
      case 0:  // add under a backlogged leaf
        txn.add_class(victim,
                      ClassConfig::link_share_only(
                          ServiceCurve::linear(kbps(10))));
        break;
      case 1:  // delete an interior class with live children
        txn.delete_class(tw.orgs[rng.uniform(0, tw.orgs.size() - 1)]);
        break;
      case 2:  // reference a class id that does not exist
        txn.change_class(now, static_cast<ClassId>(1u << 30),
                         ClassConfig::link_share_only(
                             ServiceCurve::linear(kbps(10))));
        break;
      case 3: {  // double delete inside the batch
        const ClassId fresh = txn.add_class(
            tw.orgs[0], ClassConfig::link_share_only(
                            ServiceCurve::linear(kbps(10))));
        txn.delete_class(fresh);
        txn.delete_class(fresh);
        break;
      }
      case 4:  // unsupported curve shape (m1 > 0 but not concave)
        txn.change_class(now, tw.leaves[0],
                         ClassConfig::both(
                             ServiceCurve{kbps(10), msec(1), kbps(500)}));
        break;
      default:  // admission: an rt curve the link cannot absorb
        txn.add_class(tw.orgs[0], ClassConfig::both(
                                      ServiceCurve::linear(link)));
        break;
    }

    EXPECT_THROW(txn.commit(), Error) << "batch kind " << kind;
    txn.rollback();

    // Atomicity: bit-for-bit untouched, and still equal to the twin that
    // never saw any transaction at all.
    ASSERT_EQ(state_digest(tw.live), before) << "batch kind " << kind;
    ASSERT_EQ(state_digest(tw.live), state_digest(tw.ctrl));
    if (round % 1024 == 0) {
      const AuditReport report = audit(tw.live);
      ASSERT_TRUE(report.ok()) << report.to_string();
    }
  }

  // Every poison kind must actually have been generated.
  for (int k = 0; k < 6; ++k) EXPECT_GT(by_kind[k], 0) << "kind " << k;

  // Lockstep drain: identical packet sequences to the last packet.
  while (tw.live.backlog_packets() > 0) {
    const auto lp = tw.live.dequeue(now);
    const auto cp = tw.ctrl.dequeue(now);
    ASSERT_TRUE(lp.has_value());
    ASSERT_TRUE(cp.has_value());
    ASSERT_EQ(lp->cls, cp->cls);
    ASSERT_EQ(lp->seq, cp->seq);
    ASSERT_EQ(lp->len, cp->len);
    now += tx_time(lp->len, link);
  }
  EXPECT_EQ(tw.ctrl.backlog_packets(), 0u);
  EXPECT_GT(tw.live.admission_rejections(), 0u);

  const AuditReport final_report = audit(tw.live);
  EXPECT_TRUE(final_report.ok()) << final_report.to_string();
}

}  // namespace
}  // namespace hfsc
