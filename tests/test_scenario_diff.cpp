// Engine-equivalence pin for the topology refactor: every single-node
// scenario must produce bit-identical results through the routed
// Topology engine and through the legacy single-link engine (Simulator
// driving one compiled hierarchy), including the H-FSC state digest.
//
// The legacy runner below is a faithful transcription of the pre-refactor
// run_scenario body; it exists only here, as the reference the refactor
// is measured against.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "config/hierarchy_spec.hpp"
#include "core/checkpoint.hpp"
#include "core/hfsc.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

// The single-link engine exactly as it ran before the topology refactor
// (same compile, install and gather order), plus the post-run state
// digest the refactored engine now reports.
ScenarioResult legacy_run(const Scenario& sc, SchedulerKind kind) {
  const HierarchySpec spec = sc.to_hierarchy_spec();
  HierarchySpec::CompileOptions copts;
  HierarchySpec::Compiled compiled = spec.compile(kind, sc.link_rate, copts);
  Scheduler& sched = *compiled.sched;
  const HierarchySpec::IdMap& ids = compiled.ids;

  Simulator sim(sc.link_rate, sched, sc.window);
  for (const ScenarioSource& s : sc.sources) {
    const ClassId cls = ids.at(s.cls);
    switch (s.kind) {
      case ScenarioSource::Kind::kCbr:
        sim.add<CbrSource>(cls, s.rate, s.pkt_len, s.start, s.stop);
        break;
      case ScenarioSource::Kind::kPoisson:
        sim.add<PoissonSource>(cls, s.rate, s.pkt_len, s.start, s.stop,
                               s.seed);
        break;
      case ScenarioSource::Kind::kOnOff:
        sim.add<OnOffSource>(cls, s.rate, s.pkt_len, s.mean_on, s.mean_off,
                             s.start, s.stop, s.seed);
        break;
      case ScenarioSource::Kind::kGreedy:
        sim.add<GreedySource>(cls, s.pkt_len, s.window, s.start, s.stop);
        break;
      case ScenarioSource::Kind::kVideo:
        sim.add<VideoSource>(cls, s.fps, s.mean_frame, s.max_frame, s.mtu,
                             s.start, s.stop, s.seed);
        break;
      case ScenarioSource::Kind::kPareto:
        sim.add<ParetoBurstSource>(cls, s.rate, s.pkt_len, s.mean_on,
                                   s.mean_off, s.alpha, s.start, s.stop,
                                   s.seed);
        break;
      case ScenarioSource::Kind::kTcpish:
        sim.add<TcpishSource>(cls, s.pkt_len, s.window, s.start, s.stop);
        break;
    }
  }
  sim.run(sc.duration);

  ScenarioResult out;
  out.scheduler = std::string(sched.name());
  out.notes = std::move(compiled.notes);
  const FlowTracker& t = sim.tracker();
  for (const ScenarioClass& c : sc.classes) {
    const auto it = ids.find(c.name);
    if (it == ids.end()) continue;  // dropped by a flat mapping
    const ClassId id = it->second;
    if (!spec.is_leaf(c.name) && !t.has(id)) continue;  // interior class
    ScenarioResult::PerClass pc;
    pc.name = c.name;
    pc.packets = t.packets(id);
    pc.bytes = t.bytes(id);
    pc.dropped = sched.class_drops(id);
    pc.mean_delay_ms = t.mean_delay_ms(id);
    pc.p99_delay_ms = t.delay_quantile_ms(id, 0.99);
    pc.max_delay_ms = t.max_delay_ms(id);
    pc.rate_mbps = t.rate_mbps(id, 0, sc.duration);
    out.per_class.push_back(std::move(pc));
  }
  out.link_utilization = static_cast<double>(sim.link().busy_time()) /
                         static_cast<double>(sc.duration);
  if (compiled.hfsc != nullptr) {
    out.state_digest = state_digest(*compiled.hfsc);
  }
  return out;
}

// Exact equality, doubles included: the refactor promises bit-identity,
// not tolerance-identity.
void expect_identical(const ScenarioResult& legacy,
                      const ScenarioResult& now) {
  ASSERT_EQ(legacy.per_class.size(), now.per_class.size());
  for (std::size_t i = 0; i < legacy.per_class.size(); ++i) {
    const auto& l = legacy.per_class[i];
    const auto& n = now.per_class[i];
    SCOPED_TRACE(l.name);
    EXPECT_EQ(l.name, n.name);
    EXPECT_EQ(l.packets, n.packets);
    EXPECT_EQ(l.bytes, n.bytes);
    EXPECT_EQ(l.dropped, n.dropped);
    EXPECT_EQ(l.mean_delay_ms, n.mean_delay_ms);
    EXPECT_EQ(l.p99_delay_ms, n.p99_delay_ms);
    EXPECT_EQ(l.max_delay_ms, n.max_delay_ms);
    EXPECT_EQ(l.rate_mbps, n.rate_mbps);
  }
  EXPECT_EQ(legacy.link_utilization, now.link_utilization);
  EXPECT_EQ(legacy.state_digest, now.state_digest);
  EXPECT_EQ(legacy.notes, now.notes);
  // The rendered single-node table must be byte-for-byte what the old
  // engine printed.
  EXPECT_EQ(legacy.to_table(), now.to_table());
}

TEST(ScenarioDiff, ShippedSingleNodeScenariosAreBitIdentical) {
  for (const char* path :
       {"scenarios/campus.hfsc", "scenarios/voip.hfsc",
        "scenarios/decoupling.hfsc", "scenarios/decoupling_vii.hfsc"}) {
    SCOPED_TRACE(path);
    const Scenario sc =
        Scenario::parse_file(std::string(HFSC_SOURCE_DIR) + "/" + path);
    const ScenarioResult legacy = legacy_run(sc, sc.scheduler);
    const ScenarioResult now = run_scenario(sc);
    expect_identical(legacy, now);
  }
}

TEST(ScenarioDiff, EveryFamilyMatchesTheLegacyEngine) {
  std::istringstream in(R"(
link 10Mbps
duration 2s
class org   root ls linear 10Mbps
class voice org  rt udr 160 5ms 64kbps  ls linear 64kbps
class web   org  ls linear 5Mbps  qlimit 60
class bulk  org  ls linear 4Mbps  ul linear 6Mbps  qlimit 60
source cbr    voice 64kbps 160 0s 2s
source pareto web   6Mbps 1200 20ms 60ms 1.5 0s 2s 9
source tcpish bulk  1500 24 0s 2s
source onoff  web   3Mbps 900 30ms 30ms 0.5s 2s 4
)");
  const Scenario sc = Scenario::parse(in);
  for (const SchedulerKind kind :
       {SchedulerKind::kHfsc, SchedulerKind::kHpfq, SchedulerKind::kCbq,
        SchedulerKind::kDrr, SchedulerKind::kSced,
        SchedulerKind::kVirtualClock, SchedulerKind::kFifo}) {
    SCOPED_TRACE(to_string(kind));
    const ScenarioResult legacy = legacy_run(sc, kind);
    ScenarioRunOptions opts;
    opts.scheduler = kind;
    const ScenarioResult now = run_scenario(sc, opts);
    expect_identical(legacy, now);
  }
}

// The refactored engine additionally reports per-node conservation for
// single-node runs; the identity must hold on the same runs the
// bit-identity pin covers.
TEST(ScenarioDiff, SingleNodeRunsAreConserved) {
  for (const char* path :
       {"scenarios/campus.hfsc", "scenarios/voip.hfsc",
        "scenarios/decoupling.hfsc"}) {
    SCOPED_TRACE(path);
    const Scenario sc =
        Scenario::parse_file(std::string(HFSC_SOURCE_DIR) + "/" + path);
    const ScenarioResult r = run_scenario(sc);
    ASSERT_EQ(r.nodes.size(), 1u);
    EXPECT_TRUE(r.conserved())
        << "offered " << r.offered() << " != sent " << r.sent()
        << " + dropped " << r.dropped() << " + rejected " << r.rejected()
        << " + backlog " << r.backlog();
  }
}

}  // namespace
}  // namespace hfsc
