// Link-sharing behaviour of H-FSC: hierarchical distribution, excess
// redistribution, fairness / non-punishment (Sections III, IV-C), and the
// paper's Fig. 2 / Fig. 3 constructions.
#include <gtest/gtest.h>

#include "core/hfsc.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

ClassConfig ls_lin(RateBps r) {
  return ClassConfig::link_share_only(ServiceCurve::linear(r));
}

TEST(HfscLinkShare, FollowsHierarchyUnderSaturation) {
  // Fig. 1 in miniature: orgs 6:2, leaves 4:2 and 1:1.
  Hfsc sched(mbps(8));
  const ClassId orgA = sched.add_class(kRootClass, ls_lin(mbps(6)));
  const ClassId orgB = sched.add_class(kRootClass, ls_lin(mbps(2)));
  const ClassId a1 = sched.add_class(orgA, ls_lin(mbps(4)));
  const ClassId a2 = sched.add_class(orgA, ls_lin(mbps(2)));
  const ClassId b1 = sched.add_class(orgB, ls_lin(mbps(1)));
  const ClassId b2 = sched.add_class(orgB, ls_lin(mbps(1)));
  Simulator sim(mbps(8), sched);
  for (ClassId c : {a1, a2, b1, b2}) {
    sim.add<GreedySource>(c, 1000, 4, 0, sec(4));
  }
  sim.run(sec(4));
  const auto& t = sim.tracker();
  EXPECT_NEAR(t.rate_mbps(a1, sec(1), sec(4)), 4.0, 0.25);
  EXPECT_NEAR(t.rate_mbps(a2, sec(1), sec(4)), 2.0, 0.25);
  EXPECT_NEAR(t.rate_mbps(b1, sec(1), sec(4)), 1.0, 0.25);
  EXPECT_NEAR(t.rate_mbps(b2, sec(1), sec(4)), 1.0, 0.25);
}

TEST(HfscLinkShare, ExcessStaysInsideTheOrganization) {
  // The first link-sharing goal (Section I): when CMU's data class goes
  // idle, CMU's other classes take the excess ahead of U.Pitt.
  Hfsc sched(mbps(8));
  const ClassId orgA = sched.add_class(kRootClass, ls_lin(mbps(4)));
  const ClassId orgB = sched.add_class(kRootClass, ls_lin(mbps(4)));
  const ClassId a1 = sched.add_class(orgA, ls_lin(mbps(2)));
  const ClassId a2 = sched.add_class(orgA, ls_lin(mbps(2)));
  const ClassId b1 = sched.add_class(orgB, ls_lin(mbps(4)));
  Simulator sim(mbps(8), sched);
  sim.add<GreedySource>(a1, 1000, 4, 0, sec(4));
  sim.add<GreedySource>(a2, 1000, 4, 0, sec(2));  // idles at 2 s
  sim.add<GreedySource>(b1, 1000, 4, 0, sec(4));
  sim.run(sec(4));
  const auto& t = sim.tracker();
  EXPECT_NEAR(t.rate_mbps(a1, sec(1), sec(2)), 2.0, 0.25);
  EXPECT_NEAR(t.rate_mbps(a1, sec(2) + msec(200), sec(4)), 4.0, 0.25);
  EXPECT_NEAR(t.rate_mbps(b1, sec(2) + msec(200), sec(4)), 4.0, 0.25);
}

TEST(HfscLinkShare, ExcessSplitsByServiceCurvesAmongSiblings) {
  // Second link-sharing goal: excess distributed in proportion to the
  // (linear) service curves of the active siblings.
  Hfsc sched(mbps(9));
  const ClassId a = sched.add_class(kRootClass, ls_lin(mbps(2)));
  const ClassId b = sched.add_class(kRootClass, ls_lin(mbps(1)));
  const ClassId c = sched.add_class(kRootClass, ls_lin(mbps(3)));
  Simulator sim(mbps(9), sched);
  // Only a and b are active: the 9 Mb/s splits 2:1.
  sim.add<GreedySource>(a, 1000, 4, 0, sec(3));
  sim.add<GreedySource>(b, 1000, 4, 0, sec(3));
  (void)c;
  sim.run(sec(3));
  EXPECT_NEAR(sim.tracker().rate_mbps(a, sec(1), sec(3)), 6.0, 0.3);
  EXPECT_NEAR(sim.tracker().rate_mbps(b, sec(1), sec(3)), 3.0, 0.3);
}

TEST(HfscLinkShare, NoPunishmentAfterUsingExcess) {
  // Fig. 2(d) behaviour inside H-FSC: session 1 uses the idle link, then
  // session 2 wakes; session 1 must keep receiving service (contrast
  // Sced.Fig2PunishmentScenario).
  const ServiceCurve s1{0, msec(200), mbps(6)};        // convex
  const ServiceCurve s2{mbps(8), msec(200), mbps(4)};  // concave
  Hfsc sched(mbps(8));
  const ClassId c1 = sched.add_class(kRootClass, ClassConfig::both(s1));
  const ClassId c2 = sched.add_class(kRootClass, ClassConfig::both(s2));
  Simulator sim(mbps(8), sched);
  const TimeNs t1 = msec(500);
  sim.add<GreedySource>(c1, 1000, 4, 0, sec(2));
  sim.add<GreedySource>(c2, 1000, 4, t1, sec(2));
  sim.run(sec(2));
  const auto& t = sim.tracker();
  // Session 1 had the whole link to itself first...
  EXPECT_NEAR(t.rate_mbps(c1, msec(100), t1), 8.0, 0.3);
  // During session 2's burst phase (m1 equals the link rate) the leaf
  // guarantee legitimately takes the whole link — the paper's fairness /
  // guarantee tradeoff resolved in favour of the guarantee.
  EXPECT_GT(t.rate_mbps(c2, t1, t1 + msec(200)), 7.0);
  // The non-punishment property shows in when sharing resumes: as soon as
  // the burst phase ends (t1 + 200 ms), session 1 is back to a fair
  // curve-proportional share — its 500 ms of excess consumption did NOT
  // extend its exclusion (under SCED it would: the punishment horizon
  // grows with the excess, see Sced.Fig2PunishmentScenario).
  EXPECT_GT(t.rate_mbps(c1, t1 + msec(220), t1 + msec(420)), 3.0);
  EXPECT_GT(t.rate_mbps(c2, t1 + msec(220), t1 + msec(420)), 3.0);
}

TEST(HfscLinkShare, Fig3LeafGuaranteesHoldThroughOverload) {
  // Fig. 3: interior curves are the sums of their children's; sessions
  // 2-4 active from 0, session 1 wakes at t1 when the sum of obligations
  // exceeds the server curve.  H-FSC's choice: leaf curves win.
  const RateBps link = mbps(8);
  // Two orgs at 4 Mb/s each; each org has two 2 Mb/s leaves with concave
  // burst components.
  const ServiceCurve leaf_sc{mbps(4), msec(20), mbps(2)};
  Hfsc sched(link);
  const ClassId orgA = sched.add_class(kRootClass, ls_lin(mbps(4)));
  const ClassId orgB = sched.add_class(kRootClass, ls_lin(mbps(4)));
  const ClassId s1 = sched.add_class(orgA, ClassConfig::both(leaf_sc));
  const ClassId s2 = sched.add_class(orgA, ClassConfig::both(leaf_sc));
  const ClassId s3 = sched.add_class(orgB, ClassConfig::both(leaf_sc));
  const ClassId s4 = sched.add_class(orgB, ClassConfig::both(leaf_sc));
  Simulator sim(link, sched);
  const TimeNs t1 = sec(1);
  sim.add<GreedySource>(s2, 1000, 4, 0, sec(3));
  sim.add<GreedySource>(s3, 1000, 4, 0, sec(3));
  sim.add<GreedySource>(s4, 1000, 4, 0, sec(3));
  sim.add<GreedySource>(s1, 1000, 4, t1, sec(3));
  sim.run(sec(3));
  const auto& t = sim.tracker();
  // Before t1, session 2 took org A's whole share.
  EXPECT_NEAR(t.rate_mbps(s2, msec(200), t1), 4.0, 0.3);
  // After the dust settles all four get their 2 Mb/s.
  for (ClassId s : {s1, s2, s3, s4}) {
    EXPECT_NEAR(t.rate_mbps(s, t1 + msec(300), sec(3)), 2.0, 0.3)
        << "session " << s;
  }
  // During the overload window right after t1 the configuration is
  // infeasible (the m1's sum to 16 Mb/s on an 8 Mb/s link — exactly the
  // Fig. 3 impossibility).  H-FSC still favours session 1's burst: its
  // fresh deadline curve is steeper than the siblings' settled ones, so
  // it receives more than its 2 Mb/s long-term share immediately.
  EXPECT_GT(t.rate_mbps(s1, t1, t1 + msec(50)), 2.2);
}

TEST(HfscLinkShare, SiblingVirtualTimeDiscrepancyBounded) {
  // Section IV-C/VI: with the midpoint system virtual time, the spread of
  // active siblings' virtual times stays bounded by a few packet times at
  // their curves, and does not grow with time.
  Hfsc sched(mbps(8));
  const ClassId a = sched.add_class(kRootClass, ls_lin(mbps(4)));
  const ClassId b = sched.add_class(kRootClass, ls_lin(mbps(4)));
  Simulator sim(mbps(8), sched);
  sim.add<GreedySource>(a, 1500, 4, 0, sec(4));
  sim.add<GreedySource>(b, 300, 4, 0, sec(4));  // very different packets
  TimeNs max_spread = 0;
  sim.link().add_departure_hook([&](TimeNs, const Packet&) {
    if (sched.active(a) && sched.active(b)) {
      const TimeNs va = sched.vtime(a), vb = sched.vtime(b);
      max_spread = std::max(max_spread, va > vb ? va - vb : vb - va);
    }
  });
  sim.run(sec(4));
  // One 1500-byte packet at 4 Mb/s of curve is 3 ms of virtual time; the
  // spread must stay within a small constant of that, not drift.
  EXPECT_LE(max_spread, msec(9));
  EXPECT_GT(max_spread, 0u);
}

TEST(HfscLinkShare, InteriorDiscrepancyBoundedDuringConflict) {
  // While the RT criterion overrides link-sharing, interior classes'
  // received service may deviate from the ideal model, but the virtual
  // time spread between the two orgs stays bounded (the H-FSC goal of
  // minimizing short-term discrepancy).
  Hfsc sched(mbps(8));
  const ClassId orgA = sched.add_class(kRootClass, ls_lin(mbps(4)));
  const ClassId orgB = sched.add_class(kRootClass, ls_lin(mbps(4)));
  const ServiceCurve burst{mbps(6), msec(10), mbps(2)};
  const ClassId a1 = sched.add_class(orgA, ClassConfig::both(burst));
  const ClassId b1 = sched.add_class(orgB, ls_lin(mbps(4)));
  Simulator sim(mbps(8), sched);
  sim.add<OnOffSource>(a1, mbps(6), 1000, msec(15), msec(15), 0, sec(3), 31);
  sim.add<GreedySource>(b1, 1000, 4, 0, sec(3));
  TimeNs max_spread = 0;
  sim.link().add_departure_hook([&](TimeNs, const Packet&) {
    if (sched.active(orgA) && sched.active(orgB)) {
      const TimeNs va = sched.vtime(orgA), vb = sched.vtime(orgB);
      max_spread = std::max(max_spread, va > vb ? va - vb : vb - va);
    }
  });
  sim.run(sec(3));
  EXPECT_LE(max_spread, msec(40));
}

}  // namespace
}  // namespace hfsc
