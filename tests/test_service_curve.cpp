// Tests for the two-piece-linear service-curve algebra (Fig. 7, Section V).
#include <gtest/gtest.h>

#include "curve/service_curve.hpp"

namespace hfsc {
namespace {

TEST(ServiceCurve, Shapes) {
  const ServiceCurve concave{mbps(10), msec(10), mbps(1)};
  EXPECT_TRUE(concave.is_concave());
  EXPECT_FALSE(concave.is_convex());
  EXPECT_TRUE(concave.is_supported());

  const ServiceCurve convex{0, msec(10), mbps(1)};
  EXPECT_TRUE(convex.is_convex());
  EXPECT_FALSE(convex.is_concave());
  EXPECT_TRUE(convex.is_supported());

  const ServiceCurve linear = ServiceCurve::linear(mbps(5));
  EXPECT_TRUE(linear.is_concave());
  EXPECT_TRUE(linear.is_convex());
  EXPECT_TRUE(linear.is_linear());

  // A rising-first-segment convex curve is not closed under the deadline
  // update (Section V) and therefore unsupported.
  const ServiceCurve bad{mbps(1), msec(10), mbps(5)};
  EXPECT_FALSE(bad.is_supported());

  EXPECT_TRUE(ServiceCurve{}.is_zero());
  EXPECT_FALSE(linear.is_zero());
}

TEST(ServiceCurve, EvalPiecewise) {
  // 10 Mb/s for 8 ms, then 2 Mb/s.
  const ServiceCurve sc{mbps(10), msec(8), mbps(2)};
  EXPECT_EQ(sc.eval(0), 0u);
  EXPECT_EQ(sc.eval(msec(4)), 5000u);            // 1.25e6 B/s * 4 ms
  EXPECT_EQ(sc.eval(msec(8)), 10000u);           // knee
  EXPECT_EQ(sc.eval(msec(12)), 10000u + 1000u);  // + 2.5e5 B/s * 4 ms
}

TEST(ServiceCurve, InverseIsSmallestTime) {
  const ServiceCurve sc{mbps(10), msec(8), mbps(2)};
  for (Bytes y : {Bytes{1}, Bytes{5000}, Bytes{10000}, Bytes{10001},
                  Bytes{20000}}) {
    const TimeNs t = sc.inverse(y);
    ASSERT_NE(t, kTimeInfinity);
    EXPECT_GE(sc.eval(t), y);
    if (t > 0) {
      EXPECT_LT(sc.eval(t - 1), y);
    }
  }
  EXPECT_EQ(sc.inverse(0), 0u);
}

TEST(ServiceCurve, InverseOfFlatTailIsInfinite) {
  const ServiceCurve sc{mbps(10), msec(8), 0};
  EXPECT_EQ(sc.inverse(10000), msec(8));
  EXPECT_EQ(sc.inverse(10001), kTimeInfinity);
}

TEST(FromUdr, ConcaveWhenBurstRateExceedsRate) {
  // 1000 bytes in 1 ms is 8 Mb/s >> 1 Mb/s: concave.
  const ServiceCurve sc = from_udr(1000, msec(1), mbps(1));
  EXPECT_TRUE(sc.is_concave());
  EXPECT_EQ(sc.m1, mbps(8));
  EXPECT_EQ(sc.d, msec(1));
  EXPECT_EQ(sc.m2, mbps(1));
  // The burst completes exactly at d.
  EXPECT_GE(sc.eval(msec(1)), 1000u);
}

TEST(FromUdr, ConvexWhenRateCoversBurst) {
  // 1000 bytes in 100 ms is 80 kb/s << 1 Mb/s: convex with a dead zone.
  const ServiceCurve sc = from_udr(1000, msec(100), mbps(1));
  EXPECT_TRUE(sc.is_convex());
  EXPECT_EQ(sc.m1, 0u);
  EXPECT_EQ(sc.m2, mbps(1));
  // u bytes must still be served by d.
  EXPECT_GE(sc.eval(msec(100)), 1000u);
  // ...but not much earlier (the curve is 0 until d - u/r).
  EXPECT_EQ(sc.eval(sc.d), 0u);
}

TEST(FromUdr, DegenerateInputsGiveLinear) {
  EXPECT_EQ(from_udr(0, msec(10), mbps(3)), ServiceCurve::linear(mbps(3)));
  EXPECT_EQ(from_udr(100, 0, mbps(3)), ServiceCurve::linear(mbps(3)));
}

// Property sweep: for any (u, d, r) the mapped curve serves u bytes by d
// and has asymptotic rate r.
struct UdrCase {
  Bytes u;
  TimeNs d;
  RateBps r;
};

class FromUdrProperty : public ::testing::TestWithParam<UdrCase> {};

TEST_P(FromUdrProperty, ServesBurstByDeadline) {
  const auto [u, d, r] = GetParam();
  const ServiceCurve sc = from_udr(u, d, r);
  EXPECT_TRUE(sc.is_supported());
  EXPECT_EQ(sc.m2, r);
  // The delay guarantee of Fig. 7: S(d) >= u (allow 1 byte of fixed-point
  // rounding).
  EXPECT_GE(sat_add(sc.eval(d), 1), u);
  // Long-run rate: past the knee the curve grows at exactly r.
  const TimeNs T = sec(100);
  const Bytes tail = sc.eval(2 * T) - sc.eval(T);
  const Bytes want = seg_x2y(T, r);
  EXPECT_LE(tail > want ? tail - want : want - tail, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FromUdrProperty,
    ::testing::Values(UdrCase{160, msec(5), kbps(64)},
                      UdrCase{1500, msec(10), mbps(1)},
                      UdrCase{8000, msec(30), mbps(2)},
                      UdrCase{64000, msec(100), mbps(10)},
                      UdrCase{100, msec(1), gbps(1)},
                      UdrCase{9000, sec(1), kbps(8)},
                      UdrCase{1, msec(1), kbps(8)},
                      UdrCase{1500, usec(100), mbps(100)}));

TEST(ServiceCurve, ToStringMentionsParameters) {
  const std::string s = to_string(ServiceCurve{mbps(10), msec(8), mbps(2)});
  EXPECT_NE(s.find("10.00Mb/s"), std::string::npos);
  EXPECT_NE(s.find("8.000ms"), std::string::npos);
  EXPECT_NE(s.find("2.00Mb/s"), std::string::npos);
}

}  // namespace
}  // namespace hfsc
