// Tests for the multi-hop tandem and trace I/O substrates.
#include <gtest/gtest.h>

#include <sstream>

#include "core/hfsc.hpp"
#include "sched/fifo.hpp"
#include "sim/simulator.hpp"
#include "sim/tandem.hpp"
#include "sim/trace_io.hpp"
#include "util/errors.hpp"

namespace hfsc {
namespace {

TEST(Tandem, DeliversThroughAllHops) {
  EventQueue ev;
  Tandem tandem(ev, 3, mbps(10), [] { return std::make_unique<Fifo>(); });
  CbrSource src(1, mbps(2), 1000, 0, sec(1));
  src.install(ev, tandem.ingress());
  ev.run_all();
  EXPECT_EQ(tandem.delivered(1), 250u);
  EXPECT_EQ(tandem.delivered_bytes(1), 250'000u);
  // Three hops at 0.8 ms serialization each.
  EXPECT_NEAR(tandem.e2e_mean_ms(1), 2.4, 0.1);
}

TEST(Tandem, HfscBoundsEndToEndDelayFifoDoesNot) {
  // Audio + bulk crossing a 3-hop tandem.  With H-FSC at every hop the
  // end-to-end audio delay is ~3x the per-hop bound; with FIFO it rides
  // behind bulk bursts at every hop.
  auto run = [](Tandem::SchedFactory factory, ClassId audio, ClassId bulk) {
    EventQueue ev;
    Tandem tandem(ev, 3, mbps(10), std::move(factory));
    CbrSource a(audio, kbps(64), 160, 0, sec(3));
    a.install(ev, tandem.ingress());
    GreedySource g(bulk, 1500, 8, 0, sec(3));
    g.install(ev, tandem.ingress());
    ev.run_until(sec(3) + msec(500));
    return tandem.e2e_max_ms(audio);
  };

  const double fifo_delay = run(
      [] { return std::make_unique<Fifo>(); }, 1, 2);
  const double hfsc_delay = run(
      [] {
        auto s = std::make_unique<Hfsc>(mbps(10));
        const ClassId audio = s->add_class(
            kRootClass, ClassConfig::both(from_udr(160, msec(5), kbps(640))));
        const ClassId bulk = s->add_class(
            kRootClass,
            ClassConfig::link_share_only(ServiceCurve::linear(mbps(9))));
        EXPECT_EQ(audio, 1u);
        EXPECT_EQ(bulk, 2u);
        return s;
      },
      1, 2);
  EXPECT_LT(hfsc_delay, 3 * 6.3);
  EXPECT_LT(hfsc_delay, fifo_delay);
}

TEST(TraceIo, RoundTripsThroughText) {
  const std::vector<TraceEntry> in = {
      {0, 1, 100}, {msec(1), 2, 1500}, {msec(2), 1, 60}};
  std::stringstream ss;
  write_trace(ss, in);
  const auto out = read_trace(ss);
  EXPECT_EQ(in, out);
}

TEST(TraceIo, ParsesCommentsAndBlankLines) {
  std::stringstream ss("# header\n\n100 1 64\n200 2 128  # trailing\n");
  const auto out = read_trace(ss);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (TraceEntry{100, 1, 64}));
  EXPECT_EQ(out[1], (TraceEntry{200, 2, 128}));
}

TEST(TraceIo, RejectsMalformedLines) {
  std::stringstream ss("abc def\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
  std::stringstream ss2("100 1\n");
  EXPECT_THROW(read_trace(ss2), std::runtime_error);
  std::stringstream ss3("100 1 0\n");  // zero length
  EXPECT_THROW(read_trace(ss3), std::runtime_error);
  std::stringstream ss4("100 0 64\n");  // root class
  EXPECT_THROW(read_trace(ss4), std::runtime_error);
  std::stringstream ss5("100 1 64 junk\n");  // trailing garbage
  EXPECT_THROW(read_trace(ss5), std::runtime_error);
}

TEST(TraceIo, MalformedLineRaisesTypedErrorWithByteOffset) {
  // Two good lines (offsets 0 and 9), then a corrupt third line whose
  // first byte sits at offset 18: the error must be the typed kBadTrace
  // and name both the line and that byte offset.
  std::stringstream ss("100 1 64\n200 2 32\n300 1 x4\n");
  try {
    read_trace(ss);
    FAIL() << "corrupt trace parsed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kBadTrace);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("byte offset 18"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, MissingFileRaisesTypedError) {
  try {
    read_trace_file("/nonexistent/trace.txt");
    FAIL() << "missing file opened";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kBadTrace);
  }
}

TEST(TraceIo, BitFlipFixturesNeverEscapeTheErrorTaxonomy) {
  // Flip every bit of every byte of a healthy capture.  Each corrupted
  // image must either still parse (a digit flipped to another digit) or
  // raise exactly Error{kBadTrace} — never a crash, never any other
  // exception type.
  const std::string fixture =
      "# captured workload\n"
      "100 1 64\n"
      "250 2 1500\n"
      "\n"
      "999 3 40\n";
  int parsed = 0, rejected = 0;
  for (std::size_t i = 0; i < fixture.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = fixture;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      std::stringstream ss(flipped);
      try {
        (void)read_trace(ss);
        ++parsed;
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), Errc::kBadTrace);
        ++rejected;
      }
      // Anything else propagates and fails the test.
    }
  }
  // The sweep must have exercised both outcomes.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(TraceIo, RecorderCapturesReplayReproduces) {
  // Record a stochastic workload, then replay it through a second run:
  // identical scheduler state machines must produce identical departures.
  auto record = [] {
    Fifo sched;
    Simulator sim(mbps(10), sched);
    TraceRecorder rec;
    rec.attach(sim.link());
    sim.add<PoissonSource>(1, mbps(3), 700, 0, msec(500), 9);
    sim.add<OnOffSource>(2, mbps(8), 1200, msec(20), msec(30), 0, msec(500),
                         10);
    sim.run_all();
    return rec.entries();
  };
  const auto trace = record();
  ASSERT_GT(trace.size(), 100u);

  auto run_replay = [&] {
    Fifo sched;
    EventQueue ev;
    Link link(ev, mbps(10), sched);
    std::vector<std::pair<TimeNs, ClassId>> departures;
    link.add_departure_hook([&](TimeNs t, const Packet& p) {
      departures.emplace_back(t, p.cls);
    });
    replay_trace(ev, link, trace);
    ev.run_all();
    return departures;
  };
  const auto a = run_replay();
  const auto b = run_replay();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), trace.size());
}

TEST(TraceIo, ItemsForClassFilters) {
  const std::vector<TraceEntry> trace = {
      {0, 1, 100}, {10, 2, 200}, {20, 1, 300}};
  const auto items = items_for_class(trace, 1);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].len, 100u);
  EXPECT_EQ(items[1].len, 300u);
}

}  // namespace
}  // namespace hfsc
