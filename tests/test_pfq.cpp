// Tests for the PfqServer arbiter, the flat WF2Q+ scheduler, and H-PFQ.
#include <gtest/gtest.h>

#include "sched/fsc_flat.hpp"
#include "sched/hpfq.hpp"
#include "sched/pfq_sched.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

TEST(PfqServer, SingleChildAlwaysPicked) {
  PfqServer s(mbps(10), PfqPolicy::SEFF);
  const auto c = s.add_child(mbps(10));
  s.child_backlogged(c, 1000);
  EXPECT_EQ(s.pick(), c);
  s.charge(1000);
  s.child_next_head(c, 500);
  EXPECT_EQ(s.pick(), c);
  s.charge(500);
  s.child_empty(c);
  EXPECT_FALSE(s.any_backlogged());
}

TEST(PfqServer, FinishTimesScaleWithWeight) {
  PfqServer s(mbps(10), PfqPolicy::SEFF);
  const auto heavy = s.add_child(mbps(8));
  const auto light = s.add_child(mbps(2));
  s.child_backlogged(heavy, 1000);
  s.child_backlogged(light, 1000);
  // Equal starts, finish inversely proportional to weight.
  EXPECT_EQ(s.start_of(heavy), s.start_of(light));
  EXPECT_LT(s.finish_of(heavy), s.finish_of(light));
  EXPECT_EQ(s.pick(), heavy);
}

TEST(PfqServer, SeffRequiresEligibility) {
  PfqServer s(mbps(10), PfqPolicy::SEFF);
  const auto a = s.add_child(mbps(5));
  const auto b = s.add_child(mbps(5));
  s.child_backlogged(a, 1000);
  // Serve several of a's packets so its S runs ahead of V.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(s.pick(), a);
    s.charge(1000);
    s.child_next_head(a, 1000);
  }
  EXPECT_GT(s.start_of(a), s.vtime());
  // b arrives with S = V < S_a: despite b's later finish time it is the
  // only eligible child.
  s.child_backlogged(b, 1000);
  EXPECT_EQ(s.pick(), b);
}

TEST(WF2QPlus, SplitsLinkProportionallyToWeights) {
  PfqSched sched(mbps(9), PfqPolicy::SEFF);
  const ClassId a = sched.add_session(mbps(6));
  const ClassId b = sched.add_session(mbps(2));
  const ClassId c = sched.add_session(mbps(1));
  Simulator sim(mbps(9), sched);
  sim.add<GreedySource>(a, 1000, 4, 0, sec(4));
  sim.add<GreedySource>(b, 1000, 4, 0, sec(4));
  sim.add<GreedySource>(c, 1000, 4, 0, sec(4));
  sim.run(sec(4));
  EXPECT_NEAR(sim.tracker().rate_mbps(a, sec(1), sec(4)), 6.0, 0.2);
  EXPECT_NEAR(sim.tracker().rate_mbps(b, sec(1), sec(4)), 2.0, 0.2);
  EXPECT_NEAR(sim.tracker().rate_mbps(c, sec(1), sec(4)), 1.0, 0.2);
}

TEST(WF2QPlus, DoesNotPunishExcessUsage) {
  // The WFQ contrast to VirtualClock.PunishesSessionThatUsedIdleCapacity:
  // after b wakes at t=2s, a immediately drops to its fair half.
  PfqSched sched(mbps(8), PfqPolicy::SEFF);
  const ClassId a = sched.add_session(mbps(4));
  const ClassId b = sched.add_session(mbps(4));
  Simulator sim(mbps(8), sched);
  sim.add<GreedySource>(a, 1000, 4, 0, sec(4));
  sim.add<GreedySource>(b, 1000, 4, sec(2), sec(4));
  sim.run(sec(4));
  EXPECT_NEAR(sim.tracker().rate_mbps(a, 0, sec(2)), 8.0, 0.3);
  EXPECT_NEAR(sim.tracker().rate_mbps(a, sec(2), sec(4)), 4.0, 0.3);
  EXPECT_NEAR(sim.tracker().rate_mbps(b, sec(2), sec(4)), 4.0, 0.3);
}

TEST(PfqPolicies, AllWorkConserving) {
  for (PfqPolicy policy :
       {PfqPolicy::SSF, PfqPolicy::SFF, PfqPolicy::SEFF}) {
    PfqSched sched(mbps(8), policy);
    const ClassId a = sched.add_session(mbps(4));
    const ClassId b = sched.add_session(mbps(4));
    Simulator sim(mbps(8), sched);
    sim.add<GreedySource>(a, 1000, 4, 0, sec(1));
    sim.add<PoissonSource>(b, mbps(2), 800, 0, sec(1), 9);
    sim.run(sec(1));
    // Link never idles while backlogged: busy time == elapsed.
    EXPECT_GT(sim.link().busy_time(), sec(1) - msec(1)) << sched.name();
  }
}

TEST(HPfq, HierarchySharesFollowTheTree) {
  // Fig. 1 in miniature: two organizations 6:2, each with two leaves.
  HPfq sched(mbps(8));
  const ClassId orgA = sched.add_class(kRootClass, mbps(6));
  const ClassId orgB = sched.add_class(kRootClass, mbps(2));
  const ClassId a1 = sched.add_class(orgA, mbps(4));
  const ClassId a2 = sched.add_class(orgA, mbps(2));
  const ClassId b1 = sched.add_class(orgB, mbps(1));
  const ClassId b2 = sched.add_class(orgB, mbps(1));
  Simulator sim(mbps(8), sched);
  for (ClassId c : {a1, a2, b1, b2}) {
    sim.add<GreedySource>(c, 1000, 4, 0, sec(4));
  }
  sim.run(sec(4));
  const auto& t = sim.tracker();
  EXPECT_NEAR(t.rate_mbps(a1, sec(1), sec(4)), 4.0, 0.25);
  EXPECT_NEAR(t.rate_mbps(a2, sec(1), sec(4)), 2.0, 0.25);
  EXPECT_NEAR(t.rate_mbps(b1, sec(1), sec(4)), 1.0, 0.25);
  EXPECT_NEAR(t.rate_mbps(b2, sec(1), sec(4)), 1.0, 0.25);
}

TEST(HPfq, ExcessStaysInsideTheOrganization) {
  // When a2 goes idle its bandwidth goes to sibling a1, not to org B
  // (the first link-sharing goal of Section I).
  HPfq sched(mbps(8));
  const ClassId orgA = sched.add_class(kRootClass, mbps(4));
  const ClassId orgB = sched.add_class(kRootClass, mbps(4));
  const ClassId a1 = sched.add_class(orgA, mbps(2));
  const ClassId a2 = sched.add_class(orgA, mbps(2));
  const ClassId b1 = sched.add_class(orgB, mbps(4));
  Simulator sim(mbps(8), sched);
  sim.add<GreedySource>(a1, 1000, 4, 0, sec(4));
  sim.add<GreedySource>(a2, 1000, 4, 0, sec(2));  // idles at 2 s
  sim.add<GreedySource>(b1, 1000, 4, 0, sec(4));
  sim.run(sec(4));
  const auto& t = sim.tracker();
  // Before: 2/2/4.  After: a1 inherits a2's share -> 4/0/4.
  EXPECT_NEAR(t.rate_mbps(a1, sec(1), sec(2)), 2.0, 0.25);
  EXPECT_NEAR(t.rate_mbps(a1, sec(2) + msec(200), sec(4)), 4.0, 0.25);
  EXPECT_NEAR(t.rate_mbps(b1, sec(2) + msec(200), sec(4)), 4.0, 0.25);
}

TEST(HPfq, WorkConservingAndCountsDepth) {
  HPfq sched(mbps(8));
  const ClassId mid = sched.add_class(kRootClass, mbps(8));
  const ClassId leaf = sched.add_class(mid, mbps(8));
  EXPECT_EQ(sched.depth_of(leaf), 2u);
  EXPECT_EQ(sched.depth_of(mid), 1u);
  Simulator sim(mbps(8), sched);
  sim.add<GreedySource>(leaf, 1000, 4, 0, sec(1));
  sim.run(sec(1));
  EXPECT_NEAR(sim.tracker().rate_mbps(leaf, 0, sec(1)), 8.0, 0.2);
}

TEST(FscFlatSched, NonPunishmentAfterExcess) {
  // The Fig. 2(d) behaviour: with the fair virtual-time modification,
  // session 1 keeps receiving service after session 2 wakes up.
  const ServiceCurve s1{0, msec(200), mbps(6)};        // convex
  const ServiceCurve s2{mbps(8), msec(200), mbps(4)};  // concave
  FscFlat sched;
  const ClassId c1 = sched.add_session(s1);
  const ClassId c2 = sched.add_session(s2);
  Simulator sim(mbps(8), sched);
  const TimeNs t1 = msec(500);
  sim.add<GreedySource>(c1, 1000, 4, 0, sec(2));
  sim.add<GreedySource>(c2, 1000, 4, t1, sec(2));
  sim.run(sec(2));
  // Session 1 is NOT starved after t1 (contrast with the SCED test):
  // both slopes are comparable after re-sync, so session 1 keeps a
  // substantial share.
  EXPECT_GT(sim.tracker().rate_mbps(c1, t1, t1 + msec(200)), 2.0);
}

TEST(FscFlatSched, LinearCurvesShareByRate) {
  FscFlat sched;
  const ClassId a = sched.add_session(ServiceCurve::linear(mbps(6)));
  const ClassId b = sched.add_session(ServiceCurve::linear(mbps(2)));
  Simulator sim(mbps(8), sched);
  sim.add<GreedySource>(a, 1000, 4, 0, sec(4));
  sim.add<GreedySource>(b, 1000, 4, 0, sec(4));
  sim.run(sec(4));
  EXPECT_NEAR(sim.tracker().rate_mbps(a, sec(1), sec(4)), 6.0, 0.3);
  EXPECT_NEAR(sim.tracker().rate_mbps(b, sec(1), sec(4)), 2.0, 0.3);
}

}  // namespace
}  // namespace hfsc
