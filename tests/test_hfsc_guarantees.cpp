// Empirical verification of H-FSC's central claims (Section VI):
//
//   Theorems 1 + 2 — every leaf's real-time service curve is guaranteed to
//   within one maximum-length packet time, regardless of what the rest of
//   the hierarchy does;
//
//   Section IV-A — the delay bound of a leaf is independent of its depth
//   in the hierarchy (contrast H-PFQ, tested in the experiments);
//
//   decoupling — a low-bandwidth class with a concave curve sees low
//   delay even under saturation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/hfsc.hpp"
#include "sched/hpfq.hpp"
#include "sim/guarantee_checker.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

// Wires a GuaranteeChecker to one class on a link.
std::unique_ptr<GuaranteeChecker> attach_checker(Link& link, ClassId cls,
                                                 const ServiceCurve& sc,
                                                 TimeNs allowance) {
  auto checker = std::make_unique<GuaranteeChecker>(sc, allowance);
  GuaranteeChecker* c = checker.get();
  link.add_arrival_hook([c, cls](TimeNs t, const Packet& p) {
    if (p.cls == cls) c->on_arrival(t, p.len);
  });
  link.add_departure_hook([c, cls](TimeNs t, const Packet& p) {
    if (p.cls == cls) c->on_departure(t, p.len);
  });
  return checker;
}

// --- Theorem 1/2 property sweep -------------------------------------------
//
// Random two-level hierarchies; every leaf gets a feasible rt curve (the
// m1's sum to at most the link rate, and so do the m2's); leaves carry a
// mix of on-off, Poisson and greedy traffic.  No leaf may ever fall below
// its curve by more than the Theorem 2 allowance.

struct GuaranteeCase {
  std::uint64_t seed;
  int num_orgs;
  int leaves_per_org;
};

class HfscGuarantee : public ::testing::TestWithParam<GuaranteeCase> {};

TEST_P(HfscGuarantee, LeafCurvesHeldUnderRandomLoad) {
  const auto [seed, num_orgs, leaves_per_org] = GetParam();
  Rng rng(seed);
  const RateBps link = mbps(100);
  const Bytes max_pkt = 1500;
  const int n_leaves = num_orgs * leaves_per_org;

  Hfsc sched(link);
  std::vector<ClassId> leaves;
  std::vector<ServiceCurve> curves;
  // Budget: keep both slope sums at <= 60% of the link so the workload
  // mix (greedy classes saturate the remainder) still leaves the curves
  // feasible.
  const RateBps slice = link * 6 / 10 / static_cast<RateBps>(n_leaves);
  for (int o = 0; o < num_orgs; ++o) {
    const ClassId org = sched.add_class(
        kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(
                        slice * static_cast<RateBps>(leaves_per_org))));
    for (int l = 0; l < leaves_per_org; ++l) {
      ServiceCurve sc;
      if (rng.chance(0.5)) {
        // Concave: m1 in (slice, 2*slice], knee 2-10 ms, m2 <= slice.
        sc = ServiceCurve{slice + rng.uniform(1, slice),
                          msec(2) + rng.uniform(0, msec(8)),
                          1 + rng.uniform(0, slice - 1)};
      } else {
        // Convex: dead zone 1-10 ms then m2 <= slice.
        sc = ServiceCurve{0, msec(1) + rng.uniform(0, msec(9)),
                          1 + rng.uniform(0, slice - 1)};
      }
      curves.push_back(sc);
      leaves.push_back(sched.add_class(org, ClassConfig::both(sc)));
    }
  }
  // Concave m1 budget check: sum of m1 over all leaves must stay below
  // the link rate for SCED feasibility; with m1 <= 2*slice and the 60%
  // budget this holds by construction (2 * 0.6 = 1.2 ... keep margin by
  // capping at 80% of link): verify.
  RateBps m1_sum = 0;
  for (const auto& sc : curves) m1_sum += sc.m1;
  ASSERT_LE(m1_sum, link * 12 / 10);  // documented headroom, see below

  Simulator sim(link, sched);
  std::vector<std::unique_ptr<GuaranteeChecker>> checkers;
  const TimeNs allowance = tx_time(max_pkt, link) + usec(5);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    checkers.push_back(
        attach_checker(sim.link(), leaves[i], curves[i], allowance));
  }
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const ClassId c = leaves[i];
    switch (rng.uniform(0, 2)) {
      case 0:
        sim.add<OnOffSource>(c, curves[i].m2 * 2, 600 + rng.uniform(0, 900),
                             msec(20), msec(20), 0, sec(3), seed * 131 + i);
        break;
      case 1:
        sim.add<PoissonSource>(c, curves[i].m2, 400 + rng.uniform(0, 1100),
                               0, sec(3), seed * 257 + i);
        break;
      case 2:
        sim.add<GreedySource>(c, 1500, 4, rng.uniform(0, msec(100)), sec(3));
        break;
    }
  }
  sim.run_all();

  for (std::size_t i = 0; i < checkers.size(); ++i) {
    EXPECT_TRUE(checkers[i]->violations().empty())
        << "leaf " << i << " curve " << to_string(curves[i]) << ": "
        << checkers[i]->violations().size() << " violations, max deficit "
        << checkers[i]->max_deficit() << " bytes over "
        << checkers[i]->backlog_periods() << " backlog periods";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomHierarchies, HfscGuarantee,
    ::testing::Values(GuaranteeCase{101, 2, 2}, GuaranteeCase{102, 2, 4},
                      GuaranteeCase{103, 3, 3}, GuaranteeCase{104, 4, 2},
                      GuaranteeCase{105, 1, 8}, GuaranteeCase{106, 2, 6},
                      GuaranteeCase{107, 5, 2}, GuaranteeCase{108, 3, 5}));

// --- Guarantee survives hostile link-sharing -------------------------------

TEST(HfscGuarantees, RealTimeLeafSurvivesGreedySiblingsAtEveryDepth) {
  // One audio leaf with a concave curve nested under 3 levels, while
  // greedy classes elsewhere saturate the link.
  const RateBps link = mbps(10);
  const ServiceCurve audio_sc = from_udr(160, msec(5), kbps(64));
  Hfsc sched(link);
  const ClassId orgA = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));
  const ClassId sub = sched.add_class(
      orgA, ClassConfig::link_share_only(ServiceCurve::linear(mbps(1))));
  const ClassId audio = sched.add_class(sub, ClassConfig::both(audio_sc));
  const ClassId data1 = sched.add_class(
      orgA, ClassConfig::link_share_only(ServiceCurve::linear(mbps(4))));
  const ClassId orgB = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));
  const ClassId data2 = sched.add_class(
      orgB, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));

  Simulator sim(link, sched);
  auto checker = attach_checker(sim.link(), audio, audio_sc,
                                tx_time(1500, link) + usec(5));
  sim.add<CbrSource>(audio, kbps(64), 160, 0, sec(5));
  sim.add<GreedySource>(data1, 1500, 8, 0, sec(5));
  sim.add<GreedySource>(data2, 1500, 8, 0, sec(5));
  sim.run(sec(5));

  EXPECT_TRUE(checker->violations().empty())
      << checker->violations().size() << " violations, max deficit "
      << checker->max_deficit();
  // And the headline decoupling: 64 kb/s flow, ~5 ms delay bound honoured
  // within a packet time under full saturation.
  EXPECT_LT(sim.tracker().max_delay_ms(audio), 5.0 + 1.3);
}

// --- Depth independence -----------------------------------------------------

TEST(HfscGuarantees, DelayBoundIndependentOfDepth) {
  // The same audio leaf at depth 1 and depth 5 sees essentially the same
  // worst-case delay under H-FSC (real-time criterion considers leaves
  // only; Section IV-A).
  const RateBps link = mbps(10);
  const ServiceCurve audio_sc = from_udr(160, msec(5), kbps(64));
  auto max_delay_at_depth = [&](int depth) {
    Hfsc sched(link);
    ClassId parent = kRootClass;
    for (int i = 1; i < depth; ++i) {
      parent = sched.add_class(parent, ClassConfig::link_share_only(
                                           ServiceCurve::linear(mbps(5))));
    }
    const ClassId audio = sched.add_class(parent,
                                          ClassConfig::both(audio_sc));
    const ClassId bulk = sched.add_class(
        kRootClass,
        ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));
    Simulator sim(link, sched);
    sim.add<CbrSource>(audio, kbps(64), 160, 0, sec(3));
    sim.add<GreedySource>(bulk, 1500, 8, 0, sec(3));
    sim.run(sec(3));
    return sim.tracker().max_delay_ms(audio);
  };
  const double shallow = max_delay_at_depth(1);
  const double deep = max_delay_at_depth(5);
  EXPECT_LT(shallow, 6.3);
  EXPECT_LT(deep, 6.3);
  EXPECT_NEAR(shallow, deep, 1.5);
}

// --- Decoupling: same delay, different bandwidth ----------------------------

TEST(HfscGuarantees, SameDelayBoundAtDifferentRates) {
  // The distinguished-lecture example of Section I: audio (64 kb/s) and
  // video (2 Mb/s) both want the same 10 ms bound; H-FSC grants it via
  // curves with the same burst deadline and different rates.
  const RateBps link = mbps(10);
  Hfsc sched(link);
  const ServiceCurve audio_sc = from_udr(160, msec(10), kbps(64));
  const ServiceCurve video_sc = from_udr(2500, msec(10), mbps(2));
  const ClassId audio = sched.add_class(kRootClass,
                                        ClassConfig::both(audio_sc));
  const ClassId video = sched.add_class(kRootClass,
                                        ClassConfig::both(video_sc));
  const ClassId bulk = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(7))));
  Simulator sim(link, sched);
  sim.add<CbrSource>(audio, kbps(64), 160, 0, sec(5));
  sim.add<CbrSource>(video, mbps(2), 1250, 0, sec(5));
  sim.add<GreedySource>(bulk, 1500, 8, 0, sec(5));
  sim.run(sec(5));
  EXPECT_LT(sim.tracker().max_delay_ms(audio), 11.3);
  EXPECT_LT(sim.tracker().max_delay_ms(video), 11.3);
  // Bulk still gets the dominant share of the link.
  EXPECT_GT(sim.tracker().rate_mbps(bulk, sec(1), sec(5)), 6.5);
}

}  // namespace
}  // namespace hfsc
