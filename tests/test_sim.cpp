// Tests for the discrete-event substrate: event queue, link model, traffic
// sources, flow tracker.
#include <gtest/gtest.h>

#include <vector>

#include "sched/fifo.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue ev;
  std::vector<int> order;
  ev.schedule(30, [&](TimeNs) { order.push_back(3); });
  ev.schedule(10, [&](TimeNs) { order.push_back(1); });
  ev.schedule(20, [&](TimeNs) { order.push_back(2); });
  ev.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ev.now(), 30u);
}

TEST(EventQueue, TiesRunInScheduleOrder) {
  EventQueue ev;
  std::vector<int> order;
  ev.schedule(10, [&](TimeNs) { order.push_back(1); });
  ev.schedule(10, [&](TimeNs) { order.push_back(2); });
  ev.schedule(10, [&](TimeNs) { order.push_back(3); });
  ev.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue ev;
  int count = 0;
  std::function<void(TimeNs)> tick = [&](TimeNs t) {
    if (++count < 5) ev.schedule(t + 10, tick);
  };
  ev.schedule(0, tick);
  ev.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(ev.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock) {
  EventQueue ev;
  int count = 0;
  ev.schedule(10, [&](TimeNs) { ++count; });
  ev.schedule(100, [&](TimeNs) { ++count; });
  ev.run_until(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(ev.now(), 50u);
  ev.run_all();
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue ev;
  TimeNs ran_at = 0;
  ev.schedule(100, [&](TimeNs t) {
    ev.schedule(10, [&](TimeNs t2) { ran_at = t2; });  // in the past
    (void)t;
  });
  ev.run_all();
  EXPECT_EQ(ran_at, 100u);
}

TEST(Link, SerializesAtCapacity) {
  EventQueue ev;
  Fifo sched;
  Link link(ev, mbps(8), sched);  // 1e6 B/s
  std::vector<TimeNs> departures;
  link.add_departure_hook(
      [&](TimeNs t, const Packet&) { departures.push_back(t); });
  // Two 1000-byte packets arriving together: 1 ms each, back to back.
  link.on_arrival(0, Packet{1, 1000, 0, 0});
  link.on_arrival(0, Packet{1, 1000, 0, 1});
  ev.run_all();
  ASSERT_EQ(departures.size(), 2u);
  EXPECT_EQ(departures[0], msec(1));
  EXPECT_EQ(departures[1], msec(2));
  EXPECT_EQ(link.bytes_sent(), 2000u);
  EXPECT_EQ(link.busy_time(), msec(2));
}

TEST(Link, IdleThenResume) {
  EventQueue ev;
  Fifo sched;
  Link link(ev, mbps(8), sched);
  std::vector<TimeNs> departures;
  link.add_departure_hook(
      [&](TimeNs t, const Packet&) { departures.push_back(t); });
  link.on_arrival(0, Packet{1, 1000, 0, 0});
  ev.run_all();
  link.on_arrival(msec(10), Packet{1, 500, 0, 1});
  ev.run_all();
  ASSERT_EQ(departures.size(), 2u);
  EXPECT_EQ(departures[0], msec(1));
  EXPECT_EQ(departures[1], msec(10) + usec(500));
}

TEST(Sources, CbrEmitsAtConfiguredRate) {
  Fifo sched;
  Simulator sim(mbps(100), sched);
  // 64 kb/s with 160-byte packets for 10 s: one packet per 20 ms => 500.
  sim.add<CbrSource>(7, kbps(64), 160, 0, sec(10));
  sim.run_all();
  EXPECT_EQ(sim.tracker().packets(7), 500u);
  EXPECT_EQ(sim.tracker().bytes(7), 500u * 160u);
}

TEST(Sources, CbrHonoursStartStop) {
  Fifo sched;
  Simulator sim(mbps(100), sched);
  sim.add<CbrSource>(7, kbps(64), 160, sec(2), sec(3));
  sim.run_all();
  EXPECT_EQ(sim.tracker().packets(7), 50u);
}

TEST(Sources, PoissonMeanRateConverges) {
  Fifo sched;
  Simulator sim(gbps(1), sched);
  sim.add<PoissonSource>(3, mbps(10), 1250, 0, sec(20), 42);
  sim.run_all();
  // 10 Mb/s for 20 s at 1250 B = 20000 packets expected; 3 sigma ~ 424.
  EXPECT_NEAR(static_cast<double>(sim.tracker().packets(3)), 20000.0, 600.0);
}

TEST(Sources, GreedyKeepsLinkBusy) {
  Fifo sched;
  Simulator sim(mbps(10), sched);
  sim.add<GreedySource>(5, 1500, 4, 0, sec(2));
  sim.run(sec(2));
  // The greedy source must keep the link at capacity: 2.5 MB in 2 s.
  EXPECT_NEAR(static_cast<double>(sim.tracker().bytes(5)), 2.5e6, 3000.0);
}

TEST(Sources, OnOffAverageBetweenZeroAndPeak) {
  Fifo sched;
  Simulator sim(gbps(1), sched);
  // Peak 10 Mb/s, mean on 100 ms / off 100 ms => ~5 Mb/s average.
  sim.add<OnOffSource>(2, mbps(10), 1250, msec(100), msec(100), 0, sec(30),
                       7);
  sim.run_all();
  const double mbps_avg = sim.tracker().rate_mbps(2, 0, sec(30));
  EXPECT_GT(mbps_avg, 2.5);
  EXPECT_LT(mbps_avg, 7.5);
}

TEST(Sources, VideoEmitsFramesInMtuChunks) {
  Fifo sched;
  Simulator sim(gbps(1), sched);
  sim.add<VideoSource>(9, 30.0, 6000, 16000, 1500, 0, sec(1), 3);
  sim.run_all();
  // 30 frames, each at least mean/4 = 1500 bytes.
  EXPECT_GE(sim.tracker().packets(9), 30u);
  EXPECT_GE(sim.tracker().bytes(9), 30u * 1500u);
}

TEST(Sources, TraceReplaysExactly) {
  Fifo sched;
  Simulator sim(mbps(80), sched);
  sim.add<TraceSource>(4, std::vector<TraceSource::Item>{
                              {msec(1), 100}, {msec(2), 200}, {msec(5), 300}});
  sim.run_all();
  EXPECT_EQ(sim.tracker().packets(4), 3u);
  EXPECT_EQ(sim.tracker().bytes(4), 600u);
}

TEST(FlowTracker, DelayAccounting) {
  Fifo sched;
  Simulator sim(mbps(8), sched);  // 1e6 B/s
  // Two packets at t=0: delays 1 ms and 2 ms.
  sim.add<TraceSource>(1,
                       std::vector<TraceSource::Item>{{0, 1000}, {0, 1000}});
  sim.run_all();
  EXPECT_NEAR(sim.tracker().mean_delay_ms(1), 1.5, 1e-6);
  EXPECT_NEAR(sim.tracker().max_delay_ms(1), 2.0, 1e-6);
  EXPECT_NEAR(sim.tracker().delay_quantile_ms(1, 0.5), 1.0, 1e-6);
}

}  // namespace
}  // namespace hfsc
