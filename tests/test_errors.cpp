// The hardened error model (util/errors.hpp): every public mutator
// rejects misuse with a typed hfsc::Error even in NDEBUG builds, and the
// data path absorbs malformed events (drop/clamp + count) instead of
// throwing or corrupting state.
#include <gtest/gtest.h>

#include "core/auditor.hpp"
#include "core/hfsc.hpp"
#include "sched/cbq.hpp"
#include "sched/hpfq.hpp"
#include "sched/pfq_sched.hpp"
#include "util/errors.hpp"

namespace hfsc {
namespace {

// Runs `op` and asserts it throws Error with the expected code.
template <typename Fn>
void expect_error(Errc code, Fn&& op) {
  try {
    op();
    FAIL() << "expected Error{" << to_string(code) << "}";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), code) << e.what();
  }
}

TEST(HfscErrors, ConstructorRejectsZeroLinkRate) {
  expect_error(Errc::kInvalidArgument, [] { Hfsc s(0); });
}

TEST(HfscErrors, AddClassMisuse) {
  Hfsc s(mbps(10));
  const ClassId org = s.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));
  const ClassId leaf = s.add_class(
      org, ClassConfig::both(ServiceCurve::linear(mbps(1))));

  // Unknown parent.
  expect_error(Errc::kInvalidClass, [&] {
    s.add_class(99, ClassConfig::both(ServiceCurve::linear(mbps(1))));
  });
  // Parent with queued packets must stay a leaf.
  s.enqueue(0, Packet{leaf, 100, 0, 0});
  expect_error(Errc::kHasBacklog, [&] {
    s.add_class(leaf, ClassConfig::both(ServiceCurve::linear(mbps(1))));
  });
  // Interior parent without a link-sharing curve.
  const ClassId rt_only = s.add_class(
      kRootClass, ClassConfig::real_time_only(ServiceCurve::linear(mbps(1))));
  expect_error(Errc::kMissingCurve, [&] {
    s.add_class(rt_only, ClassConfig::both(ServiceCurve::linear(mbps(1))));
  });
  // Unsupported (convex with m1 > 0 is outside the algebra when m1 < m2).
  expect_error(Errc::kUnsupportedCurve, [&] {
    s.add_class(kRootClass, ClassConfig::both(
                                ServiceCurve{kbps(1), msec(5), mbps(5)}));
  });
  // Neither rt nor ls.
  expect_error(Errc::kMissingCurve,
               [&] { s.add_class(kRootClass, ClassConfig{}); });
  // Deleted parent.
  const ClassId doomed = s.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(1))));
  s.delete_class(doomed);
  expect_error(Errc::kInvalidClass, [&] {
    s.add_class(doomed, ClassConfig::both(ServiceCurve::linear(mbps(1))));
  });
}

TEST(HfscErrors, ChangeClassMisuse) {
  Hfsc s(mbps(10));
  const ClassId org = s.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));
  const ClassId leaf =
      s.add_class(org, ClassConfig::both(ServiceCurve::linear(mbps(1))));

  expect_error(Errc::kInvalidClass, [&] {
    s.change_class(0, 99, ClassConfig::both(ServiceCurve::linear(mbps(1))));
  });
  expect_error(Errc::kInvalidClass, [&] {
    s.change_class(0, kRootClass,
                   ClassConfig::both(ServiceCurve::linear(mbps(1))));
  });
  // Interior must keep an ls curve.
  expect_error(Errc::kMissingCurve, [&] {
    s.change_class(0, org,
                   ClassConfig::real_time_only(ServiceCurve::linear(mbps(1))));
  });
  // A leaf needs at least one curve.
  expect_error(Errc::kMissingCurve,
               [&] { s.change_class(0, leaf, ClassConfig{}); });
  // Unsupported shape.
  expect_error(Errc::kUnsupportedCurve, [&] {
    s.change_class(0, leaf,
                   ClassConfig::both(ServiceCurve{kbps(1), msec(5), mbps(2)}));
  });
  // Deleted class.
  s.delete_class(leaf);
  expect_error(Errc::kInvalidClass, [&] {
    s.change_class(0, leaf, ClassConfig::both(ServiceCurve::linear(mbps(1))));
  });
}

TEST(HfscErrors, DeleteAndQueueLimitMisuse) {
  Hfsc s(mbps(10));
  const ClassId org = s.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));
  const ClassId leaf =
      s.add_class(org, ClassConfig::both(ServiceCurve::linear(mbps(1))));

  expect_error(Errc::kInvalidClass, [&] { s.delete_class(99); });
  expect_error(Errc::kInvalidClass, [&] { s.delete_class(kRootClass); });
  expect_error(Errc::kHasChildren, [&] { s.delete_class(org); });
  expect_error(Errc::kInvalidClass, [&] { s.set_queue_limit(99, 4); });
  expect_error(Errc::kInvalidClass, [&] { s.set_queue_limit(kRootClass, 4); });
  s.delete_class(leaf);
  expect_error(Errc::kInvalidClass, [&] { s.delete_class(leaf); });
  expect_error(Errc::kInvalidClass, [&] { s.set_queue_limit(leaf, 4); });
}

TEST(HfscErrors, DataPathAbsorbsMalformedPackets) {
  Hfsc s(mbps(10));
  const ClassId org = s.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));
  const ClassId leaf =
      s.add_class(org, ClassConfig::both(ServiceCurve::linear(mbps(1))));

  // Unknown id, root, interior class, deleted class.
  s.enqueue(0, Packet{12345, 100, 0, 0});
  s.enqueue(0, Packet{kRootClass, 100, 0, 0});
  s.enqueue(0, Packet{org, 100, 0, 0});
  const ClassId dead =
      s.add_class(org, ClassConfig::both(ServiceCurve::linear(mbps(1))));
  s.delete_class(dead);
  s.enqueue(0, Packet{dead, 100, 0, 0});
  EXPECT_EQ(s.data_path_counters().bad_class, 4u);

  // Zero-length and oversized.
  s.enqueue(0, Packet{leaf, 0, 0, 0});
  s.enqueue(0, Packet{leaf, s.max_packet_len() + 1, 0, 0});
  EXPECT_EQ(s.data_path_counters().zero_len, 1u);
  EXPECT_EQ(s.data_path_counters().oversized, 1u);

  // Nothing entered the queues; state is still clean.
  EXPECT_EQ(s.backlog_packets(), 0u);
  EXPECT_TRUE(audit(s).ok());

  // A legitimate packet still flows.
  s.enqueue(0, Packet{leaf, 500, 0, 1});
  auto p = s.dequeue(0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->len, 500u);
}

TEST(HfscErrors, ClockRegressionIsClampedNotObeyed) {
  Hfsc s(mbps(10));
  const ClassId leaf = s.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(10))));

  s.enqueue(msec(10), Packet{leaf, 1000, msec(10), 0});
  ASSERT_TRUE(s.dequeue(msec(10)).has_value());
  // The clock now runs backwards; the scheduler must clamp to the last
  // time it saw and keep serving correctly.
  s.enqueue(msec(2), Packet{leaf, 1000, msec(2), 1});
  EXPECT_EQ(s.data_path_counters().clock_regressions, 1u);
  EXPECT_TRUE(audit(s).ok());
  auto p = s.dequeue(msec(3));  // still before the watermark: clamped again
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seq, 1u);
  EXPECT_EQ(s.data_path_counters().clock_regressions, 2u);
  EXPECT_TRUE(audit(s).ok());
}

TEST(HfscErrors, SetMaxPacketLenValidated) {
  Hfsc s(mbps(10));
  expect_error(Errc::kInvalidArgument, [&] { s.set_max_packet_len(0); });
  s.set_max_packet_len(200);
  const ClassId leaf = s.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(10))));
  s.enqueue(0, Packet{leaf, 201, 0, 0});
  EXPECT_EQ(s.data_path_counters().oversized, 1u);
  s.enqueue(0, Packet{leaf, 200, 0, 1});
  EXPECT_EQ(s.backlog_packets(), 1u);
}

TEST(PfqSchedErrors, ControlThrowsDataPathCounts) {
  expect_error(Errc::kInvalidArgument, [] { PfqSched s(0, PfqPolicy::SEFF); });
  PfqSched s(mbps(10), PfqPolicy::SEFF);
  expect_error(Errc::kInvalidArgument, [&] { s.add_session(0); });
  const ClassId a = s.add_session(mbps(5));
  s.enqueue(0, Packet{99, 100, 0, 0});
  s.enqueue(0, Packet{a, 0, 0, 0});
  s.enqueue(0, Packet{a, kMaxSanePacketLen + 1, 0, 0});
  EXPECT_EQ(s.data_path_counters().bad_class, 1u);
  EXPECT_EQ(s.data_path_counters().zero_len, 1u);
  EXPECT_EQ(s.data_path_counters().oversized, 1u);
  EXPECT_EQ(s.backlog_packets(), 0u);
  s.enqueue(0, Packet{a, 100, 0, 0});
  EXPECT_TRUE(s.dequeue(0).has_value());
}

TEST(HpfqErrors, ControlThrowsDataPathCounts) {
  expect_error(Errc::kInvalidArgument, [] { HPfq s(0); });
  HPfq s(mbps(10));
  expect_error(Errc::kInvalidClass, [&] { s.add_class(42, mbps(1)); });
  expect_error(Errc::kInvalidArgument, [&] { s.add_class(kRootClass, 0); });
  const ClassId a = s.add_class(kRootClass, mbps(5));
  s.enqueue(0, Packet{a, 100, 0, 0});
  expect_error(Errc::kHasBacklog, [&] { s.add_class(a, mbps(1)); });
  s.enqueue(0, Packet{99, 100, 0, 0});     // unknown
  s.enqueue(0, Packet{kRootClass, 100, 0, 0});  // interior
  s.enqueue(0, Packet{a, 0, 0, 0});
  EXPECT_EQ(s.data_path_counters().bad_class, 2u);
  EXPECT_EQ(s.data_path_counters().zero_len, 1u);
  EXPECT_EQ(s.backlog_packets(), 1u);
}

TEST(CbqErrors, ControlThrowsDataPathCounts) {
  expect_error(Errc::kInvalidArgument, [] { Cbq s(0); });
  expect_error(Errc::kInvalidArgument, [] { Cbq s(mbps(10), 1); });
  Cbq s(mbps(10));
  expect_error(Errc::kInvalidClass, [&] { s.add_class(42, mbps(1)); });
  expect_error(Errc::kInvalidArgument, [&] { s.add_class(kRootClass, 0); });
  const ClassId a = s.add_class(kRootClass, mbps(5));
  s.enqueue(0, Packet{99, 100, 0, 0});
  s.enqueue(0, Packet{kRootClass, 100, 0, 0});
  s.enqueue(0, Packet{a, 0, 0, 0});
  s.enqueue(0, Packet{a, kMaxSanePacketLen + 1, 0, 0});
  EXPECT_EQ(s.data_path_counters().bad_class, 2u);
  EXPECT_EQ(s.data_path_counters().zero_len, 1u);
  EXPECT_EQ(s.data_path_counters().oversized, 1u);
  EXPECT_EQ(s.backlog_packets(), 0u);
}

}  // namespace
}  // namespace hfsc
