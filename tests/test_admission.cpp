// AdmissionControl edge cases (curve/piecewise.hpp) and the Hfsc-level
// admission gate + starvation watchdog added by the robustness layer.
#include <gtest/gtest.h>

#include "core/auditor.hpp"
#include "core/hfsc.hpp"
#include "curve/piecewise.hpp"

namespace hfsc {
namespace {

// --- AdmissionControl in isolation ----------------------------------------

TEST(AdmissionControlEdge, ZeroRateLinkThrows) {
  try {
    AdmissionControl ac(0);
    FAIL() << "a zero-rate link can admit nothing and must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kInvalidArgument);
  }
}

TEST(AdmissionControlEdge, ReleasingANeverAdmittedCurveThrows) {
  AdmissionControl ac(mbps(10));
  ASSERT_TRUE(ac.admit(ServiceCurve::linear(mbps(2))));
  try {
    ac.release(ServiceCurve::linear(mbps(3)));  // never admitted
    FAIL() << "silently shrinking the bookkeeping would allow overcommit";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kInvalidArgument);
  }
  // The failed release must not have disturbed the bookkeeping.
  EXPECT_EQ(ac.admitted(), 1u);
  EXPECT_DOUBLE_EQ(ac.utilization(), 0.2);
}

TEST(AdmissionControlEdge, AdmitReleaseCyclesReturnUtilizationToZero) {
  AdmissionControl ac(mbps(10));
  // Jointly feasible on 10 Mb/s: the summed slope peaks at 4+4 = 8 Mb/s.
  const ServiceCurve concave{mbps(4), msec(5), mbps(2)};
  const ServiceCurve convex{0, msec(2), mbps(4)};
  for (int cycle = 0; cycle < 50; ++cycle) {
    ASSERT_TRUE(ac.admit(concave));
    ASSERT_TRUE(ac.admit(convex));
    ASSERT_GT(ac.utilization(), 0.0);
    ac.release(concave);
    ac.release(convex);
    ASSERT_EQ(ac.admitted(), 0u);
    ASSERT_DOUBLE_EQ(ac.utilization(), 0.0);
    // The aggregate is rebuilt from scratch on release, so repeated
    // cycles cannot accumulate rounding drift that blocks re-admission.
    ASSERT_TRUE(ac.aggregate() == PiecewiseLinear());
  }
}

TEST(AdmissionControlEdge, AdmitsExactlyAtFullLinkRate) {
  AdmissionControl ac(mbps(10));
  ASSERT_TRUE(ac.admit(ServiceCurve::linear(mbps(6))));
  // Fills the link to exactly 100%: sum == link curve, which the
  // feasibility condition (sum <= link) still allows.
  ASSERT_TRUE(ac.admit(ServiceCurve::linear(mbps(4))));
  EXPECT_DOUBLE_EQ(ac.utilization(), 1.0);
  // One more byte per second does not fit.
  EXPECT_FALSE(ac.admit(ServiceCurve::linear(1)));
  EXPECT_EQ(ac.admitted(), 2u);
}

// --- The Hfsc admission gate ----------------------------------------------

TEST(AdmissionGate, DirectMutatorsAreGated) {
  Hfsc s(mbps(10));
  const ClassId org = s.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(10))));
  const ClassId a =
      s.add_class(org, ClassConfig::both(ServiceCurve::linear(mbps(6))));
  s.enable_admission_control();
  EXPECT_DOUBLE_EQ(s.admission_utilization(), 0.6);

  // Over the link: rejected, nothing added, rejection counted.
  try {
    s.add_class(org, ClassConfig::both(ServiceCurve::linear(mbps(5))));
    FAIL() << "oversubscribing add must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kAdmissionRejected);
  }
  EXPECT_EQ(s.num_classes(), 3u);
  EXPECT_EQ(s.admission_rejections(), 1u);

  // Growing a's curve beyond the link: rejected, config unchanged.
  EXPECT_THROW(
      s.change_class(0, a, ClassConfig::both(ServiceCurve::linear(mbps(11)))),
      Error);
  EXPECT_EQ(s.config_of(a).rt, ServiceCurve::linear(mbps(6)));

  // Within the link: admitted, utilization tracks.
  const ClassId b =
      s.add_class(org, ClassConfig::both(ServiceCurve::linear(mbps(4))));
  EXPECT_DOUBLE_EQ(s.admission_utilization(), 1.0);
  s.delete_class(b);
  EXPECT_DOUBLE_EQ(s.admission_utilization(), 0.6);
  const AuditReport report = audit(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(AdmissionGate, EnableValidatesTheExistingHierarchy) {
  Hfsc s(mbps(10));
  const ClassId org = s.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(10))));
  s.add_class(org, ClassConfig::both(ServiceCurve::linear(mbps(8))));
  s.add_class(org, ClassConfig::both(ServiceCurve::linear(mbps(7))));

  // 15 Mb/s of guarantees cannot be promised on a 10 Mb/s link: enabling
  // at the native rate must fail and leave admission OFF.
  EXPECT_THROW(s.enable_admission_control(), Error);
  EXPECT_FALSE(s.admission_enabled());

  // ... but a bigger declared budget can absorb them.
  s.enable_admission_control(mbps(20));
  EXPECT_TRUE(s.admission_enabled());
  EXPECT_DOUBLE_EQ(s.admission_utilization(), 0.75);
  s.disable_admission_control();
  EXPECT_FALSE(s.admission_enabled());
  EXPECT_DOUBLE_EQ(s.admission_utilization(), 0.0);
}

TEST(AdmissionGate, OnlyLeafRtCurvesCount) {
  Hfsc s(mbps(10));
  // A leaf with both curves, occupying 60% of the link.
  const ClassId big = s.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(6))));
  s.enable_admission_control();
  EXPECT_DOUBLE_EQ(s.admission_utilization(), 0.6);

  // Turning `big` into an interior class retires its rt guarantee, making
  // room for children with their own guarantees.
  const ClassId kid1 =
      s.add_class(big, ClassConfig::both(ServiceCurve::linear(mbps(5))));
  EXPECT_DOUBLE_EQ(s.admission_utilization(), 0.5);
  const ClassId kid2 =
      s.add_class(big, ClassConfig::both(ServiceCurve::linear(mbps(5))));
  EXPECT_DOUBLE_EQ(s.admission_utilization(), 1.0);

  // Deleting kid2 frees its share; deleting kid1 would make `big` a leaf
  // again and re-admit its 6 Mb/s — which fits (0.6) once kid1's 5 Mb/s
  // is gone.
  s.delete_class(kid2);
  s.delete_class(kid1);
  EXPECT_DOUBLE_EQ(s.admission_utilization(), 0.6);

  // But a leaf-again transition that does NOT fit must be refused: fill
  // the link, then try to delete the last child of an rt-carrying parent.
  const ClassId kid3 =
      s.add_class(big, ClassConfig::both(ServiceCurve::linear(mbps(1))));
  s.add_class(kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(9))));
  EXPECT_DOUBLE_EQ(s.admission_utilization(), 1.0);
  try {
    s.delete_class(kid3);  // would re-admit big's 6 Mb/s on a full link
    FAIL() << "leaf-again transition must be admission-checked";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kAdmissionRejected);
  }
  EXPECT_FALSE(s.is_deleted(kid3));
  const AuditReport report = audit(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// --- Starvation watchdog ---------------------------------------------------

TEST(Watchdog, FlagsUlBlockedLeafAndCountsOnce) {
  const RateBps link = mbps(10);
  Hfsc s(link);
  // `limited` may use at most 1% of the link through link-sharing;
  // `greedy` soaks up the rest.  With both backlogged, `limited` starves
  // for long stretches on a saturated link.
  const ClassId limited = s.add_class(
      kRootClass, ClassConfig{ServiceCurve{}, ServiceCurve::linear(link / 100),
                              ServiceCurve::linear(link / 100)});
  const ClassId greedy = s.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(link)));
  s.enable_starvation_watchdog(msec(10));
  EXPECT_EQ(s.starvation_horizon(), msec(10));

  TimeNs now = 0;
  std::uint64_t seq = 0;
  for (int i = 0; i < 200; ++i) {
    s.enqueue(now, Packet{limited, 1000, now, seq++});
    s.enqueue(now, Packet{greedy, 1000, now, seq++});
  }
  std::uint64_t limited_served = 0;
  while (s.backlog_packets() > 0) {
    const auto p = s.dequeue(now);
    if (!p) break;
    if (p->cls == limited) ++limited_served;
    now += tx_time(p->len, link);
  }
  // The upper limit throttled `limited` hard...
  EXPECT_LT(limited_served, 200u);
  // ...and the watchdog noticed at least one starvation episode without
  // double counting an uninterrupted one on every scan.
  EXPECT_GE(s.starvation_events(), 1u);
  EXPECT_LE(s.starvation_events(), 200u);

  // On-demand query agrees while the leaf is still waiting.
  s.enqueue(now, Packet{limited, 1000, now, seq++});
  const auto starved = s.starved_classes(now + sec(1));
  EXPECT_EQ(starved.size(), 1u);
  EXPECT_EQ(starved[0], limited);
}

TEST(Watchdog, DisabledByDefaultAndQuietWhenServed) {
  Hfsc s(mbps(10));
  const ClassId leaf = s.add_class(
      kRootClass, ClassConfig::both(ServiceCurve::linear(mbps(5))));
  TimeNs now = 0;
  s.enqueue(now, Packet{leaf, 100, now, 0});
  EXPECT_TRUE(s.starved_classes(now + sec(10)).empty());  // disabled: empty

  s.enable_starvation_watchdog(sec(1));
  // Served regularly: never flagged.
  for (int i = 0; i < 100; ++i) {
    s.enqueue(now, Packet{leaf, 100, now, 0});
    while (const auto p = s.dequeue(now)) now += tx_time(p->len, mbps(10));
    now += msec(100);
  }
  EXPECT_EQ(s.starvation_events(), 0u);
  EXPECT_TRUE(s.starved_classes(now).empty());
}

}  // namespace
}  // namespace hfsc
