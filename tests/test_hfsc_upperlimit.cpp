// Tests for the upper-limit service curve extension (the rate-capping
// feature of the authors' ALTQ/NetBSD implementation; DESIGN.md S13).
#include <gtest/gtest.h>

#include "core/hfsc.hpp"
#include "sim/simulator.hpp"

namespace hfsc {
namespace {

TEST(HfscUpperLimit, CapsAGreedyClass) {
  Hfsc sched(mbps(10));
  ClassConfig cfg = ClassConfig::link_share_only(ServiceCurve::linear(mbps(10)));
  cfg.ul = ServiceCurve::linear(mbps(3));  // hard cap at 3 Mb/s
  const ClassId capped = sched.add_class(kRootClass, cfg);
  Simulator sim(mbps(10), sched);
  sim.add<GreedySource>(capped, 1000, 4, 0, sec(3));
  sim.run(sec(3));
  // Despite a 10 Mb/s ls curve and an idle link, output is shaped to 3.
  EXPECT_NEAR(sim.tracker().rate_mbps(capped, msec(200), sec(3)), 3.0, 0.15);
  // The link was mostly idle: the scheduler is non-work-conserving here.
  EXPECT_LT(sim.link().busy_time(), sec(1) + msec(200));
}

TEST(HfscUpperLimit, UncappedSiblingTakesTheRest) {
  Hfsc sched(mbps(10));
  ClassConfig cfg_capped =
      ClassConfig::link_share_only(ServiceCurve::linear(mbps(5)));
  cfg_capped.ul = ServiceCurve::linear(mbps(2));
  const ClassId capped = sched.add_class(kRootClass, cfg_capped);
  const ClassId open = sched.add_class(
      kRootClass, ClassConfig::link_share_only(ServiceCurve::linear(mbps(5))));
  Simulator sim(mbps(10), sched);
  sim.add<GreedySource>(capped, 1000, 4, 0, sec(3));
  sim.add<GreedySource>(open, 1000, 4, 0, sec(3));
  sim.run(sec(3));
  EXPECT_NEAR(sim.tracker().rate_mbps(capped, msec(200), sec(3)), 2.0, 0.15);
  EXPECT_NEAR(sim.tracker().rate_mbps(open, msec(200), sec(3)), 8.0, 0.3);
}

TEST(HfscUpperLimit, DoesNotAffectRealTimeGuarantee) {
  // The cap applies to the link-sharing criterion; a leaf's rt curve
  // still delivers (kernel semantics: ul shapes the ls path only).
  Hfsc sched(mbps(10));
  ClassConfig cfg = ClassConfig::both(ServiceCurve::linear(mbps(4)));
  cfg.ul = ServiceCurve::linear(mbps(1));
  const ClassId c = sched.add_class(kRootClass, cfg);
  Simulator sim(mbps(10), sched);
  sim.add<CbrSource>(c, mbps(4), 1000, 0, sec(2));
  sim.run(sec(2));
  // The rt curve (4 Mb/s) dominates the 1 Mb/s cap.
  EXPECT_NEAR(sim.tracker().rate_mbps(c, msec(200), sec(2)), 4.0, 0.2);
}

TEST(HfscUpperLimit, BurstAllowanceThenSustained) {
  // A concave upper limit allows an initial burst then clamps to m2.
  Hfsc sched(mbps(10));
  ClassConfig cfg = ClassConfig::link_share_only(ServiceCurve::linear(mbps(10)));
  cfg.ul = ServiceCurve{mbps(10), msec(100), mbps(2)};
  const ClassId c = sched.add_class(kRootClass, cfg);
  Simulator sim(mbps(10), sched);
  sim.add<GreedySource>(c, 1000, 4, 0, sec(3));
  sim.run(sec(3));
  // First 100 ms: full speed.  Afterwards: 2 Mb/s.
  EXPECT_GT(sim.tracker().rate_mbps(c, 0, msec(100)), 8.0);
  EXPECT_NEAR(sim.tracker().rate_mbps(c, msec(500), sec(3)), 2.0, 0.15);
}

TEST(HfscUpperLimit, IdleDoesNotBankCredit) {
  // The ul curve re-anchors on activation (min-fold): a long idle period
  // must not allow a catch-up burst beyond the curve's own burst term.
  Hfsc sched(mbps(10));
  ClassConfig cfg = ClassConfig::link_share_only(ServiceCurve::linear(mbps(10)));
  cfg.ul = ServiceCurve::linear(mbps(2));  // no burst term at all
  const ClassId c = sched.add_class(kRootClass, cfg);
  Simulator sim(mbps(10), sched);
  sim.add<GreedySource>(c, 1000, 4, sec(1), sec(3));  // idle first second
  sim.run(sec(3));
  EXPECT_EQ(sim.tracker().bytes(c) > 0, true);
  // Over (1s, 3s) the class is still held to 2 Mb/s — no credit for the
  // idle first second.
  EXPECT_NEAR(sim.tracker().rate_mbps(c, sec(1), sec(3)), 2.0, 0.15);
}

}  // namespace
}  // namespace hfsc
