// Differential validation of the analyzer's end-to-end route budgets
// (analysis/analyzer.cpp check_routes) against the routed simulator:
// on random 2-4 node chain topologies carrying conformant CBR flows,
// the measured per-route p100 delay and the measured per-node peak
// backlog must never exceed the analytic bounds.
//
// Soundness preconditions the generator enforces (they are the
// hypotheses of the underlying theorems, not test conveniences):
//   - every class is routed and fed by one CBR source conforming to its
//     declared token-bucket envelope (burst >= 2 packets, rate equal);
//   - leaf rt reservations stay well under every node's link rate, so
//     each hop's guarantee actually holds (Theorem 2's hypothesis);
//   - per-node peak backlog is compared against the sum of the hop
//     backlog bounds of the flows crossing that node, which dominates
//     the node total exactly because all traffic belongs to such flows.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "sim/scenario.hpp"

namespace hfsc {
namespace {

struct FlowGen {
  std::string name;
  std::size_t first_hop = 0;  // route covers [first_hop, num_nodes)
  RateBps rate = 0;
  Bytes pkt = 0;
  TimeNs dwell = 0;  // rt curve's first-segment duration
};

// RateBps is bytes/second; the scenario grammar's bare `bps` suffix is
// bits/second.
std::string as_bps(RateBps r) { return std::to_string(r * 8) + "bps"; }

// One random chain topology + conformant workload, as scenario text.
std::string random_scenario(std::mt19937_64& rng, std::size_t num_nodes) {
  std::uniform_int_distribution<int> node_mbps(20, 45);
  std::uniform_int_distribution<int> num_flows(2, 4);
  std::uniform_int_distribution<RateBps> flow_rate(kbps(128), mbps(1));
  std::uniform_int_distribution<Bytes> pkt_len(100, 1200);

  std::vector<RateBps> rates(num_nodes);
  for (RateBps& r : rates) r = mbps(node_mbps(rng));

  std::vector<FlowGen> flows(static_cast<std::size_t>(num_flows(rng)));
  for (std::size_t i = 0; i < flows.size(); ++i) {
    FlowGen& f = flows[i];
    f.name = "f" + std::to_string(i);
    // Flow 0 spans the whole chain so every node carries traffic;
    // later flows may enter mid-chain (routes need >= 2 hops).
    f.first_hop =
        i == 0 ? 0
               : std::uniform_int_distribution<std::size_t>(
                     0, num_nodes - 2)(rng);
    f.rate = flow_rate(rng);
    f.pkt = pkt_len(rng);
    // Pin the udr first-segment slope at ~2x the sustained rate (dwell
    // = burst / (2 rate)): the aggregate rt obligation then stays below
    // 8 x 1 Mb/s against >= 20 Mb/s links, so admission is feasible on
    // every generated node by construction.
    f.dwell = muldiv_ceil(2 * f.pkt, kNsPerSec, 2 * f.rate);
  }

  std::ostringstream os;
  os << "duration 400ms\n";
  for (std::size_t n = 0; n < num_nodes; ++n) {
    os << "node n" << n << " " << as_bps(rates[n]) << "\n";
    for (const FlowGen& f : flows) {
      if (f.first_hop > n) continue;
      os << "  class " << f.name << " root rt udr " << 2 * f.pkt << " "
         << f.dwell << "ns " << as_bps(f.rate) << " ls linear "
         << as_bps(f.rate) << "\n";
      if (f.first_hop == n) {
        os << "  envelope " << f.name << " " << 2 * f.pkt << " "
           << as_bps(f.rate) << "\n";
      }
    }
    os << "end\n";
  }
  for (const FlowGen& f : flows) {
    os << "route " << f.name;
    for (std::size_t n = f.first_hop; n < num_nodes; ++n) os << " n" << n;
    os << "\n";
  }
  for (const FlowGen& f : flows) {
    // One CBR source per flow: rate equal to the envelope rate, packet
    // no larger than half the declared burst — conformant by
    // construction.
    os << "source cbr " << f.name << " " << as_bps(f.rate) << " " << f.pkt
       << " 0s 400ms\n";
  }
  return os.str();
}

void check_one(const std::string& text, const std::string& tag) {
  std::istringstream in(text);
  const Scenario sc = Scenario::parse(in, "fuzz.hfsc");
  AnalysisOptions opts;
  opts.portability = false;
  const AnalysisReport rep = analyze(sc, opts);
  ASSERT_TRUE(rep.rt_feasible) << tag << "\n" << text;
  ASSERT_EQ(rep.errors(), 0u) << tag << "\n" << rep.to_text();
  ASSERT_EQ(rep.flows.size(), sc.routes.size()) << tag;

  const ScenarioResult result = run_scenario(sc);
  ASSERT_TRUE(result.conserved()) << tag;

  // (1) Measured p100 end-to-end delay never exceeds the composed bound.
  for (const ScenarioResult::EndToEnd& ee : result.e2e) {
    const FlowBudget* budget = nullptr;
    for (const FlowBudget& f : rep.flows) {
      if (f.cls == ee.cls) budget = &f;
    }
    ASSERT_NE(budget, nullptr) << tag << " flow " << ee.cls;
    ASSERT_TRUE(budget->e2e_delay.has_value())
        << tag << " flow " << ee.cls << "\n" << rep.to_text();
    const double bound_ms = static_cast<double>(*budget->e2e_delay) / 1e6;
    EXPECT_LE(ee.max_delay_ms, bound_ms + 1e-6)
        << tag << " flow " << ee.cls << " measured p100 above the bound\n"
        << rep.to_text();
    EXPECT_GT(ee.delivered, 0u) << tag << " flow " << ee.cls;
  }

  // (2) Measured per-node peak backlog never exceeds the sum of the hop
  // backlog bounds of the flows crossing the node.
  for (const ScenarioResult::NodeStats& ns : result.nodes) {
    Bytes bound = 0;
    bool complete = true;
    for (const FlowBudget& f : rep.flows) {
      for (const HopBudget& h : f.hops) {
        if (h.node != ns.name) continue;
        if (!h.backlog) {
          complete = false;
        } else {
          bound = sat_add(bound, *h.backlog);
        }
      }
    }
    ASSERT_TRUE(complete) << tag << " node " << ns.name << "\n"
                          << rep.to_text();
    EXPECT_LE(ns.peak_backlog_bytes, bound)
        << tag << " node " << ns.name << " peak backlog above the bound\n"
        << rep.to_text();
  }
}

TEST(AnalysisTopologyFuzz, BoundsDominateSimulationOnRandomChains) {
  // >= 10 distinct topologies x >= 10 seeds (the acceptance floor).
  for (int topo = 0; topo < 10; ++topo) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      std::mt19937_64 rng(0xf10e5ULL * (topo + 1) + seed);
      const std::size_t num_nodes = 2 + (topo % 3);  // 2, 3, 4 node chains
      const std::string text = random_scenario(rng, num_nodes);
      check_one(text, "topo " + std::to_string(topo) + " seed " +
                          std::to_string(seed));
      if (HasFatalFailure()) return;
    }
  }
}

TEST(AnalysisTopologyFuzz, BoundsDominateShippedMultiNodeScenarios) {
  // Every committed multi-node scenario: where the analyzer reports a
  // finite route bound, the simulated p100 delay must respect it — with
  // the file's real cross traffic in play, not just conformant CBR.
  const Scenario sc = Scenario::parse_file(std::string(HFSC_SOURCE_DIR) +
                                           "/scenarios/backbone.hfsc");
  AnalysisOptions opts;
  opts.portability = false;
  const AnalysisReport rep = analyze(sc, opts);
  const ScenarioResult result = run_scenario(sc);
  std::size_t checked = 0;
  for (const ScenarioResult::EndToEnd& ee : result.e2e) {
    for (const FlowBudget& f : rep.flows) {
      if (f.cls != ee.cls || !f.e2e_delay) continue;
      EXPECT_LE(ee.max_delay_ms,
                static_cast<double>(*f.e2e_delay) / 1e6 + 1e-6)
          << "backbone flow " << ee.cls;
      ++checked;
    }
  }
  EXPECT_GE(checked, 1u) << "no finite route bound was exercised";
}

}  // namespace
}  // namespace hfsc
