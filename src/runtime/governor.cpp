#include "runtime/governor.hpp"

#include <sstream>

#include "util/errors.hpp"

namespace hfsc {

const char* to_string(GovEventKind k) noexcept {
  switch (k) {
    case GovEventKind::kLevelUp: return "level-up";
    case GovEventKind::kLevelDown: return "level-down";
    case GovEventKind::kClamp: return "clamp";
    case GovEventKind::kUnclamp: return "unclamp";
    case GovEventKind::kQuarantine: return "quarantine";
    case GovEventKind::kRelease: return "release";
    case GovEventKind::kTightenAdmission: return "tighten-admission";
    case GovEventKind::kRestoreAdmission: return "restore-admission";
  }
  return "?";
}

std::string GovEvent::to_string() const {
  std::ostringstream os;
  os << hfsc::to_string(kind) << " @" << when;
  if (kind == GovEventKind::kLevelUp || kind == GovEventKind::kLevelDown) {
    os << " level " << from_level << "->" << to_level;
  } else if (cls != kRootClass) {
    os << " class " << cls;
  }
  return os.str();
}

int OverloadGovernor::target_level(const GovSignals& sig) const noexcept {
  int t = 0;
  for (int i = 0; i < 3; ++i) {
    if (sig.backlog_bytes >= cfg_.enter_backlog[i]) t = i + 1;
  }
  // A starving leaf under real pressure is direct evidence the current
  // response is not enough; starvation with an idle link is legal
  // (upper limits, rt-only curves) and escalates nothing.
  if (t > 0 && t < 3 && sig.starved_leaves > 0) ++t;
  return t;
}

GovActions OverloadGovernor::sample(const GovSignals& sig, TimeNs now,
                                    const Hfsc& sched) {
  GovActions out;

  const int target = target_level(sig);
  const bool wants_up = target > level_;
  const bool wants_down =
      level_ > 0 && target < level_ &&
      sig.backlog_bytes < cfg_.exit_backlog[level_ - 1] &&
      sig.starved_leaves == 0;

  if (wants_up) {
    ++up_streak_;
    down_streak_ = 0;
  } else if (wants_down) {
    ++down_streak_;
    up_streak_ = 0;
  } else {
    up_streak_ = 0;
    down_streak_ = 0;
  }

  if (wants_up && up_streak_ >= cfg_.up_samples) {
    const int from = level_;
    ++level_;  // one rung at a time; the ladder is walked, not jumped
    up_streak_ = 0;
    emit(GovEvent{GovEventKind::kLevelUp, now, from, level_});
    if (level_ >= 3) {
      emit(GovEvent{GovEventKind::kTightenAdmission, now, from, level_});
    }
  } else if (wants_down && down_streak_ >= cfg_.down_samples) {
    const int from = level_;
    --level_;
    down_streak_ = 0;
    emit(GovEvent{GovEventKind::kLevelDown, now, from, level_});
    if (level_ < 3 && tightened_) {
      emit(GovEvent{GovEventKind::kRestoreAdmission, now, from, level_});
    }
    if (level_ < 2) {
      // Full reversal: every clamp and quarantine is undone from the
      // saved originals the moment the clamping level is left.
      for (const auto& [cls, saved] : clamped_) {
        (void)saved;
        out.unclamp.push_back(cls);
        emit(GovEvent{GovEventKind::kUnclamp, now, from, level_, cls});
      }
      for (const auto& [cls, saved] : quarantined_) {
        (void)saved;
        out.release.push_back(cls);
        emit(GovEvent{GovEventKind::kRelease, now, from, level_, cls});
      }
      flagged_streak_.clear();
    }
  }

  // Admission headroom is requested as long as the ladder sits at level
  // 3 (and released below it), not only on the transition edge: if the
  // host could not tighten — the admitted aggregate would not fit the
  // reduced link — it retries at the next sample.
  if (level_ >= 3 && !tightened_) out.tighten_admission = true;
  if (level_ < 3 && tightened_) out.restore_admission = true;

  if (level_ >= 2) {
    // Offender scan: live non-rt leaves persistently holding at least
    // half the push-out cap.  The level-1 early drop pins a flooding
    // class at or just below class_threshold, so the clamping level
    // must flag below the cap or a capped flooder would never be seen.
    // rt-bearing leaves are constitutionally exempt — their guarantees
    // are the thing the ladder exists to protect.
    for (ClassId c = 1; c < sched.num_classes(); ++c) {
      if (sched.is_deleted(c) || !sched.is_leaf(c)) continue;
      const ClassConfig& cfg = sched.config_of(c);
      if (!cfg.rt.is_zero()) continue;
      if (sched.queued_bytes(c) >= cfg_.class_threshold / 2) {
        const int streak = ++flagged_streak_[c];
        if (clamped_.find(c) == clamped_.end()) {
          out.clamp.push_back(c);
          emit(GovEvent{GovEventKind::kClamp, now, level_, level_, c});
        } else if (streak >= cfg_.quarantine_after &&
                   quarantined_.find(c) == quarantined_.end()) {
          out.quarantine.push_back(c);
          emit(GovEvent{GovEventKind::kQuarantine, now, level_, level_, c});
        }
      } else {
        flagged_streak_.erase(c);
      }
    }
  }

  return out;
}

std::string OverloadGovernor::serialize() const {
  std::ostringstream os;
  os << "gov-state 1\n";
  os << "level " << level_ << ' ' << (tightened_ ? 1 : 0) << '\n';
  os << "clamped " << clamped_.size() << '\n';
  for (const auto& [cls, cfg] : clamped_) {
    os << cls << ' ' << cfg.rt.m1 << ' ' << cfg.rt.d << ' ' << cfg.rt.m2
       << ' ' << cfg.ls.m1 << ' ' << cfg.ls.d << ' ' << cfg.ls.m2 << ' '
       << cfg.ul.m1 << ' ' << cfg.ul.d << ' ' << cfg.ul.m2 << '\n';
  }
  os << "quarantined " << quarantined_.size() << '\n';
  for (const auto& [cls, limit] : quarantined_) {
    os << cls << ' ' << limit << '\n';
  }
  os << "end\n";
  return os.str();
}

void OverloadGovernor::restore(const std::string& blob) {
  std::istringstream in(blob);
  auto bad = [](const std::string& what) -> void {
    throw Error(Errc::kBadCheckpoint, "governor state: " + what);
  };
  std::string tok;
  int version = 0;
  if (!(in >> tok >> version) || tok != "gov-state" || version != 1) {
    bad("bad header");
  }
  int level = 0, tight = 0;
  if (!(in >> tok >> level >> tight) || tok != "level" || level < 0 ||
      level > 3 || (tight != 0 && tight != 1)) {
    bad("bad level record");
  }
  std::size_t n = 0;
  if (!(in >> tok >> n) || tok != "clamped") bad("bad clamped record");
  std::map<ClassId, ClassConfig> clamped;
  for (std::size_t i = 0; i < n; ++i) {
    ClassId cls = 0;
    ClassConfig cfg;
    if (!(in >> cls >> cfg.rt.m1 >> cfg.rt.d >> cfg.rt.m2 >> cfg.ls.m1 >>
          cfg.ls.d >> cfg.ls.m2 >> cfg.ul.m1 >> cfg.ul.d >> cfg.ul.m2)) {
      bad("truncated clamped entry");
    }
    clamped[cls] = cfg;
  }
  if (!(in >> tok >> n) || tok != "quarantined") bad("bad quarantined record");
  std::map<ClassId, std::size_t> quarantined;
  for (std::size_t i = 0; i < n; ++i) {
    ClassId cls = 0;
    std::size_t limit = 0;
    if (!(in >> cls >> limit)) bad("truncated quarantined entry");
    quarantined[cls] = limit;
  }
  if (!(in >> tok) || tok != "end") bad("missing end");

  level_ = level;
  tightened_ = tight == 1;
  clamped_ = std::move(clamped);
  quarantined_ = std::move(quarantined);
  // Hysteresis evidence does not survive recovery (see header).
  up_streak_ = down_streak_ = 0;
  flagged_streak_.clear();
}

}  // namespace hfsc
