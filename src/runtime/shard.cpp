#include "runtime/shard.hpp"

#include <chrono>
#include <limits>

namespace hfsc {

namespace {

// Internal kill signal for the operation-countdown fault.  Like
// CrashSignal it is deliberately outside the hfsc::Error taxonomy: a
// simulated thread death is not an error the stack below may handle.
struct KillSignal {
  ShardDeathPoint point = ShardDeathPoint::kNone;
};

constexpr TimeNs kNoHorizon = std::numeric_limits<TimeNs>::max();

}  // namespace

const char* to_string(ShardDeathPoint p) noexcept {
  switch (p) {
    case ShardDeathPoint::kNone: return "none";
    case ShardDeathPoint::kLoopTop: return "loop-top";
    case ShardDeathPoint::kAfterPop: return "after-pop";
    case ShardDeathPoint::kAfterEnqueue: return "after-enqueue";
    case ShardDeathPoint::kAfterDequeue: return "after-dequeue";
    case ShardDeathPoint::kCheckpoint: return "checkpoint";
    case ShardDeathPoint::kHostCrash: return "host-crash";
  }
  return "?";
}

Shard::Shard(int index, const ShardConfig& cfg)
    : index_(index), cfg_(cfg), ring_(cfg.ring_capacity) {
  host_.emplace(cfg_.runtime);
}

Shard::~Shard() { stop_and_join(); }

void Shard::replace_host(RuntimeHost&& h) {
  host_.emplace(std::move(h));
  local_now_ = 0;  // the recovered host's internal clocks clamp forward
}

int Shard::register_producer() {
  frontiers_.push_back(std::make_unique<std::atomic<TimeNs>>(0));
  return static_cast<int>(frontiers_.size()) - 1;
}

void Shard::post_batch(std::vector<RuntimeHost::BatchOp> ops) {
  ControlMsg m;
  m.kind = ControlMsg::Kind::kBatch;
  m.ops = std::move(ops);
  std::lock_guard<std::mutex> lk(control_mu_);
  control_.push_back(std::move(m));
  control_pending_.store(true, std::memory_order_release);
}

void Shard::post_tear(std::size_t bytes) {
  ControlMsg m;
  m.kind = ControlMsg::Kind::kTear;
  m.tear_bytes = bytes;
  std::lock_guard<std::mutex> lk(control_mu_);
  control_.push_back(std::move(m));
  control_pending_.store(true, std::memory_order_release);
}

void Shard::post_arm_crash(CrashPoint p) {
  ControlMsg m;
  m.kind = ControlMsg::Kind::kArmCrash;
  m.crash_point = p;
  std::lock_guard<std::mutex> lk(control_mu_);
  control_.push_back(std::move(m));
  control_pending_.store(true, std::memory_order_release);
}

void Shard::start() {
  if (thread_.joinable()) return;
  abort_.store(false, std::memory_order_release);
  dead_.store(false, std::memory_order_release);
  death_point_.store(ShardDeathPoint::kNone, std::memory_order_release);
  pops_since_ckpt_ = 0;
  thread_ = std::thread(&Shard::run_worker, this);
}

void Shard::stop_and_join() {
  {
    std::lock_guard<std::mutex> lk(pause_mu_);
    abort_.store(true, std::memory_order_release);
    pause_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void Shard::pause() {
  std::unique_lock<std::mutex> lk(pause_mu_);
  pause_req_.store(true, std::memory_order_release);
  pause_cv_.notify_all();
  pause_cv_.wait(lk, [&] {
    return paused_ || dead_.load(std::memory_order_acquire) ||
           !thread_.joinable();
  });
}

void Shard::resume() {
  std::lock_guard<std::mutex> lk(pause_mu_);
  pause_req_.store(false, std::memory_order_release);
  pause_cv_.notify_all();
}

bool Shard::check_pause_and_abort() {
  if (abort_.load(std::memory_order_acquire)) return false;
  if (!pause_req_.load(std::memory_order_acquire)) return true;
  std::unique_lock<std::mutex> lk(pause_mu_);
  paused_ = true;
  pause_cv_.notify_all();
  pause_cv_.wait(lk, [&] {
    return !pause_req_.load(std::memory_order_acquire) ||
           abort_.load(std::memory_order_acquire);
  });
  paused_ = false;
  return !abort_.load(std::memory_order_acquire);
}

void Shard::apply_control() {
  std::vector<ControlMsg> msgs;
  {
    std::lock_guard<std::mutex> lk(control_mu_);
    msgs.swap(control_);
    control_pending_.store(false, std::memory_order_release);
  }
  bool mutated = false;
  for (ControlMsg& m : msgs) {
    switch (m.kind) {
      case ControlMsg::Kind::kBatch:
        // A batch the scheduler rejects (admission, bad shape) is the
        // poster's problem, not the worker's: the txn left no trace.
        try {
          host_->commit_batch(m.ops);
          mutated = true;
        } catch (const Error&) {
        }
        break;
      case ControlMsg::Kind::kTear:
        host_->tear_next_append(m.tear_bytes);
        break;
      case ControlMsg::Kind::kArmCrash:
        host_->arm_crash(m.crash_point);
        break;
    }
  }
  if (mutated) refresh_rt_leaves();
}

void Shard::refresh_rt_leaves() {
  const Hfsc& s = host_->sched();
  rt_leaf_.assign(s.num_classes(), false);
  for (ClassId c = 1; c < s.num_classes(); ++c) {
    rt_leaf_[c] =
        !s.is_deleted(c) && s.is_leaf(c) && !s.config_of(c).rt.is_zero();
  }
}

TimeNs Shard::horizon() const {
  if (frontiers_.empty()) return kNoHorizon;
  TimeNs h = kNoHorizon;
  for (const auto& f : frontiers_) {
    const TimeNs t = f->load(std::memory_order_acquire);
    if (t < h) h = t;
  }
  return h;
}

void Shard::maybe_die(ShardDeathPoint p) {
  std::uint64_t k = kill_countdown_.load(std::memory_order_acquire);
  if (k == 0) return;
  if (k == 1) {
    kill_countdown_.store(0, std::memory_order_release);
    throw KillSignal{p};
  }
  kill_countdown_.store(k - 1, std::memory_order_release);
}

void Shard::run_worker() {
  try {
    refresh_rt_leaves();
    for (;;) {
      if (!check_pause_and_abort()) return;
      if (stall_.load(std::memory_order_acquire)) {
        // The fault: a wedged worker stops heartbeating.  It still
        // honors pause/abort so the supervisor can reap it.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      heartbeat_.fetch_add(1, std::memory_order_release);
      maybe_die(ShardDeathPoint::kLoopTop);
      if (control_pending_.load(std::memory_order_acquire)) apply_control();

      // Feed and serve, merged in virtual-timestamp order: while the
      // link is busy (backlog) strictly before the head arrival's
      // stamp, transmission completions are the next events — the ring
      // head waits.  Only an idle link jumps local_now_ forward to the
      // next arrival.  This is exactly the serve-before-arrivals rule
      // of the single-threaded harnesses, so per-packet rt delays are
      // measured against a correctly work-conserving virtual link and
      // the Theorem 2 bound applies without slack.  Service (never
      // feeding) is additionally gated by the producers' conservative
      // frontier: no dequeue may outrun a stamp a producer could still
      // push.  Both directions are budgeted per loop iteration so a
      // flood cannot starve the heartbeat.
      const TimeNs gate = cfg_.refill ? kNoHorizon : horizon();
      std::size_t fed = 0;
      std::size_t served = 0;
      for (;;) {
        const ShardItem* head =
            fed < ring_.capacity() ? ring_.try_peek() : nullptr;
        const bool busy = host_->sched().backlog_packets() > 0;
        if (head && (!busy || head->now <= local_now_)) {
          std::optional<ShardItem> item = ring_.try_pop();
          popped_.fetch_add(1, std::memory_order_release);
          maybe_die(ShardDeathPoint::kAfterPop);  // in-flight loss point
          if (!busy && item->now > local_now_) local_now_ = item->now;
          // A stamp behind the link clock (the link served past the
          // arrival instant) enqueues at the clock; the packet keeps
          // its true arrival stamp for delay measurement.
          host_->enqueue(std::max(local_now_, item->now), item->pkt);
          ++pops_since_ckpt_;
          ++fed;
          maybe_die(ShardDeathPoint::kAfterEnqueue);
        } else if (busy && served < cfg_.serve_burst && local_now_ < gate) {
          if (cfg_.refill && head == nullptr) {
            // Steady-state bench mode with nothing to merge from the
            // ring: drain the rest of the burst through the batched API
            // (the frontier gate is off, so no merge-order constraint
            // pins us to one dequeue per iteration).  Delay is measured
            // against the advancing link clock — the same instant the
            // single-step path would observe each packet at.
            batch_buf_.clear();
            const std::size_t got = host_->dequeue_batch(
                local_now_, cfg_.serve_burst - served, batch_buf_);
            if (got == 0) break;  // backlogged but nothing eligible yet
            for (const Packet& bp : batch_buf_) {
              sent_total_.fetch_add(1, std::memory_order_release);
              if (bp.cls < rt_leaf_.size() && rt_leaf_[bp.cls]) {
                const TimeNs d =
                    local_now_ >= bp.arrival ? local_now_ - bp.arrival : 0;
                if (d > max_rt_delay_.load(std::memory_order_relaxed)) {
                  max_rt_delay_.store(d, std::memory_order_release);
                }
              }
              local_now_ += tx_time(bp.len, cfg_.runtime.link_rate);
              host_->enqueue(local_now_,
                             Packet{bp.cls, bp.len, local_now_, refill_seq_++});
              ++served;
              maybe_die(ShardDeathPoint::kAfterDequeue);
            }
            continue;
          }
          std::optional<Packet> p = host_->dequeue(local_now_);
          if (!p) {
            // Backlog present but nothing eligible yet (upper-limit
            // curves): the link idles until the next event — the head
            // arrival if one waits, else the frontier itself.
            if (head && head->now > local_now_) {
              local_now_ = head->now;
              continue;
            }
            if (gate != kNoHorizon && gate > local_now_) local_now_ = gate;
            break;
          }
          sent_total_.fetch_add(1, std::memory_order_release);
          if (p->cls < rt_leaf_.size() && rt_leaf_[p->cls]) {
            const TimeNs d =
                local_now_ >= p->arrival ? local_now_ - p->arrival : 0;
            if (d > max_rt_delay_.load(std::memory_order_relaxed)) {
              max_rt_delay_.store(d, std::memory_order_release);
            }
          }
          local_now_ += tx_time(p->len, cfg_.runtime.link_rate);
          if (cfg_.refill) {
            host_->enqueue(local_now_,
                           Packet{p->cls, p->len, local_now_, refill_seq_++});
          }
          ++served;
          maybe_die(ShardDeathPoint::kAfterDequeue);
        } else {
          break;
        }
      }

      if (cfg_.checkpoint_every_pops > 0 &&
          pops_since_ckpt_ >= cfg_.checkpoint_every_pops) {
        pops_since_ckpt_ = 0;
        maybe_die(ShardDeathPoint::kCheckpoint);
        host_->save_checkpoint();
      }

      if (fed == 0 && served == 0) {
        // Idle (or waiting for the frontier): yield the core.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  } catch (const CrashSignal&) {
    std::lock_guard<std::mutex> lk(pause_mu_);
    death_point_.store(ShardDeathPoint::kHostCrash, std::memory_order_release);
    dead_.store(true, std::memory_order_release);
    pause_cv_.notify_all();  // a waiting pause() must not hang on a corpse
  } catch (const KillSignal& k) {
    std::lock_guard<std::mutex> lk(pause_mu_);
    death_point_.store(k.point, std::memory_order_release);
    dead_.store(true, std::memory_order_release);
    pause_cv_.notify_all();
  }
}

}  // namespace hfsc
