// One shard of the supervised multi-shard runtime
// (docs/ROBUSTNESS.md Section 12).
//
// A Shard owns a full single-instance resilience stack — RuntimeHost,
// i.e. Hfsc + Journal + OverloadGovernor — plus the worker thread that
// drives it and the MPSC ring producers feed it through.  The worker
// loop is the only thread that ever touches the host while it runs:
//
//     beat heartbeat -> honor pause/abort/stall flags -> apply queued
//     control ops -> drain the ring into the host -> serve up to a
//     burst of dequeues gated by the producers' time frontier ->
//     periodic checkpoint
//
// Everything the supervisor (runtime/supervisor.hpp) needs in order to
// detect and survive this thread dying lives OUTSIDE the host, in
// atomics that play the role of a shared-memory stats segment: the
// heartbeat counter, the dead flag, and the cumulative ring/injection
// counters the conservation identity is computed from.  When the worker
// is killed (simulated crash: CrashSignal from the host's persistence
// boundaries, or this shard's own operation-countdown kill), the host
// object's in-memory state is treated as gone — recovery rebuilds a
// host from the persisted (checkpoint image, durable journal image)
// pair alone, exactly like PR 6's single-instance recovery.
//
// Time model: packets travel with a virtual timestamp (ShardItem::now).
// Each registered producer publishes a "frontier" — a promise that
// everything it will still push carries a stamp >= that value.  The
// worker only serves while its local virtual clock is below the minimum
// frontier (conservative parallel-discrete-event rule), so per-packet
// rt-delay measurements are sound under arbitrary real-thread
// interleavings.  With no producers registered the horizon is infinite
// (the bench's steady-state mode).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/host.hpp"
#include "util/mpsc_ring.hpp"

namespace hfsc {

// What producers push: a packet plus its virtual arrival stamp.
struct ShardItem {
  TimeNs now = 0;
  Packet pkt{};
};

// Where the worker's operation-countdown kill fired (diagnostics; the
// host's own CrashPoints cover the persistence boundaries).
enum class ShardDeathPoint {
  kNone,
  kLoopTop,
  kAfterPop,      // ring item popped, host never saw it (in-flight loss)
  kAfterEnqueue,
  kAfterDequeue,
  kCheckpoint,
  kHostCrash,     // a CrashSignal out of the host itself
};

const char* to_string(ShardDeathPoint p) noexcept;

struct ShardConfig {
  RuntimeOptions runtime{};
  std::size_t ring_capacity = 1024;
  // Save a checkpoint every N ring pops; 0 = never (bench mode).
  std::size_t checkpoint_every_pops = 8192;
  // Dequeues per loop iteration.  Smaller = finer-grained virtual time
  // (tighter delay measurement); larger = more throughput.
  std::size_t serve_burst = 16;
  // Steady-state bench mode: every dequeued packet is immediately
  // re-enqueued to the same class, and the frontier gate is ignored.
  bool refill = false;
};

class Shard {
 public:
  Shard(int index, const ShardConfig& cfg);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  int index() const noexcept { return index_; }

  // --- Construction / recovery (no worker thread running) ------------------
  // Direct host access.  Legal only before start() and between join()
  // and the next start(); the join gives the happens-before edge.
  RuntimeHost& host() noexcept { return *host_; }
  const RuntimeHost& host() const noexcept { return *host_; }
  // Installs a recovered host (supervisor restart path).
  void replace_host(RuntimeHost&& h);

  // --- Worker lifecycle ------------------------------------------------------
  void start();
  // Asks the worker to exit at the next loop top (also breaks an
  // injected stall) and joins it.  Idempotent.
  void stop_and_join();
  bool worker_running() const noexcept { return thread_.joinable(); }

  // --- Producer side ---------------------------------------------------------
  // Lock-free; false = ring full (the caller owns the backpressure
  // accounting).  Callable from any thread at any time.
  bool offer(const ShardItem& item) { return ring_.try_push(item); }
  MpscRing<ShardItem>& ring() noexcept { return ring_; }

  // Producer frontier slots (conservative time gate).  All slots must be
  // registered before start(); index into producer_frontier afterwards.
  int register_producer();
  void publish_frontier(int producer, TimeNs t) {
    frontiers_[static_cast<std::size_t>(producer)]->store(
        t, std::memory_order_release);
  }

  // --- Control mailbox -------------------------------------------------------
  // Queued mutations the worker applies (journaled) at its next loop
  // top; the tear/crash arms ride the same mailbox so they reach the
  // host from the worker thread, race-free.
  void post_batch(std::vector<RuntimeHost::BatchOp> ops);
  void post_tear(std::size_t bytes);
  void post_arm_crash(CrashPoint p);

  // --- Fault injection -------------------------------------------------------
  // Stops heartbeating and serving until the supervisor restarts the
  // shard (the stall loop still honors abort and pause).
  void inject_stall() { stall_.store(true, std::memory_order_release); }
  void clear_stall() { stall_.store(false, std::memory_order_release); }
  bool stalled() const noexcept {
    return stall_.load(std::memory_order_acquire);
  }
  // Kills the worker (simulated crash) after `ops` more countdown
  // checkpoints in the loop (see ShardDeathPoint).
  void inject_kill(std::uint64_t ops) {
    kill_countdown_.store(ops, std::memory_order_release);
  }

  // --- Supervisor-facing state ----------------------------------------------
  std::uint64_t heartbeat() const noexcept {
    return heartbeat_.load(std::memory_order_acquire);
  }
  bool dead() const noexcept { return dead_.load(std::memory_order_acquire); }
  ShardDeathPoint death_point() const noexcept {
    return death_point_.load(std::memory_order_acquire);
  }

  // Quiesce handshake: pause() returns once the worker is parked at its
  // loop top (or has died — the caller must check dead()); resume()
  // releases it.  While paused the host may be read by other threads.
  void pause();
  void resume();

  // --- Conservation counters (cumulative, survive worker death) -------------
  // Ring items consumed by the worker (including any in-flight one a
  // crash swallowed).
  std::uint64_t popped() const noexcept {
    return popped_.load(std::memory_order_acquire);
  }
  // Packets the supervisor injected directly into the host (spill
  // re-injection after a restart).
  std::uint64_t injected() const noexcept {
    return injected_.load(std::memory_order_acquire);
  }
  void count_injected(std::uint64_t n) {
    injected_.fetch_add(n, std::memory_order_acq_rel);
  }
  // Packets lost to crashes (reconciled by the supervisor at restart:
  // popped + injected - what the recovered host accounts for).
  std::uint64_t crash_lost() const noexcept {
    return crash_lost_.load(std::memory_order_acquire);
  }
  void set_crash_lost(std::uint64_t v) {
    crash_lost_.store(v, std::memory_order_release);
  }
  std::uint64_t restarts() const noexcept {
    return restarts_.load(std::memory_order_acquire);
  }
  void count_restart() { restarts_.fetch_add(1, std::memory_order_acq_rel); }
  // Worst rt-leaf dequeue delay observed by the worker (ns).
  TimeNs max_rt_delay() const noexcept {
    return max_rt_delay_.load(std::memory_order_acquire);
  }
  void reset_max_rt_delay() {
    max_rt_delay_.store(0, std::memory_order_release);
  }
  std::uint64_t sent_total() const noexcept {
    return sent_total_.load(std::memory_order_acquire);
  }

  const ShardConfig& config() const noexcept { return cfg_; }

 private:
  void run_worker();
  // Parks at the loop top while a pause is requested; returns false if
  // the worker should exit (abort).
  bool check_pause_and_abort();
  void apply_control();
  void refresh_rt_leaves();
  TimeNs horizon() const;
  // Operation-countdown kill probe.
  void maybe_die(ShardDeathPoint p);

  struct ControlMsg {
    enum class Kind { kBatch, kTear, kArmCrash };
    Kind kind = Kind::kBatch;
    std::vector<RuntimeHost::BatchOp> ops;
    std::size_t tear_bytes = 0;
    CrashPoint crash_point = CrashPoint::kNone;
  };

  const int index_;
  ShardConfig cfg_;
  std::optional<RuntimeHost> host_;
  MpscRing<ShardItem> ring_;
  std::thread thread_;

  // Worker-local (no synchronization needed).
  TimeNs local_now_ = 0;
  std::uint64_t refill_seq_ = 1u << 20;
  std::size_t pops_since_ckpt_ = 0;
  std::vector<bool> rt_leaf_;
  std::vector<Packet> batch_buf_;  // refill-mode batched-drain scratch

  // Flags and the stats segment.
  std::atomic<bool> abort_{false};
  std::atomic<bool> stall_{false};
  std::atomic<bool> dead_{false};
  std::atomic<ShardDeathPoint> death_point_{ShardDeathPoint::kNone};
  std::atomic<std::uint64_t> kill_countdown_{0};
  std::atomic<std::uint64_t> heartbeat_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> crash_lost_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<TimeNs> max_rt_delay_{0};
  std::atomic<std::uint64_t> sent_total_{0};

  // Pause handshake.  pause_req_ is atomic so the worker's loop-top
  // check stays lock-free; writes happen under pause_mu_ for the cv.
  std::mutex pause_mu_;
  std::condition_variable pause_cv_;
  std::atomic<bool> pause_req_{false};
  bool paused_ = false;

  // Control mailbox.
  std::mutex control_mu_;
  std::vector<ControlMsg> control_;
  std::atomic<bool> control_pending_{false};

  // Producer frontiers (pointer-stable; registered before start()).
  std::vector<std::unique_ptr<std::atomic<TimeNs>>> frontiers_;
};

}  // namespace hfsc
