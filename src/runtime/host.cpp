#include "runtime/host.hpp"

#include <algorithm>
#include <iterator>
#include <sstream>

namespace hfsc {

namespace {

[[noreturn]] void bad_record(const std::string& payload) {
  throw Error(Errc::kBadJournal,
              "malformed journal record: '" + payload.substr(0, 48) + "'");
}

void put_sc(std::ostream& out, const ServiceCurve& sc) {
  out << sc.m1 << ' ' << sc.d << ' ' << sc.m2;
}

void put_cfg(std::ostream& out, const ClassConfig& cfg) {
  put_sc(out, cfg.rt);
  out << ' ';
  put_sc(out, cfg.ls);
  out << ' ';
  put_sc(out, cfg.ul);
}

ClassConfig read_cfg(std::istream& in, const std::string& payload) {
  ClassConfig cfg;
  if (!(in >> cfg.rt.m1 >> cfg.rt.d >> cfg.rt.m2 >> cfg.ls.m1 >> cfg.ls.d >>
        cfg.ls.m2 >> cfg.ul.m1 >> cfg.ul.d >> cfg.ul.m2)) {
    bad_record(payload);
  }
  return cfg;
}

}  // namespace

const char* to_string(CrashPoint p) noexcept {
  switch (p) {
    case CrashPoint::kNone: return "none";
    case CrashPoint::kAfterApply: return "after-apply";
    case CrashPoint::kAfterJournalAppend: return "after-journal-append";
    case CrashPoint::kBeforeCheckpoint: return "before-checkpoint";
    case CrashPoint::kAfterCheckpoint: return "after-checkpoint";
    case CrashPoint::kAfterCompact: return "after-compact";
  }
  return "?";
}

RuntimeHost::RuntimeHost(const RuntimeOptions& opts)
    : opts_(opts),
      sched_(opts.link_rate, opts.es_kind, opts.vt_policy),
      gov_(opts.governor) {
  if (opts_.admission_rate > 0) {
    sched_.enable_admission_control(opts_.admission_rate);
  }
  if (opts_.watchdog_horizon > 0) {
    sched_.enable_starvation_watchdog(opts_.watchdog_horizon);
  }
}

RuntimeHost::RuntimeHost(const RuntimeOptions& opts, Hfsc&& restored,
                         RecoverTag)
    : opts_(opts), sched_(std::move(restored)), gov_(opts.governor) {
  // Admission and watchdog configuration travel inside the checkpoint;
  // re-enabling them here would overwrite the recovered state.
}

// --- Journaled control plane -----------------------------------------------

ClassId RuntimeHost::add_class(ClassId parent, ClassConfig cfg) {
  const ClassId id = sched_.add_class(parent, cfg);
  maybe_crash(CrashPoint::kAfterApply);
  std::ostringstream p;
  p << "add " << parent << ' ';
  put_cfg(p, cfg);
  journal_append(p.str());
  maybe_crash(CrashPoint::kAfterJournalAppend);
  return id;
}

void RuntimeHost::change_class(TimeNs now, ClassId cls, ClassConfig cfg) {
  sched_.change_class(now, cls, cfg);
  maybe_crash(CrashPoint::kAfterApply);
  std::ostringstream p;
  p << "chg " << now << ' ' << cls << ' ';
  put_cfg(p, cfg);
  journal_append(p.str());
  maybe_crash(CrashPoint::kAfterJournalAppend);
}

void RuntimeHost::delete_class(ClassId cls) {
  sched_.delete_class(cls);
  // A deleted class can no longer be governed; dropping it from the
  // saved-state maps here is mirrored by the `del` replay path, so
  // recovery converges to the same governor state.
  gov_.forget_clamp(cls);
  gov_.forget_quarantine(cls);
  maybe_crash(CrashPoint::kAfterApply);
  journal_append("del " + std::to_string(cls));
  maybe_crash(CrashPoint::kAfterJournalAppend);
}

void RuntimeHost::set_queue_limit(ClassId cls, std::size_t max_packets) {
  sched_.set_queue_limit(cls, max_packets);
  maybe_crash(CrashPoint::kAfterApply);
  journal_append("qlim " + std::to_string(cls) + ' ' +
                 std::to_string(max_packets));
  maybe_crash(CrashPoint::kAfterJournalAppend);
}

void RuntimeHost::commit_batch(const std::vector<BatchOp>& ops) {
  Hfsc::Txn txn = sched_.begin();
  for (const BatchOp& op : ops) {
    switch (op.kind) {
      case BatchOp::Kind::kAdd:
        txn.add_class(op.parent, op.cfg);
        break;
      case BatchOp::Kind::kChange:
        txn.change_class(op.now, op.cls, op.cfg);
        break;
      case BatchOp::Kind::kDelete:
        txn.delete_class(op.cls);
        break;
      case BatchOp::Kind::kQueueLimit:
        txn.set_queue_limit(op.cls, op.limit);
        break;
    }
  }
  txn.commit();  // throws without journaling on a failed batch
  maybe_crash(CrashPoint::kAfterApply);
  std::ostringstream p;
  p << "txn " << ops.size() << '\n';
  for (const BatchOp& op : ops) {
    switch (op.kind) {
      case BatchOp::Kind::kAdd:
        p << "add " << op.parent << ' ';
        put_cfg(p, op.cfg);
        break;
      case BatchOp::Kind::kChange:
        p << "chg " << op.now << ' ' << op.cls << ' ';
        put_cfg(p, op.cfg);
        break;
      case BatchOp::Kind::kDelete:
        p << "del " << op.cls;
        break;
      case BatchOp::Kind::kQueueLimit:
        p << "qlim " << op.cls << ' ' << op.limit;
        break;
    }
    p << '\n';
  }
  journal_append(p.str());
  maybe_crash(CrashPoint::kAfterJournalAppend);
}

// --- Data path ---------------------------------------------------------------

bool RuntimeHost::rt_leaf(ClassId cls) const {
  return cls != kRootClass && cls < sched_.num_classes() &&
         !sched_.is_deleted(cls) && sched_.is_leaf(cls) &&
         !sched_.config_of(cls).rt.is_zero();
}

void RuntimeHost::enqueue(TimeNs now, Packet pkt) {
  sched_.enqueue(now, pkt);
  if (!opts_.governor_enabled) return;
  if (gov_.level() >= 1 && pkt.cls != kRootClass &&
      pkt.cls < sched_.num_classes() &&
      gov_.should_push_out(sched_.queued_bytes(pkt.cls), rt_leaf(pkt.cls))) {
    // Early drop: push the arrival straight back out of the tail rather
    // than letting the class ride to its queue-limit cliff.
    if (sched_.drop_tail(pkt.cls)) gov_.count_push_out();
  }
  maybe_sample(now);
}

std::optional<Packet> RuntimeHost::dequeue(TimeNs now) {
  std::optional<Packet> p = sched_.dequeue(now);
  // Sampling on the dequeue path too lets the ladder decay while the
  // backlog drains with no fresh arrivals.
  if (opts_.governor_enabled) maybe_sample(now);
  return p;
}

std::size_t RuntimeHost::dequeue_batch(TimeNs now, std::size_t max_pkts,
                                       std::vector<Packet>& out) {
  std::size_t served = 0;
  while (served < max_pkts) {
    if (opts_.governor_enabled && now >= next_sample_) {
      // A sample is due: its plan may mutate the scheduler, so serve one
      // packet and sample, exactly like the single-dequeue path.  With a
      // positive sample interval this runs at most once per batch.
      std::optional<Packet> p = dequeue(now);
      if (!p) break;
      out.push_back(*p);
      ++served;
      continue;
    }
    // No sample can fire before `now` moves, so the per-packet
    // maybe_sample calls the single path would make are all no-ops and
    // the core batch is state-identical to the remaining singles.
    const std::size_t got = sched_.dequeue_batch(now, max_pkts - served, out);
    served += got;
    break;  // the core stops only at max_pkts or an empty/idle scheduler
  }
  return served;
}

std::uint64_t RuntimeHost::total_drops() const {
  std::uint64_t n = 0;
  for (ClassId c = 1; c < sched_.num_classes(); ++c) {
    n += sched_.packets_dropped(c);
  }
  return n;
}

void RuntimeHost::maybe_sample(TimeNs now) {
  if (replaying_ || now < next_sample_) return;
  next_sample_ = now + opts_.sample_interval;
  GovSignals sig;
  sig.backlog_bytes = sched_.backlog_bytes();
  sig.drops = total_drops();
  sig.starved_leaves = sched_.starvation_horizon() > 0
                           ? sched_.starved_classes(now).size()
                           : 0;
  const int prev_level = gov_.level();
  const GovActions actions = gov_.sample(sig, now, sched_);
  // Any level movement is durable governor state, so it is journaled
  // even when the plan carries no mutations.
  if (!actions.empty() || gov_.level() != prev_level) execute(actions, now);
}

bool RuntimeHost::retune_admission(RateBps rate) {
  if (rate == 0 || !sched_.admission_enabled()) return false;
  // Pre-check against a probe so enable_admission_control can never
  // throw (it would leave admission DISABLED on an infeasible
  // hierarchy, which is the opposite of tightening).
  AdmissionControl probe(rate);
  for (ClassId c = 1; c < sched_.num_classes(); ++c) {
    if (sched_.is_deleted(c) || !sched_.is_leaf(c)) continue;
    const ServiceCurve& rt = sched_.config_of(c).rt;
    if (rt.is_zero()) continue;
    if (!probe.admit(rt)) return false;
  }
  sched_.enable_admission_control(rate);
  return true;
}

void RuntimeHost::execute(const GovActions& actions, TimeNs now) {
  std::vector<std::string> mutations;
  auto governable = [&](ClassId cls) {
    return cls != kRootClass && cls < sched_.num_classes() &&
           !sched_.is_deleted(cls) && sched_.is_leaf(cls) &&
           sched_.config_of(cls).rt.is_zero();
  };

  for (const ClassId cls : actions.clamp) {
    if (!governable(cls)) continue;  // the rt invariant, enforced twice
    const ClassConfig original = sched_.config_of(cls);
    ClassConfig clamped = original;
    const double f = opts_.governor.clamp_fraction;
    clamped.ls.m1 = std::max<RateBps>(
        1, static_cast<RateBps>(static_cast<double>(original.ls.m1) * f));
    clamped.ls.m2 = std::max<RateBps>(
        1, static_cast<RateBps>(static_cast<double>(original.ls.m2) * f));
    sched_.change_class(now, cls, clamped);
    gov_.note_clamped(cls, original);
    std::ostringstream m;
    m << "chg " << now << ' ' << cls << ' ';
    put_cfg(m, clamped);
    mutations.push_back(m.str());
  }
  for (const ClassId cls : actions.unclamp) {
    const ClassConfig original = gov_.saved_config(cls);
    if (governable(cls)) {
      sched_.change_class(now, cls, original);
      std::ostringstream m;
      m << "chg " << now << ' ' << cls << ' ';
      put_cfg(m, original);
      mutations.push_back(m.str());
    }
    gov_.forget_clamp(cls);
  }
  for (const ClassId cls : actions.quarantine) {
    if (!governable(cls)) continue;
    const std::size_t saved = sched_.queue_limit_of(cls);
    const std::size_t qlim = opts_.governor.quarantine_qlimit;
    sched_.set_queue_limit(cls, qlim);
    gov_.note_quarantined(cls, saved);
    mutations.push_back("qlim " + std::to_string(cls) + ' ' +
                        std::to_string(qlim));
  }
  for (const ClassId cls : actions.release) {
    const std::size_t saved = gov_.saved_qlimit(cls);
    if (governable(cls)) {
      sched_.set_queue_limit(cls, saved);
      mutations.push_back("qlim " + std::to_string(cls) + ' ' +
                          std::to_string(saved));
    }
    gov_.forget_quarantine(cls);
  }
  if (actions.tighten_admission && retune_admission(tightened_rate())) {
    gov_.note_admission(true);
    mutations.push_back("adm " + std::to_string(tightened_rate()));
  }
  if (actions.restore_admission && retune_admission(opts_.admission_rate)) {
    gov_.note_admission(false);
    mutations.push_back("adm " + std::to_string(opts_.admission_rate));
  }

  // The whole intervention — mutations plus the governor state they
  // produced — is one atomic journal record: a crash can lose it
  // entirely (the governor re-detects after recovery) but can never
  // leave a clamp without the saved original needed to undo it.
  maybe_crash(CrashPoint::kAfterApply);
  std::ostringstream p;
  p << "gov " << mutations.size() << '\n';
  for (const std::string& m : mutations) p << m << '\n';
  p << gov_.serialize();
  journal_append(p.str());
  maybe_crash(CrashPoint::kAfterJournalAppend);
}

// --- Persistence -------------------------------------------------------------

void RuntimeHost::journal_append(const std::string& payload) {
  journal_.append(payload);
  // An armed tear models a crash DURING this append: the write is
  // chopped and the sync below never happens, so the record is outside
  // the durable prefix whatever the policy.
  if (tear_bytes_ > 0) {
    const std::size_t n = tear_bytes_;
    tear_bytes_ = 0;
    journal_.tear_tail(n);
    throw CrashSignal{CrashPoint::kAfterJournalAppend};
  }
  if (opts_.sync_policy == SyncPolicy::kOnCommit) journal_.sync();
}

void RuntimeHost::save_checkpoint() {
  maybe_crash(CrashPoint::kBeforeCheckpoint);
  // A snapshot must never reference journal state weaker than itself:
  // flush the WAL before writing the checkpoint, whatever the policy.
  journal_.sync();
  std::ostringstream os;
  const std::string ext = "jseq " + std::to_string(journal_.last_seq()) +
                          '\n' + gov_.serialize();
  checkpoint(sched_, os, ext);
  checkpoint_image_ = os.str();
  checkpoint_seq_ = journal_.last_seq();
  maybe_crash(CrashPoint::kAfterCheckpoint);
  journal_.compact(checkpoint_seq_);
  maybe_crash(CrashPoint::kAfterCompact);
}

void RuntimeHost::apply_record(const std::string& payload) {
  std::istringstream in(payload);
  std::string op;
  if (!(in >> op)) bad_record(payload);
  if (op == "add") {
    ClassId parent = 0;
    if (!(in >> parent)) bad_record(payload);
    sched_.add_class(parent, read_cfg(in, payload));
  } else if (op == "chg") {
    TimeNs now = 0;
    ClassId cls = 0;
    if (!(in >> now >> cls)) bad_record(payload);
    sched_.change_class(now, cls, read_cfg(in, payload));
  } else if (op == "del") {
    ClassId cls = 0;
    if (!(in >> cls)) bad_record(payload);
    sched_.delete_class(cls);
    gov_.forget_clamp(cls);
    gov_.forget_quarantine(cls);
  } else if (op == "qlim") {
    ClassId cls = 0;
    std::size_t limit = 0;
    if (!(in >> cls >> limit)) bad_record(payload);
    sched_.set_queue_limit(cls, limit);
  } else if (op == "txn") {
    std::size_t n = 0;
    if (!(in >> n)) bad_record(payload);
    Hfsc::Txn txn = sched_.begin();
    for (std::size_t i = 0; i < n; ++i) {
      std::string sub;
      if (!(in >> sub)) bad_record(payload);
      if (sub == "add") {
        ClassId parent = 0;
        if (!(in >> parent)) bad_record(payload);
        txn.add_class(parent, read_cfg(in, payload));
      } else if (sub == "chg") {
        TimeNs now = 0;
        ClassId cls = 0;
        if (!(in >> now >> cls)) bad_record(payload);
        txn.change_class(now, cls, read_cfg(in, payload));
      } else if (sub == "del") {
        ClassId cls = 0;
        if (!(in >> cls)) bad_record(payload);
        txn.delete_class(cls);
      } else if (sub == "qlim") {
        ClassId cls = 0;
        std::size_t limit = 0;
        if (!(in >> cls >> limit)) bad_record(payload);
        txn.set_queue_limit(cls, limit);
      } else {
        bad_record(payload);
      }
    }
    txn.commit();
  } else if (op == "gov") {
    std::size_t n = 0;
    if (!(in >> n)) bad_record(payload);
    for (std::size_t i = 0; i < n; ++i) {
      std::string sub;
      if (!(in >> sub)) bad_record(payload);
      if (sub == "chg") {
        TimeNs now = 0;
        ClassId cls = 0;
        if (!(in >> now >> cls)) bad_record(payload);
        sched_.change_class(now, cls, read_cfg(in, payload));
      } else if (sub == "qlim") {
        ClassId cls = 0;
        std::size_t limit = 0;
        if (!(in >> cls >> limit)) bad_record(payload);
        sched_.set_queue_limit(cls, limit);
      } else if (sub == "adm") {
        RateBps rate = 0;
        if (!(in >> rate)) bad_record(payload);
        sched_.enable_admission_control(rate);
      } else {
        bad_record(payload);
      }
    }
    const std::string blob{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
    gov_.restore(blob);
  } else {
    bad_record(payload);
  }
}

RuntimeHost RuntimeHost::recover(const RuntimeOptions& opts,
                                 const std::string& checkpoint_image,
                                 const std::string& journal_image) {
  Journal j = Journal::parse(journal_image);  // throws Error{kBadJournal}

  if (checkpoint_image.empty()) {
    // Never checkpointed: recovery is a full journal replay onto a
    // fresh scheduler built exactly like the original was.
    RuntimeHost h(opts);
    h.replaying_ = true;
    for (const JournalRecord& r : j.records_after(0)) {
      h.apply_record(r.payload);
    }
    h.replaying_ = false;
    h.journal_ = std::move(j);
    const AuditReport rep = h.audit_runtime();
    if (!rep.ok()) {
      throw Error(Errc::kInvariantViolation,
                  "recovered state fails the audit: " + rep.to_string());
    }
    return h;
  }

  std::istringstream in(checkpoint_image);
  std::string ext;
  Hfsc restored = restore_checkpoint(in, &ext);
  RuntimeHost h(opts, std::move(restored), RecoverTag{});

  std::istringstream ei(ext);
  std::string tok;
  std::uint64_t watermark = 0;
  if (!(ei >> tok >> watermark) || tok != "jseq") {
    throw Error(Errc::kBadCheckpoint,
                "runtime checkpoint ext is missing the journal watermark");
  }
  const std::string gov_blob{std::istreambuf_iterator<char>(ei),
                             std::istreambuf_iterator<char>()};
  h.gov_.restore(gov_blob);

  h.replaying_ = true;
  for (const JournalRecord& r : j.records_after(watermark)) {
    h.apply_record(r.payload);
  }
  h.replaying_ = false;
  h.journal_ = std::move(j);
  h.checkpoint_image_ = checkpoint_image;
  h.checkpoint_seq_ = watermark;

  const AuditReport rep = h.audit_runtime();
  if (!rep.ok()) {
    throw Error(Errc::kInvariantViolation,
                "recovered state fails the audit: " + rep.to_string());
  }
  return h;
}

AuditReport RuntimeHost::audit_runtime() const {
  AuditReport r = audit(sched_);
  auto fail = [&](const std::string& what) {
    r.failures.push_back("governor: " + what);
  };
  auto governable = [&](ClassId cls) {
    return cls != kRootClass && cls < sched_.num_classes() &&
           !sched_.is_deleted(cls) && sched_.is_leaf(cls) &&
           sched_.config_of(cls).rt.is_zero();
  };
  for (const auto& [cls, saved] : gov_.clamped()) {
    (void)saved;
    if (!governable(cls)) {
      fail("clamped class " + std::to_string(cls) +
           " is not a live non-rt leaf");
    }
  }
  for (const auto& [cls, saved] : gov_.quarantined()) {
    (void)saved;
    if (!governable(cls)) {
      fail("quarantined class " + std::to_string(cls) +
           " is not a live non-rt leaf");
    }
  }
  if (gov_.level() < 2 &&
      (!gov_.clamped().empty() || !gov_.quarantined().empty())) {
    fail("clamps or quarantines outlive degradation level 2");
  }
  if (opts_.admission_rate > 0 && sched_.admission_enabled()) {
    const RateBps want =
        gov_.admission_tightened() ? tightened_rate() : opts_.admission_rate;
    if (sched_.admission_control()->link_rate() != want) {
      fail("admission link rate disagrees with the governor's headroom "
           "state");
    }
  }
  return r;
}

}  // namespace hfsc
