// ShardedRuntime: N supervised shards behind one enqueue front door
// (docs/ROBUSTNESS.md Section 12).
//
// The runtime partitions a HierarchySpec across N Shards — each a full
// Hfsc + Journal + OverloadGovernor with its own worker thread — and
// routes enqueues by global class id through each shard's lock-free
// MPSC ring.  The partition unit is the top-level subtree: a class
// belongs to the shard of its top-level ancestor, which is pinned by
// the spec's explicit `shard` attribute or hashed from the ancestor's
// name.  Cross-subtree link-sharing obviously cannot span shards; what
// a shard guarantees is exactly what its own hierarchy guarantees at
// its own (per-shard) link rate.
//
// The Supervisor thread drives the per-shard fault-isolation state
// machine:
//
//     kRunning --missed heartbeats--> kSuspect --more--> restart
//     kRunning --dead flag (crash)------------------------> restart
//     restart = kQuarantined (divert producers to the bounded spill
//               buffer, join the worker, drain its ring into the
//               spill) -> recover twice from (checkpoint image,
//               durable journal image), compare digests -> reconcile
//               the crash-loss residual -> re-inject the spill ->
//               kRunning (fresh worker)
//     recovery itself throwing --> kFailed (terminal; the harness
//               asserts it never happens)
//
// A stalled-but-alive shard is treated like a wedged process: it is
// killed and restarted from its persisted state, and whatever its
// in-memory host had not persisted is charged to crash_lost — the
// accounting makes watchdog kills honest instead of pretending a hung
// shard lost nothing.
//
// Conservation identity (checked by sim/chaos_sharded.cpp, exact at
// any quiesced moment, summed over shards):
//
//     presented == sent + dropped + rejected + backlog + spilled
//
// where dropped includes crash_lost (a crash is a drop, not an
// accounting hole), rejected = host data-path rejections + ring
// backpressure + spill overflow, and backlog = host backlog + in-ring.
// The per-shard residual is reconciled at each restart as
// popped + injected − (recovered host's sent+dropped+rejected+backlog),
// which must never be negative: a crash never invents packets.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "config/hierarchy_spec.hpp"
#include "runtime/shard.hpp"

namespace hfsc {

enum class ShardPhase { kRunning, kSuspect, kQuarantined, kFailed };

const char* to_string(ShardPhase p) noexcept;

struct SupervisorEvent {
  enum class Kind {
    kStallSuspected,
    kStallConfirmed,
    kCrashDetected,
    kQuarantined,
    kRecovered,
    kRestarted,
    kRecoveryFailed,
    kSupervisorStarted,
    kSupervisorStopped,
  };
  Kind kind{};
  int shard = -1;
  ShardDeathPoint death = ShardDeathPoint::kNone;
  std::uint64_t spilled = 0;     // ring entries drained at quarantine
  std::uint64_t crash_lost = 0;  // cumulative residual after reconcile
  bool digest_match = false;     // double-recovery determinism probe
  std::string detail;
};

const char* to_string(SupervisorEvent::Kind k) noexcept;

struct ShardedOptions {
  int shards = 1;
  ShardConfig shard{};  // per-shard template (link rate is per shard)
  std::size_t spill_capacity = 4096;
  // Supervisor cadence.  The stall thresholds are deliberately generous
  // (whole milliseconds of silence) so OS scheduling jitter on a small
  // machine can never masquerade as a wedged worker: a descheduled
  // worker beats again the moment it runs, resetting the miss counter.
  std::chrono::microseconds poll_every{1000};
  int suspect_after_polls = 25;
  int restart_after_polls = 100;
  bool run_supervisor = true;
};

class ShardedRuntime {
 public:
  ShardedRuntime(const ShardedOptions& opts, const HierarchySpec& spec);
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  // Shard index per spec class (declaration order), resolved from the
  // top-level ancestor's explicit `shard` pin or name hash.  Throws
  // Error{kInvalidArgument} on an out-of-range or non-top-level pin.
  static std::vector<int> partition(const HierarchySpec& spec, int shards);

  // --- Lifecycle -------------------------------------------------------------
  void start();  // worker threads, plus the supervisor per options
  void stop();   // supervisor first, then the workers; idempotent

  void start_supervisor();
  void stop_supervisor();
  bool supervisor_running() const noexcept {
    return supervisor_.joinable();
  }

  // --- Topology --------------------------------------------------------------
  int num_shards() const noexcept { return static_cast<int>(shards_.size()); }
  Shard& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }
  // Global ids are 1 + the class's index in spec declaration order.
  ClassId global_id(const std::string& name) const;
  int shard_of(ClassId global) const;
  ClassId local_id(ClassId global) const;
  ShardPhase phase(int i) const noexcept {
    return phase_[static_cast<std::size_t>(i)]->load(
        std::memory_order_acquire);
  }

  // --- Data path (any thread) ------------------------------------------------
  // Routes by pkt.cls (GLOBAL id) to the owning shard's ring, or to the
  // spill buffer while that shard is quarantined.  False = backpressure
  // (ring or spill full) or an unroutable class id.
  bool enqueue(TimeNs now, Packet pkt);

  // Conservative time gate: one frontier slot per producer thread,
  // registered before start(); publish_frontier(p, t) promises that
  // producer p will never again push a stamp < t.
  int register_producer();
  void publish_frontier(int producer, TimeNs t);

  // --- Accounting ------------------------------------------------------------
  struct Totals {
    std::uint64_t presented = 0;
    std::uint64_t sent = 0;
    std::uint64_t dropped = 0;     // host drops + spill overflow at drain
    std::uint64_t crash_lost = 0;  // reported inside `dropped` as well
    std::uint64_t rejected = 0;    // host taxonomy + ring + spill full
    std::uint64_t backlog = 0;     // host backlog + in-ring
    std::uint64_t spilled = 0;     // sitting in the spill buffer
    std::uint64_t restarts = 0;
    TimeNs max_rt_delay = 0;

    bool conserved() const noexcept {
      return presented == sent + dropped + rejected + backlog + spilled;
    }
    std::string to_string() const;
  };
  // Exact when no producer is mid-push: pauses every live worker,
  // reads, resumes.  Excludes supervisor restarts for the duration.
  Totals quiesce_totals();
  Totals shard_quiesce_totals(int i);

  // Runs the runtime audit on every (non-failed) shard while paused;
  // returns true when all pass, else fills `why`.
  bool audit_all(std::string* why);

  std::vector<SupervisorEvent> drain_events();

 private:
  struct PerShard {
    std::atomic<bool> diverted{false};
    std::atomic<std::uint64_t> presented{0};
    std::atomic<std::uint64_t> ring_rejected{0};
    std::atomic<std::uint64_t> spill_rejected{0};
    std::atomic<std::uint64_t> spill_dropped{0};  // overflow at drain
    std::mutex spill_mu;
    std::vector<ShardItem> spill;
  };

  void supervisor_loop();
  // Quarantine + join + drain + recover + reconcile + restart.  Caller
  // holds act_mu_.
  void restart_shard_locked(int i, ShardDeathPoint death);
  void push_event(SupervisorEvent ev);
  Totals read_totals_locked(int i);  // shard paused/joined by caller

  ShardedOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<PerShard>> per_shard_;
  std::vector<std::unique_ptr<std::atomic<ShardPhase>>> phase_;

  // Routing tables (immutable after construction).
  std::map<std::string, ClassId> name_to_global_;
  std::vector<int> shard_of_;       // by global id
  std::vector<ClassId> local_of_;   // by global id
  std::atomic<std::uint64_t> unroutable_{0};

  // Serializes supervisor actions against quiesce/audit readers.
  std::mutex act_mu_;

  std::thread supervisor_;
  std::atomic<bool> sup_stop_{false};

  std::mutex events_mu_;
  std::vector<SupervisorEvent> events_;

  bool started_ = false;
};

}  // namespace hfsc
