#include "runtime/supervisor.hpp"

#include <sstream>
#include <string_view>

namespace hfsc {

namespace {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char ch : bytes) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  return h;
}

// What the host accounts for: every packet it was ever handed is in
// exactly one of sent / dropped / rejected / backlog (PR 6's
// single-instance conservation identity).
std::uint64_t host_accounted(const Hfsc& h) {
  std::uint64_t a =
      h.backlog_packets() + h.data_path_counters().rejected_packets();
  for (ClassId c = 1; c < h.num_classes(); ++c) {
    a += h.packets_sent(c) + h.packets_dropped(c);
  }
  return a;
}

}  // namespace

const char* to_string(ShardPhase p) noexcept {
  switch (p) {
    case ShardPhase::kRunning: return "running";
    case ShardPhase::kSuspect: return "suspect";
    case ShardPhase::kQuarantined: return "quarantined";
    case ShardPhase::kFailed: return "failed";
  }
  return "?";
}

const char* to_string(SupervisorEvent::Kind k) noexcept {
  switch (k) {
    case SupervisorEvent::Kind::kStallSuspected: return "stall-suspected";
    case SupervisorEvent::Kind::kStallConfirmed: return "stall-confirmed";
    case SupervisorEvent::Kind::kCrashDetected: return "crash-detected";
    case SupervisorEvent::Kind::kQuarantined: return "quarantined";
    case SupervisorEvent::Kind::kRecovered: return "recovered";
    case SupervisorEvent::Kind::kRestarted: return "restarted";
    case SupervisorEvent::Kind::kRecoveryFailed: return "recovery-failed";
    case SupervisorEvent::Kind::kSupervisorStarted:
      return "supervisor-started";
    case SupervisorEvent::Kind::kSupervisorStopped:
      return "supervisor-stopped";
  }
  return "?";
}

std::vector<int> ShardedRuntime::partition(const HierarchySpec& spec,
                                           int shards) {
  if (shards < 1) {
    throw Error(Errc::kInvalidArgument, "shard count must be >= 1");
  }
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < spec.classes.size(); ++i) {
    index[spec.classes[i].name] = i;
  }
  std::vector<int> out(spec.classes.size(), 0);
  for (std::size_t i = 0; i < spec.classes.size(); ++i) {
    const auto& c = spec.classes[i];
    std::size_t a = i;  // top-level ancestor — the partition unit
    while (!HierarchySpec::ClassSpec::is_top_level(spec.classes[a].parent)) {
      a = index.at(spec.classes[a].parent);
    }
    if (c.shard >= 0 && a != i) {
      throw Error(Errc::kInvalidArgument,
                  "class '" + c.name +
                      "': shard pins are only allowed on top-level classes "
                      "(the subtree is the partition unit)");
    }
    const auto& top = spec.classes[a];
    if (top.shard >= 0) {
      if (top.shard >= shards) {
        throw Error(Errc::kInvalidArgument,
                    "class '" + top.name + "': shard pin " +
                        std::to_string(top.shard) + " out of range (" +
                        std::to_string(shards) + " shards)");
      }
      out[i] = top.shard;
    } else {
      out[i] = static_cast<int>(fnv1a64(top.name) %
                                static_cast<std::uint64_t>(shards));
    }
  }
  return out;
}

ShardedRuntime::ShardedRuntime(const ShardedOptions& opts,
                               const HierarchySpec& spec)
    : opts_(opts) {
  spec.validate();
  const std::vector<int> part = partition(spec, opts_.shards);
  for (int i = 0; i < opts_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, opts_.shard));
    per_shard_.push_back(std::make_unique<PerShard>());
    phase_.push_back(
        std::make_unique<std::atomic<ShardPhase>>(ShardPhase::kRunning));
  }
  // Build every shard's hierarchy through the journaled control plane,
  // so even a shard that dies before its first periodic checkpoint
  // recovers its construction from the journal.
  shard_of_.assign(spec.classes.size() + 1, -1);
  local_of_.assign(spec.classes.size() + 1, kRootClass);
  std::map<std::string, ClassId> local_ids;
  for (std::size_t i = 0; i < spec.classes.size(); ++i) {
    const auto& c = spec.classes[i];
    const int s = part[i];
    RuntimeHost& h = shards_[static_cast<std::size_t>(s)]->host();
    const ClassId parent = HierarchySpec::ClassSpec::is_top_level(c.parent)
                               ? kRootClass
                               : local_ids.at(c.parent);
    const ClassId local = h.add_class(parent, ClassConfig{c.rt, c.ls, c.ul});
    if (c.qlimit != 0) h.set_queue_limit(local, c.qlimit);
    local_ids[c.name] = local;
    const ClassId global = static_cast<ClassId>(i + 1);
    name_to_global_[c.name] = global;
    shard_of_[global] = s;
    local_of_[global] = local;
  }
  // A base snapshot per shard: restarts replay from here, not from an
  // empty scheduler.
  for (auto& s : shards_) s->host().save_checkpoint();
}

ShardedRuntime::~ShardedRuntime() { stop(); }

void ShardedRuntime::start() {
  if (started_) return;
  started_ = true;
  for (auto& s : shards_) s->start();
  if (opts_.run_supervisor) start_supervisor();
}

void ShardedRuntime::stop() {
  stop_supervisor();
  for (auto& s : shards_) s->stop_and_join();
  started_ = false;
}

void ShardedRuntime::start_supervisor() {
  if (supervisor_.joinable()) return;
  sup_stop_.store(false, std::memory_order_release);
  supervisor_ = std::thread(&ShardedRuntime::supervisor_loop, this);
  SupervisorEvent ev;
  ev.kind = SupervisorEvent::Kind::kSupervisorStarted;
  push_event(ev);
}

void ShardedRuntime::stop_supervisor() {
  if (!supervisor_.joinable()) return;
  sup_stop_.store(true, std::memory_order_release);
  supervisor_.join();
  SupervisorEvent ev;
  ev.kind = SupervisorEvent::Kind::kSupervisorStopped;
  push_event(ev);
}

ClassId ShardedRuntime::global_id(const std::string& name) const {
  auto it = name_to_global_.find(name);
  if (it == name_to_global_.end()) {
    throw Error(Errc::kInvalidClass, "unknown class '" + name + "'");
  }
  return it->second;
}

int ShardedRuntime::shard_of(ClassId global) const {
  if (global == 0 || global >= shard_of_.size()) return -1;
  return shard_of_[global];
}

ClassId ShardedRuntime::local_id(ClassId global) const {
  return local_of_[global];
}

bool ShardedRuntime::enqueue(TimeNs now, Packet pkt) {
  if (pkt.cls == 0 || pkt.cls >= shard_of_.size() || shard_of_[pkt.cls] < 0) {
    unroutable_.fetch_add(1, std::memory_order_acq_rel);
    return false;
  }
  const auto s = static_cast<std::size_t>(shard_of_[pkt.cls]);
  PerShard& ps = *per_shard_[s];
  ps.presented.fetch_add(1, std::memory_order_acq_rel);
  pkt.cls = local_of_[pkt.cls];
  if (ps.diverted.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(ps.spill_mu);
    // Re-check under the lock: restart_shard_locked clears the flag
    // inside this same mutex right before its final spill swap, so a
    // producer that raced the end of a restart falls through to the
    // ring instead of appending to a spill nobody will ever drain.
    if (ps.diverted.load(std::memory_order_acquire)) {
      if (ps.spill.size() >= opts_.spill_capacity) {
        ps.spill_rejected.fetch_add(1, std::memory_order_acq_rel);
        return false;
      }
      ps.spill.push_back(ShardItem{now, pkt});
      return true;
    }
  }
  if (shards_[s]->offer(ShardItem{now, pkt})) return true;
  ps.ring_rejected.fetch_add(1, std::memory_order_acq_rel);
  return false;
}

int ShardedRuntime::register_producer() {
  int idx = -1;
  for (auto& s : shards_) idx = s->register_producer();
  return idx;
}

void ShardedRuntime::publish_frontier(int producer, TimeNs t) {
  for (auto& s : shards_) s->publish_frontier(producer, t);
}

void ShardedRuntime::supervisor_loop() {
  const std::size_t n = shards_.size();
  std::vector<std::uint64_t> last(n, 0);
  std::vector<int> misses(n, 0);
  for (std::size_t i = 0; i < n; ++i) last[i] = shards_[i]->heartbeat();
  while (!sup_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(opts_.poll_every);
    std::lock_guard<std::mutex> lk(act_mu_);
    for (std::size_t i = 0; i < n; ++i) {
      Shard& s = *shards_[i];
      std::atomic<ShardPhase>& ph = *phase_[i];
      if (ph.load(std::memory_order_acquire) == ShardPhase::kFailed) continue;
      if (s.dead()) {
        SupervisorEvent ev;
        ev.kind = SupervisorEvent::Kind::kCrashDetected;
        ev.shard = static_cast<int>(i);
        ev.death = s.death_point();
        push_event(ev);
        restart_shard_locked(static_cast<int>(i), s.death_point());
        last[i] = s.heartbeat();
        misses[i] = 0;
        continue;
      }
      if (!s.worker_running()) continue;  // externally stopped
      const std::uint64_t b = s.heartbeat();
      if (b != last[i]) {
        last[i] = b;
        misses[i] = 0;
        if (ph.load(std::memory_order_acquire) == ShardPhase::kSuspect) {
          ph.store(ShardPhase::kRunning, std::memory_order_release);
        }
        continue;
      }
      ++misses[i];
      if (misses[i] == opts_.suspect_after_polls) {
        ph.store(ShardPhase::kSuspect, std::memory_order_release);
        SupervisorEvent ev;
        ev.kind = SupervisorEvent::Kind::kStallSuspected;
        ev.shard = static_cast<int>(i);
        push_event(ev);
      }
      if (misses[i] >= opts_.restart_after_polls) {
        SupervisorEvent ev;
        ev.kind = SupervisorEvent::Kind::kStallConfirmed;
        ev.shard = static_cast<int>(i);
        push_event(ev);
        restart_shard_locked(static_cast<int>(i), ShardDeathPoint::kNone);
        last[i] = s.heartbeat();
        misses[i] = 0;
      }
    }
  }
}

void ShardedRuntime::restart_shard_locked(int i, ShardDeathPoint death) {
  const auto idx = static_cast<std::size_t>(i);
  Shard& s = *shards_[idx];
  PerShard& ps = *per_shard_[idx];
  std::atomic<ShardPhase>& ph = *phase_[idx];

  ph.store(ShardPhase::kQuarantined, std::memory_order_release);
  ps.diverted.store(true, std::memory_order_release);
  s.stop_and_join();  // reaps a corpse, or breaks a stalled worker out

  // Drain the dead shard's ring into the bounded spill buffer.  The
  // join above transferred ring-consumer ownership to this thread.
  std::uint64_t drained = 0;
  {
    std::lock_guard<std::mutex> lk(ps.spill_mu);
    while (std::optional<ShardItem> item = s.ring().try_pop()) {
      if (ps.spill.size() >= opts_.spill_capacity) {
        // Accepted earlier, lost now: a drop, never a silent hole.
        ps.spill_dropped.fetch_add(1, std::memory_order_acq_rel);
      } else {
        ps.spill.push_back(*item);
      }
      ++drained;
    }
  }
  {
    SupervisorEvent ev;
    ev.kind = SupervisorEvent::Kind::kQuarantined;
    ev.shard = i;
    ev.death = death;
    ev.spilled = drained;
    push_event(ev);
  }

  // Crash-consistent recovery: only the persisted pair counts.  The
  // in-memory host is a corpse (kill) or a wedged process we just shot
  // (stall) — either way its unpersisted state is gone.
  const std::string cp = s.host().checkpoint_image();
  const std::string jr = s.host().durable_journal_image();
  // The residual baseline must be read BEFORE the host is replaced.
  const std::uint64_t seen = s.popped() + s.injected();
  bool digest_match = false;
  try {
    RuntimeHost r1 = RuntimeHost::recover(opts_.shard.runtime, cp, jr);
    RuntimeHost r2 = RuntimeHost::recover(opts_.shard.runtime, cp, jr);
    digest_match = r1.digest() == r2.digest();
    s.replace_host(std::move(r1));
  } catch (const Error& e) {
    ph.store(ShardPhase::kFailed, std::memory_order_release);
    SupervisorEvent ev;
    ev.kind = SupervisorEvent::Kind::kRecoveryFailed;
    ev.shard = i;
    ev.detail = e.what();
    push_event(ev);
    return;  // diverted stays set: producers keep spilling, bounded
  }

  // Reconcile the crash-loss residual: everything ever handed to a
  // host of this shard, minus what the recovered host accounts for.
  const std::uint64_t accounted = host_accounted(s.host().sched());
  if (seen < accounted || seen - accounted < s.crash_lost()) {
    ph.store(ShardPhase::kFailed, std::memory_order_release);
    SupervisorEvent ev;
    ev.kind = SupervisorEvent::Kind::kRecoveryFailed;
    ev.shard = i;
    ev.detail = "conservation residual went negative: a recovery invented "
                "packets";
    push_event(ev);
    return;
  }
  s.set_crash_lost(seen - accounted);
  {
    SupervisorEvent ev;
    ev.kind = SupervisorEvent::Kind::kRecovered;
    ev.shard = i;
    ev.death = death;
    ev.crash_lost = seen - accounted;
    ev.digest_match = digest_match;
    push_event(ev);
  }

  // Re-inject the spill straight into the recovered host (we are its
  // only user until start()), snapshot, and bring the shard back.
  // The divert flag is cleared INSIDE the spill mutex, atomically with
  // the final swap: a producer that saw it set re-checks under the
  // same lock (enqueue()), so nothing can land in the spill after this
  // swap — the last orphaned-packet window is closed.
  std::vector<ShardItem> spill;
  {
    std::lock_guard<std::mutex> lk(ps.spill_mu);
    ps.diverted.store(false, std::memory_order_release);
    spill.swap(ps.spill);
  }
  for (const ShardItem& it : spill) {
    s.count_injected(1);
    s.host().enqueue(it.now, it.pkt);
  }
  s.host().save_checkpoint();
  s.clear_stall();
  s.count_restart();
  ph.store(ShardPhase::kRunning, std::memory_order_release);
  s.start();
  SupervisorEvent ev;
  ev.kind = SupervisorEvent::Kind::kRestarted;
  ev.shard = i;
  push_event(ev);
}

ShardedRuntime::Totals ShardedRuntime::read_totals_locked(int i) {
  const auto idx = static_cast<std::size_t>(i);
  Shard& s = *shards_[idx];
  PerShard& ps = *per_shard_[idx];
  const Hfsc& h = s.host().sched();
  Totals t;
  t.presented = ps.presented.load(std::memory_order_acquire);
  for (ClassId c = 1; c < h.num_classes(); ++c) {
    t.sent += h.packets_sent(c);
    t.dropped += h.packets_dropped(c);
  }
  t.crash_lost = s.crash_lost();
  t.dropped +=
      ps.spill_dropped.load(std::memory_order_acquire) + t.crash_lost;
  t.rejected = h.data_path_counters().rejected_packets() +
               ps.ring_rejected.load(std::memory_order_acquire) +
               ps.spill_rejected.load(std::memory_order_acquire);
  t.backlog = h.backlog_packets() + s.ring().size_approx();
  {
    std::lock_guard<std::mutex> lk(ps.spill_mu);
    t.spilled = ps.spill.size();
  }
  t.restarts = s.restarts();
  t.max_rt_delay = s.max_rt_delay();
  return t;
}

ShardedRuntime::Totals ShardedRuntime::quiesce_totals() {
  std::lock_guard<std::mutex> lk(act_mu_);
  Totals sum;
  for (auto& s : shards_) {
    if (s->worker_running()) s->pause();
  }
  for (int i = 0; i < num_shards(); ++i) {
    const Totals t = read_totals_locked(i);
    sum.presented += t.presented;
    sum.sent += t.sent;
    sum.dropped += t.dropped;
    sum.crash_lost += t.crash_lost;
    sum.rejected += t.rejected;
    sum.backlog += t.backlog;
    sum.spilled += t.spilled;
    sum.restarts += t.restarts;
    if (t.max_rt_delay > sum.max_rt_delay) sum.max_rt_delay = t.max_rt_delay;
  }
  for (auto& s : shards_) {
    if (s->worker_running()) s->resume();
  }
  return sum;
}

ShardedRuntime::Totals ShardedRuntime::shard_quiesce_totals(int i) {
  std::lock_guard<std::mutex> lk(act_mu_);
  Shard& s = *shards_[static_cast<std::size_t>(i)];
  if (s.worker_running()) s.pause();
  const Totals t = read_totals_locked(i);
  if (s.worker_running()) s.resume();
  return t;
}

bool ShardedRuntime::audit_all(std::string* why) {
  std::lock_guard<std::mutex> lk(act_mu_);
  for (auto& s : shards_) {
    if (s->worker_running()) s->pause();
  }
  bool ok = true;
  for (int i = 0; i < num_shards(); ++i) {
    if (phase(i) == ShardPhase::kFailed) {
      ok = false;
      if (why) *why = "shard " + std::to_string(i) + " is failed";
      break;
    }
    const AuditReport rep =
        shards_[static_cast<std::size_t>(i)]->host().audit_runtime();
    if (!rep.ok()) {
      ok = false;
      if (why) {
        *why = "shard " + std::to_string(i) + ": " + rep.to_string();
      }
      break;
    }
  }
  for (auto& s : shards_) {
    if (s->worker_running()) s->resume();
  }
  return ok;
}

std::vector<SupervisorEvent> ShardedRuntime::drain_events() {
  std::lock_guard<std::mutex> lk(events_mu_);
  std::vector<SupervisorEvent> out;
  out.swap(events_);
  return out;
}

void ShardedRuntime::push_event(SupervisorEvent ev) {
  std::lock_guard<std::mutex> lk(events_mu_);
  events_.push_back(std::move(ev));
}

std::string ShardedRuntime::Totals::to_string() const {
  std::ostringstream os;
  os << "presented=" << presented << " sent=" << sent
     << " dropped=" << dropped << " (crash_lost=" << crash_lost << ")"
     << " rejected=" << rejected << " backlog=" << backlog
     << " spilled=" << spilled << " restarts=" << restarts
     << " max_rt_delay_us=" << max_rt_delay / 1000
     << (conserved() ? " [conserved]" : " [NOT CONSERVED]");
  return os.str();
}

}  // namespace hfsc
