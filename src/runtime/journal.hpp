// Write-ahead operation journal (docs/ROBUSTNESS.md Section 10).
//
// The runtime host (runtime/host.hpp) appends one record per successful
// control-plane mutation — apply-then-journal, so the journal only ever
// describes operations the live scheduler actually accepted, and replay
// is deterministic (a recovered backlog can only be smaller than the one
// the operation originally validated against, so no validation that
// passed live can newly fail on replay).  Recovery is: restore the last
// checkpoint, then replay every surviving record with a sequence number
// past the checkpoint's watermark.
//
// The serialized image is binary: an 8-byte magic + 4-byte version
// header, then length-prefixed records
//
//     u32 payload_len | u64 seq | u64 fnv1a64(payload) | payload bytes
//
// in host byte order (the image never travels between machines; it
// round-trips within one process or one filesystem).  Sequence numbers
// are strictly increasing; compact() drops the prefix already covered by
// a checkpoint.
//
// Failure policy (the robustness contract): a torn or bit-flipped TAIL —
// the only corruption a crashed append can produce — is detected by the
// length/checksum/sequence scan and silently truncated; parse() reports
// how many bytes were dropped.  Corruption that cannot come from a torn
// append (bad magic, unknown version) means the caller handed us
// something that was never this journal, and raises Error{kBadJournal} —
// never a crash, never a partial object.
//
// Durability (the fsync boundary): append() only extends the in-memory
// image — on a real filesystem nothing is guaranteed on disk until an
// fsync returns.  sync() models that call: it advances the durable
// watermark to the current image size, and durable_image() is the
// prefix a crash is guaranteed to leave behind (plus, possibly, an
// arbitrary prefix of the unsynced tail, which the parse() scan
// truncates).  SyncPolicy says who calls sync(): kNone never does (a
// crash can lose every record since the last checkpoint — deliberately
// observable), kOnCommit syncs after every completed append (a crash
// loses at most the append that was still in flight).  The RuntimeHost
// always syncs as part of save_checkpoint(), whatever the policy: a
// checkpoint that references journal state weaker than itself would be
// unrecoverable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/errors.hpp"

namespace hfsc {

struct JournalRecord {
  std::uint64_t seq = 0;
  std::string payload;
};

// Who is responsible for calling Journal::sync() (RuntimeOptions).
enum class SyncPolicy {
  kNone,      // never flushed; a crash keeps only checkpoint-synced bytes
  kOnCommit,  // synced after every completed append
};

const char* to_string(SyncPolicy p) noexcept;

class Journal {
 public:
  // Fresh, empty journal (image = header only).
  Journal();

  // Parses a serialized image.  Throws Error{kBadJournal} on a bad magic
  // or version; a torn/corrupt tail is truncated, not fatal (the byte
  // count is available as truncated_bytes()).
  static Journal parse(std::string_view image);

  // Appends one record; returns its sequence number.  O(1) amortized —
  // the serialized image is maintained incrementally.
  std::uint64_t append(std::string_view payload);

  // Drops every record with seq <= up_to (they are covered by a
  // checkpoint); rewrites the image.
  void compact(std::uint64_t up_to);

  // Records with seq > after, oldest first.
  std::vector<JournalRecord> records_after(std::uint64_t after) const;

  // Chaos-harness hook: simulates a torn write by chopping up to `n`
  // bytes off the image's tail, clamped to the newest record so earlier
  // records stay intact.  The newest record is dropped from the record
  // list — exactly what parse() of the torn image will reconstruct.
  // Bytes a completed sync() promised are never torn: a tear stops at
  // the durable watermark.
  void tear_tail(std::size_t n);

  // Marks everything appended so far as durable (the fsync returned).
  void sync() noexcept { synced_bytes_ = image_.size(); }
  std::size_t synced_bytes() const noexcept { return synced_bytes_; }
  // The image prefix a crash is guaranteed to preserve.  Recovery from
  // this view is the honest simulation of a machine crash; recovery
  // from image() additionally assumes the OS wrote the (unsynced) tail.
  std::string_view durable_image() const noexcept {
    return std::string_view(image_).substr(0, synced_bytes_);
  }

  const std::string& image() const noexcept { return image_; }
  std::size_t num_records() const noexcept { return records_.size(); }
  // Sequence number of the newest record (0 = none yet).
  std::uint64_t last_seq() const noexcept { return next_seq_ - 1; }
  // Bytes dropped from a torn tail by parse() (0 for a clean image).
  std::size_t truncated_bytes() const noexcept { return truncated_bytes_; }

  static constexpr char kMagic[8] = {'H', 'F', 'S', 'C',
                                     'J', 'R', 'N', 'L'};
  static constexpr std::uint32_t kVersion = 1;
  // magic + version.
  static constexpr std::size_t kHeaderBytes = sizeof(kMagic) + 4;
  // payload_len + seq + checksum.
  static constexpr std::size_t kRecordOverhead = 4 + 8 + 8;

 private:
  std::vector<JournalRecord> records_;
  std::string image_;
  std::uint64_t next_seq_ = 1;
  std::size_t truncated_bytes_ = 0;
  // Durable watermark.  A fresh journal's header counts as synced (the
  // file exists); parse() marks the whole surviving image synced (it
  // was read back, so it is on "disk" by construction).  compact()
  // models the rewrite-and-rename idiom and leaves the new image fully
  // synced.
  std::size_t synced_bytes_ = 0;
};

}  // namespace hfsc
