// RuntimeHost: the overload-resilient runtime around a single Hfsc
// (docs/ROBUSTNESS.md Sections 9–11).
//
// The host composes the three resilience pieces into one object:
//
//   * every successful control-plane mutation — direct or a whole
//     Txn batch — is appended to the write-ahead Journal
//     (apply-then-journal, see runtime/journal.hpp), so the pair
//     (checkpoint image, journal image) is always enough to rebuild the
//     scheduler: recover() = restore the checkpoint, replay the
//     surviving records past its watermark, verify by audit;
//   * the OverloadGovernor (runtime/governor.hpp) is sampled on the
//     data path at a bounded cadence; the actions it plans are executed
//     here and journaled atomically as one `gov` record (mutations +
//     post-action governor state), so governor interventions are
//     crash-recoverable exactly like user mutations;
//   * crash points (arm_crash / tear_next_append) let the chaos harness
//     (sim/chaos.hpp) kill the host at every persistence boundary and
//     prove recovery is digest-identical.
//
// Snapshots use checkpoint format v2: the core state plus an ext blob
// holding the journal watermark and the governor's durable state, so a
// runtime snapshot is still a plain core checkpoint to core tools.
//
// The data path keeps the core's never-throws contract; CrashSignal is
// the one deliberate exception type and only fires when the harness has
// armed it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/auditor.hpp"
#include "core/checkpoint.hpp"
#include "core/hfsc.hpp"
#include "runtime/governor.hpp"
#include "runtime/journal.hpp"

namespace hfsc {

// Where a simulated crash can be injected.  Together these cover every
// ordering of (apply, journal append, checkpoint write, compaction) a
// real crash could interleave with.
enum class CrashPoint {
  kNone,
  kAfterApply,          // mutation applied, record not yet journaled
  kAfterJournalAppend,  // record journaled (the op is durable)
  kBeforeCheckpoint,    // snapshot requested, nothing written yet
  kAfterCheckpoint,     // snapshot written, journal not yet compacted
  kAfterCompact,        // snapshot written and journal compacted
};

inline constexpr CrashPoint kAllCrashPoints[] = {
    CrashPoint::kAfterApply,      CrashPoint::kAfterJournalAppend,
    CrashPoint::kBeforeCheckpoint, CrashPoint::kAfterCheckpoint,
    CrashPoint::kAfterCompact,
};

const char* to_string(CrashPoint p) noexcept;

// Thrown when an armed crash point is reached.  Deliberately NOT an
// hfsc::Error: a simulated power cut is not part of the error taxonomy,
// and nothing below the harness should ever catch it by accident.
struct CrashSignal {
  CrashPoint point = CrashPoint::kNone;
};

struct RuntimeOptions {
  RateBps link_rate = 0;
  EligibleSetKind es_kind = EligibleSetKind::kDualHeap;
  SystemVtPolicy vt_policy = SystemVtPolicy::kMidpoint;
  bool governor_enabled = true;
  GovernorConfig governor{};
  // 0 = admission control off.  This is the governor's "base" rate; at
  // level 3 it is tightened to base * governor.headroom.
  RateBps admission_rate = 0;
  TimeNs watchdog_horizon = 0;  // 0 = watchdog off
  TimeNs sample_interval = msec(1);
  // Journal durability (runtime/journal.hpp).  kOnCommit bounds a
  // crash's journal loss to the one append in flight; kNone leaves the
  // whole post-checkpoint tail at the mercy of the "OS" and exists to
  // make that gap observable in tests.
  SyncPolicy sync_policy = SyncPolicy::kOnCommit;
};

class RuntimeHost {
 public:
  explicit RuntimeHost(const RuntimeOptions& opts);

  // --- Journaled control plane ---------------------------------------------
  // Same contracts as the Hfsc mutators; on success the operation is
  // additionally appended to the journal.
  ClassId add_class(ClassId parent, ClassConfig cfg);
  void change_class(TimeNs now, ClassId cls, ClassConfig cfg);
  void delete_class(ClassId cls);
  void set_queue_limit(ClassId cls, std::size_t max_packets);

  struct BatchOp {
    enum class Kind { kAdd, kChange, kDelete, kQueueLimit };
    Kind kind = Kind::kAdd;
    ClassId parent = kRootClass;  // kAdd
    ClassId cls = kRootClass;     // others (kAdd ignores it)
    ClassConfig cfg{};            // kAdd / kChange
    TimeNs now = 0;               // kChange
    std::size_t limit = 0;        // kQueueLimit
  };
  // Applies the batch atomically through Hfsc::Txn and journals it as
  // one record; throws without journaling if the commit fails.
  void commit_batch(const std::vector<BatchOp>& ops);

  // --- Data path -----------------------------------------------------------
  // Wraps the scheduler's data path with the governor's enqueue hook
  // (level >= 1 push-out on non-rt leaves) and its bounded-cadence
  // sampling.  Inherits the core's never-throws contract.
  void enqueue(TimeNs now, Packet pkt);
  std::optional<Packet> dequeue(TimeNs now);
  // Batched drain: appends up to max_pkts packets to `out` and returns
  // how many were served.  Produces exactly the state k single dequeue()
  // calls at the same `now` would — when the governor is due to sample
  // it falls back to the per-packet cadence so interventions land
  // between the same two packets.
  std::size_t dequeue_batch(TimeNs now, std::size_t max_pkts,
                            std::vector<Packet>& out);

  // --- Persistence ---------------------------------------------------------
  // Writes a format-v2 snapshot into checkpoint_image() and compacts
  // the journal up to the snapshot's watermark.
  void save_checkpoint();
  const std::string& checkpoint_image() const noexcept {
    return checkpoint_image_;
  }
  const std::string& journal_image() const noexcept {
    return journal_.image();
  }
  // The journal prefix a crash is guaranteed to preserve under the
  // host's SyncPolicy — what honest crash recovery must be fed.
  std::string durable_journal_image() const {
    return std::string(journal_.durable_image());
  }
  const Journal& journal() const noexcept { return journal_; }

  // Rebuilds a host from the persisted pair.  An empty checkpoint image
  // means "never checkpointed": recovery starts from a fresh scheduler
  // built from `opts`.  Throws Error{kBadCheckpoint} / {kBadJournal} on
  // corrupt inputs (torn journal tails are truncated, not fatal) and
  // Error{kInvariantViolation} if the replayed state fails the audit.
  static RuntimeHost recover(const RuntimeOptions& opts,
                             const std::string& checkpoint_image,
                             const std::string& journal_image);

  // --- Observability and chaos hooks ---------------------------------------
  std::uint64_t digest() const { return state_digest(sched_); }
  // Core invariant audit plus the governor's own invariants (clamped /
  // quarantined sets are live non-rt leaves; admission headroom state
  // matches the governor's).
  AuditReport audit_runtime() const;

  // Arms a one-shot simulated crash at `p`; the next time the host
  // reaches that point it throws CrashSignal.
  void arm_crash(CrashPoint p) noexcept { armed_ = p; }
  // Arms a torn write: the next journal append is chopped `drop_bytes`
  // short (clamped to that record) and the host crashes immediately —
  // the only way a real torn tail comes to exist.
  void tear_next_append(std::size_t drop_bytes) noexcept {
    tear_bytes_ = drop_bytes;
  }

  Hfsc& sched() noexcept { return sched_; }
  const Hfsc& sched() const noexcept { return sched_; }
  OverloadGovernor& governor() noexcept { return gov_; }
  const OverloadGovernor& governor() const noexcept { return gov_; }
  int gov_level() const noexcept { return gov_.level(); }
  std::vector<GovEvent> drain_events() { return gov_.drain_events(); }
  const RuntimeOptions& options() const noexcept { return opts_; }

 private:
  struct RecoverTag {};
  RuntimeHost(const RuntimeOptions& opts, Hfsc&& restored, RecoverTag);

  void maybe_crash(CrashPoint p) {
    if (armed_ == p) {
      armed_ = CrashPoint::kNone;
      throw CrashSignal{p};
    }
  }
  // Appends `payload`; honors an armed tear (torn append + crash).
  void journal_append(const std::string& payload);
  // Runs the governor if the sampling interval elapsed.
  void maybe_sample(TimeNs now);
  // Executes a governor plan through direct scheduler mutations and
  // journals the whole intervention as one `gov` record.
  void execute(const GovActions& actions, TimeNs now);
  // Replays one journal payload onto the scheduler (recovery path).
  void apply_record(const std::string& payload);
  // True if `cls` is a live leaf carrying an rt curve.
  bool rt_leaf(ClassId cls) const;
  std::uint64_t total_drops() const;
  // Pre-checked admission switch (never leaves admission disabled).
  bool retune_admission(RateBps rate);
  RateBps tightened_rate() const noexcept {
    const double h = opts_.governor.headroom;
    return static_cast<RateBps>(static_cast<double>(opts_.admission_rate) * h);
  }

  RuntimeOptions opts_;
  Hfsc sched_;
  OverloadGovernor gov_;
  Journal journal_;
  std::string checkpoint_image_;
  std::uint64_t checkpoint_seq_ = 0;  // journal watermark in the snapshot
  TimeNs next_sample_ = 0;
  CrashPoint armed_ = CrashPoint::kNone;
  std::size_t tear_bytes_ = 0;
  bool replaying_ = false;
};

}  // namespace hfsc
