// Overload governor: a hysteresis-guarded degradation ladder
// (docs/ROBUSTNESS.md Section 9).
//
// The governor samples cheap signals the scheduler already maintains —
// aggregate backlog bytes, the per-class drop counters, the starvation
// watchdog's flagged set — and walks a four-level ladder:
//
//   level 0  normal operation, zero interference;
//   level 1  early drop: arrivals to a non-rt leaf whose queued bytes
//            exceed a per-class threshold are pushed out from the TAIL
//            (Hfsc::drop_tail) instead of blindly tail-dropping at the
//            queue-limit cliff — the head packet, whose length the
//            cached deadline was computed from, is never disturbed;
//   level 2  clamp: the link-sharing curves of flagged (persistently
//            over-threshold, non-rt) leaves are scaled down; offenders
//            that stay flagged for quarantine_after consecutive samples
//            are quarantined behind a tiny queue limit;
//   level 3  tighten admission: the admission-control headroom for NEW
//            rt flows shrinks to `headroom` of the link.
//
// Each level subsumes the ones below it, every transition and per-class
// action is emitted as a typed GovEvent, and everything is reversible:
// when load decays the ladder walks back down, clamps and quarantines
// are undone from the saved originals, and the admission headroom is
// restored.
//
// The hard invariant at EVERY level: admitted real-time guarantees are
// never degraded.  The governor never drops from, clamps, quarantines,
// or otherwise touches a leaf with an rt curve, and tightening admission
// affects only flows not yet admitted.
//
// Layering: the governor is pure policy.  It never mutates the scheduler
// itself — decide() returns a GovActions plan and the runtime host
// (runtime/host.hpp) executes it through the journaled mutator path, so
// every governor action is crash-recoverable like any other mutation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/hfsc.hpp"
#include "util/types.hpp"

namespace hfsc {

struct GovernorConfig {
  // Aggregate-backlog thresholds (bytes) for entering levels 1..3, and
  // the hysteresis exit thresholds for leaving them (exit < enter, so a
  // load hovering at a boundary does not flap the ladder).
  Bytes enter_backlog[3] = {512 * 1024, 2 * 1024 * 1024, 8 * 1024 * 1024};
  Bytes exit_backlog[3] = {256 * 1024, 1024 * 1024, 4 * 1024 * 1024};
  // Per-class queued-bytes threshold: above it a non-rt leaf is subject
  // to early drop (level >= 1); at half of it the leaf is flagged as an
  // offender at the clamping level (level >= 2) — the early drop pins a
  // flooder at or just below the full threshold, so the offender scan
  // must trigger beneath the cap.
  Bytes class_threshold = 128 * 1024;
  // Consecutive samples of evidence required to move up / down one
  // level.  Escalation is eager, de-escalation deliberately sluggish.
  int up_samples = 2;
  int down_samples = 6;
  // Level 2: flagged classes' ls slopes are scaled by this fraction.
  double clamp_fraction = 0.25;
  // Samples a clamped class must stay over threshold to be quarantined.
  int quarantine_after = 4;
  // Quarantined classes' queue limit (packets).
  std::size_t quarantine_qlimit = 4;
  // Level 3: fraction of the admission link rate left open to new flows.
  double headroom = 0.75;
};

enum class GovEventKind {
  kLevelUp,
  kLevelDown,
  kClamp,
  kUnclamp,
  kQuarantine,
  kRelease,
  kTightenAdmission,
  kRestoreAdmission,
};

const char* to_string(GovEventKind k) noexcept;

struct GovEvent {
  GovEventKind kind;
  TimeNs when = 0;
  int from_level = 0;  // level transitions
  int to_level = 0;
  ClassId cls = kRootClass;  // per-class actions
  std::string to_string() const;
};

// The signals one sample is based on; assembled by the host from
// scheduler state it already has at hand.
struct GovSignals {
  Bytes backlog_bytes = 0;
  std::uint64_t drops = 0;        // cumulative, all classes
  std::size_t starved_leaves = 0; // |starved_classes(now)|
};

// What the host must execute after a sample.  All listed classes are
// non-rt leaves (the governor enforces the rt invariant when choosing).
struct GovActions {
  std::vector<ClassId> clamp;       // scale ls by clamp_fraction
  std::vector<ClassId> unclamp;     // restore saved cfg
  std::vector<ClassId> quarantine;  // apply quarantine_qlimit
  std::vector<ClassId> release;     // restore saved queue limit
  bool tighten_admission = false;
  bool restore_admission = false;
  bool empty() const noexcept {
    return clamp.empty() && unclamp.empty() && quarantine.empty() &&
           release.empty() && !tighten_admission && !restore_admission;
  }
};

class OverloadGovernor {
 public:
  explicit OverloadGovernor(GovernorConfig cfg) : cfg_(cfg) {}

  int level() const noexcept { return level_; }
  const GovernorConfig& config() const noexcept { return cfg_; }

  // Enqueue-path hook (level >= 1): should this arrival trigger a
  // push-out?  `rt_leaf` spares guaranteed classes unconditionally.
  bool should_push_out(Bytes class_bytes, bool rt_leaf) const noexcept {
    return level_ >= 1 && !rt_leaf && class_bytes > cfg_.class_threshold;
  }

  // One ladder step.  Reads the signals, updates the hysteresis
  // counters, possibly moves one level, and returns the plan of
  // reversible actions for the host to execute.  `sched` is only
  // inspected (to pick offenders among live non-rt leaves).
  GovActions sample(const GovSignals& sig, TimeNs now, const Hfsc& sched);

  // The host reports the saved state for actions it executed, so the
  // governor can restore it on de-escalation.
  void note_clamped(ClassId cls, const ClassConfig& original) {
    clamped_[cls] = original;
  }
  void note_quarantined(ClassId cls, std::size_t original_limit) {
    quarantined_[cls] = original_limit;
  }
  const std::map<ClassId, ClassConfig>& clamped() const noexcept {
    return clamped_;
  }
  const std::map<ClassId, std::size_t>& quarantined() const noexcept {
    return quarantined_;
  }
  ClassConfig saved_config(ClassId cls) const { return clamped_.at(cls); }
  std::size_t saved_qlimit(ClassId cls) const { return quarantined_.at(cls); }
  void forget_clamp(ClassId cls) { clamped_.erase(cls); }
  void forget_quarantine(ClassId cls) { quarantined_.erase(cls); }
  bool admission_tightened() const noexcept { return tightened_; }
  void note_admission(bool tightened) { tightened_ = tightened; }

  // Typed event stream; drain() hands the accumulated events over.
  std::vector<GovEvent> drain_events() {
    std::vector<GovEvent> out;
    out.swap(events_);
    return out;
  }
  std::uint64_t transitions() const noexcept { return transitions_; }
  std::uint64_t push_outs() const noexcept { return push_outs_; }
  void count_push_out() noexcept { ++push_outs_; }

  // Durable state (level, saved originals, tightened flag) as an opaque
  // text blob for the checkpoint ext section / `gov` journal records.
  // Volatile hysteresis counters are deliberately excluded: after a
  // recovery the ladder re-earns its evidence, it does not inherit it.
  std::string serialize() const;
  // Replaces the durable state; throws Error{kBadCheckpoint} on a
  // malformed blob.
  void restore(const std::string& blob);

 private:
  void emit(GovEvent e) {
    ++transitions_;
    events_.push_back(e);
  }
  // The ladder level the raw signals ask for, before hysteresis.
  int target_level(const GovSignals& sig) const noexcept;

  GovernorConfig cfg_;
  int level_ = 0;
  int up_streak_ = 0;
  int down_streak_ = 0;
  bool tightened_ = false;
  // Offender bookkeeping at level >= 2: consecutive flagged samples.
  std::map<ClassId, int> flagged_streak_;
  // Saved originals for reversal, keyed by class.
  std::map<ClassId, ClassConfig> clamped_;
  std::map<ClassId, std::size_t> quarantined_;
  std::vector<GovEvent> events_;
  std::uint64_t transitions_ = 0;
  std::uint64_t push_outs_ = 0;
};

}  // namespace hfsc
