#include "runtime/journal.hpp"

#include <cstring>

namespace hfsc {

namespace {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char ch : bytes) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
void put(std::string& out, T v) {
  char raw[sizeof(T)];
  std::memcpy(raw, &v, sizeof(T));
  out.append(raw, sizeof(T));
}

template <typename T>
T get(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

const char* to_string(SyncPolicy p) noexcept {
  switch (p) {
    case SyncPolicy::kNone: return "none";
    case SyncPolicy::kOnCommit: return "on-commit";
  }
  return "?";
}

Journal::Journal() {
  image_.append(kMagic, sizeof(kMagic));
  put<std::uint32_t>(image_, kVersion);
  synced_bytes_ = image_.size();  // creating the file syncs its header
}

Journal Journal::parse(std::string_view image) {
  if (image.size() < kHeaderBytes ||
      std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0) {
    throw Error(Errc::kBadJournal, "bad journal magic");
  }
  const auto version = get<std::uint32_t>(image.data() + sizeof(kMagic));
  if (version != kVersion) {
    throw Error(Errc::kBadJournal,
                "unsupported journal version " + std::to_string(version) +
                    " (this build reads version " + std::to_string(kVersion) +
                    ")");
  }

  Journal j;
  std::size_t off = kHeaderBytes;
  // Scan records until the tail stops making sense.  Any failure past
  // this point is, by the append protocol, a torn or bit-flipped tail:
  // truncate there and keep everything before it.
  while (off < image.size()) {
    if (image.size() - off < kRecordOverhead) break;
    const char* p = image.data() + off;
    const auto len = get<std::uint32_t>(p);
    const auto seq = get<std::uint64_t>(p + 4);
    const auto sum = get<std::uint64_t>(p + 12);
    if (image.size() - off - kRecordOverhead < len) break;  // torn payload
    const std::string_view payload(p + kRecordOverhead, len);
    if (fnv1a64(payload) != sum) break;      // bit-flipped tail
    if (seq != j.next_seq_ && !j.records_.empty()) break;  // out of order
    if (j.records_.empty()) {
      // A compacted journal legally starts at any sequence number, but
      // it must still be a positive one.
      if (seq == 0) break;
      j.next_seq_ = seq;
    }
    j.records_.push_back(JournalRecord{seq, std::string(payload)});
    j.next_seq_ = seq + 1;
    off += kRecordOverhead + len;
  }
  j.truncated_bytes_ = image.size() - off;
  j.image_.assign(image.data(), off);
  j.synced_bytes_ = j.image_.size();  // it was read back, so it is on disk
  return j;
}

std::uint64_t Journal::append(std::string_view payload) {
  const std::uint64_t seq = next_seq_++;
  put<std::uint32_t>(image_, static_cast<std::uint32_t>(payload.size()));
  put<std::uint64_t>(image_, seq);
  put<std::uint64_t>(image_, fnv1a64(payload));
  image_.append(payload.data(), payload.size());
  records_.push_back(JournalRecord{seq, std::string(payload)});
  return seq;
}

void Journal::compact(std::uint64_t up_to) {
  std::vector<JournalRecord> kept;
  for (auto& r : records_) {
    if (r.seq > up_to) kept.push_back(std::move(r));
  }
  records_ = std::move(kept);
  image_.clear();
  image_.append(kMagic, sizeof(kMagic));
  put<std::uint32_t>(image_, kVersion);
  for (const auto& r : records_) {
    put<std::uint32_t>(image_, static_cast<std::uint32_t>(r.payload.size()));
    put<std::uint64_t>(image_, r.seq);
    put<std::uint64_t>(image_, fnv1a64(r.payload));
    image_.append(r.payload);
  }
  // next_seq_ is unchanged: compaction forgets history, not time.
  // Compaction models write-new-file + fsync + rename: atomic, and the
  // replacement image is durable the moment it exists.
  synced_bytes_ = image_.size();
}

void Journal::tear_tail(std::size_t n) {
  if (records_.empty() || n == 0) return;
  std::size_t last_size = kRecordOverhead + records_.back().payload.size();
  // A synced record cannot be torn — the fsync already returned.  Only
  // the unsynced suffix of the newest record is at risk.
  if (image_.size() - last_size < synced_bytes_) {
    last_size = image_.size() - synced_bytes_;
  }
  if (last_size == 0) return;
  if (n > last_size) n = last_size;
  image_.resize(image_.size() - n);
  if (image_.size() <= synced_bytes_) synced_bytes_ = image_.size();
  next_seq_ = records_.back().seq;  // the torn record never happened
  records_.pop_back();
}

std::vector<JournalRecord> Journal::records_after(std::uint64_t after) const {
  std::vector<JournalRecord> out;
  for (const auto& r : records_) {
    if (r.seq > after) out.push_back(r);
  }
  return out;
}

}  // namespace hfsc
