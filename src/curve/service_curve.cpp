#include "curve/service_curve.hpp"

#include <cstdio>

namespace hfsc {

ServiceCurve from_udr(Bytes u, TimeNs d, RateBps r) noexcept {
  if (d == 0 || u == 0) {
    // No burst/delay requirement: plain linear rate guarantee.
    return ServiceCurve::linear(r);
  }
  // Compare u/d (bytes per ns) against r (bytes per s): u * 1e9 vs r * d,
  // in 128-bit to avoid overflow.
  const unsigned __int128 lhs = static_cast<unsigned __int128>(u) * kNsPerSec;
  const unsigned __int128 rhs = static_cast<unsigned __int128>(r) * d;
  if (lhs > rhs) {
    // Fig. 7(a): concave — serve u within d (slope u/d), then rate r.
    const RateBps m1 = static_cast<RateBps>(lhs / d);
    return ServiceCurve{m1, d, r};
  }
  // Fig. 7(b): convex — idle until d - u/r, then rate r; by then the first
  // u bytes complete exactly at d.
  const TimeNs offset = sat_sub(d, seg_y2x(u, r));
  return ServiceCurve{0, offset, r};
}

std::string to_string(const ServiceCurve& sc) {
  auto rate_str = [](RateBps r) {
    char buf[48];
    const double bits = static_cast<double>(r) * 8.0;
    if (bits >= 1e9) {
      std::snprintf(buf, sizeof(buf), "%.2fGb/s", bits / 1e9);
    } else if (bits >= 1e6) {
      std::snprintf(buf, sizeof(buf), "%.2fMb/s", bits / 1e6);
    } else {
      std::snprintf(buf, sizeof(buf), "%.2fkb/s", bits / 1e3);
    }
    return std::string(buf);
  };
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(sc.d) / 1e6);
  return "[m1=" + rate_str(sc.m1) + " d=" + buf + " m2=" + rate_str(sc.m2) +
         "]";
}

}  // namespace hfsc
