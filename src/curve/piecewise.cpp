#include "curve/piecewise.hpp"

#include <algorithm>
#include <cassert>

namespace hfsc {

PiecewiseLinear::PiecewiseLinear(std::vector<Piece> pieces)
    : pieces_(std::move(pieces)) {
  assert(!pieces_.empty() && pieces_.front().x == 0);
  normalize();
}

void PiecewiseLinear::normalize() {
  // Drop zero-length pieces and merge consecutive pieces with equal
  // slopes; keep values consistent.
  std::vector<Piece> out;
  for (const Piece& p : pieces_) {
    if (!out.empty() && p.x == out.back().x) {
      out.back() = p;  // later piece at the same x wins
      continue;
    }
    if (!out.empty() && p.slope == out.back().slope) {
      // Only merge when the value is continuous (it always is for curves
      // built through the public constructors).
      const Piece& prev = out.back();
      const Bytes expect = sat_add(prev.y, seg_x2y(p.x - prev.x, prev.slope));
      if (expect == p.y) continue;
    }
    out.push_back(p);
  }
  pieces_ = std::move(out);
  eval_hint_ = 0;
  inv_hint_ = 0;
}

PiecewiseLinear PiecewiseLinear::from_service_curve(const ServiceCurve& sc) {
  if (sc.is_linear()) {
    return PiecewiseLinear({Piece{0, 0, sc.d == 0 ? sc.m2 : sc.m1}});
  }
  return PiecewiseLinear(
      {Piece{0, 0, sc.m1}, Piece{sc.d, seg_x2y(sc.d, sc.m1), sc.m2}});
}

PiecewiseLinear PiecewiseLinear::token_bucket(Bytes burst, RateBps rate) {
  return PiecewiseLinear({Piece{0, burst, rate}});
}

Bytes PiecewiseLinear::eval(TimeNs t) const noexcept {
  // Find the piece containing t (last piece with x <= t), resuming from
  // the memoized segment of the previous query when it still applies.
  std::size_t i = eval_hint_;
  if (i >= pieces_.size() || pieces_[i].x > t) i = 0;
  while (i + 1 < pieces_.size() && pieces_[i + 1].x <= t) ++i;
  eval_hint_ = i;
  const Piece& p = pieces_[i];
  return sat_add(p.y, seg_x2y(t - p.x, p.slope));
}

TimeNs PiecewiseLinear::inverse(Bytes y) const noexcept {
  if (y <= pieces_.front().y) return 0;
  // Resume from the memoized segment when the target still lies at or
  // beyond it (the loop below only ever advances).
  std::size_t start = inv_hint_;
  if (start >= pieces_.size() || y <= pieces_[start].y) start = 0;
  for (std::size_t i = start; i < pieces_.size(); ++i) {
    const Piece& p = pieces_[i];
    const Bytes end_val = i + 1 < pieces_.size()
                              ? pieces_[i + 1].y
                              : kBytesInfinity;
    if (y <= end_val || i + 1 == pieces_.size()) {
      const TimeNs dt = seg_y2x(y - p.y, p.slope);
      if (dt == kTimeInfinity) {
        // Flat piece: the target may still be reached by a later piece.
        if (i + 1 < pieces_.size()) continue;
        return kTimeInfinity;
      }
      const TimeNs t = sat_add(p.x, dt);
      // Clamp into the piece (rounding may push just past the boundary —
      // the next piece handles the remainder exactly).
      if (i + 1 < pieces_.size() && t > pieces_[i + 1].x) continue;
      inv_hint_ = i;
      return t;
    }
  }
  return kTimeInfinity;
}

PiecewiseLinear PiecewiseLinear::sum(const PiecewiseLinear& other) const {
  std::vector<TimeNs> xs;
  for (const Piece& p : pieces_) xs.push_back(p.x);
  for (const Piece& p : other.pieces_) xs.push_back(p.x);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  auto slope_at = [](const PiecewiseLinear& c, TimeNs x) {
    const Piece* p = &c.pieces_.front();
    for (const Piece& q : c.pieces_) {
      if (q.x > x) break;
      p = &q;
    }
    return p->slope;
  };

  std::vector<Piece> out;
  for (const TimeNs x : xs) {
    out.push_back(Piece{x, sat_add(eval(x), other.eval(x)),
                        slope_at(*this, x) + slope_at(other, x)});
  }
  return PiecewiseLinear(std::move(out));
}

namespace {

// Exact value of a curve at time t in "nanobytes" (1e-9 bytes): the
// breakpoint value scaled by 1e9 plus slope * dt with no floor, so
// within-segment comparisons between two curves are exact.  Saturates at
// the 128-bit maximum (curves extend to "infinity" on purpose).
unsigned __int128 nanobytes_at(const std::vector<PiecewiseLinear::Piece>& ps,
                               TimeNs t) {
  const PiecewiseLinear::Piece* p = &ps.front();
  for (const PiecewiseLinear::Piece& q : ps) {
    if (q.x > t) break;
    p = &q;
  }
  constexpr unsigned __int128 kMax = ~static_cast<unsigned __int128>(0);
  const unsigned __int128 base =
      static_cast<unsigned __int128>(p->y) * kNsPerSec;
  const std::uint64_t dt = t - p->x;
  if (p->slope != 0 &&
      static_cast<unsigned __int128>(dt) > (kMax - base) / p->slope) {
    return kMax;
  }
  return base + static_cast<unsigned __int128>(p->slope) * dt;
}

RateBps slope_after(const std::vector<PiecewiseLinear::Piece>& ps, TimeNs t) {
  const PiecewiseLinear::Piece* p = &ps.front();
  for (const PiecewiseLinear::Piece& q : ps) {
    if (q.x > t) break;
    p = &q;
  }
  return p->slope;
}

}  // namespace

PiecewiseLinear PiecewiseLinear::min(const PiecewiseLinear& other) const {
  // Candidate breakpoints of the minimum: every breakpoint of either
  // curve, plus the first integer nanosecond after each exact crossing.
  std::vector<TimeNs> xs;
  for (const Piece& p : pieces_) xs.push_back(p.x);
  for (const Piece& p : other.pieces_) xs.push_back(p.x);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  // Within [x0, x1) both curves are linear; solve for the first integer t
  // where the ordering of the exact (un-floored) values flips.
  std::vector<TimeNs> crossings;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const TimeNs x0 = xs[i];
    const bool last = i + 1 == xs.size();
    const unsigned __int128 a0 = nanobytes_at(pieces_, x0);
    const unsigned __int128 b0 = nanobytes_at(other.pieces_, x0);
    const RateBps sa = slope_after(pieces_, x0);
    const RateBps sb = slope_after(other.pieces_, x0);
    if (sa == sb) continue;  // parallel: no crossing inside the segment
    // diff(k) = (a0 - b0) + (sa - sb) * k for t = x0 + k.  The curve that
    // is lower (ties: smaller slope) can only be overtaken when the other
    // one's slope is smaller, i.e. when diff moves towards zero.
    unsigned __int128 gap;   // |a0 - b0|
    std::uint64_t closing;   // slope difference closing the gap
    if (a0 > b0 ? sa > sb : (a0 < b0 ? sa < sb : true)) continue;
    if (a0 == b0) continue;  // tie at x0: the lower-slope curve stays lower
    if (a0 > b0) {
      gap = a0 - b0;
      closing = sb - sa;
    } else {
      gap = b0 - a0;
      closing = sa - sb;
    }
    // First k with gap - closing * k <= 0, i.e. k = ceil(gap / closing).
    const unsigned __int128 k =
        (gap + closing - 1) / static_cast<unsigned __int128>(closing);
    if (k > kTimeInfinity - x0) continue;  // crossing beyond the time domain
    const TimeNs tc = x0 + static_cast<TimeNs>(k);
    if (last || tc < xs[i + 1]) crossings.push_back(tc);
  }
  xs.insert(xs.end(), crossings.begin(), crossings.end());
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  std::vector<Piece> out;
  out.reserve(xs.size());
  for (const TimeNs x : xs) {
    const unsigned __int128 a = nanobytes_at(pieces_, x);
    const unsigned __int128 b = nanobytes_at(other.pieces_, x);
    const RateBps sa = slope_after(pieces_, x);
    const RateBps sb = slope_after(other.pieces_, x);
    // The lower curve carries the piece; on a value tie the smaller slope
    // stays lower on [x, next candidate).
    const bool use_a = a < b || (a == b && sa <= sb);
    out.push_back(Piece{x, std::min(eval(x), other.eval(x)),
                        use_a ? sa : sb});
  }
  return PiecewiseLinear(std::move(out));
}

bool PiecewiseLinear::dominates(const PiecewiseLinear& other) const {
  // Piecewise linear: it suffices to compare at every breakpoint of both
  // curves and the tail slopes.  (A crossing inside a segment implies one
  // endpoint of that segment already violates.)
  auto check_points = [&](const PiecewiseLinear& c) {
    for (const Piece& p : c.pieces_) {
      if (eval(p.x) < other.eval(p.x)) return false;
    }
    return true;
  };
  if (!check_points(*this) || !check_points(other)) return false;
  if (tail_rate() < other.tail_rate()) return false;
  // Equal tail rates: values at the last breakpoint already compared.
  return true;
}

std::optional<TimeNs> PiecewiseLinear::max_horizontal_gap(
    const PiecewiseLinear& service) const {
  const PiecewiseLinear& arrival = *this;
  if (arrival.tail_rate() > service.tail_rate()) return std::nullopt;

  TimeNs worst = 0;
  // Candidate maxima occur at breakpoints of the arrival curve (where A
  // jumps slope) and at arrival times mapping to service breakpoints.
  auto consider = [&](TimeNs t) -> bool {
    const Bytes a = arrival.eval(t);
    const TimeNs reach = service.inverse(a);
    if (reach == kTimeInfinity) return false;
    worst = std::max(worst, reach > t ? reach - t : 0);
    return true;
  };
  for (const Piece& p : arrival.pieces_) {
    if (!consider(p.x)) return std::nullopt;
  }
  for (const Piece& p : service.pieces_) {
    // The arrival instant whose cumulative value the service curve
    // reaches exactly at this breakpoint.
    const TimeNs t = arrival.inverse(p.y);
    if (t != kTimeInfinity && !consider(t)) return std::nullopt;
    // Also probe just after the last arrival breakpoint region: tails are
    // handled below.
  }
  // Tail: if the tail rates are equal the gap can keep growing towards a
  // limit; probe a far point to capture the asymptotic gap.
  const TimeNs far =
      std::max(arrival.pieces_.back().x, service.pieces_.back().x) + sec(10);
  if (!consider(far)) return std::nullopt;
  return worst;
}

std::optional<Bytes> PiecewiseLinear::max_vertical_gap(
    const PiecewiseLinear& service) const {
  const PiecewiseLinear& arrival = *this;
  if (arrival.tail_rate() > service.tail_rate()) return std::nullopt;
  // The difference A - S is piecewise linear, so its maximum lands on a
  // breakpoint of either curve; with the arrival tail rate <= the service
  // tail rate it cannot keep growing beyond the last breakpoint of both.
  unsigned __int128 worst = 0;  // nanobytes
  auto consider = [&](TimeNs t) {
    const unsigned __int128 a = nanobytes_at(arrival.pieces_, t);
    const unsigned __int128 s = nanobytes_at(service.pieces_, t);
    if (a > s) worst = std::max(worst, a - s);
  };
  for (const Piece& p : arrival.pieces_) consider(p.x);
  for (const Piece& p : service.pieces_) consider(p.x);
  // Round up to whole bytes: the backlog bound may overshoot by < 1 byte,
  // never undershoot.
  const unsigned __int128 bytes = (worst + (kNsPerSec - 1)) / kNsPerSec;
  if (bytes > kBytesInfinity) return kBytesInfinity;
  return static_cast<Bytes>(bytes);
}

bool PiecewiseLinear::is_concave() const noexcept {
  for (std::size_t i = 0; i + 1 < pieces_.size(); ++i) {
    const Piece& p = pieces_[i];
    const Piece& q = pieces_[i + 1];
    if (q.slope > p.slope) return false;
    if (q.y != sat_add(p.y, seg_x2y(q.x - p.x, p.slope))) return false;
  }
  return true;
}

PiecewiseLinear PiecewiseLinear::delayed(TimeNs d) const {
  if (d == 0) return *this;
  std::vector<Piece> out;
  out.reserve(pieces_.size() + 1);
  out.push_back(Piece{0, pieces_.front().y, 0});
  for (const Piece& p : pieces_) {
    out.push_back(Piece{sat_add(p.x, d), p.y, p.slope});
  }
  return PiecewiseLinear(std::move(out));
}

PiecewiseLinear PiecewiseLinear::plus(Bytes c) const {
  if (c == 0) return *this;
  std::vector<Piece> out = pieces_;
  for (Piece& p : out) p.y = sat_add(p.y, c);
  return PiecewiseLinear(std::move(out));
}

PiecewiseLinear PiecewiseLinear::convolve(const PiecewiseLinear& other) const {
  // See the header: the infimum of the linear-in-s objective always lands
  // on an operand breakpoint, so each breakpoint (x, y) contributes the
  // whole-curve term other.delayed(x).plus(y) (and symmetrically).  For
  // t < x such a term evaluates to y + other(0), which the x = 0 term
  // already dominates, so folding full curves keeps the result exact.
  std::optional<PiecewiseLinear> acc;
  auto fold = [&acc](PiecewiseLinear term) {
    acc = acc ? acc->min(term) : std::move(term);
  };
  for (const Piece& p : pieces_) fold(other.delayed(p.x).plus(p.y));
  for (const Piece& p : other.pieces_) fold(delayed(p.x).plus(p.y));
  return *acc;  // both operands always have at least one piece
}

std::optional<PiecewiseLinear> PiecewiseLinear::deconvolve(
    const PiecewiseLinear& service) const {
  if (tail_rate() > service.tail_rate()) return std::nullopt;

  // Affine components l_i = sigma_i + rho_i * t covering the arrival
  // curve: exactly the extended pieces when the curve is concave
  // (arrival = min_i l_i, all intercepts exact in nanobytes), a single
  // dominating majorant line otherwise.
  struct Line {
    unsigned __int128 sigma_nb = 0;  // intercept at t = 0, nanobytes
    RateBps rho = 0;
  };
  constexpr unsigned __int128 kMax = ~static_cast<unsigned __int128>(0);
  std::vector<Line> lines;
  if (is_concave()) {
    for (const Piece& p : pieces_) {
      const unsigned __int128 y_nb =
          static_cast<unsigned __int128>(p.y) * kNsPerSec;
      const unsigned __int128 run =
          static_cast<unsigned __int128>(p.slope) * p.x;
      lines.push_back(Line{y_nb > run ? y_nb - run : 0, p.slope});
    }
  } else {
    Line maj;
    for (const Piece& p : pieces_) maj.rho = std::max(maj.rho, p.slope);
    for (const Piece& p : pieces_) {
      const unsigned __int128 y_nb =
          static_cast<unsigned __int128>(p.y) * kNsPerSec;
      const unsigned __int128 run =
          static_cast<unsigned __int128>(maj.rho) * p.x;
      if (y_nb > run) maj.sigma_nb = std::max(maj.sigma_nb, y_nb - run);
    }
    lines.push_back(maj);
  }

  // l (/) g = (sigma + D) + rho * t with D = sup_u [rho * u - g(u)]:
  // piecewise linear in u, so the supremum lands on a breakpoint of g
  // (for rho equal to g's tail rate the objective is constant beyond the
  // last breakpoint, already covered; components with rho above the tail
  // rate diverge and are dropped — dropping a term of the min is exact,
  // their deviation is infinite).
  std::optional<PiecewiseLinear> acc;
  for (const Line& l : lines) {
    if (l.rho > service.tail_rate()) continue;
    unsigned __int128 dev = 0;  // D, nanobytes, clamped at >= 0
    for (const Piece& p : service.pieces_) {
      if (l.rho != 0 &&
          static_cast<unsigned __int128>(p.x) > kMax / l.rho) {
        dev = kMax;  // saturate upward: conservative for an envelope
        break;
      }
      const unsigned __int128 ru =
          static_cast<unsigned __int128>(l.rho) * p.x;
      const unsigned __int128 y_nb =
          static_cast<unsigned __int128>(p.y) * kNsPerSec;
      if (ru > y_nb) dev = std::max(dev, ru - y_nb);
    }
    // Component burst, rounded up, plus one byte of padding so the min()
    // fold below (which may floor synthesized crossings one byte down)
    // can never dip under the exact deconvolution.
    const unsigned __int128 total_nb =
        l.sigma_nb > kMax - dev ? kMax : l.sigma_nb + dev;
    unsigned __int128 burst = (total_nb + (kNsPerSec - 1)) / kNsPerSec;
    burst = burst >= kBytesInfinity ? kBytesInfinity : burst + 1;
    const PiecewiseLinear term =
        PiecewiseLinear::token_bucket(static_cast<Bytes>(burst), l.rho);
    acc = acc ? acc->min(term) : term;
  }
  // A concave arrival always keeps its tail component (rho == tail rate,
  // checked above); only the non-concave majorant can outrun the service.
  if (!acc) return std::nullopt;
  return acc;
}

bool AdmissionControl::admit(const ServiceCurve& sc) {
  assert(sc.is_supported());
  const PiecewiseLinear cand =
      sum_.sum(PiecewiseLinear::from_service_curve(sc));
  if (!link_.dominates(cand)) return false;
  sum_ = cand;
  curves_.push_back(sc);
  ++admitted_count_;
  return true;
}

void AdmissionControl::release(const ServiceCurve& sc) {
  const auto it = std::find(curves_.begin(), curves_.end(), sc);
  ensure(it != curves_.end(), Errc::kInvalidArgument,
         "releasing a service curve that was never admitted: " +
             to_string(sc));
  curves_.erase(it);
  --admitted_count_;
  // Recompute the sum (exact, avoids subtraction rounding drift).
  sum_ = PiecewiseLinear();
  for (const ServiceCurve& c : curves_) {
    sum_ = sum_.sum(PiecewiseLinear::from_service_curve(c));
  }
}

double AdmissionControl::utilization() const noexcept {
  const double link = static_cast<double>(link_.tail_rate());
  return link == 0.0 ? 0.0 : static_cast<double>(sum_.tail_rate()) / link;
}

std::optional<TimeNs> delay_bound(Bytes burst, RateBps rate,
                                  const ServiceCurve& sc, Bytes max_pkt,
                                  RateBps link_rate) {
  const auto gap = PiecewiseLinear::token_bucket(burst, rate)
                       .max_horizontal_gap(
                           PiecewiseLinear::from_service_curve(sc));
  if (!gap) return std::nullopt;
  return sat_add(*gap, tx_time(max_pkt, link_rate));
}

}  // namespace hfsc
