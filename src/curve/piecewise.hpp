// General piecewise-linear nondecreasing curves.
//
// The two-piece family (service_curve.hpp) is closed under the runtime
// min-fold, but two jobs in the paper need full piecewise-linear
// arithmetic:
//
//  * admission control — SCED/H-FSC can guarantee all real-time curves
//    iff their SUM stays below the server's curve (Section II, eq. (5)'s
//    discussion): sums of two-piece curves have up to one breakpoint per
//    session;
//
//  * analytical delay bounds — for a session with arrival envelope A
//    (e.g. a token bucket) and guaranteed service curve S, the
//    worst-case delay is the maximum horizontal deviation
//    h(A, S) = sup_t inf { d : A(t) <= S(t + d) }  (Cruz's calculus,
//    the foundation cited in Section II).
//
// A curve is stored as breakpoints (x_i, y_i) with a slope after each;
// it is defined for x >= 0, starts at (0, y_0) and extends to infinity
// with the last slope.  All values use the same fixed-point conventions
// as the rest of the library.
#pragma once

#include <optional>
#include <vector>

#include "curve/service_curve.hpp"
#include "util/errors.hpp"
#include "util/types.hpp"

namespace hfsc {

class PiecewiseLinear {
 public:
  struct Piece {
    TimeNs x = 0;      // start of the piece
    Bytes y = 0;       // value at x
    RateBps slope = 0; // slope on [x, next x)

    friend bool operator==(const Piece&, const Piece&) noexcept = default;
  };

  PiecewiseLinear() : pieces_{Piece{0, 0, 0}} {}
  explicit PiecewiseLinear(std::vector<Piece> pieces);

  // The service curve S(t) of Fig. 7 as a piecewise curve.
  static PiecewiseLinear from_service_curve(const ServiceCurve& sc);

  // Token-bucket arrival envelope A(t) = burst + rate * t (A(0) = burst).
  static PiecewiseLinear token_bucket(Bytes burst, RateBps rate);

  Bytes eval(TimeNs t) const noexcept;

  // Smallest t with eval(t) >= y; kTimeInfinity if never reached.
  TimeNs inverse(Bytes y) const noexcept;

  // Pointwise sum (for admission: the aggregate obligation).
  PiecewiseLinear sum(const PiecewiseLinear& other) const;

  // Pointwise minimum.  Breakpoints are computed symbolically: within each
  // segment where both curves are linear the crossing instant is solved
  // exactly in 128-bit "nanobyte" units (1e-9 bytes, so a slope in bytes/s
  // is exactly nanobytes per nanosecond) and the switch lands on the first
  // integer nanosecond where the ordering flips — never sampled.  The
  // value stored at a synthesized crossing breakpoint is floored to whole
  // bytes, so eval() of the result may read up to one byte BELOW the
  // exact pointwise minimum, never above it — a conservative slack for
  // the analyzer's delay bounds (a lower service curve only widens a
  // bound).  Used by the static analyzer for the effective guarantee of
  // an upper-limited class, min(rt, ul_self, ul_ancestors...).
  PiecewiseLinear min(const PiecewiseLinear& other) const;

  // True iff this(t) >= other(t) for all t >= 0 (including the tails).
  bool dominates(const PiecewiseLinear& other) const;

  // Maximum horizontal deviation sup_t [ S^{-1}(A(t)) - t ]: the
  // worst-case delay of a session with arrival envelope *this guaranteed
  // service curve `service`.  nullopt when unbounded (arrival tail rate
  // exceeds the service tail rate, or service flatlines below the
  // envelope).
  std::optional<TimeNs> max_horizontal_gap(
      const PiecewiseLinear& service) const;

  // Maximum vertical deviation sup_t [ this(t) - service(t) ], rounded UP
  // to whole bytes: the worst-case backlog of a session with arrival
  // envelope *this and guaranteed service curve `service` (Cruz's backlog
  // bound v(A, S)).  nullopt when unbounded (arrival tail rate exceeds
  // the service tail rate).
  std::optional<Bytes> max_vertical_gap(const PiecewiseLinear& service) const;

  // True iff the stored breakpoints describe a concave function: slopes
  // nonincreasing and every breakpoint value continuous with its
  // predecessor piece.  Synthesized crossings from min() may sit one byte
  // below the exact continuation and then fail the continuity test; the
  // algebra below only uses concavity to pick exact shortcuts, so a false
  // negative costs a little precision, never soundness.
  bool is_concave() const noexcept;

  // The curve delayed by d: (delta_d (*) this)(t) = this((t - d)^+), flat
  // at this(0) on [0, d) and the original shape shifted right by d after.
  // Exact (the min-plus convolution with the pure-delay curve delta_d).
  PiecewiseLinear delayed(TimeNs d) const;

  // The curve raised by a constant: this(t) + c, saturating.  Exact.
  PiecewiseLinear plus(Bytes c) const;

  // Min-plus convolution
  //     (this (*) other)(t) = inf_{0 <= s <= t} this(s) + other(t - s).
  // Computed symbolically: the objective is linear in s wherever neither
  // operand crosses a breakpoint, so the infimum always lands with s on a
  // breakpoint of *this or t - s on a breakpoint of other.  The
  // convolution is therefore exactly the pointwise minimum of the n + m
  // whole-curve terms  other.delayed(x_i).plus(y_i)  and
  // this.delayed(x_j).plus(y_j)  over both operands' breakpoints — for
  // any piecewise-linear operands, concave or not.  Each fold step goes
  // through min(), so the result inherits its discipline: values at
  // synthesized crossings may sit a few bytes BELOW the exact convolution,
  // never above — conservative for service curves, where a lower
  // guarantee only widens the analyzer's delay and backlog bounds.
  PiecewiseLinear convolve(const PiecewiseLinear& other) const;

  // Min-plus deconvolution
  //     (this (/) other)(t) = sup_{u >= 0} this(t + u) - other(u),
  // the tightest envelope of a flow with arrival envelope *this after a
  // server guaranteeing service curve `other`.  Returns a curve that is
  // >= the exact deconvolution everywhere (conservative for envelopes: a
  // larger envelope only widens downstream bounds), exact modulo <= 2
  // bytes of deliberate upward rounding when *this is affine — which the
  // analyzer's propagated envelopes always are, since the result of an
  // affine deconvolution is again a single token bucket.  Concave
  // multi-piece envelopes decompose into affine components l_i with
  // (min_i l_i) (/) g <= min_i (l_i (/) g); non-concave envelopes fall
  // back to one affine majorant.  nullopt when the deviation is unbounded
  // (arrival tail rate exceeds the service tail rate, or the majorant
  // outruns the service tail).
  std::optional<PiecewiseLinear> deconvolve(const PiecewiseLinear& other) const;

  const std::vector<Piece>& pieces() const noexcept { return pieces_; }
  RateBps tail_rate() const noexcept { return pieces_.back().slope; }

  // Normalized representations are canonical, so piece-wise equality is
  // curve equality (used by the auditor's admission bookkeeping check).
  // Manual (not defaulted): the memoized segment hints are not part of a
  // curve's value.
  friend bool operator==(const PiecewiseLinear& a,
                         const PiecewiseLinear& b) noexcept {
    return a.pieces_ == b.pieces_;
  }

 private:
  void normalize();

  std::vector<Piece> pieces_;  // sorted by x; pieces_[0].x == 0

  // Active-segment memoization for eval()/inverse(): consecutive queries
  // at monotone (or nearby) arguments resolve in O(1) instead of
  // re-searching the piece list.  Pure caches — mutable, reset by
  // normalize(), never observable through results.
  mutable std::size_t eval_hint_ = 0;
  mutable std::size_t inv_hint_ = 0;
};

// Admission control for a link's real-time obligations (Section II's
// feasibility condition).  Tracks the running sum of admitted service
// curves and admits a new one only while  sum + candidate <= link curve.
// Hfsc::enable_admission_control wires an instance into every mutation
// path (direct mutators and Hfsc::Txn commits) so the scheduler refuses
// configurations whose guarantees it cannot honour.
class AdmissionControl {
 public:
  // Throws Error{kInvalidArgument} if link_rate == 0 (a zero-rate link
  // can admit nothing, so constructing one is always a config mistake).
  explicit AdmissionControl(RateBps link_rate)
      : link_rate_((ensure(link_rate > 0, Errc::kInvalidArgument,
                           "admission link rate must be > 0"),
                    link_rate)),
        link_(PiecewiseLinear::from_service_curve(
            ServiceCurve::linear(link_rate))),
        sum_() {}

  // Attempts to admit; returns false (and changes nothing) if the
  // aggregate would exceed the link curve somewhere.
  bool admit(const ServiceCurve& sc);

  // Releases a previously admitted curve (sessions leaving).  Throws
  // Error{kInvalidArgument} if no matching curve is currently admitted —
  // silently shrinking the bookkeeping would let later admits overcommit
  // the link.
  void release(const ServiceCurve& sc);

  // Fraction of the link's long-term rate currently reserved, in
  // [0, 1+] (long-term slopes only).
  double utilization() const noexcept;

  RateBps link_rate() const noexcept { return link_rate_; }
  std::size_t admitted() const noexcept { return admitted_count_; }
  const PiecewiseLinear& aggregate() const noexcept { return sum_; }

 private:
  RateBps link_rate_;
  PiecewiseLinear link_;
  PiecewiseLinear sum_;
  std::vector<ServiceCurve> curves_;  // for release-by-recompute
  std::size_t admitted_count_ = 0;
};

// Worst-case queueing delay of a session with token-bucket envelope
// (burst, rate) under guaranteed service curve sc, plus one max-packet
// transmission time (Theorem 2's non-preemption term).  nullopt when the
// envelope overruns the curve.
std::optional<TimeNs> delay_bound(Bytes burst, RateBps rate,
                                  const ServiceCurve& sc, Bytes max_pkt,
                                  RateBps link_rate);

}  // namespace hfsc
