#include "curve/runtime_curve.hpp"

namespace hfsc {

void RuntimeCurve::min_with(const ServiceCurve& s, TimeNs x0,
                            Bytes y0) noexcept {
  const RuntimeCurve fresh(s, x0, y0);

  if (s.m1 <= s.m2) {
    // Convex (or linear) service curve.  The old curve is an earlier-
    // anchored copy of the same slope profile: at every t >= x0 its local
    // slope is >= the fresh copy's.  Hence if the fresh copy starts at or
    // below the old curve it stays below forever and replaces it; if it
    // starts above, the old curve remains the minimum.
    if (x2y(x0) >= y0) *this = fresh;
    return;
  }

  // Concave service curve (m1 > m2).
  const Bytes y1 = x2y(x0);
  if (y1 <= y0) {
    // Old curve is below the fresh copy at the anchor; being concave and
    // older (its slope at any t >= x0 is already in the <= m1 regime and
    // >= ... no greater than the fresh copy's), it stays below.
    return;
  }
  const Bytes y2 = x2y(sat_add(x0, s.d));
  if (y2 >= sat_add(y0, fresh.dy())) {
    // Old curve is above the fresh copy for the whole first segment and —
    // both tails having slope m2 — forever after: replace.
    *this = fresh;
    return;
  }

  // The curves cross while the fresh copy is on its first segment.  The
  // fresh copy (slope m1) gains on the old curve's tail (slope m2) at rate
  // m1 - m2 from an initial deficit of y1 - y0:
  //     cross_dx = (y1 - y0) / (m1 - m2).
  TimeNs cross_dx = muldiv_floor(y1 - y0, kNsPerSec, s.m1 - s.m2);
  // If the old curve is still on its own first segment at x0, its tail
  // only starts at x_ + dx_; the gap closes that much later.
  if (sat_add(x_, dx_) > x0) {
    cross_dx = sat_add(cross_dx, sat_add(x_, dx_) - x0);
  }
  x_ = x0;
  y_ = y0;
  dx_ = cross_dx;
  dy_ = seg_x2y(cross_dx, s.m1);
  m1_ = s.m1;
  m2_ = s.m2;
  inv_valid_ = false;  // segment geometry changed; drop the divmod cache
}

}  // namespace hfsc
