// Runtime service curves (paper Section V, Fig. 8).
//
// A RuntimeCurve is a two-piece linear curve anchored at an arbitrary point
// (x, y) instead of the origin:
//
//     C(t) = y + m1 * (t - x)             for x <= t < x + dx
//     C(t) = y + dy + m2 * (t - x - dx)   for t >= x + dx
//
// (dy == m1 * dx up to rounding; it is stored so evaluation is exact.)
//
// H-FSC keeps three of these per class: the deadline curve D, the eligible
// curve E (both against wall-clock time and the cumulative work counters c
// resp. c+l), and the virtual curve V (against parent virtual time and the
// total work w).  Each becomes-active event folds a freshly anchored copy
// of the class's service curve into the runtime curve with the pointwise
// minimum (eqs. (7) and (12)); min_with() implements that update in O(1)
// for the supported curve family, generalizing Fig. 8's update_dc.
#pragma once

#ifdef HFSC_CACHE_STATS
#include <atomic>
#endif

#include "curve/service_curve.hpp"
#include "util/types.hpp"

namespace hfsc {

#ifdef HFSC_CACHE_STATS
// Compile-flag-gated diagnostics for the incremental-inverse cache: how
// often a second-segment y2x query was answered from the cached divmod
// state (hit) versus a full 128-bit divide (miss).  Relaxed atomics: the
// counters are statistical, so cross-thread ordering does not matter and
// the instrumented build stays ThreadSanitizer-clean.  bench_throughput
// prints the totals in its smoke output (docs/BENCH_NOTES.md).
struct CurveCacheStats {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};
inline CurveCacheStats& curve_cache_stats() noexcept {
  static CurveCacheStats stats;
  return stats;
}
#define HFSC_CURVE_STAT(field) \
  ::hfsc::curve_cache_stats().field.fetch_add(1, std::memory_order_relaxed)
#else
#define HFSC_CURVE_STAT(field) ((void)0)
#endif

class RuntimeCurve {
 public:
  RuntimeCurve() = default;

  // The curve S anchored at (x0, y0): C(t) = y0 + S(t - x0).
  RuntimeCurve(const ServiceCurve& s, TimeNs x0, Bytes y0) noexcept
      : x_(x0), y_(y0), dx_(s.d), dy_(seg_x2y(s.d, s.m1)), m1_(s.m1),
        m2_(s.m2) {}

  // Rebuilds a curve from its raw coefficients (checkpoint restore; see
  // core/checkpoint.hpp).  The fields must come from a prior curve's
  // accessors — no derivation such as dy = m1 * dx is re-applied, so a
  // flattened eligible curve round-trips exactly.
  static RuntimeCurve from_parts(TimeNs x, Bytes y, TimeNs dx, Bytes dy,
                                 RateBps m1, RateBps m2) noexcept {
    RuntimeCurve c;
    c.x_ = x;
    c.y_ = y;
    c.dx_ = dx;
    c.dy_ = dy;
    c.m1_ = m1;
    c.m2_ = m2;
    return c;
  }

  // C(t); values left of the anchor clamp to y (the algorithm never
  // queries there, but clamping keeps the function total and monotone).
  Bytes x2y(TimeNs t) const noexcept {
    if (t <= x_) return y_;
    const TimeNs rel = t - x_;
    if (rel < dx_) return sat_add(y_, seg_x2y(rel, m1_));
    return sat_add(sat_add(y_, dy_), seg_x2y(rel - dx_, m2_));
  }

  // Smallest t with C(t) >= v (clamped to the anchor); kTimeInfinity when
  // the curve never reaches v.
  //
  // Hot-path note: the scheduler queries each curve with monotonically
  // non-decreasing v (cumulative service only grows between re-anchors),
  // and in steady state the query sits on the second segment.  The
  // division ceil(rel * 1e9 / m2) — a 128-by-64-bit divide — dominates
  // the cost, so the active segment caches its last (quotient, remainder)
  // pair and advances it incrementally with one 64-bit divmod per query.
  // The cached path computes bit-identical results to the cold path.
  TimeNs y2x(Bytes v) const noexcept {
    if (v <= y_) return x_;
    const Bytes rel = v - y_;
    if (rel <= dy_) {
      const TimeNs t = seg_y2x(rel, m1_);
      return t == kTimeInfinity ? kTimeInfinity : sat_add(x_, t);
    }
    return second_seg_y2x(rel - dy_);
  }

  // Pointwise minimum with the curve S re-anchored at (x0, y0), i.e. the
  // becomes-active update  C <- min(C, y0 + S(. - x0))  of eqs. (7)/(12).
  //
  // For concave S the result is exact and stays in the two-piece family
  // (Fig. 8).  For convex S (flat first segment) the new copy either lies
  // entirely below the old curve — the old curve is further along an
  // identical slope profile — and replaces it, or the old curve is kept
  // (the specialization the authors shipped in ALTQ).
  void min_with(const ServiceCurve& s, TimeNs x0, Bytes y0) noexcept;

  // Collapses the first segment: the curve becomes the line of slope m2
  // through (x, y).  Used to derive the eligible curve of a convex session
  // (Section V: "a line that starts at the same point as the first segment
  // of the deadline curve, with the slope of the second segment").
  void flatten_to_second_slope() noexcept {
    dx_ = 0;
    dy_ = 0;
    inv_valid_ = false;
  }

  TimeNs x() const noexcept { return x_; }
  Bytes y() const noexcept { return y_; }
  TimeNs dx() const noexcept { return dx_; }
  Bytes dy() const noexcept { return dy_; }
  RateBps m1() const noexcept { return m1_; }
  RateBps m2() const noexcept { return m2_; }

 private:
  // Inverse on the second segment (rel2 = v - y_ - dy_ > 0): computes
  // ceil(rel2 * 1e9 / m2_) either incrementally from the cached divmod
  // state or from scratch, re-seeding the cache.
  //
  // The fast-path admission test is branchless: all four conditions are
  // evaluated unconditionally and folded into one well-predicted branch.
  // The subtraction and multiplication feeding the mask may wrap when a
  // condition is false; that is defined (unsigned) and their results are
  // only consumed when every condition holds.
  TimeNs second_seg_y2x(Bytes rel2) const noexcept {
    if (m2_ == 0) return kTimeInfinity;
    const Bytes delta = rel2 - inv_rel_;        // valid iff rel2 >= inv_rel_
    const std::uint64_t grow = delta * kNsPerSec;  // valid iff delta small
    const bool ok = inv_valid_ & (rel2 >= inv_rel_) &
                    (delta <= kMaxIncrDelta) &
                    (grow <= ~std::uint64_t{0} - inv_rem_);
    if (__builtin_expect(ok, 1)) {
      const std::uint64_t a = grow + inv_rem_;
      const std::uint64_t add = a / m2_;
      // The cold path refuses to seed the cache at quotients >= 2^62, but
      // incremental advances can still march the cached quotient toward
      // the top of the 64-bit range, where `inv_q_ += add` — or the + 1
      // ceil carry in the return — would wrap and silently disagree with
      // the cold path's saturating arithmetic (a curve with a tiny m2
      // gets there in two queries).  Hand such advances back to the cold
      // path, which computes the saturated result and drops the cache.
      if (__builtin_expect(add <= ~std::uint64_t{0} - 1 - inv_q_, 1)) {
        HFSC_CURVE_STAT(hits);
        inv_q_ += add;
        inv_rem_ = a % m2_;
        inv_rel_ = rel2;
        return sat_add(sat_add(x_, dx_), inv_q_ + (inv_rem_ != 0 ? 1 : 0));
      }
    }
    HFSC_CURVE_STAT(misses);
    // Cold path: full 128-bit divide, then seed the incremental cache
    // (only while the quotient is far from saturation, so the cached and
    // saturating arithmetic can never disagree).
    const unsigned __int128 p =
        static_cast<unsigned __int128>(rel2) * kNsPerSec;
    const unsigned __int128 q = p / m2_;
    if (q >= (std::uint64_t{1} << 62)) {
      inv_valid_ = false;
      const TimeNs t = seg_y2x(rel2, m2_);
      return t == kTimeInfinity ? kTimeInfinity
                                : sat_add(sat_add(x_, dx_), t);
    }
    inv_valid_ = true;
    inv_rel_ = rel2;
    inv_q_ = static_cast<std::uint64_t>(q);
    inv_rem_ = static_cast<std::uint64_t>(p - q * m2_);
    return sat_add(sat_add(x_, dx_), inv_q_ + (inv_rem_ != 0 ? 1 : 0));
  }

  // Largest delta with delta * 1e9 guaranteed to fit in 64 bits.
  static constexpr Bytes kMaxIncrDelta =
      ~std::uint64_t{0} / kNsPerSec - 1;

  TimeNs x_ = 0;   // anchor time
  Bytes y_ = 0;    // anchor service amount
  TimeNs dx_ = 0;  // length of the first segment
  Bytes dy_ = 0;   // rise of the first segment
  RateBps m1_ = 0;
  RateBps m2_ = 0;

  // Incremental-inverse cache for the second segment (see y2x).  Mutable:
  // pure memoization, never observable through the public interface.
  mutable bool inv_valid_ = false;
  mutable Bytes inv_rel_ = 0;          // last second-segment offset queried
  mutable std::uint64_t inv_q_ = 0;    // floor(inv_rel_ * 1e9 / m2_)
  mutable std::uint64_t inv_rem_ = 0;  // inv_rel_ * 1e9 - inv_q_ * m2_
};

}  // namespace hfsc
