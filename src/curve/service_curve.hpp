// Two-piece linear service curves (paper Sections II and V, Fig. 7).
//
// A service curve S is a nondecreasing function of time; S(t) is the
// minimum amount of service a backlogged session must have received t after
// the start of a backlogged period.  Following Section V we restrict to the
// two-piece linear family
//
//     S(t) = m1 * t                      for t <  d
//     S(t) = m1 * d + m2 * (t - d)       for t >= d
//
// which is closed under the runtime updates used by SCED and H-FSC when the
// curve is concave (m1 >= m2), or convex with a flat first segment
// (m1 == 0 <= m2) — the only convex shape the closure property admits
// (Section V).
//
// A session's user-facing requirement is the (u, d, r) triple of Fig. 7:
// the largest unit of work u needing a delay guarantee, the guaranteed
// delay d for that unit, and the long-term rate r.  from_udr() maps the
// triple onto the curve of Fig. 7: concave when u/d > r, convex otherwise.
#pragma once

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace hfsc {

struct ServiceCurve {
  RateBps m1 = 0;  // slope of the first segment (bytes/s)
  TimeNs d = 0;    // x-coordinate of the inflection point (ns)
  RateBps m2 = 0;  // slope of the second segment (bytes/s)

  constexpr bool is_zero() const noexcept {
    return (m1 == 0 || d == 0) && m2 == 0;
  }
  constexpr bool is_linear() const noexcept { return m1 == m2 || d == 0; }
  constexpr bool is_concave() const noexcept { return m1 >= m2 || d == 0; }
  constexpr bool is_convex() const noexcept { return m1 <= m2 || d == 0; }

  // True for the shapes the runtime algebra supports (see header comment).
  constexpr bool is_supported() const noexcept {
    return is_concave() || m1 == 0;
  }

  // S(t); floor rounding.
  constexpr Bytes eval(TimeNs t) const noexcept {
    if (t < d) return seg_x2y(t, m1);
    return sat_add(seg_x2y(d, m1), seg_x2y(t - d, m2));
  }

  // Smallest t with S(t) >= y (the paper's inverse definition, Section II);
  // kTimeInfinity if S never reaches y.
  constexpr TimeNs inverse(Bytes y) const noexcept {
    if (y == 0) return 0;
    const Bytes knee = seg_x2y(d, m1);
    if (y <= knee) {
      return seg_y2x(y, m1);
    }
    const TimeNs tail = seg_y2x(y - knee, m2);
    if (tail == kTimeInfinity) return kTimeInfinity;
    return sat_add(d, tail);
  }

  // Asymptotic (long-term) rate.
  constexpr RateBps rate() const noexcept { return m2; }

  // Linear curve of rate r through the origin (the fair-queueing /
  // virtual-clock special case of Section II).
  static constexpr ServiceCurve linear(RateBps r) noexcept {
    return ServiceCurve{r, 0, r};
  }

  friend constexpr bool operator==(const ServiceCurve&,
                                   const ServiceCurve&) noexcept = default;
};

// Fig. 7 mapping from the (u, d, r) session requirement to a curve:
// concave {m1 = u/d, d, m2 = r} when u/d > r, else convex
// {m1 = 0, d - u/r, m2 = r}.
ServiceCurve from_udr(Bytes u, TimeNs d, RateBps r) noexcept;

// Human-readable rendering, e.g. "[m1=1.50Mb/s d=10ms m2=300.00kb/s]".
std::string to_string(const ServiceCurve& sc);

}  // namespace hfsc
