// Static hierarchy/spec analyzer (tools/hfsc_lint, hfsc_sim --analyze).
//
// The paper's guarantees are properties of the *configuration*: the
// real-time curves are honourable iff their sum stays below the link
// curve (Section II, eq. (5)), a session's worst-case delay is the
// horizontal deviation between its arrival envelope and its guaranteed
// service curve (Theorem 2), and the link-sharing goals bind the shares
// of siblings to their parent.  This analyzer proves or refutes those
// properties from a HierarchySpec (or a parsed .hfsc scenario) alone,
// before any packet is simulated, using exact breakpoint-symbolic
// piecewise-linear algebra (curve/piecewise.hpp) — sums, minima,
// dominance and horizontal deviations are never sampled.
//
// Verdicts are differentially validated against the runtime
// (tests/test_analysis_fuzz.cpp): "rt-feasible" agrees with
// AdmissionControl admitting every leaf in any insertion order, and a
// measured scenario delay never exceeds the reported bound.
//
// Diagnostic catalog, math and the JSON schema: docs/ANALYSIS.md.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "config/hierarchy_spec.hpp"
#include "util/types.hpp"

namespace hfsc {

struct Scenario;  // sim/scenario.hpp

enum class Severity { kError, kWarning, kNote };

// "error" / "warning" / "note".
std::string_view to_string(Severity s) noexcept;

// Where a diagnostic anchors in the input.  line == 0 means the spec was
// built programmatically (no file to point at).
struct SourceLoc {
  std::string file;
  std::size_t line = 0;

  // "file:line" when known, else "<spec>".
  std::string to_string() const;
};

struct Diagnostic {
  Severity severity = Severity::kNote;
  std::string id;       // stable kebab-case id, e.g. "rt-link-infeasible"
  std::string cls;      // offending class name; "" for link-level findings
  std::string message;  // human-readable, self-contained
  SourceLoc loc;

  // Editor-style one-liner: "file:12: warning: [id] message".
  std::string to_string() const;
};

// Worst-case queueing delay of a leaf with a declared token-bucket
// arrival envelope (scenario `envelope` directive or ClassSpec env_*
// fields): the maximum horizontal deviation between the envelope and the
// leaf's effective guarantee min(rt, ul_self, ul_ancestors...), plus one
// max-packet transmission time (Theorem 2's non-preemption term).
struct LeafDelayBound {
  std::string cls;
  Bytes env_burst = 0;
  RateBps env_rate = 0;
  // nullopt: the envelope overruns the effective guarantee (the backlog
  // and with it the delay grow without bound).
  std::optional<TimeNs> bound;
  SourceLoc loc;
};

// One hop of a routed flow's end-to-end budget.  The hop's guarantee is
// the class's effective curve min(rt, ul_self, ul_ancestors...) at that
// node, delayed by one max-packet transmission time (Theorem 2's
// non-preemption term folded into the curve), so convolving the hop
// curves along the route yields an end-to-end service curve whose
// horizontal deviation already includes every per-hop transmission term.
struct HopBudget {
  std::string node;
  // Input envelope at this hop: the declared envelope at the first hop,
  // then the deconvolved output envelope of each upstream hop.
  Bytes in_burst = 0;
  RateBps in_rate = 0;
  // Per-hop delay h(E_i, S_i) and backlog v(E_i, S_i) bounds; nullopt
  // when the input envelope overruns the hop guarantee (unbounded).
  std::optional<TimeNs> delay;
  std::optional<Bytes> backlog;
};

// End-to-end network-calculus budget of one routed flow: the arrival
// envelope propagated hop by hop (output envelope E_{i+1} = E_i (/) S_i),
// the per-hop deviations, and the route-composed bound h(E_1, S_1 (*)
// S_2 (*) ...) — tighter than summing per-hop delays because the burst
// is paid only once.
struct FlowBudget {
  std::string cls;
  std::vector<std::string> route;  // node names along the path
  Bytes env_burst = 0;             // declared envelope at the first hop
  RateBps env_rate = 0;
  // Route-composed end-to-end delay bound; nullopt = unbounded (some hop
  // has no rt guarantee or the envelope overruns it).
  std::optional<TimeNs> e2e_delay;
  // Sum of the per-hop backlog bounds (a sound bound on the flow's total
  // buffered bytes across the path).
  std::optional<Bytes> total_backlog;
  // Declared `deadline` budget, if any.
  std::optional<TimeNs> deadline;
  std::vector<HopBudget> hops;
  SourceLoc loc;  // the route directive
};

// Which of the scheduler families the spec compiles to losslessly
// (hierarchy_spec's strict-mode loss taxonomy, statically evaluated).
struct PortabilityEntry {
  SchedulerKind kind{};
  bool compiles = true;   // false: even the lossy mapping has no target
  bool lossless = false;  // strict-mode compile accepts the spec as-is
  std::vector<std::string> notes;  // mapping losses (or the fatal error)
};

struct AnalysisOptions {
  // Fallback max packet length when no source/envelope pins one down
  // (Theorem 2's transmission term and the qlimit lint).
  Bytes default_max_pkt = 1500;
  // Skip the per-family portability pre-flight (it compiles the spec
  // seven times; cheap, but pointless for pure feasibility queries).
  bool portability = true;
};

struct AnalysisReport {
  // Input identity (for headers and the JSON "file" field): the scenario
  // file when analyzing a parsed scenario, "" for a programmatic spec.
  std::string file;
  std::size_t num_classes = 0;
  RateBps link_rate = 0;

  std::vector<Diagnostic> diagnostics;

  // Link-level rt admissibility: true iff AdmissionControl would admit
  // every leaf rt curve (proved by running the same curve algebra over
  // the declaration order; the verdict is order-independent because
  // curves are nonnegative and nondecreasing, so every prefix of a
  // feasible sum is feasible).
  bool rt_feasible = true;
  // Long-term fraction of the link the leaf rt curves reserve.
  double rt_utilization = 0.0;

  std::vector<LeafDelayBound> delay_bounds;
  // End-to-end budgets for every routed flow with a first-hop envelope
  // (multi-node scenarios only).
  std::vector<FlowBudget> flows;
  std::vector<PortabilityEntry> portability;

  std::size_t errors() const noexcept;
  std::size_t warnings() const noexcept;
  std::size_t notes() const noexcept;
  // Clean = nothing severe enough to gate on (notes are fine).
  bool clean() const noexcept { return errors() == 0 && warnings() == 0; }

  // Human-readable report: diagnostics, verdict, bounds, portability.
  std::string to_text() const;
  // Machine-readable report, schema "hfsc-lint-report-v2"
  // (docs/ANALYSIS.md).
  std::string to_json() const;
};

// SARIF 2.1.0 document over one or more reports (one run, one result per
// diagnostic, file:line as region.startLine) — hfsc_lint --sarif; the
// rule/level mapping is documented in docs/ANALYSIS.md.
std::string to_sarif(const std::vector<AnalysisReport>& reports);

// Analyzes a bare spec (no sources: source-aware checks are skipped).
AnalysisReport analyze(const HierarchySpec& spec, RateBps link_rate,
                       const AnalysisOptions& opts = {});

// Analyzes a parsed scenario: spec-level checks plus provenance
// (file:line), per-class max packet sizes from the sources, and the
// source-aware lints (unfed classes).
AnalysisReport analyze(const Scenario& sc, const AnalysisOptions& opts = {});

}  // namespace hfsc
