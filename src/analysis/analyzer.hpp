// Static hierarchy/spec analyzer (tools/hfsc_lint, hfsc_sim --analyze).
//
// The paper's guarantees are properties of the *configuration*: the
// real-time curves are honourable iff their sum stays below the link
// curve (Section II, eq. (5)), a session's worst-case delay is the
// horizontal deviation between its arrival envelope and its guaranteed
// service curve (Theorem 2), and the link-sharing goals bind the shares
// of siblings to their parent.  This analyzer proves or refutes those
// properties from a HierarchySpec (or a parsed .hfsc scenario) alone,
// before any packet is simulated, using exact breakpoint-symbolic
// piecewise-linear algebra (curve/piecewise.hpp) — sums, minima,
// dominance and horizontal deviations are never sampled.
//
// Verdicts are differentially validated against the runtime
// (tests/test_analysis_fuzz.cpp): "rt-feasible" agrees with
// AdmissionControl admitting every leaf in any insertion order, and a
// measured scenario delay never exceeds the reported bound.
//
// Diagnostic catalog, math and the JSON schema: docs/ANALYSIS.md.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "config/hierarchy_spec.hpp"
#include "util/types.hpp"

namespace hfsc {

struct Scenario;  // sim/scenario.hpp

enum class Severity { kError, kWarning, kNote };

// "error" / "warning" / "note".
std::string_view to_string(Severity s) noexcept;

// Where a diagnostic anchors in the input.  line == 0 means the spec was
// built programmatically (no file to point at).
struct SourceLoc {
  std::string file;
  std::size_t line = 0;

  // "file:line" when known, else "<spec>".
  std::string to_string() const;
};

struct Diagnostic {
  Severity severity = Severity::kNote;
  std::string id;       // stable kebab-case id, e.g. "rt-link-infeasible"
  std::string cls;      // offending class name; "" for link-level findings
  std::string message;  // human-readable, self-contained
  SourceLoc loc;

  // Editor-style one-liner: "file:12: warning: [id] message".
  std::string to_string() const;
};

// Worst-case queueing delay of a leaf with a declared token-bucket
// arrival envelope (scenario `envelope` directive or ClassSpec env_*
// fields): the maximum horizontal deviation between the envelope and the
// leaf's effective guarantee min(rt, ul_self, ul_ancestors...), plus one
// max-packet transmission time (Theorem 2's non-preemption term).
struct LeafDelayBound {
  std::string cls;
  Bytes env_burst = 0;
  RateBps env_rate = 0;
  // nullopt: the envelope overruns the effective guarantee (the backlog
  // and with it the delay grow without bound).
  std::optional<TimeNs> bound;
  SourceLoc loc;
};

// Which of the scheduler families the spec compiles to losslessly
// (hierarchy_spec's strict-mode loss taxonomy, statically evaluated).
struct PortabilityEntry {
  SchedulerKind kind{};
  bool compiles = true;   // false: even the lossy mapping has no target
  bool lossless = false;  // strict-mode compile accepts the spec as-is
  std::vector<std::string> notes;  // mapping losses (or the fatal error)
};

struct AnalysisOptions {
  // Fallback max packet length when no source/envelope pins one down
  // (Theorem 2's transmission term and the qlimit lint).
  Bytes default_max_pkt = 1500;
  // Skip the per-family portability pre-flight (it compiles the spec
  // seven times; cheap, but pointless for pure feasibility queries).
  bool portability = true;
};

struct AnalysisReport {
  // Input identity (for headers and the JSON "file" field): the scenario
  // file when analyzing a parsed scenario, "" for a programmatic spec.
  std::string file;
  std::size_t num_classes = 0;
  RateBps link_rate = 0;

  std::vector<Diagnostic> diagnostics;

  // Link-level rt admissibility: true iff AdmissionControl would admit
  // every leaf rt curve (proved by running the same curve algebra over
  // the declaration order; the verdict is order-independent because
  // curves are nonnegative and nondecreasing, so every prefix of a
  // feasible sum is feasible).
  bool rt_feasible = true;
  // Long-term fraction of the link the leaf rt curves reserve.
  double rt_utilization = 0.0;

  std::vector<LeafDelayBound> delay_bounds;
  std::vector<PortabilityEntry> portability;

  std::size_t errors() const noexcept;
  std::size_t warnings() const noexcept;
  std::size_t notes() const noexcept;
  // Clean = nothing severe enough to gate on (notes are fine).
  bool clean() const noexcept { return errors() == 0 && warnings() == 0; }

  // Human-readable report: diagnostics, verdict, bounds, portability.
  std::string to_text() const;
  // Machine-readable report (schema in docs/ANALYSIS.md).
  std::string to_json() const;
};

// Analyzes a bare spec (no sources: source-aware checks are skipped).
AnalysisReport analyze(const HierarchySpec& spec, RateBps link_rate,
                       const AnalysisOptions& opts = {});

// Analyzes a parsed scenario: spec-level checks plus provenance
// (file:line), per-class max packet sizes from the sources, and the
// source-aware lints (unfed classes).
AnalysisReport analyze(const Scenario& sc, const AnalysisOptions& opts = {});

}  // namespace hfsc
