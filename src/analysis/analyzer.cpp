#include "analysis/analyzer.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "curve/piecewise.hpp"
#include "sim/scenario.hpp"
#include "util/errors.hpp"

namespace hfsc {

std::string_view to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

std::string SourceLoc::to_string() const {
  if (line == 0) return "<spec>";
  return file + ":" + std::to_string(line);
}

std::string Diagnostic::to_string() const {
  std::string out = loc.to_string();
  out += ": ";
  out += std::string(hfsc::to_string(severity));
  out += ": [";
  out += id;
  out += "] ";
  out += message;
  return out;
}

namespace {

using ClassSpec = HierarchySpec::ClassSpec;

// Everything the checks need, precomputed once: indices, adjacency,
// provenance, source-derived packet sizes.
struct Ctx {
  const HierarchySpec& spec;
  RateBps link_rate;
  const Scenario* scenario;  // null for bare-spec analysis
  AnalysisOptions opts;

  std::map<std::string, std::size_t> index;          // name -> classes[i]
  std::map<std::string, std::vector<std::size_t>> children;  // "" = root
  std::vector<bool> leaf;
  Bytes global_max_pkt = 0;                // Theorem 2 transmission term
  std::map<std::string, Bytes> class_max_pkt;        // per-leaf, from sources
  std::set<std::string> fed;               // classes at least one source feeds

  AnalysisReport* report;

  void diag(Severity sev, std::string id, const std::string& cls,
            std::string message) {
    Diagnostic d;
    d.severity = sev;
    d.id = std::move(id);
    d.cls = cls;
    d.message = std::move(message);
    d.loc = loc_of(cls);
    report->diagnostics.push_back(std::move(d));
  }

  SourceLoc loc_of(const std::string& cls) const {
    SourceLoc loc;
    if (scenario == nullptr || cls.empty()) return loc;
    for (const ScenarioClass& c : scenario->classes) {
      if (c.name == cls) {
        loc.file = scenario->file;
        loc.line = c.line;
        break;
      }
    }
    return loc;
  }

  Bytes max_pkt_of(const std::string& cls) const {
    const auto it = class_max_pkt.find(cls);
    if (it != class_max_pkt.end()) return it->second;
    return global_max_pkt;
  }

  // Leaves of the subtree rooted at `name` (the class itself if a leaf),
  // in declaration order.
  std::vector<std::size_t> subtree_leaves(const std::string& name) const {
    std::vector<std::size_t> out;
    std::vector<std::string> stack{name};
    while (!stack.empty()) {
      const std::string cur = std::move(stack.back());
      stack.pop_back();
      const std::size_t i = index.at(cur);
      if (leaf[i]) {
        out.push_back(i);
        continue;
      }
      const auto it = children.find(cur);
      if (it == children.end()) continue;
      for (const std::size_t c : it->second) {
        stack.push_back(spec.classes[c].name);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

std::string fmt_mbps(RateBps r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f Mb/s",
                static_cast<double>(r) * 8.0 / 1e6);
  return buf;
}

std::string fmt_ms(TimeNs t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms", static_cast<double>(t) / 1e6);
  return buf;
}

// ---------------------------------------------------------------- checks

// (a) Link-level rt admissibility — the *same* algebra the runtime uses:
// admit every leaf rt curve through an AdmissionControl in declaration
// order.  The verdict is order-independent (curves are nonnegative and
// nondecreasing, so if the total sum fits under the link curve every
// prefix does), which the differential fuzzer re-proves against shuffled
// insertion orders.
void check_link_admissibility(Ctx& ctx) {
  AdmissionControl ac(ctx.link_rate);
  PiecewiseLinear total;  // full aggregate, even past a rejection
  for (std::size_t i = 0; i < ctx.spec.classes.size(); ++i) {
    const ClassSpec& c = ctx.spec.classes[i];
    if (!ctx.leaf[i] || c.rt.is_zero()) continue;
    total = total.sum(PiecewiseLinear::from_service_curve(c.rt));
    if (!ac.admit(c.rt)) {
      ctx.report->rt_feasible = false;
      ctx.diag(Severity::kError, "rt-link-infeasible", c.name,
               "real-time curve " + to_string(c.rt) +
                   " pushes the aggregate rt obligation above the link "
                   "curve (" +
                   fmt_mbps(ctx.link_rate) +
                   "); the paper's admission condition (Section II, eq. "
                   "(5)) is violated and AdmissionControl would reject "
                   "this hierarchy");
    }
  }
  ctx.report->rt_utilization =
      static_cast<double>(total.tail_rate()) /
      static_cast<double>(ctx.link_rate);
}

// (a, recursive) Upper-limit feasibility at every node that declares an
// ul curve: the subtree's aggregate rt guarantee must fit under the cap,
// otherwise the guarantee is unfulfillable no matter what the link does.
void check_ul_admissibility(Ctx& ctx) {
  for (std::size_t i = 0; i < ctx.spec.classes.size(); ++i) {
    const ClassSpec& c = ctx.spec.classes[i];
    if (c.ul.is_zero()) continue;
    PiecewiseLinear sum;
    bool any = false;
    for (const std::size_t l : ctx.subtree_leaves(c.name)) {
      const ClassSpec& leaf = ctx.spec.classes[l];
      if (leaf.rt.is_zero()) continue;
      sum = sum.sum(PiecewiseLinear::from_service_curve(leaf.rt));
      any = true;
    }
    if (!any) continue;
    const PiecewiseLinear cap = PiecewiseLinear::from_service_curve(c.ul);
    if (!cap.dominates(sum)) {
      ctx.diag(Severity::kError, "rt-ul-infeasible", c.name,
               (ctx.leaf[i]
                    ? std::string("the class's own rt curve ")
                    : std::string("the aggregate rt guarantee of the "
                                  "subtree's leaves ")) +
                   "exceeds the upper-limit curve " + to_string(c.ul) +
                   " somewhere: the cap makes the real-time guarantee "
                   "unfulfillable");
    }
  }
}

// (c) Curve-shape lints.
void check_curve_shapes(Ctx& ctx) {
  for (std::size_t i = 0; i < ctx.spec.classes.size(); ++i) {
    const ClassSpec& c = ctx.spec.classes[i];

    if (!ctx.leaf[i] && !c.rt.is_zero()) {
      ctx.diag(Severity::kWarning, "rt-on-interior", c.name,
               "interior class declares an rt curve; only leaf classes "
               "receive real-time guarantees (the runtime keeps it inert "
               "until every child is deleted)");
    }

    if (!c.ls.is_zero()) {
      if (c.ls.rate() == 0) {
        ctx.diag(Severity::kWarning, "ls-zero-slope", c.name,
                 "link-sharing curve " + to_string(c.ls) +
                     " goes flat after " + fmt_ms(c.ls.d) +
                     ": once the first segment is spent the class stops "
                     "competing for bandwidth and its backlog can grow "
                     "without bound");
      } else if (c.ls.m1 == 0 && c.ls.d > 0) {
        ctx.diag(Severity::kWarning, "ls-zero-slope", c.name,
                 "link-sharing curve " + to_string(c.ls) +
                     " has a zero-slope first segment: the class receives "
                     "no share for the first " + fmt_ms(c.ls.d) +
                     " of every backlog period");
      }
    }

    if (!c.ul.is_zero() && !c.ls.is_zero()) {
      const PiecewiseLinear cap = PiecewiseLinear::from_service_curve(c.ul);
      const PiecewiseLinear share = PiecewiseLinear::from_service_curve(c.ls);
      if (!cap.dominates(share)) {
        ctx.diag(Severity::kWarning, "ul-below-ls", c.name,
                 "upper-limit curve " + to_string(c.ul) +
                     " does not dominate the link-sharing curve " +
                     to_string(c.ls) +
                     ": part of the declared share can never be "
                     "delivered (lower ls to the cap, or raise ul)");
      }
    }
  }
}

// (c) Link-sharing consistency: children's long-term shares must fit in
// the parent's (the link's, at top level).  Transient (first-segment)
// excess is fine — that is what borrowing is for — so only tail rates
// are compared.
void check_ls_shares(Ctx& ctx) {
  for (const auto& [parent, kids] : ctx.children) {
    RateBps sum = 0;
    for (const std::size_t k : kids) sum += ctx.spec.classes[k].ls.rate();
    if (sum == 0) continue;
    RateBps capacity;
    std::string where;
    if (parent.empty()) {
      capacity = ctx.link_rate;
      where = "the link rate";
    } else {
      const ClassSpec& p = ctx.spec.classes[ctx.index.at(parent)];
      if (p.ls.is_zero()) continue;  // share undefined; nothing to bind to
      capacity = p.ls.rate();
      where = "parent '" + parent + "'s long-term share";
    }
    if (sum > capacity) {
      const std::string cls = parent.empty() ? "" : parent;
      ctx.diag(Severity::kWarning, "ls-oversubscribed", cls,
               "children's link-sharing shares sum to " + fmt_mbps(sum) +
                   ", exceeding " + where + " (" + fmt_mbps(capacity) +
                   "): the shares are nominal rates and cannot all be "
                   "honoured at once");
      // Under an oversubscribed parent a leaf cannot count on its
      // nominal share, so a leaf with no queue limit has no bound on
      // its backlog at exactly the moment load exceeds service — the
      // overload case the robustness runtime exists for.
      for (const std::size_t k : kids) {
        const ClassSpec& kid = ctx.spec.classes[k];
        if (ctx.leaf[k] && kid.qlimit == 0) {
          ctx.diag(Severity::kWarning, "qlimit-unbounded", kid.name,
                   "leaf has no queue limit under an oversubscribed "
                   "parent: its backlog is unbounded precisely when the "
                   "siblings' load exceeds the shared capacity; set a "
                   "qlimit sized to the expected burst");
        }
      }
    }
  }

  // Sustained rt load above an interior node's share punishes siblings
  // (the fairness tension of Section III): the subtree's guarantees are
  // still met, but only by permanently borrowing the siblings' share.
  for (std::size_t i = 0; i < ctx.spec.classes.size(); ++i) {
    const ClassSpec& c = ctx.spec.classes[i];
    if (ctx.leaf[i] || c.ls.is_zero()) continue;
    RateBps rt_sum = 0;
    for (const std::size_t l : ctx.subtree_leaves(c.name)) {
      rt_sum += ctx.spec.classes[l].rt.rate();
    }
    if (rt_sum > c.ls.rate()) {
      ctx.diag(Severity::kWarning, "rt-over-ls", c.name,
               "the subtree's leaves reserve " + fmt_mbps(rt_sum) +
                   " of sustained real-time service, more than the "
                   "class's own long-term share (" + fmt_mbps(c.ls.rate()) +
                   "): the guarantees hold, but only by permanently "
                   "borrowing from siblings");
    }
  }
}

// (c) Queue limits vs declared bursts, and source-aware lints.
void check_queues_and_sources(Ctx& ctx) {
  for (std::size_t i = 0; i < ctx.spec.classes.size(); ++i) {
    const ClassSpec& c = ctx.spec.classes[i];
    if (!ctx.leaf[i]) {
      if (c.env_burst != 0 || c.env_rate != 0) {
        ctx.diag(Severity::kWarning, "envelope-on-interior", c.name,
                 "arrival envelope declared on an interior class; "
                 "envelopes describe leaf traffic and this one is "
                 "ignored");
      }
      continue;
    }
    if (c.qlimit != 0 && c.env_burst != 0) {
      const Bytes pkt = ctx.max_pkt_of(c.name);
      const Bytes capacity = static_cast<Bytes>(c.qlimit) * pkt;
      if (capacity < c.env_burst) {
        ctx.diag(Severity::kWarning, "qlimit-lt-burst", c.name,
                 "queue limit of " + std::to_string(c.qlimit) +
                     " packets (" + std::to_string(pkt) +
                     " B each) cannot hold the declared burst of " +
                     std::to_string(c.env_burst) +
                     " B: conformant traffic is guaranteed to be "
                     "tail-dropped");
      }
    }
    if (ctx.scenario != nullptr && !ctx.fed.count(c.name)) {
      ctx.diag(Severity::kNote, "class-unfed", c.name,
               "no source feeds this leaf; it reserves resources but "
               "carries no traffic in this scenario");
    }
  }
}

// (b) Per-leaf worst-case delay bounds (Theorem 2): the exact horizontal
// deviation between the declared arrival envelope and the leaf's
// *effective* guarantee min(rt, ul_self, ul_ancestors...), plus one
// max-packet transmission time for non-preemption.
void check_delay_bounds(Ctx& ctx) {
  for (std::size_t i = 0; i < ctx.spec.classes.size(); ++i) {
    const ClassSpec& c = ctx.spec.classes[i];
    if (!ctx.leaf[i]) continue;
    const bool has_env = c.env_burst != 0 || c.env_rate != 0;
    if (c.rt.is_zero()) {
      if (has_env) {
        ctx.diag(Severity::kNote, "envelope-without-rt", c.name,
                 "arrival envelope declared but the class has no rt "
                 "curve: there is no guaranteed service curve to bound "
                 "its delay against");
      }
      continue;
    }
    if (!has_env) {
      ctx.diag(Severity::kNote, "no-envelope", c.name,
               "rt class has no declared arrival envelope; add "
               "`envelope " + c.name +
                   " <burst> <rate>` to obtain a worst-case delay bound");
      continue;
    }

    // Effective guarantee: the rt curve capped by every upper limit on
    // the root path (exact pointwise min).
    PiecewiseLinear effective = PiecewiseLinear::from_service_curve(c.rt);
    std::string cur = c.name;
    while (true) {
      const ClassSpec& node = ctx.spec.classes[ctx.index.at(cur)];
      if (!node.ul.is_zero()) {
        effective =
            effective.min(PiecewiseLinear::from_service_curve(node.ul));
      }
      if (ClassSpec::is_top_level(node.parent)) break;
      cur = node.parent;
    }

    LeafDelayBound b;
    b.cls = c.name;
    b.env_burst = c.env_burst;
    b.env_rate = c.env_rate;
    b.loc = ctx.loc_of(c.name);
    if (ctx.scenario != nullptr) {
      for (const ScenarioClass& scn : ctx.scenario->classes) {
        if (scn.name == c.name && scn.env_line != 0) {
          b.loc.line = scn.env_line;
          break;
        }
      }
    }
    const PiecewiseLinear env =
        PiecewiseLinear::token_bucket(c.env_burst, c.env_rate);
    const auto gap = env.max_horizontal_gap(effective);
    if (!gap) {
      ctx.diag(Severity::kWarning, "envelope-overruns-service", c.name,
               "the arrival envelope (burst " +
                   std::to_string(c.env_burst) + " B, rate " +
                   fmt_mbps(c.env_rate) +
                   ") overruns the effective guarantee: the worst-case "
                   "delay is unbounded (raise the rt curve, lower the "
                   "envelope, or relax an upper limit on the root path)");
      b.bound = std::nullopt;
    } else {
      b.bound = sat_add(*gap, tx_time(ctx.global_max_pkt, ctx.link_rate));
    }
    ctx.report->delay_bounds.push_back(std::move(b));
  }
}

// (d) Scheduler-family portability pre-flight: which families accept the
// spec losslessly (strict mode), which degrade it (and how), which
// cannot express it at all.
void check_portability(Ctx& ctx) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    PortabilityEntry e;
    e.kind = kind;
    HierarchySpec::CompileOptions strict;
    strict.strict = true;
    try {
      (void)ctx.spec.compile(kind, ctx.link_rate, strict);
      e.lossless = true;
    } catch (const std::exception&) {
      e.lossless = false;
    }
    if (!e.lossless) {
      try {
        HierarchySpec::Compiled lossy =
            ctx.spec.compile(kind, ctx.link_rate, {});
        e.notes = std::move(lossy.notes);
      } catch (const std::exception& ex) {
        e.compiles = false;
        e.notes = {ex.what()};
      }
    }
    ctx.report->portability.push_back(std::move(e));
  }
}

// ------------------------------------------------ end-to-end route walk

// Effective guarantee of `cls` inside one node's hierarchy: the rt curve
// capped by every upper limit on the root path (the same min-fold as
// check_delay_bounds).  nullopt when the class is absent or has no rt
// curve there — the hop then offers no guaranteed service at all.
std::optional<PiecewiseLinear> hop_guarantee(const HierarchySpec& spec,
                                             const std::string& cls) {
  std::map<std::string, const ClassSpec*> by_name;
  for (const ClassSpec& c : spec.classes) by_name[c.name] = &c;
  const auto it = by_name.find(cls);
  if (it == by_name.end() || it->second->rt.is_zero()) return std::nullopt;
  PiecewiseLinear eff = PiecewiseLinear::from_service_curve(it->second->rt);
  const ClassSpec* cur = it->second;
  while (true) {
    if (!cur->ul.is_zero()) {
      eff = eff.min(PiecewiseLinear::from_service_curve(cur->ul));
    }
    if (ClassSpec::is_top_level(cur->parent)) break;
    cur = by_name.at(cur->parent);
  }
  return eff;
}

// Largest packet a node can have on the wire: sources entering at the
// node plus routed flows passing through it (their packets are forwarded
// in unchanged).  Theorem 2's non-preemption term at that hop.
Bytes node_max_pkt(const Scenario& sc, const std::string& node,
                   Bytes fallback) {
  Bytes m = fallback;
  for (const ScenarioSource& s : sc.sources) {
    const Bytes pkt =
        s.kind == ScenarioSource::Kind::kVideo ? s.mtu : s.pkt_len;
    bool touches = s.node == node;
    if (!touches) {
      if (const ScenarioRoute* r = sc.find_route(s.cls)) {
        touches = std::find(r->nodes.begin(), r->nodes.end(), node) !=
                  r->nodes.end();
      }
    }
    if (touches) m = std::max(m, pkt);
  }
  return m;
}

// Largest packet the flow itself sends (qlimit capacity sizing).
Bytes flow_max_pkt(const Scenario& sc, const std::string& cls,
                   Bytes fallback) {
  Bytes m = 0;
  for (const ScenarioSource& s : sc.sources) {
    if (s.cls != cls) continue;
    m = std::max(
        m, s.kind == ScenarioSource::Kind::kVideo ? s.mtu : s.pkt_len);
  }
  return m == 0 ? fallback : m;
}

const ScenarioClass* find_scenario_class(const Scenario& sc,
                                         const std::string& node,
                                         const std::string& cls) {
  for (const ScenarioClass& c : sc.classes) {
    if (c.node == node && c.name == cls) return &c;
  }
  return nullptr;
}

void push_diag(AnalysisReport& report, Severity sev, std::string id,
               std::string cls, std::string message, SourceLoc loc) {
  Diagnostic d;
  d.severity = sev;
  d.id = std::move(id);
  d.cls = std::move(cls);
  d.message = std::move(message);
  d.loc = std::move(loc);
  report.diagnostics.push_back(std::move(d));
}

// The tentpole: walk every route, compose the per-hop guarantees with
// min-plus convolution, propagate the arrival envelope by deconvolution,
// and report per-hop and end-to-end budgets.
//
// Per hop i the guarantee is S_i = min(rt, ul_self, ul_ancestors...)
// delayed by one max-packet transmission time (folding Theorem 2's
// non-preemption term into the curve).  Then, writing E_1 for the
// declared first-hop envelope:
//     hop delay_i    = h(E_i, S_i)        (horizontal deviation)
//     hop backlog_i  = v(E_i, S_i)        (vertical deviation)
//     E_{i+1}        = E_i (/) S_i        (output envelope, deconvolution)
//     e2e delay      = h(E_1, S_1 (*) S_2 (*) ...)
// The composed bound pays the burst only once, so it is never worse —
// and usually much better — than the sum of the per-hop bounds.  Every
// curve operation is conservative in the safe direction (convolution
// floors service down, deconvolution rounds envelopes up), so the
// reported bounds remain sound upper bounds.
void check_routes(const Scenario& sc, const AnalysisOptions& opts,
                  AnalysisReport& report) {
  for (const ScenarioRoute& r : sc.routes) {
    const SourceLoc rloc{sc.file, r.line};
    const ScenarioClass* first =
        find_scenario_class(sc, r.nodes.front(), r.cls);
    if (first == nullptr) continue;  // parser rejects this; stay safe
    if (first->env_burst == 0 && first->env_rate == 0) {
      push_diag(report, Severity::kNote, "route-no-envelope", r.cls,
                "routed flow has no arrival envelope at its first hop; "
                "declare `envelope " + r.cls +
                    " <burst> <rate>` inside node " + r.nodes.front() +
                    " to obtain end-to-end delay and backlog bounds",
                rloc);
      continue;
    }

    FlowBudget fb;
    fb.cls = r.cls;
    fb.route = r.nodes;
    fb.env_burst = first->env_burst;
    fb.env_rate = first->env_rate;
    fb.loc = rloc;

    const PiecewiseLinear env =
        PiecewiseLinear::token_bucket(first->env_burst, first->env_rate);
    std::optional<PiecewiseLinear> hop_env = env;  // E_i
    std::optional<PiecewiseLinear> e2e;            // S_1 (*) ... (*) S_i
    bool all_hops_guaranteed = true;

    for (const std::string& nname : r.nodes) {
      const ScenarioNode* node = sc.find_node(nname);
      if (node == nullptr) continue;  // parser rejects this too
      HopBudget hb;
      hb.node = nname;
      if (hop_env) {
        hb.in_burst = hop_env->pieces().front().y;
        hb.in_rate = hop_env->tail_rate();
      }
      const auto g = hop_guarantee(sc.node_hierarchy_spec(nname), r.cls);
      if (!g) {
        push_diag(report, Severity::kNote, "route-hop-without-rt",
                  nname + "." + r.cls,
                  "hop " + nname + " gives the routed flow no rt "
                  "guarantee; the end-to-end bound is unbounded",
                  rloc);
        all_hops_guaranteed = false;
        fb.hops.push_back(std::move(hb));
        break;
      }
      const PiecewiseLinear shifted = g->delayed(
          tx_time(node_max_pkt(sc, nname, opts.default_max_pkt),
                  node->rate));
      e2e = e2e ? e2e->convolve(shifted) : shifted;
      if (hop_env) {
        hb.delay = hop_env->max_horizontal_gap(shifted);
        hb.backlog = hop_env->max_vertical_gap(shifted);
        const ScenarioClass* hc = find_scenario_class(sc, nname, r.cls);
        if (hc != nullptr && hc->qlimit != 0 && hb.backlog) {
          const Bytes pkt = flow_max_pkt(sc, r.cls, opts.default_max_pkt);
          const Bytes capacity = static_cast<Bytes>(hc->qlimit) * pkt;
          if (*hb.backlog > capacity) {
            push_diag(
                report, Severity::kWarning, "hop-backlog-over-qlimit",
                nname + "." + r.cls,
                "worst-case backlog of the routed flow at hop " + nname +
                    " is " + std::to_string(*hb.backlog) +
                    " B, more than the queue limit of " +
                    std::to_string(hc->qlimit) + " packets (" +
                    std::to_string(pkt) +
                    " B each) can hold: conformant traffic can be "
                    "tail-dropped mid-route",
                SourceLoc{sc.file, hc->line});
          }
        }
        hop_env = hop_env->deconvolve(shifted);
      }
      fb.hops.push_back(std::move(hb));
    }

    if (all_hops_guaranteed && e2e) {
      fb.e2e_delay = env.max_horizontal_gap(*e2e);
    }
    Bytes total = 0;
    bool have_total = !fb.hops.empty() && all_hops_guaranteed;
    for (const HopBudget& h : fb.hops) {
      if (!h.backlog) {
        have_total = false;
        break;
      }
      total = sat_add(total, *h.backlog);
    }
    if (have_total) fb.total_backlog = total;
    report.flows.push_back(std::move(fb));
  }
}

// `deadline` budgets: routed flows check against the route-composed
// bound, single-hop classes against their Theorem 2 bound.  The error
// anchors at the deadline directive itself (exact file:line).
void check_deadlines(const Scenario& sc, AnalysisReport& report) {
  for (const ScenarioDeadline& dl : sc.deadlines) {
    const SourceLoc dloc{sc.file, dl.line};
    if (sc.find_route(dl.cls) != nullptr) {
      for (FlowBudget& f : report.flows) {
        if (f.cls != dl.cls) continue;
        f.deadline = dl.budget;
        if (!f.e2e_delay) {
          push_diag(report, Severity::kError, "e2e-budget-exceeded", dl.cls,
                    "end-to-end delay of routed flow " + dl.cls +
                        " is unbounded (no finite bound can meet the "
                        "deadline of " + fmt_ms(dl.budget) + ")",
                    dloc);
        } else if (*f.e2e_delay > dl.budget) {
          push_diag(report, Severity::kError, "e2e-budget-exceeded", dl.cls,
                    "end-to-end delay bound " + fmt_ms(*f.e2e_delay) +
                        " of routed flow " + dl.cls +
                        " exceeds the declared deadline of " +
                        fmt_ms(dl.budget),
                    dloc);
        }
      }
      // A routed class without a first-hop envelope has no FlowBudget
      // row: the deadline is then unverifiable.
      const bool has_row =
          std::any_of(report.flows.begin(), report.flows.end(),
                      [&](const FlowBudget& f) { return f.cls == dl.cls; });
      if (!has_row) {
        push_diag(report, Severity::kWarning, "deadline-unverifiable",
                  dl.cls,
                  "deadline declared for routed flow " + dl.cls +
                      " but its first hop has no arrival envelope, so no "
                      "end-to-end bound can be derived",
                  dloc);
      }
      continue;
    }
    // Unrouted class: compare every per-node Theorem 2 bound ("cls" in
    // single-node reports, "node.cls" in multi-node ones).
    bool found = false;
    for (const LeafDelayBound& b : report.delay_bounds) {
      const bool match =
          b.cls == dl.cls ||
          (b.cls.size() > dl.cls.size() + 1 &&
           b.cls.compare(b.cls.size() - dl.cls.size() - 1,
                         std::string::npos, "." + dl.cls) == 0);
      if (!match) continue;
      found = true;
      if (!b.bound) {
        push_diag(report, Severity::kError, "e2e-budget-exceeded", b.cls,
                  "worst-case delay of " + b.cls +
                      " is unbounded (no finite bound can meet the "
                      "deadline of " + fmt_ms(dl.budget) + ")",
                  dloc);
      } else if (*b.bound > dl.budget) {
        push_diag(report, Severity::kError, "e2e-budget-exceeded", b.cls,
                  "worst-case delay bound " + fmt_ms(*b.bound) + " of " +
                      b.cls + " exceeds the declared deadline of " +
                      fmt_ms(dl.budget),
                  dloc);
      }
    }
    if (!found) {
      push_diag(report, Severity::kWarning, "deadline-unverifiable", dl.cls,
                "deadline declared for " + dl.cls +
                    " but no delay bound is derivable (the class needs "
                    "both an rt curve and an arrival envelope)",
                dloc);
    }
  }
}

AnalysisReport analyze_impl(const HierarchySpec& spec, RateBps link_rate,
                            const Scenario* scenario,
                            const AnalysisOptions& opts) {
  ensure(link_rate > 0, Errc::kInvalidArgument,
         "analysis link rate must be > 0");
  spec.validate();

  AnalysisReport report;
  report.file = scenario != nullptr ? scenario->file : "";
  report.num_classes = spec.classes.size();
  report.link_rate = link_rate;
  Ctx ctx{spec, link_rate, scenario, opts, {}, {}, {}, 0, {}, {}, &report};

  for (std::size_t i = 0; i < spec.classes.size(); ++i) {
    ctx.index[spec.classes[i].name] = i;
    const std::string& parent = spec.classes[i].parent;
    ctx.children[ClassSpec::is_top_level(parent) ? "" : parent].push_back(i);
  }
  ctx.leaf.resize(spec.classes.size());
  for (std::size_t i = 0; i < spec.classes.size(); ++i) {
    ctx.leaf[i] = spec.is_leaf(spec.classes[i].name);
  }

  ctx.global_max_pkt = opts.default_max_pkt;
  if (scenario != nullptr) {
    for (const ScenarioSource& s : scenario->sources) {
      const Bytes pkt =
          s.kind == ScenarioSource::Kind::kVideo ? s.mtu : s.pkt_len;
      ctx.global_max_pkt = std::max(ctx.global_max_pkt, pkt);
      Bytes& per = ctx.class_max_pkt[s.cls];
      per = std::max(per, pkt);
      ctx.fed.insert(s.cls);
    }
  }

  check_link_admissibility(ctx);
  check_ul_admissibility(ctx);
  check_curve_shapes(ctx);
  check_ls_shares(ctx);
  check_queues_and_sources(ctx);
  check_delay_bounds(ctx);
  if (opts.portability) check_portability(ctx);

  return report;
}

}  // namespace

AnalysisReport analyze(const HierarchySpec& spec, RateBps link_rate,
                       const AnalysisOptions& opts) {
  return analyze_impl(spec, link_rate, nullptr, opts);
}

AnalysisReport analyze(const Scenario& sc, const AnalysisOptions& opts) {
  AnalysisReport report;
  if (!sc.multi_node) {
    const HierarchySpec spec = sc.to_hierarchy_spec();
    report = analyze_impl(spec, sc.link_rate, &sc, opts);
  } else {
    // Multi-node topology: each node's hierarchy is admitted against its
    // own link, so run the whole analysis once per node on a filtered
    // single-node view and merge, tagging findings "node.class".
    report.file = sc.file;
    report.link_rate = sc.link_rate;
    for (const ScenarioNode& node : sc.nodes) {
      Scenario sub;
      sub.file = sc.file;
      sub.link_rate = node.rate;
      sub.duration = sc.duration;
      sub.window = sc.window;
      sub.scheduler = sc.scheduler;
      sub.admission = sc.admission;
      sub.nodes.push_back(ScenarioNode{node.name, node.rate, node.line});
      for (const ScenarioClass& c : sc.classes) {
        if (c.node == node.name) sub.classes.push_back(c);
      }
      for (const ScenarioSource& s : sc.sources) {
        if (s.node == node.name) sub.sources.push_back(s);
      }
      // A routed class is fed on its later hops by the upstream node, not
      // by a source directive: synthesize the entry-hop sources there so
      // the unfed lint doesn't misfire and packet sizes still propagate
      // into the Theorem 2 transmission term.
      for (const ScenarioRoute& r : sc.routes) {
        if (std::find(r.nodes.begin() + 1, r.nodes.end(), node.name) ==
            r.nodes.end()) {
          continue;
        }
        for (const ScenarioSource& s : sc.sources) {
          if (s.cls != r.cls) continue;
          ScenarioSource fwd = s;
          fwd.node = node.name;
          sub.sources.push_back(std::move(fwd));
        }
      }
      const HierarchySpec spec = sub.to_hierarchy_spec();
      AnalysisReport rep = analyze_impl(spec, node.rate, &sub, opts);
      report.num_classes += rep.num_classes;
      report.rt_feasible = report.rt_feasible && rep.rt_feasible;
      report.rt_utilization =
          std::max(report.rt_utilization, rep.rt_utilization);
      for (Diagnostic& d : rep.diagnostics) {
        d.cls = d.cls.empty() ? node.name : node.name + "." + d.cls;
        report.diagnostics.push_back(std::move(d));
      }
      for (LeafDelayBound& b : rep.delay_bounds) {
        b.cls = node.name + "." + b.cls;
        report.delay_bounds.push_back(std::move(b));
      }
      for (PortabilityEntry& e : rep.portability) {
        for (std::string& n : e.notes) n = node.name + ": " + n;
      }
      if (report.portability.empty()) {
        report.portability = std::move(rep.portability);
      } else {
        for (std::size_t i = 0; i < rep.portability.size(); ++i) {
          PortabilityEntry& m = report.portability[i];
          PortabilityEntry& e = rep.portability[i];
          m.compiles = m.compiles && e.compiles;
          m.lossless = m.lossless && e.lossless;
          for (std::string& n : e.notes) m.notes.push_back(std::move(n));
        }
      }
    }
    check_routes(sc, opts, report);
  }
  check_deadlines(sc, report);
  if (!sc.events.empty()) {
    Diagnostic d;
    d.severity = Severity::kNote;
    d.id = "timed-events-unanalyzed";
    d.message = std::to_string(sc.events.size()) +
                " timed `at` event(s) are applied at run time "
                "(admission-gated when `admission` is set) and are outside "
                "the static analysis";
    d.loc.file = sc.file;
    d.loc.line = sc.events.front().line;
    report.diagnostics.push_back(std::move(d));
  }
  return report;
}

// ---------------------------------------------------------------- output

std::size_t AnalysisReport::errors() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kError;
                    }));
}

std::size_t AnalysisReport::warnings() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kWarning;
                    }));
}

std::size_t AnalysisReport::notes() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kNote;
                    }));
}

std::string AnalysisReport::to_text() const {
  std::ostringstream os;
  os << (file.empty() ? "<spec>" : file) << ": " << num_classes
     << " classes, link " << fmt_mbps(link_rate) << "\n";
  for (const Diagnostic& d : diagnostics) os << d.to_string() << "\n";
  os << "rt admissibility: "
     << (rt_feasible ? "feasible" : "INFEASIBLE");
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  " (long-term reservation %.1f%% of the link)\n",
                  rt_utilization * 100.0);
    os << buf;
  }
  if (!delay_bounds.empty()) {
    os << "worst-case delay bounds (Theorem 2):\n";
    for (const LeafDelayBound& b : delay_bounds) {
      os << "  " << b.cls << ": ";
      if (b.bound) {
        os << fmt_ms(*b.bound);
      } else {
        os << "unbounded";
      }
      os << "  (envelope burst " << b.env_burst << " B, rate "
         << fmt_mbps(b.env_rate) << ")\n";
    }
  }
  if (!flows.empty()) {
    os << "end-to-end budgets (min-plus route composition):\n";
    for (const FlowBudget& f : flows) {
      os << "  " << f.cls << " via";
      for (const std::string& n : f.route) os << " " << n;
      os << ": delay "
         << (f.e2e_delay ? fmt_ms(*f.e2e_delay) : std::string("unbounded"));
      if (f.total_backlog) {
        os << ", backlog <= " << *f.total_backlog << " B";
      }
      if (f.deadline) os << ", deadline " << fmt_ms(*f.deadline);
      os << "  (envelope burst " << f.env_burst << " B, rate "
         << fmt_mbps(f.env_rate) << ")\n";
      for (const HopBudget& h : f.hops) {
        os << "    " << h.node << ": delay "
           << (h.delay ? fmt_ms(*h.delay) : std::string("unbounded"))
           << ", backlog "
           << (h.backlog ? std::to_string(*h.backlog) + " B"
                         : std::string("unbounded"))
           << "  (in burst " << h.in_burst << " B, rate "
           << fmt_mbps(h.in_rate) << ")\n";
      }
    }
  }
  if (!portability.empty()) {
    os << "portability:";
    for (const PortabilityEntry& e : portability) {
      os << " " << to_string(e.kind) << "="
         << (e.lossless
                 ? "lossless"
                 : (e.compiles
                        ? "lossy(" + std::to_string(e.notes.size()) + ")"
                        : "impossible"));
    }
    os << "\n";
  }
  os << "summary: " << errors() << " error(s), " << warnings()
     << " warning(s), " << notes() << " note(s)\n";
  return os.str();
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

// `"key_ns": N,"key_ms": x` (or null/null) for an optional duration.
void json_opt_time(std::ostringstream& os, const char* key,
                   const std::optional<TimeNs>& t) {
  if (t) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s_ns\": %llu,\"%s_ms\": %.6g", key,
                  static_cast<unsigned long long>(*t), key,
                  static_cast<double>(*t) / 1e6);
    os << buf;
  } else {
    os << "\"" << key << "_ns\": null,\"" << key << "_ms\": null";
  }
}

}  // namespace

std::string AnalysisReport::to_json() const {
  std::ostringstream os;
  os << "{";
  os << "\"schema\": \"hfsc-lint-report-v2\",";
  os << "\"file\": \"" << json_escape(file) << "\",";
  os << "\"classes\": " << num_classes << ",";
  os << "\"link_rate_Bps\": " << link_rate << ",";
  os << "\"rt_feasible\": " << (rt_feasible ? "true" : "false") << ",";
  {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "\"rt_utilization\": %.6g,",
                  rt_utilization);
    os << buf;
  }
  os << "\"errors\": " << errors() << ",";
  os << "\"warnings\": " << warnings() << ",";
  os << "\"notes\": " << notes() << ",";
  os << "\"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i != 0) os << ",";
    os << "{\"severity\": \"" << to_string(d.severity) << "\","
       << "\"id\": \"" << json_escape(d.id) << "\","
       << "\"class\": \"" << json_escape(d.cls) << "\","
       << "\"file\": \"" << json_escape(d.loc.file) << "\","
       << "\"line\": " << d.loc.line << ","
       << "\"message\": \"" << json_escape(d.message) << "\"}";
  }
  os << "],";
  os << "\"delay_bounds\": [";
  for (std::size_t i = 0; i < delay_bounds.size(); ++i) {
    const LeafDelayBound& b = delay_bounds[i];
    if (i != 0) os << ",";
    os << "{\"class\": \"" << json_escape(b.cls) << "\","
       << "\"burst_bytes\": " << b.env_burst << ","
       << "\"rate_Bps\": " << b.env_rate << ",";
    if (b.bound) {
      char buf[64];
      std::snprintf(buf, sizeof(buf),
                    "\"bound_ns\": %llu,\"bound_ms\": %.6g}",
                    static_cast<unsigned long long>(*b.bound),
                    static_cast<double>(*b.bound) / 1e6);
      os << buf;
    } else {
      os << "\"bound_ns\": null,\"bound_ms\": null}";
    }
  }
  os << "],";
  os << "\"flows\": [";
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const FlowBudget& f = flows[i];
    if (i != 0) os << ",";
    os << "{\"class\": \"" << json_escape(f.cls) << "\",\"route\": [";
    for (std::size_t j = 0; j < f.route.size(); ++j) {
      if (j != 0) os << ",";
      os << "\"" << json_escape(f.route[j]) << "\"";
    }
    os << "],\"env_burst_bytes\": " << f.env_burst
       << ",\"env_rate_Bps\": " << f.env_rate << ",";
    json_opt_time(os, "e2e_bound", f.e2e_delay);
    os << ",\"total_backlog_bytes\": ";
    if (f.total_backlog) {
      os << *f.total_backlog;
    } else {
      os << "null";
    }
    os << ",";
    json_opt_time(os, "deadline", f.deadline);
    os << ",\"hops\": [";
    for (std::size_t j = 0; j < f.hops.size(); ++j) {
      const HopBudget& h = f.hops[j];
      if (j != 0) os << ",";
      os << "{\"node\": \"" << json_escape(h.node)
         << "\",\"in_burst_bytes\": " << h.in_burst
         << ",\"in_rate_Bps\": " << h.in_rate << ",";
      json_opt_time(os, "delay", h.delay);
      os << ",\"backlog_bytes\": ";
      if (h.backlog) {
        os << *h.backlog;
      } else {
        os << "null";
      }
      os << "}";
    }
    os << "]}";
  }
  os << "],";
  os << "\"portability\": [";
  for (std::size_t i = 0; i < portability.size(); ++i) {
    const PortabilityEntry& e = portability[i];
    if (i != 0) os << ",";
    os << "{\"family\": \"" << to_string(e.kind) << "\","
       << "\"compiles\": " << (e.compiles ? "true" : "false") << ","
       << "\"lossless\": " << (e.lossless ? "true" : "false") << ","
       << "\"notes\": [";
    for (std::size_t j = 0; j < e.notes.size(); ++j) {
      if (j != 0) os << ",";
      os << "\"" << json_escape(e.notes[j]) << "\"";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string to_sarif(const std::vector<AnalysisReport>& reports) {
  // One run, one result per diagnostic; rules collected in first-seen
  // order so ruleIndex stays stable across the document.
  std::vector<std::string> rules;
  std::map<std::string, std::size_t> rule_index;
  for (const AnalysisReport& r : reports) {
    for (const Diagnostic& d : r.diagnostics) {
      if (rule_index.emplace(d.id, rules.size()).second) {
        rules.push_back(d.id);
      }
    }
  }
  std::ostringstream os;
  os << "{\"$schema\": "
        "\"https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/"
        "sarif-schema-2.1.0.json\","
     << "\"version\": \"2.1.0\",\"runs\": [{\"tool\": {\"driver\": {"
     << "\"name\": \"hfsc_lint\","
     << "\"informationUri\": \"docs/ANALYSIS.md\",\"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i != 0) os << ",";
    os << "{\"id\": \"" << json_escape(rules[i]) << "\"}";
  }
  os << "]}},\"results\": [";
  bool first = true;
  for (const AnalysisReport& r : reports) {
    for (const Diagnostic& d : r.diagnostics) {
      if (!first) os << ",";
      first = false;
      const char* level = "note";
      if (d.severity == Severity::kError) level = "error";
      if (d.severity == Severity::kWarning) level = "warning";
      os << "{\"ruleId\": \"" << json_escape(d.id) << "\","
         << "\"ruleIndex\": " << rule_index.at(d.id) << ","
         << "\"level\": \"" << level << "\","
         << "\"message\": {\"text\": \""
         << json_escape((d.cls.empty() ? "" : d.cls + ": ") + d.message)
         << "\"}";
      const std::string& uri = d.loc.file.empty() ? r.file : d.loc.file;
      if (!uri.empty()) {
        os << ",\"locations\": [{\"physicalLocation\": "
              "{\"artifactLocation\": {\"uri\": \""
           << json_escape(uri) << "\"}";
        if (d.loc.line != 0) {
          os << ",\"region\": {\"startLine\": " << d.loc.line << "}";
        }
        os << "}}]";
      }
      os << "}";
    }
  }
  os << "]}]}";
  return os.str();
}

}  // namespace hfsc
