// The common packet-scheduler interface.
//
// A scheduler owns per-class packet queues.  The link model calls
// enqueue() when a packet's last bit arrives and dequeue() when the
// transmitter goes idle.  Schedulers are event-driven and passive: all
// notions of time come in through the `now` arguments.
//
// dequeue() may return std::nullopt even when packets are queued — a
// scheduler with shaping elements (an H-FSC class with only a real-time
// curve, or an upper-limit curve) can refuse to release work early.  In
// that case next_wakeup() reports when the decision could change so the
// link can re-arm its transmitter.
//
// The interface also carries a small capability/stats surface
// (capabilities(), counters(), class_drops()) so generic layers — the
// scenario engine, the comparison tool, the throughput bench — can drive
// any family through one code path and *skip* features a family cannot
// express instead of downcasting or crashing (see
// config/hierarchy_spec.hpp for the compilers that target it).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "sched/packet.hpp"
#include "util/errors.hpp"
#include "util/types.hpp"

namespace hfsc {

// What a scheduler family can express.  Generic layers branch on these
// flags; a false flag means the corresponding configuration is dropped or
// approximated by the family's HierarchySpec compiler (documented in
// docs/SCHEDULERS.md), never that it crashes.
struct SchedCapabilities {
  bool hierarchy = false;        // interior classes are meaningful
  bool nonlinear_curves = false; // two-piece (concave/convex) curves kept
  bool decoupled_delay = false;  // delay guarantee independent of rate
  bool shaping = false;          // may refuse to send while backlogged
  bool upper_limit = false;      // can cap a class's service
  bool per_class_drops = false;  // class_drops() is meaningful
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

 protected:
  // Concrete schedulers may be movable (checkpoint restore returns an Hfsc
  // by value); moving through a Scheduler* is still impossible.
  Scheduler(Scheduler&&) = default;
  Scheduler& operator=(Scheduler&&) = default;

 public:

  // Accepts a packet for pkt.cls at time `now` (== pkt.arrival normally).
  virtual void enqueue(TimeNs now, Packet pkt) = 0;

  // Releases the next packet to transmit, or nullopt if nothing may be
  // sent at `now`.  `now` must be nondecreasing across calls.
  virtual std::optional<Packet> dequeue(TimeNs now) = 0;

  // Releases up to `max_pkts` packets at `now`, appending them to `out`,
  // and returns how many were released.  Semantically exactly a loop of
  // single dequeue() calls stopping at the first nullopt — same packet
  // order, same resulting scheduler state — which is what this default
  // does, so every family supports batching.  Families with a batched
  // hot path (Hfsc) override it to amortize per-call overhead; the
  // override must stay packet-for-packet bit-identical to the loop
  // (pinned by tests/test_batch_ablation_fuzz.cpp).
  virtual std::size_t dequeue_batch(TimeNs now, std::size_t max_pkts,
                                    std::vector<Packet>& out) {
    std::size_t n = 0;
    while (n < max_pkts) {
      std::optional<Packet> p = dequeue(now);
      if (!p) break;
      out.push_back(*p);
      ++n;
    }
    return n;
  }

  virtual std::size_t backlog_packets() const noexcept = 0;
  virtual Bytes backlog_bytes() const noexcept = 0;

  // Earliest future time at which dequeue() might return a packet when it
  // just returned nullopt while backlogged.  kTimeInfinity for pure
  // work-conserving schedulers (never refuse while backlogged).
  virtual TimeNs next_wakeup(TimeNs /*now*/) const noexcept {
    return kTimeInfinity;
  }

  // Feature flags of the concrete family (see SchedCapabilities).
  virtual SchedCapabilities capabilities() const noexcept { return {}; }

  // Aggregate data-path counters.  Families without a hardened data path
  // report zeros.
  virtual DataPathCounters counters() const noexcept { return {}; }

  // Packets dropped for one class (queue limits plus malformed events);
  // 0 for families that do not track drops per class.
  virtual std::uint64_t class_drops(ClassId /*cls*/) const noexcept {
    return 0;
  }

  // Short human-readable family name ("H-FSC", "CBQ", …).  Returns a view
  // of storage owned by the scheduler (or a string literal) so the hot
  // paths that log or label results never pay an allocation per call.
  virtual std::string_view name() const noexcept = 0;

  bool empty() const noexcept { return backlog_packets() == 0; }
};

}  // namespace hfsc
