// The common packet-scheduler interface.
//
// A scheduler owns per-class packet queues.  The link model calls
// enqueue() when a packet's last bit arrives and dequeue() when the
// transmitter goes idle.  Schedulers are event-driven and passive: all
// notions of time come in through the `now` arguments.
//
// dequeue() may return std::nullopt even when packets are queued — a
// scheduler with shaping elements (an H-FSC class with only a real-time
// curve, or an upper-limit curve) can refuse to release work early.  In
// that case next_wakeup() reports when the decision could change so the
// link can re-arm its transmitter.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "sched/packet.hpp"
#include "util/types.hpp"

namespace hfsc {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

 protected:
  // Concrete schedulers may be movable (checkpoint restore returns an Hfsc
  // by value); moving through a Scheduler* is still impossible.
  Scheduler(Scheduler&&) = default;
  Scheduler& operator=(Scheduler&&) = default;

 public:

  // Accepts a packet for pkt.cls at time `now` (== pkt.arrival normally).
  virtual void enqueue(TimeNs now, Packet pkt) = 0;

  // Releases the next packet to transmit, or nullopt if nothing may be
  // sent at `now`.  `now` must be nondecreasing across calls.
  virtual std::optional<Packet> dequeue(TimeNs now) = 0;

  virtual std::size_t backlog_packets() const noexcept = 0;
  virtual Bytes backlog_bytes() const noexcept = 0;

  // Earliest future time at which dequeue() might return a packet when it
  // just returned nullopt while backlogged.  kTimeInfinity for pure
  // work-conserving schedulers (never refuse while backlogged).
  virtual TimeNs next_wakeup(TimeNs /*now*/) const noexcept {
    return kTimeInfinity;
  }

  virtual std::string name() const = 0;

  bool empty() const noexcept { return backlog_packets() == 0; }
};

}  // namespace hfsc
