#include "sched/pfq_sched.hpp"

namespace hfsc {

ClassId PfqSched::add_session(RateBps weight) {
  ensure(weight > 0, Errc::kInvalidArgument, "session weight must be > 0");
  if (child_of_.empty()) child_of_.push_back(0);  // burn id 0
  child_of_.push_back(server_.add_child(weight));
  const ClassId id = static_cast<ClassId>(child_of_.size() - 1);
  queues_.ensure(id);
  return id;
}

void PfqSched::enqueue(TimeNs /*now*/, Packet pkt) {
  if (pkt.cls < 1 || pkt.cls >= child_of_.size()) {
    ++counters_.bad_class;
    return;
  }
  if (pkt.len == 0) {
    ++counters_.zero_len;
    return;
  }
  if (pkt.len > kMaxSanePacketLen) {
    ++counters_.oversized;
    return;
  }
  const bool was_empty = !queues_.has(pkt.cls);
  queues_.push(pkt);
  if (was_empty) {
    server_.child_backlogged(child_of_[pkt.cls], pkt.len);
  }
}

std::optional<Packet> PfqSched::dequeue(TimeNs /*now*/) {
  if (!server_.any_backlogged()) return std::nullopt;
  const std::uint32_t c = server_.pick();
  // Child indices are ClassId - 1 by construction.
  const ClassId cls = static_cast<ClassId>(c + 1);
  Packet p = queues_.pop(cls);
  server_.charge(p.len);
  if (queues_.has(cls)) {
    server_.child_next_head(c, queues_.head(cls).len);
  } else {
    server_.child_empty(c);
  }
  return p;
}

std::string_view PfqSched::name() const noexcept {
  switch (policy_) {
    case PfqPolicy::SSF:
      return "PFQ-SSF";
    case PfqPolicy::SFF:
      return "PFQ-SFF";
    case PfqPolicy::SEFF:
      return "WF2Q+";
  }
  return "PFQ";
}

}  // namespace hfsc
