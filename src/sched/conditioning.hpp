// Traffic conditioning elements: token-bucket policing and RED, as
// decorators over any Scheduler.
//
// The service-curve guarantees of Section II are promises about *service*;
// they only translate into delay bounds when the arrivals stay inside an
// envelope (the (u, d, r) triple of Fig. 7 presumes conformant sources,
// and curve/piecewise.hpp computes the bound from a token-bucket
// envelope).  The authors' ALTQ framework pairs the scheduler with
// conditioners for exactly this reason; these decorators provide the
// equivalent substrate:
//
//  * Policed — per-class token bucket; nonconforming packets are dropped
//    before they can poison the class's queue (and its guarantee).
//  * Red — per-class Random Early Detection on the queue the decorator
//    tracks; drops probabilistically between min_th and max_th of EWMA
//    queue occupancy (Floyd & Jacobson 1993), keeping bulk TCP-like
//    classes from standing-queue buildup.
//
// Decorators stack: Red(Policed(Hfsc)) works.
#pragma once

#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace hfsc {

// Stand-alone token bucket, also usable directly (tests, sources).
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(Bytes burst, RateBps rate)
      : burst_(burst), rate_(rate), tokens_(burst) {}

  // True (and consumes tokens) iff a len-byte packet conforms at `now`.
  bool conforms(TimeNs now, Bytes len) noexcept {
    refill(now);
    if (len > tokens_) return false;
    tokens_ -= len;
    return true;
  }

  Bytes tokens(TimeNs now) noexcept {
    refill(now);
    return tokens_;
  }

 private:
  void refill(TimeNs now) noexcept {
    if (now <= last_) return;
    tokens_ = std::min(burst_, sat_add(tokens_, seg_x2y(now - last_, rate_)));
    last_ = now;
  }

  Bytes burst_ = 0;
  RateBps rate_ = 0;
  Bytes tokens_ = 0;
  TimeNs last_ = 0;
};

class Policed final : public Scheduler {
 public:
  explicit Policed(Scheduler& inner)
      : inner_(inner), name_(std::string(inner.name()) + "+police") {}

  // Installs a (burst, rate) bucket for a class.  Classes without a
  // bucket pass through untouched.
  void set_policer(ClassId cls, Bytes burst, RateBps rate);

  void enqueue(TimeNs now, Packet pkt) override;
  std::optional<Packet> dequeue(TimeNs now) override {
    return inner_.dequeue(now);
  }
  std::size_t backlog_packets() const noexcept override {
    return inner_.backlog_packets();
  }
  Bytes backlog_bytes() const noexcept override {
    return inner_.backlog_bytes();
  }
  TimeNs next_wakeup(TimeNs now) const noexcept override {
    return inner_.next_wakeup(now);
  }
  SchedCapabilities capabilities() const noexcept override {
    return inner_.capabilities();
  }
  DataPathCounters counters() const noexcept override {
    return inner_.counters();
  }
  std::uint64_t class_drops(ClassId cls) const noexcept override {
    return inner_.class_drops(cls);
  }
  std::string_view name() const noexcept override { return name_; }

  std::uint64_t dropped(ClassId cls) const {
    return cls < state_.size() ? state_[cls].dropped : 0;
  }
  std::uint64_t passed(ClassId cls) const {
    return cls < state_.size() ? state_[cls].passed : 0;
  }

 private:
  struct State {
    bool enabled = false;
    TokenBucket bucket;
    std::uint64_t dropped = 0;
    std::uint64_t passed = 0;
  };

  Scheduler& inner_;
  std::string name_;  // backs the name() view
  std::vector<State> state_;
};

struct RedParams {
  Bytes min_th = 0;      // EWMA queue depth where dropping starts
  Bytes max_th = 0;      // depth where drop probability reaches max_p
  double max_p = 0.1;    // drop probability at max_th
  double weight = 0.002; // EWMA weight per arrival
};

class Red final : public Scheduler {
 public:
  Red(Scheduler& inner, std::uint64_t seed)
      : inner_(inner), name_(std::string(inner.name()) + "+red"), rng_(seed) {}

  void configure(ClassId cls, const RedParams& params);

  void enqueue(TimeNs now, Packet pkt) override;
  std::optional<Packet> dequeue(TimeNs now) override;
  std::size_t backlog_packets() const noexcept override {
    return inner_.backlog_packets();
  }
  Bytes backlog_bytes() const noexcept override {
    return inner_.backlog_bytes();
  }
  TimeNs next_wakeup(TimeNs now) const noexcept override {
    return inner_.next_wakeup(now);
  }
  SchedCapabilities capabilities() const noexcept override {
    return inner_.capabilities();
  }
  DataPathCounters counters() const noexcept override {
    return inner_.counters();
  }
  std::uint64_t class_drops(ClassId cls) const noexcept override {
    return inner_.class_drops(cls);
  }
  std::string_view name() const noexcept override { return name_; }

  std::uint64_t dropped(ClassId cls) const {
    return cls < state_.size() ? state_[cls].dropped : 0;
  }
  double avg_queue_bytes(ClassId cls) const {
    return cls < state_.size() ? state_[cls].avg : 0.0;
  }

 private:
  struct State {
    bool enabled = false;
    RedParams params;
    double avg = 0.0;       // EWMA of queued bytes
    Bytes queued = 0;       // actual queued bytes for this class
    std::uint64_t dropped = 0;
  };

  Scheduler& inner_;
  std::string name_;  // backs the name() view
  Rng rng_;
  std::vector<State> state_;
};

}  // namespace hfsc
