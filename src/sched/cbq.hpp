// Class-Based Queueing (Floyd & Van Jacobson) — simplified.
//
// CBQ is the hierarchical link-sharing scheme the paper positions itself
// against (Section VIII): instead of virtual times derived from service
// curves, CBQ decides whether a class is over its allocation with a
// *rate estimator* (the exponentially-weighted "avgidle" of inter-packet
// gaps) and lets an overlimit class keep sending only while it can borrow
// from an underlimit ancestor; when no backlogged class may send, the
// link idles until the earliest estimator recovery.
//
// This implementation keeps CBQ's essential machinery — per-class
// avgidle estimators over the whole hierarchy, ancestor borrowing,
// overlimit delay, weighted round robin among eligible leaves — and
// omits the engineering extras of the full qdisc (priority levels, the
// top-level optimization, ewma-selectable constants).  It reproduces the
// behaviours the paper criticizes: link-sharing accuracy limited by the
// estimator's time constant, and delay inherently coupled to bandwidth.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sched/class_queues.hpp"
#include "sched/scheduler.hpp"
#include "util/errors.hpp"

namespace hfsc {

class Cbq final : public Scheduler {
 public:
  // avg_const is the EWMA weight denominator (the classic 1/16).
  // Throws Error{kInvalidArgument} on a zero link rate or avg_const <= 1.
  explicit Cbq(RateBps link_rate, int avg_const = 16);

  // Adds a class with `rate` (its allocation) under `parent`
  // (kRootClass for top level).  `borrow` lets it exceed the allocation
  // while an ancestor is underlimit.  Only leaves queue packets.
  // Throws Error on an unknown parent or zero rate.
  ClassId add_class(ClassId parent, RateBps rate, bool borrow = true);

  // Data path — never throws; packets for unknown or interior classes
  // and zero-length/oversized packets are dropped and counted.
  void enqueue(TimeNs now, Packet pkt) override;
  std::optional<Packet> dequeue(TimeNs now) override;

  std::size_t backlog_packets() const noexcept override {
    return queues_.packets();
  }
  Bytes backlog_bytes() const noexcept override { return queues_.bytes(); }
  TimeNs next_wakeup(TimeNs now) const noexcept override;
  SchedCapabilities capabilities() const noexcept override {
    SchedCapabilities c;
    c.hierarchy = true;
    c.shaping = true;  // an overlimit class that may not borrow waits
    return c;
  }
  DataPathCounters counters() const noexcept override { return counters_; }
  std::string_view name() const noexcept override { return "CBQ"; }

  // Estimator introspection (tests).
  double avgidle_ns(ClassId cls) const { return nodes_[cls].avgidle; }
  bool underlimit(ClassId cls) const { return nodes_[cls].avgidle >= 0.0; }
  const DataPathCounters& data_path_counters() const noexcept {
    return counters_;
  }

 private:
  struct Node {
    ClassId parent = kRootClass;
    RateBps rate = 0;
    bool borrow = true;
    bool is_leaf = true;
    int level = 1;                  // leaf = 1; parent = max(child)+1
    std::size_t subtree_backlog = 0;  // queued packets in the subtree
    // Estimator state.
    double avgidle = 0.0;   // ns, clamped to [-maxidle, maxidle]
    double maxidle = 0.0;   // clamp horizon (ns)
    TimeNs last = 0;        // last departure charged to this class
    TimeNs undertime = 0;   // when an overlimit class may send again
    // WRR state (leaves).
    Bytes quantum = 1500;
    Bytes deficit = 0;
    bool in_round = false;
  };

  bool underlimit(const Node& n, TimeNs now) const noexcept {
    return n.avgidle >= 0.0 || now >= n.undertime;
  }
  // Floyd's formal link-sharing guideline: the lowest level at which some
  // backlogged class is underlimit (an "unsatisfied" class); borrowing is
  // only permitted from ancestors at or below that level.
  int min_unsatisfied_level(TimeNs now) const;
  // Memoized front-end for min_unsatisfied_level().  Between borrow-state
  // mutations (estimator charges, backlog changes — tracked by
  // borrow_gen_) the unsatisfied set can only change when the clock
  // crosses a blocked class's undertime, so the eager full-tree scan is
  // re-run only on a generation bump, a clock regression, or crossing the
  // cached validity horizon.  Steady-state dequeues hit the cache.
  int unsat_level_lazy(TimeNs now);
  bool may_send(ClassId cls, TimeNs now, int unsat_level) const;
  void charge(ClassId cls, Bytes len, TimeNs now);

  RateBps link_rate_;
  double w_;  // EWMA weight (1/avg_const)
  std::vector<Node> nodes_;
  ClassQueues queues_;
  std::deque<ClassId> round_;  // backlogged leaves, WRR order
  DataPathCounters counters_;

  // Lazy unsatisfied-level cache (see unsat_level_lazy).
  std::uint64_t borrow_gen_ = 0;       // bumped on any borrow-state change
  std::uint64_t unsat_cache_gen_ = ~std::uint64_t{0};
  TimeNs unsat_cache_now_ = 0;   // `now` the cache was computed at
  TimeNs unsat_cache_next_ = 0;  // earliest undertime that could change it
  int unsat_cache_lvl_ = 0;
};

}  // namespace hfsc
