#include "sched/fsc_flat.hpp"

#include <algorithm>
#include <cassert>

namespace hfsc {

ClassId FscFlat::add_session(const ServiceCurve& sc) {
  assert(sc.is_supported() && !sc.is_zero());
  if (sessions_.empty()) sessions_.emplace_back();  // burn id 0
  sessions_.push_back(Session{sc, RuntimeCurve{}, 0, 0, false});
  const ClassId id = static_cast<ClassId>(sessions_.size() - 1);
  queues_.ensure(id);
  return id;
}

TimeNs FscFlat::system_vt() const noexcept {
  if (by_vt_.empty()) return vt_watermark_;
  const TimeNs vmin = by_vt_.top_key();
  // Average without overflow.
  return vmin / 2 + vt_watermark_ / 2 + ((vmin & 1) & (vt_watermark_ & 1));
}

void FscFlat::enqueue(TimeNs /*now*/, Packet pkt) {
  assert(pkt.cls < sessions_.size());
  Session& s = sessions_[pkt.cls];
  const bool was_empty = !queues_.has(pkt.cls);
  queues_.push(pkt);
  if (was_empty) {
    const TimeNs v = system_vt();
    if (!s.ever_active) {
      s.vc = RuntimeCurve(s.sc, v, 0);
      s.ever_active = true;
    } else {
      s.vc.min_with(s.sc, v, s.work);  // eq. (12)
    }
    s.vt = s.vc.y2x(s.work);
    by_vt_.push(pkt.cls, s.vt);
    vt_watermark_ = std::max(vt_watermark_, s.vt);
  }
}

std::optional<Packet> FscFlat::dequeue(TimeNs /*now*/) {
  if (by_vt_.empty()) return std::nullopt;
  const ClassId cls = by_vt_.top_id();  // SSF: smallest virtual time
  Session& s = sessions_[cls];
  Packet p = queues_.pop(cls);
  s.work += p.len;
  s.vt = s.vc.y2x(s.work);
  vt_watermark_ = std::max(vt_watermark_, s.vt);
  if (queues_.has(cls)) {
    by_vt_.update(cls, s.vt);
  } else {
    by_vt_.erase(cls);
  }
  return p;
}

}  // namespace hfsc
