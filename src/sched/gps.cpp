#include "sched/gps.hpp"

#include <algorithm>

namespace hfsc {

void FluidGps::advance(TimeNs t) {
  if (t <= now_) return;
  double remaining_s =
      static_cast<double>(t - now_) / static_cast<double>(kNsPerSec);
  now_ = t;

  // Piecewise-constant share evolution: serve until the next session
  // drains, redistribute, repeat.
  while (remaining_s > 1e-15) {
    double total_w = 0.0;
    for (const Session& s : sessions_) {
      if (s.backlog > 1e-9) total_w += s.weight;
    }
    if (total_w <= 0.0) return;  // idle

    // Time until the first backlogged session drains at current shares.
    double first_drain = remaining_s;
    for (const Session& s : sessions_) {
      if (s.backlog <= 1e-9) continue;
      const double rate = capacity_ * s.weight / total_w;  // bytes/s
      if (rate <= 0.0) continue;
      first_drain = std::min(first_drain, s.backlog / rate);
    }
    const double step = std::min(remaining_s, first_drain);
    for (Session& s : sessions_) {
      if (s.backlog <= 1e-9) continue;
      const double rate = capacity_ * s.weight / total_w;
      const double amount = std::min(s.backlog, rate * step);
      s.backlog -= amount;
      s.served += amount;
      if (s.backlog < 1e-9) s.backlog = 0.0;
    }
    remaining_s -= step;
    // Guard against numerical stalls when a drain time rounds to ~0.
    if (step <= 1e-15) break;
  }
}

}  // namespace hfsc
