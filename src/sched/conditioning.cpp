#include "sched/conditioning.hpp"

#include <algorithm>

namespace hfsc {

void Policed::set_policer(ClassId cls, Bytes burst, RateBps rate) {
  if (cls >= state_.size()) state_.resize(cls + 1);
  state_[cls].enabled = true;
  state_[cls].bucket = TokenBucket(burst, rate);
}

void Policed::enqueue(TimeNs now, Packet pkt) {
  if (pkt.cls < state_.size() && state_[pkt.cls].enabled) {
    State& s = state_[pkt.cls];
    if (!s.bucket.conforms(now, pkt.len)) {
      ++s.dropped;
      return;
    }
    ++s.passed;
  }
  inner_.enqueue(now, pkt);
}

void Red::configure(ClassId cls, const RedParams& params) {
  if (cls >= state_.size()) state_.resize(cls + 1);
  state_[cls].enabled = true;
  state_[cls].params = params;
}

void Red::enqueue(TimeNs now, Packet pkt) {
  if (pkt.cls < state_.size() && state_[pkt.cls].enabled) {
    State& s = state_[pkt.cls];
    // EWMA on every arrival (instantaneous queue before this packet).
    s.avg += s.params.weight * (static_cast<double>(s.queued) - s.avg);
    bool drop = false;
    if (s.avg >= static_cast<double>(s.params.max_th)) {
      drop = true;
    } else if (s.avg > static_cast<double>(s.params.min_th)) {
      const double frac =
          (s.avg - static_cast<double>(s.params.min_th)) /
          static_cast<double>(s.params.max_th - s.params.min_th);
      drop = rng_.chance(frac * s.params.max_p);
    }
    if (drop) {
      ++s.dropped;
      return;
    }
    s.queued += pkt.len;
  }
  inner_.enqueue(now, pkt);
}

std::optional<Packet> Red::dequeue(TimeNs now) {
  auto p = inner_.dequeue(now);
  if (p && p->cls < state_.size() && state_[p->cls].enabled) {
    State& s = state_[p->cls];
    s.queued = s.queued >= p->len ? s.queued - p->len : 0;
  }
  return p;
}

}  // namespace hfsc
