// Flat packet-fair-queueing scheduler: one PfqServer plus per-session
// queues.  With policy SEFF this is WF2Q+; SFF gives SFQ-style
// finish-time scheduling; SSF a start-time scheduler.
#pragma once

#include <string>
#include <vector>

#include "sched/class_queues.hpp"
#include "sched/pfq.hpp"
#include "sched/scheduler.hpp"
#include "util/errors.hpp"

namespace hfsc {

class PfqSched final : public Scheduler {
 public:
  PfqSched(RateBps link_rate, PfqPolicy policy)
      : server_(link_rate, policy), policy_(policy) {
    ensure(link_rate > 0, Errc::kInvalidArgument, "link rate must be > 0");
  }

  // Registers a session with the given weight (bytes/s); throws
  // Error{kInvalidArgument} on a zero weight.
  ClassId add_session(RateBps weight);

  // Data path — never throws; packets for unknown sessions and
  // zero-length/oversized packets are dropped and counted.
  void enqueue(TimeNs now, Packet pkt) override;
  std::optional<Packet> dequeue(TimeNs now) override;

  std::size_t backlog_packets() const noexcept override {
    return queues_.packets();
  }
  Bytes backlog_bytes() const noexcept override { return queues_.bytes(); }
  DataPathCounters counters() const noexcept override { return counters_; }
  std::string_view name() const noexcept override;

  TimeNs vtime() const noexcept { return server_.vtime(); }
  const DataPathCounters& data_path_counters() const noexcept {
    return counters_;
  }

 private:
  PfqServer server_;
  PfqPolicy policy_;
  ClassQueues queues_;
  // ClassId -> server child index (ids start at 1, children at 0).
  std::vector<std::uint32_t> child_of_;
  DataPathCounters counters_;
};

}  // namespace hfsc
