// Deficit Round Robin (Shreedhar & Varghese).
//
// O(1) fair queueing baseline: backlogged classes sit on a round-robin
// list; each visit adds the class's quantum to its deficit counter and
// sends head packets while the deficit covers them.  Fairness is
// proportional to quanta but delay is coupled to the round length — the
// class of algorithms the paper's priority service improves upon.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "sched/class_queues.hpp"
#include "sched/scheduler.hpp"

namespace hfsc {

class Drr final : public Scheduler {
 public:
  // Registers a class with the given quantum (bytes added per round).
  ClassId add_session(Bytes quantum);

  void enqueue(TimeNs now, Packet pkt) override;
  std::optional<Packet> dequeue(TimeNs now) override;

  std::size_t backlog_packets() const noexcept override {
    return queues_.packets();
  }
  Bytes backlog_bytes() const noexcept override { return queues_.bytes(); }
  std::string_view name() const noexcept override { return "DRR"; }

 private:
  struct Session {
    Bytes quantum = 0;
    Bytes deficit = 0;
    bool in_round = false;
  };

  ClassQueues queues_;
  std::vector<Session> sessions_;  // index 0 unused
  std::deque<ClassId> round_;      // active list, round-robin order
};

}  // namespace hfsc
