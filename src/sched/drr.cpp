#include "sched/drr.hpp"

#include <cassert>

namespace hfsc {

ClassId Drr::add_session(Bytes quantum) {
  assert(quantum > 0);
  if (sessions_.empty()) sessions_.emplace_back();  // burn id 0
  sessions_.push_back(Session{quantum, 0, false});
  const ClassId id = static_cast<ClassId>(sessions_.size() - 1);
  queues_.ensure(id);
  return id;
}

void Drr::enqueue(TimeNs /*now*/, Packet pkt) {
  assert(pkt.cls < sessions_.size() && sessions_[pkt.cls].quantum > 0);
  queues_.push(pkt);
  Session& s = sessions_[pkt.cls];
  if (!s.in_round) {
    s.in_round = true;
    // Classic DRR adds the quantum when the class reaches the head of the
    // round; granting it at round entry (and again at each rotation, see
    // dequeue) is equivalent with one-packet-per-call service.
    s.deficit = s.quantum;
    round_.push_back(pkt.cls);
  }
}

std::optional<Packet> Drr::dequeue(TimeNs /*now*/) {
  // Each rotation grants the next visit's quantum, so the loop terminates:
  // after at most one full round some class's deficit covers its head.
  while (!round_.empty()) {
    const ClassId cls = round_.front();
    Session& s = sessions_[cls];
    assert(queues_.has(cls));
    const Bytes head = queues_.head(cls).len;
    if (head <= s.deficit) {
      s.deficit -= head;
      Packet p = queues_.pop(cls);
      if (!queues_.has(cls)) {
        // Leaving the round forfeits any residual deficit.
        s.in_round = false;
        s.deficit = 0;
        round_.pop_front();
      }
      return p;
    }
    round_.pop_front();
    round_.push_back(cls);
    s.deficit += s.quantum;
  }
  return std::nullopt;
}

}  // namespace hfsc
