#include "sched/classifier.hpp"

#include <algorithm>
#include <limits>

namespace hfsc {

namespace {
bool prefix_match(std::uint32_t want, std::uint8_t prefix,
                  std::uint32_t got) noexcept {
  if (want == 0) return true;  // wildcard
  if (prefix == 0) return true;
  const std::uint32_t mask =
      prefix >= 32 ? 0xFFFFFFFFu : ~(0xFFFFFFFFu >> prefix);
  return (want & mask) == (got & mask);
}
}  // namespace

bool Filter::matches(const FlowKey& k) const noexcept {
  if (!prefix_match(src_ip, src_prefix, k.src_ip)) return false;
  if (!prefix_match(dst_ip, dst_prefix, k.dst_ip)) return false;
  if (src_port != 0 && src_port != k.src_port) return false;
  if (dst_port != 0 && dst_port != k.dst_port) return false;
  if (proto != 0 && proto != k.proto) return false;
  return true;
}

bool Filter::is_exact() const noexcept {
  return src_ip != 0 && src_prefix >= 32 && dst_ip != 0 && dst_prefix >= 32 &&
         src_port != 0 && dst_port != 0 && proto != 0;
}

std::uint32_t Classifier::add_filter(const Filter& f, ClassId cls) {
  const Entry e{f, cls, next_id_++};
  if (f.is_exact()) {
    const FlowKey key{f.src_ip, f.dst_ip, f.src_port, f.dst_port, f.proto};
    exact_[key] = e;
  } else {
    // Insert keeping (-priority, id) order so the scan can stop at the
    // first hit.
    const auto pos = std::lower_bound(
        wildcard_.begin(), wildcard_.end(), e,
        [](const Entry& a, const Entry& b) {
          if (a.filter.priority != b.filter.priority) {
            return a.filter.priority > b.filter.priority;
          }
          return a.id < b.id;
        });
    wildcard_.insert(pos, e);
  }
  return e.id;
}

void Classifier::remove(std::uint32_t filter_id) {
  for (auto it = exact_.begin(); it != exact_.end(); ++it) {
    if (it->second.id == filter_id) {
      exact_.erase(it);
      return;
    }
  }
  const auto it = std::find_if(
      wildcard_.begin(), wildcard_.end(),
      [filter_id](const Entry& e) { return e.id == filter_id; });
  if (it != wildcard_.end()) wildcard_.erase(it);
}

ClassId Classifier::classify(const FlowKey& key) const {
  const auto hit = exact_.find(key);
  // An exact hit wins unless a wildcard filter has strictly higher
  // priority (ALTQ semantics: filters are consulted by priority; the
  // exact table is just an index over the fully-specified ones, which
  // default to priority 0 like everything else).
  int exact_prio = std::numeric_limits<int>::min();
  if (hit != exact_.end()) exact_prio = hit->second.filter.priority;
  for (const Entry& e : wildcard_) {
    if (e.filter.priority < exact_prio) break;  // sorted descending
    if (hit != exact_.end() && e.filter.priority == exact_prio &&
        e.id > hit->second.id) {
      break;  // the exact filter was installed first at this priority
    }
    if (e.filter.matches(key)) return e.cls;
  }
  if (hit != exact_.end()) return hit->second.cls;
  return default_class_;
}

std::size_t Classifier::num_filters() const noexcept {
  return exact_.size() + wildcard_.size();
}

}  // namespace hfsc
