// Packet Fair Queueing server node (WF2Q+ family).
//
// PfqServer is a rate-weighted arbiter over a set of children.  Each child
// i has a virtual start time S_i and finish time F_i; the server keeps a
// system virtual time V updated per WF2Q+ (Bennett & Zhang):
//
//     on serving L bytes:        V <- V + L / rate
//     when all backlogged S > V: V <- min backlogged S   (idle re-sync)
//
// Child bookkeeping:
//     empty -> backlogged:  S = max(V, F);  F = S + len / w
//     served, next packet:  S = F;          F = S + len / w
//
// Selection policies (Section IV-C of the paper lists all three):
//     SSF  — smallest start time first
//     SFF  — smallest finish time first (SFQ / "WFQ-like")
//     SEFF — smallest *eligible* (S <= V) finish time first  == WF2Q+
//
// The class holds no packets; flat Pfq and hierarchical HPfq compose it
// with packet queues.  H-PFQ built from WF2Q+ nodes is the paper's main
// comparison point (Sections I, IV-A, VIII).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/indexed_heap.hpp"
#include "util/types.hpp"

namespace hfsc {

enum class PfqPolicy { SSF, SFF, SEFF };

class PfqServer {
 public:
  PfqServer(RateBps rate, PfqPolicy policy)
      : rate_(rate), policy_(policy) {}

  // Adds a child with the given weight (bytes/s); returns its index.
  std::uint32_t add_child(RateBps weight);

  std::size_t num_children() const noexcept { return children_.size(); }
  bool is_backlogged(std::uint32_t c) const { return children_[c].backlogged; }
  bool any_backlogged() const noexcept { return backlogged_ > 0; }

  // Child c went from empty to backlogged; head_len is its head packet.
  void child_backlogged(std::uint32_t c, Bytes head_len);

  // Child c was just served and has another packet of head_len bytes.
  void child_next_head(std::uint32_t c, Bytes head_len);

  // Child c drained.
  void child_empty(std::uint32_t c);

  // Picks the child to serve under the configured policy.  Requires
  // any_backlogged().  May advance V (idle re-sync) and promote children
  // between internal heaps; calling it repeatedly without intervening
  // state changes returns the same child.
  std::uint32_t pick();

  // Accounts L bytes of service (advances V).  Call once per served
  // packet, before child_next_head / child_empty.
  void charge(Bytes len) { vt_ = sat_add(vt_, seg_y2x(len, rate_)); }

  TimeNs vtime() const noexcept { return vt_; }
  TimeNs start_of(std::uint32_t c) const { return children_[c].start; }
  TimeNs finish_of(std::uint32_t c) const { return children_[c].finish; }
  RateBps rate() const noexcept { return rate_; }

 private:
  struct Child {
    RateBps weight = 0;
    TimeNs start = 0;
    TimeNs finish = 0;
    bool backlogged = false;
  };

  void insert(std::uint32_t c);
  void remove(std::uint32_t c);

  RateBps rate_;
  PfqPolicy policy_;
  std::vector<Child> children_;
  std::size_t backlogged_ = 0;
  TimeNs vt_ = 0;
  // SEFF: pending_ holds backlogged children with S > V keyed by S;
  // eligible_ holds those with S <= V keyed by F.  SSF keeps everything in
  // pending_ (keyed by S); SFF keeps everything in eligible_ (keyed by F).
  IndexedHeap<TimeNs> pending_;
  IndexedHeap<TimeNs> eligible_;
};

}  // namespace hfsc
