// The unit of work every scheduler in this library operates on.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace hfsc {

// Identifies a scheduling class / session.  0 is reserved for the root of
// hierarchical schedulers; flat schedulers use ids 1..n as well so the same
// workload can be replayed against any discipline.
using ClassId = std::uint32_t;

inline constexpr ClassId kRootClass = 0;

struct Packet {
  ClassId cls = 0;       // leaf class / session the packet belongs to
  Bytes len = 0;         // size in bytes
  TimeNs arrival = 0;    // last-bit arrival time (Section VI semantics)
  std::uint64_t seq = 0; // global arrival sequence number (tie-breaking,
                         // per-packet bookkeeping in tests)
};

}  // namespace hfsc
