#include "sched/virtual_clock.hpp"

#include <algorithm>
#include <cassert>

namespace hfsc {

ClassId VirtualClock::add_session(RateBps rate) {
  assert(rate > 0);
  if (sessions_.empty()) sessions_.emplace_back();  // burn id 0
  sessions_.push_back(Session{rate, 0, {}});
  const ClassId id = static_cast<ClassId>(sessions_.size() - 1);
  queues_.ensure(id);
  return id;
}

void VirtualClock::enqueue(TimeNs now, Packet pkt) {
  assert(pkt.cls < sessions_.size() && sessions_[pkt.cls].rate > 0);
  Session& s = sessions_[pkt.cls];
  s.vc = sat_add(std::max(now, s.vc), seg_y2x(pkt.len, s.rate));
  const bool was_empty = !queues_.has(pkt.cls);
  queues_.push(pkt);
  s.tags.push_back(s.vc);
  if (was_empty) by_tag_.push(pkt.cls, s.tags.front());
}

std::optional<Packet> VirtualClock::dequeue(TimeNs /*now*/) {
  if (by_tag_.empty()) return std::nullopt;
  const ClassId cls = by_tag_.pop();
  Session& s = sessions_[cls];
  Packet p = queues_.pop(cls);
  s.tags.pop_front();
  if (queues_.has(cls)) by_tag_.push(cls, s.tags.front());
  return p;
}

}  // namespace hfsc
