// SCED — Service Curve Earliest Deadline first (Sariowan et al.; paper
// Section II, eqs. (2)-(4)).
//
// Each session i has a service curve S_i and a deadline curve D_i.  D_i is
// initialized to S_i at the session's first backlogged instant and, each
// time the session becomes backlogged again at time a after an idle
// period, is updated to
//
//     D_i <- min(D_i, w_i(a) + S_i(. - a))                          (3)
//
// where w_i is the total service the session has received.  The packet at
// the head of the queue gets deadline D_i^{-1}(w_i + len) (4), and the
// server transmits in increasing deadline order.
//
// SCED guarantees all service curves whenever sum_i S_i <= server curve
// (Section II) but is *unfair*: a session that received excess service
// runs ahead of its deadline curve and is punished — starved — when
// competitors wake up (Fig. 2(b)(c); experiment E1).
#pragma once

#include <string>
#include <vector>

#include "curve/runtime_curve.hpp"
#include "sched/class_queues.hpp"
#include "sched/scheduler.hpp"
#include "util/indexed_heap.hpp"

namespace hfsc {

class Sced final : public Scheduler {
 public:
  // Registers a session.  The curve must be in the supported two-piece
  // family (concave, or convex with a flat first segment).
  ClassId add_session(const ServiceCurve& sc);

  void enqueue(TimeNs now, Packet pkt) override;
  std::optional<Packet> dequeue(TimeNs now) override;

  std::size_t backlog_packets() const noexcept override {
    return queues_.packets();
  }
  Bytes backlog_bytes() const noexcept override { return queues_.bytes(); }
  SchedCapabilities capabilities() const noexcept override {
    SchedCapabilities c;
    c.nonlinear_curves = true;
    c.decoupled_delay = true;
    return c;
  }
  std::string_view name() const noexcept override { return "SCED"; }

  // Introspection for tests and the Fig. 2 experiment.
  Bytes work_of(ClassId cls) const { return sessions_.at(cls).work; }
  TimeNs head_deadline(ClassId cls) const {
    return sessions_.at(cls).head_deadline;
  }

 private:
  struct Session {
    ServiceCurve sc;
    RuntimeCurve dc;          // deadline curve D_i
    Bytes work = 0;           // w_i: total service received
    TimeNs head_deadline = 0;
    bool ever_active = false;
  };

  void set_head_deadline(ClassId cls);

  ClassQueues queues_;
  std::vector<Session> sessions_;  // index 0 unused
  IndexedHeap<TimeNs> by_deadline_;
};

}  // namespace hfsc
