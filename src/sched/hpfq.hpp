// H-PFQ: hierarchical packet fair queueing (Bennett & Zhang, ref. [3] of
// the paper) — a tree of PfqServer nodes, WF2Q+ at every level.
//
// This is the paper's main comparison point.  H-PFQ provides hierarchical
// link-sharing and (coupled) real-time guarantees, but (a) delay is tied
// to the allocated rate — there are no nonlinear service curves — and
// (b) packet selection walks the hierarchy with the link-sharing criterion
// alone, so the delay bound of a leaf grows with its depth (paper,
// Section IV-A).  Experiments E4 and E6 measure both effects against
// H-FSC.
//
// Semantics: every node runs WF2Q+ (or SFF/SSF) over its children.  A
// child's (S, F) pair at its parent is set when the child becomes
// backlogged and rolled forward each time the parent serves it, using the
// length of the packet the child's subtree currently exposes.  When the
// link is free the root picks a child, that child picks one of its
// children, and so on down to a leaf; every server on the selected path is
// then charged the leaf packet's length.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/class_queues.hpp"
#include "sched/pfq.hpp"
#include "sched/scheduler.hpp"
#include "util/errors.hpp"

namespace hfsc {

class HPfq final : public Scheduler {
 public:
  // policy applies to every node; the paper's H-PFQ uses WF2Q+ (SEFF).
  // Throws Error{kInvalidArgument} if link_rate == 0.
  explicit HPfq(RateBps link_rate, PfqPolicy policy = PfqPolicy::SEFF);

  // Adds a class under `parent` (kRootClass for top level) with the given
  // guaranteed rate.  Classes that receive packets must stay leaves;
  // adding a child under a class that already queued packets throws
  // Error{kHasBacklog}; an unknown parent or zero rate also throws.
  ClassId add_class(ClassId parent, RateBps rate);

  // Data path — never throws; packets for unknown or interior classes
  // and zero-length/oversized packets are dropped and counted.
  void enqueue(TimeNs now, Packet pkt) override;
  std::optional<Packet> dequeue(TimeNs now) override;

  std::size_t backlog_packets() const noexcept override {
    return queues_.packets();
  }
  Bytes backlog_bytes() const noexcept override { return queues_.bytes(); }
  SchedCapabilities capabilities() const noexcept override {
    SchedCapabilities c;
    c.hierarchy = true;
    return c;
  }
  DataPathCounters counters() const noexcept override { return counters_; }
  std::string_view name() const noexcept override { return "H-PFQ"; }

  std::size_t depth_of(ClassId cls) const;
  const DataPathCounters& data_path_counters() const noexcept {
    return counters_;
  }

 private:
  struct Node {
    ClassId parent = 0;
    std::uint32_t idx_in_parent = 0;  // child index at the parent's server
    std::unique_ptr<PfqServer> server;  // created lazily for interior nodes
    std::vector<ClassId> children;      // child index -> ClassId
    RateBps rate = 0;
    bool is_leaf() const noexcept { return server == nullptr; }
  };

  // Length of the packet node `n` currently exposes to its parent.
  Bytes head_len(ClassId n);
  bool subtree_backlogged(ClassId n) const;

  PfqPolicy policy_;
  std::vector<Node> nodes_;  // nodes_[0] is the root
  ClassQueues queues_;
  DataPathCounters counters_;
};

}  // namespace hfsc
