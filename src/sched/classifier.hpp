// Packet classifier: maps flows to scheduling classes.
//
// The authors' ALTQ framework pairs the H-FSC queueing discipline with a
// filter-based classifier; this is the equivalent substrate.  A filter
// matches on the usual 5-tuple with wildcards (0 = any) and an optional
// source/destination prefix length; among matching filters the one with
// the highest priority wins (ties broken by insertion order, first wins).
//
// Exact-match (fully specified, /32) filters are indexed in a hash table;
// wildcard filters fall back to a priority-ordered linear scan — the same
// two-tier structure ALTQ used.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sched/packet.hpp"

namespace hfsc {

struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

// Protocol numbers used in examples/tests.
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

struct Filter {
  // 0 means wildcard for ips/ports/proto; prefix lengths narrow the ip
  // match (ignored when the ip is 0).
  std::uint32_t src_ip = 0;
  std::uint8_t src_prefix = 32;
  std::uint32_t dst_ip = 0;
  std::uint8_t dst_prefix = 32;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;
  int priority = 0;

  bool matches(const FlowKey& k) const noexcept;
  // Fully specified => eligible for the exact-match fast path.
  bool is_exact() const noexcept;
};

class Classifier {
 public:
  // Registers a filter routing matching packets to `cls`.  Returns a
  // filter id usable with remove().
  std::uint32_t add_filter(const Filter& f, ClassId cls);
  void remove(std::uint32_t filter_id);

  // The class for this flow, or default_class() if nothing matches.
  ClassId classify(const FlowKey& key) const;

  void set_default_class(ClassId cls) noexcept { default_class_ = cls; }
  ClassId default_class() const noexcept { return default_class_; }
  std::size_t num_filters() const noexcept;

 private:
  struct Entry {
    Filter filter;
    ClassId cls = 0;
    std::uint32_t id = 0;
  };

  struct KeyHash {
    std::size_t operator()(const FlowKey& k) const noexcept {
      std::uint64_t h = k.src_ip;
      h = h * 0x9E3779B97F4A7C15ULL + k.dst_ip;
      h = h * 0x9E3779B97F4A7C15ULL +
          ((static_cast<std::uint64_t>(k.src_port) << 24) ^
           (static_cast<std::uint64_t>(k.dst_port) << 8) ^ k.proto);
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  std::unordered_map<FlowKey, Entry, KeyHash> exact_;
  std::vector<Entry> wildcard_;  // kept sorted by (-priority, id)
  ClassId default_class_ = 0;
  std::uint32_t next_id_ = 1;
};

}  // namespace hfsc
