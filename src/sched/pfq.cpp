#include "sched/pfq.hpp"

#include <algorithm>
#include <cassert>

namespace hfsc {

std::uint32_t PfqServer::add_child(RateBps weight) {
  assert(weight > 0);
  children_.push_back(Child{weight, 0, 0, false});
  return static_cast<std::uint32_t>(children_.size() - 1);
}

void PfqServer::insert(std::uint32_t c) {
  const Child& ch = children_[c];
  switch (policy_) {
    case PfqPolicy::SSF:
      pending_.push(c, ch.start);
      break;
    case PfqPolicy::SFF:
      eligible_.push(c, ch.finish);
      break;
    case PfqPolicy::SEFF:
      if (ch.start <= vt_) {
        eligible_.push(c, ch.finish);
      } else {
        pending_.push(c, ch.start);
      }
      break;
  }
}

void PfqServer::remove(std::uint32_t c) {
  if (pending_.contains(c)) pending_.erase(c);
  if (eligible_.contains(c)) eligible_.erase(c);
}

void PfqServer::child_backlogged(std::uint32_t c, Bytes head_len) {
  Child& ch = children_[c];
  assert(!ch.backlogged);
  ch.backlogged = true;
  ++backlogged_;
  ch.start = std::max(vt_, ch.finish);
  ch.finish = sat_add(ch.start, seg_y2x(head_len, ch.weight));
  insert(c);
}

void PfqServer::child_next_head(std::uint32_t c, Bytes head_len) {
  Child& ch = children_[c];
  assert(ch.backlogged);
  ch.start = ch.finish;
  ch.finish = sat_add(ch.start, seg_y2x(head_len, ch.weight));
  remove(c);
  insert(c);
}

void PfqServer::child_empty(std::uint32_t c) {
  Child& ch = children_[c];
  assert(ch.backlogged);
  ch.backlogged = false;
  --backlogged_;
  remove(c);
}

std::uint32_t PfqServer::pick() {
  assert(any_backlogged());
  if (policy_ == PfqPolicy::SSF) return pending_.top_id();
  if (policy_ == PfqPolicy::SFF) return eligible_.top_id();
  // SEFF (WF2Q+): if the server's virtual time fell behind every start
  // time (after an idle period), re-sync it to the smallest start.
  if (eligible_.empty()) {
    assert(!pending_.empty());
    vt_ = std::max(vt_, pending_.top_key());
  }
  // Promote children that have become eligible.
  while (!pending_.empty() && pending_.top_key() <= vt_) {
    const std::uint32_t c = pending_.pop();
    eligible_.push(c, children_[c].finish);
  }
  return eligible_.top_id();
}

}  // namespace hfsc
