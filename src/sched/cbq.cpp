#include "sched/cbq.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace hfsc {

Cbq::Cbq(RateBps link_rate, int avg_const)
    : link_rate_(link_rate), w_(1.0 / static_cast<double>(avg_const)) {
  ensure(link_rate > 0, Errc::kInvalidArgument, "link rate must be > 0");
  ensure(avg_const > 1, Errc::kInvalidArgument, "avg_const must be > 1");
  Node root;
  root.rate = link_rate;
  root.is_leaf = false;
  root.avgidle = 0.0;
  root.level = 1;
  nodes_.push_back(root);
}

ClassId Cbq::add_class(ClassId parent, RateBps rate, bool borrow) {
  ensure(parent < nodes_.size(), Errc::kInvalidClass, "unknown parent class");
  ensure(rate > 0, Errc::kInvalidArgument, "class rate must be > 0");
  ensure(!queues_.has(parent), Errc::kHasBacklog,
         "cannot add children to a class that queues packets");
  nodes_[parent].is_leaf = false;
  Node n;
  n.parent = parent;
  n.rate = rate;
  n.borrow = borrow;
  n.level = 1;
  // Allow roughly two max packets of burst at the class rate before the
  // estimator clamps (the role of maxidle in the CBQ paper).
  n.maxidle = static_cast<double>(seg_y2x(3000, rate));
  n.avgidle = n.maxidle;  // start underlimit with full credit
  // WRR quantum proportional to rate, at least one max packet.
  n.quantum = std::max<Bytes>(1500, muldiv_floor(1500 * 8, rate, link_rate_));
  nodes_.push_back(n);
  const ClassId id = static_cast<ClassId>(nodes_.size() - 1);
  // Maintain levels: a parent sits one level above its highest child.
  ClassId c = id;
  while (c != kRootClass) {
    const ClassId p = nodes_[c].parent;
    if (nodes_[p].level >= nodes_[c].level + 1) break;
    nodes_[p].level = nodes_[c].level + 1;
    c = p;
  }
  queues_.ensure(id);
  ++borrow_gen_;  // levels and the class set changed
  return id;
}

int Cbq::min_unsatisfied_level(TimeNs now) const {
  int lvl = std::numeric_limits<int>::max();
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.subtree_backlog > 0 && underlimit(n, now)) {
      lvl = std::min(lvl, n.level);
    }
  }
  return lvl;
}

int Cbq::unsat_level_lazy(TimeNs now) {
  if (unsat_cache_gen_ == borrow_gen_ && now >= unsat_cache_now_ &&
      now < unsat_cache_next_) {
    // Cache validity argument: with estimators and backlogs frozen (same
    // generation), a class's underlimit() verdict can only flip
    // over->under, and only when the clock reaches its undertime — the
    // earliest of which is unsat_cache_next_.  assert()-checked against
    // the eager scan so debug/sanitizer CI revalidates every hit.
    assert(unsat_cache_lvl_ == min_unsatisfied_level(now));
    return unsat_cache_lvl_;
  }
  int lvl = std::numeric_limits<int>::max();
  TimeNs next = kTimeInfinity;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.subtree_backlog == 0) continue;
    if (underlimit(n, now)) {
      lvl = std::min(lvl, n.level);
    } else if (n.undertime > now) {
      next = std::min(next, n.undertime);
    }
  }
  unsat_cache_gen_ = borrow_gen_;
  unsat_cache_now_ = now;
  unsat_cache_next_ = next;
  unsat_cache_lvl_ = lvl;
  return lvl;
}

bool Cbq::may_send(ClassId cls, TimeNs now, int unsat_level) const {
  const Node* n = &nodes_[cls];
  if (underlimit(*n, now)) return true;
  // Overlimit: look for an underlimit ancestor to borrow from, subject to
  // the guideline that borrowing from level L requires no unsatisfied
  // class strictly below L.
  if (!n->borrow) return false;
  for (ClassId a = n->parent;; a = nodes_[a].parent) {
    const Node& anc = nodes_[a];
    const bool anc_under = a == kRootClass || underlimit(anc, now);
    if (anc_under) {
      const int lvl = a == kRootClass ? nodes_[kRootClass].level : anc.level;
      return unsat_level >= lvl;
    }
    if (!anc.borrow || a == kRootClass) return false;
  }
}

void Cbq::charge(ClassId cls, Bytes len, TimeNs now) {
  // Update the estimator of the class and every ancestor: idle time is
  // the gap since the class's previous transmission minus the gap its
  // allocated rate would dictate.
  for (ClassId c = cls; c != kRootClass; c = nodes_[c].parent) {
    Node& n = nodes_[c];
    const double expected = static_cast<double>(seg_y2x(len, n.rate));
    const double actual = static_cast<double>(now - n.last);
    const double idle = actual - expected;
    n.last = now;
    n.avgidle += w_ * (idle - n.avgidle);
    n.avgidle = std::min(n.avgidle, n.maxidle);
    if (n.avgidle < -n.maxidle) n.avgidle = -n.maxidle;
    if (n.avgidle < 0.0) {
      // Overlimit: may send again once enough wall-clock idle has
      // accumulated to pull avgidle back to zero (kernel formula:
      // (1/w - 1) * -avgidle beyond the expected gap).
      const double delay = (1.0 / w_ - 1.0) * (-n.avgidle);
      n.undertime = now + static_cast<TimeNs>(expected + delay);
    } else {
      n.undertime = 0;
    }
  }
}

void Cbq::enqueue(TimeNs /*now*/, Packet pkt) {
  if (pkt.cls == kRootClass || pkt.cls >= nodes_.size() ||
      !nodes_[pkt.cls].is_leaf) {
    ++counters_.bad_class;
    return;
  }
  if (pkt.len == 0) {
    ++counters_.zero_len;
    return;
  }
  if (pkt.len > kMaxSanePacketLen) {
    ++counters_.oversized;
    return;
  }
  queues_.push(pkt);
  ++borrow_gen_;  // a 0 -> >0 subtree backlog creates unsatisfied classes
  for (ClassId c = pkt.cls; c != kRootClass; c = nodes_[c].parent) {
    ++nodes_[c].subtree_backlog;
  }
  Node& n = nodes_[pkt.cls];
  if (!n.in_round) {
    n.in_round = true;
    n.deficit = n.quantum;
    round_.push_back(pkt.cls);
  }
}

std::optional<Packet> Cbq::dequeue(TimeNs now) {
  // Weighted round robin over backlogged leaves, skipping those that are
  // overlimit with nothing to borrow from.  If nobody may send, the link
  // must idle (next_wakeup knows how long).
  const int unsat = unsat_level_lazy(now);
  for (std::size_t scanned = 0; scanned < round_.size(); ++scanned) {
    const ClassId cls = round_.front();
    Node& n = nodes_[cls];
    assert(queues_.has(cls));
    if (!may_send(cls, now, unsat)) {
      round_.pop_front();
      round_.push_back(cls);
      continue;
    }
    const Bytes head = queues_.head(cls).len;
    if (head > n.deficit) {
      n.deficit += n.quantum;
      round_.pop_front();
      round_.push_back(cls);
      continue;
    }
    n.deficit -= head;
    Packet p = queues_.pop(cls);
    ++borrow_gen_;  // backlog and estimator state both move below
    for (ClassId c = cls; c != kRootClass; c = nodes_[c].parent) {
      --nodes_[c].subtree_backlog;
    }
    charge(cls, p.len, now);
    if (!queues_.has(cls)) {
      n.in_round = false;
      n.deficit = 0;
      round_.pop_front();
    }
    return p;
  }
  return std::nullopt;
}

TimeNs Cbq::next_wakeup(TimeNs now) const noexcept {
  TimeNs earliest = kTimeInfinity;
  for (const ClassId cls : round_) {
    // A blocked class recovers when its own estimator (or a borrowable
    // ancestor's) recovers; take the most optimistic bound.  The
    // unsatisfied-level guideline can also unblock sooner, so this is a
    // conservative wakeup, re-evaluated on arrival anyway.
    TimeNs t = kTimeInfinity;
    const Node* n = &nodes_[cls];
    for (;;) {
      if (underlimit(*n, now)) {
        t = now + 1;
        break;
      }
      t = std::min(t, n->undertime);
      if (!n->borrow || n->parent == kRootClass) break;
      n = &nodes_[n->parent];
    }
    earliest = std::min(earliest, t);
  }
  return earliest;
}

}  // namespace hfsc
