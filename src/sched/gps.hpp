// Fluid Generalized Processor Sharing — the idealized fairness reference.
//
// Section III-B: "a perfectly fair algorithm distributes the excess
// service to all backlogged sessions proportional to their minimum
// guaranteed rates ... Generalized processor sharing (GPS) is such an
// idealized fair algorithm."
//
// FluidGps serves all backlogged sessions *simultaneously*, each at
// capacity * w_i / sum of backlogged weights, re-solving the shares every
// time a session drains or new fluid arrives.  It is not a packet
// Scheduler; the differential tests replay a packet workload through a
// real discipline and through this fluid server and compare cumulative
// service — WF2Q+ and H-FSC-with-linear-curves must track GPS to within a
// couple of maximum packets, while Virtual Clock's punished sessions fall
// arbitrarily far behind.
//
// Fluid amounts are doubles (this is a reference model, not a scheduler;
// tests carry tolerances).
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace hfsc {

class FluidGps {
 public:
  explicit FluidGps(RateBps capacity)
      : capacity_(static_cast<double>(capacity)) {}

  std::uint32_t add_session(RateBps weight) {
    sessions_.push_back(Session{static_cast<double>(weight), 0.0, 0.0});
    return static_cast<std::uint32_t>(sessions_.size() - 1);
  }

  // Fluid arrival at time t (>= the last event time seen).
  void arrive(TimeNs t, std::uint32_t s, Bytes len) {
    advance(t);
    sessions_[s].backlog += static_cast<double>(len);
  }

  // Serves fluid up to time t.
  void advance(TimeNs t);

  double service(std::uint32_t s) const { return sessions_[s].served; }
  double backlog(std::uint32_t s) const { return sessions_[s].backlog; }
  TimeNs now() const noexcept { return now_; }

 private:
  struct Session {
    double weight = 0.0;
    double backlog = 0.0;  // bytes of fluid queued
    double served = 0.0;   // cumulative bytes served
  };

  double capacity_;  // bytes per second
  std::vector<Session> sessions_;
  TimeNs now_ = 0;
};

}  // namespace hfsc
