// Virtual Clock (Zhang, 1990).
//
// Each session has a guaranteed rate r_i; a packet's tag is
//     VC_i = max(arrival, VC_i) + len / r_i
// assigned at arrival, and packets are served in increasing tag order.
// Section III-B of the paper observes that SCED with linear service curves
// through the origin reduces to Virtual Clock, and that Virtual Clock is
// unfair: a session that used idle capacity builds its VC far into the
// future and is then starved when competitors return.  We keep it as the
// punished-flow baseline for the non-punishment experiments (E11).
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "sched/class_queues.hpp"
#include "sched/scheduler.hpp"
#include "util/indexed_heap.hpp"

namespace hfsc {

class VirtualClock final : public Scheduler {
 public:
  // Registers a session with guaranteed rate r (bytes/s).  Sessions must
  // be added before any of their packets arrive.
  ClassId add_session(RateBps rate);

  void enqueue(TimeNs now, Packet pkt) override;
  std::optional<Packet> dequeue(TimeNs now) override;

  std::size_t backlog_packets() const noexcept override {
    return queues_.packets();
  }
  Bytes backlog_bytes() const noexcept override { return queues_.bytes(); }
  std::string_view name() const noexcept override { return "VirtualClock"; }

  // Session virtual clock (tests observe the punishment build-up).
  TimeNs vc_of(ClassId cls) const { return sessions_.at(cls).vc; }

 private:
  struct Session {
    RateBps rate = 0;
    TimeNs vc = 0;              // auxiliary virtual clock
    std::deque<TimeNs> tags;    // arrival-assigned tags, FIFO with packets
  };

  ClassQueues queues_;
  std::vector<Session> sessions_;  // index 0 unused (root id convention)
  IndexedHeap<TimeNs> by_tag_;     // backlogged sessions keyed by head tag
};

}  // namespace hfsc
