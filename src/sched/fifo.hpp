// Single shared FIFO queue — the no-QoS baseline.
#pragma once

#include <deque>

#include "sched/scheduler.hpp"

namespace hfsc {

class Fifo final : public Scheduler {
 public:
  void enqueue(TimeNs /*now*/, Packet pkt) override {
    bytes_ += pkt.len;
    q_.push_back(pkt);
  }

  std::optional<Packet> dequeue(TimeNs /*now*/) override {
    if (q_.empty()) return std::nullopt;
    Packet p = q_.front();
    q_.pop_front();
    bytes_ -= p.len;
    return p;
  }

  std::size_t backlog_packets() const noexcept override { return q_.size(); }
  Bytes backlog_bytes() const noexcept override { return bytes_; }
  std::string_view name() const noexcept override { return "FIFO"; }

 private:
  std::deque<Packet> q_;
  Bytes bytes_ = 0;
};

}  // namespace hfsc
