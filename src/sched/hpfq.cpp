#include "sched/hpfq.hpp"

namespace hfsc {

HPfq::HPfq(RateBps link_rate, PfqPolicy policy) : policy_(policy) {
  ensure(link_rate > 0, Errc::kInvalidArgument, "link rate must be > 0");
  Node root;
  root.server = std::make_unique<PfqServer>(link_rate, policy);
  root.rate = link_rate;
  nodes_.push_back(std::move(root));
}

ClassId HPfq::add_class(ClassId parent, RateBps rate) {
  ensure(parent < nodes_.size(), Errc::kInvalidClass, "unknown parent class");
  ensure(rate > 0, Errc::kInvalidArgument, "class rate must be > 0");
  if (nodes_[parent].is_leaf()) {
    // First child under an interior-to-be class: give it a server.
    ensure(!queues_.has(parent), Errc::kHasBacklog,
           "cannot add children to a class that queues packets");
    nodes_[parent].server =
        std::make_unique<PfqServer>(nodes_[parent].rate, policy_);
  }
  Node n;
  n.parent = parent;
  n.rate = rate;
  n.idx_in_parent = nodes_[parent].server->add_child(rate);
  nodes_.push_back(std::move(n));
  const ClassId id = static_cast<ClassId>(nodes_.size() - 1);
  nodes_[parent].children.push_back(id);
  queues_.ensure(id);
  return id;
}

bool HPfq::subtree_backlogged(ClassId n) const {
  const Node& node = nodes_[n];
  return node.is_leaf() ? queues_.has(n) : node.server->any_backlogged();
}

Bytes HPfq::head_len(ClassId n) {
  Node& node = nodes_[n];
  if (node.is_leaf()) return queues_.head(n).len;
  // The packet an interior node exposes is the head of the child its
  // server would pick now.
  const std::uint32_t c = node.server->pick();
  return head_len(node.children[c]);
}

void HPfq::enqueue(TimeNs /*now*/, Packet pkt) {
  if (pkt.cls == kRootClass || pkt.cls >= nodes_.size() ||
      !nodes_[pkt.cls].is_leaf()) {
    ++counters_.bad_class;
    return;
  }
  if (pkt.len == 0) {
    ++counters_.zero_len;
    return;
  }
  if (pkt.len > kMaxSanePacketLen) {
    ++counters_.oversized;
    return;
  }
  const bool was_empty = !queues_.has(pkt.cls);
  queues_.push(pkt);
  if (!was_empty) return;
  // Propagate the new backlog towards the root until an ancestor that is
  // already marked backlogged at its parent.  Every node made backlogged
  // on the way had an empty subtree, so the arriving packet is the head
  // it exposes.
  ClassId c = pkt.cls;
  while (c != kRootClass) {
    const Node& node = nodes_[c];
    PfqServer& srv = *nodes_[node.parent].server;
    if (srv.is_backlogged(node.idx_in_parent)) break;
    srv.child_backlogged(node.idx_in_parent, pkt.len);
    c = node.parent;
  }
}

std::optional<Packet> HPfq::dequeue(TimeNs /*now*/) {
  if (!nodes_[kRootClass].server->any_backlogged()) return std::nullopt;
  // Walk down the hierarchy; every node applies its own WF2Q+ selection.
  std::vector<ClassId> path;  // interior nodes visited, root first
  ClassId c = kRootClass;
  while (!nodes_[c].is_leaf()) {
    path.push_back(c);
    const std::uint32_t idx = nodes_[c].server->pick();
    c = nodes_[c].children[idx];
  }
  Packet p = queues_.pop(c);
  // Charge every server on the path and refresh child state bottom-up so
  // that an interior child's new exposed head is known when its parent
  // asks for it.
  ClassId child = c;
  for (std::size_t i = path.size(); i-- > 0;) {
    const ClassId parent = path[i];
    PfqServer& srv = *nodes_[parent].server;
    const std::uint32_t idx = nodes_[child].idx_in_parent;
    srv.charge(p.len);
    if (subtree_backlogged(child)) {
      srv.child_next_head(idx, head_len(child));
    } else {
      srv.child_empty(idx);
    }
    child = parent;
  }
  return p;
}

std::size_t HPfq::depth_of(ClassId cls) const {
  std::size_t d = 0;
  while (cls != kRootClass) {
    cls = nodes_[cls].parent;
    ++d;
  }
  return d;
}

}  // namespace hfsc
