// Flat Fair Service Curve scheduler — the Fig. 2(d) modification of SCED.
//
// Instead of wall-clock deadlines, each session i carries a generalized
// virtual time v_i = V_i^{-1}(w_i), where the virtual curve V_i is the
// session's service curve re-anchored, on each becomes-backlogged event,
// at (v_sys, w_i) — eq. (12) with the parent replaced by the single
// server.  The server always picks the backlogged session with the
// smallest virtual time (SSF).
//
// This restores fairness — a session that used excess service is not
// punished, because V_i is re-synchronized to the system virtual time
// rather than left in the past — at the price of possible (bounded)
// service-curve violations when demand exceeds capacity (Fig. 2(d);
// Section III-C(a)).  It is exactly the link-sharing half of H-FSC,
// flattened to one level, and reduces to WFQ-style fair queueing when all
// curves are linear (Section III-B).
#pragma once

#include <string>
#include <vector>

#include "curve/runtime_curve.hpp"
#include "sched/class_queues.hpp"
#include "sched/scheduler.hpp"
#include "util/indexed_heap.hpp"

namespace hfsc {

class FscFlat final : public Scheduler {
 public:
  ClassId add_session(const ServiceCurve& sc);

  void enqueue(TimeNs now, Packet pkt) override;
  std::optional<Packet> dequeue(TimeNs now) override;

  std::size_t backlog_packets() const noexcept override {
    return queues_.packets();
  }
  Bytes backlog_bytes() const noexcept override { return queues_.bytes(); }
  SchedCapabilities capabilities() const noexcept override {
    SchedCapabilities c;
    c.nonlinear_curves = true;
    return c;
  }
  std::string_view name() const noexcept override { return "FSC-flat"; }

  TimeNs vt_of(ClassId cls) const { return sessions_.at(cls).vt; }
  Bytes work_of(ClassId cls) const { return sessions_.at(cls).work; }

 private:
  struct Session {
    ServiceCurve sc;
    RuntimeCurve vc;   // virtual curve V_i
    Bytes work = 0;    // w_i
    TimeNs vt = 0;     // v_i = V_i^{-1}(w_i)
    bool ever_active = false;
  };

  // System virtual time: (v_min + v_max)/2 over backlogged sessions
  // (Section IV-C), carried across idle periods by vt_watermark_.
  TimeNs system_vt() const noexcept;

  ClassQueues queues_;
  std::vector<Session> sessions_;  // index 0 unused
  IndexedHeap<TimeNs> by_vt_;      // backlogged sessions keyed by vt
  TimeNs vt_watermark_ = 0;        // max vt ever reached by any session
};

}  // namespace hfsc
