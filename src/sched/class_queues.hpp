// Per-class FIFO packet queues shared by all the flat schedulers.
//
// Each class's FIFO is a power-of-two ring buffer rather than a
// std::deque: a deque allocates and frees a block every ~16 packets as a
// steady push_back/pop_front cycle crosses block boundaries, which puts
// the allocator on the per-packet hot path.  The ring grows (doubling,
// never shrinking) only when a queue outgrows its capacity, so the
// steady-state data path performs no allocations at all.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "sched/packet.hpp"
#include "util/types.hpp"

namespace hfsc {

// Fixed-capacity-until-grown FIFO of packets.  Supports exactly what the
// schedulers, the auditor and checkpointing need: push_back, pop_front,
// front, size, and head-to-tail const iteration.
class PacketRing {
 public:
  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }

  const Packet& front() const noexcept {
    assert(count_ > 0);
    return buf_[head_];
  }

  // i-th packet counting from the head (0 = front).
  const Packet& operator[](std::size_t i) const noexcept {
    assert(i < count_);
    return buf_[(head_ + i) & mask()];
  }

  void push_back(const Packet& p) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask()] = p;
    ++count_;
  }

  Packet pop_front() noexcept {
    assert(count_ > 0);
    const Packet p = buf_[head_];
    head_ = (head_ + 1) & mask();
    --count_;
    return p;
  }

  // Removes the newest packet (push-out buffer management: the overload
  // governor evicts from the tail so the head — whose length the cached
  // deadline was computed from — is never disturbed).
  Packet pop_back() noexcept {
    assert(count_ > 0);
    --count_;
    return buf_[(head_ + count_) & mask()];
  }

  class const_iterator {
   public:
    const_iterator(const PacketRing* r, std::size_t i) noexcept
        : r_(r), i_(i) {}
    const Packet& operator*() const noexcept { return (*r_)[i_]; }
    const Packet* operator->() const noexcept { return &(*r_)[i_]; }
    const_iterator& operator++() noexcept {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const noexcept {
      return i_ == o.i_;
    }
    bool operator!=(const const_iterator& o) const noexcept {
      return i_ != o.i_;
    }

   private:
    const PacketRing* r_;
    std::size_t i_;
  };

  const_iterator begin() const noexcept { return {this, 0}; }
  const_iterator end() const noexcept { return {this, count_}; }

 private:
  std::size_t mask() const noexcept { return buf_.size() - 1; }

  void grow() {
    const std::size_t cap = buf_.empty() ? kInitialCapacity : buf_.size() * 2;
    std::vector<Packet> fresh(cap);
    for (std::size_t i = 0; i < count_; ++i) fresh[i] = (*this)[i];
    buf_ = std::move(fresh);
    head_ = 0;
  }

  static constexpr std::size_t kInitialCapacity = 8;  // power of two

  std::vector<Packet> buf_;  // capacity is always a power of two (or 0)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

class ClassQueues {
 public:
  void ensure(ClassId cls) {
    if (cls >= q_.size()) {
      q_.resize(cls + 1);
      class_bytes_.resize(cls + 1, 0);
    }
  }

  void push(Packet pkt) {
    ensure(pkt.cls);
    bytes_ += pkt.len;
    class_bytes_[pkt.cls] += pkt.len;
    ++packets_;
    q_[pkt.cls].push_back(pkt);
  }

  bool has(ClassId cls) const noexcept {
    return cls < q_.size() && !q_[cls].empty();
  }

  const Packet& head(ClassId cls) const {
    assert(has(cls));
    return q_[cls].front();
  }

  Packet pop(ClassId cls) {
    assert(has(cls));
    const Packet p = q_[cls].pop_front();
    bytes_ -= p.len;
    class_bytes_[cls] -= p.len;
    --packets_;
    return p;
  }

  // Removes and returns the newest packet of a class (push-out; see
  // PacketRing::pop_back).
  Packet pop_back(ClassId cls) {
    assert(has(cls));
    const Packet p = q_[cls].pop_back();
    bytes_ -= p.len;
    class_bytes_[cls] -= p.len;
    --packets_;
    return p;
  }

  std::size_t queue_len(ClassId cls) const noexcept {
    return cls < q_.size() ? q_[cls].size() : 0;
  }

  // Bytes queued for one class — O(1), maintained incrementally (the
  // overload governor reads it on the enqueue path).
  Bytes bytes_in(ClassId cls) const noexcept {
    return cls < class_bytes_.size() ? class_bytes_[cls] : 0;
  }

  // Independent O(queue length) recount of one class's bytes; the auditor
  // cross-checks it against the incremental counter.
  Bytes recount_bytes(ClassId cls) const noexcept {
    Bytes b = 0;
    if (cls < q_.size()) {
      for (const Packet& p : q_[cls]) b += p.len;
    }
    return b;
  }

  // Read-only view of one class's FIFO, head first (checkpointing).
  const PacketRing& queue(ClassId cls) const {
    assert(cls < q_.size());
    return q_[cls];
  }

  std::size_t packets() const noexcept { return packets_; }
  Bytes bytes() const noexcept { return bytes_; }
  std::size_t num_classes() const noexcept { return q_.size(); }

 private:
  std::vector<PacketRing> q_;
  std::vector<Bytes> class_bytes_;  // per-class byte totals, kept in step
  std::size_t packets_ = 0;
  Bytes bytes_ = 0;
};

}  // namespace hfsc
