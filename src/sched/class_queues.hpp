// Per-class FIFO packet queues shared by all the flat schedulers.
#pragma once

#include <cassert>
#include <deque>
#include <vector>

#include "sched/packet.hpp"
#include "util/types.hpp"

namespace hfsc {

class ClassQueues {
 public:
  void ensure(ClassId cls) {
    if (cls >= q_.size()) q_.resize(cls + 1);
  }

  void push(Packet pkt) {
    ensure(pkt.cls);
    bytes_ += pkt.len;
    ++packets_;
    q_[pkt.cls].push_back(pkt);
  }

  bool has(ClassId cls) const noexcept {
    return cls < q_.size() && !q_[cls].empty();
  }

  const Packet& head(ClassId cls) const {
    assert(has(cls));
    return q_[cls].front();
  }

  Packet pop(ClassId cls) {
    assert(has(cls));
    Packet p = q_[cls].front();
    q_[cls].pop_front();
    bytes_ -= p.len;
    --packets_;
    return p;
  }

  std::size_t queue_len(ClassId cls) const noexcept {
    return cls < q_.size() ? q_[cls].size() : 0;
  }

  // Bytes queued for one class (O(queue length); auditing/introspection).
  Bytes bytes_in(ClassId cls) const noexcept {
    Bytes b = 0;
    if (cls < q_.size()) {
      for (const Packet& p : q_[cls]) b += p.len;
    }
    return b;
  }

  // Read-only view of one class's FIFO, head first (checkpointing).
  const std::deque<Packet>& queue(ClassId cls) const {
    assert(cls < q_.size());
    return q_[cls];
  }

  std::size_t packets() const noexcept { return packets_; }
  Bytes bytes() const noexcept { return bytes_; }
  std::size_t num_classes() const noexcept { return q_.size(); }

 private:
  std::vector<std::deque<Packet>> q_;
  std::size_t packets_ = 0;
  Bytes bytes_ = 0;
};

}  // namespace hfsc
