#include "sched/sced.hpp"

#include <cassert>

namespace hfsc {

ClassId Sced::add_session(const ServiceCurve& sc) {
  assert(sc.is_supported());
  if (sessions_.empty()) sessions_.emplace_back();  // burn id 0
  sessions_.push_back(Session{sc, RuntimeCurve{}, 0, 0, false});
  const ClassId id = static_cast<ClassId>(sessions_.size() - 1);
  queues_.ensure(id);
  return id;
}

void Sced::set_head_deadline(ClassId cls) {
  Session& s = sessions_[cls];
  s.head_deadline = s.dc.y2x(sat_add(s.work, queues_.head(cls).len));
  by_deadline_.push_or_update(cls, s.head_deadline);
}

void Sced::enqueue(TimeNs now, Packet pkt) {
  assert(pkt.cls < sessions_.size());
  Session& s = sessions_[pkt.cls];
  const bool was_empty = !queues_.has(pkt.cls);
  queues_.push(pkt);
  if (was_empty) {
    if (!s.ever_active) {
      s.dc = RuntimeCurve(s.sc, now, 0);  // D_i initialized to S_i
      s.ever_active = true;
    } else {
      s.dc.min_with(s.sc, now, s.work);   // eq. (3)
    }
    set_head_deadline(pkt.cls);
  }
}

std::optional<Packet> Sced::dequeue(TimeNs /*now*/) {
  if (by_deadline_.empty()) return std::nullopt;
  const ClassId cls = by_deadline_.pop();
  Session& s = sessions_[cls];
  Packet p = queues_.pop(cls);
  s.work += p.len;
  if (queues_.has(cls)) set_head_deadline(cls);
  return p;
}

}  // namespace hfsc
