// Runtime invariant auditor for the H-FSC scheduler.
//
// The paper's guarantees (Theorems 1-2, Section VI) rest on the mutual
// consistency of the scheduler's internal state: the deadline/eligible
// curves and the eligible set on the real-time side, the virtual curves
// and per-parent active-children heaps on the link-sharing side, and the
// shared packet-queue accounting.  audit() cross-checks all of it in one
// O(classes + backlog) pass and reports every violation found:
//
//  * tree structure: parent/child links and idx_in_parent agree; deleted
//    classes are fully detached (no queue, not active, not in the rt set);
//  * queue accounting: packets only at live leaves; per-class packet and
//    byte sums match the ClassQueues totals;
//  * active flags: a leaf is active iff it has an ls curve and a backlog;
//    an interior class (and the root) is active iff its active-children
//    heap is non-empty; every active class's ancestors are active;
//  * heaps: each parent's heap holds exactly its active children, each
//    heap key equals the child's virtual time, and the vt watermark
//    dominates every key;
//  * real-time side: eligible-set membership <=> backlogged rt leaf; the
//    stored (e, d) match the curves' inverses at the operating point and
//    e <= d (the eligible curve never lags the deadline curve);
//  * curve/counter consistency: vt = V^-1(w) for active classes,
//    fit = U^-1(w) under an upper limit, rt service <= total service;
//  * service conservation: the sum of live children's total service never
//    exceeds the parent's.
//
// Intended uses: after-the-fact checks in tests, the every-N-operations
// self-check hook (Hfsc::enable_self_check), and the fault-injection
// harness (sim/fault_injector.hpp).
#pragma once

#include <string>
#include <vector>

#include "core/hfsc.hpp"

namespace hfsc {

struct AuditReport {
  std::vector<std::string> failures;

  bool ok() const noexcept { return failures.empty(); }
  // All failures, one per line ("audit clean" when ok()).
  std::string to_string() const;
};

AuditReport audit(const Hfsc& sched);

}  // namespace hfsc
