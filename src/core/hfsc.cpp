#include "core/hfsc.hpp"

#include <algorithm>
#include <cassert>

#include "core/auditor.hpp"

namespace hfsc {

namespace {
// Overflow-free average of two u64 values.
constexpr TimeNs avg(TimeNs a, TimeNs b) noexcept {
  return a / 2 + b / 2 + (a & b & 1);
}
}  // namespace

Hfsc::Hfsc(RateBps link_rate, EligibleSetKind kind, SystemVtPolicy vt_policy)
    : link_rate_(link_rate), es_kind_(kind), vt_policy_(vt_policy),
      rt_requests_(make_eligible_set(kind)) {
  ensure(link_rate > 0, Errc::kInvalidArgument, "link rate must be > 0");
  if (kind == EligibleSetKind::kDualHeap) {
    rt_fast_ = static_cast<DualHeapEligibleSet*>(rt_requests_.get());
  }
  nodes_.emplace_back();  // root
  hot_.emplace_back();
  curves_.emplace_back();
}

void Hfsc::check_config(const ClassConfig& cfg, bool leaf) {
  ensure(cfg.rt.is_zero() || cfg.rt.is_supported(), Errc::kUnsupportedCurve,
         "rt curve must be concave or convex with m1 = 0");
  ensure(cfg.ls.is_zero() || cfg.ls.is_supported(), Errc::kUnsupportedCurve,
         "ls curve must be concave or convex with m1 = 0");
  ensure(cfg.ul.is_zero() || cfg.ul.is_supported(), Errc::kUnsupportedCurve,
         "ul curve must be concave or convex with m1 = 0");
  if (leaf) {
    ensure(!cfg.rt.is_zero() || !cfg.ls.is_zero(), Errc::kMissingCurve,
           "a leaf needs at least one of rt/ls to ever receive service");
  } else {
    ensure(!cfg.ls.is_zero(), Errc::kMissingCurve,
           "interior classes need a link-sharing curve");
  }
}

void Hfsc::maybe_self_check() {
  // A Txn commit counts as one operation; it self-checks once at the end
  // rather than after each applied op (mid-apply state is transient).
  if (self_check_every_ == 0 || in_self_check_ || in_txn_apply_) return;
  if (++op_count_ % self_check_every_ != 0) return;
  in_self_check_ = true;  // audit() reads state only; guard re-entry anyway
  const AuditReport report = audit(*this);
  in_self_check_ = false;
  ++self_checks_run_;
  if (!report.ok()) {
    throw Error(Errc::kInvariantViolation, report.to_string());
  }
}

ClassId Hfsc::add_class(ClassId parent, ClassConfig cfg) {
  ensure(parent < nodes_.size() && (parent == kRootClass || live(parent)),
         Errc::kInvalidClass, "unknown or deleted parent class");
  ensure(!queues_.has(parent), Errc::kHasBacklog,
         "cannot add children under a class that queues packets");
  ensure(parent == kRootClass || hot_[parent].has_ls(), Errc::kMissingCurve,
         "interior classes need a link-sharing curve");
  check_config(cfg, /*leaf=*/true);
  if (admission_ && !in_txn_apply_) {
    std::vector<ServiceCurve> curves = leaf_rt_curves();
    if (parent != kRootClass && nodes_[parent].children.empty() &&
        hot_[parent].has_rt()) {
      // The parent turns interior; its rt curve becomes inert.
      curves.erase(
          std::find(curves.begin(), curves.end(), nodes_[parent].cfg.rt));
    }
    if (!cfg.rt.is_zero()) curves.push_back(cfg.rt);
    apply_admission(curves);
  }
  maybe_self_check();

  Node n;
  n.cfg = cfg;
  HotClass h;
  h.parent = parent;
  h.refresh_flags(cfg);
  h.idx_in_parent = static_cast<std::uint32_t>(nodes_[parent].children.size());
  // Anchor all runtime curves at the origin; the becomes-active min-fold
  // re-anchors them (min(S(t), S(t - a) + c) == S(t - a) + c at first
  // activation, so no special first-time flag is needed).
  ClassCurves cc;
  if (!cfg.rt.is_zero()) {
    cc.dc = RuntimeCurve(cfg.rt, 0, 0);
    cc.ec = RuntimeCurve(cfg.rt, 0, 0);
    if (cfg.rt.m1 < cfg.rt.m2) cc.ec.flatten_to_second_slope();
  }
  if (!cfg.ls.is_zero()) cc.vc = RuntimeCurve(cfg.ls, 0, 0);
  if (!cfg.ul.is_zero()) cc.uc = RuntimeCurve(cfg.ul, 0, 0);

  if (h.has_ul()) ++num_ul_;
  nodes_.push_back(std::move(n));
  hot_.push_back(h);
  curves_.push_back(cc);
  const ClassId id = static_cast<ClassId>(nodes_.size() - 1);
  nodes_[parent].children.push_back(id);
  queues_.ensure(id);
  return id;
}

TimeNs Hfsc::system_vt(const Node& p) const noexcept {
  // Section IV-C: v_max is the running watermark, which also carries the
  // virtual clock across the parent's idle periods; v_min is the top of
  // the active-children heap.  The paper's policy is the midpoint.
  if (p.active_children.empty()) return p.vt_watermark;
  switch (vt_policy_) {
    case SystemVtPolicy::kMin:
      return p.active_children.top_key();
    case SystemVtPolicy::kMax:
      return p.vt_watermark;
    case SystemVtPolicy::kMidpoint:
      break;
  }
  return avg(p.active_children.top_key(), p.vt_watermark);
}

void Hfsc::update_ed(ClassId cls, TimeNs now) {
  HotClass& h = hot_[cls];
  ClassCurves& cc = curves_[cls];
  assert(h.has_rt() && queues_.has(cls));
  const ServiceCurve& rt = nodes_[cls].cfg.rt;
  cc.dc.min_with(rt, now, h.cumul);
  cc.ec.min_with(rt, now, h.cumul);
  if (rt.m1 < rt.m2) cc.ec.flatten_to_second_slope();
  h.e = cc.ec.y2x(h.cumul);
  h.d = cc.dc.y2x(sat_add(h.cumul, queues_.head(cls).len));
  es_update(cls, h.e, h.d, now);
}

void Hfsc::update_d(ClassId cls) {
  HotClass& h = hot_[cls];
  assert(h.has_rt() && queues_.has(cls));
  h.d = curves_[cls].dc.y2x(sat_add(h.cumul, queues_.head(cls).len));
}

void Hfsc::activate_ls_path(ClassId cls, TimeNs now) {
  for (ClassId c = cls; c != kRootClass && !hot_[c].active();) {
    HotClass& h = hot_[c];
    Node& p = nodes_[h.parent];
    const TimeNs v = system_vt(p);
    ClassCurves& cc = curves_[c];
    const ClassConfig& cfg = nodes_[c].cfg;
    cc.vc.min_with(cfg.ls, v, h.total);
    h.vt = cc.vc.y2x(h.total);
    if (h.has_ul()) {
      cc.uc.min_with(cfg.ul, now, h.total);
      h.fit = cc.uc.y2x(h.total);
    }
    h.set_active(true);
    p.active_children.push(h.idx_in_parent, h.vt);
    p.vt_watermark = std::max(p.vt_watermark, h.vt);
    c = h.parent;
  }
  hot_[kRootClass].set_active(true);
}

void Hfsc::charge_total(ClassId cls, Bytes len, TimeNs /*now*/) {
  // Walk the hot slab leaf-to-root: each step reads one HotClass line and
  // (for active non-root classes) the matching curve-slab entry.  Both
  // slab bases are pinned so the compiler keeps them in registers across
  // the y2x and heap-update calls (no mutator runs inside the walk).
  HotClass* const hot = hot_.data();
  ClassCurves* const curves = curves_.data();
  for (ClassId c = cls;;) {
    HotClass& h = hot[c];
    h.total += len;
    if (c != kRootClass && h.active()) {
      Node& p = nodes_[h.parent];
      h.vt = curves[c].vc.y2x(h.total);
      p.active_children.update(h.idx_in_parent, h.vt);
      p.vt_watermark = std::max(p.vt_watermark, h.vt);
    }
    if (h.has_ul()) h.fit = curves[c].uc.y2x(h.total);
    if (c == kRootClass) break;
    c = h.parent;
  }
}

void Hfsc::set_passive(ClassId cls) {
  for (ClassId c = cls; c != kRootClass;) {
    HotClass& h = hot_[c];
    if (!h.active()) break;
    Node& p = nodes_[h.parent];
    h.set_active(false);
    p.active_children.erase(h.idx_in_parent);
    if (!p.active_children.empty()) return;
    c = h.parent;
  }
  hot_[kRootClass].set_active(false);
}

std::optional<ClassId> Hfsc::ls_select(TimeNs now) {
  ls_next_fit_ = kTimeInfinity;
  if (!hot_[kRootClass].active()) return std::nullopt;
  ClassId c = kRootClass;
  if (num_ul_ == 0) {
    // No upper-limit curve anywhere in the hierarchy: the min-vt child is
    // always serviceable, so descend without the pop/restore machinery.
    while (!nodes_[c].children.empty()) {
      Node& n = nodes_[c];
      if (n.active_children.empty()) return std::nullopt;
      c = n.children[n.active_children.top_id()];
    }
    return c;
  }
  while (!nodes_[c].children.empty()) {
    Node& n = nodes_[c];
    if (n.active_children.empty()) return std::nullopt;
    // Pop upper-limit-blocked children aside until a serviceable one
    // surfaces, then restore them.  The scratch vector is a member so the
    // steady state allocates nothing.
    ls_blocked_.clear();
    std::optional<std::uint32_t> chosen;
    while (!n.active_children.empty()) {
      const std::uint32_t idx = n.active_children.top_id();
      const ClassId child = n.children[idx];
      if (!hot_[child].has_ul() || hot_[child].fit <= now) {
        chosen = idx;
        break;
      }
      ls_next_fit_ = std::min(ls_next_fit_, hot_[child].fit);
      ls_blocked_.emplace_back(idx, n.active_children.top_key());
      n.active_children.pop();
    }
    for (const auto& [idx, key] : ls_blocked_) n.active_children.push(idx, key);
    if (!chosen) return std::nullopt;
    c = n.children[*chosen];
  }
  return c;
}

Packet Hfsc::serve(ClassId leaf, Criterion crit, TimeNs now) {
  HotClass& h = hot_[leaf];
  Node& n = nodes_[leaf];
  Packet p = queues_.pop(leaf);
  if (crit == Criterion::kRealTime) {
    h.cumul += p.len;
    ++rt_selections_;
  } else {
    ++ls_selections_;
  }
  ++n.pkts_sent;
  n.last_progress = now;
  n.starved_flagged = false;
  charge_total(leaf, p.len, now);
  if (queues_.has(leaf)) {
    if (h.has_rt()) {
      if (crit == Criterion::kRealTime) {
        // Fig. 5(a) tail: new head under the real-time criterion.
        h.e = curves_[leaf].ec.y2x(h.cumul);
      }
      // Fig. 5(b): after a link-sharing service only the deadline moves
      // (c did not change but the head packet's length may differ).
      update_d(leaf);
      es_update(leaf, h.e, h.d, now);
    }
  } else {
    if (h.has_rt()) es_erase(leaf);
    if (h.active()) set_passive(leaf);
  }
  last_criterion_ = crit;
  return p;
}

void Hfsc::change_class(TimeNs now, ClassId cls, ClassConfig cfg) {
  ensure(live(cls), Errc::kInvalidClass, "unknown or deleted class");
  Node& n = nodes_[cls];
  HotClass& h = hot_[cls];
  ClassCurves& cc = curves_[cls];
  check_config(cfg, /*leaf=*/n.children.empty());
  if (admission_ && !in_txn_apply_ && n.children.empty()) {
    std::vector<ServiceCurve> curves = leaf_rt_curves();
    if (h.has_rt()) {
      curves.erase(std::find(curves.begin(), curves.end(), n.cfg.rt));
    }
    if (!cfg.rt.is_zero()) curves.push_back(cfg.rt);
    apply_admission(curves);
  }
  maybe_self_check();
  now = clamp_now(now);

  const bool had_ls = h.has_ls();
  const bool had_ul = h.has_ul();
  n.cfg = cfg;
  h.refresh_flags(cfg);
  if (had_ul && !h.has_ul()) --num_ul_;
  if (!had_ul && h.has_ul()) ++num_ul_;

  // Real-time side: re-anchor at (now, c).
  if (h.has_rt()) {
    cc.dc = RuntimeCurve(cfg.rt, now, h.cumul);
    cc.ec = RuntimeCurve(cfg.rt, now, h.cumul);
    if (cfg.rt.m1 < cfg.rt.m2) cc.ec.flatten_to_second_slope();
    if (queues_.has(cls)) {
      h.e = cc.ec.y2x(h.cumul);
      h.d = cc.dc.y2x(sat_add(h.cumul, queues_.head(cls).len));
      es_update(cls, h.e, h.d, now);
    }
  } else if (es_contains(cls)) {
    es_erase(cls);
  }

  // Link-sharing side: re-anchor at (v, w).
  if (h.has_ls()) {
    cc.vc = RuntimeCurve(cfg.ls, h.vt, h.total);
    if (h.active()) {
      h.vt = cc.vc.y2x(h.total);
      Node& p = nodes_[h.parent];
      p.active_children.update(h.idx_in_parent, h.vt);
      p.vt_watermark = std::max(p.vt_watermark, h.vt);
    } else if (queues_.has(cls)) {
      activate_ls_path(cls, now);
    }
  } else if (had_ls && h.active()) {
    set_passive(cls);
  }

  // Upper limit: re-anchor at (now, w).
  if (h.has_ul()) {
    cc.uc = RuntimeCurve(cfg.ul, now, h.total);
    h.fit = cc.uc.y2x(h.total);
  } else {
    h.fit = 0;
  }
}

void Hfsc::delete_class(ClassId cls) {
  ensure(live(cls), Errc::kInvalidClass, "unknown or deleted class");
  Node& n = nodes_[cls];
  HotClass& h = hot_[cls];
  ensure(n.children.empty(), Errc::kHasChildren, "delete children first");
  if (admission_ && !in_txn_apply_) {
    std::vector<ServiceCurve> curves = leaf_rt_curves();
    if (h.has_rt()) {
      curves.erase(std::find(curves.begin(), curves.end(), n.cfg.rt));
    }
    if (h.parent != kRootClass && nodes_[h.parent].children.size() == 1 &&
        hot_[h.parent].has_rt()) {
      // The parent becomes a leaf again; its rt guarantee re-activates
      // and must fit back under the link curve.
      curves.push_back(nodes_[h.parent].cfg.rt);
    }
    apply_admission(curves);
  }
  maybe_self_check();

  // Purge queued packets, counting them as drops.
  while (queues_.has(cls)) {
    const Packet p = queues_.pop(cls);
    ++n.pkts_dropped;
    n.bytes_dropped += p.len;
  }
  if (es_contains(cls)) es_erase(cls);
  if (h.active()) set_passive(cls);
  if (h.has_ul()) --num_ul_;

  // Detach from the parent: swap-remove from the children vector and fix
  // the displaced sibling's index (including its heap entry if active).
  Node& p = nodes_[h.parent];
  const std::uint32_t idx = h.idx_in_parent;
  const std::uint32_t last = static_cast<std::uint32_t>(p.children.size() - 1);
  if (idx != last) {
    const ClassId moved = p.children[last];
    p.children[idx] = moved;
    HotClass& m = hot_[moved];
    if (m.active()) {
      const TimeNs key = p.active_children.key_of(m.idx_in_parent);
      p.active_children.erase(m.idx_in_parent);
      p.active_children.push(idx, key);
    }
    m.idx_in_parent = idx;
  }
  p.children.pop_back();
  n.deleted = true;
}

void Hfsc::set_queue_limit(ClassId cls, std::size_t max_packets) {
  ensure(live(cls), Errc::kInvalidClass, "unknown or deleted class");
  maybe_self_check();
  nodes_[cls].queue_limit = max_packets;
}

void Hfsc::enqueue(TimeNs now, Packet pkt) {
  maybe_self_check();
  now = clamp_now(now);
  // Data-path hardening: absorb malformed events without throwing (the
  // forwarding plane must survive hostile input; see util/errors.hpp).
  // Malformed packets are counted ONLY in the rejection taxonomy, never
  // as per-class drops: `pkts_dropped` means "accepted, then dropped"
  // (queue limit, push-out, watchdog, delete purge), so that
  //   offered == sent + dropped + rejected + backlog
  // holds with no overlap between the buckets.
  if (pkt.cls == 0 || pkt.cls >= nodes_.size() || nodes_[pkt.cls].deleted ||
      !nodes_[pkt.cls].children.empty()) {
    ++counters_.bad_class;
    return;
  }
  Node& n = nodes_[pkt.cls];
  if (pkt.len == 0) {
    ++counters_.zero_len;
    return;
  }
  if (pkt.len > max_packet_len_) {
    ++counters_.oversized;
    return;
  }
  if (n.queue_limit != 0 && queues_.queue_len(pkt.cls) >= n.queue_limit) {
    ++n.pkts_dropped;
    n.bytes_dropped += pkt.len;
    return;
  }
  const bool was_empty = !queues_.has(pkt.cls);
  queues_.push(pkt);
  if (!was_empty) return;
  n.last_progress = now;  // a starvation episode starts at backlog onset
  n.starved_flagged = false;
  const HotClass& h = hot_[pkt.cls];
  if (h.has_rt()) update_ed(pkt.cls, now);
  if (h.has_ls()) activate_ls_path(pkt.cls, now);
}

bool Hfsc::drop_tail(ClassId cls) {
  if (cls == kRootClass || cls >= nodes_.size() || nodes_[cls].deleted ||
      !nodes_[cls].children.empty() || !queues_.has(cls)) {
    return false;
  }
  Node& n = nodes_[cls];
  const HotClass& h = hot_[cls];
  const Packet p = queues_.pop_back(cls);
  ++n.pkts_dropped;
  n.bytes_dropped += p.len;
  if (!queues_.has(cls)) {
    if (h.has_rt() && es_contains(cls)) es_erase(cls);
    if (h.active()) set_passive(cls);
  }
  return true;
}

std::optional<Packet> Hfsc::dequeue(TimeNs now) {
  maybe_self_check();
  now = clamp_now(now);
  maybe_watchdog(now);
  if (queues_.packets() == 0) return std::nullopt;
  // Real-time criterion: used exactly when some leaf is eligible — i.e.
  // when leaving the choice to link-sharing could endanger a guarantee.
  if (auto cls = es_min_deadline_eligible(now)) {
    return serve(*cls, Criterion::kRealTime, now);
  }
  if (auto leaf = ls_select(now)) {
    return serve(*leaf, Criterion::kLinkShare, now);
  }
  // Backlogged but nothing may be sent now (rt-only classes not yet
  // eligible and/or upper limits blocking); next_wakeup() says when to
  // try again.
  return std::nullopt;
}

std::size_t Hfsc::dequeue_batch(TimeNs now, std::size_t max_pkts,
                                std::vector<Packet>& out) {
  // Bit-identical to a loop of single dequeue() calls stopping at the
  // first nullopt: clamp_now is idempotent at a fixed `now` (the first
  // call advances the watermark, later calls return it unchanged) and so
  // is maybe_watchdog (its scan window moves past `now` on the first
  // call), so both hoist out of the loop.  maybe_self_check stays inside
  // so the audit cadence — and therefore op_count_ — matches the single
  // calls exactly, including the final failing call's check when the
  // batch ends early.
  now = clamp_now(now);
  maybe_watchdog(now);
  std::size_t served = 0;
  while (served < max_pkts) {
    maybe_self_check();
    if (queues_.packets() == 0) break;
    Criterion crit = Criterion::kRealTime;
    std::optional<ClassId> leaf = es_min_deadline_eligible(now);
    if (!leaf) {
      leaf = ls_select(now);
      crit = Criterion::kLinkShare;
      if (!leaf) break;
    }
    out.push_back(serve(*leaf, crit, now));
    ++served;
  }
  return served;
}

TimeNs Hfsc::next_wakeup(TimeNs /*now*/) const noexcept {
  return std::min(es_next_eligible_time(), ls_next_fit_);
}

// ----------------------------------------------------- admission control

std::vector<ServiceCurve> Hfsc::leaf_rt_curves() const {
  std::vector<ServiceCurve> out;
  for (ClassId c = 1; c < nodes_.size(); ++c) {
    const Node& n = nodes_[c];
    if (!n.deleted && n.children.empty() && hot_[c].has_rt()) {
      out.push_back(n.cfg.rt);
    }
  }
  return out;
}

void Hfsc::apply_admission(const std::vector<ServiceCurve>& curves) {
  AdmissionControl fresh(admission_->link_rate());
  for (const ServiceCurve& sc : curves) {
    if (!fresh.admit(sc)) {
      ++admission_rejections_;
      throw Error(
          Errc::kAdmissionRejected,
          "real-time curve " + to_string(sc) +
              " pushes the aggregate above the link curve (link rate " +
              std::to_string(fresh.link_rate()) + " B/s, " +
              std::to_string(fresh.utilization() * 100.0) +
              "% already reserved); lower the curve, delete another "
              "real-time class, or raise the admission link rate");
    }
  }
  *admission_ = std::move(fresh);
}

void Hfsc::enable_admission_control(RateBps link_rate) {
  // The AdmissionControl constructor rejects link_rate == 0.  Validate
  // the existing hierarchy before enabling so a failure leaves the
  // previous admission state (enabled or not) untouched.
  auto fresh = std::make_unique<AdmissionControl>(link_rate);
  for (const ServiceCurve& sc : leaf_rt_curves()) {
    if (!fresh->admit(sc)) {
      ++admission_rejections_;
      throw Error(Errc::kAdmissionRejected,
                  "existing real-time curves already exceed the link curve "
                  "(offending curve " +
                      to_string(sc) +
                      "); admission control left unchanged");
    }
  }
  admission_ = std::move(fresh);
}

// -------------------------------------------------- starvation watchdog

void Hfsc::maybe_watchdog(TimeNs now) {
  if (starvation_horizon_ == 0 || now < next_starvation_scan_) return;
  next_starvation_scan_ =
      sat_add(now, std::max<TimeNs>(1, starvation_horizon_ / 4));
  for (ClassId c = 1; c < nodes_.size(); ++c) {
    Node& n = nodes_[c];
    if (n.deleted || !n.children.empty() || n.starved_flagged) continue;
    if (!queues_.has(c)) continue;
    if (now - n.last_progress >= starvation_horizon_) {
      n.starved_flagged = true;
      ++starvation_events_;
    }
  }
}

std::vector<ClassId> Hfsc::starved_classes(TimeNs now) const {
  std::vector<ClassId> out;
  if (starvation_horizon_ == 0) return out;
  for (ClassId c = 1; c < nodes_.size(); ++c) {
    const Node& n = nodes_[c];
    if (n.deleted || !n.children.empty() || !queues_.has(c)) continue;
    if (now >= n.last_progress &&
        now - n.last_progress >= starvation_horizon_) {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace hfsc
