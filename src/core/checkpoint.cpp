#include "core/checkpoint.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/auditor.hpp"
#include "core/hfsc.hpp"

namespace hfsc {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw Error(Errc::kBadCheckpoint, what);
}

// Reads one whitespace-delimited token of the expected literal value;
// keeps record parsing self-describing and truncation loud.
void expect(std::istream& in, const char* literal) {
  std::string tok;
  if (!(in >> tok) || tok != literal) {
    bad("expected '" + std::string(literal) + "', got '" + tok + "'");
  }
}

template <typename T>
T num(std::istream& in, const char* field) {
  T v{};
  if (!(in >> v)) bad(std::string("missing or malformed field: ") + field);
  return v;
}

void put_curve(std::ostream& out, const char* tag, const RuntimeCurve& c) {
  out << "curve " << tag << ' ' << c.x() << ' ' << c.y() << ' ' << c.dx()
      << ' ' << c.dy() << ' ' << c.m1() << ' ' << c.m2() << '\n';
}

RuntimeCurve get_curve(std::istream& in, const char* tag) {
  expect(in, "curve");
  expect(in, tag);
  const TimeNs x = num<TimeNs>(in, "curve.x");
  const Bytes y = num<Bytes>(in, "curve.y");
  const TimeNs dx = num<TimeNs>(in, "curve.dx");
  const Bytes dy = num<Bytes>(in, "curve.dy");
  const RateBps m1 = num<RateBps>(in, "curve.m1");
  const RateBps m2 = num<RateBps>(in, "curve.m2");
  return RuntimeCurve::from_parts(x, y, dx, dy, m1, m2);
}

void put_sc(std::ostream& out, const ServiceCurve& sc) {
  out << sc.m1 << ' ' << sc.d << ' ' << sc.m2;
}

ServiceCurve get_sc(std::istream& in, const char* field) {
  ServiceCurve sc;
  sc.m1 = num<RateBps>(in, field);
  sc.d = num<TimeNs>(in, field);
  sc.m2 = num<RateBps>(in, field);
  return sc;
}

}  // namespace

void checkpoint(const Hfsc& s, std::ostream& out) {
  checkpoint(s, out, std::string_view{});
}

void checkpoint(const Hfsc& s, std::ostream& out, std::string_view ext) {
  out << "hfsc-checkpoint " << kCheckpointVersion << '\n';
  out << "link " << s.link_rate_ << ' ' << static_cast<int>(s.es_kind_) << ' '
      << static_cast<int>(s.vt_policy_) << '\n';
  out << "maxpkt " << s.max_packet_len_ << '\n';
  out << "clock " << s.last_now_ << ' ' << s.ls_next_fit_ << '\n';
  out << "selections " << s.rt_selections_ << ' ' << s.ls_selections_ << ' '
      << static_cast<int>(s.last_criterion_) << '\n';
  out << "counters " << s.counters_.bad_class << ' ' << s.counters_.zero_len
      << ' ' << s.counters_.oversized << ' '
      << s.counters_.clock_regressions << '\n';
  out << "admission " << (s.admission_ ? 1 : 0) << ' '
      << (s.admission_ ? s.admission_->link_rate() : 0) << '\n';
  out << "watchdog " << s.starvation_horizon_ << '\n';
  out << "ext " << ext.size() << '\n' << ext << '\n';

  // The node record interleaves fields from the cold Node and the hot /
  // curve slabs (core/hfsc.hpp); the emitted text is byte-identical to
  // the pre-slab format, so digests and golden checkpoints carry over.
  out << "classes " << s.nodes_.size() << '\n';
  for (ClassId c = 0; c < s.nodes_.size(); ++c) {
    const auto& n = s.nodes_[c];
    const auto& h = s.hot_[c];
    const auto& cc = s.curves_[c];
    out << "node " << c << ' ' << h.parent << ' ' << h.idx_in_parent << ' '
        << h.active() << ' ' << n.ever_active << ' ' << n.deleted << ' '
        << n.starved_flagged << ' ' << n.queue_limit << ' ' << h.cumul << ' '
        << h.e << ' ' << h.d << ' ' << h.total << ' ' << h.vt << ' ' << h.fit
        << ' ' << n.vt_watermark << ' ' << n.pkts_sent << ' '
        << n.pkts_dropped << ' ' << n.bytes_dropped << ' ' << n.last_progress
        << '\n';
    out << "cfg ";
    put_sc(out, n.cfg.rt);
    out << ' ';
    put_sc(out, n.cfg.ls);
    out << ' ';
    put_sc(out, n.cfg.ul);
    out << '\n';
    put_curve(out, "dc", cc.dc);
    put_curve(out, "ec", cc.ec);
    put_curve(out, "vc", cc.vc);
    put_curve(out, "uc", cc.uc);
  }

  for (ClassId c = 0; c < s.nodes_.size(); ++c) {
    if (c >= s.queues_.num_classes() || !s.queues_.has(c)) continue;
    const auto& q = s.queues_.queue(c);
    out << "queue " << c << ' ' << q.size() << '\n';
    for (const Packet& p : q) {
      out << "pkt " << p.len << ' ' << p.arrival << ' ' << p.seq << '\n';
    }
  }
  out << "end\n";
}

Hfsc restore_checkpoint(std::istream& in) {
  return restore_checkpoint(in, nullptr);
}

Hfsc restore_checkpoint(std::istream& in, std::string* ext) {
  expect(in, "hfsc-checkpoint");
  const int version = num<int>(in, "version");
  if (version != 1 && version != kCheckpointVersion) {
    bad("unsupported checkpoint version " + std::to_string(version) +
        " (this build reads versions 1.." + std::to_string(kCheckpointVersion) +
        ")");
  }
  if (ext) ext->clear();

  expect(in, "link");
  const RateBps link = num<RateBps>(in, "link rate");
  const int es_kind = num<int>(in, "eligible-set kind");
  const int vt_policy = num<int>(in, "vt policy");
  if (link == 0) bad("zero link rate");
  if (es_kind < 0 || es_kind > static_cast<int>(EligibleSetKind::kCalendar)) {
    bad("unknown eligible-set kind " + std::to_string(es_kind));
  }
  if (vt_policy < 0 ||
      vt_policy > static_cast<int>(SystemVtPolicy::kMidpoint)) {
    bad("unknown vt policy " + std::to_string(vt_policy));
  }

  Hfsc s(link, static_cast<EligibleSetKind>(es_kind),
         static_cast<SystemVtPolicy>(vt_policy));

  expect(in, "maxpkt");
  s.max_packet_len_ = num<Bytes>(in, "max packet length");
  if (s.max_packet_len_ == 0) bad("zero max packet length");
  expect(in, "clock");
  s.last_now_ = num<TimeNs>(in, "last_now");
  s.ls_next_fit_ = num<TimeNs>(in, "ls_next_fit");
  expect(in, "selections");
  s.rt_selections_ = num<std::uint64_t>(in, "rt selections");
  s.ls_selections_ = num<std::uint64_t>(in, "ls selections");
  const int crit = num<int>(in, "last criterion");
  if (crit < 0 || crit > 1) bad("unknown criterion " + std::to_string(crit));
  s.last_criterion_ = static_cast<Criterion>(crit);
  expect(in, "counters");
  s.counters_.bad_class = num<std::uint64_t>(in, "bad_class");
  s.counters_.zero_len = num<std::uint64_t>(in, "zero_len");
  s.counters_.oversized = num<std::uint64_t>(in, "oversized");
  s.counters_.clock_regressions = num<std::uint64_t>(in, "clock_regressions");
  expect(in, "admission");
  const int adm_on = num<int>(in, "admission flag");
  const RateBps adm_rate = num<RateBps>(in, "admission rate");
  if (adm_on != 0 && adm_on != 1) bad("admission flag must be 0/1");
  expect(in, "watchdog");
  s.starvation_horizon_ = num<TimeNs>(in, "starvation horizon");

  // Version 2: the opaque extension payload, length-prefixed so it may
  // contain arbitrary bytes (including newlines and checkpoint keywords).
  if (version >= 2) {
    expect(in, "ext");
    const std::size_t ext_len = num<std::size_t>(in, "ext length");
    constexpr std::size_t kMaxExt = 1u << 26;
    if (ext_len > kMaxExt) bad("implausible ext payload length");
    if (in.get() != '\n') bad("malformed ext record header");
    std::string payload(ext_len, '\0');
    if (ext_len > 0 && !in.read(payload.data(), static_cast<std::streamsize>(
                                                    ext_len))) {
      bad("truncated ext payload");
    }
    if (in.get() != '\n') bad("ext payload not newline-terminated");
    if (ext) *ext = std::move(payload);
  }

  expect(in, "classes");
  const std::size_t n_classes = num<std::size_t>(in, "class count");
  if (n_classes == 0) bad("a checkpoint always contains the root class");
  constexpr std::size_t kMaxClasses = 1u << 24;
  if (n_classes > kMaxClasses) bad("implausible class count");

  s.nodes_.resize(n_classes);
  s.hot_.resize(n_classes);
  s.curves_.resize(n_classes);
  for (ClassId c = 0; c < n_classes; ++c) {
    expect(in, "node");
    const ClassId id = num<ClassId>(in, "node id");
    if (id != c) bad("node records out of order");
    auto& n = s.nodes_[c];
    auto& h = s.hot_[c];
    auto& cc = s.curves_[c];
    h.parent = num<ClassId>(in, "parent");
    h.idx_in_parent = num<std::uint32_t>(in, "idx_in_parent");
    h.set_active(num<bool>(in, "active"));
    n.ever_active = num<bool>(in, "ever_active");
    n.deleted = num<bool>(in, "deleted");
    n.starved_flagged = num<bool>(in, "starved_flagged");
    n.queue_limit = num<std::size_t>(in, "queue_limit");
    h.cumul = num<Bytes>(in, "cumul");
    h.e = num<TimeNs>(in, "e");
    h.d = num<TimeNs>(in, "d");
    h.total = num<Bytes>(in, "total");
    h.vt = num<TimeNs>(in, "vt");
    h.fit = num<TimeNs>(in, "fit");
    n.vt_watermark = num<TimeNs>(in, "vt_watermark");
    n.pkts_sent = num<std::uint64_t>(in, "pkts_sent");
    n.pkts_dropped = num<std::uint64_t>(in, "pkts_dropped");
    n.bytes_dropped = num<Bytes>(in, "bytes_dropped");
    n.last_progress = num<TimeNs>(in, "last_progress");
    expect(in, "cfg");
    n.cfg.rt = get_sc(in, "cfg.rt");
    n.cfg.ls = get_sc(in, "cfg.ls");
    n.cfg.ul = get_sc(in, "cfg.ul");
    cc.dc = get_curve(in, "dc");
    cc.ec = get_curve(in, "ec");
    cc.vc = get_curve(in, "vc");
    cc.uc = get_curve(in, "uc");
    h.refresh_flags(n.cfg);  // cfg was read directly; re-derive the flags
    if (c != 0 && !n.deleted && h.has_ul()) ++s.num_ul_;
    if (c == 0 && (h.parent != kRootClass || n.deleted)) {
      bad("corrupt root record");
    }
    if (c != 0 && (h.parent >= n_classes || h.parent == c)) {
      bad("node " + std::to_string(c) + " has an out-of-range parent");
    }
  }

  // Rebuild the children vectors from (parent, idx_in_parent).  Tombstoned
  // nodes are not attached anywhere; live ones must tile their parent's
  // vector exactly.
  for (ClassId c = 1; c < n_classes; ++c) {
    const auto& h = s.hot_[c];
    if (s.nodes_[c].deleted) continue;
    if (s.nodes_[h.parent].deleted) bad("live child under a deleted parent");
    auto& kids = s.nodes_[h.parent].children;
    if (kids.size() <= h.idx_in_parent) kids.resize(h.idx_in_parent + 1, 0);
    if (kids[h.idx_in_parent] != 0) bad("duplicate idx_in_parent");
    kids[h.idx_in_parent] = c;
  }
  for (ClassId c = 0; c < n_classes; ++c) {
    for (const ClassId kid : s.nodes_[c].children) {
      if (kid == 0) bad("gap in a children vector");
    }
  }

  // Queues.  ensure() sizes the per-class vector; packets re-enter in FIFO
  // order so heads (and therefore deadlines) match the original.
  s.queues_.ensure(static_cast<ClassId>(n_classes - 1));
  std::string tok;
  while (in >> tok) {
    if (tok == "end") break;
    if (tok != "queue") bad("expected 'queue' or 'end', got '" + tok + "'");
    const ClassId c = num<ClassId>(in, "queue class");
    const std::size_t count = num<std::size_t>(in, "queue length");
    if (c == 0 || c >= n_classes || s.nodes_[c].deleted ||
        !s.nodes_[c].children.empty()) {
      bad("queued packets on a non-leaf or deleted class");
    }
    if (count == 0) bad("empty queue record");
    for (std::size_t i = 0; i < count; ++i) {
      expect(in, "pkt");
      Packet p;
      p.cls = c;
      p.len = num<Bytes>(in, "pkt.len");
      p.arrival = num<TimeNs>(in, "pkt.arrival");
      p.seq = num<std::uint64_t>(in, "pkt.seq");
      if (p.len == 0) bad("zero-length packet in checkpoint");
      s.queues_.push(p);
    }
  }
  if (tok != "end") bad("truncated checkpoint (missing 'end')");

  // Rebuild the derived structures.  Heap layout is free to differ from
  // the original's: IndexedHeap breaks key ties by id, so the dequeue
  // sequence depends only on the (id, key) content restored here.
  for (ClassId c = 1; c < n_classes; ++c) {
    const auto& h = s.hot_[c];
    if (s.nodes_[c].deleted || !h.active()) continue;
    s.nodes_[h.parent].active_children.push(h.idx_in_parent, h.vt);
  }
  for (ClassId c = 1; c < n_classes; ++c) {
    const auto& n = s.nodes_[c];
    const auto& h = s.hot_[c];
    if (n.deleted || !n.children.empty() || !h.has_rt() ||
        !s.queues_.has(c)) {
      continue;
    }
    s.rt_requests_->update(c, h.e, h.d, s.last_now_);
  }
  if (adm_on) {
    auto fresh = std::make_unique<AdmissionControl>(adm_rate);
    for (const ServiceCurve& sc : s.leaf_rt_curves()) {
      if (!fresh->admit(sc)) {
        bad("checkpointed hierarchy does not fit its admission link rate");
      }
    }
    s.admission_ = std::move(fresh);
  }

  const AuditReport report = audit(s);
  if (!report.ok()) {
    bad("restored state fails the invariant audit: " + report.to_string());
  }
  return s;
}

std::uint64_t state_digest(const Hfsc& s) {
  std::ostringstream out;
  checkpoint(s, out);
  const std::string bytes = out.str();
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64-bit offset basis
  for (const char ch : bytes) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace hfsc
