#include "core/auditor.hpp"

#include <sstream>

namespace hfsc {

std::string AuditReport::to_string() const {
  if (failures.empty()) return "audit clean";
  std::ostringstream os;
  os << failures.size() << " audit failure(s):";
  for (const std::string& f : failures) os << "\n  " << f;
  return os.str();
}

AuditReport audit(const Hfsc& s) {
  AuditReport r;
  const auto& nodes = s.nodes_;
  const auto& queues = s.queues_;
  auto fail = [&](ClassId c, const std::string& what) {
    r.failures.push_back("class " + std::to_string(c) + ": " + what);
  };

  std::size_t queued_packets = 0;
  Bytes queued_bytes = 0;
  std::size_t ul_count = 0;

  for (ClassId c = 0; c < nodes.size(); ++c) {
    const auto& n = nodes[c];
    const auto& h = s.hot_[c];
    const auto& cc = s.curves_[c];

    // The hot path trusts cached curve-presence flags instead of testing
    // cfg each time; they must never drift from the configuration.
    if (h.has_rt() != !n.cfg.rt.is_zero() ||
        h.has_ls() != !n.cfg.ls.is_zero() ||
        h.has_ul() != !n.cfg.ul.is_zero()) {
      fail(c, "cached curve-presence flags disagree with the config");
    }
    if (c != kRootClass && !n.deleted && h.has_ul()) ++ul_count;

    if (n.deleted) {
      if (c == kRootClass) fail(c, "root marked deleted");
      if (h.active()) fail(c, "deleted but active");
      if (queues.has(c)) fail(c, "deleted but has queued packets");
      if (s.rt_requests_->contains(c)) fail(c, "deleted but in eligible set");
      if (!n.children.empty()) fail(c, "deleted with live children");
      continue;
    }

    // Tree structure: the parent/child links must mirror each other.
    if (c != kRootClass) {
      if (h.parent >= nodes.size() || nodes[h.parent].deleted) {
        fail(c, "parent link points at an unknown or deleted class");
        continue;
      }
      const auto& p = nodes[h.parent];
      if (h.idx_in_parent >= p.children.size() ||
          p.children[h.idx_in_parent] != c) {
        fail(c, "idx_in_parent does not match the parent's children list");
      }
    }
    for (std::uint32_t i = 0; i < n.children.size(); ++i) {
      const ClassId child = n.children[i];
      if (child == kRootClass || child >= nodes.size() ||
          nodes[child].deleted) {
        fail(c, "children list holds an invalid class id");
      } else if (s.hot_[child].parent != c) {
        fail(c, "child's parent link disagrees");
      }
    }

    // Queue accounting: packets live only at leaves, and the O(1)
    // per-class byte counter (the governor's enqueue-path signal) must
    // agree with an independent recount of the ring.
    const std::size_t qlen = queues.queue_len(c);
    const Bytes recounted = queues.recount_bytes(c);
    queued_packets += qlen;
    queued_bytes += recounted;
    if (queues.bytes_in(c) != recounted) {
      fail(c, "incremental per-class byte counter out of sync with queue");
    }
    if (qlen > 0 && (c == kRootClass || !n.children.empty())) {
      fail(c, "non-leaf class has queued packets");
    }

    const bool is_leaf = c != kRootClass && n.children.empty();
    const bool backlogged = queues.has(c);

    // Active flags: leaf active <=> ls curve + backlog; interior (and
    // root) active <=> non-empty active-children heap.
    if (is_leaf) {
      const bool should = h.has_ls() && backlogged;
      if (h.active() != should) {
        fail(c, h.active() ? "leaf active without ls backlog"
                           : "backlogged ls leaf not active");
      }
    } else {
      if (h.active() != !n.active_children.empty()) {
        fail(c, "interior active flag disagrees with the children heap");
      }
    }

    // Heap consistency: the heap holds exactly the active children, keyed
    // by their current virtual time, under the watermark.
    std::size_t active_kids = 0;
    for (std::uint32_t i = 0; i < n.children.size(); ++i) {
      const ClassId child = n.children[i];
      if (child >= nodes.size() || nodes[child].deleted) continue;
      const auto& ch = s.hot_[child];
      if (ch.active()) {
        ++active_kids;
        if (!n.active_children.contains(i)) {
          fail(c, "active child missing from the heap");
        } else {
          if (n.active_children.key_of(i) != ch.vt) {
            fail(c, "heap key out of sync with child vt");
          }
          if (n.vt_watermark < n.active_children.key_of(i)) {
            fail(c, "vt watermark below an active child's key");
          }
        }
      } else if (n.active_children.contains(i)) {
        fail(c, "passive child still in the heap");
      }
    }
    if (n.active_children.size() != active_kids) {
      fail(c, "heap size does not match the number of active children");
    }

    // Real-time side: eligible-set membership <=> backlogged rt leaf, and
    // the cached (e, d) equal the curves' inverses at the operating point.
    const bool should_request = is_leaf && h.has_rt() && backlogged;
    if (s.rt_requests_->contains(c) != should_request) {
      fail(c, should_request ? "backlogged rt leaf missing from eligible set"
                             : "stale entry in the eligible set");
    }
    if (should_request) {
      if (h.e != cc.ec.y2x(h.cumul)) {
        fail(c, "cached eligible time disagrees with E^-1(c)");
      }
      if (h.d != cc.dc.y2x(sat_add(h.cumul, queues.head(c).len))) {
        fail(c, "cached deadline disagrees with D^-1(c + len)");
      }
      if (h.e > h.d) fail(c, "eligible time after deadline");
    }

    // Curve/counter consistency.
    if (h.active() && c != kRootClass && h.has_ls() &&
        h.vt != cc.vc.y2x(h.total)) {
      fail(c, "virtual time disagrees with V^-1(w)");
    }
    if (h.has_ul() && h.fit != cc.uc.y2x(h.total)) {
      fail(c, "fit time disagrees with U^-1(w)");
    }
    if (h.cumul > h.total) fail(c, "rt service exceeds total service");

    // Service conservation: live children never out-serve the parent.
    if (!n.children.empty()) {
      Bytes child_total = 0;
      for (const ClassId child : n.children) {
        if (child < nodes.size()) {
          child_total = sat_add(child_total, s.hot_[child].total);
        }
      }
      if (child_total > h.total) {
        fail(c, "children's total service exceeds the parent's");
      }
    }
  }

  // Whole-scheduler queue totals must match the per-class sums.
  if (queued_packets != queues.packets()) {
    fail(kRootClass, "per-class packet counts do not sum to the backlog");
  }
  if (queued_bytes != queues.bytes()) {
    fail(kRootClass, "per-class byte counts do not sum to the backlog");
  }
  if (s.num_ul_ != ul_count) {
    fail(kRootClass, "cached upper-limit class count out of sync (" +
                         std::to_string(s.num_ul_) + " cached, " +
                         std::to_string(ul_count) + " live)");
  }

  // Admission bookkeeping: the tracked aggregate must equal the sum over
  // the live leaves' rt curves, and that sum must still fit under the
  // link curve (normalized PiecewiseLinear representations are canonical,
  // so == is curve equality).
  if (s.admission_) {
    PiecewiseLinear expect;
    std::size_t expect_count = 0;
    for (ClassId c = 1; c < nodes.size(); ++c) {
      const auto& n = nodes[c];
      if (n.deleted || !n.children.empty() || !s.hot_[c].has_rt()) continue;
      expect = expect.sum(PiecewiseLinear::from_service_curve(n.cfg.rt));
      ++expect_count;
    }
    if (s.admission_->admitted() != expect_count) {
      fail(kRootClass, "admission bookkeeping tracks " +
                           std::to_string(s.admission_->admitted()) +
                           " curves but the tree has " +
                           std::to_string(expect_count) + " rt leaves");
    }
    if (!(s.admission_->aggregate() == expect)) {
      fail(kRootClass,
           "admission aggregate curve out of sync with the leaf rt curves");
    }
    const PiecewiseLinear link = PiecewiseLinear::from_service_curve(
        ServiceCurve::linear(s.admission_->link_rate()));
    if (!link.dominates(expect)) {
      fail(kRootClass, "admitted rt curves exceed the admission link curve");
    }
  }

  // Watchdog bookkeeping: progress stamps never run ahead of the
  // scheduler's clock (they are only written with clamped `now` values).
  for (ClassId c = 1; c < nodes.size(); ++c) {
    const auto& n = nodes[c];
    if (n.deleted) continue;
    if (n.last_progress > s.last_now_) {
      fail(c, "starvation progress stamp is in the future");
    }
  }

  return r;
}

}  // namespace hfsc
