// H-FSC — the Hierarchical Fair Service Curve scheduler (paper Section IV).
//
// Each leaf class with a real-time service curve maintains a deadline
// curve D, an eligible curve E and a cumulative real-time service counter
// c; the head packet carries
//
//     e = E^{-1}(c)          d = D^{-1}(c + len)
//
// (Fig. 5).  Every class additionally maintains a virtual curve V, a total
// service counter w (both criteria) and a virtual time v = V^{-1}(w)
// (Fig. 6).  get_packet (Fig. 4) serves by the *real-time criterion* —
// smallest deadline among eligible leaves — whenever some leaf is
// eligible, which is exactly when letting link-sharing decide could
// endanger a leaf's guarantee; otherwise it applies the *link-sharing
// criterion*, descending from the root picking the active child with the
// smallest virtual time (SSF with system virtual time
// (v_min + v_max) / 2, Section IV-C).
//
// Guarantees (Section VI): every leaf's real-time curve is met to within
// one maximum-length packet time (Theorems 1, 2), independent of the
// leaf's depth; interior classes receive service that tracks the FSC
// link-sharing model with bounded discrepancy; a class is never punished
// for having used excess service.
//
// Extension beyond the paper's algorithm description: an optional
// *upper-limit* service curve per class caps the service a class may take
// through the link-sharing criterion (the feature the authors shipped in
// their ALTQ/NetBSD implementation).  A class whose fit time f = U^{-1}(w)
// lies in the future is skipped by the link-sharing criterion; real-time
// guarantees are unaffected.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/eligible_set.hpp"
#include "curve/piecewise.hpp"
#include "curve/runtime_curve.hpp"
#include "sched/class_queues.hpp"
#include "sched/scheduler.hpp"
#include "util/errors.hpp"
#include "util/indexed_heap.hpp"
#include "util/types.hpp"

namespace hfsc {

struct AuditReport;  // core/auditor.hpp

// Which criterion released a packet; exposed for instrumentation.
enum class Criterion { kRealTime, kLinkShare };

struct ClassConfig {
  // Real-time curve (leaf classes only): guaranteed regardless of the
  // rest of the hierarchy.  Zero means the class has no guarantee of its
  // own and is served purely by link-sharing.
  ServiceCurve rt{};
  // Link-sharing curve: the class's share in the FSC link-sharing model.
  // Zero means the class never competes for excess bandwidth (it must
  // then have an rt curve to receive any service at all).
  ServiceCurve ls{};
  // Upper-limit curve (extension, see header comment).  Zero = unlimited.
  ServiceCurve ul{};

  // Convenience: one curve used for both rt and ls — the configuration
  // the paper analyses ("we choose to use the same curve for both the
  // real-time and link-sharing policies", Section IV-A).
  static ClassConfig both(const ServiceCurve& sc) {
    return ClassConfig{sc, sc, ServiceCurve{}};
  }
  static ClassConfig link_share_only(const ServiceCurve& sc) {
    return ClassConfig{ServiceCurve{}, sc, ServiceCurve{}};
  }
  static ClassConfig real_time_only(const ServiceCurve& sc) {
    return ClassConfig{sc, ServiceCurve{}, ServiceCurve{}};
  }
};

// How an interior class's system virtual time is derived from its active
// children.  The paper (Section IV-C) uses the midpoint (v_min + v_max)/2
// and notes that using either extreme alone makes the sibling virtual-time
// discrepancy grow with the number of siblings; kMin/kMax exist for the
// E8 ablation experiment.
enum class SystemVtPolicy { kMin, kMax, kMidpoint };

class Hfsc final : public Scheduler {
 public:
  // Packets longer than this are dropped-and-counted on arrival (a length
  // that large is a corrupted event, and admitting it would distort the
  // byte accounting for everyone else).  Override with set_max_packet_len.
  static constexpr Bytes kDefaultMaxPacketLen = kMaxSanePacketLen;

  // Throws Error{kInvalidArgument} if link_rate == 0.
  explicit Hfsc(RateBps link_rate,
                EligibleSetKind kind = EligibleSetKind::kDualHeap,
                SystemVtPolicy vt_policy = SystemVtPolicy::kMidpoint);

  // Adds a class under `parent` (kRootClass for top level).  Only leaf
  // classes may receive packets; interior classes' rt curves are ignored
  // (the paper's architecture applies the real-time criterion to leaves
  // only).  A class that has queued packets must remain a leaf.
  // Throws Error on misuse: unknown/deleted parent (kInvalidClass),
  // parent with queued packets (kHasBacklog), interior parent without an
  // ls curve (kMissingCurve), unsupported curve shapes
  // (kUnsupportedCurve), or a config with neither rt nor ls
  // (kMissingCurve).
  ClassId add_class(ClassId parent, ClassConfig cfg);

  // Caps a leaf's queue at `max_packets` (0 = unlimited, the default).
  // Arrivals beyond the cap are tail-dropped and counted.  Throws
  // Error{kInvalidClass} for an unknown, root, or deleted class.
  void set_queue_limit(ClassId cls, std::size_t max_packets);

  // Replaces a class's service curves at runtime (the authors'
  // implementation exposes this as HFSC_CHANGE_SC).  Runtime curves are
  // re-anchored at the class's current operating point — (now, c) for the
  // deadline/eligible pair, (v, w) for the virtual curve — so guarantees
  // resume from the present instead of re-crediting the past.  An
  // interior class must keep a link-sharing curve.  Throws Error on
  // misuse (see add_class).
  void change_class(TimeNs now, ClassId cls, ClassConfig cfg);

  // Deletes a leaf class: queued packets are dropped (counted against the
  // class), the class is detached from the tree and its id becomes
  // invalid.  Interior classes must have their children deleted first
  // (Error{kHasChildren} otherwise).
  void delete_class(ClassId cls);

  bool is_deleted(ClassId cls) const { return nodes_[cls].deleted; }

  // --- Transactional reconfiguration --------------------------------------
  // A Txn stages any number of mutations and applies them atomically at
  // commit(): the whole batch is first validated (including the admission
  // check when enabled) against a shadow of the hierarchy, so a failing
  // commit throws hfsc::Error and leaves the live scheduler bit-for-bit
  // untouched.  Staged add_class calls return the ids the classes will
  // have after a successful commit; later staged ops may refer to them.
  // Staging itself never validates — all errors surface at commit.
  //
  // Data-path traffic may keep flowing while a Txn is open; commit
  // re-validates against the state at commit time.  Adding classes
  // directly (outside the Txn) while one is open invalidates any staged
  // ids, which commit detects (Error{kTxnInvalid}).
  class Txn {
   public:
    explicit Txn(Hfsc& sched);
    ~Txn();  // rolls back if still open
    Txn(Txn&&) noexcept;
    Txn(const Txn&) = delete;
    Txn& operator=(const Txn&) = delete;
    Txn& operator=(Txn&&) = delete;

    // Stages a mutation; returns the id the class will have on commit.
    ClassId add_class(ClassId parent, ClassConfig cfg);
    void change_class(TimeNs now, ClassId cls, ClassConfig cfg);
    void delete_class(ClassId cls);
    void set_queue_limit(ClassId cls, std::size_t max_packets);

    // Validates the whole batch against a shadow of the live hierarchy,
    // then applies it.  Throws hfsc::Error on the first invalid op or on
    // admission rejection, leaving the scheduler untouched and the Txn
    // open (fix or rollback).  On success the Txn is closed.
    void commit();
    // Discards all staged ops and closes the Txn.
    void rollback() noexcept;

    bool open() const noexcept { return open_; }
    std::size_t num_ops() const noexcept;

   private:
    struct Op;
    struct Shadow;

    Shadow make_shadow() const;
    // Replays one op onto the shadow, throwing on any rule the live
    // mutators would reject; returns the id assigned (adds only).
    static ClassId replay(Shadow& sh, const Op& op);

    Hfsc* s_;
    std::vector<Op> ops_;
    std::size_t base_classes_;  // num_classes() at begin; id prediction base
    bool open_ = true;
  };

  // Opens a transaction.  Multiple may be staged concurrently, but commits
  // are validated against the live state, last-committer-wins.
  Txn begin() { return Txn(*this); }

  // --- Admission-gated overload protection --------------------------------
  // Once enabled, every mutation (direct or transactional) that would make
  // the sum of leaf real-time curves exceed the linear link curve of
  // `link_rate` throws Error{kAdmissionRejected} and changes nothing (the
  // paper's feasibility condition, Section II).  Enabling validates the
  // current hierarchy first and throws — leaving admission disabled — if
  // it is already infeasible.  Only leaf classes' rt curves count: an
  // interior class's rt curve is inert until it becomes a leaf again.
  void enable_admission_control(RateBps link_rate);
  void enable_admission_control() { enable_admission_control(link_rate_); }
  void disable_admission_control() noexcept { admission_.reset(); }
  bool admission_enabled() const noexcept { return admission_ != nullptr; }
  // Fraction of the admission link's long-term rate reserved; 0 when
  // admission control is disabled.
  double admission_utilization() const noexcept {
    return admission_ ? admission_->utilization() : 0.0;
  }
  // Mutations refused by the admission check so far.
  std::uint64_t admission_rejections() const noexcept {
    return admission_rejections_;
  }
  const AdmissionControl* admission_control() const noexcept {
    return admission_.get();
  }

  // --- Starvation watchdog -------------------------------------------------
  // Flags any backlogged leaf that has received no service for `horizon`
  // nanoseconds (0 disables).  Detection is passive: dequeue() scans at
  // most every horizon/4 of clock advance, counts newly starved classes in
  // starvation_events(), and starved_classes() reports the current set on
  // demand.  Starvation is legal under upper limits or rt-only curves; the
  // watchdog is an observability hook, not an enforcement mechanism.
  void enable_starvation_watchdog(TimeNs horizon) noexcept {
    starvation_horizon_ = horizon;
    next_starvation_scan_ = 0;
  }
  TimeNs starvation_horizon() const noexcept { return starvation_horizon_; }
  std::uint64_t starvation_events() const noexcept {
    return starvation_events_;
  }
  // Backlogged leaves with no service since `now - horizon` (empty when
  // the watchdog is disabled).
  std::vector<ClassId> starved_classes(TimeNs now) const;

  // Data path — never throws.  A packet for an unknown/deleted/interior
  // class, a zero-length packet, or one above the maximum length is
  // dropped and counted in data_path_counters(); a `now` that runs
  // backwards is clamped to the last time seen (and counted) so internal
  // curves stay monotone under clock anomalies.
  void enqueue(TimeNs now, Packet pkt) override;
  std::optional<Packet> dequeue(TimeNs now) override;
  // Batched dequeue: bit-identical to `max_pkts` single dequeue() calls
  // (same packet order, same state_digest — fuzzer-proven), but pays the
  // per-call overhead (clock clamp, watchdog scan check, virtual
  // dispatch) once and keeps the hot slab / heap lines resident across
  // the k selections.
  std::size_t dequeue_batch(TimeNs now, std::size_t max_pkts,
                            std::vector<Packet>& out) override;

  // Push-out buffer management (runtime/governor.hpp): drops the *newest*
  // queued packet of `cls`, counted against the class like any other
  // drop.  Data-path semantics — never throws; returns false when `cls`
  // is not a live backlogged leaf.  The head packet is untouched, so the
  // cached eligible time and deadline stay valid; when the last packet
  // goes the leaf leaves the eligible set and the link-sharing tree
  // exactly as if it had drained.
  bool drop_tail(ClassId cls);

  // Bytes currently queued for one leaf (O(1); governor thresholds).
  Bytes queued_bytes(ClassId cls) const noexcept {
    return queues_.bytes_in(cls);
  }

  void set_max_packet_len(Bytes len) {
    ensure(len > 0, Errc::kInvalidArgument, "max packet length must be > 0");
    max_packet_len_ = len;
  }
  Bytes max_packet_len() const noexcept { return max_packet_len_; }
  const DataPathCounters& data_path_counters() const noexcept {
    return counters_;
  }

  // Opt-in self-check: every `every_n` public operations (enqueue,
  // dequeue, mutators) run the invariant auditor (core/auditor.hpp) and
  // throw Error{kInvariantViolation} on the first inconsistency.
  // 0 disables (the default).
  void enable_self_check(std::size_t every_n) noexcept {
    self_check_every_ = every_n;
  }
  std::uint64_t self_checks_run() const noexcept { return self_checks_run_; }

  std::size_t backlog_packets() const noexcept override {
    return queues_.packets();
  }
  Bytes backlog_bytes() const noexcept override { return queues_.bytes(); }
  TimeNs next_wakeup(TimeNs now) const noexcept override;
  SchedCapabilities capabilities() const noexcept override {
    return SchedCapabilities{/*hierarchy=*/true, /*nonlinear_curves=*/true,
                             /*decoupled_delay=*/true, /*shaping=*/true,
                             /*upper_limit=*/true, /*per_class_drops=*/true};
  }
  DataPathCounters counters() const noexcept override { return counters_; }
  std::uint64_t class_drops(ClassId cls) const noexcept override {
    return cls < nodes_.size() ? nodes_[cls].pkts_dropped : 0;
  }
  std::string_view name() const noexcept override { return "H-FSC"; }

  // --- Introspection (tests, experiments) ---------------------------------
  RateBps link_rate() const noexcept { return link_rate_; }
  std::size_t num_classes() const noexcept { return nodes_.size(); }
  bool is_leaf(ClassId cls) const { return nodes_[cls].children.empty(); }
  ClassId parent_of(ClassId cls) const { return hot_[cls].parent; }
  const ClassConfig& config_of(ClassId cls) const { return nodes_[cls].cfg; }
  // Total service (both criteria) delivered to the class's subtree.
  Bytes total_work(ClassId cls) const { return hot_[cls].total; }
  // Service delivered to a leaf by the real-time criterion.
  Bytes rt_work(ClassId cls) const { return hot_[cls].cumul; }
  TimeNs vtime(ClassId cls) const { return hot_[cls].vt; }
  TimeNs eligible_of(ClassId cls) const { return hot_[cls].e; }
  TimeNs deadline_of(ClassId cls) const { return hot_[cls].d; }
  bool active(ClassId cls) const { return hot_[cls].active(); }
  // Packets / bytes delivered and dropped, kernel-statistics style.
  std::uint64_t packets_sent(ClassId cls) const {
    return nodes_[cls].pkts_sent;
  }
  std::uint64_t packets_dropped(ClassId cls) const {
    return nodes_[cls].pkts_dropped;
  }
  Bytes bytes_dropped(ClassId cls) const { return nodes_[cls].bytes_dropped; }
  std::size_t queue_limit_of(ClassId cls) const {
    return nodes_[cls].queue_limit;
  }
  std::uint64_t rt_selections() const noexcept { return rt_selections_; }
  std::uint64_t ls_selections() const noexcept { return ls_selections_; }
  // Criterion that released the most recent packet.
  Criterion last_criterion() const noexcept { return last_criterion_; }

 private:
  // --- Struct-of-arrays per-class state ------------------------------------
  // The dequeue hot path touches, per served packet, the leaf's cached
  // times / work counters / curve-presence flags plus the same fields of
  // every ancestor.  Exactly those fields are packed into one 64-byte
  // line per class in `hot_` (indexed by dense ClassId, parallel to
  // `nodes_`), and the four runtime curves into a second parallel slab
  // `curves_`, so a serve touches a couple of predictable cache lines per
  // class instead of chasing through a ~600-byte Node.  Everything the
  // data path reads at most once per packet — configuration, children
  // lists, per-parent heaps, statistics — stays in the cold Node.
  struct alignas(64) HotClass {
    TimeNs e = 0;     // eligible time of the head packet
    TimeNs d = 0;     // deadline of the head packet
    TimeNs vt = 0;    // virtual time v = V^{-1}(w)
    TimeNs fit = 0;   // f = U^{-1}(w); may use link-sharing once fit <= now
    Bytes cumul = 0;  // c: service received via the real-time criterion
    Bytes total = 0;  // w: total service received (both criteria)
    ClassId parent = kRootClass;
    std::uint32_t idx_in_parent = 0;  // dense index in parent's heap

    // Curve-presence flags cached from cfg (refresh_flags) plus the
    // active bit, packed into one byte so the hot path never probes the
    // three ServiceCurve structs.  kActive: leaf = backlogged with an ls
    // curve; interior = has an active child.
    static constexpr std::uint8_t kHasRt = 1;
    static constexpr std::uint8_t kHasLs = 2;
    static constexpr std::uint8_t kHasUl = 4;
    static constexpr std::uint8_t kActive = 8;
    std::uint8_t flags = 0;

    bool has_rt() const noexcept { return (flags & kHasRt) != 0; }
    bool has_ls() const noexcept { return (flags & kHasLs) != 0; }
    bool has_ul() const noexcept { return (flags & kHasUl) != 0; }
    bool active() const noexcept { return (flags & kActive) != 0; }
    void set_active(bool on) noexcept {
      flags = static_cast<std::uint8_t>(on ? (flags | kActive)
                                           : (flags & ~kActive));
    }
    void refresh_flags(const ClassConfig& cfg) noexcept {
      flags = static_cast<std::uint8_t>((flags & kActive) |
                                        (cfg.rt.is_zero() ? 0 : kHasRt) |
                                        (cfg.ls.is_zero() ? 0 : kHasLs) |
                                        (cfg.ul.is_zero() ? 0 : kHasUl));
    }
  };
  static_assert(sizeof(HotClass) == 64,
                "hot per-class state must stay one cache line");

  // Runtime curves of one class, parallel to hot_ (see HotClass).
  // Member order is deliberate: charge_total() reads vc (and uc when an
  // upper limit exists) for EVERY class on the leaf-to-root walk, while
  // dc/ec are only touched for the served rt leaf — so the per-level
  // curves lead the struct and share its first cache lines.
  struct ClassCurves {
    RuntimeCurve vc;  // virtual curve V
    RuntimeCurve uc;  // upper-limit curve U (extension)
    RuntimeCurve dc;  // deadline curve D
    RuntimeCurve ec;  // eligible curve E
  };

  // Cold per-class state: read at most once per packet on the data path.
  struct Node {
    std::vector<ClassId> children;
    ClassConfig cfg;

    // As a parent: heap of active children keyed by vt (ids are
    // idx_in_parent), plus the watermark used for the system virtual
    // time (v_min + v_max)/2.
    IndexedHeap<TimeNs> active_children;
    TimeNs vt_watermark = 0;

    // Buffer management and statistics.
    std::size_t queue_limit = 0;  // max queued packets; 0 = unlimited
    std::uint64_t pkts_sent = 0;
    std::uint64_t pkts_dropped = 0;
    Bytes bytes_dropped = 0;

    // Starvation watchdog: last time the leaf was served or became
    // backlogged, and whether the current starvation episode was already
    // counted (reset on service).
    TimeNs last_progress = 0;
    bool starved_flagged = false;

    bool ever_active = false;  // curves initialized
    bool deleted = false;
  };

  // System virtual time of interior class p (Section IV-C).
  TimeNs system_vt(const Node& p) const noexcept;

  // Fig. 5(a): fold the rt curve into D and E at (now, c) and recompute
  // (e, d) for the head packet.
  void update_ed(ClassId cls, TimeNs now);
  // Fig. 5(b): recompute d only (head changed after a link-sharing
  // service; c did not move, so e is unchanged).
  void update_d(ClassId cls);
  // Fig. 6: activate `cls` and any passive ancestors in the link-sharing
  // tree.
  void activate_ls_path(ClassId cls, TimeNs now);
  // Charge `len` bytes of total service along the path to the root,
  // updating virtual times and fit times.
  void charge_total(ClassId cls, Bytes len, TimeNs now);
  // Leaf drained: remove from the rt set and deactivate the path as far
  // up as subtrees empty out.
  void set_passive(ClassId cls);

  // Link-sharing descent (Fig. 4 get_packet, else-branch): the active
  // leaf reached by repeatedly taking the smallest-vt child whose fit
  // time allows service; fails only if upper limits block every branch
  // or no class has an ls curve active.  Records the earliest blocking
  // fit time in ls_next_fit_ for next_wakeup().
  std::optional<ClassId> ls_select(TimeNs now);

  Packet serve(ClassId leaf, Criterion crit, TimeNs now);

  // True when `cls` names a live (non-root, non-deleted) class.
  bool live(ClassId cls) const noexcept {
    return cls > 0 && cls < nodes_.size() && !nodes_[cls].deleted;
  }
  // Validates a ClassConfig for a class with/without children; throws.
  static void check_config(const ClassConfig& cfg, bool leaf);
  // The rt curves of all live leaves — the set the admission check gates.
  std::vector<ServiceCurve> leaf_rt_curves() const;
  // Re-admits `curves` into a fresh AdmissionControl and installs it, or
  // throws Error{kAdmissionRejected} (counting the rejection) leaving the
  // previous bookkeeping in place.  No-op when admission is disabled or a
  // Txn commit is mid-apply (the commit validated the final state).
  void apply_admission(const std::vector<ServiceCurve>& curves);
  // Scans for newly starved leaves; rate-limited to every horizon/4.
  void maybe_watchdog(TimeNs now);
  // Clamps a data-path clock that ran backwards, counting the anomaly.
  TimeNs clamp_now(TimeNs now) noexcept {
    if (now < last_now_) {
      ++counters_.clock_regressions;
      return last_now_;
    }
    last_now_ = now;
    return now;
  }
  void maybe_self_check();

  // --- Sealed eligible-set fast path ---------------------------------------
  // The default DualHeapEligibleSet is final with header-inline methods;
  // when it is the configured kind, rt_fast_ points at the concrete object
  // and these wrappers call it directly (devirtualized and inlinable into
  // the dequeue loop).  Other kinds fall back to one virtual dispatch.
  void es_update(ClassId cls, TimeNs e, TimeNs d, TimeNs now) {
    if (rt_fast_) {
      rt_fast_->update(cls, e, d, now);
    } else {
      rt_requests_->update(cls, e, d, now);
    }
  }
  void es_erase(ClassId cls) {
    if (rt_fast_) {
      rt_fast_->erase(cls);
    } else {
      rt_requests_->erase(cls);
    }
  }
  bool es_contains(ClassId cls) const {
    return rt_fast_ ? rt_fast_->contains(cls) : rt_requests_->contains(cls);
  }
  std::optional<ClassId> es_min_deadline_eligible(TimeNs now) {
    return rt_fast_ ? rt_fast_->min_deadline_eligible(now)
                    : rt_requests_->min_deadline_eligible(now);
  }
  TimeNs es_next_eligible_time() const {
    return rt_fast_ ? rt_fast_->next_eligible_time()
                    : rt_requests_->next_eligible_time();
  }

  RateBps link_rate_;
  EligibleSetKind es_kind_;  // recorded for checkpoint/restore
  SystemVtPolicy vt_policy_;
  std::vector<Node> nodes_;       // nodes_[0] = root (cold state)
  std::vector<HotClass> hot_;     // parallel to nodes_ (hot slab)
  std::vector<ClassCurves> curves_;  // parallel to nodes_ (curve slab)
  ClassQueues queues_;
  std::unique_ptr<EligibleSet> rt_requests_;
  // Non-owning view of rt_requests_ when es_kind_ == kDualHeap (the
  // sealed fast path above); null otherwise.  Points at the pointee, so
  // it stays valid across moves of the owning Hfsc.
  DualHeapEligibleSet* rt_fast_ = nullptr;
  // Scratch for ls_select: upper-limit-blocked children set aside during
  // the descent.  A member so the steady-state path never allocates.
  std::vector<std::pair<std::uint32_t, TimeNs>> ls_blocked_;
  // Live classes carrying an upper-limit curve; when zero, ls_select
  // skips the fit-time machinery entirely.
  std::size_t num_ul_ = 0;
  TimeNs ls_next_fit_ = kTimeInfinity;
  std::uint64_t rt_selections_ = 0;
  std::uint64_t ls_selections_ = 0;
  Criterion last_criterion_ = Criterion::kLinkShare;

  // Robustness state (see util/errors.hpp and core/auditor.hpp).
  Bytes max_packet_len_ = kDefaultMaxPacketLen;
  TimeNs last_now_ = 0;  // data-path monotonic-clock watermark
  DataPathCounters counters_;
  std::size_t self_check_every_ = 0;
  std::uint64_t op_count_ = 0;
  std::uint64_t self_checks_run_ = 0;
  bool in_self_check_ = false;

  // Admission / transaction / watchdog state (this PR's robustness layer).
  std::unique_ptr<AdmissionControl> admission_;
  std::uint64_t admission_rejections_ = 0;
  TimeNs starvation_horizon_ = 0;  // 0 = watchdog off
  TimeNs next_starvation_scan_ = 0;
  std::uint64_t starvation_events_ = 0;
  bool in_txn_apply_ = false;  // suppresses per-op gating during commit

  friend AuditReport audit(const Hfsc&);
  // core/checkpoint.hpp
  friend void checkpoint(const Hfsc&, std::ostream&, std::string_view);
  friend Hfsc restore_checkpoint(std::istream&, std::string*);
};

}  // namespace hfsc
