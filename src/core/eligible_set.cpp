#include "core/eligible_set.hpp"

#include <algorithm>
#include <cassert>

namespace hfsc {

// ---------------------------------------------------------------- DualHeap

void DualHeapEligibleSet::update(ClassId cls, TimeNs e, TimeNs d, TimeNs now) {
  if (cls >= deadline_of_.size()) deadline_of_.resize(cls + 1, 0);
  deadline_of_[cls] = d;
  if (pending_.contains(cls)) pending_.erase(cls);
  if (ready_.contains(cls)) ready_.erase(cls);
  if (e <= now) {
    ready_.push(cls, d);
  } else {
    pending_.push(cls, e);
  }
}

void DualHeapEligibleSet::erase(ClassId cls) {
  if (pending_.contains(cls)) pending_.erase(cls);
  if (ready_.contains(cls)) ready_.erase(cls);
}

std::optional<ClassId> DualHeapEligibleSet::min_deadline_eligible(TimeNs now) {
  while (!pending_.empty() && pending_.top_key() <= now) {
    const ClassId cls = pending_.pop();
    ready_.push(cls, deadline_of_[cls]);
  }
  if (ready_.empty()) return std::nullopt;
  return ready_.top_id();
}

TimeNs DualHeapEligibleSet::next_eligible_time() const {
  if (!ready_.empty()) return 0;
  if (pending_.empty()) return kTimeInfinity;
  return pending_.top_key();
}

// ----------------------------------------------------------------- AugTree

struct AugTreeEligibleSet::Node {
  TimeNs e = 0;
  TimeNs d = 0;
  TimeNs min_d = 0;  // min deadline in this subtree
  ClassId cls = 0;
  std::uint64_t prio = 0;
  Node* left = nullptr;
  Node* right = nullptr;
};

AugTreeEligibleSet::AugTreeEligibleSet() = default;

AugTreeEligibleSet::~AugTreeEligibleSet() { destroy(root_); }

void AugTreeEligibleSet::destroy(Node* n) {
  if (!n) return;
  destroy(n->left);
  destroy(n->right);
  delete n;
}

std::uint64_t AugTreeEligibleSet::next_priority() {
  // xorshift64*
  std::uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  return x * 0x2545F4914F6CDD1DULL;
}

void AugTreeEligibleSet::pull(Node* n) {
  n->min_d = n->d;
  if (n->left) n->min_d = std::min(n->min_d, n->left->min_d);
  if (n->right) n->min_d = std::min(n->min_d, n->right->min_d);
}

AugTreeEligibleSet::Node* AugTreeEligibleSet::merge(Node* a, Node* b) {
  if (!a) return b;
  if (!b) return a;
  if (a->prio > b->prio) {
    a->right = merge(a->right, b);
    pull(a);
    return a;
  }
  b->left = merge(a, b->left);
  pull(b);
  return b;
}

void AugTreeEligibleSet::split(Node* n, TimeNs e, ClassId cls, Node** l,
                               Node** r) {
  if (!n) {
    *l = *r = nullptr;
    return;
  }
  const bool goes_left = n->e < e || (n->e == e && n->cls < cls);
  if (goes_left) {
    split(n->right, e, cls, &n->right, r);
    *l = n;
    pull(n);
  } else {
    split(n->left, e, cls, l, &n->left);
    *r = n;
    pull(n);
  }
}

void AugTreeEligibleSet::update(ClassId cls, TimeNs e, TimeNs d,
                                TimeNs /*now*/) {
  erase(cls);
  if (cls >= node_of_.size()) node_of_.resize(cls + 1, nullptr);
  Node* fresh = new Node{e, d, d, cls, next_priority(), nullptr, nullptr};
  node_of_[cls] = fresh;
  Node *l, *r;
  split(root_, e, cls, &l, &r);
  root_ = merge(merge(l, fresh), r);
}

void AugTreeEligibleSet::erase(ClassId cls) {
  if (cls >= node_of_.size() || node_of_[cls] == nullptr) return;
  const Node* target = node_of_[cls];
  Node *l, *mid, *r;
  split(root_, target->e, target->cls, &l, &mid);
  // mid's leftmost node is exactly (e, cls); split it off.
  split(mid, target->e, target->cls + 1, &mid, &r);
  assert(mid != nullptr && mid->cls == cls && !mid->left && !mid->right);
  delete mid;
  node_of_[cls] = nullptr;
  root_ = merge(l, r);
}

bool AugTreeEligibleSet::contains(ClassId cls) const {
  return cls < node_of_.size() && node_of_[cls] != nullptr;
}

bool AugTreeEligibleSet::empty() const { return root_ == nullptr; }

std::optional<ClassId> AugTreeEligibleSet::min_deadline_eligible(TimeNs now) {
  // Find the minimum deadline among nodes with e <= now by walking the
  // tree: at each node, the left subtree is entirely eligible if we later
  // move right, and we track the best candidate found so far.
  Node* n = root_;
  const Node* best = nullptr;
  auto consider = [&](const Node* cand) {
    if (cand && (!best || cand->d < best->d ||
                 (cand->d == best->d && cand->cls < best->cls))) {
      best = cand;
    }
  };
  // First pass: find the best over the eligible prefix.
  while (n) {
    if (n->e <= now) {
      // n and its whole left subtree are eligible.
      consider(n);
      if (n->left) {
        // The left subtree is fully eligible; its min_d is usable, but we
        // need the concrete node — descend for it only if it can win.
        if (!best || n->left->min_d < best->d) {
          // Locate a node achieving min_d in the (fully eligible) subtree.
          Node* m = n->left;
          const TimeNs want = n->left->min_d;
          while (m) {
            if (m->d == want) {
              consider(m);
              break;
            }
            if (m->left && m->left->min_d == want) {
              m = m->left;
            } else {
              m = m->right;
            }
          }
        }
      }
      n = n->right;
    } else {
      n = n->left;
    }
  }
  if (!best) return std::nullopt;
  return best->cls;
}

TimeNs AugTreeEligibleSet::next_eligible_time() const {
  if (!root_) return kTimeInfinity;
  const Node* n = root_;
  while (n->left) n = n->left;
  return n->e;
}

// ---------------------------------------------------------------- Calendar

CalendarEligibleSet::CalendarEligibleSet(TimeNs bucket_width,
                                         std::size_t num_buckets)
    : width_(bucket_width), buckets_(num_buckets) {
  assert(bucket_width > 0 && num_buckets > 0);
}

bool CalendarEligibleSet::contains(ClassId cls) const {
  return cls < req_.size() && req_[cls].present;
}

void CalendarEligibleSet::update(ClassId cls, TimeNs e, TimeNs d, TimeNs now) {
  erase(cls);
  if (cls >= req_.size()) req_.resize(cls + 1);
  Request& r = req_[cls];
  r.e = e;
  r.d = d;
  r.present = true;
  ++size_;
  if (e <= now) {
    r.in_ready = true;
    ready_.push(cls, d);
  } else {
    r.in_ready = false;
    r.bucket = bucket_of(e);
    buckets_[r.bucket].push_back(cls);
  }
}

void CalendarEligibleSet::erase(ClassId cls) {
  if (!contains(cls)) return;
  Request& r = req_[cls];
  if (r.in_ready) {
    ready_.erase(cls);
  } else {
    auto& b = buckets_[r.bucket];
    const auto it = std::find(b.begin(), b.end(), cls);
    assert(it != b.end());
    *it = b.back();
    b.pop_back();
  }
  r.present = false;
  --size_;
}

void CalendarEligibleSet::migrate(TimeNs now) {
  if (now <= migrated_until_) return;
  // Scan each calendar bucket covering (migrated_until_, now] — at most
  // one full revolution.
  const std::size_t n = buckets_.size();
  std::size_t first = static_cast<std::size_t>(migrated_until_ / width_);
  std::size_t last = static_cast<std::size_t>(now / width_);
  if (last - first >= n) first = last - (n - 1);  // cap at one revolution
  for (std::size_t day_slot = first; day_slot <= last; ++day_slot) {
    auto& b = buckets_[day_slot % n];
    for (std::size_t i = 0; i < b.size();) {
      const ClassId cls = b[i];
      Request& r = req_[cls];
      if (r.e <= now) {
        r.in_ready = true;
        ready_.push(cls, r.d);
        b[i] = b.back();
        b.pop_back();
      } else {
        ++i;  // a future-revolution entry sharing the bucket
      }
    }
  }
  migrated_until_ = now;
}

std::optional<ClassId> CalendarEligibleSet::min_deadline_eligible(TimeNs now) {
  migrate(now);
  if (ready_.empty()) return std::nullopt;
  return ready_.top_id();
}

TimeNs CalendarEligibleSet::next_eligible_time() const {
  if (!ready_.empty()) return 0;
  if (size_ == 0) return kTimeInfinity;
  TimeNs best = kTimeInfinity;
  for (const auto& b : buckets_) {
    for (const ClassId cls : b) best = std::min(best, req_[cls].e);
  }
  return best;
}

std::unique_ptr<EligibleSet> make_eligible_set(EligibleSetKind kind) {
  switch (kind) {
    case EligibleSetKind::kAugTree:
      return std::make_unique<AugTreeEligibleSet>();
    case EligibleSetKind::kCalendar:
      return std::make_unique<CalendarEligibleSet>();
    case EligibleSetKind::kDualHeap:
      break;
  }
  return std::make_unique<DualHeapEligibleSet>();
}

}  // namespace hfsc
