#include "core/eligible_set.hpp"

#include <algorithm>
#include <cassert>

namespace hfsc {

// ----------------------------------------------------------------- AugTree

struct AugTreeEligibleSet::Node {
  TimeNs e = 0;
  TimeNs d = 0;
  TimeNs min_d = 0;      // min deadline in this subtree
  ClassId cls = 0;
  ClassId min_d_cls = 0; // smallest class id achieving min_d in the subtree
  std::uint64_t prio = 0;
  Node* left = nullptr;
  Node* right = nullptr;
};

AugTreeEligibleSet::AugTreeEligibleSet() = default;

AugTreeEligibleSet::~AugTreeEligibleSet() = default;  // pool_ owns the nodes

AugTreeEligibleSet::Node* AugTreeEligibleSet::alloc_node() {
  if (free_list_ == nullptr) {
    pool_.push_back(std::make_unique<Node[]>(kPoolChunk));
    Node* chunk = pool_.back().get();
    for (std::size_t i = 0; i < kPoolChunk; ++i) {
      chunk[i].left = free_list_;
      free_list_ = &chunk[i];
    }
  }
  Node* n = free_list_;
  free_list_ = n->left;
  return n;
}

void AugTreeEligibleSet::free_node(Node* n) noexcept {
  n->left = free_list_;
  free_list_ = n;
}

std::uint64_t AugTreeEligibleSet::next_priority() {
  // xorshift64*
  std::uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  return x * 0x2545F4914F6CDD1DULL;
}

void AugTreeEligibleSet::pull(Node* n) {
  n->min_d = n->d;
  n->min_d_cls = n->cls;
  auto fold = [&](const Node* c) {
    if (c && (c->min_d < n->min_d ||
              (c->min_d == n->min_d && c->min_d_cls < n->min_d_cls))) {
      n->min_d = c->min_d;
      n->min_d_cls = c->min_d_cls;
    }
  };
  fold(n->left);
  fold(n->right);
}

AugTreeEligibleSet::Node* AugTreeEligibleSet::merge(Node* a, Node* b) {
  if (!a) return b;
  if (!b) return a;
  if (a->prio > b->prio) {
    a->right = merge(a->right, b);
    pull(a);
    return a;
  }
  b->left = merge(a, b->left);
  pull(b);
  return b;
}

void AugTreeEligibleSet::split(Node* n, TimeNs e, ClassId cls, Node** l,
                               Node** r) {
  if (!n) {
    *l = *r = nullptr;
    return;
  }
  const bool goes_left = n->e < e || (n->e == e && n->cls < cls);
  if (goes_left) {
    split(n->right, e, cls, &n->right, r);
    *l = n;
    pull(n);
  } else {
    split(n->left, e, cls, l, &n->left);
    *r = n;
    pull(n);
  }
}

void AugTreeEligibleSet::update(ClassId cls, TimeNs e, TimeNs d, TimeNs now) {
  erase(cls);
  seen_now_ = std::max(seen_now_, now);
  if (cls >= node_of_.size()) node_of_.resize(cls + 1, nullptr);
  Node* fresh = alloc_node();
  *fresh = Node{e, d, d, cls, cls, next_priority(), nullptr, nullptr};
  node_of_[cls] = fresh;
  Node *l, *r;
  split(root_, e, cls, &l, &r);
  root_ = merge(merge(l, fresh), r);
}

void AugTreeEligibleSet::erase(ClassId cls) {
  if (cls >= node_of_.size() || node_of_[cls] == nullptr) return;
  Node* target = node_of_[cls];
  Node *l, *mid, *r;
  split(root_, target->e, target->cls, &l, &mid);
  // mid's leftmost node is exactly (e, cls); split it off.
  split(mid, target->e, target->cls + 1, &mid, &r);
  assert(mid != nullptr && mid->cls == cls && !mid->left && !mid->right);
  free_node(mid);
  node_of_[cls] = nullptr;
  root_ = merge(l, r);
}

bool AugTreeEligibleSet::contains(ClassId cls) const {
  return cls < node_of_.size() && node_of_[cls] != nullptr;
}

bool AugTreeEligibleSet::empty() const { return root_ == nullptr; }

std::optional<ClassId> AugTreeEligibleSet::min_deadline_eligible(TimeNs now) {
  seen_now_ = std::max(seen_now_, now);
  // Walk the e <= now prefix: at a node with e <= now, the node itself and
  // its whole left subtree are eligible — the subtree contributes its
  // (min_d, min_d_cls) pair directly, no descent required.
  Node* n = root_;
  bool have = false;
  TimeNs best_d = 0;
  ClassId best_cls = 0;
  auto consider = [&](TimeNs d, ClassId cls) {
    if (!have || d < best_d || (d == best_d && cls < best_cls)) {
      have = true;
      best_d = d;
      best_cls = cls;
    }
  };
  while (n) {
    if (n->e <= now) {
      consider(n->d, n->cls);
      if (n->left) consider(n->left->min_d, n->left->min_d_cls);
      n = n->right;
    } else {
      n = n->left;
    }
  }
  if (!have) return std::nullopt;
  return best_cls;
}

TimeNs AugTreeEligibleSet::next_eligible_time() const {
  if (!root_) return kTimeInfinity;
  const Node* n = root_;
  while (n->left) n = n->left;
  return n->e <= seen_now_ ? 0 : n->e;
}

// ---------------------------------------------------------------- Calendar

CalendarEligibleSet::CalendarEligibleSet(TimeNs bucket_width,
                                         std::size_t num_buckets)
    : width_(bucket_width), buckets_(num_buckets) {
  assert(bucket_width > 0 && num_buckets > 0);
}

bool CalendarEligibleSet::contains(ClassId cls) const {
  return cls < req_.size() && req_[cls].present;
}

void CalendarEligibleSet::update(ClassId cls, TimeNs e, TimeNs d, TimeNs now) {
  erase(cls);
  if (cls >= req_.size()) req_.resize(cls + 1);
  Request& r = req_[cls];
  r.e = e;
  r.d = d;
  r.present = true;
  ++size_;
  if (e <= now) {
    r.in_ready = true;
    ready_.push(cls, d);
  } else {
    r.in_ready = false;
    r.bucket = bucket_of(e);
    buckets_[r.bucket].push_back(Entry{cls, e});
  }
}

void CalendarEligibleSet::erase(ClassId cls) {
  if (!contains(cls)) return;
  Request& r = req_[cls];
  if (r.in_ready) {
    ready_.erase(cls);
  } else {
    auto& b = buckets_[r.bucket];
    const auto it =
        std::find_if(b.begin(), b.end(),
                     [cls](const Entry& en) { return en.cls == cls; });
    assert(it != b.end());
    *it = b.back();
    b.pop_back();
  }
  r.present = false;
  --size_;
}

void CalendarEligibleSet::migrate(TimeNs now) {
  if (now <= migrated_until_) return;
  // Scan each calendar bucket covering (migrated_until_, now] — at most
  // one full revolution.
  const std::size_t n = buckets_.size();
  std::size_t first = static_cast<std::size_t>(migrated_until_ / width_);
  std::size_t last = static_cast<std::size_t>(now / width_);
  if (last - first >= n) first = last - (n - 1);  // cap at one revolution
  for (std::size_t day_slot = first; day_slot <= last; ++day_slot) {
    auto& b = buckets_[day_slot % n];
    for (std::size_t i = 0; i < b.size();) {
      // The exact-time re-check is what makes day rollover safe: an entry
      // whose eligible time lies a full revolution (or more) ahead shares
      // this bucket but fails e <= now and stays pending.
      if (b[i].e <= now) {
        const ClassId cls = b[i].cls;
        Request& r = req_[cls];
        r.in_ready = true;
        ready_.push(cls, r.d);
        b[i] = b.back();
        b.pop_back();
      } else {
        ++i;  // a future-revolution entry sharing the bucket
      }
    }
  }
  migrated_until_ = now;
}

std::optional<ClassId> CalendarEligibleSet::min_deadline_eligible(TimeNs now) {
  migrate(now);
  if (ready_.empty()) return std::nullopt;
  return ready_.top_id();
}

TimeNs CalendarEligibleSet::next_eligible_time() const {
  if (!ready_.empty()) return 0;
  if (size_ == 0) return kTimeInfinity;
  TimeNs best = kTimeInfinity;
  for (const auto& b : buckets_) {
    for (const Entry& en : b) best = std::min(best, en.e);
  }
  return best;
}

std::unique_ptr<EligibleSet> make_eligible_set(EligibleSetKind kind) {
  switch (kind) {
    case EligibleSetKind::kAugTree:
      return std::make_unique<AugTreeEligibleSet>();
    case EligibleSetKind::kCalendar:
      return std::make_unique<CalendarEligibleSet>();
    case EligibleSetKind::kDualHeap:
      break;
  }
  return std::make_unique<DualHeapEligibleSet>();
}

}  // namespace hfsc
