// Hfsc::Txn — transactional live reconfiguration.
//
// A Txn records mutations without touching the scheduler.  commit()
// replays the whole batch onto a Shadow — a minimal structural model of
// the hierarchy (parent links, configs, child counts, backlog flags) —
// enforcing exactly the rules the live mutators enforce, plus the
// admission check over the final state when admission control is on.
// Only after every op validates does commit() apply the batch through
// the live mutators, so any hfsc::Error leaves the scheduler bit-for-bit
// untouched (tests/test_txn_atomicity_fuzz.cpp proves this by state
// digest over >= 10k failing batches).
//
// Ids for staged add_class calls are predicted: the live scheduler
// assigns ids densely (nodes are never erased from the vector, only
// tombstoned), so the k-th staged add gets num_classes() + k.  The
// prediction is checked at commit; direct adds made while the Txn was
// open make it stale and commit throws Error{kTxnInvalid}.

#include <algorithm>

#include "core/hfsc.hpp"

namespace hfsc {

struct Hfsc::Txn::Op {
  enum class Kind { kAdd, kChange, kDelete, kQueueLimit };
  Kind kind;
  ClassId cls = 0;  // kAdd: the parent; otherwise the target class
  ClassConfig cfg{};
  TimeNs now = 0;           // kChange re-anchor time
  std::size_t limit = 0;    // kQueueLimit
};

struct Hfsc::Txn::Shadow {
  struct SNode {
    ClassId parent = kRootClass;
    ClassConfig cfg{};
    std::uint32_t children = 0;
    bool deleted = false;
    bool backlogged = false;
  };
  std::vector<SNode> nodes;

  bool live(ClassId c) const noexcept {
    return c > 0 && c < nodes.size() && !nodes[c].deleted;
  }
};

Hfsc::Txn::Txn(Hfsc& sched) : s_(&sched), base_classes_(sched.num_classes()) {}

Hfsc::Txn::~Txn() {
  if (open_) rollback();
}

Hfsc::Txn::Txn(Txn&& other) noexcept
    : s_(other.s_), ops_(std::move(other.ops_)),
      base_classes_(other.base_classes_), open_(other.open_) {
  other.open_ = false;
}

Hfsc::Txn::Shadow Hfsc::Txn::make_shadow() const {
  Shadow sh;
  sh.nodes.resize(s_->nodes_.size());
  for (ClassId c = 0; c < s_->nodes_.size(); ++c) {
    const Node& n = s_->nodes_[c];
    Shadow::SNode& sn = sh.nodes[c];
    sn.parent = s_->hot_[c].parent;
    sn.cfg = n.cfg;
    sn.children = static_cast<std::uint32_t>(n.children.size());
    sn.deleted = n.deleted;
    sn.backlogged = s_->queues_.has(c);
  }
  return sh;
}

ClassId Hfsc::Txn::replay(Shadow& sh, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kAdd: {
      ensure(op.cls < sh.nodes.size() &&
                 (op.cls == kRootClass || sh.live(op.cls)),
             Errc::kInvalidClass, "unknown or deleted parent class");
      ensure(!sh.nodes[op.cls].backlogged, Errc::kHasBacklog,
             "cannot add children under a class that queues packets");
      ensure(op.cls == kRootClass || !sh.nodes[op.cls].cfg.ls.is_zero(),
             Errc::kMissingCurve,
             "interior classes need a link-sharing curve");
      check_config(op.cfg, /*leaf=*/true);
      Shadow::SNode sn;
      sn.parent = op.cls;
      sn.cfg = op.cfg;
      sh.nodes.push_back(sn);
      ++sh.nodes[op.cls].children;
      return static_cast<ClassId>(sh.nodes.size() - 1);
    }
    case Op::Kind::kChange: {
      ensure(sh.live(op.cls), Errc::kInvalidClass, "unknown or deleted class");
      check_config(op.cfg, /*leaf=*/sh.nodes[op.cls].children == 0);
      sh.nodes[op.cls].cfg = op.cfg;
      return op.cls;
    }
    case Op::Kind::kDelete: {
      ensure(sh.live(op.cls), Errc::kInvalidClass, "unknown or deleted class");
      ensure(sh.nodes[op.cls].children == 0, Errc::kHasChildren,
             "delete children first");
      sh.nodes[op.cls].deleted = true;
      sh.nodes[op.cls].backlogged = false;
      --sh.nodes[sh.nodes[op.cls].parent].children;
      return op.cls;
    }
    case Op::Kind::kQueueLimit: {
      ensure(sh.live(op.cls), Errc::kInvalidClass, "unknown or deleted class");
      return op.cls;
    }
  }
  throw Error(Errc::kTxnInvalid, "corrupt staged op");
}

ClassId Hfsc::Txn::add_class(ClassId parent, ClassConfig cfg) {
  ensure(open_, Errc::kTxnInvalid, "transaction already closed");
  std::size_t adds = 0;
  for (const Op& op : ops_) adds += op.kind == Op::Kind::kAdd;
  ops_.push_back(Op{Op::Kind::kAdd, parent, cfg, 0, 0});
  return static_cast<ClassId>(base_classes_ + adds);
}

void Hfsc::Txn::change_class(TimeNs now, ClassId cls, ClassConfig cfg) {
  ensure(open_, Errc::kTxnInvalid, "transaction already closed");
  ops_.push_back(Op{Op::Kind::kChange, cls, cfg, now, 0});
}

void Hfsc::Txn::delete_class(ClassId cls) {
  ensure(open_, Errc::kTxnInvalid, "transaction already closed");
  ops_.push_back(Op{Op::Kind::kDelete, cls, ClassConfig{}, 0, 0});
}

void Hfsc::Txn::set_queue_limit(ClassId cls, std::size_t max_packets) {
  ensure(open_, Errc::kTxnInvalid, "transaction already closed");
  ops_.push_back(Op{Op::Kind::kQueueLimit, cls, ClassConfig{}, 0, max_packets});
}

std::size_t Hfsc::Txn::num_ops() const noexcept { return ops_.size(); }

void Hfsc::Txn::rollback() noexcept {
  ops_.clear();
  open_ = false;
}

void Hfsc::Txn::commit() {
  ensure(open_, Errc::kTxnInvalid, "transaction already closed");
  ensure(s_->num_classes() == base_classes_ ||
             std::none_of(ops_.begin(), ops_.end(),
                          [](const Op& op) {
                            return op.kind == Op::Kind::kAdd;
                          }),
         Errc::kTxnInvalid,
         "classes were added outside the transaction since begin(); the "
         "staged ids are stale — rollback and re-stage");

  // Phase 1: validate the whole batch against a shadow of the live tree.
  // Any throw here (or in the admission check below) leaves the scheduler
  // untouched and the transaction open.
  Shadow sh = make_shadow();
  for (const Op& op : ops_) replay(sh, op);

  // Phase 2: admission over the final state — the sum of the surviving
  // leaves' rt curves must stay below the link curve (Section II).
  std::unique_ptr<AdmissionControl> fresh;
  if (s_->admission_) {
    fresh = std::make_unique<AdmissionControl>(s_->admission_->link_rate());
    for (ClassId c = 1; c < sh.nodes.size(); ++c) {
      const Shadow::SNode& sn = sh.nodes[c];
      if (sn.deleted || sn.children != 0 || sn.cfg.rt.is_zero()) continue;
      if (!fresh->admit(sn.cfg.rt)) {
        ++s_->admission_rejections_;
        throw Error(Errc::kAdmissionRejected,
                    "committing this batch would put real-time curve " +
                        to_string(sn.cfg.rt) +
                        " (class " + std::to_string(c) +
                        ") above the link curve; shrink the batch's rt "
                        "curves or raise the admission link rate");
      }
    }
  }

  // Phase 3: apply.  Validation mirrored every rule the live mutators
  // enforce, so none of these calls can throw; per-op admission gating
  // and self-checks are suspended for the batch (the final state was
  // validated above, and intermediate states are transient).
  s_->in_txn_apply_ = true;
  try {
    for (const Op& op : ops_) {
      switch (op.kind) {
        case Op::Kind::kAdd:
          s_->add_class(op.cls, op.cfg);
          break;
        case Op::Kind::kChange:
          s_->change_class(op.now, op.cls, op.cfg);
          break;
        case Op::Kind::kDelete:
          s_->delete_class(op.cls);
          break;
        case Op::Kind::kQueueLimit:
          s_->set_queue_limit(op.cls, op.limit);
          break;
      }
    }
  } catch (...) {
    s_->in_txn_apply_ = false;
    throw;  // unreachable unless the scheduler was already corrupt
  }
  s_->in_txn_apply_ = false;
  if (fresh) s_->admission_ = std::move(fresh);
  open_ = false;
  ops_.clear();
  s_->maybe_self_check();
}

}  // namespace hfsc
