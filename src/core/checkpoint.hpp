// Checkpoint / restore for Hfsc (docs/ROBUSTNESS.md Section 8).
//
// checkpoint() serializes the complete scheduling state of an Hfsc — the
// class tree with all runtime curves and work counters, every queued
// packet, the data-path counters and the admission/watchdog configuration
// — to a versioned line-oriented text format.  restore_checkpoint()
// rebuilds a fresh scheduler from the stream; the derived structures
// (child heaps, the eligible set) are reconstructed from the serialized
// per-class state rather than stored, which works because their observable
// behaviour is a function of their content (IndexedHeap breaks key ties by
// id).  A restored scheduler passes audit() and produces the same dequeue
// sequence as the original from that point on, packet for packet.
//
// Deliberately EXCLUDED from the format (and therefore from the digest):
// observability counters that move without the scheduling state moving —
// admission_rejections_, the self-check configuration and counters, and
// the starvation-event counter/scan clock.  That makes state_digest() the
// atomicity oracle for Txn: a failed commit may bump the rejection
// counter, but the digest must not change.
//
// Version policy: the first line is "hfsc-checkpoint <version>".  A reader
// accepts exactly the versions it knows (currently versions 1 and 2);
// anything else — wrong magic, unknown version, truncation, malformed or
// internally inconsistent records — throws Error{kBadCheckpoint}.  Any
// change to the serialized field set bumps kCheckpointVersion.
//
// Version 2 adds one record after "watchdog": `ext <nbytes>` followed by
// exactly nbytes of opaque payload and a newline.  The core scheduler
// writes an empty payload; the runtime resilience layer
// (runtime/host.hpp) stores the overload governor's durable state and
// the journal sequence watermark there, so a runtime snapshot is a core
// checkpoint that core tools can still read, audit and digest.  Version 1
// streams (no ext record) restore with an empty payload.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace hfsc {

class Hfsc;

inline constexpr int kCheckpointVersion = 2;

// Writes the scheduler's state to `out`.  Never modifies the scheduler.
// `ext` is the opaque extension payload described above (empty for a
// plain core checkpoint).
void checkpoint(const Hfsc& sched, std::ostream& out);
void checkpoint(const Hfsc& sched, std::ostream& out, std::string_view ext);

// Rebuilds a scheduler from a stream produced by checkpoint().  Throws
// Error{kBadCheckpoint} on any malformed input, including state that
// fails the invariant auditor after reconstruction.  When `ext` is
// non-null it receives the extension payload (empty for version 1
// streams or core checkpoints).
Hfsc restore_checkpoint(std::istream& in);
Hfsc restore_checkpoint(std::istream& in, std::string* ext);

// FNV-1a hash of the checkpoint serialization: equal digests mean equal
// scheduling state (up to the deliberate exclusions above).  Used by the
// Txn atomicity fuzzer and the fault-injection harness.
std::uint64_t state_digest(const Hfsc& sched);

}  // namespace hfsc
