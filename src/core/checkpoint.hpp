// Checkpoint / restore for Hfsc (docs/ROBUSTNESS.md Section 8).
//
// checkpoint() serializes the complete scheduling state of an Hfsc — the
// class tree with all runtime curves and work counters, every queued
// packet, the data-path counters and the admission/watchdog configuration
// — to a versioned line-oriented text format.  restore_checkpoint()
// rebuilds a fresh scheduler from the stream; the derived structures
// (child heaps, the eligible set) are reconstructed from the serialized
// per-class state rather than stored, which works because their observable
// behaviour is a function of their content (IndexedHeap breaks key ties by
// id).  A restored scheduler passes audit() and produces the same dequeue
// sequence as the original from that point on, packet for packet.
//
// Deliberately EXCLUDED from the format (and therefore from the digest):
// observability counters that move without the scheduling state moving —
// admission_rejections_, the self-check configuration and counters, and
// the starvation-event counter/scan clock.  That makes state_digest() the
// atomicity oracle for Txn: a failed commit may bump the rejection
// counter, but the digest must not change.
//
// Version policy: the first line is "hfsc-checkpoint <version>".  A reader
// accepts exactly the versions it knows (currently only version 1);
// anything else — wrong magic, unknown version, truncation, malformed or
// internally inconsistent records — throws Error{kBadCheckpoint}.  Any
// change to the serialized field set bumps kCheckpointVersion.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace hfsc {

class Hfsc;

inline constexpr int kCheckpointVersion = 1;

// Writes the scheduler's state to `out`.  Never modifies the scheduler.
void checkpoint(const Hfsc& sched, std::ostream& out);

// Rebuilds a scheduler from a stream produced by checkpoint().  Throws
// Error{kBadCheckpoint} on any malformed input, including state that
// fails the invariant auditor after reconstruction.
Hfsc restore_checkpoint(std::istream& in);

// FNV-1a hash of the checkpoint serialization: equal digests mean equal
// scheduling state (up to the deliberate exclusions above).  Used by the
// Txn atomicity fuzzer and the fault-injection harness.
std::uint64_t state_digest(const Hfsc& sched);

}  // namespace hfsc
