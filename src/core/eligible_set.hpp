// Real-time request structures for H-FSC (paper Section V).
//
// The real-time criterion needs, at each dequeue:
//     among classes with eligible time e <= now, the minimum deadline d.
//
// The paper proposes two implementations; both are provided behind one
// interface so the ablation bench (E10) can compare them:
//
//  * DualHeapEligibleSet — "a calendar queue for keeping track of the
//    eligible times in conjunction with a heap for maintaining the
//    requests' deadlines": a pending heap keyed by e plus a ready heap
//    keyed by d; requests migrate as the clock passes their eligible
//    time.  (We use an indexed heap rather than a literal calendar queue;
//    same O(log n) bound, simpler memory behavior.)
//
//  * AugTreeEligibleSet — "an augmented binary tree data structure as the
//    one described in [16]": a balanced search tree ordered by e where
//    every node also stores the minimum d in its subtree; the query walks
//    the e <= now prefix in O(log n) without any state migration.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sched/packet.hpp"
#include "util/indexed_heap.hpp"
#include "util/types.hpp"

namespace hfsc {

class EligibleSet {
 public:
  virtual ~EligibleSet() = default;

  // Inserts or updates the (e, d) request of `cls`.
  virtual void update(ClassId cls, TimeNs e, TimeNs d, TimeNs now) = 0;
  virtual void erase(ClassId cls) = 0;
  virtual bool contains(ClassId cls) const = 0;
  virtual bool empty() const = 0;

  // The class with the smallest deadline among those with e <= now, if any.
  virtual std::optional<ClassId> min_deadline_eligible(TimeNs now) = 0;

  // Earliest time at which min_deadline_eligible() could start returning a
  // class: 0 if one is already eligible, kTimeInfinity if empty.
  virtual TimeNs next_eligible_time() const = 0;
};

class DualHeapEligibleSet final : public EligibleSet {
 public:
  void update(ClassId cls, TimeNs e, TimeNs d, TimeNs now) override;
  void erase(ClassId cls) override;
  bool contains(ClassId cls) const override {
    return pending_.contains(cls) || ready_.contains(cls);
  }
  bool empty() const override { return pending_.empty() && ready_.empty(); }
  std::optional<ClassId> min_deadline_eligible(TimeNs now) override;
  TimeNs next_eligible_time() const override;

 private:
  IndexedHeap<TimeNs> pending_;  // e > last seen now, keyed by e
  IndexedHeap<TimeNs> ready_;    // eligible, keyed by d
  std::vector<TimeNs> deadline_of_;  // ClassId -> d (for promotions)
};

class AugTreeEligibleSet final : public EligibleSet {
 public:
  AugTreeEligibleSet();
  ~AugTreeEligibleSet() override;

  void update(ClassId cls, TimeNs e, TimeNs d, TimeNs now) override;
  void erase(ClassId cls) override;
  bool contains(ClassId cls) const override;
  bool empty() const override;
  std::optional<ClassId> min_deadline_eligible(TimeNs now) override;
  TimeNs next_eligible_time() const override;

 private:
  struct Node;
  // Treap ordered by (e, cls) with subtree-min-deadline augmentation.
  Node* root_ = nullptr;
  std::vector<Node*> node_of_;  // ClassId -> node (null if absent)
  std::uint64_t rng_state_ = 0x9E3779B97F4A7C15ULL;

  std::uint64_t next_priority();
  static void pull(Node* n);
  static Node* merge(Node* a, Node* b);
  // Splits by key (e, cls): left gets keys < (e, cls), right the rest.
  static void split(Node* n, TimeNs e, ClassId cls, Node** l, Node** r);
  Node* insert_node(Node* n, Node* fresh);
  void destroy(Node* n);
};

// The literal structure of Section V's second alternative: "a calendar
// queue for keeping track of the eligible times in conjunction with a
// heap for maintaining the requests' deadlines".  Pending requests hash
// into fixed-width time buckets (Brown's calendar queue, simplified to a
// fixed bucket count with lazy day-rollover) and migrate into the
// deadline heap as the clock passes them; min_deadline_eligible() is the
// same O(log n) pop, but the pending side costs O(1) per insert instead
// of O(log n).
class CalendarEligibleSet final : public EligibleSet {
 public:
  // bucket_width: the calendar's time granularity; requests whose
  // eligible times fall in the same bucket migrate together (they are
  // re-checked exactly, so correctness does not depend on the width).
  explicit CalendarEligibleSet(TimeNs bucket_width = usec(100),
                               std::size_t num_buckets = 256);

  void update(ClassId cls, TimeNs e, TimeNs d, TimeNs now) override;
  void erase(ClassId cls) override;
  bool contains(ClassId cls) const override;
  bool empty() const override { return size_ == 0; }
  std::optional<ClassId> min_deadline_eligible(TimeNs now) override;
  TimeNs next_eligible_time() const override;

 private:
  struct Request {
    TimeNs e = 0;
    TimeNs d = 0;
    bool present = false;
    bool in_ready = false;
    std::size_t bucket = 0;
  };

  std::size_t bucket_of(TimeNs e) const noexcept {
    return static_cast<std::size_t>(e / width_) % buckets_.size();
  }
  void migrate(TimeNs now);

  TimeNs width_;
  std::vector<std::vector<ClassId>> buckets_;  // pending, by eligible time
  IndexedHeap<TimeNs> ready_;                  // eligible, keyed by deadline
  std::vector<Request> req_;                   // ClassId -> request
  std::size_t size_ = 0;
  TimeNs migrated_until_ = 0;  // clock position of the calendar scan
};

enum class EligibleSetKind { kDualHeap, kAugTree, kCalendar };

std::unique_ptr<EligibleSet> make_eligible_set(EligibleSetKind kind);

}  // namespace hfsc
