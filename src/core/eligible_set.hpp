// Real-time request structures for H-FSC (paper Section V).
//
// The real-time criterion needs, at each dequeue:
//     among classes with eligible time e <= now, the minimum deadline d.
//
// The paper proposes two implementations; both are provided behind one
// interface so the ablation bench (E10) can compare them:
//
//  * DualHeapEligibleSet — "a calendar queue for keeping track of the
//    eligible times in conjunction with a heap for maintaining the
//    requests' deadlines": a pending heap keyed by e plus a ready heap
//    keyed by d; requests migrate as the clock passes their eligible
//    time.  (We use an indexed heap rather than a literal calendar queue;
//    same O(log n) bound, simpler memory behavior.)  This is the default
//    kind, and its methods are defined inline in this header so that
//    Hfsc's sealed fast path (core/hfsc.hpp) can call them without
//    virtual dispatch and inline them into the dequeue loop.
//
//  * AugTreeEligibleSet — "an augmented binary tree data structure as the
//    one described in [16]": a balanced search tree ordered by e where
//    every node also stores the minimum d (and the smallest class id
//    achieving it) in its subtree; the query walks the e <= now prefix in
//    O(log n) without any state migration.  Nodes come from an internal
//    pool (chunked arena + free list), so steady-state update/erase
//    cycles never touch the allocator.
//
// Shared contract:
//
//  * `now` must be monotone non-decreasing across calls on one instance
//    (Hfsc guarantees this via its clock clamp); behavior under a
//    regressed clock is safe but unspecified.
//
//  * Deadline ties break toward the smallest ClassId in every
//    implementation, so all three kinds produce identical
//    min_deadline_eligible() sequences for identical inputs (pinned by
//    tests/test_eligible_ablation_fuzz.cpp).
//
//  * next_eligible_time() returns the earliest time at which
//    min_deadline_eligible() could return a class: 0 if a request is
//    already eligible (its e is <= the latest `now` the structure has
//    seen), the smallest pending e otherwise, kTimeInfinity when empty.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sched/packet.hpp"
#include "util/indexed_heap.hpp"
#include "util/types.hpp"

namespace hfsc {

class EligibleSet {
 public:
  virtual ~EligibleSet() = default;

  // Inserts or updates the (e, d) request of `cls`.
  virtual void update(ClassId cls, TimeNs e, TimeNs d, TimeNs now) = 0;
  virtual void erase(ClassId cls) = 0;
  virtual bool contains(ClassId cls) const = 0;
  virtual bool empty() const = 0;

  // The class with the smallest deadline among those with e <= now, if any
  // (deadline ties break by smallest ClassId).
  virtual std::optional<ClassId> min_deadline_eligible(TimeNs now) = 0;

  // Earliest time at which min_deadline_eligible() could start returning a
  // class: 0 if one is already eligible (see header comment),
  // kTimeInfinity if empty.
  virtual TimeNs next_eligible_time() const = 0;
};

class DualHeapEligibleSet final : public EligibleSet {
 public:
  void update(ClassId cls, TimeNs e, TimeNs d, TimeNs now) override {
    if (cls >= deadline_of_.size()) deadline_of_.resize(cls + 1, 0);
    deadline_of_[cls] = d;
    // In-place re-key when the request stays on the same side of `now`;
    // the steady-state path (one served class re-posting its next
    // request) then costs one sift instead of an erase + push pair.
    if (e <= now) {
      if (pending_.contains(cls)) pending_.erase(cls);
      ready_.push_or_update(cls, d);
    } else {
      if (ready_.contains(cls)) ready_.erase(cls);
      pending_.push_or_update(cls, e);
    }
  }

  void erase(ClassId cls) override {
    if (pending_.contains(cls)) {
      pending_.erase(cls);
    } else if (ready_.contains(cls)) {
      ready_.erase(cls);
    }
  }

  bool contains(ClassId cls) const override {
    return pending_.contains(cls) || ready_.contains(cls);
  }
  bool empty() const override { return pending_.empty() && ready_.empty(); }

  std::optional<ClassId> min_deadline_eligible(TimeNs now) override {
    while (!pending_.empty() && pending_.top_key() <= now) {
      const ClassId cls = pending_.pop();
      ready_.push(cls, deadline_of_[cls]);
    }
    if (ready_.empty()) return std::nullopt;
    return ready_.top_id();
  }

  TimeNs next_eligible_time() const override {
    if (!ready_.empty()) return 0;
    if (pending_.empty()) return kTimeInfinity;
    return pending_.top_key();
  }

 private:
  IndexedHeap<TimeNs> pending_;  // e > last seen now, keyed by e
  IndexedHeap<TimeNs> ready_;    // eligible, keyed by d
  std::vector<TimeNs> deadline_of_;  // ClassId -> d (for promotions)
};

class AugTreeEligibleSet final : public EligibleSet {
 public:
  AugTreeEligibleSet();
  ~AugTreeEligibleSet() override;

  void update(ClassId cls, TimeNs e, TimeNs d, TimeNs now) override;
  void erase(ClassId cls) override;
  bool contains(ClassId cls) const override;
  bool empty() const override;
  std::optional<ClassId> min_deadline_eligible(TimeNs now) override;
  TimeNs next_eligible_time() const override;

 private:
  struct Node;

  Node* alloc_node();
  void free_node(Node* n) noexcept;

  // Treap ordered by (e, cls) with subtree (min deadline, min class id
  // achieving it) augmentation.
  Node* root_ = nullptr;
  std::vector<Node*> node_of_;  // ClassId -> node (null if absent)
  std::uint64_t rng_state_ = 0x9E3779B97F4A7C15ULL;
  // Latest `now` observed; makes next_eligible_time() report "already
  // eligible" exactly like the migrating implementations do.
  TimeNs seen_now_ = 0;

  // Node pool: chunked arena plus an intrusive free list (reusing the
  // `left` pointer), so update/erase churn is allocation-free after
  // warmup.
  static constexpr std::size_t kPoolChunk = 256;
  std::vector<std::unique_ptr<Node[]>> pool_;
  Node* free_list_ = nullptr;

  std::uint64_t next_priority();
  static void pull(Node* n);
  static Node* merge(Node* a, Node* b);
  // Splits by key (e, cls): left gets keys < (e, cls), right the rest.
  static void split(Node* n, TimeNs e, ClassId cls, Node** l, Node** r);
};

// The literal structure of Section V's second alternative: "a calendar
// queue for keeping track of the eligible times in conjunction with a
// heap for maintaining the requests' deadlines".  Pending requests hash
// into fixed-width time buckets (Brown's calendar queue, simplified to a
// fixed bucket count with lazy day-rollover) and migrate into the
// deadline heap as the clock passes them; min_deadline_eligible() is the
// same O(log n) pop, but the pending side costs O(1) per insert instead
// of O(log n).
//
// Day-rollover safety: a request whose eligible time lies more than
// num_buckets * width in the future hashes into a bucket that the scan
// reaches a full "day" before the request matures.  Bucket entries
// therefore carry their exact eligible time, and migrate() only promotes
// an entry once e <= now — a future-revolution entry is skipped and
// stays in its bucket (pinned by EligibleSetTest.CalendarDayRollover).
class CalendarEligibleSet final : public EligibleSet {
 public:
  // bucket_width: the calendar's time granularity; requests whose
  // eligible times fall in the same bucket migrate together (they are
  // re-checked exactly, so correctness does not depend on the width).
  explicit CalendarEligibleSet(TimeNs bucket_width = usec(100),
                               std::size_t num_buckets = 256);

  void update(ClassId cls, TimeNs e, TimeNs d, TimeNs now) override;
  void erase(ClassId cls) override;
  bool contains(ClassId cls) const override;
  bool empty() const override { return size_ == 0; }
  std::optional<ClassId> min_deadline_eligible(TimeNs now) override;
  TimeNs next_eligible_time() const override;

 private:
  struct Request {
    TimeNs e = 0;
    TimeNs d = 0;
    bool present = false;
    bool in_ready = false;
    std::size_t bucket = 0;
  };
  // A pending entry carries its eligible time so migrate() can decide
  // promotion (and future-revolution skipping) without touching req_.
  struct Entry {
    ClassId cls = 0;
    TimeNs e = 0;
  };

  std::size_t bucket_of(TimeNs e) const noexcept {
    return static_cast<std::size_t>(e / width_) % buckets_.size();
  }
  void migrate(TimeNs now);

  TimeNs width_;
  std::vector<std::vector<Entry>> buckets_;  // pending, by eligible time
  IndexedHeap<TimeNs> ready_;                // eligible, keyed by deadline
  std::vector<Request> req_;                 // ClassId -> request
  std::size_t size_ = 0;
  TimeNs migrated_until_ = 0;  // clock position of the calendar scan
};

enum class EligibleSetKind { kDualHeap, kAugTree, kCalendar };

std::unique_ptr<EligibleSet> make_eligible_set(EligibleSetKind kind);

}  // namespace hfsc
