#include "sim/sources.hpp"

#include <algorithm>
#include <cassert>

namespace hfsc {

// ---------------------------------------------------------------- CBR

CbrSource::CbrSource(ClassId cls, RateBps rate, Bytes pkt_len, TimeNs start,
                     TimeNs stop)
    : cls_(cls), pkt_len_(pkt_len), interval_(seg_y2x(pkt_len, rate)),
      start_(start), stop_(stop) {
  assert(rate > 0 && pkt_len > 0);
}

void CbrSource::install(EventQueue& ev, Link& link) {
  ev.schedule(start_, [this, &ev, &link](TimeNs t) { emit(ev, link, t); });
}

void CbrSource::emit(EventQueue& ev, Link& link, TimeNs t) {
  if (t >= stop_) return;
  link.on_arrival(t, Packet{cls_, pkt_len_, t, seq_++});
  ev.schedule(t + interval_,
              [this, &ev, &link](TimeNs t2) { emit(ev, link, t2); });
}

// ------------------------------------------------------------- Poisson

PoissonSource::PoissonSource(ClassId cls, RateBps mean_rate, Bytes pkt_len,
                             TimeNs start, TimeNs stop, std::uint64_t seed)
    : cls_(cls), pkt_len_(pkt_len),
      mean_gap_ns_(static_cast<double>(seg_y2x(pkt_len, mean_rate))),
      start_(start), stop_(stop), rng_(seed) {}

void PoissonSource::install(EventQueue& ev, Link& link) {
  const TimeNs first =
      start_ + static_cast<TimeNs>(rng_.exponential(mean_gap_ns_));
  ev.schedule(first, [this, &ev, &link](TimeNs t) { emit(ev, link, t); });
}

void PoissonSource::emit(EventQueue& ev, Link& link, TimeNs t) {
  if (t >= stop_) return;
  link.on_arrival(t, Packet{cls_, pkt_len_, t, seq_++});
  const TimeNs next = t + 1 + static_cast<TimeNs>(rng_.exponential(mean_gap_ns_));
  ev.schedule(next, [this, &ev, &link](TimeNs t2) { emit(ev, link, t2); });
}

// -------------------------------------------------------------- On-off

OnOffSource::OnOffSource(ClassId cls, RateBps peak_rate, Bytes pkt_len,
                         TimeNs mean_on, TimeNs mean_off, TimeNs start,
                         TimeNs stop, std::uint64_t seed)
    : cls_(cls), pkt_len_(pkt_len), interval_(seg_y2x(pkt_len, peak_rate)),
      mean_on_(static_cast<double>(mean_on)),
      mean_off_(static_cast<double>(mean_off)), start_(start), stop_(stop),
      rng_(seed) {}

void OnOffSource::install(EventQueue& ev, Link& link) {
  ev.schedule(start_, [this, &ev, &link](TimeNs t) {
    on_until_ = t + static_cast<TimeNs>(rng_.exponential(mean_on_));
    emit(ev, link, t);
  });
}

void OnOffSource::emit(EventQueue& ev, Link& link, TimeNs t) {
  if (t >= stop_) return;
  if (t >= on_until_) {
    // Off period, then a fresh on period.
    const TimeNs wake = t + 1 + static_cast<TimeNs>(rng_.exponential(mean_off_));
    ev.schedule(wake, [this, &ev, &link](TimeNs t2) {
      on_until_ = t2 + static_cast<TimeNs>(rng_.exponential(mean_on_));
      emit(ev, link, t2);
    });
    return;
  }
  link.on_arrival(t, Packet{cls_, pkt_len_, t, seq_++});
  ev.schedule(t + interval_,
              [this, &ev, &link](TimeNs t2) { emit(ev, link, t2); });
}

// -------------------------------------------------------------- Greedy

GreedySource::GreedySource(ClassId cls, Bytes pkt_len, std::size_t window,
                           TimeNs start, TimeNs stop)
    : cls_(cls), pkt_len_(pkt_len), window_(window), start_(start),
      stop_(stop) {
  assert(window_ > 0);
}

void GreedySource::install(EventQueue& ev, Link& link) {
  // Refill on our own departures so the class is backlogged from start_
  // until stop_.
  link.add_departure_hook([this, &link](TimeNs t, const Packet& p) {
    if (p.cls == cls_ && t >= start_ && t < stop_) {
      link.on_arrival(t, Packet{cls_, pkt_len_, t, seq_++});
    }
  });
  ev.schedule(start_, [this, &link](TimeNs t) {
    for (std::size_t i = 0; i < window_; ++i) {
      link.on_arrival(t, Packet{cls_, pkt_len_, t, seq_++});
    }
  });
}

// --------------------------------------------------------------- Video

VideoSource::VideoSource(ClassId cls, double fps, Bytes mean_frame,
                         Bytes max_frame, Bytes mtu, TimeNs start, TimeNs stop,
                         std::uint64_t seed)
    : cls_(cls),
      frame_interval_(static_cast<TimeNs>(static_cast<double>(kNsPerSec) / fps)),
      mean_frame_(mean_frame), max_frame_(max_frame), mtu_(mtu), start_(start),
      stop_(stop), rng_(seed) {
  assert(mean_frame_ <= max_frame_ && mtu_ > 0);
}

void VideoSource::install(EventQueue& ev, Link& link) {
  ev.schedule(start_,
              [this, &ev, &link](TimeNs t) { emit_frame(ev, link, t); });
}

void VideoSource::emit_frame(EventQueue& ev, Link& link, TimeNs t) {
  if (t >= stop_) return;
  // Frame sizes uniform in [mean/2, capped Pareto tail] around the mean;
  // heavy-ish tail bounded by max_frame (I frames vs B/P frames).
  const double raw = rng_.pareto(3.0, static_cast<double>(mean_frame_) * 0.7);
  Bytes frame = std::min<Bytes>(static_cast<Bytes>(raw), max_frame_);
  frame = std::max<Bytes>(frame, mean_frame_ / 4);
  while (frame > 0) {
    const Bytes chunk = std::min(frame, mtu_);
    link.on_arrival(t, Packet{cls_, chunk, t, seq_++});
    frame -= chunk;
  }
  ev.schedule(t + frame_interval_,
              [this, &ev, &link](TimeNs t2) { emit_frame(ev, link, t2); });
}

// --------------------------------------------------------------- Trace

TraceSource::TraceSource(ClassId cls, std::vector<Item> items)
    : cls_(cls), items_(std::move(items)) {}

void TraceSource::install(EventQueue& ev, Link& link) {
  for (const Item& it : items_) {
    ev.schedule(it.t, [this, &link, len = it.len](TimeNs t) {
      link.on_arrival(t, Packet{cls_, len, t, seq_++});
    });
  }
}

}  // namespace hfsc
