#include "sim/sources.hpp"

#include <algorithm>
#include <cassert>

namespace hfsc {

// ---------------------------------------------------------------- CBR

CbrSource::CbrSource(ClassId cls, RateBps rate, Bytes pkt_len, TimeNs start,
                     TimeNs stop)
    : cls_(cls), pkt_len_(pkt_len), interval_(seg_y2x(pkt_len, rate)),
      start_(start), stop_(stop) {
  assert(rate > 0 && pkt_len > 0);
}

void CbrSource::install(EventQueue& ev, Link& link) {
  ev.schedule(start_, [this, &ev, &link](TimeNs t) { emit(ev, link, t); });
}

void CbrSource::emit(EventQueue& ev, Link& link, TimeNs t) {
  if (t >= stop_) return;
  link.on_arrival(t, Packet{cls_, pkt_len_, t, seq_++});
  ev.schedule(t + interval_,
              [this, &ev, &link](TimeNs t2) { emit(ev, link, t2); });
}

// ------------------------------------------------------------- Poisson

PoissonSource::PoissonSource(ClassId cls, RateBps mean_rate, Bytes pkt_len,
                             TimeNs start, TimeNs stop, std::uint64_t seed)
    : cls_(cls), pkt_len_(pkt_len),
      mean_gap_ns_(static_cast<double>(seg_y2x(pkt_len, mean_rate))),
      start_(start), stop_(stop), rng_(seed) {}

void PoissonSource::install(EventQueue& ev, Link& link) {
  const TimeNs first =
      start_ + static_cast<TimeNs>(rng_.exponential(mean_gap_ns_));
  ev.schedule(first, [this, &ev, &link](TimeNs t) { emit(ev, link, t); });
}

void PoissonSource::emit(EventQueue& ev, Link& link, TimeNs t) {
  if (t >= stop_) return;
  link.on_arrival(t, Packet{cls_, pkt_len_, t, seq_++});
  const TimeNs next = t + 1 + static_cast<TimeNs>(rng_.exponential(mean_gap_ns_));
  ev.schedule(next, [this, &ev, &link](TimeNs t2) { emit(ev, link, t2); });
}

// -------------------------------------------------------------- On-off

OnOffSource::OnOffSource(ClassId cls, RateBps peak_rate, Bytes pkt_len,
                         TimeNs mean_on, TimeNs mean_off, TimeNs start,
                         TimeNs stop, std::uint64_t seed)
    : cls_(cls), pkt_len_(pkt_len), interval_(seg_y2x(pkt_len, peak_rate)),
      mean_on_(static_cast<double>(mean_on)),
      mean_off_(static_cast<double>(mean_off)), start_(start), stop_(stop),
      rng_(seed) {}

void OnOffSource::install(EventQueue& ev, Link& link) {
  ev.schedule(start_, [this, &ev, &link](TimeNs t) {
    on_until_ = t + static_cast<TimeNs>(rng_.exponential(mean_on_));
    emit(ev, link, t);
  });
}

void OnOffSource::emit(EventQueue& ev, Link& link, TimeNs t) {
  if (t >= stop_) return;
  if (t >= on_until_) {
    // Off period, then a fresh on period.
    const TimeNs wake = t + 1 + static_cast<TimeNs>(rng_.exponential(mean_off_));
    ev.schedule(wake, [this, &ev, &link](TimeNs t2) {
      on_until_ = t2 + static_cast<TimeNs>(rng_.exponential(mean_on_));
      emit(ev, link, t2);
    });
    return;
  }
  link.on_arrival(t, Packet{cls_, pkt_len_, t, seq_++});
  ev.schedule(t + interval_,
              [this, &ev, &link](TimeNs t2) { emit(ev, link, t2); });
}

// -------------------------------------------------------------- Greedy

GreedySource::GreedySource(ClassId cls, Bytes pkt_len, std::size_t window,
                           TimeNs start, TimeNs stop)
    : cls_(cls), pkt_len_(pkt_len), window_(window), start_(start),
      stop_(stop) {
  assert(window_ > 0);
}

void GreedySource::install(EventQueue& ev, Link& link) {
  // Refill on our own departures so the class is backlogged from start_
  // until stop_.
  link.add_departure_hook([this, &link](TimeNs t, const Packet& p) {
    if (p.cls == cls_ && t >= start_ && t < stop_) {
      link.on_arrival(t, Packet{cls_, pkt_len_, t, seq_++});
    }
  });
  ev.schedule(start_, [this, &link](TimeNs t) {
    for (std::size_t i = 0; i < window_; ++i) {
      link.on_arrival(t, Packet{cls_, pkt_len_, t, seq_++});
    }
  });
}

// --------------------------------------------------------------- Video

VideoSource::VideoSource(ClassId cls, double fps, Bytes mean_frame,
                         Bytes max_frame, Bytes mtu, TimeNs start, TimeNs stop,
                         std::uint64_t seed)
    : cls_(cls),
      frame_interval_(static_cast<TimeNs>(static_cast<double>(kNsPerSec) / fps)),
      mean_frame_(mean_frame), max_frame_(max_frame), mtu_(mtu), start_(start),
      stop_(stop), rng_(seed) {
  assert(mean_frame_ <= max_frame_ && mtu_ > 0);
}

void VideoSource::install(EventQueue& ev, Link& link) {
  ev.schedule(start_,
              [this, &ev, &link](TimeNs t) { emit_frame(ev, link, t); });
}

void VideoSource::emit_frame(EventQueue& ev, Link& link, TimeNs t) {
  if (t >= stop_) return;
  // Frame sizes uniform in [mean/2, capped Pareto tail] around the mean;
  // heavy-ish tail bounded by max_frame (I frames vs B/P frames).
  const double raw = rng_.pareto(3.0, static_cast<double>(mean_frame_) * 0.7);
  Bytes frame = std::min<Bytes>(static_cast<Bytes>(raw), max_frame_);
  frame = std::max<Bytes>(frame, mean_frame_ / 4);
  while (frame > 0) {
    const Bytes chunk = std::min(frame, mtu_);
    link.on_arrival(t, Packet{cls_, chunk, t, seq_++});
    frame -= chunk;
  }
  ev.schedule(t + frame_interval_,
              [this, &ev, &link](TimeNs t2) { emit_frame(ev, link, t2); });
}

// -------------------------------------------------------- Pareto burst

ParetoBurstSource::ParetoBurstSource(ClassId cls, RateBps peak_rate,
                                     Bytes pkt_len, TimeNs mean_on,
                                     TimeNs mean_off, double alpha,
                                     TimeNs start, TimeNs stop,
                                     std::uint64_t seed)
    : cls_(cls), pkt_len_(pkt_len), interval_(seg_y2x(pkt_len, peak_rate)),
      mean_on_(static_cast<double>(mean_on)),
      mean_off_(static_cast<double>(mean_off)), alpha_(alpha), start_(start),
      stop_(stop), rng_(seed) {
  assert(alpha_ > 1.0 && pkt_len_ > 0);
}

TimeNs ParetoBurstSource::draw(double mean) noexcept {
  // Pareto(alpha, xm) has mean alpha*xm/(alpha-1); invert for xm so the
  // configured mean is kept while the tail stays power-law.
  const double xm = mean * (alpha_ - 1.0) / alpha_;
  return static_cast<TimeNs>(rng_.pareto(alpha_, xm));
}

void ParetoBurstSource::install(EventQueue& ev, Link& link) {
  ev.schedule(start_, [this, &ev, &link](TimeNs t) {
    on_until_ = t + draw(mean_on_);
    emit(ev, link, t);
  });
}

void ParetoBurstSource::emit(EventQueue& ev, Link& link, TimeNs t) {
  if (t >= stop_) return;
  if (t >= on_until_) {
    const TimeNs wake = t + 1 + draw(mean_off_);
    ev.schedule(wake, [this, &ev, &link](TimeNs t2) {
      on_until_ = t2 + draw(mean_on_);
      emit(ev, link, t2);
    });
    return;
  }
  link.on_arrival(t, Packet{cls_, pkt_len_, t, seq_++});
  ev.schedule(t + interval_,
              [this, &ev, &link](TimeNs t2) { emit(ev, link, t2); });
}

// -------------------------------------------------------------- Tcpish

TcpishSource::TcpishSource(ClassId cls, Bytes pkt_len, std::size_t max_window,
                           TimeNs start, TimeNs stop)
    : cls_(cls), pkt_len_(pkt_len), max_window_(max_window), start_(start),
      stop_(stop) {
  assert(max_window_ > 0 && pkt_len_ > 0);
}

void TcpishSource::install(EventQueue& ev, Link& link) {
  link.add_departure_hook([this, &link](TimeNs t, const Packet& p) {
    if (p.cls != cls_) return;
    if (in_flight_ > 0) --in_flight_;
    if (t < start_ || t >= stop_) return;
    // New drops since the last departure mean the window overran the
    // queue: halve.  Otherwise a fully delivered window grows it by one.
    const std::uint64_t drops = link.scheduler().class_drops(cls_);
    if (drops > last_drops_) {
      // Dropped packets never depart, so they must leave the in-flight
      // account here or the effective window shrinks forever.
      const std::uint64_t lost = drops - last_drops_;
      in_flight_ -= static_cast<std::size_t>(
          lost < in_flight_ ? lost : in_flight_);
      last_drops_ = drops;
      cwnd_ = cwnd_ > 1 ? cwnd_ / 2 : 1;
      acked_ = 0;
    } else if (++acked_ >= cwnd_) {
      acked_ = 0;
      if (cwnd_ < max_window_) ++cwnd_;
    }
    top_up(link, t);
  });
  ev.schedule(start_, [this, &link](TimeNs t) { top_up(link, t); });
}

void TcpishSource::top_up(Link& link, TimeNs t) {
  while (in_flight_ < cwnd_) {
    ++in_flight_;
    link.on_arrival(t, Packet{cls_, pkt_len_, t, seq_++});
  }
}

// --------------------------------------------------------------- Trace

TraceSource::TraceSource(ClassId cls, std::vector<Item> items)
    : cls_(cls), items_(std::move(items)) {}

void TraceSource::install(EventQueue& ev, Link& link) {
  for (const Item& it : items_) {
    ev.schedule(it.t, [this, &link, len = it.len](TimeNs t) {
      link.on_arrival(t, Packet{cls_, len, t, seq_++});
    });
  }
}

}  // namespace hfsc
