// Thread-level chaos against the supervised sharded runtime
// (docs/ROBUSTNESS.md Section 12).
//
// Unlike sim/chaos.cpp — which kills a single-instance host at
// persistence boundaries inside one thread — these episodes run REAL
// worker threads under the Supervisor and inject the faults only a
// threaded deployment can suffer: a wedged (stalled) worker that stops
// heartbeating while producers flood its ring past capacity, a worker
// killed mid-loop at an arbitrary point (including between a ring pop
// and the host enqueue, the canonical in-flight-loss window), a host
// persistence-boundary crash reached from the worker thread, and a
// worker death during a supervisor outage (the watchdog itself was
// down; restarting it must find and heal the corpse).
//
// Every episode ends with the books balanced exactly: the cross-shard
// conservation identity, double-recovery digest equality on each
// restart, auditor-clean shards, a fully drained backlog, and healthy
// shards' rt delays within the analytic Theorem 2 bound.
#include "sim/chaos.hpp"

#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "config/hierarchy_spec.hpp"
#include "curve/piecewise.hpp"
#include "runtime/supervisor.hpp"
#include "util/rng.hpp"

namespace hfsc {

namespace {

void sfail(ChaosReport& rep, const std::string& what) {
  rep.failures.push_back(what + " [" + chaos_seed_tag(rep.seed) + "]");
}

// Per-shard hierarchy: one guaranteed rt leaf plus two bulk leaves
// under a pinned top-level org, and one hash-assigned top-level leaf
// so the default partition path is exercised too.
constexpr Bytes kRtLen = 200;
const ServiceCurve kRtCurve = ServiceCurve::linear(mbps(20));

HierarchySpec make_spec(int shards) {
  HierarchySpec spec;
  using ClassSpec = HierarchySpec::ClassSpec;
  for (int s = 0; s < shards; ++s) {
    const std::string tag = std::to_string(s);
    ClassSpec org;
    org.name = "org" + tag;
    org.parent = "root";
    org.ls = ServiceCurve::linear(mbps(50));
    org.shard = s;
    spec.add(org);
    ClassSpec rt;
    rt.name = "rt" + tag;
    rt.parent = org.name;
    rt.rt = kRtCurve;
    rt.ls = kRtCurve;
    spec.add(rt);
    for (const char* leaf : {"a", "b"}) {
      ClassSpec b;
      b.name = std::string("bulk") + leaf + tag;
      b.parent = org.name;
      b.ls = ServiceCurve::linear(mbps(15));
      b.qlimit = 64;
      spec.add(b);
    }
  }
  ClassSpec wild;
  wild.name = "wild";
  wild.parent = "root";
  wild.ls = ServiceCurve::linear(mbps(5));
  wild.qlimit = 32;
  spec.add(wild);
  return spec;
}

RuntimeOptions shard_runtime_options() {
  RuntimeOptions o;
  o.link_rate = mbps(100);
  o.admission_rate = mbps(100);
  o.watchdog_horizon = 0;  // virtual time advances irregularly here
  o.sample_interval = usec(500);
  GovernorConfig& g = o.governor;
  g.enter_backlog[0] = 64 * 1024;
  g.enter_backlog[1] = 256 * 1024;
  g.enter_backlog[2] = 1024 * 1024;
  g.exit_backlog[0] = 32 * 1024;
  g.exit_backlog[1] = 128 * 1024;
  g.exit_backlog[2] = 512 * 1024;
  g.class_threshold = 96 * 1024;
  g.up_samples = 2;
  g.down_samples = 4;
  return o;
}

// The thread-level fault each episode injects (cycled).
enum class ShardFault {
  kStallAndFlood,      // wedged worker + ring overflow, watchdog kill
  kWorkerKill,         // operation-countdown death mid-loop
  kHostCrash,          // persistence-boundary crash / torn append
  kSupervisorOutage,   // worker dies while the supervisor is down
};

void run_shard_episode(const ChaosConfig& cfg, int ep, ChaosReport& rep) {
  Rng rng(cfg.seed ^ (0x517cc1b727220a95ULL * static_cast<std::uint64_t>(ep + 1)));
  const int S = cfg.shards < 1 ? 1 : cfg.shards;
  const std::string who = "sharded episode " + std::to_string(ep);

  ShardedOptions so;
  so.shards = S;
  so.shard.runtime = shard_runtime_options();
  so.shard.ring_capacity = 256;
  so.shard.checkpoint_every_pops = 256;
  so.shard.serve_burst = 32;
  so.spill_capacity = 1024;
  // Generous enough that OS scheduling jitter (or sanitizer slowdown)
  // on a small machine never masquerades as a wedged worker; an
  // injected stall is still confirmed in ~40 ms.
  so.poll_every = std::chrono::microseconds(500);
  so.suspect_after_polls = 30;
  so.restart_after_polls = 80;
  ShardedRuntime rt(so, make_spec(S));

  std::vector<ClassId> rt_ids, bulk_ids;
  for (int s = 0; s < S; ++s) {
    const std::string tag = std::to_string(s);
    rt_ids.push_back(rt.global_id("rt" + tag));
    bulk_ids.push_back(rt.global_id("bulka" + tag));
    bulk_ids.push_back(rt.global_id("bulkb" + tag));
  }
  const ClassId wild = rt.global_id("wild");

  const int prod = rt.register_producer();
  rt.start();

  const auto fault = static_cast<ShardFault>(ep % 4);
  const int victim = static_cast<int>(rng.uniform(0, static_cast<std::uint64_t>(S - 1)));
  const ClassId victim_bulk = bulk_ids[static_cast<std::size_t>(2 * victim)];

  TimeNs now = usec(1);
  std::uint64_t seq = 1;
  const TimeNs step = usec(100);  // rt CBR: 200 B / 100 us = 16 Mb/s
  const int iters = 400;
  const int fault_at = static_cast<int>(rng.uniform(100, 160));
  bool fault_injected = false;

  for (int i = 0; i < iters; ++i) {
    for (const ClassId c : rt_ids) rt.enqueue(now, Packet{c, kRtLen, now, seq++});
    for (const ClassId c : bulk_ids) {
      if (rng.chance(0.5)) {
        rt.enqueue(now, Packet{c, static_cast<Bytes>(rng.uniform(400, 1500)),
                               now, seq++});
      }
    }
    if (rng.chance(0.1)) rt.enqueue(now, Packet{wild, 500, now, seq++});
    // Malformed input: an unroutable class id must be refused, counted
    // nowhere in the shard totals, and never crash anything.
    if (rng.chance(0.02) &&
        rt.enqueue(now, Packet{9999, 100, now, seq++})) {
      sfail(rep, who + ": unroutable class id was accepted");
    }

    if (!fault_injected && i >= fault_at) {
      fault_injected = true;
      switch (fault) {
        case ShardFault::kStallAndFlood:
          rt.shard(victim).inject_stall();
          break;
        case ShardFault::kWorkerKill:
          rt.shard(victim).inject_kill(rng.uniform(1, 400));
          break;
        case ShardFault::kHostCrash: {
          // Cycle the persistence boundaries; journal-append points are
          // triggered by a posted batch, checkpoint points by the
          // worker's own pop-cadence checkpoint.
          const int sub = (ep / 4) % 6;
          if (sub == 5) {
            rt.shard(victim).post_tear(rng.uniform(1, 40));
          } else {
            rt.shard(victim).post_arm_crash(kAllCrashPoints[sub]);
          }
          if (sub == 5 || kAllCrashPoints[sub] == CrashPoint::kAfterApply ||
              kAllCrashPoints[sub] == CrashPoint::kAfterJournalAppend) {
            std::vector<RuntimeHost::BatchOp> ops;
            RuntimeHost::BatchOp add;
            add.kind = RuntimeHost::BatchOp::Kind::kAdd;
            add.parent = rt.local_id(rt.global_id(
                "org" + std::to_string(victim)));
            add.cfg = ClassConfig::link_share_only(
                ServiceCurve::linear(mbps(5)));
            ops.push_back(add);
            rt.shard(victim).post_batch(std::move(ops));
          }
          break;
        }
        case ShardFault::kSupervisorOutage:
          rt.stop_supervisor();
          rt.shard(victim).inject_kill(rng.uniform(1, 100));
          break;
      }
    }
    // Ring overflow: while the victim is wedged nothing pops, so a
    // sustained flood must fill its 256-slot ring and bounce the rest
    // as ring_rejected — the conservation identity's `rejected` term.
    if (fault == ShardFault::kStallAndFlood && fault_injected &&
        i < fault_at + 20) {
      for (int k = 0; k < 30; ++k) {
        rt.enqueue(now, Packet{victim_bulk, 1000, now, seq++});
      }
    }

    rt.publish_frontier(prod, now);
    now += step;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  if (fault == ShardFault::kSupervisorOutage) {
    // With the watchdog down the corpse must still be lying there —
    // dead, unhealed, producers bouncing off its full ring.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (!rt.shard(victim).dead()) {
      sfail(rep, who + ": killed worker not dead after supervisor outage");
    }
    if (rt.shard(victim).restarts() != 0) {
      sfail(rep, who + ": shard restarted while the supervisor was down");
    }
    rt.start_supervisor();
  }

  // Heal: the supervisor must detect the fault, quarantine, recover and
  // restart.  Keep a trickle of traffic flowing so an armed
  // checkpoint-boundary crash actually reaches its checkpoint.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    std::uint64_t restarts = 0;
    bool healthy = true;
    for (int s = 0; s < S; ++s) {
      restarts += rt.shard(s).restarts();
      if (rt.shard(s).dead()) healthy = false;
      if (rt.phase(s) != ShardPhase::kRunning) healthy = false;
    }
    if (healthy && restarts >= 1) break;
    if (std::chrono::steady_clock::now() > deadline) {
      sfail(rep, who + ": fault never healed (" + std::to_string(restarts) +
                     " restarts)");
      break;
    }
    for (int k = 0; k < 4; ++k) {
      rt.enqueue(now, Packet{victim_bulk, 800, now, seq++});
    }
    rt.publish_frontier(prod, now);
    now += step;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }

  // Drain: advance the frontier with no new arrivals until every
  // shard's backlog and spill are empty.
  for (int g = 0; g < 2000; ++g) {
    now += msec(1);
    rt.publish_frontier(prod, now);
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    if (g % 8 == 7) {
      const ShardedRuntime::Totals t = rt.quiesce_totals();
      if (t.backlog == 0 && t.spilled == 0) break;
    }
  }

  // The books, exactly.
  const ShardedRuntime::Totals totals = rt.quiesce_totals();
  if (!totals.conserved()) {
    sfail(rep, who + ": conservation broken: " + totals.to_string());
  }
  if (totals.backlog != 0 || totals.spilled != 0) {
    sfail(rep, who + ": backlog failed to drain: " + totals.to_string());
  }
  if (totals.restarts < 1) {
    sfail(rep, who + ": injected fault never caused a restart");
  }
  std::string why;
  if (!rt.audit_all(&why)) {
    sfail(rep, who + ": audit-dirty after recovery: " + why);
  }

  int recovered = 0;
  for (const SupervisorEvent& ev : rt.drain_events()) {
    switch (ev.kind) {
      case SupervisorEvent::Kind::kRecoveryFailed:
        sfail(rep, who + ": recovery failed on shard " +
                       std::to_string(ev.shard) + ": " + ev.detail);
        break;
      case SupervisorEvent::Kind::kRecovered:
        ++recovered;
        if (!ev.digest_match) {
          sfail(rep, who + ": recovery of shard " + std::to_string(ev.shard) +
                         " is not deterministic (digest mismatch)");
        }
        break;
      case SupervisorEvent::Kind::kQuarantined:
        rep.shard_spilled += ev.spilled;
        break;
      default:
        break;
    }
  }
  if (recovered < 1) sfail(rep, who + ": no recovery event was emitted");

  // Healthy shards' guarantees never flinched: a shard that was never
  // restarted must have kept every rt dequeue inside the analytic
  // bound, fault or no fault elsewhere.
  for (int s = 0; s < S; ++s) {
    if (rt.shard(s).restarts() != 0) continue;
    const TimeNs d = rt.shard(s).max_rt_delay();
    if (d > rep.shard_rt_delay_max) rep.shard_rt_delay_max = d;
    if (d > rep.shard_rt_delay_bound) {
      sfail(rep, who + ": healthy shard " + std::to_string(s) +
                     " rt delay " + std::to_string(d) +
                     " ns exceeds the Theorem 2 bound " +
                     std::to_string(rep.shard_rt_delay_bound) + " ns");
    }
  }

  rep.offered += totals.presented;
  rep.delivered += totals.sent;
  rep.shard_restarts += totals.restarts;
  rep.shard_crash_lost += totals.crash_lost;
  ++rep.shard_faults;
  ++rep.shard_episodes;
  rt.stop();
}

}  // namespace

ChaosReport run_sharded_chaos(const ChaosConfig& cfg) {
  ChaosReport rep;
  rep.seed = cfg.seed;
  // Theorem 2 bound for the per-shard rt leaf, computed exactly as the
  // static analyzer computes it: the offered rt stream (200 B / 100 us
  // = 16 Mb/s CBR) conforms to a (2000 B, 16 Mb/s) token bucket, served
  // by a 20 Mb/s guarantee on a 100 Mb/s link.
  const PiecewiseLinear env = PiecewiseLinear::token_bucket(2000, mbps(16));
  const PiecewiseLinear guarantee =
      PiecewiseLinear::from_service_curve(kRtCurve);
  const auto gap = env.max_horizontal_gap(guarantee);
  if (!gap) {
    sfail(rep, "sharded: rt envelope unexpectedly overruns the guarantee");
    return rep;
  }
  rep.shard_rt_delay_bound = sat_add(*gap, tx_time(1500, mbps(100)));
  for (int ep = 0; ep < cfg.shard_episodes; ++ep) {
    run_shard_episode(cfg, ep, rep);
  }
  return rep;
}

}  // namespace hfsc
