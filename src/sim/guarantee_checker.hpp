// Empirical service-curve guarantee checker.
//
// Implements definition (1) of the paper directly: a session with service
// curve S is guaranteed if for any packet-departure time t at which the
// session is backlogged there exists a start t_k <= t of one of its
// backlogged periods with
//
//     w(t) - w(t_k) >= S(t - t_k).
//
// Theorem 2 allows H-FSC to miss a deadline by up to tau_max = L_max / C
// (one maximum-length packet time, non-preemption), and our fixed-point
// curves round by up to ~1 byte/ns per operation, so the check accepts a
// lateness allowance: it requires
//
//     exists k:  w(t) - w(t_k) >= S(t - t_k - allowance)      (*)
//
// with allowance supplied by the caller (typically tau_max plus a small
// epsilon).
//
// Feed arrivals and departures in time order; violations() reports every
// departure instant at which (*) failed, with the worst-case deficit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "curve/service_curve.hpp"
#include "util/types.hpp"

namespace hfsc {

class GuaranteeChecker {
 public:
  struct Violation {
    TimeNs t = 0;          // departure time of the violating packet
    Bytes deficit = 0;     // best-case missing service across all t_k
    TimeNs best_start = 0; // the backlog start that came closest
  };

  GuaranteeChecker(ServiceCurve sc, TimeNs allowance)
      : sc_(sc), allowance_(allowance) {}

  void on_arrival(TimeNs t, Bytes len) {
    if (queued_bytes_ == 0) {
      backlog_starts_.push_back(t);
      work_at_start_.push_back(work_);  // w(t_k)
    }
    queued_bytes_ += len;
  }

  // Call with the packet's last-bit departure time.
  void on_departure(TimeNs t, Bytes len) {
    work_ += len;
    queued_bytes_ -= len;
    check(t);
  }

  const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  Bytes max_deficit() const noexcept {
    Bytes worst = 0;
    for (const auto& v : violations_) worst = std::max(worst, v.deficit);
    return worst;
  }
  Bytes work() const noexcept { return work_; }
  std::size_t backlog_periods() const noexcept {
    return backlog_starts_.size();
  }

 private:
  void check(TimeNs t) {
    if (backlog_starts_.empty()) return;
    Bytes best_deficit = kBytesInfinity;
    TimeNs best_start = 0;
    for (std::size_t i = 0; i < backlog_starts_.size(); ++i) {
      const TimeNs tk = backlog_starts_[i];
      if (tk > t) break;
      const Bytes wk = work_at_start_[i];
      const TimeNs rel = t - tk;
      const Bytes need =
          sc_.eval(rel > allowance_ ? rel - allowance_ : TimeNs{0});
      const Bytes got = work_ - wk;
      if (got >= need) return;  // some t_k satisfies the definition
      const Bytes deficit = need - got;
      if (deficit < best_deficit) {
        best_deficit = deficit;
        best_start = tk;
      }
    }
    violations_.push_back(Violation{t, best_deficit, best_start});
  }

  ServiceCurve sc_;
  TimeNs allowance_;
  Bytes queued_bytes_ = 0;
  Bytes work_ = 0;
  std::vector<TimeNs> backlog_starts_;
  std::vector<Bytes> work_at_start_;
  std::vector<Violation> violations_;
};

}  // namespace hfsc
