#include "sim/fault_injector.hpp"

#include <algorithm>
#include <sstream>

#include "core/checkpoint.hpp"

namespace hfsc {

void FaultInjector::enable_churn(Hfsc& hfsc, ClassId churn_parent,
                                 std::vector<ClassId> mutable_leaves) {
  hfsc_ = &hfsc;
  churn_parent_ = churn_parent;
  mutable_leaves_ = std::move(mutable_leaves);
}

TimeNs FaultInjector::perturb_now(TimeNs now) {
  if (plan_.p_clock_jump > 0 && plan_.max_jump > 0 &&
      rng_.chance(plan_.p_clock_jump)) {
    skew_ += 1 + rng_.uniform(0, plan_.max_jump - 1);
    ++counts_.clock_jumps;
  }
  TimeNs inner_now = sat_add(now, skew_);
  if (plan_.p_clock_regress > 0 && plan_.max_regress > 0 &&
      rng_.chance(plan_.p_clock_regress)) {
    // Transient: only this call sees the old clock; the hardened data
    // path must clamp instead of rewinding its curves.
    inner_now = sat_sub(inner_now, 1 + rng_.uniform(0, plan_.max_regress - 1));
    ++counts_.clock_regressions;
  }
  return inner_now;
}

void FaultInjector::inject_packets(TimeNs inner_now) {
  if (plan_.p_bad_class > 0 && rng_.chance(plan_.p_bad_class)) {
    // Alternate between an out-of-range id, the root, and (when churn is
    // on) a deleted ephemeral class.
    ClassId cls = static_cast<ClassId>(1'000'000'007 + rng_.uniform(0, 7));
    switch (rng_.uniform(0, 2)) {
      case 0: cls = kRootClass; break;
      case 1:
        if (hfsc_ != nullptr) {
          for (ClassId c = 1; c < hfsc_->num_classes(); ++c) {
            if (hfsc_->is_deleted(c)) { cls = c; break; }
          }
        }
        break;
      default: break;
    }
    inner_.enqueue(inner_now, Packet{cls, 100, inner_now, 0});
    ++counts_.bad_class_packets;
  }
  if (plan_.p_zero_len > 0 && !mutable_leaves_.empty() &&
      rng_.chance(plan_.p_zero_len)) {
    const ClassId cls =
        mutable_leaves_[rng_.uniform(0, mutable_leaves_.size() - 1)];
    inner_.enqueue(inner_now, Packet{cls, 0, inner_now, 0});
    ++counts_.zero_len_packets;
  }
  if (plan_.p_oversized > 0 && !mutable_leaves_.empty() &&
      rng_.chance(plan_.p_oversized)) {
    const ClassId cls =
        mutable_leaves_[rng_.uniform(0, mutable_leaves_.size() - 1)];
    inner_.enqueue(inner_now,
                   Packet{cls, kMaxSanePacketLen + 1, inner_now, 0});
    ++counts_.oversized_packets;
  }
}

void FaultInjector::churn(TimeNs inner_now) {
  if (hfsc_ == nullptr) return;
  if (plan_.p_queue_limit > 0 && !mutable_leaves_.empty() &&
      rng_.chance(plan_.p_queue_limit)) {
    const ClassId cls =
        mutable_leaves_[rng_.uniform(0, mutable_leaves_.size() - 1)];
    // Flap between tight, loose and unlimited.
    const std::size_t limit =
        rng_.chance(0.3) ? 0 : static_cast<std::size_t>(rng_.uniform(1, 16));
    hfsc_->set_queue_limit(cls, limit);
    ++counts_.queue_limit_changes;
  }
  if (plan_.p_class_churn > 0 && rng_.chance(plan_.p_class_churn)) {
    switch (rng_.uniform(0, 2)) {
      case 0: {  // add an ephemeral (traffic-less) leaf mid-backlog
        const RateBps r = kbps(1 + rng_.uniform(0, 999));
        ephemeral_.push_back(hfsc_->add_class(
            churn_parent_,
            ClassConfig::link_share_only(ServiceCurve::linear(r))));
        ++counts_.classes_added;
        break;
      }
      case 1: {  // re-shape a live leaf while it may be mid-service
        if (mutable_leaves_.empty()) break;
        const ClassId cls =
            mutable_leaves_[rng_.uniform(0, mutable_leaves_.size() - 1)];
        const RateBps m2 = kbps(100 + rng_.uniform(0, 900));
        const RateBps m1 = m2 * (1 + rng_.uniform(0, 3));  // concave
        hfsc_->change_class(
            inner_now, cls,
            ClassConfig::both(ServiceCurve{
                m1, usec(100) + rng_.uniform(0, msec(5)), m2}));
        ++counts_.classes_changed;
        break;
      }
      default: {  // delete an ephemeral leaf
        if (ephemeral_.empty()) break;
        const std::size_t i = rng_.uniform(0, ephemeral_.size() - 1);
        hfsc_->delete_class(ephemeral_[i]);
        ephemeral_.erase(ephemeral_.begin() + static_cast<long>(i));
        ++counts_.classes_deleted;
        break;
      }
    }
  }
}

void FaultInjector::txn_churn(TimeNs inner_now) {
  if (hfsc_ == nullptr) return;
  const bool commit = plan_.p_txn_commit > 0 && rng_.chance(plan_.p_txn_commit);
  const bool abort = !commit && plan_.p_txn_abort > 0 &&
                     rng_.chance(plan_.p_txn_abort);
  if (!commit && !abort) return;

  // Stage a batch mixing every op kind: a couple of ephemeral adds, a
  // re-shape of a mutable leaf, a queue-limit flap on a staged ephemeral,
  // and (sometimes) the delete of an existing ephemeral.  All ops are
  // valid, so commit() must succeed; rollback() must leave no trace.
  Hfsc::Txn txn = hfsc_->begin();
  std::vector<ClassId> staged;
  const std::size_t n_adds = 1 + rng_.uniform(0, 2);
  for (std::size_t i = 0; i < n_adds; ++i) {
    const RateBps r = kbps(1 + rng_.uniform(0, 999));
    staged.push_back(txn.add_class(
        churn_parent_,
        ClassConfig::link_share_only(ServiceCurve::linear(r))));
  }
  if (!mutable_leaves_.empty() && rng_.chance(0.5)) {
    const ClassId cls =
        mutable_leaves_[rng_.uniform(0, mutable_leaves_.size() - 1)];
    const RateBps m2 = kbps(100 + rng_.uniform(0, 900));
    const RateBps m1 = m2 * (1 + rng_.uniform(0, 3));
    txn.change_class(inner_now, cls,
                     ClassConfig::both(ServiceCurve{
                         m1, usec(100) + rng_.uniform(0, msec(5)), m2}));
  }
  if (rng_.chance(0.5)) {
    // Against a *predicted* id from this very batch — ephemeral leaves
    // carry no traffic, so a committed limit cannot perturb the workload.
    const ClassId cls = staged[rng_.uniform(0, staged.size() - 1)];
    txn.set_queue_limit(
        cls, rng_.chance(0.3) ? 0
                              : static_cast<std::size_t>(rng_.uniform(1, 16)));
  }
  if (!ephemeral_.empty() && rng_.chance(0.5)) {
    const std::size_t i = rng_.uniform(0, ephemeral_.size() - 1);
    txn.delete_class(ephemeral_[i]);
    if (commit) ephemeral_.erase(ephemeral_.begin() + static_cast<long>(i));
  }

  if (commit) {
    txn.commit();
    ephemeral_.insert(ephemeral_.end(), staged.begin(), staged.end());
    ++counts_.txn_commits;
  } else {
    txn.rollback();
    ++counts_.txn_aborts;
  }
}

void FaultInjector::checkpoint_roundtrip() {
  if (hfsc_ == nullptr || plan_.p_checkpoint == 0 ||
      !rng_.chance(plan_.p_checkpoint)) {
    return;
  }
  std::stringstream buf;
  checkpoint(*hfsc_, buf);
  const Hfsc restored = restore_checkpoint(buf);  // throws on corruption
  if (state_digest(restored) != state_digest(*hfsc_)) {
    ++counts_.checkpoint_mismatches;
  }
  ++counts_.checkpoint_roundtrips;
}

void FaultInjector::enqueue(TimeNs now, Packet pkt) {
  const TimeNs inner_now = perturb_now(now);
  inject_packets(inner_now);
  churn(inner_now);
  txn_churn(inner_now);
  checkpoint_roundtrip();
  inner_.enqueue(inner_now, pkt);
}

std::optional<Packet> FaultInjector::dequeue(TimeNs now) {
  const TimeNs inner_now = perturb_now(now);
  inject_packets(inner_now);
  churn(inner_now);
  txn_churn(inner_now);
  checkpoint_roundtrip();
  return inner_.dequeue(inner_now);
}

}  // namespace hfsc
