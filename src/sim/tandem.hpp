// Multi-hop tandem of links: the output of hop k feeds hop k+1.
//
// Service-curve guarantees compose across hops (Cruz's calculus, the
// foundation the paper builds on in Section II), so an H-FSC scheduler at
// every hop bounds the end-to-end delay by roughly the sum of per-hop
// bounds; a FIFO tandem does not.  examples/multihop_tandem.cpp and the
// tandem tests exercise this.
//
// Each hop owns its Scheduler (supplied by a factory so every hop gets an
// identically-configured instance).  End-to-end delay is measured from
// the packet's first-hop arrival (Packet::arrival is rewritten per hop by
// the links, so the tandem keeps its own per-seq entry table).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/flow_stats.hpp"
#include "sim/link.hpp"
#include "util/stats.hpp"

namespace hfsc {

class Tandem {
 public:
  using SchedFactory = std::function<std::unique_ptr<Scheduler>()>;

  Tandem(EventQueue& ev, std::size_t hops, RateBps capacity,
         SchedFactory factory) {
    scheds_.reserve(hops);
    links_.reserve(hops);
    for (std::size_t h = 0; h < hops; ++h) {
      scheds_.push_back(factory());
      links_.push_back(
          std::make_unique<Link>(ev, capacity, *scheds_.back()));
    }
    for (std::size_t h = 0; h + 1 < hops; ++h) {
      Link* next = links_[h + 1].get();
      links_[h]->add_departure_hook([next](TimeNs t, const Packet& p) {
        next->on_arrival(t, p);
      });
    }
    // End-to-end accounting.  Keyed on the explicit (cls, seq) pair: the
    // historical folded key `seq ^ (cls << 48)` aliased distinct packets
    // once seq crossed 2^48 (and for crafted cls/seq pairs), silently
    // merging their entry times.
    links_.front()->add_arrival_hook([this](TimeNs t, const Packet& p) {
      entry_[PacketKey{p.cls, p.seq}] = t;
    });
    links_.back()->add_departure_hook([this](TimeNs t, const Packet& p) {
      const auto it = entry_.find(PacketKey{p.cls, p.seq});
      if (it == entry_.end()) return;
      auto& s = e2e_[p.cls];
      s.delays.add(static_cast<double>(t - it->second) / 1e6);
      s.bytes += p.len;
      entry_.erase(it);
    });
  }

  // First-hop ingress.
  Link& ingress() noexcept { return *links_.front(); }
  Link& hop(std::size_t h) { return *links_.at(h); }
  Scheduler& scheduler(std::size_t h) { return *scheds_.at(h); }
  std::size_t hops() const noexcept { return links_.size(); }

  // End-to-end delay statistics in milliseconds.
  double e2e_mean_ms(ClassId cls) const {
    const auto it = e2e_.find(cls);
    return it == e2e_.end() ? 0.0 : it->second.delays.mean();
  }
  double e2e_max_ms(ClassId cls) const {
    const auto it = e2e_.find(cls);
    return it == e2e_.end() ? 0.0 : it->second.delays.max();
  }
  std::size_t delivered(ClassId cls) const {
    const auto it = e2e_.find(cls);
    return it == e2e_.end() ? 0 : it->second.delays.count();
  }
  Bytes delivered_bytes(ClassId cls) const {
    const auto it = e2e_.find(cls);
    return it == e2e_.end() ? 0 : it->second.bytes;
  }

 private:
  struct E2e {
    SampleSet delays;
    Bytes bytes = 0;
  };

  // Exact identity of an in-flight packet.  Equality compares both
  // fields, so a hash collision can never alias two packets the way the
  // old folded 64-bit key could.
  struct PacketKey {
    ClassId cls;
    std::uint64_t seq;
    bool operator==(const PacketKey& o) const noexcept {
      return cls == o.cls && seq == o.seq;
    }
  };
  struct PacketKeyHash {
    std::size_t operator()(const PacketKey& k) const noexcept {
      std::uint64_t h = k.seq;
      h ^= (static_cast<std::uint64_t>(k.cls) + 0x9e3779b97f4a7c15ULL +
            (h << 6) + (h >> 2));
      return static_cast<std::size_t>(h);
    }
  };

  std::vector<std::unique_ptr<Scheduler>> scheds_;
  std::vector<std::unique_ptr<Link>> links_;
  std::unordered_map<PacketKey, TimeNs, PacketKeyHash> entry_;
  std::unordered_map<ClassId, E2e> e2e_;
};

}  // namespace hfsc
