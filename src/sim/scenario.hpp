// Scenario files: a small declarative language for describing one or
// more scheduling nodes plus a workload, so experiments can be run
// without writing C++ (tools/hfsc_sim reads these).
//
//     # 45 Mb/s campus link
//     link 45Mbps
//     duration 10s
//     class cmu   root  ls linear 25Mbps
//     class audio cmu   rt udr 160 5ms 64kbps   ls linear 64kbps
//     class data  cmu   ls linear 15Mbps  ul linear 20Mbps  qlimit 100
//     source cbr    audio 64kbps 160 0s 10s
//     source greedy data  1500 8 0s 10s
//
// Multi-node topologies wrap class declarations in `node` blocks and wire
// flows across nodes with `route` (full grammar: docs/SCENARIOS.md):
//
//     duration 5s
//     node edge 10Mbps
//       class voice root rt udr 160 5ms 64kbps ls linear 64kbps
//     end
//     node core 45Mbps
//       class voice root rt udr 160 5ms 64kbps ls linear 64kbps
//     end
//     route voice edge core
//     source cbr voice 64kbps 160 0s 5s
//
// Grammar (one directive per line, '#' comments):
//     link <rate>                          (single-node form)
//     duration <time>
//     window <time>                        (throughput window, default 100ms)
//     scheduler <kind>                     (hfsc | hpfq | cbq | drr | sced |
//                                           vclock | fifo; default hfsc)
//     admission                            (gate rt curves — static classes
//                                           at compile, timed `at` creations
//                                           per transaction, rejections
//                                           counted instead of fatal)
//     node <name> <rate>                   (opens a node block; class /
//       ...                                 envelope / source / at
//     end                                   directives inside are scoped
//                                           to the node)
//     route <class> <node> <node> [...]    (multi-hop path; the class must
//                                           be declared on every hop)
//     class <name> <parent|root> [rt <spec>] [ls <spec>] [ul <spec>]
//                                [qlimit <packets>] [shard <index>]
//       (shard pins the class's subtree to one shard of the sharded
//        runtime; top-level classes only, default = name hash)
//       <spec> := linear <rate>
//               | curve <m1 rate> <d time> <m2 rate>
//               | udr <u bytes> <d time> <r rate>     (Fig. 7 mapping)
//     source cbr     <class> <rate> <pkt bytes> <start> <stop>
//     source poisson <class> <rate> <pkt bytes> <start> <stop> <seed>
//     source onoff   <class> <peak rate> <pkt bytes> <mean_on> <mean_off>
//                    <start> <stop> <seed>
//     source pareto  <class> <peak rate> <pkt bytes> <mean_on> <mean_off>
//                    <alpha> <start> <stop> <seed>
//     source greedy  <class> <pkt bytes> <window pkts> <start> <stop>
//     source tcpish  <class> <pkt bytes> <max window pkts> <start> <stop>
//     source video   <class> <fps> <mean_frame> <max_frame> <mtu>
//                    <start> <stop> <seed>
//     at <time> class <name> <parent> [attrs...]   (timed Txn class create)
//     at <time> delete <class>                     (timed Txn class delete;
//                                                   also stops its sources)
//     at <time> source <kind> <class> <args minus start/stop>
//                                                  (source starts at <time>)
//     at <time> stop <class>                       (stops the class's
//                                                   earlier-started sources)
//     envelope <class> <burst bytes> <rate>
//       (token-bucket arrival envelope A(t) = burst + rate*t the class's
//        traffic is promised to conform to; the static analyzer derives
//        the worst-case delay bound of Theorem 2 from it)
//     deadline <class> <time>
//       (end-to-end delay budget for the class's flow: the static
//        analyzer emits e2e-budget-exceeded when the analytic bound —
//        across the whole route for routed classes — exceeds it)
//
// Units: rates `bps|kbps|Mbps|Gbps` (decimal allowed), times
// `ns|us|ms|s`, byte counts plain integers.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "config/hierarchy_spec.hpp"
#include "core/hfsc.hpp"
#include "util/types.hpp"

namespace hfsc {

// Unit parsing helpers (exposed for tests and other tools).
RateBps parse_rate(const std::string& tok);   // throws std::runtime_error
TimeNs parse_time(const std::string& tok);    // throws
Bytes parse_bytes(const std::string& tok);    // throws

// One scheduling node of the topology.  Single-node files (the `link`
// directive) parse into one implicit node named "link".
struct ScenarioNode {
  std::string name;
  RateBps rate = 0;
  std::size_t line = 0;  // 0 for the implicit single-node form
};

struct ScenarioClass {
  std::string name;
  std::string parent;  // "root" for top level
  // Owning node ("link" for single-node scenarios).  Class names are
  // unique per node; the same name on several nodes describes the same
  // flow's per-hop class (wired by `route`).
  std::string node;
  ClassConfig cfg;
  std::size_t qlimit = 0;
  // Token-bucket arrival envelope (`envelope` directive); rate == 0 and
  // burst == 0 means none was declared.
  Bytes env_burst = 0;
  RateBps env_rate = 0;
  // Explicit shard pin (`shard` attribute, top-level classes only);
  // -1 = assign by name hash in the sharded runtime.
  int shard = -1;
  // 1-based source lines of the declaring directives (0 when the
  // scenario was built programmatically) — diagnostic provenance for the
  // static analyzer.
  std::size_t line = 0;
  std::size_t env_line = 0;
};

struct ScenarioSource {
  enum class Kind { kCbr, kPoisson, kOnOff, kGreedy, kVideo, kPareto,
                    kTcpish };
  Kind kind{};
  std::string cls;
  // Entry node, resolved after parse: the first hop of the class's route,
  // else its sole declaring node.
  std::string node;
  RateBps rate = 0;
  Bytes pkt_len = 0;
  TimeNs start = 0;
  TimeNs stop = 0;
  std::uint64_t seed = 0;
  TimeNs mean_on = 0;
  TimeNs mean_off = 0;
  double alpha = 0;        // pareto shape
  std::size_t window = 0;  // greedy / tcpish
  double fps = 0;          // video
  Bytes mean_frame = 0;
  Bytes max_frame = 0;
  Bytes mtu = 0;
  std::size_t line = 0;
};

// Multi-hop path for one class name across node hierarchies.
struct ScenarioRoute {
  std::string cls;
  std::vector<std::string> nodes;
  std::size_t line = 0;
};

// End-to-end delay budget for one class (`deadline` directive).  The
// static analyzer checks its route-composed (or single-hop) delay bound
// against this and reports e2e-budget-exceeded at `line` on overrun.
struct ScenarioDeadline {
  std::string cls;
  TimeNs budget = 0;
  std::size_t line = 0;
};

// A timed control directive (`at <time> ...`).  Class create/delete run
// through Hfsc::Txn at simulation time; source start/stop are resolved
// statically (a stop truncates the effective stop time of the class's
// earlier-started sources).
struct ScenarioEvent {
  enum class Kind { kAddClass, kDeleteClass, kStartSource, kStopSources };
  Kind kind{};
  TimeNs at = 0;
  std::string node;
  ScenarioClass cls;    // kAddClass payload
  ScenarioSource src;   // kStartSource payload
  std::string target;   // kDeleteClass / kStopSources class name
  std::size_t line = 0;
};

struct Scenario {
  // Rate of the single/first node — kept for single-node consumers; the
  // authoritative per-node rates live in `nodes`.
  RateBps link_rate = 0;
  TimeNs duration = 0;
  TimeNs window = msec(100);
  // The name handed to parse() (the path for parse_file) — diagnostic
  // provenance; empty for programmatic scenarios.
  std::string file;
  // Which family runs the hierarchy (`scheduler` directive); the same
  // file compiles for any family via HierarchySpec's mapping rules.
  SchedulerKind scheduler = SchedulerKind::kHfsc;
  // Enable admission control (`admission` directive): static hierarchies
  // are validated at compile time; timed class creations that fail the
  // feasibility check are counted as rejected instead of failing the run.
  bool admission = false;
  // All nodes, in declaration order.  Always at least one after parse():
  // single-node files get the implicit node {"link", link_rate}.
  std::vector<ScenarioNode> nodes;
  // True when the file used explicit `node` blocks.
  bool multi_node = false;
  std::vector<ScenarioClass> classes;
  std::vector<ScenarioSource> sources;
  std::vector<ScenarioRoute> routes;
  std::vector<ScenarioDeadline> deadlines;
  std::vector<ScenarioEvent> events;

  // Parses a scenario; throws std::runtime_error with a line number on
  // any malformed directive, unknown class reference, or missing
  // link/duration.  When `name` is non-empty it prefixes every error
  // editor-style ("file.scn:12: ..."); parse_file passes the path.
  static Scenario parse(std::istream& in, const std::string& name = "");
  static Scenario parse_file(const std::string& path);

  // The scheduler-agnostic form of the classes (config/hierarchy_spec.hpp)
  // that every family compiles from.  The one-argument overload selects a
  // single node's classes; the legacy zero-argument form returns the
  // whole class list (only meaningful for single-node scenarios).
  HierarchySpec to_hierarchy_spec() const;
  HierarchySpec node_hierarchy_spec(const std::string& node) const;

  const ScenarioNode* find_node(const std::string& name) const;
  const ScenarioRoute* find_route(const std::string& cls) const;
};

// Fixed log-spaced delay-histogram bucket edges in milliseconds (1 us
// doubling up to ~16.8 s).  counts[0] holds samples below edges[0],
// counts[i] samples in [edges[i-1], edges[i]), counts.back() samples at
// or above edges.back(); counts.size() == edges.size() + 1.
const std::vector<double>& delay_hist_edges_ms();
std::vector<std::uint64_t> delay_histogram(const std::vector<double>& ms);

struct ScenarioResult {
  struct PerClass {
    std::string name;
    std::string node;  // owning node ("link" for single-node scenarios)
    std::uint64_t packets = 0;
    Bytes bytes = 0;
    std::uint64_t dropped = 0;
    double mean_delay_ms = 0;
    double p99_delay_ms = 0;
    double max_delay_ms = 0;
    double rate_mbps = 0;
    // Per-class delay histogram over delay_hist_edges_ms().
    std::vector<std::uint64_t> hist;
  };
  // Per-node link utilization and packet-conservation terms:
  //     offered == sent + dropped + rejected + backlog
  // (offered counts source + forwarded-in arrivals; dropped is the sum of
  // per-class drops; rejected the data-path rejection taxonomy; backlog
  // what the scheduler still queues at the end of the run plus a packet
  // caught on the wire mid-transmission).
  struct NodeStats {
    std::string name;
    double link_utilization = 0;
    std::uint64_t offered = 0;
    std::uint64_t sent = 0;
    std::uint64_t dropped = 0;
    std::uint64_t rejected = 0;
    std::uint64_t backlog = 0;
    // Peak occupancy over the run (scheduler backlog plus the packet on
    // the wire), sampled at arrivals — what the analyzer's per-node
    // backlog bounds are validated against.
    std::uint64_t peak_backlog_pkts = 0;
    Bytes peak_backlog_bytes = 0;
    bool conserved() const noexcept {
      return offered == sent + dropped + rejected + backlog;
    }
  };
  // End-to-end statistics for each multi-hop route.
  struct EndToEnd {
    std::string cls;
    std::vector<std::string> route;
    std::uint64_t delivered = 0;
    Bytes bytes = 0;
    double mean_delay_ms = 0;
    double p99_delay_ms = 0;
    double max_delay_ms = 0;
    std::vector<std::uint64_t> hist;
    // Static end-to-end delay bound in milliseconds, attached by
    // tools/hfsc_sim from the analyzer when the scenario carries an
    // envelope for the flow (< 0 = none) — rendered as "bound_ms" next
    // to the measured percentiles in the JSON report.
    double bound_ms = -1;
  };

  // Every reported class across all nodes, declaration order (timed
  // `at`-created classes append after the static ones, per node).
  std::vector<PerClass> per_class;
  std::vector<NodeStats> nodes;
  std::vector<EndToEnd> e2e;
  TimeNs duration = 0;  // simulated time the run covered
  double link_utilization = 0;  // first node's busy fraction over the run
  std::string scheduler;        // display name of the family that ran
  // Lossy-mapping notes the compiler recorded for this family (empty for
  // H-FSC, which expresses the full spec).
  std::vector<std::string> notes;
  // H-FSC state digest after the run (first node; 0 for other families) —
  // the refactor-equivalence tests pin on it.
  std::uint64_t state_digest = 0;
  // Timed class creations refused by admission control (the flash-crowd
  // counter; classes, not packets).
  std::uint64_t classes_rejected = 0;

  // Whole-run conservation totals (sums over nodes).
  std::uint64_t offered() const noexcept;
  std::uint64_t sent() const noexcept;
  std::uint64_t dropped() const noexcept;
  std::uint64_t rejected() const noexcept;
  std::uint64_t backlog() const noexcept;
  bool conserved() const noexcept;

  // Formatted like the experiment binaries' tables.  Single-node results
  // print the historical one-table format byte-for-byte; multi-node
  // results add per-node sections and the end-to-end table.
  std::string to_table() const;
  // Structured report, schema "hfsc-sim-report-v1" (docs/SCENARIOS.md).
  std::string to_json() const;
};

struct ScenarioRunOptions {
  // Run the invariant auditor (core/auditor.hpp) every N scheduler
  // operations during the run; 0 disables.  A violation surfaces as
  // Error{kInvariantViolation}.
  std::size_t audit_every = 0;
  // Gate the hierarchy through admission control at the node's link
  // rate: a scenario whose leaf rt curves oversubscribe the link fails
  // with a one-line error naming the offending class instead of running.
  // (The scenario `admission` directive sets this from the file.)
  bool admission = false;
  // When non-empty, write a checkpoint (core/checkpoint.hpp) of the
  // scheduler's final state to this path after the run.  Checkpointing is
  // an H-FSC feature: combining this with any other family (or a
  // multi-node topology) throws.
  std::string checkpoint_path;
  // Overrides the scenario's `scheduler` directive (hfsc_sim --scheduler).
  std::optional<SchedulerKind> scheduler;
};

// Compiles the scenario's hierarchy for the selected family (the
// `scheduler` directive unless opts.scheduler overrides it) on every
// node, wires the routes, runs the workload (including timed `at`
// events, H-FSC only), gathers statistics.
ScenarioResult run_scenario(const Scenario& sc);
ScenarioResult run_scenario(const Scenario& sc,
                            const ScenarioRunOptions& opts);

// One scenario through several families, side by side (hfsc_sim
// --compare).  The per-run options are applied to every family, except
// checkpoint_path/scheduler which are cleared per run.
struct CompareResult {
  std::vector<ScenarioResult> runs;  // one per requested kind, in order

  // Side-by-side delay/throughput table: one row per class, one column
  // group (mean/p99 delay, rate, drops) per scheduler.
  std::string to_table() const;
  // Structured report, schema "hfsc-sim-compare-v1": one
  // hfsc-sim-report-v1 object per run.
  std::string to_json() const;
};
CompareResult run_compare(const Scenario& sc,
                          const std::vector<SchedulerKind>& kinds,
                          const ScenarioRunOptions& opts = {});

}  // namespace hfsc
