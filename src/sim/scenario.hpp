// Scenario files: a small declarative language for describing an H-FSC
// hierarchy plus a workload, so experiments can be run without writing
// C++ (tools/hfsc_sim reads these).
//
//     # 45 Mb/s campus link
//     link 45Mbps
//     duration 10s
//     class cmu   root  ls linear 25Mbps
//     class audio cmu   rt udr 160 5ms 64kbps   ls linear 64kbps
//     class data  cmu   ls linear 15Mbps  ul linear 20Mbps  qlimit 100
//     source cbr    audio 64kbps 160 0s 10s
//     source greedy data  1500 8 0s 10s
//
// Grammar (one directive per line, '#' comments):
//     link <rate>
//     duration <time>
//     window <time>                        (throughput window, default 100ms)
//     scheduler <kind>                     (hfsc | hpfq | cbq | drr | sced |
//                                           vclock | fifo; default hfsc)
//     class <name> <parent|root> [rt <spec>] [ls <spec>] [ul <spec>]
//                                [qlimit <packets>] [shard <index>]
//       (shard pins the class's subtree to one shard of the sharded
//        runtime; top-level classes only, default = name hash)
//       <spec> := linear <rate>
//               | curve <m1 rate> <d time> <m2 rate>
//               | udr <u bytes> <d time> <r rate>     (Fig. 7 mapping)
//     source cbr     <class> <rate> <pkt bytes> <start> <stop>
//     source poisson <class> <rate> <pkt bytes> <start> <stop> <seed>
//     source onoff   <class> <peak rate> <pkt bytes> <mean_on> <mean_off>
//                    <start> <stop> <seed>
//     source greedy  <class> <pkt bytes> <window pkts> <start> <stop>
//     source video   <class> <fps> <mean_frame> <max_frame> <mtu>
//                    <start> <stop> <seed>
//     envelope <class> <burst bytes> <rate>
//       (token-bucket arrival envelope A(t) = burst + rate*t the class's
//        traffic is promised to conform to; the static analyzer derives
//        the worst-case delay bound of Theorem 2 from it)
//
// Units: rates `bps|kbps|Mbps|Gbps` (decimal allowed), times
// `ns|us|ms|s`, byte counts plain integers.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "config/hierarchy_spec.hpp"
#include "core/hfsc.hpp"
#include "util/types.hpp"

namespace hfsc {

// Unit parsing helpers (exposed for tests and other tools).
RateBps parse_rate(const std::string& tok);   // throws std::runtime_error
TimeNs parse_time(const std::string& tok);    // throws
Bytes parse_bytes(const std::string& tok);    // throws

struct ScenarioClass {
  std::string name;
  std::string parent;  // "root" for top level
  ClassConfig cfg;
  std::size_t qlimit = 0;
  // Token-bucket arrival envelope (`envelope` directive); rate == 0 and
  // burst == 0 means none was declared.
  Bytes env_burst = 0;
  RateBps env_rate = 0;
  // Explicit shard pin (`shard` attribute, top-level classes only);
  // -1 = assign by name hash in the sharded runtime.
  int shard = -1;
  // 1-based source lines of the declaring directives (0 when the
  // scenario was built programmatically) — diagnostic provenance for the
  // static analyzer.
  std::size_t line = 0;
  std::size_t env_line = 0;
};

struct ScenarioSource {
  enum class Kind { kCbr, kPoisson, kOnOff, kGreedy, kVideo };
  Kind kind{};
  std::string cls;
  RateBps rate = 0;
  Bytes pkt_len = 0;
  TimeNs start = 0;
  TimeNs stop = 0;
  std::uint64_t seed = 0;
  TimeNs mean_on = 0;
  TimeNs mean_off = 0;
  std::size_t window = 0;  // greedy
  double fps = 0;          // video
  Bytes mean_frame = 0;
  Bytes max_frame = 0;
  Bytes mtu = 0;
};

struct Scenario {
  RateBps link_rate = 0;
  TimeNs duration = 0;
  TimeNs window = msec(100);
  // The name handed to parse() (the path for parse_file) — diagnostic
  // provenance; empty for programmatic scenarios.
  std::string file;
  // Which family runs the hierarchy (`scheduler` directive); the same
  // file compiles for any family via HierarchySpec's mapping rules.
  SchedulerKind scheduler = SchedulerKind::kHfsc;
  std::vector<ScenarioClass> classes;
  std::vector<ScenarioSource> sources;

  // Parses a scenario; throws std::runtime_error with a line number on
  // any malformed directive, unknown class reference, or missing
  // link/duration.  When `name` is non-empty it prefixes every error
  // editor-style ("file.scn:12: ..."); parse_file passes the path.
  static Scenario parse(std::istream& in, const std::string& name = "");
  static Scenario parse_file(const std::string& path);

  // The scheduler-agnostic form of the classes (config/hierarchy_spec.hpp)
  // that every family compiles from.
  HierarchySpec to_hierarchy_spec() const;
};

struct ScenarioResult {
  struct PerClass {
    std::string name;
    std::uint64_t packets = 0;
    Bytes bytes = 0;
    std::uint64_t dropped = 0;
    double mean_delay_ms = 0;
    double p99_delay_ms = 0;
    double max_delay_ms = 0;
    double rate_mbps = 0;
  };
  std::vector<PerClass> per_class;
  double link_utilization = 0;  // busy fraction over the run
  std::string scheduler;        // display name of the family that ran
  // Lossy-mapping notes the compiler recorded for this family (empty for
  // H-FSC, which expresses the full spec).
  std::vector<std::string> notes;

  // Formatted like the experiment binaries' tables.
  std::string to_table() const;
};

struct ScenarioRunOptions {
  // Run the invariant auditor (core/auditor.hpp) every N scheduler
  // operations during the run; 0 disables.  A violation surfaces as
  // Error{kInvariantViolation}.
  std::size_t audit_every = 0;
  // Gate the hierarchy through admission control at the scenario's link
  // rate: a scenario whose leaf rt curves oversubscribe the link fails
  // with a one-line error naming the offending class instead of running.
  bool admission = false;
  // When non-empty, write a checkpoint (core/checkpoint.hpp) of the
  // scheduler's final state to this path after the run.  Checkpointing is
  // an H-FSC feature: combining this with any other family throws.
  std::string checkpoint_path;
  // Overrides the scenario's `scheduler` directive (hfsc_sim --scheduler).
  std::optional<SchedulerKind> scheduler;
};

// Compiles the scenario's hierarchy for the selected family (the
// `scheduler` directive unless opts.scheduler overrides it), runs the
// workload, gathers statistics.  audit_every/admission apply to H-FSC and
// are recorded as notes elsewhere.
ScenarioResult run_scenario(const Scenario& sc);
ScenarioResult run_scenario(const Scenario& sc,
                            const ScenarioRunOptions& opts);

// One scenario through several families, side by side (hfsc_sim
// --compare).  The per-run options are applied to every family, except
// checkpoint_path/scheduler which are cleared per run.
struct CompareResult {
  std::vector<ScenarioResult> runs;  // one per requested kind, in order

  // Side-by-side delay/throughput table: one row per class, one column
  // group (mean/p99 delay, rate, drops) per scheduler.
  std::string to_table() const;
};
CompareResult run_compare(const Scenario& sc,
                          const std::vector<SchedulerKind>& kinds,
                          const ScenarioRunOptions& opts = {});

}  // namespace hfsc
