// Packet-trace file I/O and experiment-series export.
//
// Trace format: one packet per line, `<time_ns> <class_id> <len_bytes>`,
// '#' comments and blank lines ignored.  Round-trips with TraceSource so
// workloads can be captured from one run (TraceRecorder) and replayed
// against a different discipline — the apples-to-apples methodology the
// comparison experiments rely on.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sched/packet.hpp"
#include "sim/link.hpp"
#include "sim/sources.hpp"

namespace hfsc {

struct TraceEntry {
  TimeNs t = 0;
  ClassId cls = 0;
  Bytes len = 0;

  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

// Parses a trace from a stream; throws std::runtime_error on malformed
// lines (with the line number).
std::vector<TraceEntry> read_trace(std::istream& in);
std::vector<TraceEntry> read_trace_file(const std::string& path);

void write_trace(std::ostream& out, const std::vector<TraceEntry>& entries);
void write_trace_file(const std::string& path,
                      const std::vector<TraceEntry>& entries);

// Per-class TraceSource items from a parsed trace.
std::vector<TraceSource::Item> items_for_class(
    const std::vector<TraceEntry>& entries, ClassId cls);

// Installs every class of the trace onto a link via the event queue.
void replay_trace(EventQueue& ev, Link& link,
                  const std::vector<TraceEntry>& entries);

// Records every arrival at a link into trace entries.
class TraceRecorder {
 public:
  void attach(Link& link) {
    link.add_arrival_hook([this](TimeNs t, const Packet& p) {
      entries_.push_back(TraceEntry{t, p.cls, p.len});
    });
  }
  const std::vector<TraceEntry>& entries() const noexcept { return entries_; }

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace hfsc
