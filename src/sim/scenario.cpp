#include "sim/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace hfsc {

namespace {

// Parse errors carry the file name (when known) ahead of the line number,
// "file.scn:12: ..." editor-style, so a failing batch run says which of
// its inputs is broken.
[[noreturn]] void fail_at(const std::string& name, std::size_t line,
                          const std::string& what) {
  if (name.empty()) {
    throw std::runtime_error("scenario line " + std::to_string(line) + ": " +
                             what);
  }
  throw std::runtime_error(name + ":" + std::to_string(line) + ": " + what);
}

// Splits "<number><suffix>" where number may be decimal.
bool split_unit(const std::string& tok, double* value, std::string* unit) {
  std::size_t i = 0;
  while (i < tok.size() &&
         (std::isdigit(static_cast<unsigned char>(tok[i])) || tok[i] == '.')) {
    ++i;
  }
  if (i == 0) return false;
  try {
    *value = std::stod(tok.substr(0, i));
  } catch (...) {
    return false;
  }
  *unit = tok.substr(i);
  return true;
}

}  // namespace

RateBps parse_rate(const std::string& tok) {
  double v;
  std::string unit;
  if (!split_unit(tok, &v, &unit)) {
    throw std::runtime_error("bad rate: " + tok);
  }
  double bits;
  if (unit == "bps") {
    bits = v;
  } else if (unit == "kbps") {
    bits = v * 1e3;
  } else if (unit == "Mbps" || unit == "mbps") {
    bits = v * 1e6;
  } else if (unit == "Gbps" || unit == "gbps") {
    bits = v * 1e9;
  } else {
    throw std::runtime_error("bad rate unit: " + tok);
  }
  return static_cast<RateBps>(bits / 8.0);
}

TimeNs parse_time(const std::string& tok) {
  double v;
  std::string unit;
  if (!split_unit(tok, &v, &unit)) {
    throw std::runtime_error("bad time: " + tok);
  }
  double ns;
  if (unit == "ns") {
    ns = v;
  } else if (unit == "us") {
    ns = v * 1e3;
  } else if (unit == "ms") {
    ns = v * 1e6;
  } else if (unit == "s") {
    ns = v * 1e9;
  } else {
    throw std::runtime_error("bad time unit: " + tok);
  }
  return static_cast<TimeNs>(ns);
}

Bytes parse_bytes(const std::string& tok) {
  // std::stoull silently accepts a leading '-' (wrapping); reject any
  // non-digit up front.
  if (tok.empty() ||
      !std::all_of(tok.begin(), tok.end(), [](unsigned char c) {
        return std::isdigit(c);
      })) {
    throw std::runtime_error("bad byte count: " + tok);
  }
  try {
    return static_cast<Bytes>(std::stoull(tok));
  } catch (...) {
    throw std::runtime_error("bad byte count: " + tok);
  }
}

namespace {

ServiceCurve parse_spec(std::istringstream& ls, const std::string& fname,
                        std::size_t line) {
  // An explicitly written spec that evaluates to the zero curve is a
  // config mistake (the class would silently never receive that kind of
  // service), so it is rejected rather than parsed.
  auto nonzero = [&fname, line](const ServiceCurve& sc) {
    if (sc.is_zero()) fail_at(fname, line, "zero-rate service curve");
    return sc;
  };
  std::string kind;
  if (!(ls >> kind)) fail_at(fname, line, "missing curve spec");
  if (kind == "linear") {
    std::string r;
    if (!(ls >> r)) fail_at(fname, line, "linear needs a rate");
    return nonzero(ServiceCurve::linear(parse_rate(r)));
  }
  if (kind == "curve") {
    std::string m1, d, m2;
    if (!(ls >> m1 >> d >> m2)) fail_at(fname, line, "curve needs <m1> <d> <m2>");
    const ServiceCurve sc{parse_rate(m1), parse_time(d), parse_rate(m2)};
    if (!sc.is_supported()) {
      fail_at(fname, line, "unsupported curve shape (must be concave, or convex with "
                 "m1 = 0)");
    }
    return nonzero(sc);
  }
  if (kind == "udr") {
    std::string u, d, r;
    if (!(ls >> u >> d >> r)) fail_at(fname, line, "udr needs <u> <d> <r>");
    return nonzero(from_udr(parse_bytes(u), parse_time(d), parse_rate(r)));
  }
  fail_at(fname, line, "unknown curve spec kind: " + kind);
}

}  // namespace

Scenario Scenario::parse(std::istream& in, const std::string& name) {
  Scenario sc;
  sc.file = name;
  std::map<std::string, bool> class_names;
  std::string raw;
  std::size_t line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ls(raw);
    std::string directive;
    if (!(ls >> directive)) continue;

    if (directive == "link") {
      std::string r;
      if (!(ls >> r)) fail_at(name, line, "link needs a rate");
      sc.link_rate = parse_rate(r);
    } else if (directive == "duration") {
      std::string t;
      if (!(ls >> t)) fail_at(name, line, "duration needs a time");
      sc.duration = parse_time(t);
    } else if (directive == "window") {
      std::string t;
      if (!(ls >> t)) fail_at(name, line, "window needs a time");
      sc.window = parse_time(t);
    } else if (directive == "scheduler") {
      std::string kind;
      if (!(ls >> kind)) fail_at(name, line, "scheduler needs a kind");
      const auto parsed = parse_scheduler_kind(kind);
      if (!parsed) fail_at(name, line, "unknown scheduler kind: " + kind);
      sc.scheduler = *parsed;
    } else if (directive == "class") {
      ScenarioClass c;
      if (!(ls >> c.name >> c.parent)) {
        fail_at(name, line, "class needs <name> <parent>");
      }
      if (class_names.count(c.name)) fail_at(name, line, "duplicate class " + c.name);
      if (c.parent != "root" && !class_names.count(c.parent)) {
        fail_at(name, line, "unknown parent class " + c.parent);
      }
      std::string key;
      while (ls >> key) {
        if (key == "rt") {
          c.cfg.rt = parse_spec(ls, name, line);
        } else if (key == "ls") {
          c.cfg.ls = parse_spec(ls, name, line);
        } else if (key == "ul") {
          c.cfg.ul = parse_spec(ls, name, line);
        } else if (key == "qlimit") {
          std::string n;
          if (!(ls >> n)) fail_at(name, line, "qlimit needs a count");
          c.qlimit = static_cast<std::size_t>(parse_bytes(n));
        } else if (key == "shard") {
          std::string n;
          if (!(ls >> n)) fail_at(name, line, "shard needs an index");
          if (c.parent != "root") {
            fail_at(name, line,
                    "shard pins are only allowed on top-level classes");
          }
          c.shard = static_cast<int>(parse_bytes(n));
        } else {
          fail_at(name, line, "unknown class attribute: " + key);
        }
      }
      if (c.cfg.rt.is_zero() && c.cfg.ls.is_zero()) {
        fail_at(name, line, "class " + c.name + " needs at least one of rt/ls");
      }
      c.line = line;
      class_names[c.name] = true;
      sc.classes.push_back(std::move(c));
    } else if (directive == "envelope") {
      std::string cls, burst, rate;
      if (!(ls >> cls >> burst >> rate)) {
        fail_at(name, line, "envelope needs <class> <burst> <rate>");
      }
      std::string extra;
      if (ls >> extra) fail_at(name, line, "trailing token: " + extra);
      if (!class_names.count(cls)) fail_at(name, line, "unknown class " + cls);
      const auto it = std::find_if(
          sc.classes.begin(), sc.classes.end(),
          [&](const ScenarioClass& c) { return c.name == cls; });
      if (it->env_line != 0) {
        fail_at(name, line, "duplicate envelope for class " + cls);
      }
      it->env_burst = parse_bytes(burst);
      it->env_rate = parse_rate(rate);
      if (it->env_burst == 0 && it->env_rate == 0) {
        fail_at(name, line, "envelope must have a non-zero burst or rate");
      }
      it->env_line = line;
    } else if (directive == "source") {
      std::string kind;
      ScenarioSource s;
      if (!(ls >> kind >> s.cls)) fail_at(name, line, "source needs <kind> <class>");
      if (!class_names.count(s.cls)) fail_at(name, line, "unknown class " + s.cls);
      auto want = [&](const char* what) -> std::string {
        std::string tok;
        if (!(ls >> tok)) fail_at(name, line, std::string("source missing ") + what);
        return tok;
      };
      if (kind == "cbr") {
        s.kind = ScenarioSource::Kind::kCbr;
        s.rate = parse_rate(want("rate"));
        s.pkt_len = parse_bytes(want("pkt"));
        s.start = parse_time(want("start"));
        s.stop = parse_time(want("stop"));
      } else if (kind == "poisson") {
        s.kind = ScenarioSource::Kind::kPoisson;
        s.rate = parse_rate(want("rate"));
        s.pkt_len = parse_bytes(want("pkt"));
        s.start = parse_time(want("start"));
        s.stop = parse_time(want("stop"));
        s.seed = parse_bytes(want("seed"));
      } else if (kind == "onoff") {
        s.kind = ScenarioSource::Kind::kOnOff;
        s.rate = parse_rate(want("peak rate"));
        s.pkt_len = parse_bytes(want("pkt"));
        s.mean_on = parse_time(want("mean_on"));
        s.mean_off = parse_time(want("mean_off"));
        s.start = parse_time(want("start"));
        s.stop = parse_time(want("stop"));
        s.seed = parse_bytes(want("seed"));
      } else if (kind == "greedy") {
        s.kind = ScenarioSource::Kind::kGreedy;
        s.pkt_len = parse_bytes(want("pkt"));
        s.window = static_cast<std::size_t>(parse_bytes(want("window")));
        s.start = parse_time(want("start"));
        s.stop = parse_time(want("stop"));
      } else if (kind == "video") {
        s.kind = ScenarioSource::Kind::kVideo;
        s.fps = std::stod(want("fps"));
        s.mean_frame = parse_bytes(want("mean_frame"));
        s.max_frame = parse_bytes(want("max_frame"));
        s.mtu = parse_bytes(want("mtu"));
        s.start = parse_time(want("start"));
        s.stop = parse_time(want("stop"));
        s.seed = parse_bytes(want("seed"));
      } else {
        fail_at(name, line, "unknown source kind: " + kind);
      }
      std::string extra;
      if (ls >> extra) fail_at(name, line, "trailing token: " + extra);
      sc.sources.push_back(std::move(s));
    } else {
      fail_at(name, line, "unknown directive: " + directive);
    }
  }
  if (sc.link_rate == 0) fail_at(name.empty() ? "scenario" : name, line, "missing link");
  if (sc.duration == 0) fail_at(name.empty() ? "scenario" : name, line, "missing duration");
  if (sc.classes.empty()) fail_at(name.empty() ? "scenario" : name, line, "no classes");
  return sc;
}

Scenario Scenario::parse_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open scenario: " + path);
  return parse(f, path);
}

HierarchySpec Scenario::to_hierarchy_spec() const {
  HierarchySpec spec;
  for (const ScenarioClass& c : classes) {
    HierarchySpec::ClassSpec cs;
    cs.name = c.name;
    cs.parent = c.parent;
    cs.rt = c.cfg.rt;
    cs.ls = c.cfg.ls;
    cs.ul = c.cfg.ul;
    cs.qlimit = c.qlimit;
    cs.env_burst = c.env_burst;
    cs.env_rate = c.env_rate;
    cs.shard = c.shard;
    spec.add(std::move(cs));
  }
  return spec;
}

ScenarioResult run_scenario(const Scenario& sc) {
  return run_scenario(sc, ScenarioRunOptions{});
}

ScenarioResult run_scenario(const Scenario& sc,
                            const ScenarioRunOptions& opts) {
  const SchedulerKind kind = opts.scheduler.value_or(sc.scheduler);
  if (!opts.checkpoint_path.empty() && kind != SchedulerKind::kHfsc) {
    throw std::runtime_error(
        "checkpointing requires the hfsc scheduler (running " +
        std::string(to_string(kind)) + ")");
  }
  const HierarchySpec spec = sc.to_hierarchy_spec();
  HierarchySpec::CompileOptions copts;
  copts.audit_every = opts.audit_every;
  copts.admission = opts.admission;
  HierarchySpec::Compiled compiled = spec.compile(kind, sc.link_rate, copts);
  Scheduler& sched = *compiled.sched;
  const HierarchySpec::IdMap& ids = compiled.ids;

  Simulator sim(sc.link_rate, sched, sc.window);
  for (const ScenarioSource& s : sc.sources) {
    const auto it = ids.find(s.cls);
    if (it == ids.end()) {
      // Flat families drop interior classes; a source may only feed a leaf
      // anyway, so a missing id means the scenario misattached a source.
      throw std::runtime_error("source class '" + s.cls +
                               "' was dropped by the " +
                               std::string(to_string(kind)) + " mapping");
    }
    const ClassId cls = it->second;
    switch (s.kind) {
      case ScenarioSource::Kind::kCbr:
        sim.add<CbrSource>(cls, s.rate, s.pkt_len, s.start, s.stop);
        break;
      case ScenarioSource::Kind::kPoisson:
        sim.add<PoissonSource>(cls, s.rate, s.pkt_len, s.start, s.stop,
                               s.seed);
        break;
      case ScenarioSource::Kind::kOnOff:
        sim.add<OnOffSource>(cls, s.rate, s.pkt_len, s.mean_on, s.mean_off,
                             s.start, s.stop, s.seed);
        break;
      case ScenarioSource::Kind::kGreedy:
        sim.add<GreedySource>(cls, s.pkt_len, s.window, s.start, s.stop);
        break;
      case ScenarioSource::Kind::kVideo:
        sim.add<VideoSource>(cls, s.fps, s.mean_frame, s.max_frame, s.mtu,
                             s.start, s.stop, s.seed);
        break;
    }
  }
  sim.run(sc.duration);

  if (!opts.checkpoint_path.empty()) {
    std::ofstream ck(opts.checkpoint_path);
    if (!ck) {
      throw std::runtime_error("cannot write checkpoint: " +
                               opts.checkpoint_path);
    }
    checkpoint(*compiled.hfsc, ck);
  }

  ScenarioResult out;
  out.scheduler = std::string(sched.name());
  out.notes = std::move(compiled.notes);
  const auto& t = sim.tracker();
  for (const ScenarioClass& c : sc.classes) {
    const auto it = ids.find(c.name);
    if (it == ids.end()) continue;  // dropped by a flat mapping
    const ClassId id = it->second;
    if (!spec.is_leaf(c.name) && !t.has(id)) continue;  // interior class
    ScenarioResult::PerClass pc;
    pc.name = c.name;
    pc.packets = t.packets(id);
    pc.bytes = t.bytes(id);
    pc.dropped = sched.class_drops(id);
    pc.mean_delay_ms = t.mean_delay_ms(id);
    pc.p99_delay_ms = t.delay_quantile_ms(id, 0.99);
    pc.max_delay_ms = t.max_delay_ms(id);
    pc.rate_mbps = t.rate_mbps(id, 0, sc.duration);
    out.per_class.push_back(std::move(pc));
  }
  out.link_utilization = static_cast<double>(sim.link().busy_time()) /
                         static_cast<double>(sc.duration);
  return out;
}

CompareResult run_compare(const Scenario& sc,
                          const std::vector<SchedulerKind>& kinds,
                          const ScenarioRunOptions& opts) {
  CompareResult out;
  for (SchedulerKind kind : kinds) {
    ScenarioRunOptions per_run = opts;
    per_run.scheduler = kind;
    per_run.checkpoint_path.clear();  // H-FSC-only; ambiguous across runs
    out.runs.push_back(run_scenario(sc, per_run));
  }
  return out;
}

std::string CompareResult::to_table() const {
  // One row per class that appeared in any run; a family that dropped the
  // class shows "-".  Classes keep first-appearance order.
  std::vector<std::string> names;
  for (const ScenarioResult& r : runs) {
    for (const auto& pc : r.per_class) {
      if (std::find(names.begin(), names.end(), pc.name) == names.end()) {
        names.push_back(pc.name);
      }
    }
  }
  std::vector<std::string> headers = {"class"};
  for (const ScenarioResult& r : runs) {
    headers.push_back(r.scheduler + " mean_ms");
    headers.push_back(r.scheduler + " p99_ms");
    headers.push_back(r.scheduler + " rate_mbps");
    headers.push_back(r.scheduler + " drops");
  }
  TablePrinter table(headers);
  for (const std::string& name : names) {
    std::vector<std::string> row = {name};
    for (const ScenarioResult& r : runs) {
      const auto it =
          std::find_if(r.per_class.begin(), r.per_class.end(),
                       [&](const auto& pc) { return pc.name == name; });
      if (it == r.per_class.end()) {
        row.insert(row.end(), {"-", "-", "-", "-"});
      } else {
        row.push_back(TablePrinter::fmt(it->mean_delay_ms));
        row.push_back(TablePrinter::fmt(it->p99_delay_ms));
        row.push_back(TablePrinter::fmt(it->rate_mbps, 2));
        row.push_back(std::to_string(it->dropped));
      }
    }
    table.add_row(std::move(row));
  }
  std::ostringstream os;
  os << table.to_string();
  for (const ScenarioResult& r : runs) {
    os << r.scheduler << " link utilization: "
       << TablePrinter::fmt(r.link_utilization * 100.0, 1) << "%\n";
  }
  return os.str();
}

std::string ScenarioResult::to_table() const {
  TablePrinter table({"class", "packets", "bytes", "dropped", "mean_ms",
                      "p99_ms", "max_ms", "rate_mbps"});
  for (const PerClass& pc : per_class) {
    table.add_row({pc.name, std::to_string(pc.packets),
                   std::to_string(pc.bytes), std::to_string(pc.dropped),
                   TablePrinter::fmt(pc.mean_delay_ms),
                   TablePrinter::fmt(pc.p99_delay_ms),
                   TablePrinter::fmt(pc.max_delay_ms),
                   TablePrinter::fmt(pc.rate_mbps, 2)});
  }
  std::ostringstream os;
  os << table.to_string();
  os << "link utilization: "
     << TablePrinter::fmt(link_utilization * 100.0, 1) << "%\n";
  return os.str();
}

}  // namespace hfsc
